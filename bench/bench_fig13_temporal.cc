// Fig 13: the HO graph for the temporal aspect — SCORE > MOVEMENT >
// MEASURE > SYNC > CHORD > NOTE, groups, events and MIDI at the bottom.
// Regenerates the graph and measures temporal derivations: start-time
// inheritance and score-to-performance extraction.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cmn/schema.h"
#include "cmn/temporal.h"
#include "mtime/tempo_map.h"

namespace {

using mdm::er::Database;
using mdm::er::EntityId;

void BM_BuildMeasureTable(benchmark::State& state) {
  Database db;
  EntityId score = mdm::bench::MakeRandomScore(
      &db, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto table = mdm::cmn::BuildMeasureTable(db, score);
    if (!table.ok()) state.SkipWithError("table failed");
    benchmark::DoNotOptimize(table->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildMeasureTable)->Arg(8)->Arg(64)->Arg(512);

// Start-time inheritance: sync -> absolute score time, walking the
// P-edges upward (§7.2: "the start times of notes and chords are
// inherited from their parent syncs").
void BM_SyncScoreTime(benchmark::State& state) {
  Database db;
  EntityId score = mdm::bench::MakeRandomScore(
      &db, static_cast<int>(state.range(0)));
  // Collect one sync per measure.
  std::vector<EntityId> syncs;
  auto table = mdm::cmn::BuildMeasureTable(db, score);
  for (const auto& span : *table) {
    auto kids = db.Children(mdm::cmn::kSyncInMeasure, span.measure);
    if (!kids->empty()) syncs.push_back(kids->front());
  }
  size_t i = 0;
  for (auto _ : state) {
    auto t = mdm::cmn::SyncScoreTime(db, syncs[i++ % syncs.size()]);
    if (!t.ok()) state.SkipWithError("sync time failed");
    benchmark::DoNotOptimize(t->num());
  }
}
BENCHMARK(BM_SyncScoreTime)->Arg(8)->Arg(64)->Arg(512);

void BM_ExtractPerformance(benchmark::State& state) {
  Database db;
  EntityId score = mdm::bench::MakeRandomScore(
      &db, static_cast<int>(state.range(0)));
  mdm::mtime::TempoMap tempo;
  (void)tempo.SetTempo(mdm::Rational(0), 96);
  (void)tempo.Accelerando(mdm::Rational(16), 96);
  (void)tempo.SetTempo(mdm::Rational(32), 144);
  for (auto _ : state) {
    auto notes = mdm::cmn::ExtractPerformance(&db, score, tempo);
    if (!notes.ok()) state.SkipWithError("extract failed");
    benchmark::DoNotOptimize(notes->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_ExtractPerformance)->Arg(8)->Arg(64)->Arg(512);

void BM_TempoMapping(benchmark::State& state) {
  mdm::mtime::TempoMap tempo;
  (void)tempo.SetTempo(mdm::Rational(0), 90);
  (void)tempo.Ritardando(mdm::Rational(64), 90);
  (void)tempo.SetTempo(mdm::Rational(96), 45);
  int64_t beat = 0;
  for (auto _ : state) {
    double t = tempo.ToSeconds(mdm::Rational(beat++ % 128, 1));
    benchmark::DoNotOptimize(tempo.ToBeats(t));
  }
}
BENCHMARK(BM_TempoMapping);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 13 — the temporal aspect's HO graph",
      "SCORE > MOVEMENT > MEASURE > SYNC > CHORD > NOTE; groups beside, "
      "EVENT binding tied notes, MIDI in performance time at the bottom");
  Database db;
  (void)mdm::cmn::InstallCmnSchema(&db);
  // Print only the temporal orderings of the full HO graph.
  std::printf("temporal orderings of the installed schema:\n");
  for (const auto& o : db.schema().orderings()) {
    for (const char* temporal :
         {"movement_in_score", "measure_in_movement", "sync_in_measure",
          "chord_in_sync", "note_in_chord", "group_seq", "note_in_event",
          "midi_in_event", "voice_seq"}) {
      if (o.name == temporal) {
        std::printf("  %-22s (", o.name.c_str());
        for (size_t i = 0; i < o.child_types.size(); ++i)
          std::printf("%s%s", i ? ", " : "", o.child_types[i].c_str());
        std::printf(") under %s\n", o.parent_type.c_str());
      }
    }
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig13_temporal", smoke);
  return 0;
}

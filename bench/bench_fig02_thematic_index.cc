// Fig 2: a thematic index entry (BWV 578).
//
// Regenerates the entry from the bibliographic schema, then measures
// the operations a score library exists for: identifier lookup and
// incipit (melodic) search, as the catalog grows.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "biblio/thematic_index.h"
#include "common/random.h"
#include "common/strings.h"

namespace {

using mdm::biblio::CatalogEntry;
using mdm::er::Database;
using mdm::er::EntityId;

Database MakeCatalogDb(int entries, EntityId* catalog_out) {
  Database db;
  if (!mdm::biblio::InstallBiblioSchema(&db).ok()) std::abort();
  auto catalog = mdm::biblio::CreateCatalog(&db, "Bach Werke Verzeichnis",
                                            "BWV");
  mdm::Rng rng(17);
  for (int i = 0; i < entries; ++i) {
    CatalogEntry e;
    e.number = std::to_string(i + 1);
    e.title = "Werk " + std::to_string(i + 1);
    e.setting = "Orgel";
    e.measure_count = static_cast<int>(rng.Range(20, 300));
    int key = static_cast<int>(rng.Range(55, 79));
    for (int n = 0; n < 12; ++n) {
      e.incipit.push_back(key);
      key += static_cast<int>(rng.Range(-4, 4));
    }
    (void)mdm::biblio::AddEntry(&db, *catalog, e);
  }
  // The genuine BWV 578 entry last.
  CatalogEntry fugue;
  fugue.number = "578";
  fugue.title = "Fuge g-moll";
  fugue.setting = "Orgel";
  fugue.composed = "Weimar um 1709";
  fugue.measure_count = 68;
  fugue.incipit = {67, 74, 70, 69, 67, 70, 69, 67, 66, 69, 62};
  (void)mdm::biblio::AddEntry(&db, *catalog, fugue);
  *catalog_out = *catalog;
  return db;
}

void BM_IdentifierLookup(benchmark::State& state) {
  EntityId catalog;
  Database db = MakeCatalogDb(static_cast<int>(state.range(0)), &catalog);
  for (auto _ : state) {
    auto hit = mdm::biblio::LookupByIdentifier(db, "BWV 578");
    if (!hit.ok()) state.SkipWithError("lookup failed");
    benchmark::DoNotOptimize(*hit);
  }
}
BENCHMARK(BM_IdentifierLookup)->Arg(10)->Arg(100)->Arg(1000);

void BM_IncipitSearch(benchmark::State& state) {
  EntityId catalog;
  Database db = MakeCatalogDb(static_cast<int>(state.range(0)), &catalog);
  // The fugue subject's head, transposed (search is interval-based).
  std::vector<int> query = mdm::biblio::ToIntervals({72, 79, 75, 74, 72});
  for (auto _ : state) {
    auto hits = mdm::biblio::SearchByIntervals(db, catalog, query);
    if (!hits.ok()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(hits->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IncipitSearch)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader("Fig 2 — thematic index entry",
                          "the BWV 578 entry: thematic incipit plus "
                          "Besetzung/EZ/Takte/Abschriften/Ausgaben/"
                          "Literatur attributes");
  EntityId catalog;
  Database db = MakeCatalogDb(3, &catalog);
  auto entry = mdm::biblio::LookupByIdentifier(db, "BWV 578");
  auto text = mdm::biblio::FormatEntry(db, *entry);
  std::printf("%s\n", text->c_str());
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig02_thematic_index", smoke);
  return 0;
}

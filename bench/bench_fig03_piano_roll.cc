// Fig 3: the piano-roll notation of the BWV 578 fugue opening, with the
// fugue entrances shaded grey. Regenerates the roll (ASCII + SVG) and
// measures render throughput against score size.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cmn/temporal.h"
#include "darms/darms.h"
#include "mtime/tempo_map.h"
#include "notation/piano_roll.h"

namespace {

using mdm::cmn::PerformedNote;

std::vector<PerformedNote> PerformanceOfSize(int measures) {
  mdm::er::Database db;
  auto score = mdm::bench::MakeRandomScore(&db, measures);
  mdm::mtime::TempoMap tempo;
  auto notes = mdm::cmn::ExtractPerformance(&db, score, tempo);
  if (!notes.ok()) std::abort();
  return *notes;
}

void BM_AsciiPianoRoll(benchmark::State& state) {
  auto notes = PerformanceOfSize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string roll = mdm::notation::AsciiPianoRoll(notes);
    benchmark::DoNotOptimize(roll.size());
  }
  state.SetItemsProcessed(state.iterations() * notes.size());
}
BENCHMARK(BM_AsciiPianoRoll)->Arg(4)->Arg(32)->Arg(256);

void BM_SvgPianoRoll(benchmark::State& state) {
  auto notes = PerformanceOfSize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string svg = mdm::notation::SvgPianoRoll(notes);
    benchmark::DoNotOptimize(svg.size());
  }
  state.SetItemsProcessed(state.iterations() * notes.size());
}
BENCHMARK(BM_SvgPianoRoll)->Arg(4)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 3 — piano roll of the BWV 578 fugue opening",
      "time rightward, pitch upward, black rectangles per note; the "
      "fugue entrances shaded grey");
  // The subject and its answer, entrances highlighted.
  mdm::er::Database db;
  auto import = mdm::darms::ImportDarms(
      &db,
      "!G !K2- 2Q 6Q 4E 3E 2E 4E 3E 2E 1#E 3E / "
      "5E 2E 4E 3E 2H //",
      "BWV 578 subject");
  if (!import.ok()) return 1;
  mdm::mtime::TempoMap tempo;
  auto notes = mdm::cmn::ExtractPerformance(&db, import->score, tempo);
  mdm::notation::PianoRollOptions options;
  for (size_t i = 0; i < 4 && i < notes->size(); ++i)
    options.highlighted_notes.push_back((*notes)[i].source_note);
  std::printf("%s\n",
              mdm::notation::AsciiPianoRoll(*notes, options).c_str());
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig03_piano_roll", smoke);
  return 0;
}

// §5.2: "this use of ordering may be seen purely as a performance
// optimization in relational databases ... efficiently performed on
// relations that are sorted." Measures keyed selection via a B+tree
// index versus an unsorted heap scan, and footnote 3's caveat: an
// index on the wrong key does not help.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "rel/table.h"
#include "storage/disk_manager.h"

namespace {

using mdm::rel::Catalog;
using mdm::rel::RelSchema;
using mdm::rel::Table;
using mdm::rel::Tuple;
using mdm::rel::Value;
using mdm::rel::ValueType;

struct Fixture {
  mdm::storage::MemoryDiskManager dm;
  mdm::storage::BufferPool pool{&dm, 4096};
  Catalog catalog{&pool};
  Table* table = nullptr;

  explicit Fixture(int rows) {
    auto t = catalog.CreateTable(
        "compositions", RelSchema({{"id", ValueType::kInt, ""},
                                   {"year", ValueType::kInt, ""},
                                   {"title", ValueType::kString, ""}}));
    table = *t;
    mdm::Rng rng(41);
    for (int i = 0; i < rows; ++i) {
      Tuple tuple = {Value::Int(i),
                     Value::Int(1650 + static_cast<int64_t>(rng.Uniform(300))),
                     Value::String("composition " + std::to_string(i))};
      if (!table->Insert(tuple).ok()) std::abort();
    }
    if (!table->CreateIndex("id").ok()) std::abort();
  }
};

void BM_HeapScanSelection(benchmark::State& state) {
  Fixture fx(static_cast<int>(state.range(0)));
  int64_t key = state.range(0) / 2;
  for (auto _ : state) {
    int hits = 0;
    (void)fx.table->Scan([&](const mdm::storage::Rid&, const Tuple& t) {
      if (t[0].AsInt() == key) ++hits;
      return true;
    });
    if (hits != 1) state.SkipWithError("wrong hit count");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_HeapScanSelection)->Arg(100)->Arg(1000)->Arg(10000);

void BM_IndexSelection(benchmark::State& state) {
  Fixture fx(static_cast<int>(state.range(0)));
  int64_t key = state.range(0) / 2;
  for (auto _ : state) {
    int hits = 0;
    (void)fx.table->IndexScan(
        "id", key, key, [&](const mdm::storage::Rid&, const Tuple&) {
          ++hits;
          return true;
        });
    if (hits != 1) state.SkipWithError("wrong hit count");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_IndexSelection)->Arg(100)->Arg(1000)->Arg(10000);

// Range selection: where ordering really pays (clustered access).
void BM_IndexRangeSelection(benchmark::State& state) {
  Fixture fx(static_cast<int>(state.range(0)));
  int64_t lo = state.range(0) / 4;
  int64_t hi = lo + state.range(0) / 10;
  for (auto _ : state) {
    int hits = 0;
    (void)fx.table->IndexScan(
        "id", lo, hi, [&](const mdm::storage::Rid&, const Tuple&) {
          ++hits;
          return true;
        });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_IndexRangeSelection)->Arg(100)->Arg(1000)->Arg(10000);

// Footnote 3: "a relation sorted on composition title cannot
// efficiently support a selection based on composer name" — here, the
// id index cannot help a selection on year; the scan is forced.
void BM_WrongKeySelection(benchmark::State& state) {
  Fixture fx(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    int hits = 0;
    (void)fx.table->Scan([&](const mdm::storage::Rid&, const Tuple& t) {
      if (t[1].AsInt() == 1750) ++hits;
      return true;
    });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_WrongKeySelection)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "§5.2 — ordering as a physical performance optimization",
      "keyed selection on a sorted/indexed relation vs a scan; footnote "
      "3's wrong-sort-key caveat");
  std::printf(
      "expect: index selection ~flat in relation size, heap scan linear;\n"
      "crossover immediately beyond trivial sizes; wrong-key selection\n"
      "degrades to the scan no matter the index.\n\n");
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("s52_ordering_opt", smoke);
  return 0;
}

// Smoke harness for the bench binaries: runs one bench with --smoke,
// captures its stdout, and validates the BENCH_JSON contract every
// binary promises — at least one `BENCH_JSON {...}` line whose payload
// parses as a JSON object with a string "bench" member. Registered as
// one ctest per bench (label `benchsmoke`), so a bench that stops
// emitting parseable results fails CI instead of silently rotting the
// nightly dashboards.
//
// Usage: smoke_runner <path-to-bench-binary> [extra args...]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

constexpr const char* kPrefix = "BENCH_JSON ";

int CheckLine(const std::string& payload) {
  auto parsed = mdm::json::Parse(payload);
  if (!parsed.ok()) {
    std::fprintf(stderr, "FAIL: BENCH_JSON payload does not parse: %s\n  %s\n",
                 parsed.status().message().c_str(), payload.c_str());
    return 1;
  }
  if (!parsed->is_object()) {
    std::fprintf(stderr, "FAIL: BENCH_JSON payload is not an object:\n  %s\n",
                 payload.c_str());
    return 1;
  }
  if (!parsed->Has("bench", mdm::json::Value::Kind::kString)) {
    std::fprintf(stderr,
                 "FAIL: BENCH_JSON object lacks a string \"bench\" key:\n"
                 "  %s\n",
                 payload.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: smoke_runner <bench-binary> [args...]\n");
    return 2;
  }
  std::string cmd;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) cmd += ' ';
    cmd += argv[i];
  }
  cmd += " --smoke 2>&1";

  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "FAIL: cannot run: %s\n", cmd.c_str());
    return 2;
  }
  std::vector<std::string> json_lines;
  std::string line;
  int ch;
  while ((ch = std::fgetc(pipe)) != EOF) {
    if (ch != '\n') {
      line.push_back(static_cast<char>(ch));
      continue;
    }
    if (line.rfind(kPrefix, 0) == 0)
      json_lines.push_back(line.substr(std::strlen(kPrefix)));
    line.clear();
  }
  if (line.rfind(kPrefix, 0) == 0)
    json_lines.push_back(line.substr(std::strlen(kPrefix)));
  int status = pclose(pipe);

  if (status != 0) {
    std::fprintf(stderr, "FAIL: bench exited with status %d: %s\n", status,
                 cmd.c_str());
    return 1;
  }
  if (json_lines.empty()) {
    std::fprintf(stderr, "FAIL: no BENCH_JSON line in output of: %s\n",
                 cmd.c_str());
    return 1;
  }
  int failures = 0;
  for (const std::string& payload : json_lines) failures += CheckLine(payload);
  if (failures == 0)
    std::printf("OK: %zu BENCH_JSON line(s) validated from %s\n",
                json_lines.size(), argv[1]);
  return failures == 0 ? 0 : 1;
}

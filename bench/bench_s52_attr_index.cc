// §5.2 secondary attribute indexes: the thematic-catalog lookup
// ("retrieve the piece named X") and the §5.6 `is` join ("notes of the
// chord c"), each through the planner with the index defined versus the
// EnableAttrIndex(false) linear-scan ablation. Google-benchmark curves
// show the indexed side flat in corpus size while the scan grows
// linearly; the BENCH_JSON block carries the 10^4-entry acceptance
// numbers (>=100x on both shapes).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "net/connection.h"
#include "quel/quel.h"

namespace {

using mdm::Connection;
using mdm::bench::MakeChordDb;
using mdm::bench::MetricsSection;
using mdm::er::Database;
using mdm::er::EntityId;
using mdm::rel::Value;

// The paper's NOTE/CHORD schema with an entity-valued NOTE.chord
// reference (the §5.6 join target) and secondary indexes on both the
// note name (thematic catalog) and the chord reference (is-join).
Database MakeIndexedChordDb(int n_chords, int notes_per_chord) {
  Database db;
  auto ddl = mdm::ddl::ExecuteDdl(R"(
    define entity CHORD (name = integer)
    define entity NOTE (name = integer, chord = CHORD)
    define index chord_name on CHORD(name)
    define index note_name on NOTE(name)
    define index note_chord on NOTE(chord)
  )",
                                  &db);
  if (!ddl.ok()) std::abort();
  int note_name = 0;
  for (int c = 1; c <= n_chords; ++c) {
    EntityId chord = *db.CreateEntity("CHORD");
    (void)db.SetAttribute(chord, "name", Value::Int(c));
    for (int n = 0; n < notes_per_chord; ++n) {
      EntityId note = *db.CreateEntity("NOTE");
      (void)db.SetAttribute(note, "name", Value::Int(note_name++));
      (void)db.SetAttribute(note, "chord", Value::Ref(chord));
    }
  }
  return db;
}

// Thematic-catalog point lookup: one note by name, worst case (the
// last-created name) for the scan.
std::string LookupQuery(int total_notes) {
  return "range of n is NOTE\nretrieve (n.name) where n.name = " +
         std::to_string(total_notes - 1);
}

// §5.6 join: the notes belonging to the last chord, reached through the
// chord's own indexed name and the note_chord reference index.
std::string IsJoinQuery(int n_chords) {
  return "range of n is NOTE\nrange of c is CHORD\n"
         "retrieve (n.name) where n.chord is c and c.name = " +
         std::to_string(n_chords);
}

void BM_LookupIndexed(benchmark::State& state) {
  int notes = static_cast<int>(state.range(0));
  Database db = MakeIndexedChordDb(1, notes);
  Connection conn = Connection::Local(&db);
  std::string q = LookupQuery(notes);
  for (auto _ : state) benchmark::DoNotOptimize(conn.Execute(q)->size());
}
BENCHMARK(BM_LookupIndexed)->Arg(64)->Arg(1024)->Arg(10000);

void BM_LookupLinearScan(benchmark::State& state) {
  int notes = static_cast<int>(state.range(0));
  Database db = MakeIndexedChordDb(1, notes);
  db.EnableAttrIndex(false);
  Connection conn = Connection::Local(&db);
  std::string q = LookupQuery(notes);
  for (auto _ : state) benchmark::DoNotOptimize(conn.Execute(q)->size());
}
BENCHMARK(BM_LookupLinearScan)->Arg(64)->Arg(1024)->Arg(10000);

// The is-join keeps the chord fan-out fixed at 10 notes per chord and
// grows the corpus, so the indexed side stays proportional to the
// result (10 probes) while the scan touches every note per chord.
void BM_IsJoinIndexed(benchmark::State& state) {
  int chords = static_cast<int>(state.range(0)) / 10;
  Database db = MakeIndexedChordDb(chords, 10);
  Connection conn = Connection::Local(&db);
  std::string q = IsJoinQuery(chords);
  for (auto _ : state) benchmark::DoNotOptimize(conn.Execute(q)->size());
}
BENCHMARK(BM_IsJoinIndexed)->Arg(64)->Arg(1024)->Arg(10000);

void BM_IsJoinLinearScan(benchmark::State& state) {
  int chords = static_cast<int>(state.range(0)) / 10;
  Database db = MakeIndexedChordDb(chords, 10);
  db.EnableAttrIndex(false);
  Connection conn = Connection::Local(&db);
  std::string q = IsJoinQuery(chords);
  for (auto _ : state) benchmark::DoNotOptimize(conn.Execute(q)->size());
}
BENCHMARK(BM_IsJoinLinearScan)->Arg(64)->Arg(1024)->Arg(10000);

// Maintenance price: each iteration re-points one note's indexed
// attributes (two erase+insert pairs in the trees).
void BM_IndexedUpdate(benchmark::State& state) {
  Database db = MakeIndexedChordDb(10, 100);
  EntityId victim = 0;
  (void)db.ForEachEntity("NOTE", [&](EntityId id) {
    victim = id;
    return false;
  });
  int64_t next = 1000000;
  for (auto _ : state) {
    if (!db.SetAttribute(victim, "name", Value::Int(next++)).ok())
      state.SkipWithError("update failed");
  }
}
BENCHMARK(BM_IndexedUpdate);

// Wall-clock nanoseconds per call of `f`, averaged over `iters` calls.
template <typename F>
double NsPerOp(F&& f, int iters) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) f();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

// The acceptance comparison at 10^4 entries, one JSON object so runs
// can be diffed: indexed vs EnableAttrIndex(false) for the catalog
// lookup and the is-join, plus the registry's index counters.
void EmitAcceptanceJson() {
  constexpr int kIters = 200;
  MetricsSection metrics;

  Database flat = MakeIndexedChordDb(1, 10000);
  Connection conn = Connection::Local(&flat);
  std::string lookup = LookupQuery(10000);
  double lookup_idx = NsPerOp(
      [&] { benchmark::DoNotOptimize(conn.Execute(lookup)->size()); }, kIters);
  flat.EnableAttrIndex(false);
  conn.local_session()->ClearParseCache();  // replan without the index
  double lookup_scan = NsPerOp(
      [&] { benchmark::DoNotOptimize(conn.Execute(lookup)->size()); },
      kIters / 10);
  flat.EnableAttrIndex(true);

  Database corpus = MakeIndexedChordDb(1000, 10);
  Connection cc = Connection::Local(&corpus);
  std::string join = IsJoinQuery(1000);
  double join_idx = NsPerOp(
      [&] { benchmark::DoNotOptimize(cc.Execute(join)->size()); }, kIters);
  corpus.EnableAttrIndex(false);
  cc.local_session()->ClearParseCache();
  double join_scan = NsPerOp(
      [&] { benchmark::DoNotOptimize(cc.Execute(join)->size()); },
      kIters / 10);
  corpus.EnableAttrIndex(true);

  std::printf(
      "BENCH_JSON {\"bench\": \"s52_attr_index\", "
      "\"scale\": {\"notes\": 10000, \"chords\": 1000}, \"results\": ["
      "{\"op\": \"catalog_lookup\", \"indexed_ns\": %.0f, "
      "\"unindexed_ns\": %.0f, \"speedup\": %.1f}, "
      "{\"op\": \"is_join\", \"indexed_ns\": %.0f, "
      "\"unindexed_ns\": %.0f, \"speedup\": %.1f}], "
      "\"metrics\": {%s}}\n",
      lookup_idx, lookup_scan, lookup_scan / lookup_idx, join_idx, join_scan,
      join_scan / join_idx, metrics.DeltaJson().c_str());
  std::printf("acceptance (>=100x at 10^4 entries): lookup %.1fx, "
              "is-join %.1fx\n\n",
              lookup_scan / lookup_idx, join_scan / join_idx);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "§5.2 — secondary attribute indexes",
      "the thematic-catalog lookup and the §5.6 is-join, indexed vs "
      "the EnableAttrIndex(false) linear-scan ablation");
  std::printf("expect: indexed lookup/join flat in corpus size; the\n"
              "ablated scans linear. IndexedUpdate shows the per-mutation\n"
              "maintenance price.\n\n");
  EmitAcceptanceJson();
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig 11: the entities of a CMN schema. Regenerates the table from the
// installed schema and measures full-schema installation and lookup.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cmn/schema.h"
#include "ddl/parser.h"
#include "meta/meta_schema.h"

namespace {

using mdm::er::Database;

void BM_InstallCmnSchema(benchmark::State& state) {
  for (auto _ : state) {
    Database db;
    if (!mdm::cmn::InstallCmnSchema(&db).ok())
      state.SkipWithError("install failed");
    benchmark::DoNotOptimize(db.schema().entity_types().size());
  }
}
BENCHMARK(BM_InstallCmnSchema);

void BM_InstallPlusMetaSync(benchmark::State& state) {
  for (auto _ : state) {
    Database db;
    if (!mdm::cmn::InstallCmnSchema(&db).ok() ||
        !mdm::meta::InstallMetaSchema(&db).ok() ||
        !mdm::meta::SyncSchemaToMeta(&db).ok())
      state.SkipWithError("install failed");
    benchmark::DoNotOptimize(db.TotalEntities());
  }
}
BENCHMARK(BM_InstallPlusMetaSync);

void BM_EntityTypeLookup(benchmark::State& state) {
  Database db;
  (void)mdm::cmn::InstallCmnSchema(&db);
  const auto& names = mdm::cmn::Fig11EntityTypes();
  size_t i = 0;
  for (auto _ : state) {
    const auto* def = db.schema().FindEntityType(names[i++ % names.size()]);
    if (def == nullptr) state.SkipWithError("lookup failed");
    benchmark::DoNotOptimize(def);
  }
}
BENCHMARK(BM_EntityTypeLookup);

void BM_SchemaDeparse(benchmark::State& state) {
  Database db;
  (void)mdm::cmn::InstallCmnSchema(&db);
  for (auto _ : state) {
    std::string ddl = mdm::ddl::SchemaToDdl(db.schema());
    benchmark::DoNotOptimize(ddl.size());
  }
}
BENCHMARK(BM_SchemaDeparse);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader("Fig 11 — the entities of a CMN schema",
                          "the full entity-type table, Score through "
                          "Degree plus graphical attribute types");
  std::printf("%s\n", mdm::cmn::Fig11Table().c_str());
  Database db;
  (void)mdm::cmn::InstallCmnSchema(&db);
  std::printf("installed: %zu entity types, %zu orderings, "
              "%zu relationships\n\n",
              db.schema().entity_types().size(),
              db.schema().orderings().size(),
              db.schema().relationships().size());
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig11_cmn_entities", smoke);
  return 0;
}

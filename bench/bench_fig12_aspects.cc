// Fig 12: the aspects of musical entities (temporal; timbral with
// pitch/articulation/dynamic subaspects; graphical with textual).
// Regenerates the aspect tree and measures per-aspect view extraction.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cmn/aspects.h"
#include "cmn/schema.h"

namespace {

using mdm::cmn::Aspect;
using mdm::er::Database;

void BM_AspectsOfType(benchmark::State& state) {
  const auto& names = mdm::cmn::Fig11EntityTypes();
  size_t i = 0;
  for (auto _ : state) {
    auto aspects = mdm::cmn::AspectsOf(names[i++ % names.size()]);
    benchmark::DoNotOptimize(aspects.size());
  }
}
BENCHMARK(BM_AspectsOfType);

// Extract the temporal "view": every (type, attribute) pair of the CMN
// schema participating in the temporal aspect.
void BM_AspectViewExtraction(benchmark::State& state) {
  Database db;
  if (!mdm::cmn::InstallCmnSchema(&db).ok()) std::abort();
  const Aspect targets[] = {Aspect::kTemporal, Aspect::kPitch,
                            Aspect::kGraphical};
  size_t which = 0;
  for (auto _ : state) {
    Aspect target = targets[which++ % 3];
    size_t hits = 0;
    for (const auto& type : db.schema().entity_types()) {
      for (const auto& attr : type.attributes) {
        for (Aspect a : mdm::cmn::AttributeAspects(type.name, attr.name))
          if (a == target) ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_AspectViewExtraction);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader("Fig 12 — aspects of musical entities",
                          "the aspect/subaspect tree: views on the "
                          "musical schema");
  std::printf("%s\n", mdm::cmn::AspectTreeText().c_str());

  // The per-aspect attribute counts of the installed schema (the
  // "views" the figure motivates).
  Database db;
  (void)mdm::cmn::InstallCmnSchema(&db);
  const struct {
    Aspect aspect;
    const char* name;
  } kAspects[] = {
      {Aspect::kTemporal, "temporal"},     {Aspect::kPitch, "pitch"},
      {Aspect::kArticulation, "articulation"},
      {Aspect::kDynamic, "dynamic"},       {Aspect::kGraphical, "graphical"},
      {Aspect::kTextual, "textual"},
  };
  std::printf("attributes of the installed CMN schema per aspect view:\n");
  for (const auto& row : kAspects) {
    size_t hits = 0;
    for (const auto& type : db.schema().entity_types())
      for (const auto& attr : type.attributes)
        for (Aspect a : mdm::cmn::AttributeAspects(type.name, attr.name))
          if (a == row.aspect) ++hits;
    std::printf("  %-13s %3zu attributes\n", row.name, hits);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig12_aspects", smoke);
  return 0;
}

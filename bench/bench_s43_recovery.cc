// §4.3 stores scores durably; this bench measures what that durability
// costs at startup. Recovery time is reopen-and-replay: restore the
// snapshot, then redo the journal. It grows linearly with the journal
// length and collapses to O(snapshot) after a checkpoint — the knob the
// MDM exposes for bounding restart time.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <sys/stat.h>

#include "bench_util.h"
#include "er/persist.h"

namespace {

using mdm::er::DurableDatabase;
using mdm::rel::Value;

std::string BenchPath() {
  // Recovery is I/O-bound by design; prefer tmpfs so the numbers track
  // replay work rather than the backing filesystem.
  static const std::string dir = [] {
    std::string d = "/dev/shm/mdm_bench_recovery";
    ::mkdir(d.c_str(), 0755);
    std::FILE* f = std::fopen((d + "/probe").c_str(), "wb");
    if (f != nullptr) {
      std::fclose(f);
      std::remove((d + "/probe").c_str());
      return d;
    }
    return std::string("/tmp");
  }();
  return dir + "/recovery.mdm";
}

void RemoveDbFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".wal").c_str());
  for (int e = 1; e <= 4; ++e)
    std::remove((path + ".wal." + std::to_string(e)).c_str());
}

/// Opens a fresh durable database and journals `n_ops` mutations.
/// With `checkpoint`, a final Checkpoint folds them into the snapshot
/// so the journal left behind is empty.
void Populate(const std::string& path, int n_ops, bool checkpoint) {
  RemoveDbFiles(path);
  auto handle = DurableDatabase::Open(path);
  if (!handle.ok()) std::abort();
  auto* db = (*handle)->db();
  if (!db->DefineEntityType(
             {"NOTE", {{"pitch", mdm::rel::ValueType::kInt, ""}}})
           .ok())
    std::abort();
  for (int i = 0; i < n_ops; ++i) {
    auto note = db->CreateEntity("NOTE");
    if (!note.ok()) std::abort();
    if (!db->SetAttribute(*note, "pitch", Value::Int(36 + i % 48)).ok())
      std::abort();
  }
  if (checkpoint && !(*handle)->Checkpoint().ok()) std::abort();
}

void BM_ReopenVsJournalLen(benchmark::State& state) {
  std::string path = BenchPath();
  Populate(path, static_cast<int>(state.range(0)), /*checkpoint=*/false);
  for (auto _ : state) {
    auto handle = DurableDatabase::Open(path);
    if (!handle.ok()) state.SkipWithError("reopen failed");
    benchmark::DoNotOptimize((*handle)->db()->TotalEntities());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  RemoveDbFiles(path);
}
BENCHMARK(BM_ReopenVsJournalLen)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ReopenAfterCheckpoint(benchmark::State& state) {
  std::string path = BenchPath();
  Populate(path, static_cast<int>(state.range(0)), /*checkpoint=*/true);
  for (auto _ : state) {
    auto handle = DurableDatabase::Open(path);
    if (!handle.ok()) state.SkipWithError("reopen failed");
    benchmark::DoNotOptimize((*handle)->db()->TotalEntities());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  RemoveDbFiles(path);
}
BENCHMARK(BM_ReopenAfterCheckpoint)->Arg(100)->Arg(1000)->Arg(5000);

// One populate + reopen cycle with obs-registry deltas attached: WAL
// records/commits and fsync count + total latency (the span histogram's
// _count/_sum series) attributed to exactly this section.
void EmitDurabilityJson() {
  constexpr int kOps = 1000;
  std::string path = BenchPath();
  mdm::bench::MetricsSection metrics;
  auto t0 = std::chrono::steady_clock::now();
  Populate(path, kOps, /*checkpoint=*/false);
  auto handle = DurableDatabase::Open(path);
  if (!handle.ok()) std::abort();
  benchmark::DoNotOptimize((*handle)->db()->TotalEntities());
  auto t1 = std::chrono::steady_clock::now();
  double total_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  RemoveDbFiles(path);
  std::printf(
      "BENCH_JSON {\"bench\": \"s43_recovery_durability\", "
      "\"ops\": %d, \"populate_reopen_ns\": %.0f, "
      "\"metrics\": {%s}}\n\n",
      kOps, total_ns, metrics.DeltaJson().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "§4.3 — recovery time: reopen-and-replay vs journal length",
      "cost of opening a durable score database after a crash, with and "
      "without a checkpoint bounding the journal");
  std::printf(
      "expect: reopen time linear in journal length; after a checkpoint\n"
      "it is O(snapshot) and nearly independent of the mutation count.\n\n");
  EmitDurabilityJson();
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  return 0;
}

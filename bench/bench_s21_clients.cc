// §2.1 — the MDM as a shared server: N client threads reading one
// database concurrently (snapshot `before`/`under` queries through
// per-client QuelSessions) while one writer churns chord contents.
// Measures aggregate read throughput at 1/2/4/8 clients and reports the
// 8-vs-1 scaling factor. On a single-hardware-thread host the factor
// degenerates toward <= 1 (threads time-slice one core and pay latch
// traffic on top); the JSON line carries hw_threads so results are
// interpreted against the machine that produced them.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "er/persist.h"
#include "er/session.h"
#include "net/connection.h"
#include "quel/quel.h"

namespace {

constexpr int kChords = 64;
constexpr int kNotesPerChord = 8;
double kSecondsPerPoint = 0.5;  // --smoke shrinks this

/// One reader's query mix: alternating ordering predicates and scans,
/// each a fresh snapshot read under the shared latch.
const char* ReaderScript(uint64_t i) {
  switch (i % 3) {
    case 0:
      return "range of n1, n2 is NOTE\n"
             "retrieve (n1.name) where n1 before n2 in note_in_chord "
             "and n2.name = 4";
    case 1:
      return "range of n is NOTE\nrange of c is CHORD\n"
             "retrieve (n.name) where n under c in note_in_chord "
             "and c.name = 7";
    default:
      return "retrieve (k = count(NOTE.name))";
  }
}

/// Runs `threads` readers against `db` for a fixed wall-clock window
/// while one writer rotates notes between two chords; returns aggregate
/// completed read scripts per second.
double MeasureQps(mdm::er::Database* db, int threads) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> errors{0};

  std::thread writer([&] {
    mdm::er::Session session(db);
    auto h = *db->ResolveOrderingHandle("note_in_chord");
    auto c1 = db->Children(h, 1);
    if (!c1.ok() || c1->empty()) std::abort();
    while (!stop.load(std::memory_order_relaxed)) {
      auto w = session.Write();
      // Rotate chord 1: detach its first note and re-append it.
      auto kids = w->Children(h, 1);
      if (!kids.ok() || kids->empty()) continue;
      if (!w->RemoveChild(h, kids->front()).ok() ||
          !w->AppendChild(h, 1, kids->front()).ok())
        errors.fetch_add(1);
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      mdm::quel::QuelSession session(db);
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        if (session.Execute(ReaderScript(t + i)).ok())
          reads.fetch_add(1, std::memory_order_relaxed);
        else
          errors.fetch_add(1);
      }
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kSecondsPerPoint));
  stop.store(true);
  for (std::thread& t : readers) t.join();
  writer.join();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (errors.load() != 0) {
    std::printf("WARNING: %llu failed operations\n",
                (unsigned long long)errors.load());
  }
  return static_cast<double>(reads.load()) / secs;
}

/// Writer throughput against a *journaled* database: kWriters committer
/// threads appending through Connection (each append = one statement
/// group = one commit that must reach the disk) while `readers`
/// snapshot-readers run alongside. With group commit OFF every commit
/// pays its own fsync inside the exclusive latch; ON, commit records
/// are appended under the latch and the fsync is batched in the
/// coordinator outside it — the write-path overhaul's headline number.
constexpr int kWriters = 8;

double MeasureWriterQps(const std::string& path, int readers,
                        bool group_commit) {
  auto remove_files = [&] {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    std::remove((path + ".wal").c_str());
  };
  remove_files();
  auto h = mdm::er::DurableDatabase::Open(path);
  if (!h.ok()) std::abort();
  if (group_commit)
    (*h)->EnableGroupCommit({/*interval_us=*/100, /*max_batch=*/64});
  mdm::er::Database* db = (*h)->db();
  {
    mdm::Connection setup = mdm::Connection::Local(db);
    if (!setup.Execute("define entity NOTE (name = integer)").ok())
      std::abort();
    if (!setup.Execute("append to NOTE (name = 0)").ok()) std::abort();
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> errors{0};

  std::vector<std::thread> writer_threads;
  for (int w = 0; w < kWriters; ++w) {
    writer_threads.emplace_back([&, w] {
      mdm::Connection conn = mdm::Connection::Local(db);
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        if (conn.Execute(
                    mdm::StrFormat("append to NOTE (name = %llu)",
                                   (unsigned long long)(w * 1000000 + i)))
                .ok())
          writes.fetch_add(1, std::memory_order_relaxed);
        else
          errors.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> reader_threads;
  for (int t = 0; t < readers; ++t) {
    reader_threads.emplace_back([&] {
      mdm::Connection conn = mdm::Connection::Local(db);
      while (!stop.load(std::memory_order_relaxed))
        (void)conn.Execute("retrieve (k = count(NOTE.name))");
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kSecondsPerPoint));
  stop.store(true);
  for (std::thread& t : writer_threads) t.join();
  for (std::thread& t : reader_threads) t.join();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (errors.load() != 0)
    std::printf("WARNING: %llu failed writes\n",
                (unsigned long long)errors.load());
  double qps = static_cast<double>(writes.load()) / secs;
  h->reset();  // close before removing the files
  remove_files();
  return qps;
}

}  // namespace

int main(int argc, char** argv) {
  if (mdm::bench::ConsumeSmokeFlag(&argc, argv))
    kSecondsPerPoint = 0.05;
  mdm::bench::PrintHeader(
      "§2.1 — concurrent MDM clients: read throughput vs client count",
      "fig 1's many-clients/one-server shape: N reader sessions + 1 "
      "writer against a shared music database");
  std::printf(
      "expect: near-linear read scaling up to the hardware thread count;\n"
      "beyond it, threads time-slice and the curve flattens (or dips from\n"
      "latch handoff). Reads stay snapshot-consistent throughout.\n\n");

  mdm::er::Database db =
      mdm::bench::MakeChordDb(kChords, kNotesPerChord);
  const unsigned hw = std::thread::hardware_concurrency();

  const int counts[] = {1, 2, 4, 8};
  double qps[4] = {};
  for (int i = 0; i < 4; ++i) {
    qps[i] = MeasureQps(&db, counts[i]);
    std::printf("%d reader(s) + 1 writer: %10.0f reads/s\n", counts[i],
                qps[i]);
  }
  double scaling = qps[0] > 0 ? qps[3] / qps[0] : 0.0;
  std::printf("\n8-vs-1 scaling: %.2fx (hardware threads: %u)\n", scaling,
              hw);
  std::printf(
      "BENCH_JSON {\"bench\": \"s21_clients\", \"chords\": %d, "
      "\"notes_per_chord\": %d, \"seconds_per_point\": %.2f, "
      "\"qps_1\": %.0f, \"qps_2\": %.0f, \"qps_4\": %.0f, "
      "\"qps_8\": %.0f, \"scaling_8v1\": %.3f, \"hw_threads\": %u}\n",
      kChords, kNotesPerChord, kSecondsPerPoint, qps[0], qps[1], qps[2],
      qps[3], scaling, hw);

  // --- writer throughput: WAL group commit on/off × 1/4/8 readers ----
  std::printf(
      "\nwriter throughput (journaled db, %d writer threads; commits "
      "must\nreach disk — group commit batches concurrent fsyncs, "
      "snapshot reads\nkeep readers off the latch):\n\n",
      kWriters);
  const std::string wpath = "bench_s21_writers.mdm";
  const int reader_counts[] = {1, 4, 8};
  double wqps_on[3] = {};
  double wqps_off[3] = {};
  for (int i = 0; i < 3; ++i) {
    wqps_off[i] = MeasureWriterQps(wpath, reader_counts[i], false);
    wqps_on[i] = MeasureWriterQps(wpath, reader_counts[i], true);
    std::printf(
        "%d reader(s) + %d writers: %8.0f writes/s (group commit off)  "
        "%8.0f writes/s (on)  %.1fx\n",
        reader_counts[i], kWriters, wqps_off[i], wqps_on[i],
        wqps_off[i] > 0 ? wqps_on[i] / wqps_off[i] : 0.0);
  }
  double speedup_8r =
      wqps_off[2] > 0 ? wqps_on[2] / wqps_off[2] : 0.0;
  std::printf("\ngroup-commit speedup under 8 readers: %.1fx\n",
              speedup_8r);
  std::printf(
      "BENCH_JSON {\"bench\": \"s21_writers\", \"writers\": %d, "
      "\"seconds_per_point\": %.2f, "
      "\"gc_off_qps_r1\": %.0f, \"gc_off_qps_r4\": %.0f, "
      "\"gc_off_qps_r8\": %.0f, "
      "\"gc_on_qps_r1\": %.0f, \"gc_on_qps_r4\": %.0f, "
      "\"gc_on_qps_r8\": %.0f, "
      "\"gc_speedup_r8\": %.3f, \"hw_threads\": %u}\n",
      kWriters, kSecondsPerPoint, wqps_off[0], wqps_off[1], wqps_off[2],
      wqps_on[0], wqps_on[1], wqps_on[2], speedup_8r, hw);
  return 0;
}

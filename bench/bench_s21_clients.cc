// §2.1 — the MDM as a shared server: N client threads reading one
// database concurrently (snapshot `before`/`under` queries through
// per-client QuelSessions) while one writer churns chord contents.
// Measures aggregate read throughput at 1/2/4/8 clients and reports the
// 8-vs-1 scaling factor. On a single-hardware-thread host the factor
// degenerates toward <= 1 (threads time-slice one core and pay latch
// traffic on top); the JSON line carries hw_threads so results are
// interpreted against the machine that produced them.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "er/session.h"
#include "quel/quel.h"

namespace {

constexpr int kChords = 64;
constexpr int kNotesPerChord = 8;
double kSecondsPerPoint = 0.5;  // --smoke shrinks this

/// One reader's query mix: alternating ordering predicates and scans,
/// each a fresh snapshot read under the shared latch.
const char* ReaderScript(uint64_t i) {
  switch (i % 3) {
    case 0:
      return "range of n1, n2 is NOTE\n"
             "retrieve (n1.name) where n1 before n2 in note_in_chord "
             "and n2.name = 4";
    case 1:
      return "range of n is NOTE\nrange of c is CHORD\n"
             "retrieve (n.name) where n under c in note_in_chord "
             "and c.name = 7";
    default:
      return "retrieve (k = count(NOTE.name))";
  }
}

/// Runs `threads` readers against `db` for a fixed wall-clock window
/// while one writer rotates notes between two chords; returns aggregate
/// completed read scripts per second.
double MeasureQps(mdm::er::Database* db, int threads) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> errors{0};

  std::thread writer([&] {
    mdm::er::Session session(db);
    auto h = *db->ResolveOrderingHandle("note_in_chord");
    auto c1 = db->Children(h, 1);
    if (!c1.ok() || c1->empty()) std::abort();
    while (!stop.load(std::memory_order_relaxed)) {
      auto w = session.Write();
      // Rotate chord 1: detach its first note and re-append it.
      auto kids = w->Children(h, 1);
      if (!kids.ok() || kids->empty()) continue;
      if (!w->RemoveChild(h, kids->front()).ok() ||
          !w->AppendChild(h, 1, kids->front()).ok())
        errors.fetch_add(1);
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      mdm::quel::QuelSession session(db);
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        if (session.Execute(ReaderScript(t + i)).ok())
          reads.fetch_add(1, std::memory_order_relaxed);
        else
          errors.fetch_add(1);
      }
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kSecondsPerPoint));
  stop.store(true);
  for (std::thread& t : readers) t.join();
  writer.join();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (errors.load() != 0) {
    std::printf("WARNING: %llu failed operations\n",
                (unsigned long long)errors.load());
  }
  return static_cast<double>(reads.load()) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  if (mdm::bench::ConsumeSmokeFlag(&argc, argv))
    kSecondsPerPoint = 0.05;
  mdm::bench::PrintHeader(
      "§2.1 — concurrent MDM clients: read throughput vs client count",
      "fig 1's many-clients/one-server shape: N reader sessions + 1 "
      "writer against a shared music database");
  std::printf(
      "expect: near-linear read scaling up to the hardware thread count;\n"
      "beyond it, threads time-slice and the curve flattens (or dips from\n"
      "latch handoff). Reads stay snapshot-consistent throughout.\n\n");

  mdm::er::Database db =
      mdm::bench::MakeChordDb(kChords, kNotesPerChord);
  const unsigned hw = std::thread::hardware_concurrency();

  const int counts[] = {1, 2, 4, 8};
  double qps[4] = {};
  for (int i = 0; i < 4; ++i) {
    qps[i] = MeasureQps(&db, counts[i]);
    std::printf("%d reader(s) + 1 writer: %10.0f reads/s\n", counts[i],
                qps[i]);
  }
  double scaling = qps[0] > 0 ? qps[3] / qps[0] : 0.0;
  std::printf("\n8-vs-1 scaling: %.2fx (hardware threads: %u)\n", scaling,
              hw);
  std::printf(
      "BENCH_JSON {\"bench\": \"s21_clients\", \"chords\": %d, "
      "\"notes_per_chord\": %d, \"seconds_per_point\": %.2f, "
      "\"qps_1\": %.0f, \"qps_2\": %.0f, \"qps_4\": %.0f, "
      "\"qps_8\": %.0f, \"scaling_8v1\": %.3f, \"hw_threads\": %u}\n",
      kChords, kNotesPerChord, kSecondsPerPoint, qps[0], qps[1], qps[2],
      qps[3], scaling, hw);
  return 0;
}

// Fig 9: the HO graph of the meta-schema — ENTITY, RELATIONSHIP,
// ATTRIBUTE and ORDERING stored as data in the database they describe.
// Regenerates the graph, self-hosts a schema, and measures catalog-sync
// cost against schema size.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "er/schema.h"
#include "meta/meta_schema.h"

namespace {

using mdm::er::Database;
using mdm::er::EntityTypeDef;

Database MakeSchemaOfSize(int n_types, int attrs_per_type) {
  Database db;
  if (!mdm::meta::InstallMetaSchema(&db).ok()) std::abort();
  for (int t = 0; t < n_types; ++t) {
    EntityTypeDef def;
    def.name = "T" + std::to_string(t);
    for (int a = 0; a < attrs_per_type; ++a)
      def.attributes.push_back(
          {"attr" + std::to_string(a), mdm::rel::ValueType::kInt, ""});
    if (!db.DefineEntityType(def).ok()) std::abort();
  }
  return db;
}

void BM_SyncSchemaToMeta(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db = MakeSchemaOfSize(n, 4);
    state.ResumeTiming();
    if (!mdm::meta::SyncSchemaToMeta(&db).ok())
      state.SkipWithError("sync failed");
    benchmark::DoNotOptimize(db.TotalEntities());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SyncSchemaToMeta)->Arg(4)->Arg(32)->Arg(128);

void BM_ResyncIdempotent(benchmark::State& state) {
  Database db = MakeSchemaOfSize(static_cast<int>(state.range(0)), 4);
  if (!mdm::meta::SyncSchemaToMeta(&db).ok()) std::abort();
  for (auto _ : state) {
    if (!mdm::meta::SyncSchemaToMeta(&db).ok())
      state.SkipWithError("resync failed");
    benchmark::DoNotOptimize(db.TotalEntities());
  }
}
BENCHMARK(BM_ResyncIdempotent)->Arg(4)->Arg(32)->Arg(128);

void BM_MetaAttributeLookup(benchmark::State& state) {
  Database db = MakeSchemaOfSize(static_cast<int>(state.range(0)), 4);
  if (!mdm::meta::SyncSchemaToMeta(&db).ok()) std::abort();
  int i = 0;
  for (auto _ : state) {
    auto names = mdm::meta::MetaAttributeNames(
        db, "T" + std::to_string(i++ % state.range(0)));
    if (!names.ok()) state.SkipWithError("lookup failed");
    benchmark::DoNotOptimize(names->size());
  }
}
BENCHMARK(BM_MetaAttributeLookup)->Arg(4)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 9 — the meta-schema's HO graph",
      "ENTITY/RELATIONSHIP own ordered ATTRIBUTEs; ORDERING references "
      "its parent ENTITY and children via order_child");
  Database db;
  (void)mdm::meta::InstallMetaSchema(&db);
  std::printf("%s\n", db.HoGraphDot().c_str());
  (void)mdm::meta::SyncSchemaToMeta(&db);
  auto attrs = mdm::meta::MetaAttributeNames(db, "ORDERING");
  std::printf("the ORDERING meta-entity's own catalogued attributes:");
  for (const std::string& a : *attrs) std::printf(" %s", a.c_str());
  std::printf("\n(schema and data in the same database, as §6 requires)\n\n");
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig09_meta_schema", smoke);
  return 0;
}

// §5.6 structural indexes in isolation: the per-ordering sibling-rank
// map behind `before`/`after` and the Euler-tour interval labels behind
// multi-level `under`, each against its EnableOrderingIndex(false)
// fallback (linear sibling scan / parent-chain walk). Also measures the
// price of incremental invalidation: a mutation followed by a query
// forces a per-parent rank rebuild or a full interval relabel.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "quel/quel.h"

namespace {

using mdm::bench::MakeChordDb;
using mdm::er::Database;
using mdm::er::EntityId;
using mdm::er::OrderingHandle;

// One CHORD with `width` NOTE children; returns the last two siblings —
// the worst case for the unindexed linear scan.
struct WideFixture {
  Database db;
  OrderingHandle h;
  EntityId chord = 0;
  EntityId a = 0, b = 0;

  explicit WideFixture(int width) : db(MakeChordDb(1, width)) {
    h = *db.ResolveOrderingHandle("note_in_chord");
    (void)db.ForEachEntity("CHORD", [&](EntityId id) {
      chord = id;
      return false;
    });
    std::vector<EntityId> kids = *db.Children(h, chord);
    a = kids[kids.size() - 2];
    b = kids.back();
  }
};

// A recursive SECTION chain of the given depth; `under(leaf, root)` is
// the worst case for the unindexed parent walk.
struct DeepFixture {
  Database db;
  OrderingHandle h;
  EntityId root = 0, leaf = 0;

  explicit DeepFixture(int depth) {
    auto ddl = mdm::ddl::ExecuteDdl(R"(
      define entity SECTION (name = integer)
      define ordering sec_tree (SECTION) under SECTION
    )",
                                    &db);
    if (!ddl.ok()) std::abort();
    h = *db.ResolveOrderingHandle("sec_tree");
    EntityId parent = *db.CreateEntity("SECTION");
    root = parent;
    for (int i = 1; i < depth; ++i) {
      EntityId next = *db.CreateEntity("SECTION");
      (void)db.AppendChild(h, parent, next);
      parent = next;
    }
    leaf = parent;
  }
};

void BM_BeforeRankIndexed(benchmark::State& state) {
  WideFixture f(static_cast<int>(state.range(0)));
  (void)f.db.Before(f.h, f.a, f.b);  // build the rank map once
  for (auto _ : state)
    benchmark::DoNotOptimize(*f.db.Before(f.h, f.a, f.b));
}
BENCHMARK(BM_BeforeRankIndexed)->Arg(64)->Arg(1024)->Arg(10000);

void BM_BeforeLinearScan(benchmark::State& state) {
  WideFixture f(static_cast<int>(state.range(0)));
  f.db.EnableOrderingIndex(false);
  for (auto _ : state)
    benchmark::DoNotOptimize(*f.db.Before(f.h, f.a, f.b));
}
BENCHMARK(BM_BeforeLinearScan)->Arg(64)->Arg(1024)->Arg(10000);

void BM_UnderIntervalIndexed(benchmark::State& state) {
  DeepFixture f(static_cast<int>(state.range(0)));
  (void)f.db.Under(f.h, f.leaf, f.root);  // build the interval labels once
  for (auto _ : state)
    benchmark::DoNotOptimize(*f.db.Under(f.h, f.leaf, f.root));
}
BENCHMARK(BM_UnderIntervalIndexed)->Arg(64)->Arg(1024)->Arg(10000);

void BM_UnderParentWalk(benchmark::State& state) {
  DeepFixture f(static_cast<int>(state.range(0)));
  f.db.EnableOrderingIndex(false);
  for (auto _ : state)
    benchmark::DoNotOptimize(*f.db.Under(f.h, f.leaf, f.root));
}
BENCHMARK(BM_UnderParentWalk)->Arg(64)->Arg(1024)->Arg(10000);

// Worst case for invalidation: every iteration appends a child (which
// dirties the parent's rank map) and then asks `before`, forcing a
// rebuild of the whole sibling list.
void BM_BeforeRebuildAfterAppend(benchmark::State& state) {
  WideFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    EntityId extra = *f.db.CreateEntity("NOTE");
    (void)f.db.AppendChild(f.h, f.chord, extra);
    benchmark::DoNotOptimize(*f.db.Before(f.h, f.a, f.b));
  }
}
BENCHMARK(BM_BeforeRebuildAfterAppend)->Arg(64)->Arg(1024);

// Same churn for `under`: an append anywhere dirties the Euler labels,
// so the next containment test relabels the whole ordering.
void BM_UnderRebuildAfterAppend(benchmark::State& state) {
  DeepFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    EntityId extra = *f.db.CreateEntity("SECTION");
    (void)f.db.AppendChild(f.h, f.root, extra);
    benchmark::DoNotOptimize(*f.db.Under(f.h, f.leaf, f.root));
  }
}
BENCHMARK(BM_UnderRebuildAfterAppend)->Arg(64)->Arg(1024);

// End-to-end: the paper's `before` retrieve over a 10k-note score,
// indexed vs ablated, through the planner.
constexpr const char* kBeforeQuery = R"(
  range of n1, n2 is NOTE
  retrieve (n1.name)
    where n1 before n2 in note_in_chord and n2.name = 2
)";

void BM_QueryBefore10kIndexed(benchmark::State& state) {
  Database db = MakeChordDb(100, 100);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.Execute(kBeforeQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->size());
  }
}
BENCHMARK(BM_QueryBefore10kIndexed);

void BM_QueryBefore10kUnindexed(benchmark::State& state) {
  Database db = MakeChordDb(100, 100);
  db.EnableOrderingIndex(false);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.Execute(kBeforeQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->size());
  }
}
BENCHMARK(BM_QueryBefore10kUnindexed);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "§5.6 — ordering-index ablation",
      "before/after as rank comparisons, multi-level under as interval "
      "containment, vs the unindexed scan/walk fallbacks");
  std::printf("expect: indexed before/under flat in sibling count and\n"
              "depth; the fallbacks linear. Rebuild-after-append shows the\n"
              "cost a mutation puts on the next ordering query.\n\n");
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("s56_ordering_index", smoke);
  return 0;
}

// Fig 8: recursive ordering — beam groups containing beam groups and
// chords. Regenerates fig 8(c)'s instance graph from fig 8(b)'s
// notation, and measures recursive construction and the §5.5 cycle
// check as nesting deepens (the DESIGN.md check-on-insert ablation).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cmn/temporal.h"
#include "ddl/parser.h"

namespace {

using mdm::er::Database;
using mdm::er::EntityId;

Database MakeBeamSchema() {
  Database db;
  auto ddl = mdm::ddl::ExecuteDdl(R"(
    define entity BEAM_GROUP (label = string)
    define entity CHORD (label = string)
    define ordering beams (BEAM_GROUP, CHORD) under BEAM_GROUP
  )",
                                  &db);
  if (!ddl.ok()) std::abort();
  return db;
}

// A chain of nested beam groups `depth` deep with one chord per level.
EntityId BuildNestedBeams(Database* db, int depth) {
  auto root = db->CreateEntity("BEAM_GROUP");
  EntityId current = *root;
  for (int d = 0; d < depth; ++d) {
    auto chord = db->CreateEntity("CHORD");
    (void)db->AppendChild("beams", current, *chord);
    auto inner = db->CreateEntity("BEAM_GROUP");
    (void)db->AppendChild("beams", current, *inner);
    current = *inner;
  }
  return *root;
}

void BM_BuildNestedBeams(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Database db = MakeBeamSchema();
    EntityId root = BuildNestedBeams(&db, depth);
    benchmark::DoNotOptimize(root);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_BuildNestedBeams)->Arg(4)->Arg(32)->Arg(256);

// The cycle check walks ancestors on every recursive insert; its cost
// grows with nesting depth. This measures the deepest (worst-case)
// insert.
void BM_CycleCheckedInsert(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Database db = MakeBeamSchema();
  EntityId root = BuildNestedBeams(&db, depth);
  (void)root;
  // Find the deepest group.
  EntityId deepest = root;
  while (true) {
    auto kids = db.Children("beams", deepest);
    bool descended = false;
    for (EntityId kid : *kids) {
      auto type = db.TypeOf(kid);
      if (type.ok() && *type == "BEAM_GROUP") {
        deepest = kid;
        descended = true;
        break;
      }
    }
    if (!descended) break;
  }
  for (auto _ : state) {
    auto chord = db.CreateEntity("CHORD");
    if (!db.AppendChild("beams", deepest, *chord).ok())
      state.SkipWithError("insert failed");
    benchmark::DoNotOptimize(*chord);
    state.PauseTiming();
    (void)db.RemoveChild("beams", *chord);
    (void)db.DeleteEntity(*chord);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_CycleCheckedInsert)->Arg(4)->Arg(32)->Arg(256);

// Attempting to close a cycle must fail no matter how deep.
void BM_CycleRejection(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Database db = MakeBeamSchema();
  EntityId root = BuildNestedBeams(&db, depth);
  EntityId deepest = root;
  while (true) {
    auto kids = db.Children("beams", deepest);
    bool descended = false;
    for (EntityId kid : *kids) {
      auto type = db.TypeOf(kid);
      if (type.ok() && *type == "BEAM_GROUP") {
        deepest = kid;
        descended = true;
        break;
      }
    }
    if (!descended) break;
  }
  for (auto _ : state) {
    mdm::Status status = db.AppendChild("beams", deepest, root);
    if (status.code() != mdm::StatusCode::kConstraintViolation)
      state.SkipWithError("cycle not rejected");
    benchmark::DoNotOptimize(status.ok());
  }
}
BENCHMARK(BM_CycleRejection)->Arg(4)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 8 — recursive ordering: beam groups",
      "(a) HO graph with the recursive edge, (b) beamed notation with "
      "chords c1..c6, (c) its instance graph g1 = (c1, g2 = (c2 c3 c4), "
      "g3 = (c5 c6))");
  Database db = MakeBeamSchema();
  // Rebuild fig 8(c) exactly.
  auto mk = [&db](const char* type, const char* label) {
    auto id = db.CreateEntity(type);
    (void)db.SetAttribute(*id, "label", mdm::rel::Value::String(label));
    return *id;
  };
  EntityId g1 = mk("BEAM_GROUP", "g1");
  EntityId g2 = mk("BEAM_GROUP", "g2");
  EntityId g3 = mk("BEAM_GROUP", "g3");
  EntityId c[6];
  for (int i = 0; i < 6; ++i)
    c[i] = mk("CHORD", ("c" + std::to_string(i + 1)).c_str());
  (void)db.AppendChild("beams", g1, c[0]);
  (void)db.AppendChild("beams", g1, g2);
  (void)db.AppendChild("beams", g1, g3);
  (void)db.AppendChild("beams", g2, c[1]);
  (void)db.AppendChild("beams", g2, c[2]);
  (void)db.AppendChild("beams", g2, c[3]);
  (void)db.AppendChild("beams", g3, c[4]);
  (void)db.AppendChild("beams", g3, c[5]);
  auto dot = db.InstanceGraphDot("beams", g1, "label");
  std::printf("%s\n", dot->c_str());
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig08_recursive_beams", smoke);
  return 0;
}

// §2.1 over the wire — the cost of putting the MDM behind a socket:
// the same read mix as bench_s21_clients, issued by 1/4/8 remote
// clients against an in-process mdmd on 127.0.0.1, with the in-process
// (mdm::Connection::Local) path measured alongside as the baseline.
// Remote throughput pays a protocol round trip per script (frame
// encode, TCP loopback, frame decode, paging) on top of the same QUEL
// execution; the per-request latency column makes that tax visible.
// On a single-hardware-thread host the remote curve flattens early
// (client threads, connection threads, and the accept loop all
// time-slice one core); hw_threads in the JSON line qualifies results.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/connection.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "quel/quel.h"

namespace {

constexpr int kChords = 64;
constexpr int kNotesPerChord = 8;
double kSecondsPerPoint = 0.5;  // --smoke shrinks this

/// Same alternating read mix as bench_s21_clients: ordering predicates
/// and a counting scan, so local and remote numbers are comparable.
const char* ReaderScript(uint64_t i) {
  switch (i % 3) {
    case 0:
      return "range of n1, n2 is NOTE\n"
             "retrieve (n1.name) where n1 before n2 in note_in_chord "
             "and n2.name = 4";
    case 1:
      return "range of n is NOTE\nrange of c is CHORD\n"
             "retrieve (n.name) where n under c in note_in_chord "
             "and c.name = 7";
    default:
      return "retrieve (k = count(NOTE.name))";
  }
}

struct Point {
  double qps = 0;        // completed scripts per second, all clients
  double latency_us = 0;  // mean per-request wall clock, microseconds
  double p99_us = 0;      // client-observed p99, microseconds
};

/// Runs `threads` clients for a fixed window; each obtains a Connection
/// from `dial` (a fresh one per thread — Connections are single-client).
template <typename Dial>
Point Measure(int threads, Dial dial) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> done{0};
  std::atomic<uint64_t> errors{0};
  mdm::bench::LatencyRecorder lat;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      auto conn = dial();
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        auto req0 = std::chrono::steady_clock::now();
        bool ok = conn.Execute(ReaderScript(t + i)).ok();
        lat.ObserveNs(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - req0)
                .count()));
        if (ok)
          done.fetch_add(1, std::memory_order_relaxed);
        else
          errors.fetch_add(1);
      }
    });
  }
  auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(kSecondsPerPoint));
  stop.store(true);
  for (std::thread& c : clients) c.join();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (errors.load() != 0) {
    std::printf("WARNING: %llu failed scripts\n",
                (unsigned long long)errors.load());
  }
  Point p;
  p.qps = static_cast<double>(done.load()) / secs;
  // Mean latency as seen by one client: threads run concurrently, so a
  // client completes qps/threads requests per second.
  if (p.qps > 0) p.latency_us = 1e6 * threads / p.qps;
  p.p99_us = lat.PercentileUs(0.99);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  if (mdm::bench::ConsumeSmokeFlag(&argc, argv))
    kSecondsPerPoint = 0.05;
  mdm::bench::PrintHeader(
      "§2.1 — networked MDM: remote clients vs in-process sessions",
      "fig 1's terminals talking to the music data manager over the "
      "mdmd wire protocol (docs/PROTOCOL.md)");
  std::printf(
      "expect: remote qps below in-process qps at every client count —\n"
      "the gap is the protocol round trip (frame codec + TCP loopback +\n"
      "result paging); latency shows the same tax per request.\n\n");

  mdm::er::Database db = mdm::bench::MakeChordDb(kChords, kNotesPerChord);
  mdm::net::Server server(&db);
  if (!server.Start().ok()) {
    std::printf("cannot start mdmd server\n");
    return 1;
  }
  const uint16_t port = server.port();
  const unsigned hw = std::thread::hardware_concurrency();

  const int counts[] = {1, 4, 8};
  Point local[3], remote[3];
  std::printf("%-10s %14s %14s %12s %12s\n", "clients", "local qps",
              "remote qps", "local us", "remote us");
  mdm::bench::MetricsSection metrics;
  for (int i = 0; i < 3; ++i) {
    local[i] = Measure(counts[i],
                       [&db] { return mdm::Connection::Local(&db); });
    remote[i] = Measure(counts[i], [port] {
      auto conn = mdm::Connection::Remote("127.0.0.1", port);
      if (!conn.ok()) std::abort();
      return std::move(*conn);
    });
    std::printf("%-10d %14.0f %14.0f %12.1f %12.1f\n", counts[i],
                local[i].qps, remote[i].qps, local[i].latency_us,
                remote[i].latency_us);
  }
  // Tracing overhead: the same 4-client remote mix with the v3 trace
  // context enabled at three sampling rates. Every request already
  // carries a trace_id (that is the v3 frame layout); sampling decides
  // whether the server records the request's span tree into its trace
  // ring. Target: sampling 1% of requests costs <= 2% qps vs 0%.
  std::printf(
      "\ntracing overhead (4 remote clients, --trace-sample R):\n"
      "%-10s %14s %12s\n", "sampling", "qps", "p99 us");
  const double kRates[] = {0.0, 0.01, 1.0};
  Point traced[3];
  for (int i = 0; i < 3; ++i) {
    const double rate = kRates[i];
    traced[i] = Measure(4, [port, rate, i] {
      mdm::net::ClientOptions copts;
      copts.trace_sample_rate = rate;
      copts.trace_seed = 0x6D646D62 + static_cast<uint64_t>(i);  // "mdmb"
      auto conn = mdm::Connection::Remote("127.0.0.1", port, copts);
      if (!conn.ok()) std::abort();
      return std::move(*conn);
    });
    char label[16];
    std::snprintf(label, sizeof label, "%g%%", rate * 100);
    std::printf("%-10s %14.0f %12.1f\n", label, traced[i].qps,
                traced[i].p99_us);
  }
  double trace_1pct_over_0 =
      traced[0].qps > 0 ? traced[1].qps / traced[0].qps : 0.0;
  std::printf("qps at 1%% sampling relative to 0%%: %.3fx "
              "(target: >= 0.98x)\n", trace_1pct_over_0);

  server.Stop();
  double tax_1 = local[0].qps > 0 ? remote[0].qps / local[0].qps : 0.0;
  std::printf("\nremote/local throughput at 1 client: %.2fx "
              "(hardware threads: %u)\n",
              tax_1, hw);
  std::printf(
      "BENCH_JSON {\"bench\": \"s21_net\", \"chords\": %d, "
      "\"notes_per_chord\": %d, \"seconds_per_point\": %.2f, "
      "\"local_qps_1\": %.0f, \"local_qps_4\": %.0f, \"local_qps_8\": %.0f, "
      "\"remote_qps_1\": %.0f, \"remote_qps_4\": %.0f, "
      "\"remote_qps_8\": %.0f, \"remote_lat_us_1\": %.1f, "
      "\"remote_lat_us_4\": %.1f, \"remote_lat_us_8\": %.1f, "
      "\"remote_over_local_1\": %.3f, "
      "\"trace_qps_0pct\": %.0f, \"trace_qps_1pct\": %.0f, "
      "\"trace_qps_100pct\": %.0f, \"trace_p99_us_0pct\": %.1f, "
      "\"trace_p99_us_1pct\": %.1f, \"trace_p99_us_100pct\": %.1f, "
      "\"trace_1pct_over_0pct\": %.3f, \"hw_threads\": %u%s}\n",
      kChords, kNotesPerChord, kSecondsPerPoint, local[0].qps, local[1].qps,
      local[2].qps, remote[0].qps, remote[1].qps, remote[2].qps,
      remote[0].latency_us, remote[1].latency_us, remote[2].latency_us,
      tax_1, traced[0].qps, traced[1].qps, traced[2].qps, traced[0].p99_us,
      traced[1].p99_us, traced[2].p99_us, trace_1pct_over_0, hw,
      metrics.DeltaJsonSuffix().c_str());
  return 0;
}

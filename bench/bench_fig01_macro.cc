// Fig 1, at scale: the standing macro-benchmark.
//
// The paper's architecture diagram (fig 1) puts one music data manager
// between editors, analysts, typesetters and the thematic-index
// librarians. The micro benches regenerate each figure in isolation;
// this binary replays the whole picture: a seeded corpus of synthetic
// DARMS scores (10^6 notes across 10^3 scores at full scale) is loaded
// through the real importer, then the fig-1 client mix runs against it
// — per-tenant, deterministic, optionally oracle-checked — first over
// in-process connections, then over the mdmd wire protocol.
//
// Flags:
//   --smoke        small preset (~10^4 notes), used by ctest/CI tier 1
//   --oracle       cross-check every op + periodic battery (default in
//                  --smoke; full scale runs open-loop by default)
//   --bulk-index=off   load with incremental per-insert index upkeep
//                  instead of bulk build + one rebuild (the ablation
//                  that reproduces the 10^5 -> 10^6 load slowdown)
//   --ablation     after the phases, load the corpus twice more (bulk
//                  on, bulk off) and emit the pair as BENCH_JSON;
//                  implied by --smoke
//   --scores=N --notes=N --threads=N --ops=N --seed=N  override scale
//
// Output: one BENCH_JSON line per phase (load, local, remote) with
// per-class qps/p50/p99. See docs/WORKLOADS.md.
#include <chrono>
#include <memory>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "corpus/generator.h"
#include "corpus/loader.h"
#include "net/connection.h"
#include "net/server.h"
#include "workload/driver.h"

namespace {

using mdm::Connection;
using mdm::Result;

struct Options {
  bool smoke = false;
  bool oracle = false;
  bool bulk_index = true;
  bool ablation = false;
  int scores = 1000;
  long long notes = 1'000'000;
  int threads = 8;
  int ops_per_tenant = 4;
  uint64_t seed = 42;
};

bool ParseIntFlag(const char* arg, const char* name, long long* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = std::atoll(arg + n + 1);
  return true;
}

Options ParseOptions(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    long long v = 0;
    if (std::strcmp(argv[i], "--oracle") == 0)
      o.oracle = true;
    else if (std::strcmp(argv[i], "--bulk-index=off") == 0)
      o.bulk_index = false;
    else if (std::strcmp(argv[i], "--bulk-index=on") == 0)
      o.bulk_index = true;
    else if (std::strcmp(argv[i], "--ablation") == 0)
      o.ablation = true;
    else if (ParseIntFlag(argv[i], "--scores", &v))
      o.scores = static_cast<int>(v);
    else if (ParseIntFlag(argv[i], "--notes", &v))
      o.notes = v;
    else if (ParseIntFlag(argv[i], "--threads", &v))
      o.threads = static_cast<int>(v);
    else if (ParseIntFlag(argv[i], "--ops", &v))
      o.ops_per_tenant = static_cast<int>(v);
    else if (ParseIntFlag(argv[i], "--seed", &v))
      o.seed = static_cast<uint64_t>(v);
    else
      std::fprintf(stderr, "ignoring unknown flag %s\n", argv[i]);
  }
  return o;
}

void PrintClassJson(std::string* out, const mdm::workload::Report& r) {
  for (int c = 0; c < mdm::workload::kClassCount; ++c) {
    const auto& cs = r.per_class[c];
    const char* name =
        mdm::workload::ClassName(static_cast<mdm::workload::ClientClass>(c));
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  ", \"%s_ops\": %llu, \"%s_errors\": %llu, "
                  "\"%s_qps\": %.1f, \"%s_p50_us\": %.1f, "
                  "\"%s_p99_us\": %.1f",
                  name, (unsigned long long)cs.ops, name,
                  (unsigned long long)cs.errors, name, cs.qps, name,
                  cs.p50_us, name, cs.p99_us);
    *out += buf;
  }
}

/// Runs the fig-1 mix through `factory`-made connections and prints the
/// per-phase BENCH_JSON line. Returns false on divergence or setup
/// failure.
bool RunPhase(const char* phase, const Options& o,
              mdm::corpus::Corpus* corpus,
              const mdm::workload::ConnectionFactory& factory) {
  mdm::workload::WorkloadSpec spec;
  spec.seed = o.seed;
  spec.threads = o.threads;
  spec.ops_per_tenant = o.ops_per_tenant;
  spec.oracle_every = (o.oracle || o.smoke) ? 8 : 0;
  auto report = mdm::workload::RunWorkload(spec, corpus, factory);
  if (!report.ok()) {
    std::printf("%s phase failed: %s\n", phase,
                report.status().message().c_str());
    return false;
  }
  std::printf(
      "%s: %llu ops in %.2fs (%.0f ops/s), %llu errors, "
      "%llu oracle checks, %llu divergences\n",
      phase, (unsigned long long)report->total_ops, report->wall_seconds,
      report->wall_seconds > 0
          ? static_cast<double>(report->total_ops) / report->wall_seconds
          : 0.0,
      (unsigned long long)report->total_errors,
      (unsigned long long)report->oracle_checks,
      (unsigned long long)report->oracle_divergences);
  for (const std::string& d : report->divergences)
    std::printf("  divergence: %s\n", d.c_str());
  std::string classes;
  PrintClassJson(&classes, *report);
  std::printf(
      "BENCH_JSON {\"bench\": \"fig01_macro_%s\", \"smoke\": %s, "
      "\"scores\": %d, \"threads\": %d, \"ops_per_tenant\": %d, "
      "\"total_ops\": %llu, \"total_errors\": %llu, "
      "\"oracle_checks\": %llu, \"oracle_divergences\": %llu, "
      "\"op_log_hash\": \"%016llx\", \"wall_seconds\": %.3f%s}\n",
      phase, o.smoke ? "true" : "false", o.scores, o.threads,
      o.ops_per_tenant, (unsigned long long)report->total_ops,
      (unsigned long long)report->total_errors,
      (unsigned long long)report->oracle_checks,
      (unsigned long long)report->oracle_divergences,
      (unsigned long long)report->op_log_hash, report->wall_seconds,
      classes.c_str());
  return report->total_errors == 0 && report->oracle_divergences == 0;
}

/// Builds a fresh database, loads the corpus into it (emitting the
/// load BENCH_JSON line tagged with the phase), and returns the corpus.
/// Each phase gets its own database: the editors mutate what they are
/// measured against, so sharing one db across phases would leave the
/// second phase's oracle staring at the first phase's appends.
struct LoadedDb {
  std::unique_ptr<mdm::er::Database> db;
  mdm::corpus::Corpus corpus;
};

bool LoadPhaseDb(const char* phase, const Options& o, LoadedDb* out) {
  out->db = std::make_unique<mdm::er::Database>();
  mdm::corpus::LoadOptions load;
  load.spec.seed = o.seed;
  load.spec.scores = o.scores;
  load.spec.target_total_notes = o.notes;
  load.bulk_index_build = o.bulk_index;
  int report_every = o.scores > 20 ? o.scores / 10 : o.scores;
  load.progress = [report_every](int done, long long notes) {
    if (done % report_every == 0)
      std::printf("  loaded %d scores, %lld notes\n", done, notes);
  };
  mdm::bench::MetricsSection load_metrics;
  auto t0 = std::chrono::steady_clock::now();
  auto corpus = mdm::corpus::LoadCorpus(out->db.get(), load);
  double load_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!corpus.ok()) {
    std::printf("corpus load failed: %s\n", corpus.status().message().c_str());
    return false;
  }
  double notes_per_s =
      load_s > 0 ? static_cast<double>(corpus->total_notes) / load_s : 0;
  std::printf(
      "corpus for %s phase: %zu scores, %lld notes, %lld measures in "
      "%.2fs (%.0f notes/s)\n",
      phase, corpus->tenants.size(), (long long)corpus->total_notes,
      (long long)corpus->total_measures, load_s, notes_per_s);
  std::printf(
      "BENCH_JSON {\"bench\": \"fig01_macro_load\", \"phase\": \"%s\", "
      "\"smoke\": %s, \"bulk_index\": %s, \"scores\": %zu, "
      "\"notes\": %lld, \"measures\": %lld, \"seconds\": %.3f, "
      "\"notes_per_second\": %.0f%s}\n",
      phase, o.smoke ? "true" : "false", o.bulk_index ? "true" : "false",
      corpus->tenants.size(), (long long)corpus->total_notes,
      (long long)corpus->total_measures, load_s, notes_per_s,
      load_metrics.DeltaJsonSuffix().c_str());
  out->corpus = *std::move(corpus);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  Options o = ParseOptions(argc, argv);
  o.smoke = smoke;
  if (smoke) {
    // The tier-1/CI preset: ~10^4 notes across 20 scores, oracle on.
    o.scores = 20;
    o.notes = 10'000;
    o.threads = 4;
    o.ops_per_tenant = 8;
  }
  mdm::bench::PrintHeader(
      "Fig 1 macro — the music data manager under the full client mix",
      "fig 1 end to end: editors, analysts, typesetters and librarians "
      "against one shared MDM, at corpus scale");

  // Phase 1: corpus load + the client mix over in-process connections.
  LoadedDb local_db;
  if (!LoadPhaseDb("local", o, &local_db)) return 1;
  bool ok = RunPhase("local", o, &local_db.corpus,
                     [&local_db] {
                       return Result<Connection>(
                           Connection::Local(local_db.db.get()));
                     });
  local_db.db.reset();

  // Phase 2: a fresh load, the same mix over the mdmd wire protocol.
  // Same workload seed + fresh identically-seeded corpus, so the op-log
  // hash must match the local phase's — a transport-parity check.
  LoadedDb remote_db;
  if (!LoadPhaseDb("remote", o, &remote_db)) return 1;
  mdm::net::Server server(remote_db.db.get());
  if (!server.Start().ok()) {
    std::printf("cannot start mdmd server\n");
    return 1;
  }
  const uint16_t port = server.port();
  // At corpus scale a scan-bound op can queue for minutes behind the db
  // latch; the server's 30s interactive default deadline would reject
  // the reply *after* a mutation applied (which the oracle then flags).
  // A client-sent deadline overrides it per request, and mutations are
  // never retried, so a 10-minute budget is safe.
  mdm::net::ClientOptions remote_opts;
  remote_opts.deadline_ms = 600'000;
  ok = RunPhase("remote", o, &remote_db.corpus,
                [port, remote_opts] {
                  return Connection::Remote("127.0.0.1", port, remote_opts);
                }) &&
       ok;
  server.Stop();
  remote_db.db.reset();

  // Ablation: load the same corpus with bulk index build on vs off.
  // With incremental upkeep every insert pays per-index tree
  // maintenance, which is exactly the 10^5 -> 10^6 slowdown the bulk
  // path removes — the BENCH_JSON pair quantifies it.
  if (o.ablation || o.smoke) {
    for (bool bulk : {true, false}) {
      Options ab = o;
      ab.bulk_index = bulk;
      LoadedDb db;
      if (!LoadPhaseDb(bulk ? "ablate_bulk_on" : "ablate_bulk_off", ab, &db))
        return 1;
    }
  }
  return ok ? 0 : 1;
}

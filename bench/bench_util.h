#ifndef MDM_BENCH_BENCH_UTIL_H_
#define MDM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "cmn/schema.h"
#include "cmn/score_builder.h"
#include "common/random.h"
#include "ddl/parser.h"
#include "er/database.h"

namespace mdm::bench {

/// Installs the paper's NOTE/CHORD schema and populates `n_chords`
/// chords with `notes_per_chord` notes each. Note names are sequential;
/// chord names are 1-based.
inline er::Database MakeChordDb(int n_chords, int notes_per_chord) {
  er::Database db;
  auto ddl = ddl::ExecuteDdl(R"(
    define entity CHORD (name = integer)
    define entity NOTE (name = integer)
    define ordering note_in_chord (NOTE) under CHORD
  )",
                             &db);
  if (!ddl.ok()) std::abort();
  int note_name = 0;
  for (int c = 1; c <= n_chords; ++c) {
    auto chord = db.CreateEntity("CHORD");
    (void)db.SetAttribute(*chord, "name", rel::Value::Int(c));
    for (int n = 0; n < notes_per_chord; ++n) {
      auto note = db.CreateEntity("NOTE");
      (void)db.SetAttribute(*note, "name", rel::Value::Int(note_name++));
      (void)db.AppendChild("note_in_chord", *chord, *note);
    }
  }
  return db;
}

/// Builds a random single-voice score of `n_measures` measures in 4/4,
/// four quarter-note single-note chords per measure.
inline er::EntityId MakeRandomScore(er::Database* db, int n_measures,
                                    uint64_t seed = 7) {
  if (!cmn::InstallCmnSchema(db).ok()) std::abort();
  cmn::ScoreBuilder builder(db);
  Rng rng(seed);
  auto score = builder.CreateScore("bench score");
  auto movement = builder.AddMovement(*score, "I");
  auto voice = builder.AddVoice(1);
  for (int m = 1; m <= n_measures; ++m) {
    auto measure = builder.AddMeasure(*movement, m, {4, 4});
    for (int b = 0; b < 4; ++b) {
      auto sync = builder.GetOrAddSync(*measure, Rational(b));
      auto chord = builder.AddChord(*sync, *voice, Rational(1));
      (void)builder.AddNoteMidi(*chord,
                                55 + static_cast<int>(rng.Uniform(24)));
    }
  }
  return *score;
}

inline void PrintHeader(const char* experiment, const char* paper_artifact) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper artifact: %s\n", paper_artifact);
  std::printf("==========================================================\n");
}

}  // namespace mdm::bench

#endif  // MDM_BENCH_BENCH_UTIL_H_

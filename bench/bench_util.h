#ifndef MDM_BENCH_BENCH_UTIL_H_
#define MDM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "cmn/schema.h"
#include "cmn/score_builder.h"
#include "common/random.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "obs/metrics.h"

namespace mdm::bench {

/// Installs the paper's NOTE/CHORD schema and populates `n_chords`
/// chords with `notes_per_chord` notes each. Note names are sequential;
/// chord names are 1-based.
inline er::Database MakeChordDb(int n_chords, int notes_per_chord) {
  er::Database db;
  auto ddl = ddl::ExecuteDdl(R"(
    define entity CHORD (name = integer)
    define entity NOTE (name = integer)
    define ordering note_in_chord (NOTE) under CHORD
  )",
                             &db);
  if (!ddl.ok()) std::abort();
  int note_name = 0;
  for (int c = 1; c <= n_chords; ++c) {
    auto chord = db.CreateEntity("CHORD");
    (void)db.SetAttribute(*chord, "name", rel::Value::Int(c));
    for (int n = 0; n < notes_per_chord; ++n) {
      auto note = db.CreateEntity("NOTE");
      (void)db.SetAttribute(*note, "name", rel::Value::Int(note_name++));
      (void)db.AppendChild("note_in_chord", *chord, *note);
    }
  }
  return db;
}

/// Builds a random single-voice score of `n_measures` measures in 4/4,
/// four quarter-note single-note chords per measure.
inline er::EntityId MakeRandomScore(er::Database* db, int n_measures,
                                    uint64_t seed = 7) {
  if (!cmn::InstallCmnSchema(db).ok()) std::abort();
  cmn::ScoreBuilder builder(db);
  Rng rng(seed);
  auto score = builder.CreateScore("bench score");
  auto movement = builder.AddMovement(*score, "I");
  auto voice = builder.AddVoice(1);
  for (int m = 1; m <= n_measures; ++m) {
    auto measure = builder.AddMeasure(*movement, m, {4, 4});
    for (int b = 0; b < 4; ++b) {
      auto sync = builder.GetOrAddSync(*measure, Rational(b));
      auto chord = builder.AddChord(*sync, *voice, Rational(1));
      (void)builder.AddNoteMidi(*chord,
                                55 + static_cast<int>(rng.Uniform(24)));
    }
  }
  return *score;
}

/// Snapshots the obs registry's monotonic series around a timed bench
/// section, so the BENCH_JSON line can attribute registry activity
/// (buffer-pool hit rates, fsync counts, ...) to that section.
///
///   MetricsSection metrics;
///   ... timed work ...
///   std::printf("BENCH_JSON {... %s}\n", metrics.DeltaJson().c_str());
class MetricsSection {
 public:
  MetricsSection() : before_(obs::Registry::Global()->CounterValues()) {}

  /// Counters that changed since construction, as `"name": delta` JSON
  /// members (no surrounding braces, ready for embedding). Series named
  /// with labels keep them. Empty string when nothing changed.
  std::string DeltaJson() const {
    std::map<std::string, uint64_t> after =
        obs::Registry::Global()->CounterValues();
    std::string out;
    for (const auto& [name, value] : after) {
      auto it = before_.find(name);
      uint64_t delta = value - (it == before_.end() ? 0 : it->second);
      if (delta == 0) continue;
      if (!out.empty()) out += ", ";
      // Series names may embed label quotes; escape them for JSON.
      out += '"';
      for (char ch : name) {
        if (ch == '"' || ch == '\\') out += '\\';
        out += ch;
      }
      out += "\": " + std::to_string(delta);
    }
    return out;
  }

  /// `delta_json` plus a leading comma when non-empty, so callers can
  /// splice it after existing BENCH_JSON members unconditionally.
  std::string DeltaJsonSuffix() const {
    std::string d = DeltaJson();
    return d.empty() ? d : ", " + d;
  }

 private:
  std::map<std::string, uint64_t> before_;
};

/// Client-side latency percentiles for bench worker loops: a lock-free
/// obs::Histogram of nanosecond observations shared by the threads,
/// with quantiles estimated by the same obs::HistogramPercentile() the
/// /statusz admin endpoint serves — a bench's p99 and the server's
/// dashboard p99 come from one estimator (log2 buckets, linear
/// interpolation, so ~2×-accurate; see obs/metrics.h).
class LatencyRecorder {
 public:
  void ObserveNs(uint64_t ns) { h_.Observe(ns); }
  uint64_t count() const { return h_.count(); }
  double PercentileUs(double q) const {
    return obs::HistogramPercentile(h_, q) / 1e3;
  }

 private:
  obs::Histogram h_;
};

/// Strips `--smoke` from argv (so benchmark::Initialize never sees an
/// unknown flag) and reports whether it was present. Smoke mode is the
/// CI contract for every bench binary: shrink the workload to seconds,
/// skip the Google-benchmark timing loop, but still print the BENCH_JSON
/// summary line(s) — bench/smoke_runner.cc validates them per binary.
inline bool ConsumeSmokeFlag(int* argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  return smoke;
}

/// The minimal BENCH_JSON line for benches whose measurements live in
/// Google-benchmark loops (skipped under --smoke): names the binary and
/// records the mode, so the smoke runner can validate the contract.
inline void PrintSmokeJson(const char* bench, bool smoke) {
  std::printf("BENCH_JSON {\"bench\": \"%s\", \"smoke\": %s}\n", bench,
              smoke ? "true" : "false");
}

inline void PrintHeader(const char* experiment, const char* paper_artifact) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper artifact: %s\n", paper_artifact);
  std::printf("==========================================================\n");
}

}  // namespace mdm::bench

#endif  // MDM_BENCH_BENCH_UTIL_H_

// Fig 6: a simple instance graph — a parent with an ordered set of
// children linked by S-edges and P-edges. Regenerates the graph and
// measures ordering-operation cost against fan-out, including the
// DESIGN.md ablation: position-vector representation (the library's)
// versus a naive S-edge linked list.
#include <benchmark/benchmark.h>

#include <list>
#include <unordered_map>

#include "bench_util.h"

namespace {

using mdm::bench::MakeChordDb;
using mdm::er::Database;
using mdm::er::EntityId;

void BM_AppendChild(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db = MakeChordDb(1, 0);
    EntityId chord = 0;
    (void)db.ForEachEntity("CHORD", [&](EntityId id) {
      chord = id;
      return false;
    });
    std::vector<EntityId> notes;
    for (int i = 0; i < fanout; ++i) {
      auto note = db.CreateEntity("NOTE");
      notes.push_back(*note);
    }
    state.ResumeTiming();
    for (EntityId note : notes)
      if (!db.AppendChild("note_in_chord", chord, note).ok())
        state.SkipWithError("append failed");
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_AppendChild)->Arg(4)->Arg(64)->Arg(1024);

void BM_NthChild(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  Database db = MakeChordDb(1, fanout);
  EntityId chord = 0;
  (void)db.ForEachEntity("CHORD", [&](EntityId id) {
    chord = id;
    return false;
  });
  size_t n = 0;
  for (auto _ : state) {
    auto child = db.NthChild("note_in_chord", chord, n++ % fanout);
    if (!child.ok()) state.SkipWithError("nth failed");
    benchmark::DoNotOptimize(*child);
  }
}
BENCHMARK(BM_NthChild)->Arg(4)->Arg(64)->Arg(1024);

void BM_BeforePredicate(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  Database db = MakeChordDb(1, fanout);
  EntityId chord = 0;
  (void)db.ForEachEntity("CHORD", [&](EntityId id) {
    chord = id;
    return false;
  });
  auto kids = db.Children("note_in_chord", chord);
  for (auto _ : state) {
    auto before = db.Before("note_in_chord", kids->front(), kids->back());
    if (!before.ok() || !*before) state.SkipWithError("before failed");
    benchmark::DoNotOptimize(*before);
  }
}
BENCHMARK(BM_BeforePredicate)->Arg(4)->Arg(64)->Arg(1024);

// Ablation: the naive S-edge linked-list representation. "Nth child"
// must chase next-pointers; the library's position vector indexes
// directly.
void BM_AblationLinkedListNth(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  // child id -> next sibling (the raw S-edges of fig 6).
  std::unordered_map<EntityId, EntityId> next;
  EntityId first = 1;
  for (EntityId id = 1; id < static_cast<EntityId>(fanout); ++id)
    next[id] = id + 1;
  size_t n = 0;
  for (auto _ : state) {
    size_t target = n++ % fanout;
    EntityId cur = first;
    for (size_t i = 0; i < target; ++i) cur = next[cur];
    benchmark::DoNotOptimize(cur);
  }
}
BENCHMARK(BM_AblationLinkedListNth)->Arg(4)->Arg(64)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 6 — a simple instance graph",
      "parent y with ordered children u,v,w,x; S-edges between siblings, "
      "P-edges to the parent; 'w is the third child of y'");
  Database db = MakeChordDb(1, 4);
  EntityId chord = 0;
  (void)db.ForEachEntity("CHORD", [&](EntityId id) {
    chord = id;
    return false;
  });
  auto dot = db.InstanceGraphDot("note_in_chord", chord, "");
  std::printf("%s\n", dot->c_str());
  auto third = db.NthChild("note_in_chord", chord, 2);
  std::printf("the third child of the parent is entity #%llu\n\n",
              (unsigned long long)*third);
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig06_instance_graph", smoke);
  return 0;
}

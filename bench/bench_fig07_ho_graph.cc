// Fig 7: a hierarchical ordering graph at the schema level (NOTE under
// CHORD). Regenerates HO graphs and measures schema-level operations
// as orderings accumulate.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "er/schema.h"

namespace {

using mdm::er::Database;
using mdm::er::EntityTypeDef;
using mdm::er::OrderingDef;

Database MakeWideSchema(int n_orderings) {
  Database db;
  for (int i = 0; i < n_orderings + 1; ++i) {
    EntityTypeDef def;
    def.name = "TYPE" + std::to_string(i);
    if (!db.DefineEntityType(def).ok()) std::abort();
  }
  for (int i = 0; i < n_orderings; ++i) {
    OrderingDef o;
    o.name = "ord" + std::to_string(i);
    o.child_types = {"TYPE" + std::to_string(i + 1)};
    o.parent_type = "TYPE" + std::to_string(i);
    if (!db.DefineOrdering(o).ok()) std::abort();
  }
  return db;
}

void BM_DefineOrdering(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Database db = MakeWideSchema(n);
    benchmark::DoNotOptimize(db.schema().orderings().size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DefineOrdering)->Arg(4)->Arg(32)->Arg(256);

void BM_OrderingLookup(benchmark::State& state) {
  Database db = MakeWideSchema(static_cast<int>(state.range(0)));
  int i = 0;
  for (auto _ : state) {
    const auto* def = db.schema().FindOrdering(
        "ord" + std::to_string(i++ % state.range(0)));
    if (def == nullptr) state.SkipWithError("lookup failed");
    benchmark::DoNotOptimize(def);
  }
}
BENCHMARK(BM_OrderingLookup)->Arg(4)->Arg(32)->Arg(256);

void BM_HoGraphExport(benchmark::State& state) {
  Database db = MakeWideSchema(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string dot = db.HoGraphDot();
    benchmark::DoNotOptimize(dot.size());
  }
}
BENCHMARK(BM_HoGraphExport)->Arg(4)->Arg(32)->Arg(256);

void BM_OrderingsWithChild(benchmark::State& state) {
  Database db = MakeWideSchema(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hits = db.schema().OrderingsWithChild("TYPE1");
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_OrderingsWithChild)->Arg(4)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 7 — a hierarchical ordering graph",
      "schema-level box diagram: CHORD -> NOTE under the ordering "
      "note_in_chord");
  Database db = mdm::bench::MakeChordDb(0, 0);
  std::printf("%s\n", db.HoGraphDot().c_str());
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig07_ho_graph", smoke);
  return 0;
}

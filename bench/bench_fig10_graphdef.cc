// Fig 10: the schema for graphical definitions — GraphDef, GParmUse and
// GDefUse — and §6.2's four-step drawing procedure for a STEM.
// Regenerates the drawing and measures the full data-driven pipeline
// versus a hard-coded renderer.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ddl/parser.h"
#include "graphics/postscript.h"
#include "meta/meta_schema.h"

namespace {

using mdm::er::Database;
using mdm::er::EntityId;

constexpr const char* kStemFunction = R"(
  newpath
  xpos ypos moveto
  0 length direction mul rlineto
  stroke
)";

Database MakeStemDb(EntityId* stem_out) {
  Database db;
  if (!mdm::meta::InstallGraphicsSchema(&db).ok()) std::abort();
  auto ddl = mdm::ddl::ExecuteDdl(R"(
    define entity STEM (xpos = integer, ypos = integer,
                        length = integer, direction = integer)
  )",
                                  &db);
  if (!ddl.ok()) std::abort();
  if (!mdm::meta::SyncSchemaToMeta(&db).ok()) std::abort();
  auto graphdef = mdm::meta::DefineGraphDef(&db, "draw-stem", kStemFunction);
  (void)mdm::meta::AttachGraphDef(&db, "STEM", *graphdef);
  for (const char* attr : {"xpos", "ypos", "length", "direction"})
    (void)mdm::meta::AttachParameter(&db, *graphdef, "STEM", attr,
                                     std::string("/") + attr + " exch def");
  auto stem = db.CreateEntity("STEM");
  (void)db.SetAttribute(*stem, "xpos", mdm::rel::Value::Int(100));
  (void)db.SetAttribute(*stem, "ypos", mdm::rel::Value::Int(50));
  (void)db.SetAttribute(*stem, "length", mdm::rel::Value::Int(28));
  (void)db.SetAttribute(*stem, "direction", mdm::rel::Value::Int(1));
  *stem_out = *stem;
  return db;
}

// The full §6.2 pipeline: schema lookup, GDefUse, GParmUse set-up code,
// PostScript interpretation.
void BM_DrawViaGraphDef(benchmark::State& state) {
  EntityId stem;
  Database db = MakeStemDb(&stem);
  for (auto _ : state) {
    auto rendering = mdm::meta::DrawEntity(&db, stem);
    if (!rendering.ok()) state.SkipWithError("draw failed");
    benchmark::DoNotOptimize(rendering->paths.size());
  }
}
BENCHMARK(BM_DrawViaGraphDef);

// Baseline: the same stem drawn by a hard-coded client (what every
// music program does without the MDM's data-driven definitions).
void BM_DrawHardCoded(benchmark::State& state) {
  for (auto _ : state) {
    mdm::graphics::PostScriptInterp interp;
    interp.DefineNumber("xpos", 100);
    interp.DefineNumber("ypos", 50);
    interp.DefineNumber("length", 28);
    interp.DefineNumber("direction", 1);
    if (!interp.Run(kStemFunction).ok()) state.SkipWithError("run failed");
    auto rendering = interp.Take();
    benchmark::DoNotOptimize(rendering.paths.size());
  }
}
BENCHMARK(BM_DrawHardCoded);

// Interpreter throughput on a heavier drawing program.
void BM_PostScriptInterpreter(benchmark::State& state) {
  std::string program = "/unit 3 def\n";
  for (int i = 0; i < state.range(0); ++i)
    program += "newpath " + std::to_string(i) +
               " 0 moveto unit unit rlineto 0 0 1 0 360 arc stroke\n";
  for (auto _ : state) {
    mdm::graphics::PostScriptInterp interp;
    if (!interp.Run(program).ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(interp.Take().paths.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PostScriptInterpreter)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 10 — schema for graphical definitions",
      "GraphDef holds the drawing function; GDefUse binds it to the "
      "ENTITY catalog row; GParmUse binds ATTRIBUTEs with set-up code");
  EntityId stem;
  Database db = MakeStemDb(&stem);
  auto rendering = mdm::meta::DrawEntity(&db, stem);
  std::printf("stem drawn through the 4-step procedure:\n%s\n",
              rendering->ToSvg().c_str());
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig10_graphdef", smoke);
  return 0;
}

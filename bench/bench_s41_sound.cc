// §4.1: sound representations — the storage arithmetic (10 minutes =
// 57.6 MB) and the two compaction avenues the paper cites: redundancy
// elimination [Wil85] and perceptual reduction [Kra79]. Verifies the
// figure and measures codec ratio + throughput on synthesized music.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cmn/temporal.h"
#include "midi/midi.h"
#include "mtime/tempo_map.h"
#include "sound/sound.h"

namespace {

mdm::sound::PcmBuffer MusicBuffer(int measures, int sample_rate) {
  mdm::er::Database db;
  auto score = mdm::bench::MakeRandomScore(&db, measures);
  mdm::mtime::TempoMap tempo;
  auto notes = mdm::cmn::ExtractPerformance(&db, score, tempo);
  if (!notes.ok()) std::abort();
  auto track = mdm::midi::TrackFromPerformance(*notes);
  return mdm::sound::Synthesize(track, sample_rate);
}

void BM_Synthesize(benchmark::State& state) {
  mdm::er::Database db;
  auto score = mdm::bench::MakeRandomScore(
      &db, static_cast<int>(state.range(0)));
  mdm::mtime::TempoMap tempo;
  auto notes = mdm::cmn::ExtractPerformance(&db, score, tempo);
  auto track = mdm::midi::TrackFromPerformance(*notes);
  for (auto _ : state) {
    auto pcm = mdm::sound::Synthesize(track, 16000);
    benchmark::DoNotOptimize(pcm.samples.size());
  }
}
BENCHMARK(BM_Synthesize)->Arg(2)->Arg(8);

void BM_EncodeDelta(benchmark::State& state) {
  auto pcm = MusicBuffer(8, 16000);
  for (auto _ : state) {
    auto encoded = mdm::sound::EncodeDelta(pcm);
    benchmark::DoNotOptimize(encoded.size());
  }
  state.SetBytesProcessed(state.iterations() * pcm.SizeBytes());
}
BENCHMARK(BM_EncodeDelta);

void BM_DecodeDelta(benchmark::State& state) {
  auto pcm = MusicBuffer(8, 16000);
  auto encoded = mdm::sound::EncodeDelta(pcm);
  for (auto _ : state) {
    auto decoded = mdm::sound::DecodeDelta(encoded);
    if (!decoded.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(decoded->samples.size());
  }
  state.SetBytesProcessed(state.iterations() * pcm.SizeBytes());
}
BENCHMARK(BM_DecodeDelta);

void BM_EncodeSilence(benchmark::State& state) {
  auto pcm = MusicBuffer(8, 16000);
  for (auto _ : state) {
    auto encoded = mdm::sound::EncodeSilence(pcm);
    benchmark::DoNotOptimize(encoded.size());
  }
  state.SetBytesProcessed(state.iterations() * pcm.SizeBytes());
}
BENCHMARK(BM_EncodeSilence);

void BM_EncodeQuantized(benchmark::State& state) {
  auto pcm = MusicBuffer(8, 16000);
  for (auto _ : state) {
    auto encoded = mdm::sound::EncodeQuantized(pcm, 8);
    benchmark::DoNotOptimize(encoded.size());
  }
  state.SetBytesProcessed(state.iterations() * pcm.SizeBytes());
}
BENCHMARK(BM_EncodeQuantized);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "§4.1 — sound representations and compaction",
      "\"ten minutes of musical sound can be recorded with acceptable "
      "accuracy by storing 57.6 megabytes of data\"");
  std::printf("storage arithmetic:\n");
  std::printf("  10 min @ 48 kHz / 16-bit = %llu bytes (paper: 57.6 MB)\n",
              (unsigned long long)mdm::sound::StorageBytes(600.0));
  std::printf("  1 hour                  = %llu bytes\n\n",
              (unsigned long long)mdm::sound::StorageBytes(3600.0));

  auto pcm = MusicBuffer(8, 16000);
  mdm::sound::CompactionStats delta, silence, quant;
  (void)mdm::sound::EncodeDelta(pcm, &delta);
  (void)mdm::sound::EncodeSilence(pcm, 8, &silence);
  (void)mdm::sound::EncodeQuantized(pcm, 8, &quant);
  std::printf("compaction of %.1f s of synthesized music (%zu bytes):\n",
              pcm.DurationSeconds(), pcm.SizeBytes());
  std::printf("  redundancy elimination (delta, lossless): %.2fx\n",
              delta.Ratio());
  std::printf("  silence-run elimination:                  %.2fx\n",
              silence.Ratio());
  std::printf("  perceptual 8-bit quantization [Kra79]:    %.2fx\n\n",
              quant.Ratio());
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("s41_sound", smoke);
  return 0;
}

// Fig 1: the music data manager serving multiple clients.
//
// The paper argues (§2) that one shared MDM beats per-client data
// management: improvements accrue to all clients and clients exchange
// data without conversion. We regenerate the architecture diagram and
// measure the claim's measurable core: N clients working against one
// shared database (data written once, read by all) versus each client
// maintaining a private copy (data duplicated N times, plus a
// conversion pass to move between clients).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "darms/darms.h"
#include "midi/midi.h"
#include "mtime/tempo_map.h"
#include "cmn/temporal.h"

namespace {

using mdm::er::Database;

constexpr const char* kScoreDarms =
    "!G !K2- 2Q 6Q 4E 3E 2E 4E 3E 2E 1#E 3E / 5H 4E 3E 2E 1E / 2W //";

// Shared MDM: import once; the editor, analyzer and performer clients
// all read the same entities.
void BM_SharedMdm(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Database db;
    auto import = mdm::darms::ImportDarms(&db, kScoreDarms, "shared");
    if (!import.ok()) state.SkipWithError("import failed");
    mdm::mtime::TempoMap tempo;
    for (int c = 0; c < clients; ++c) {
      // Each client performs its own reading pass over the shared data.
      auto notes = mdm::cmn::ExtractPerformance(&db, import->score, tempo);
      if (!notes.ok()) state.SkipWithError("extract failed");
      benchmark::DoNotOptimize(notes->size());
    }
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_SharedMdm)->Arg(1)->Arg(4)->Arg(16);

// Private stores: every client re-imports (re-parses, re-derives
// pitches, re-builds the hierarchy) into its own database — the
// duplicated data management the paper wants to eliminate.
void BM_PrivateStores(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mdm::mtime::TempoMap tempo;
    for (int c = 0; c < clients; ++c) {
      Database db;
      auto import = mdm::darms::ImportDarms(&db, kScoreDarms, "private");
      if (!import.ok()) state.SkipWithError("import failed");
      auto notes = mdm::cmn::ExtractPerformance(&db, import->score, tempo);
      if (!notes.ok()) state.SkipWithError("extract failed");
      benchmark::DoNotOptimize(notes->size());
    }
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_PrivateStores)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 1 — the MDM and its clients",
      "block diagram: editors/typesetters, compositional tools, score "
      "libraries and analysis systems sharing one music data manager");
  std::printf(
      "clients sharing one MDM import a score once; private stores\n"
      "re-import per client. Expect shared cost to grow slower with N\n"
      "and the gap to widen as clients are added.\n\n");
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig01_mdm_clients", smoke);
  return 0;
}

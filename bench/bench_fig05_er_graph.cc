// Fig 5: the entity-relationship graph for PERSON / COMPOSER /
// COMPOSITION / DATE (§5.1). Regenerates the schema from the paper's
// DDL and measures relationship traversal (the m:n join behind the
// Star Spangled Banner query).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "ddl/parser.h"
#include "quel/quel.h"

namespace {

using mdm::er::Database;

constexpr const char* kPaperDdl = R"(
  define entity DATE (day = integer, month = integer, year = integer)
  define entity COMPOSITION (title = string, composition_date = DATE)
  define entity PERSON (name = string)
  define relationship COMPOSER (person = PERSON,
                                composition = COMPOSITION)
)";

Database MakeComposerDb(int compositions) {
  Database db;
  if (!mdm::ddl::ExecuteDdl(kPaperDdl, &db).ok()) std::abort();
  mdm::Rng rng(11);
  std::vector<mdm::er::EntityId> people;
  for (int p = 0; p < std::max(compositions / 10, 2); ++p) {
    auto person = db.CreateEntity("PERSON");
    (void)db.SetAttribute(*person, "name",
                          mdm::rel::Value::String("composer" +
                                                  std::to_string(p)));
    people.push_back(*person);
  }
  for (int c = 0; c < compositions; ++c) {
    auto comp = db.CreateEntity("COMPOSITION");
    (void)db.SetAttribute(
        *comp, "title",
        mdm::rel::Value::String(c == compositions / 2
                                    ? "The Star Spangled Banner"
                                    : "Work " + std::to_string(c)));
    auto date = db.CreateEntity("DATE");
    (void)db.SetAttribute(*date, "year",
                          mdm::rel::Value::Int(1700 + rng.Uniform(200)));
    (void)db.SetAttribute(*comp, "composition_date",
                          mdm::rel::Value::Ref(*date));
    (void)db.Connect("COMPOSER",
                     {{"person", people[rng.Uniform(people.size())]},
                      {"composition", *comp}});
  }
  return db;
}

// The paper's §5.6 `is` query, end to end through QUEL.
void BM_StarSpangledBannerQuery(benchmark::State& state) {
  Database db = MakeComposerDb(static_cast<int>(state.range(0)));
  mdm::quel::QuelSession session(&db);
  const char* query = R"(
    retrieve (PERSON.name)
      where COMPOSITION.title = "The Star Spangled Banner"
        and COMPOSER.composition is COMPOSITION
        and COMPOSER.composer is PERSON
  )";
  // The paper's role name is `person`; accept that spelling.
  const char* fixed_query = R"(
    retrieve (PERSON.name)
      where COMPOSITION.title = "The Star Spangled Banner"
        and COMPOSER.composition is COMPOSITION
        and COMPOSER.person is PERSON
  )";
  (void)query;
  for (auto _ : state) {
    auto rs = session.Execute(fixed_query);
    if (!rs.ok() || rs->rows.size() != 1)
      state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_StarSpangledBannerQuery)->Arg(10)->Arg(100)->Arg(1000);

// Raw relationship traversal without the query layer.
void BM_RelationshipScan(benchmark::State& state) {
  Database db = MakeComposerDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    uint64_t count = 0;
    (void)db.ForEachRelationship(
        "COMPOSER", [&](const mdm::er::RelationshipInstance& ri) {
          count += ri.role_refs.size();
          return true;
        });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationshipScan)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 5 — an entity-relationship graph",
      "PERSON --m:n COMPOSER--> COMPOSITION, with the implicit 1:n "
      "COMPOSITION_DATE as an entity-valued attribute");
  Database db = MakeComposerDb(3);
  std::printf("schema as DDL (deparsed from the catalog):\n%s\n",
              mdm::ddl::SchemaToDdl(db.schema()).c_str());
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig05_er_graph", smoke);
  return 0;
}

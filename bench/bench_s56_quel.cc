// §5.6: the four ordering queries, run verbatim through QUEL. Measures
// latency against chord size and database size, and the DESIGN.md
// evaluation-strategy ablation: conjunct push-down versus the naive
// full cross product.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "quel/quel.h"

namespace {

using mdm::bench::MakeChordDb;
using mdm::er::Database;

constexpr const char* kBeforeQuery = R"(
  range of n1, n2 is NOTE
  retrieve (n1.name)
    where n1 before n2 in note_in_chord and n2.name = 2
)";

constexpr const char* kUnderQuery = R"(
  range of n1 is NOTE
  range of c1 is CHORD
  retrieve (n1.name)
    where n1 under c1 in note_in_chord and c1.name = 1
)";

constexpr const char* kParentQuery = R"(
  range of n1 is NOTE
  range of c1 is CHORD
  retrieve (c1.name)
    where n1 under c1 in note_in_chord and n1.name = 0
)";

void BM_BeforeQuery(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.Execute(kBeforeQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_BeforeQuery)->Arg(4)->Arg(16)->Arg(64);

void BM_UnderQuery(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.Execute(kUnderQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_UnderQuery)->Arg(4)->Arg(16)->Arg(64);

void BM_ParentQuery(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.Execute(kParentQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_ParentQuery)->Arg(4)->Arg(16)->Arg(64);

// Ablation: the same before-query with conjunct push-down disabled —
// the executor enumerates the full NOTE x NOTE cross product.
void BM_BeforeQueryNaive(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.ExecuteNaive(kBeforeQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_BeforeQueryNaive)->Arg(4)->Arg(16)->Arg(64);

// Direct ordering-API equivalents (what a C++ client pays without the
// query language).
void BM_BeforeDirectApi(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  // Find note named 2 and its chord, then list earlier siblings.
  mdm::er::EntityId target = 0;
  (void)db.ForEachEntity("NOTE", [&](mdm::er::EntityId id) {
    auto v = db.GetAttribute(id, "name");
    if (v.ok() && !v->is_null() && v->AsInt() == 2) {
      target = id;
      return false;
    }
    return true;
  });
  for (auto _ : state) {
    auto parent = db.ParentOf("note_in_chord", target);
    auto kids = db.Children("note_in_chord", *parent);
    size_t earlier = 0;
    for (mdm::er::EntityId kid : *kids) {
      if (kid == target) break;
      ++earlier;
    }
    benchmark::DoNotOptimize(earlier);
  }
}
BENCHMARK(BM_BeforeDirectApi)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  mdm::bench::PrintHeader(
      "§5.6 — manipulation of ordered entities",
      "the paper's retrieve queries over before/after/under in "
      "note_in_chord");
  Database db = MakeChordDb(2, 4);
  mdm::quel::QuelSession session(&db);
  auto rs = session.Execute(kBeforeQuery);
  std::printf("notes prior to note 2 in its chord:\n%s\n",
              rs->ToString().c_str());
  rs = session.Execute(kUnderQuery);
  std::printf("notes under chord 1:\n%s\n", rs->ToString().c_str());
  std::printf("expect: push-down ~linear in notes; naive cross product\n"
              "quadratic (the gap widens with database size).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// §5.6: the four ordering queries, run verbatim through QUEL. Measures
// latency against chord size and database size, and two DESIGN.md
// evaluation-strategy ablations: conjunct push-down versus the naive
// full cross product, and the ordering index (sibling ranks + Euler
// intervals) versus the unindexed linear-scan/parent-walk path.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "quel/quel.h"

namespace {

using mdm::bench::MakeChordDb;
using mdm::er::Database;

constexpr const char* kBeforeQuery = R"(
  range of n1, n2 is NOTE
  retrieve (n1.name)
    where n1 before n2 in note_in_chord and n2.name = 2
)";

constexpr const char* kUnderQuery = R"(
  range of n1 is NOTE
  range of c1 is CHORD
  retrieve (n1.name)
    where n1 under c1 in note_in_chord and c1.name = 1
)";

constexpr const char* kParentQuery = R"(
  range of n1 is NOTE
  range of c1 is CHORD
  retrieve (c1.name)
    where n1 under c1 in note_in_chord and n1.name = 0
)";

void BM_BeforeQuery(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.Execute(kBeforeQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_BeforeQuery)->Arg(4)->Arg(16)->Arg(64);

void BM_UnderQuery(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.Execute(kUnderQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_UnderQuery)->Arg(4)->Arg(16)->Arg(64);

void BM_ParentQuery(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.Execute(kParentQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_ParentQuery)->Arg(4)->Arg(16)->Arg(64);

// Ablation: the same before-query with conjunct push-down disabled —
// the executor enumerates the full NOTE x NOTE cross product.
void BM_BeforeQueryNaive(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.ExecuteNaive(kBeforeQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_BeforeQueryNaive)->Arg(4)->Arg(16)->Arg(64);

// Ablation: the same queries with the ordering index disabled — every
// `before` falls back to a linear sibling scan and every `under` to a
// parent-chain walk.
void BM_BeforeQueryUnindexed(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  db.EnableOrderingIndex(false);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.Execute(kBeforeQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_BeforeQueryUnindexed)->Arg(4)->Arg(16)->Arg(64);

void BM_UnderQueryUnindexed(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  db.EnableOrderingIndex(false);
  mdm::quel::QuelSession session(&db);
  for (auto _ : state) {
    auto rs = session.Execute(kUnderQuery);
    if (!rs.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_UnderQueryUnindexed)->Arg(4)->Arg(16)->Arg(64);

// Direct ordering-API equivalents (what a C++ client pays without the
// query language).
void BM_BeforeDirectApi(benchmark::State& state) {
  Database db = MakeChordDb(static_cast<int>(state.range(0)), 4);
  // Find note named 2 and its chord, then list earlier siblings.
  mdm::er::EntityId target = 0;
  (void)db.ForEachEntity("NOTE", [&](mdm::er::EntityId id) {
    auto v = db.GetAttribute(id, "name");
    if (v.ok() && !v->is_null() && v->AsInt() == 2) {
      target = id;
      return false;
    }
    return true;
  });
  for (auto _ : state) {
    auto parent = db.ParentOf("note_in_chord", target);
    auto kids = db.Children("note_in_chord", *parent);
    size_t earlier = 0;
    for (mdm::er::EntityId kid : *kids) {
      if (kid == target) break;
      ++earlier;
    }
    benchmark::DoNotOptimize(earlier);
  }
}
BENCHMARK(BM_BeforeDirectApi)->Arg(4)->Arg(16)->Arg(64);

// Wall-clock nanoseconds per call of `f`, averaged over `iters` calls.
template <typename F>
double NsPerOp(F&& f, int iters) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) f();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

// A chain of `depth` SECTIONs under a recursive ordering; `under` on the
// (leaf, root) pair costs O(depth) without the interval index.
Database MakeDeepSectionDb(int depth, mdm::er::EntityId* root,
                           mdm::er::EntityId* leaf) {
  Database db;
  auto ddl = mdm::ddl::ExecuteDdl(R"(
    define entity SECTION (name = integer)
    define ordering sec_tree (SECTION) under SECTION
  )",
                                  &db);
  if (!ddl.ok()) std::abort();
  mdm::er::EntityId parent = *db.CreateEntity("SECTION");
  *root = parent;
  for (int i = 1; i < depth; ++i) {
    mdm::er::EntityId next = *db.CreateEntity("SECTION");
    (void)db.AppendChild("sec_tree", parent, next);
    parent = next;
  }
  *leaf = parent;
  return db;
}

// The acceptance comparison for the §5.6 structural indexes, emitted as
// one JSON object so runs can be diffed: before/under predicate latency
// on a 10k-note database, indexed versus the EnableOrderingIndex(false)
// ablation, plus query-level and push-down numbers for context.
void EmitBeforeAfterJson() {
  constexpr int kPredIters = 20000;
  constexpr int kQueryIters = 10;
  // Registry deltas over the timed sections below (ordering-index hit
  // rates, rows scanned, parse-cache hits) ride along in the JSON.
  mdm::bench::MetricsSection metrics;

  // `before` on the last two of 10000 siblings (a 10k-note score as one
  // maximally wide chord): rank lookup vs a scan of the sibling list.
  Database wide = MakeChordDb(1, 10000);
  auto h = *wide.ResolveOrderingHandle("note_in_chord");
  mdm::er::EntityId last_chord = 0;
  (void)wide.ForEachEntity("CHORD", [&](mdm::er::EntityId id) {
    last_chord = id;
    return true;
  });
  std::vector<mdm::er::EntityId> kids = *wide.Children(h, last_chord);
  mdm::er::EntityId a = kids[kids.size() - 2], b = kids.back();
  (void)wide.Before(h, a, b);  // warm the rank index
  double before_idx =
      NsPerOp([&] { benchmark::DoNotOptimize(*wide.Before(h, a, b)); },
              kPredIters);
  wide.EnableOrderingIndex(false);
  double before_scan =
      NsPerOp([&] { benchmark::DoNotOptimize(*wide.Before(h, a, b)); },
              kPredIters);
  wide.EnableOrderingIndex(true);

  // `under` on a 10k-deep recursive chain: interval test vs parent walk.
  mdm::er::EntityId root = 0, leaf = 0;
  Database deep = MakeDeepSectionDb(10000, &root, &leaf);
  auto hs = *deep.ResolveOrderingHandle("sec_tree");
  (void)deep.Under(hs, leaf, root);  // warm the interval index
  double under_idx =
      NsPerOp([&] { benchmark::DoNotOptimize(*deep.Under(hs, leaf, root)); },
              kPredIters);
  deep.EnableOrderingIndex(false);
  double under_walk =
      NsPerOp([&] { benchmark::DoNotOptimize(*deep.Under(hs, leaf, root)); },
              kPredIters);
  deep.EnableOrderingIndex(true);

  // Query-level view of the same ablation: 10k notes as 100 chords of
  // 100 (binding enumeration and attribute filters dilute the gap).
  Database grid = MakeChordDb(100, 100);
  mdm::quel::QuelSession session(&grid);
  double q_before_idx = NsPerOp(
      [&] { benchmark::DoNotOptimize(session.Execute(kBeforeQuery)->size()); },
      kQueryIters);
  grid.EnableOrderingIndex(false);
  double q_before_scan = NsPerOp(
      [&] { benchmark::DoNotOptimize(session.Execute(kBeforeQuery)->size()); },
      kQueryIters);
  grid.EnableOrderingIndex(true);

  // Push-down vs the naive cross product (small db: naive is quadratic).
  Database small = MakeChordDb(16, 4);
  mdm::quel::QuelSession planned(&small);
  double q_planned = NsPerOp(
      [&] { benchmark::DoNotOptimize(planned.Execute(kBeforeQuery)->size()); },
      kQueryIters);
  double q_naive = NsPerOp(
      [&] {
        benchmark::DoNotOptimize(planned.ExecuteNaive(kBeforeQuery)->size());
      },
      kQueryIters);

  std::printf(
      "BENCH_JSON {\"bench\": \"s56_quel_ordering_index\", "
      "\"scale\": {\"notes\": 10000, \"chord_width\": 10000, "
      "\"under_depth\": 10000}, \"results\": ["
      "{\"op\": \"before_predicate\", \"indexed_ns\": %.1f, "
      "\"unindexed_ns\": %.1f, \"speedup\": %.1f}, "
      "{\"op\": \"under_predicate\", \"indexed_ns\": %.1f, "
      "\"unindexed_ns\": %.1f, \"speedup\": %.1f}, "
      "{\"op\": \"before_query\", \"indexed_ns\": %.0f, "
      "\"unindexed_ns\": %.0f, \"speedup\": %.2f}, "
      "{\"op\": \"pushdown_vs_naive\", \"planned_ns\": %.0f, "
      "\"naive_ns\": %.0f, \"speedup\": %.1f}], "
      "\"metrics\": {%s}}\n",
      before_idx, before_scan, before_scan / before_idx, under_idx, under_walk,
      under_walk / under_idx, q_before_idx, q_before_scan,
      q_before_scan / q_before_idx, q_planned, q_naive, q_naive / q_planned,
      metrics.DeltaJson().c_str());
  std::printf("acceptance (>=10x on indexed before/under predicates): "
              "before %.1fx, under %.1fx\n\n",
              before_scan / before_idx, under_walk / under_idx);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "§5.6 — manipulation of ordered entities",
      "the paper's retrieve queries over before/after/under in "
      "note_in_chord");
  Database db = MakeChordDb(2, 4);
  mdm::quel::QuelSession session(&db);
  auto rs = session.Execute(kBeforeQuery);
  std::printf("notes prior to note 2 in its chord:\n%s\n",
              rs->ToString().c_str());
  rs = session.Execute(kUnderQuery);
  std::printf("notes under chord 1:\n%s\n", rs->ToString().c_str());
  std::printf("expect: push-down ~linear in notes; naive cross product\n"
              "quadratic (the gap widens with database size).\n\n");
  EmitBeforeAfterJson();
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  return 0;
}

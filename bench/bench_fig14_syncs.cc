// Fig 14: dividing a score into syncs — points of alignment shared by
// simultaneous events across voices. Regenerates the division for the
// figure's two-voice measure and measures alignment cost against voice
// count and rhythmic density.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cmn/schema.h"
#include "cmn/score_builder.h"
#include "cmn/temporal.h"
#include "common/random.h"

namespace {

using mdm::Rational;
using mdm::er::Database;
using mdm::er::EntityId;

// Builds `voices` voices of random rhythms over `measures` 4/4
// measures, NOT yet aligned to syncs.
EntityId MakeUnalignedScore(Database* db, int measures, int voices,
                            std::vector<EntityId>* voice_ids) {
  if (!mdm::cmn::InstallCmnSchema(db).ok()) std::abort();
  mdm::cmn::ScoreBuilder builder(db);
  auto score = builder.CreateScore("alignment bench");
  auto movement = builder.AddMovement(*score, "I");
  for (int m = 1; m <= measures; ++m)
    (void)builder.AddMeasure(*movement, m, {4, 4});
  mdm::Rng rng(23);
  const Rational durations[] = {Rational(1), Rational(1, 2), Rational(2),
                                Rational(1, 4)};
  for (int v = 0; v < voices; ++v) {
    auto voice = builder.AddVoice(v + 1);
    voice_ids->push_back(*voice);
    Rational total(0);
    Rational limit(4 * measures);
    while (total < limit) {
      Rational d = durations[rng.Uniform(4)];
      if (limit - total < d) d = limit - total;
      if (rng.Bernoulli(0.15)) {
        (void)builder.AddRest(*voice, d);
      } else {
        // Voice-only chord; AlignVoicesToSyncs will attach it.
        auto chord = db->CreateEntity("CHORD");
        (void)db->SetAttribute(*chord, "duration_beats",
                               mdm::rel::Value::Rat(d));
        (void)db->AppendChild(mdm::cmn::kVoiceSeq, *voice, *chord);
      }
      total += d;
    }
  }
  return *score;
}

void BM_AlignVoices(benchmark::State& state) {
  const int voices = static_cast<int>(state.range(0));
  const int measures = 16;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    std::vector<EntityId> voice_ids;
    EntityId score = MakeUnalignedScore(&db, measures, voices, &voice_ids);
    state.ResumeTiming();
    auto syncs = mdm::cmn::AlignVoicesToSyncs(&db, score, voice_ids);
    if (!syncs.ok()) state.SkipWithError("align failed");
    benchmark::DoNotOptimize(*syncs);
  }
  state.SetItemsProcessed(state.iterations() * voices * measures);
}
BENCHMARK(BM_AlignVoices)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 14 — dividing a measure into syncs",
      "two voices with different rhythms; every distinct onset becomes "
      "a sync shared by the chords sounding there");
  // The fig 14 flavour: voice 1 in quarters, voice 2 half/rest/quarter.
  Database db;
  if (!mdm::cmn::InstallCmnSchema(&db).ok()) return 1;
  mdm::cmn::ScoreBuilder builder(&db);
  auto score = builder.CreateScore("fig 14");
  auto movement = builder.AddMovement(*score, "I");
  auto measure = builder.AddMeasure(*movement, 1, {4, 4});
  auto v1 = builder.AddVoice(1);
  auto v2 = builder.AddVoice(2);
  auto add_chord = [&](EntityId voice, Rational dur) {
    auto chord = db.CreateEntity("CHORD");
    (void)db.SetAttribute(*chord, "duration_beats", mdm::rel::Value::Rat(dur));
    (void)db.AppendChild(mdm::cmn::kVoiceSeq, voice, *chord);
  };
  for (int i = 0; i < 4; ++i) add_chord(*v1, Rational(1));
  add_chord(*v2, Rational(2));
  (void)builder.AddRest(*v2, Rational(1));
  add_chord(*v2, Rational(1));
  auto total = mdm::cmn::AlignVoicesToSyncs(&db, *score, {*v1, *v2});
  auto syncs = db.Children(mdm::cmn::kSyncInMeasure, *measure);
  std::printf("distinct onsets -> %llu syncs:\n",
              (unsigned long long)*total);
  for (EntityId sync : *syncs) {
    auto beat = db.GetAttribute(sync, "beat");
    auto chords = db.Children(mdm::cmn::kChordInSync, sync);
    std::printf("  sync at beat %-4s holds %zu chord(s)\n",
                beat->AsRational().ToString().c_str(), chords->size());
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig14_syncs", smoke);
  return 0;
}

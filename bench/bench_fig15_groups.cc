// Fig 15: the semantic functions of groups — phrasing (slurs) and
// timing (beams, tuplets). Regenerates a grouped passage and measures
// group-duration aggregation against size and nesting.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cmn/schema.h"
#include "cmn/score_builder.h"
#include "cmn/temporal.h"

namespace {

using mdm::Rational;
using mdm::er::Database;
using mdm::er::EntityId;

// Builds a group tree of the given depth, `width` chords per level.
EntityId MakeGroupTree(Database* db, int depth, int width) {
  mdm::cmn::ScoreBuilder builder(db);
  auto root = builder.AddGroup(depth % 2 == 0 ? "beam" : "slur");
  for (int w = 0; w < width; ++w) {
    auto chord = db->CreateEntity("CHORD");
    (void)db->SetAttribute(*chord, "duration_beats",
                           mdm::rel::Value::Rat(Rational(1, 4)));
    (void)builder.AddToGroup(*root, *chord);
  }
  if (depth > 1) {
    EntityId inner = MakeGroupTree(db, depth - 1, width);
    (void)builder.AddToGroup(*root, inner);
  }
  return *root;
}

void BM_GroupDurationFlat(benchmark::State& state) {
  Database db;
  if (!mdm::cmn::InstallCmnSchema(&db).ok()) std::abort();
  EntityId group = MakeGroupTree(&db, 1, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto d = mdm::cmn::GroupDuration(&db, group);
    if (!d.ok()) state.SkipWithError("duration failed");
    benchmark::DoNotOptimize(d->num());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupDurationFlat)->Arg(4)->Arg(64)->Arg(1024);

void BM_GroupDurationNested(benchmark::State& state) {
  Database db;
  if (!mdm::cmn::InstallCmnSchema(&db).ok()) std::abort();
  EntityId group = MakeGroupTree(&db, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    auto d = mdm::cmn::GroupDuration(&db, group);
    if (!d.ok()) state.SkipWithError("duration failed");
    benchmark::DoNotOptimize(d->num());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_GroupDurationNested)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 15 — group functions",
      "phrasing groups (slurs) and timing groups (beams, tuplets) over "
      "chords and rests; a group's duration is a function of its "
      "constituents");
  Database db;
  if (!mdm::cmn::InstallCmnSchema(&db).ok()) return 1;
  mdm::cmn::ScoreBuilder builder(&db);
  // A slur over a beam of four eighths plus a quarter: fig 15's shape.
  auto slur = builder.AddGroup("slur");
  auto beam = builder.AddGroup("beam");
  for (int i = 0; i < 4; ++i) {
    auto chord = db.CreateEntity("CHORD");
    (void)db.SetAttribute(*chord, "duration_beats",
                          mdm::rel::Value::Rat(Rational(1, 2)));
    (void)builder.AddToGroup(*beam, *chord);
  }
  (void)builder.AddToGroup(*slur, *beam);
  auto quarter = db.CreateEntity("CHORD");
  (void)db.SetAttribute(*quarter, "duration_beats",
                        mdm::rel::Value::Rat(Rational(1)));
  (void)builder.AddToGroup(*slur, *quarter);
  auto beam_d = mdm::cmn::GroupDuration(&db, *beam);
  auto slur_d = mdm::cmn::GroupDuration(&db, *slur);
  std::printf("beam of four eighths: %s beats\n",
              beam_d->ToString().c_str());
  std::printf("slur over beam + quarter: %s beats\n\n",
              slur_d->ToString().c_str());
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig15_groups", smoke);
  return 0;
}

// §2.1 under fire — what chaos costs a remote reader: the bench_s21_net
// read mix issued by one remote client whose byte stream passes through
// a seeded FaultInjectingTransport at 0% / 1% / 5% per-op fault rates,
// with the retry/backoff discipline (docs/ROBUSTNESS.md) switched on.
// Faulted runs pay reconnects, replayed attempts, and backoff sleeps;
// the throughput and p99 columns price that, and the obs registry delta
// (mdm_net_client_retries_total, mdm_net_client_backoff_ms_total) in
// the BENCH_JSON line shows the retry machinery doing the paying.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/connection.h"
#include "net/server.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "quel/quel.h"

namespace {

constexpr int kChords = 64;
constexpr int kNotesPerChord = 8;
double kSecondsPerPoint = 0.5;  // --smoke shrinks this

/// Same alternating read mix as bench_s21_net, so the 0% row here is
/// directly comparable to that bench's 1-client remote row.
const char* ReaderScript(uint64_t i) {
  switch (i % 3) {
    case 0:
      return "range of n1, n2 is NOTE\n"
             "retrieve (n1.name) where n1 before n2 in note_in_chord "
             "and n2.name = 4";
    case 1:
      return "range of n is NOTE\nrange of c is CHORD\n"
             "retrieve (n.name) where n under c in note_in_chord "
             "and c.name = 7";
    default:
      return "retrieve (k = count(NOTE.name))";
  }
}

/// Client options that wrap every dialed transport in a seeded
/// FaultInjectingTransport; each reconnect perturbs the seed so retries
/// don't replay the fault that killed the previous link.
mdm::net::ClientOptions FaultyOptions(double p_fault, uint64_t seed) {
  mdm::net::ClientOptions copts;
  copts.deadline_ms = 5000;
  copts.attempt_timeout_ms = 250;
  copts.retry.max_attempts = 8;
  copts.retry.initial_backoff_ms = 1;
  copts.retry.max_backoff_ms = 16;
  copts.retry.jitter_seed = seed;
  if (p_fault > 0) {
    auto dials = std::make_shared<std::atomic<uint64_t>>(0);
    copts.transport_factory =
        [p_fault, seed, dials](const std::string& host, uint16_t port,
                               uint32_t timeout_ms)
        -> mdm::Result<std::unique_ptr<mdm::net::Transport>> {
      auto base = mdm::net::DialTcpTransport(host, port, timeout_ms);
      if (!base.ok()) return base.status();
      mdm::net::FaultPlan plan;
      plan.p_fault = p_fault;
      plan.delay_ms = 1;
      plan.seed = seed + dials->fetch_add(1) * 0x9E3779B97F4A7C15ull;
      return std::unique_ptr<mdm::net::Transport>(
          std::make_unique<mdm::net::FaultInjectingTransport>(
              std::move(*base), plan));
    };
  }
  return copts;
}

struct Point {
  double qps = 0;      // completed scripts per second
  double p50_us = 0;   // median per-request wall clock
  double p99_us = 0;   // tail per-request wall clock
  uint64_t failed = 0; // scripts that still failed after retries
};

Point Measure(uint16_t port, double p_fault, uint64_t seed) {
  auto conn = mdm::Connection::Remote("127.0.0.1", port,
                                      FaultyOptions(p_fault, seed));
  if (!conn.ok()) {
    // A faulty handshake can lose the dial; one clean retry at the
    // bench level keeps the run going.
    conn = mdm::Connection::Remote("127.0.0.1", port,
                                   FaultyOptions(p_fault, seed + 1));
    if (!conn.ok()) std::abort();
  }
  Point p;
  std::vector<double> lat_us;
  lat_us.reserve(4096);
  auto t0 = std::chrono::steady_clock::now();
  auto deadline = t0 + std::chrono::duration<double>(kSecondsPerPoint);
  uint64_t i = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    auto r0 = std::chrono::steady_clock::now();
    bool ok = conn->Execute(ReaderScript(i++)).ok();
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - r0)
                    .count();
    if (ok) {
      lat_us.push_back(us);
    } else {
      ++p.failed;
    }
  }
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  p.qps = static_cast<double>(lat_us.size()) / secs;
  if (!lat_us.empty()) {
    std::sort(lat_us.begin(), lat_us.end());
    p.p50_us = lat_us[lat_us.size() / 2];
    p.p99_us = lat_us[(lat_us.size() * 99) / 100];
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  if (mdm::bench::ConsumeSmokeFlag(&argc, argv))
    kSecondsPerPoint = 0.05;
  mdm::bench::PrintHeader(
      "§2.1 — remote reads under injected transport faults",
      "fig 1's terminals on a flaky line: retry/backoff with deadline "
      "budgets (docs/ROBUSTNESS.md) over the mdmd wire protocol");
  std::printf(
      "expect: throughput and tail latency degrade smoothly with the\n"
      "fault rate — each injected fault costs a reconnect + replayed\n"
      "attempt + backoff, visible in the p99 column and in the retry\n"
      "counters on the BENCH_JSON line. No faulted run should fail\n"
      "outright: retries heal every read at these rates.\n\n");

  mdm::er::Database db = mdm::bench::MakeChordDb(kChords, kNotesPerChord);
  mdm::net::Server server(&db);
  if (!server.Start().ok()) {
    std::printf("cannot start mdmd server\n");
    return 1;
  }
  const uint16_t port = server.port();

  const double rates[] = {0.0, 0.01, 0.05};
  Point pts[3];
  std::printf("%-12s %12s %12s %12s %10s\n", "fault rate", "qps", "p50 us",
              "p99 us", "failed");
  mdm::bench::MetricsSection metrics;
  for (int i = 0; i < 3; ++i) {
    pts[i] = Measure(port, rates[i], /*seed=*/1000 + i);
    std::printf("%-12.2f %12.0f %12.1f %12.1f %10llu\n", rates[i], pts[i].qps,
                pts[i].p50_us, pts[i].p99_us,
                (unsigned long long)pts[i].failed);
  }
  server.Stop();
  double degr = pts[0].qps > 0 ? pts[2].qps / pts[0].qps : 0.0;
  std::printf("\nthroughput at 5%% faults vs clean: %.2fx\n", degr);
  std::printf(
      "BENCH_JSON {\"bench\": \"s21_fault\", \"chords\": %d, "
      "\"notes_per_chord\": %d, \"seconds_per_point\": %.2f, "
      "\"qps_f0\": %.0f, \"qps_f1\": %.0f, \"qps_f5\": %.0f, "
      "\"p99_us_f0\": %.1f, \"p99_us_f1\": %.1f, \"p99_us_f5\": %.1f, "
      "\"failed_f0\": %llu, \"failed_f1\": %llu, \"failed_f5\": %llu, "
      "\"qps_f5_over_f0\": %.3f%s}\n",
      kChords, kNotesPerChord, kSecondsPerPoint, pts[0].qps, pts[1].qps,
      pts[2].qps, pts[0].p99_us, pts[1].p99_us, pts[2].p99_us,
      (unsigned long long)pts[0].failed, (unsigned long long)pts[1].failed,
      (unsigned long long)pts[2].failed, degr,
      metrics.DeltaJsonSuffix().c_str());
  return 0;
}

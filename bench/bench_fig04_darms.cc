// Fig 4: the DARMS encoding of a score fragment. Regenerates the
// paper's fragment in user and canonical DARMS and measures parse /
// canonize / import throughput.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "darms/darms.h"

namespace {

constexpr const char* kFig4 =
    "I4 !G !K2# 00@\xC2\xA2tenor$ R2W / (7,@\xC2\xA2glo-$ 47) / "
    "(8 (9 8 7 8)) / 9E 9,@ri-$ 8,@a$ / (7,@in$ 6) 7,@ex-$ / "
    "(4D,@cel-$ (8 7 8 6)) / (4D 31) 4,@sis$ / 8Q,@\xC2\xA2" "de-$ E,@o$ //";

std::string RandomDarms(int measures, uint64_t seed) {
  mdm::Rng rng(seed);
  std::string out = "!G !K1# ";
  const char* durations[] = {"W", "H", "Q", "E", "S"};
  for (int m = 0; m < measures; ++m) {
    int notes = static_cast<int>(rng.Range(2, 6));
    for (int n = 0; n < notes; ++n) {
      out += std::to_string(rng.Range(1, 12));
      out += durations[rng.Uniform(5)];
      out += " ";
    }
    out += m + 1 == measures ? "//" : "/ ";
  }
  return out;
}

void BM_ParseDarms(benchmark::State& state) {
  std::string text = RandomDarms(static_cast<int>(state.range(0)), 3);
  size_t items = 0;
  for (auto _ : state) {
    auto parsed = mdm::darms::ParseDarms(text);
    if (!parsed.ok()) state.SkipWithError("parse failed");
    items = parsed->size();
    benchmark::DoNotOptimize(items);
  }
  state.SetBytesProcessed(state.iterations() * text.size());
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_ParseDarms)->Arg(8)->Arg(64)->Arg(512);

void BM_Canonicalize(benchmark::State& state) {
  std::string text = RandomDarms(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    auto canon = mdm::darms::Canonicalize(text);
    if (!canon.ok()) state.SkipWithError("canonize failed");
    benchmark::DoNotOptimize(canon->size());
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_Canonicalize)->Arg(8)->Arg(64)->Arg(512);

void BM_ImportToCmn(benchmark::State& state) {
  std::string text = RandomDarms(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    mdm::er::Database db;
    auto import = mdm::darms::ImportDarms(&db, text, "bench");
    if (!import.ok()) state.SkipWithError("import failed");
    benchmark::DoNotOptimize(import->notes);
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ImportToCmn)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mdm::bench::ConsumeSmokeFlag(&argc, argv);
  mdm::bench::PrintHeader(
      "Fig 4 — DARMS encoding of a fragment of music",
      "fig 4(b)'s encoding with instrument, clef, key signature, "
      "annotations, beams, rests and syllables");
  std::printf("user DARMS (fig 4(b)):\n  %s\n\n", kFig4);
  auto canon = mdm::darms::Canonicalize(kFig4);
  if (canon.ok())
    std::printf("canonical DARMS (the \"canonizer\" output):\n  %s\n\n",
                canon->c_str());
  // Fig 4(c): the abbreviation key.
  static const char* kAbbrevTable[][2] = {
      {"I4", "Instrument (or voice) definition #4"},
      {"!G", "G (treble) clef"},
      {"!K", "Key signature (!K2# two sharps)"},
      {"00", "Annotation above the staff"},
      {"R", "Rest (two whole rests)"},
      {"@text$", "Literal string"},
      {"\xC2\xA2", "Capitalize next letter"},
      {"(notes)", "Beam grouping"},
      {"W", "Whole duration"},
      {"Q", "Quarter duration"},
      {"E", "Eighth duration"},
      {"D", "Stems down"},
      {"/", "Bar line"},
  };
  std::printf("abbreviation key (fig 4(c)):\n");
  std::printf("  %-10s| %s\n  ", "Abbrev", "Meaning");
  std::printf("%s\n", std::string(50, '-').c_str());
  for (const auto& row : kAbbrevTable)
    std::printf("  %-10s| %s\n", row[0], row[1]);
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  mdm::bench::PrintSmokeJson("fig04_darms", smoke);
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_er_graph.dir/bench_fig05_er_graph.cc.o"
  "CMakeFiles/bench_fig05_er_graph.dir/bench_fig05_er_graph.cc.o.d"
  "bench_fig05_er_graph"
  "bench_fig05_er_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_er_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig05_er_graph.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig09_meta_schema.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_meta_schema.dir/bench_fig09_meta_schema.cc.o"
  "CMakeFiles/bench_fig09_meta_schema.dir/bench_fig09_meta_schema.cc.o.d"
  "bench_fig09_meta_schema"
  "bench_fig09_meta_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_meta_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig01_mdm_clients.
# This may be replaced when dependencies are built.

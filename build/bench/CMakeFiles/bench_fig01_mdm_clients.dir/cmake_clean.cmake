file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_mdm_clients.dir/bench_fig01_mdm_clients.cc.o"
  "CMakeFiles/bench_fig01_mdm_clients.dir/bench_fig01_mdm_clients.cc.o.d"
  "bench_fig01_mdm_clients"
  "bench_fig01_mdm_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_mdm_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

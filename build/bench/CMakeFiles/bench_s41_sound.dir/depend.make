# Empty dependencies file for bench_s41_sound.
# This may be replaced when dependencies are built.

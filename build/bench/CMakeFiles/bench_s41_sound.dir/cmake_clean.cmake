file(REMOVE_RECURSE
  "CMakeFiles/bench_s41_sound.dir/bench_s41_sound.cc.o"
  "CMakeFiles/bench_s41_sound.dir/bench_s41_sound.cc.o.d"
  "bench_s41_sound"
  "bench_s41_sound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s41_sound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig06_instance_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_instance_graph.dir/bench_fig06_instance_graph.cc.o"
  "CMakeFiles/bench_fig06_instance_graph.dir/bench_fig06_instance_graph.cc.o.d"
  "bench_fig06_instance_graph"
  "bench_fig06_instance_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_instance_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig13_temporal.
# This may be replaced when dependencies are built.

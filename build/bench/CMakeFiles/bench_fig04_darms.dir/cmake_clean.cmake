file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_darms.dir/bench_fig04_darms.cc.o"
  "CMakeFiles/bench_fig04_darms.dir/bench_fig04_darms.cc.o.d"
  "bench_fig04_darms"
  "bench_fig04_darms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_darms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_s52_ordering_opt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_s52_ordering_opt.dir/bench_s52_ordering_opt.cc.o"
  "CMakeFiles/bench_s52_ordering_opt.dir/bench_s52_ordering_opt.cc.o.d"
  "bench_s52_ordering_opt"
  "bench_s52_ordering_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s52_ordering_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

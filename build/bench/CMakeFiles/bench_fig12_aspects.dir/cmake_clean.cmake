file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_aspects.dir/bench_fig12_aspects.cc.o"
  "CMakeFiles/bench_fig12_aspects.dir/bench_fig12_aspects.cc.o.d"
  "bench_fig12_aspects"
  "bench_fig12_aspects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_aspects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

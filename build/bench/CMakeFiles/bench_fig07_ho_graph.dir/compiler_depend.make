# Empty compiler generated dependencies file for bench_fig07_ho_graph.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig11_cmn_entities.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cmn_entities.dir/bench_fig11_cmn_entities.cc.o"
  "CMakeFiles/bench_fig11_cmn_entities.dir/bench_fig11_cmn_entities.cc.o.d"
  "bench_fig11_cmn_entities"
  "bench_fig11_cmn_entities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cmn_entities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

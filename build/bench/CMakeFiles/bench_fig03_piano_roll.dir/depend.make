# Empty dependencies file for bench_fig03_piano_roll.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_piano_roll.dir/bench_fig03_piano_roll.cc.o"
  "CMakeFiles/bench_fig03_piano_roll.dir/bench_fig03_piano_roll.cc.o.d"
  "bench_fig03_piano_roll"
  "bench_fig03_piano_roll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_piano_roll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

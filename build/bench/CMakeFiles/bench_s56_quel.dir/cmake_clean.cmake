file(REMOVE_RECURSE
  "CMakeFiles/bench_s56_quel.dir/bench_s56_quel.cc.o"
  "CMakeFiles/bench_s56_quel.dir/bench_s56_quel.cc.o.d"
  "bench_s56_quel"
  "bench_s56_quel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s56_quel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

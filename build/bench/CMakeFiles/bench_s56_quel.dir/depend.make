# Empty dependencies file for bench_s56_quel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_recursive_beams.dir/bench_fig08_recursive_beams.cc.o"
  "CMakeFiles/bench_fig08_recursive_beams.dir/bench_fig08_recursive_beams.cc.o.d"
  "bench_fig08_recursive_beams"
  "bench_fig08_recursive_beams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_recursive_beams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

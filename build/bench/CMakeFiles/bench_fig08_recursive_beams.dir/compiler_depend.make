# Empty compiler generated dependencies file for bench_fig08_recursive_beams.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_graphdef.dir/bench_fig10_graphdef.cc.o"
  "CMakeFiles/bench_fig10_graphdef.dir/bench_fig10_graphdef.cc.o.d"
  "bench_fig10_graphdef"
  "bench_fig10_graphdef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_graphdef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

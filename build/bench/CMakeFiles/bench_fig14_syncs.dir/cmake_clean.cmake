file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_syncs.dir/bench_fig14_syncs.cc.o"
  "CMakeFiles/bench_fig14_syncs.dir/bench_fig14_syncs.cc.o.d"
  "bench_fig14_syncs"
  "bench_fig14_syncs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_syncs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

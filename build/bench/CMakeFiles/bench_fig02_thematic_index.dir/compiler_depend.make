# Empty compiler generated dependencies file for bench_fig02_thematic_index.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/biblio_notation_test.cc" "tests/CMakeFiles/mdm_tests.dir/biblio_notation_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/biblio_notation_test.cc.o.d"
  "/root/repo/tests/cmn_pitch_test.cc" "tests/CMakeFiles/mdm_tests.dir/cmn_pitch_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/cmn_pitch_test.cc.o.d"
  "/root/repo/tests/cmn_score_test.cc" "tests/CMakeFiles/mdm_tests.dir/cmn_score_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/cmn_score_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/mdm_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/mdm_tests.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/coverage_test.cc.o.d"
  "/root/repo/tests/darms_test.cc" "tests/CMakeFiles/mdm_tests.dir/darms_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/darms_test.cc.o.d"
  "/root/repo/tests/ddl_test.cc" "tests/CMakeFiles/mdm_tests.dir/ddl_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/ddl_test.cc.o.d"
  "/root/repo/tests/editor_property_test.cc" "tests/CMakeFiles/mdm_tests.dir/editor_property_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/editor_property_test.cc.o.d"
  "/root/repo/tests/er_test.cc" "tests/CMakeFiles/mdm_tests.dir/er_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/er_test.cc.o.d"
  "/root/repo/tests/file_backed_test.cc" "tests/CMakeFiles/mdm_tests.dir/file_backed_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/file_backed_test.cc.o.d"
  "/root/repo/tests/graphics_test.cc" "tests/CMakeFiles/mdm_tests.dir/graphics_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/graphics_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/mdm_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/meta_test.cc" "tests/CMakeFiles/mdm_tests.dir/meta_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/meta_test.cc.o.d"
  "/root/repo/tests/midi_import_test.cc" "tests/CMakeFiles/mdm_tests.dir/midi_import_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/midi_import_test.cc.o.d"
  "/root/repo/tests/midi_sound_test.cc" "tests/CMakeFiles/mdm_tests.dir/midi_sound_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/midi_sound_test.cc.o.d"
  "/root/repo/tests/mtime_test.cc" "tests/CMakeFiles/mdm_tests.dir/mtime_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/mtime_test.cc.o.d"
  "/root/repo/tests/persist_test.cc" "tests/CMakeFiles/mdm_tests.dir/persist_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/persist_test.cc.o.d"
  "/root/repo/tests/property2_test.cc" "tests/CMakeFiles/mdm_tests.dir/property2_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/property2_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/mdm_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/quel_test.cc" "tests/CMakeFiles/mdm_tests.dir/quel_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/quel_test.cc.o.d"
  "/root/repo/tests/rel_test.cc" "tests/CMakeFiles/mdm_tests.dir/rel_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/rel_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/mdm_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/timbral_analysis_test.cc" "tests/CMakeFiles/mdm_tests.dir/timbral_analysis_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/timbral_analysis_test.cc.o.d"
  "/root/repo/tests/transform_test.cc" "tests/CMakeFiles/mdm_tests.dir/transform_test.cc.o" "gcc" "tests/CMakeFiles/mdm_tests.dir/transform_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

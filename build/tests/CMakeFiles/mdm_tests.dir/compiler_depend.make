# Empty compiler generated dependencies file for mdm_tests.
# This may be replaced when dependencies are built.

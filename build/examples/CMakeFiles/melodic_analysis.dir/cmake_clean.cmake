file(REMOVE_RECURSE
  "CMakeFiles/melodic_analysis.dir/melodic_analysis.cpp.o"
  "CMakeFiles/melodic_analysis.dir/melodic_analysis.cpp.o.d"
  "melodic_analysis"
  "melodic_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/melodic_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for melodic_analysis.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for orchestration.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/orchestration.dir/orchestration.cpp.o"
  "CMakeFiles/orchestration.dir/orchestration.cpp.o.d"
  "orchestration"
  "orchestration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orchestration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for orchestration.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mdmsh.dir/mdmsh.cpp.o"
  "CMakeFiles/mdmsh.dir/mdmsh.cpp.o.d"
  "mdmsh"
  "mdmsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdmsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

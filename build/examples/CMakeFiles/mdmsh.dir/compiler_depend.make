# Empty compiler generated dependencies file for mdmsh.
# This may be replaced when dependencies are built.

# Empty dependencies file for typeset_svg.
# This may be replaced when dependencies are built.

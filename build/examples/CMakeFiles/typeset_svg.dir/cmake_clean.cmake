file(REMOVE_RECURSE
  "CMakeFiles/typeset_svg.dir/typeset_svg.cpp.o"
  "CMakeFiles/typeset_svg.dir/typeset_svg.cpp.o.d"
  "typeset_svg"
  "typeset_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typeset_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for performance_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/performance_pipeline.dir/performance_pipeline.cpp.o"
  "CMakeFiles/performance_pipeline.dir/performance_pipeline.cpp.o.d"
  "performance_pipeline"
  "performance_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performance_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

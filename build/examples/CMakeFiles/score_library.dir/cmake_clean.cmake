file(REMOVE_RECURSE
  "CMakeFiles/score_library.dir/score_library.cpp.o"
  "CMakeFiles/score_library.dir/score_library.cpp.o.d"
  "score_library"
  "score_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/score_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

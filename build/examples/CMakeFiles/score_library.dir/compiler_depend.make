# Empty compiler generated dependencies file for score_library.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for darms_roundtrip.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/darms_roundtrip.dir/darms_roundtrip.cpp.o"
  "CMakeFiles/darms_roundtrip.dir/darms_roundtrip.cpp.o.d"
  "darms_roundtrip"
  "darms_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darms_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmdm.a"
)

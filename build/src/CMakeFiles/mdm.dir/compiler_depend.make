# Empty compiler generated dependencies file for mdm.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/harmony.cc" "src/CMakeFiles/mdm.dir/analysis/harmony.cc.o" "gcc" "src/CMakeFiles/mdm.dir/analysis/harmony.cc.o.d"
  "/root/repo/src/biblio/thematic_index.cc" "src/CMakeFiles/mdm.dir/biblio/thematic_index.cc.o" "gcc" "src/CMakeFiles/mdm.dir/biblio/thematic_index.cc.o.d"
  "/root/repo/src/cmn/aspects.cc" "src/CMakeFiles/mdm.dir/cmn/aspects.cc.o" "gcc" "src/CMakeFiles/mdm.dir/cmn/aspects.cc.o.d"
  "/root/repo/src/cmn/pitch.cc" "src/CMakeFiles/mdm.dir/cmn/pitch.cc.o" "gcc" "src/CMakeFiles/mdm.dir/cmn/pitch.cc.o.d"
  "/root/repo/src/cmn/schema.cc" "src/CMakeFiles/mdm.dir/cmn/schema.cc.o" "gcc" "src/CMakeFiles/mdm.dir/cmn/schema.cc.o.d"
  "/root/repo/src/cmn/score_builder.cc" "src/CMakeFiles/mdm.dir/cmn/score_builder.cc.o" "gcc" "src/CMakeFiles/mdm.dir/cmn/score_builder.cc.o.d"
  "/root/repo/src/cmn/temporal.cc" "src/CMakeFiles/mdm.dir/cmn/temporal.cc.o" "gcc" "src/CMakeFiles/mdm.dir/cmn/temporal.cc.o.d"
  "/root/repo/src/cmn/timbral.cc" "src/CMakeFiles/mdm.dir/cmn/timbral.cc.o" "gcc" "src/CMakeFiles/mdm.dir/cmn/timbral.cc.o.d"
  "/root/repo/src/cmn/transform.cc" "src/CMakeFiles/mdm.dir/cmn/transform.cc.o" "gcc" "src/CMakeFiles/mdm.dir/cmn/transform.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/mdm.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/mdm.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/rational.cc" "src/CMakeFiles/mdm.dir/common/rational.cc.o" "gcc" "src/CMakeFiles/mdm.dir/common/rational.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mdm.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mdm.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/mdm.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/mdm.dir/common/strings.cc.o.d"
  "/root/repo/src/darms/darms.cc" "src/CMakeFiles/mdm.dir/darms/darms.cc.o" "gcc" "src/CMakeFiles/mdm.dir/darms/darms.cc.o.d"
  "/root/repo/src/ddl/lexer.cc" "src/CMakeFiles/mdm.dir/ddl/lexer.cc.o" "gcc" "src/CMakeFiles/mdm.dir/ddl/lexer.cc.o.d"
  "/root/repo/src/ddl/parser.cc" "src/CMakeFiles/mdm.dir/ddl/parser.cc.o" "gcc" "src/CMakeFiles/mdm.dir/ddl/parser.cc.o.d"
  "/root/repo/src/er/database.cc" "src/CMakeFiles/mdm.dir/er/database.cc.o" "gcc" "src/CMakeFiles/mdm.dir/er/database.cc.o.d"
  "/root/repo/src/er/persist.cc" "src/CMakeFiles/mdm.dir/er/persist.cc.o" "gcc" "src/CMakeFiles/mdm.dir/er/persist.cc.o.d"
  "/root/repo/src/er/schema.cc" "src/CMakeFiles/mdm.dir/er/schema.cc.o" "gcc" "src/CMakeFiles/mdm.dir/er/schema.cc.o.d"
  "/root/repo/src/er/versions.cc" "src/CMakeFiles/mdm.dir/er/versions.cc.o" "gcc" "src/CMakeFiles/mdm.dir/er/versions.cc.o.d"
  "/root/repo/src/graphics/postscript.cc" "src/CMakeFiles/mdm.dir/graphics/postscript.cc.o" "gcc" "src/CMakeFiles/mdm.dir/graphics/postscript.cc.o.d"
  "/root/repo/src/meta/meta_schema.cc" "src/CMakeFiles/mdm.dir/meta/meta_schema.cc.o" "gcc" "src/CMakeFiles/mdm.dir/meta/meta_schema.cc.o.d"
  "/root/repo/src/midi/import.cc" "src/CMakeFiles/mdm.dir/midi/import.cc.o" "gcc" "src/CMakeFiles/mdm.dir/midi/import.cc.o.d"
  "/root/repo/src/midi/midi.cc" "src/CMakeFiles/mdm.dir/midi/midi.cc.o" "gcc" "src/CMakeFiles/mdm.dir/midi/midi.cc.o.d"
  "/root/repo/src/mtime/meter.cc" "src/CMakeFiles/mdm.dir/mtime/meter.cc.o" "gcc" "src/CMakeFiles/mdm.dir/mtime/meter.cc.o.d"
  "/root/repo/src/mtime/tempo_map.cc" "src/CMakeFiles/mdm.dir/mtime/tempo_map.cc.o" "gcc" "src/CMakeFiles/mdm.dir/mtime/tempo_map.cc.o.d"
  "/root/repo/src/notation/engrave.cc" "src/CMakeFiles/mdm.dir/notation/engrave.cc.o" "gcc" "src/CMakeFiles/mdm.dir/notation/engrave.cc.o.d"
  "/root/repo/src/notation/piano_roll.cc" "src/CMakeFiles/mdm.dir/notation/piano_roll.cc.o" "gcc" "src/CMakeFiles/mdm.dir/notation/piano_roll.cc.o.d"
  "/root/repo/src/quel/executor.cc" "src/CMakeFiles/mdm.dir/quel/executor.cc.o" "gcc" "src/CMakeFiles/mdm.dir/quel/executor.cc.o.d"
  "/root/repo/src/quel/parser.cc" "src/CMakeFiles/mdm.dir/quel/parser.cc.o" "gcc" "src/CMakeFiles/mdm.dir/quel/parser.cc.o.d"
  "/root/repo/src/rel/schema.cc" "src/CMakeFiles/mdm.dir/rel/schema.cc.o" "gcc" "src/CMakeFiles/mdm.dir/rel/schema.cc.o.d"
  "/root/repo/src/rel/table.cc" "src/CMakeFiles/mdm.dir/rel/table.cc.o" "gcc" "src/CMakeFiles/mdm.dir/rel/table.cc.o.d"
  "/root/repo/src/rel/value.cc" "src/CMakeFiles/mdm.dir/rel/value.cc.o" "gcc" "src/CMakeFiles/mdm.dir/rel/value.cc.o.d"
  "/root/repo/src/sound/sound.cc" "src/CMakeFiles/mdm.dir/sound/sound.cc.o" "gcc" "src/CMakeFiles/mdm.dir/sound/sound.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/mdm.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/mdm.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/mdm.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/mdm.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/mdm.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/mdm.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/mdm.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/mdm.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/mdm.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/mdm.dir/storage/slotted_page.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/mdm.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/mdm.dir/storage/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

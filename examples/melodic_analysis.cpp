// Music-analysis client (§2): melodic and harmonic analysis of a score
// held in the MDM, exercising the temporal hierarchy, QUEL aggregates,
// and the meta-musical pitch rules of §4.3.
#include <cstdio>
#include <map>

#include "analysis/harmony.h"
#include "cmn/pitch.h"
#include "cmn/temporal.h"
#include "darms/darms.h"
#include "er/database.h"
#include "mtime/tempo_map.h"

int main() {
  // The BWV 578 fugue subject, in g minor (two flats).
  mdm::er::Database db;
  auto import = mdm::darms::ImportDarms(
      &db,
      "!G !K2- 2Q 6Q 4E 3E 2E 4E 3E 2E 1#E 3E / 5H 4E 2E 6Q //",
      "Fugue subject");
  if (!import.ok()) {
    std::printf("import failed: %s\n", import.status().ToString().c_str());
    return 1;
  }

  mdm::mtime::TempoMap tempo;
  (void)tempo.SetTempo(mdm::Rational(0), 84);
  auto notes = mdm::cmn::ExtractPerformance(&db, import->score, tempo);
  if (!notes.ok()) return 1;

  // 1. Melodic contour: intervals between successive notes.
  std::printf("== melodic analysis ==\n");
  std::printf("%zu notes; interval sequence (semitones): ", notes->size());
  for (size_t i = 1; i < notes->size(); ++i)
    std::printf("%+d ", (*notes)[i].midi_key - (*notes)[i - 1].midi_key);
  std::printf("\n");

  int leaps = 0, steps = 0, repeats = 0;
  int range_lo = 127, range_hi = 0;
  for (size_t i = 0; i < notes->size(); ++i) {
    range_lo = std::min(range_lo, (*notes)[i].midi_key);
    range_hi = std::max(range_hi, (*notes)[i].midi_key);
    if (i == 0) continue;
    int iv = std::abs((*notes)[i].midi_key - (*notes)[i - 1].midi_key);
    if (iv == 0) ++repeats;
    else if (iv <= 2) ++steps;
    else ++leaps;
  }
  std::printf("steps: %d, leaps: %d, repeats: %d, ambitus: %d semitones\n\n",
              steps, leaps, repeats, range_hi - range_lo);

  // 2. Pitch-class histogram: which scale degrees dominate?
  std::printf("== pitch-class histogram ==\n");
  std::map<int, int> histogram;
  for (const auto& n : *notes) ++histogram[n.midi_key % 12];
  const char* pc_names[12] = {"C",  "C#", "D",  "Eb", "E",  "F",
                              "F#", "G",  "Ab", "A",  "Bb", "B"};
  for (const auto& [pc, count] : histogram) {
    std::printf("%-2s |", pc_names[pc]);
    for (int i = 0; i < count; ++i) std::printf("#");
    std::printf(" %d\n", count);
  }

  // 3. Rhythmic profile via the temporal aspect.
  std::printf("\n== rhythmic profile ==\n");
  std::map<std::string, int> durations;
  for (const auto& n : *notes) ++durations[n.duration_beats.ToString()];
  for (const auto& [dur, count] : durations)
    std::printf("duration %s beats: %d note(s)\n", dur.c_str(), count);
  double total = (*notes).back().end_seconds;
  std::printf("performed length at 84 bpm: %.2f s\n", total);

  // 4. Key estimation (Krumhansl-Schmuckler over the performance).
  auto key = mdm::analysis::EstimateKey(*notes);
  std::printf("\n== key estimate ==\n%s (correlation %.3f)\n",
              key.Name().c_str(), key.correlation);

  // 5. Melodic structure via the analysis module.
  auto profile = mdm::analysis::ProfileMelody(*notes);
  std::printf("\n== melodic structure ==\n");
  std::printf("longest ascent: %d notes, longest descent: %d notes\n",
              profile.longest_ascent, profile.longest_descent);
  return 0;
}

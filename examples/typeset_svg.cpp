// Music-typesetter client (§2 / §6.2): engraves a score to SVG, and
// demonstrates the GraphDef mechanism — drawing definitions stored AS
// DATA in the database and executed through the 4-step procedure.
#include <cstdio>

#include "darms/darms.h"
#include "er/database.h"
#include "meta/meta_schema.h"
#include "notation/engrave.h"

int main() {
  mdm::er::Database db;
  auto import = mdm::darms::ImportDarms(
      &db, "!G 1Q 2Q 3Q 4Q / 5H 7H / (8E 7E 6E 5E) 4H //", "Engraving demo");
  if (!import.ok()) {
    std::printf("import failed: %s\n", import.status().ToString().c_str());
    return 1;
  }

  // 1. Direct engraving of the whole score.
  auto svg = mdm::notation::EngraveScoreSvg(&db, import->score);
  if (!svg.ok()) return 1;
  std::printf("== engraved score (SVG, %zu bytes) ==\n", svg->size());
  std::printf("%s\n", svg->substr(0, 400).c_str());
  std::printf("...\n\n");

  // 2. The §6.2 mechanism: a STEM's drawing function lives in the
  // database, parameterized by the stem's own attributes.
  if (!mdm::meta::InstallGraphicsSchema(&db).ok()) return 1;
  if (!mdm::meta::SyncSchemaToMeta(&db).ok()) return 1;

  auto graphdef = mdm::meta::DefineGraphDef(&db, "draw-stem", R"(
    % a stem: vertical line of `length` from (xpos, ypos), direction +-1
    newpath
    xpos ypos moveto
    0 length direction mul rlineto
    stroke
  )");
  (void)mdm::meta::AttachGraphDef(&db, "STEM", *graphdef);
  for (const char* attr : {"xpos", "ypos", "length", "direction"})
    (void)mdm::meta::AttachParameter(&db, *graphdef, "STEM", attr,
                                     std::string("/") + attr + " exch def");

  auto stem = db.CreateEntity("STEM");
  (void)db.SetAttribute(*stem, "xpos", mdm::rel::Value::Int(120));
  (void)db.SetAttribute(*stem, "ypos", mdm::rel::Value::Int(64));
  (void)db.SetAttribute(*stem, "length", mdm::rel::Value::Int(28));
  (void)db.SetAttribute(*stem, "direction", mdm::rel::Value::Int(-1));

  auto rendering = mdm::meta::DrawEntity(&db, *stem);
  if (!rendering.ok()) {
    std::printf("draw failed: %s\n", rendering.status().ToString().c_str());
    return 1;
  }
  std::printf("== stem drawn via GraphDef/GParmUse/GDefUse (fig 10) ==\n");
  std::printf("%s\n", rendering->ToSvg().c_str());

  // 3. Change the stored printing function — the client "may freely
  // modify such attributes as the printing function" (§6.2) — and the
  // same stem instance now draws differently.
  (void)db.SetAttribute(
      *graphdef, "function",
      mdm::rel::Value::String("newpath xpos ypos moveto "
                              "length direction mul dup rlineto stroke"));
  rendering = mdm::meta::DrawEntity(&db, *stem);
  std::printf("== same stem after editing the stored function ==\n%s",
              rendering->ToSvg().c_str());
  return 0;
}

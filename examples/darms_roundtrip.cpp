// DARMS round trip (fig 4): parse the paper's encoded fragment, run the
// "canonizer", import it into the CMN database, inspect it, and export
// it back to canonical DARMS.
#include <cstdio>

#include "cmn/temporal.h"
#include "darms/darms.h"
#include "er/database.h"
#include "net/connection.h"
#include "quel/quel.h"

int main() {
  // The fig 4 fragment in our DARMS dialect ('!' for the leading quote).
  const char* fig4 =
      "I4 !G !K2# 00@\xC2\xA2tenor$ R2W / (7,@\xC2\xA2glo-$ 47) / "
      "(8 (9 8 7 8)) / 9E 9,@ri-$ 8,@a$ / (7,@in$ 6) 7,@ex-$ / "
      "(4D,@cel-$ (8 7 8 6)) / (4D 31) 4,@sis$ / 8Q,@\xC2\xA2" "de-$ E,@o$ //";

  std::printf("== user DARMS (fig 4(b)) ==\n%s\n\n", fig4);

  auto canonical = mdm::darms::Canonicalize(fig4);
  if (!canonical.ok()) {
    std::printf("canonize failed: %s\n",
                canonical.status().ToString().c_str());
    return 1;
  }
  std::printf("== canonical DARMS (explicit durations, full codes) ==\n%s\n\n",
              canonical->c_str());

  mdm::er::Database db;
  auto import = mdm::darms::ImportDarms(&db, fig4, "Gloria in excelsis");
  if (!import.ok()) {
    std::printf("import failed: %s\n", import.status().ToString().c_str());
    return 1;
  }
  std::printf("== imported into the CMN schema ==\n");
  std::printf("measures: %d, notes: %d, rests: %d\n", import->measures,
              import->notes, import->rests);
  std::printf("entities in database: %llu\n\n",
              (unsigned long long)db.TotalEntities());

  // The imported score answers QUEL queries: count the syllables sung.
  // Statements go through mdm::Connection — the one public API, same
  // Execute against local and remote (mdmd) databases alike.
  mdm::Connection conn = mdm::Connection::Local(&db);
  auto rs = conn.Execute(R"(
    range of s is SYLLABLE
    retrieve (n = count(s), text = min(s.text))
  )");
  std::printf("== syllables (QUEL) ==\n%s\n", rs->ToString().c_str());

  auto exported = mdm::darms::ExportDarms(&db, import->score);
  std::printf("== re-exported canonical DARMS ==\n%s\n", exported->c_str());
  return 0;
}

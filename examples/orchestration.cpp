// Orchestration and versions: the timbral hierarchy (§7.1 — orchestra,
// sections, instruments, parts, voices) routing a performance to MIDI
// channels, and score versions/alternatives ([KaL82], [Dan86]).
#include <cstdio>

#include "analysis/harmony.h"
#include "cmn/schema.h"
#include "cmn/score_builder.h"
#include "cmn/timbral.h"
#include "cmn/transform.h"
#include "er/database.h"
#include "er/versions.h"
#include "midi/midi.h"
#include "mtime/tempo_map.h"

int main() {
  mdm::er::Database db;
  if (!mdm::cmn::InstallCmnSchema(&db).ok()) return 1;

  // A two-voice chorale fragment.
  mdm::cmn::ScoreBuilder builder(&db);
  auto score = builder.CreateScore("Chorale fragment");
  auto movement = builder.AddMovement(*score, "I");
  auto measure = builder.AddMeasure(*movement, 1, {4, 4});
  auto soprano = builder.AddVoice(1);
  auto bass = builder.AddVoice(2);
  const int soprano_line[] = {72, 71, 69, 67};
  const int bass_line[] = {48, 50, 53, 43};
  for (int b = 0; b < 4; ++b) {
    auto sync = builder.GetOrAddSync(*measure, mdm::Rational(b));
    auto c1 = builder.AddChord(*sync, *soprano, mdm::Rational(1));
    (void)builder.AddNoteMidi(*c1, soprano_line[b]);
    auto c2 = builder.AddChord(*sync, *bass, mdm::Rational(1));
    (void)builder.AddNoteMidi(*c2, bass_line[b]);
  }

  // The orchestra: oboe on the soprano line, bassoon on the bass.
  mdm::cmn::OrchestraBuilder orch(&db);
  auto orchestra = orch.CreateOrchestra("double reeds");
  auto winds = orch.AddSection(*orchestra, "winds");
  auto oboe = orch.AddInstrument(*winds, "oboe", 68);
  auto bassoon = orch.AddInstrument(*winds, "bassoon", 70);
  auto oboe_part = orch.AddPart(*oboe, "oboe I");
  auto bassoon_part = orch.AddPart(*bassoon, "bassoon I");
  (void)orch.AssignVoice(*oboe_part, *soprano);
  (void)orch.AssignVoice(*bassoon_part, *bass);
  (void)orch.Performs(*orchestra, *score);

  auto routes = mdm::cmn::RouteVoices(db, *orchestra);
  std::printf("== voice routing ==\n");
  for (const auto& r : *routes)
    std::printf("voice #%llu -> %s (channel %d, program %d)\n",
                (unsigned long long)r.voice, r.instrument_name.c_str(),
                r.channel, r.midi_program);

  mdm::mtime::TempoMap tempo;
  auto track = mdm::cmn::PerformWithOrchestra(&db, *score, *orchestra, tempo);
  std::printf("\n== routed MIDI stream ==\n%s\n",
              mdm::midi::EventListText(*track).c_str());

  // Versions: commit the original, then an alternative transposed
  // reading branching from it.
  mdm::er::VersionStore versions;
  auto v1 = versions.Commit(db, mdm::er::VersionStore::kNoParent,
                            "urtext", "as composed");
  (void)mdm::cmn::TransposeScore(&db, *score, 2);
  auto v2 = versions.Commit(db, *v1, "in-D", "transposed up a tone");
  std::printf("== versions ==\n");
  for (const auto& info : versions.List())
    std::printf("v%llu '%s' (parent v%llu): %llu entities, %zu bytes\n",
                (unsigned long long)info.id, info.name.c_str(),
                (unsigned long long)info.parent,
                (unsigned long long)info.entity_count,
                info.snapshot_bytes);
  auto diff = versions.DiffVersions(*v1, *v2);
  std::printf("urtext -> in-D: %llu added, %llu removed, %llu modified\n",
              (unsigned long long)diff->added,
              (unsigned long long)diff->removed,
              (unsigned long long)diff->modified);

  // The urtext checks out intact and still analyzes in C.
  auto urtext = versions.Checkout(*v1);
  auto labels = mdm::analysis::AnalyzeHarmony(&*urtext, *score, 2);
  std::printf("\n== harmony of the urtext ==\n");
  for (const auto& label : *labels)
    std::printf("beat %-4s %s\n", label.score_time.ToString().c_str(),
                label.Name().c_str());
  return 0;
}

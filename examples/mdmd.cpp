// mdmd — the music data manager daemon: one shared er::Database served
// to many remote clients over the mdmd wire protocol (fig 1 made
// literal; frame layout in docs/PROTOCOL.md).
//
//   $ ./build/examples/mdmd --port 7707
//   mdmd: listening on 127.0.0.1:7707
//   $ ./build/examples/mdmsh --connect 127.0.0.1:7707
//
// SIGTERM/SIGINT drain gracefully: accept stops, in-flight requests
// finish and respond, connection threads join, then the process exits 0.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "er/database.h"
#include "er/persist.h"
#include "net/admin.h"
#include "net/server.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void OnSignal(int) { g_shutdown = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--max-connections N]\n"
      "          [--max-frame-bytes B] [--deadline-ms MS] [--load PATH]\n"
      "          [--idle-timeout-ms MS] [--handshake-timeout-ms MS]\n"
      "          [--write-timeout-ms MS] [--max-active-statements N]\n"
      "          [--fault-inject SEED,RATE] [--admin-port P]\n"
      "          [--slow-query-ms MS] [--slow-query-log PATH]\n"
      "  --port 0 binds an ephemeral port (printed on stdout)\n"
      "  --load  starts from a snapshot written by mdmsh \\save\n"
      "  --fault-inject wraps every accepted connection in a seeded\n"
      "    FaultInjectingTransport firing at RATE per I/O (chaos drills)\n"
      "  --admin-port serves GET /metrics /healthz /statusz /traces/<id>\n"
      "    over HTTP (0 = ephemeral, printed on stdout)\n"
      "  --slow-query-log writes one JSON line per slow statement to\n"
      "    PATH ('-' = stderr); --slow-query-ms sets the threshold\n"
      "    (default 0: log every statement)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  // A client may vanish mid-ResultSet; the write must fail with EPIPE,
  // not kill the daemon. Transports also pass MSG_NOSIGNAL, but ignore
  // the signal process-wide as a belt-and-braces guard.
  std::signal(SIGPIPE, SIG_IGN);
  mdm::net::ServerOptions opts;
  std::string snapshot;
  std::string slow_query_log_path;
  bool admin = false;
  mdm::net::AdminOptions admin_opts;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mdmd: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      opts.host = need_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      opts.port = static_cast<uint16_t>(std::atoi(need_value("--port")));
    } else if (std::strcmp(argv[i], "--max-connections") == 0) {
      opts.max_connections =
          static_cast<size_t>(std::atol(need_value("--max-connections")));
    } else if (std::strcmp(argv[i], "--max-frame-bytes") == 0) {
      opts.max_frame_bytes =
          static_cast<size_t>(std::atol(need_value("--max-frame-bytes")));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      opts.default_deadline_ms =
          static_cast<uint32_t>(std::atol(need_value("--deadline-ms")));
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      opts.idle_timeout_ms =
          static_cast<uint32_t>(std::atol(need_value("--idle-timeout-ms")));
    } else if (std::strcmp(argv[i], "--handshake-timeout-ms") == 0) {
      opts.handshake_timeout_ms = static_cast<uint32_t>(
          std::atol(need_value("--handshake-timeout-ms")));
    } else if (std::strcmp(argv[i], "--write-timeout-ms") == 0) {
      opts.write_timeout_ms =
          static_cast<uint32_t>(std::atol(need_value("--write-timeout-ms")));
    } else if (std::strcmp(argv[i], "--max-active-statements") == 0) {
      opts.max_active_statements = static_cast<size_t>(
          std::atol(need_value("--max-active-statements")));
    } else if (std::strcmp(argv[i], "--fault-inject") == 0) {
      const char* spec = need_value("--fault-inject");
      mdm::net::FaultPlan plan;
      char* end = nullptr;
      plan.seed = std::strtoull(spec, &end, 10);
      if (end == nullptr || *end != ',') {
        std::fprintf(stderr, "mdmd: --fault-inject wants SEED,RATE\n");
        return 2;
      }
      plan.p_fault = std::strtod(end + 1, nullptr);
      opts.transport_factory = [plan](int fd) {
        return std::make_unique<mdm::net::FaultInjectingTransport>(
            std::make_unique<mdm::net::TcpTransport>(fd), plan);
      };
    } else if (std::strcmp(argv[i], "--load") == 0) {
      snapshot = need_value("--load");
    } else if (std::strcmp(argv[i], "--admin-port") == 0) {
      admin = true;
      admin_opts.port =
          static_cast<uint16_t>(std::atoi(need_value("--admin-port")));
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0) {
      opts.slow_query_ms =
          static_cast<uint32_t>(std::atol(need_value("--slow-query-ms")));
    } else if (std::strcmp(argv[i], "--slow-query-log") == 0) {
      slow_query_log_path = need_value("--slow-query-log");
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  mdm::er::Database db;
  if (!snapshot.empty()) {
    auto loaded = mdm::er::LoadSnapshot(snapshot);
    if (!loaded.ok()) {
      std::fprintf(stderr, "mdmd: cannot load %s: %s\n", snapshot.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(*loaded);
    std::printf("mdmd: loaded snapshot %s\n", snapshot.c_str());
  }

  if (!slow_query_log_path.empty()) {
    auto sink = mdm::obs::SlowQueryLog::Open(slow_query_log_path);
    if (!sink.ok()) {
      std::fprintf(stderr, "mdmd: cannot open slow-query log %s: %s\n",
                   slow_query_log_path.c_str(),
                   sink.status().ToString().c_str());
      return 1;
    }
    opts.slow_query_log = std::move(*sink);
    std::printf("mdmd: slow-query log -> %s (threshold %ums)\n",
                slow_query_log_path.c_str(), opts.slow_query_ms);
  }

  mdm::net::Server server(&db, opts);
  mdm::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "mdmd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("mdmd: listening on %s:%u\n", opts.host.c_str(),
              server.port());

  std::unique_ptr<mdm::net::AdminServer> admin_server;
  if (admin) {
    admin_opts.host = opts.host;
    admin_server =
        std::make_unique<mdm::net::AdminServer>(&server, admin_opts);
    mdm::Status admin_started = admin_server->Start();
    if (!admin_started.ok()) {
      std::fprintf(stderr, "mdmd: %s\n",
                   admin_started.ToString().c_str());
      return 1;
    }
    std::printf("mdmd: admin listening on %s:%u\n", admin_opts.host.c_str(),
                admin_server->port());
  }
  std::fflush(stdout);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  while (g_shutdown == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::printf("mdmd: draining (%zu active connection(s), "
              "%llu requests served)\n",
              server.active_connections(),
              (unsigned long long)server.requests_served());
  if (admin_server != nullptr) admin_server->Stop();
  server.Stop();
  std::printf("mdmd: shut down cleanly\n");
  return 0;
}

// The full performance pipeline: CMN score -> conductor (tempo map with
// ritardando) -> MIDI event stream -> Standard MIDI File -> synthesized
// PCM -> compaction, with a piano roll on the way (figs 3, 13; §4.1).
#include <cstdio>

#include "cmn/temporal.h"
#include "darms/darms.h"
#include "er/database.h"
#include "midi/midi.h"
#include "mtime/tempo_map.h"
#include "notation/piano_roll.h"
#include "sound/sound.h"

int main() {
  mdm::er::Database db;
  auto import = mdm::darms::ImportDarms(
      &db,
      "!G !K2- 2Q 6Q 4E 3E 2E 4E 3E 2E 1#E 3E / 5H 4E 3E 2E 1E / 2W //",
      "Pipeline demo");
  if (!import.ok()) return 1;

  // The conductor: a tempo plan with a final ritardando (§7.2).
  mdm::mtime::TempoMap tempo;
  (void)tempo.SetTempo(mdm::Rational(0), 96);
  (void)tempo.Ritardando(mdm::Rational(8), 96);
  (void)tempo.SetTempo(mdm::Rational(12), 48);
  std::printf("== tempo plan ==\n%s\n", tempo.ToString().c_str());

  auto notes = mdm::cmn::ExtractPerformance(&db, import->score, tempo);
  if (!notes.ok()) return 1;
  std::printf("== extracted performance: %zu events ==\n", notes->size());

  // Piano roll (fig 3), with the first three notes shaded as an
  // "entrance".
  mdm::notation::PianoRollOptions options;
  for (size_t i = 0; i < 3 && i < notes->size(); ++i)
    options.highlighted_notes.push_back((*notes)[i].source_note);
  std::printf("%s\n", mdm::notation::AsciiPianoRoll(*notes, options).c_str());

  // MIDI event list and SMF bytes.
  mdm::midi::MidiTrack track = mdm::midi::TrackFromPerformance(*notes);
  std::printf("== MIDI event list (first lines) ==\n");
  std::string listing = mdm::midi::EventListText(track);
  std::printf("%s", listing.substr(0, 600).c_str());
  std::vector<uint8_t> smf = mdm::midi::WriteSmf(track);
  std::printf("...\nSMF size: %zu bytes\n\n", smf.size());

  // Synthesis + the §4.1 storage/compaction story.
  mdm::sound::PcmBuffer pcm = mdm::sound::Synthesize(track, 16000);
  std::printf("== digitized sound ==\n");
  std::printf("%.2f s at %d Hz = %zu bytes raw\n", pcm.DurationSeconds(),
              pcm.sample_rate, pcm.SizeBytes());
  std::printf("(the paper's example: 10 min at 48 kHz/16-bit = %llu bytes)\n",
              (unsigned long long)mdm::sound::StorageBytes(600.0));

  mdm::sound::CompactionStats delta_stats, silence_stats, quant_stats;
  (void)mdm::sound::EncodeDelta(pcm, &delta_stats);
  (void)mdm::sound::EncodeSilence(pcm, 8, &silence_stats);
  (void)mdm::sound::EncodeQuantized(pcm, 8, &quant_stats);
  std::printf("compaction: delta %.2fx (lossless), silence %.2fx, "
              "8-bit quantized %.2fx\n",
              delta_stats.Ratio(), silence_stats.Ratio(),
              quant_stats.Ratio());
  return 0;
}

// Quickstart: define a schema in the paper's DDL, build hierarchically
// ordered data, and query it with the extended QUEL operators
// (before / after / under / is) from §5.6.
//
// Statements are issued through mdm::Connection — the one client API
// that works identically against an in-process database and a remote
// mdmd server (swap Local for Remote("host:port") and nothing else
// changes).
#include <cstdio>

#include "er/database.h"
#include "net/connection.h"
#include "quel/quel.h"

int main() {
  mdm::er::Database db;
  mdm::Connection conn = mdm::Connection::Local(&db);

  // 1. The paper's running schema (§5.4). The Connection routes
  // `define` scripts to the DDL layer and reports what was defined.
  auto ddl = conn.Execute(R"(
    define entity CHORD (name = integer)
    define entity NOTE (name = integer, pitch = string)
    define ordering note_in_chord (NOTE) under CHORD
  )");
  if (!ddl.ok()) {
    std::printf("DDL failed: %s\n", ddl.status().ToString().c_str());
    return 1;
  }
  std::printf("defined: %s entity types, %s ordering(s)\n\n",
              ddl->At(0, 0).ToString().c_str(),
              ddl->At(0, 2).ToString().c_str());

  // 2. A four-note chord, exactly the instance graph of fig 6.
  auto chord = db.CreateEntity("CHORD");
  (void)db.SetAttribute(*chord, "name", mdm::rel::Value::Int(1));
  const char* names[] = {"u", "v", "w", "x"};
  const char* pitches[] = {"G3", "B3", "D4", "G4"};
  for (int i = 0; i < 4; ++i) {
    auto note = db.CreateEntity("NOTE");
    (void)db.SetAttribute(*note, "name", mdm::rel::Value::Int(i + 1));
    (void)db.SetAttribute(*note, "pitch",
                          mdm::rel::Value::String(pitches[i]));
    (void)db.AppendChild("note_in_chord", *chord, *note);
    std::printf("inserted note %s (%s) as child %d of the chord\n",
                names[i], pitches[i], i + 1);
  }

  // "We may speak of the node w as the third child of the parent y."
  auto third = db.NthChild("note_in_chord", *chord, 2);
  auto pitch = db.GetAttribute(*third, "pitch");
  std::printf("\nthe third child of the chord is %s\n\n",
              pitch->AsString().c_str());

  // 3. The paper's §5.6 queries, verbatim apart from '.' attribute
  // syntax, all through the same Connection.
  struct NamedQuery {
    const char* label;
    const char* text;
  } queries[] = {
      {"notes prior to note 3 in its chord",
       "range of n1, n2 is NOTE\n"
       "retrieve (n1.name, n1.pitch)\n"
       "  where n1 before n2 in note_in_chord and n2.name = 3"},
      {"notes that follow note 2",
       "range of n1, n2 is NOTE\n"
       "retrieve (n1.name, n1.pitch)\n"
       "  where n1 after n2 in note_in_chord and n2.name = 2"},
      {"notes under chord 1",
       "range of n1 is NOTE\nrange of c1 is CHORD\n"
       "retrieve (n1.name, n1.pitch)\n"
       "  where n1 under c1 in note_in_chord and c1.name = 1"},
      {"the parent chord of note 4",
       "range of n1 is NOTE\nrange of c1 is CHORD\n"
       "retrieve (c1.name)\n"
       "  where n1 under c1 in note_in_chord and n1.name = 4"},
  };
  for (const NamedQuery& q : queries) {
    auto rs = conn.Execute(q.text);
    if (!rs.ok()) {
      std::printf("query failed: %s\n", rs.status().ToString().c_str());
      return 1;
    }
    // Consume the result through the ResultSet API: range-for over rows,
    // cells by column index or label.
    std::printf("-- %s\n", q.label);
    for (mdm::quel::ResultSet::RowRef row : *rs) {
      for (size_t c = 0; c < rs->columns.size(); ++c)
        std::printf("%s%s = %s", c == 0 ? "   " : ", ",
                    rs->columns[c].c_str(), row[c].ToString().c_str());
      std::printf("\n");
    }
  }

  // 4. `explain` renders the chosen plan — loop order, pushed-down
  // filters, and which §5.6 structural index answers each operator.
  auto plan = conn.Execute(
      "range of n1, n2 is NOTE\n"
      "explain retrieve (n1.name, n1.pitch)\n"
      "  where n1 before n2 in note_in_chord and n2.name = 3");
  std::printf("\n%s\n", plan->ToString().c_str());

  // 5. The instance graph itself (fig 6), as Graphviz DOT.
  auto dot = db.InstanceGraphDot("note_in_chord", *chord, "pitch");
  std::printf("instance graph (fig 6):\n%s", dot->c_str());
  return 0;
}

// Score library client (§2): a thematic catalog in the BWV style of
// fig 2, with identifier lookup and transposition-invariant melodic
// search — the musicological-reference use case of §4.2.
#include <cstdio>

#include "biblio/thematic_index.h"
#include "er/database.h"
#include "net/connection.h"
#include "quel/quel.h"

int main() {
  mdm::er::Database db;
  if (!mdm::biblio::InstallBiblioSchema(&db).ok()) return 1;
  auto bwv = mdm::biblio::CreateCatalog(&db, "Bach Werke Verzeichnis", "BWV");

  // A handful of entries; BWV 578 carries the fig 2 data.
  mdm::biblio::CatalogEntry fugue;
  fugue.number = "578";
  fugue.title = "Fuge g-moll";
  fugue.setting = "Orgel";
  fugue.composed = "Weimar um 1709 (oder schon in Arnstadt?)";
  fugue.measure_count = 68;
  fugue.incipit = {67, 74, 70, 69, 67, 70, 69, 67, 66, 69, 62};
  fugue.manuscripts = {"Andreas Bach Buch (S 657-677) B Lpz III 8 4",
                       "BB in Mus ms Bach P 803 (S 805-811)"};
  fugue.editions = {"C F Beckers Caecilia Bd. II S 91",
                    "Peters Orgelwerke Bd. IV S 46",
                    "Breitkopf & Haertel EB 3174 S 72"};
  fugue.literature = {"Spitta I 399", "Schweitzer 248", "Keller 73",
                      "BJ 1912 131"};
  (void)mdm::biblio::AddEntry(&db, *bwv, fugue);

  mdm::biblio::CatalogEntry toccata;
  toccata.number = "565";
  toccata.title = "Toccata und Fuge d-moll";
  toccata.setting = "Orgel";
  toccata.composed = "Arnstadt(?) um 1704";
  toccata.measure_count = 143;
  toccata.incipit = {69, 67, 69, 65, 64, 62, 61, 62};
  (void)mdm::biblio::AddEntry(&db, *bwv, toccata);

  mdm::biblio::CatalogEntry art;
  art.number = "1080";
  art.title = "Die Kunst der Fuge";
  art.setting = "offen";
  art.composed = "Leipzig 1742-1750";
  art.measure_count = 2397;
  art.incipit = {62, 69, 65, 62, 61, 62, 64, 65, 67, 65, 64, 62};
  (void)mdm::biblio::AddEntry(&db, *bwv, art);

  // 1. The accepted identifier resolves the composition (§4.2).
  auto hit = mdm::biblio::LookupByIdentifier(db, "BWV 578");
  auto text = mdm::biblio::FormatEntry(db, *hit);
  std::printf("== thematic index entry (fig 2) ==\n%s\n", text->c_str());

  // 2. Melodic search: hum the subject in any key.
  std::vector<int> hummed = {72, 79, 75, 74, 72};  // subject up a fourth
  auto matches = mdm::biblio::SearchByIntervals(
      db, *bwv, mdm::biblio::ToIntervals(hummed));
  std::printf("== melodic search ==\n");
  std::printf("queried %zu intervals; %zu match(es):\n", hummed.size() - 1,
              matches->size());
  for (auto entry : *matches) {
    auto e = mdm::biblio::GetEntry(db, entry);
    std::printf("  BWV %s - %s\n", e->number.c_str(), e->title.c_str());
  }

  // 3. The catalog is ordinary MDM data: QUEL reaches it through the
  // mdm::Connection facade (the same call would work over the wire via
  // Connection::Remote against an mdmd serving this library).
  mdm::Connection conn = mdm::Connection::Local(&db);
  auto rs = conn.Execute(R"(
    range of e is CATALOG_ENTRY
    retrieve (e.number, e.title, e.measure_count)
      where e.measure_count > 100
  )");
  // Consume it through the ResultSet API: resolve labels once, then
  // read cells by index while iterating rows.
  std::printf("\n== compositions over 100 measures (QUEL) ==\n");
  auto number = rs->ColumnIndex("e.number");
  auto title = rs->ColumnIndex("e.title");
  auto measures = rs->ColumnIndex("e.measure_count");
  for (mdm::quel::ResultSet::RowRef row : *rs) {
    std::printf("  BWV %s - %s (%s measures)\n",
                row[*number].ToString().c_str(),
                row[*title].ToString().c_str(),
                row[*measures].ToString().c_str());
  }
  std::printf("  (%zu of %llu entries)\n", rs->size(),
              (unsigned long long)*db.CountEntities("CATALOG_ENTRY"));
  return 0;
}

// mdmsh — an interactive MDM shell: a tiny terminal monitor for the
// music data manager, accepting the paper's DDL and extended QUEL plus
// a few meta commands. Reads from stdin; suitable for piping scripts.
//
// All statements flow through the mdm::Connection facade, so the same
// shell works against the in-process database (default) or a remote
// mdmd server:
//
//   $ ./build/examples/mdmsh
//   $ ./build/examples/mdmsh --connect 127.0.0.1:7707
//   mdm> define entity NOTE (name = integer)
//   mdm> append to NOTE (name = 7)
//   mdm> retrieve (NOTE.name)
//   mdm> \schema        -- deparse the schema (local sessions only)
//   mdm> \ho            -- HO graph in DOT
//   mdm> \save score.mdm  / \load score.mdm
//   mdm> \quit
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "er/persist.h"
#include "er/session.h"
#include "net/admin.h"
#include "net/connection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quel/quel.h"

namespace {

/// Splits "host:port" (net admin endpoint form); false on bad input.
bool SplitHostPort(const std::string& endpoint, std::string* host,
                   uint16_t* port) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 == endpoint.size())
    return false;
  *host = endpoint.substr(0, colon);
  if (host->size() >= 2 && host->front() == '[' && host->back() == ']')
    *host = host->substr(1, host->size() - 2);
  long p = std::atol(endpoint.c_str() + colon + 1);
  if (host->empty() || p < 1 || p > 65535) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

/// \stress: re-runs the last executed QUEL script from N concurrent
/// client threads (each with its own local Connection, the fig 1
/// many-clients shape) and reports aggregate throughput. Retrieves
/// overlap under the shared latch; mutating scripts serialize safely.
/// (Local sessions only: against a remote server, run several mdmsh
/// --connect processes, or bench_s21_net.)
void RunStress(mdm::er::Database* db, const std::string& script,
               size_t threads, size_t iters) {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([db, &script, iters, &ok, &failed] {
      mdm::Connection conn = mdm::Connection::Local(db);
      for (size_t i = 0; i < iters; ++i) {
        if (conn.Execute(script).ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  uint64_t total = ok.load() + failed.load();
  std::printf("%zu threads x %zu iterations: %llu scripts (%llu failed) "
              "in %.3fs = %.0f scripts/s (hw threads: %u)\n",
              threads, iters, (unsigned long long)total,
              (unsigned long long)failed.load(), secs,
              secs > 0 ? total / secs : 0.0,
              std::thread::hardware_concurrency());
}

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint;
  std::string admin_endpoint;
  mdm::net::ClientOptions copts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      endpoint = argv[++i];
    } else if (std::strcmp(argv[i], "--admin") == 0 && i + 1 < argc) {
      admin_endpoint = argv[++i];
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      copts.deadline_ms = static_cast<uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      copts.retry.max_attempts = std::atoi(argv[++i]);
      if (copts.retry.max_attempts < 1) copts.retry.max_attempts = 1;
    } else if (std::strcmp(argv[i], "--trace-sample") == 0 && i + 1 < argc) {
      copts.trace_sample_rate = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--connect host:port] [--admin host:port] "
                   "[--deadline-ms MS] [--retries N] [--trace-sample R]\n"
                   "  --retries N: total attempts for idempotent reads "
                   "(1 = never retry)\n"
                   "  --admin: the server's --admin-port endpoint, for "
                   "\\metrics / \\statusz / \\trace against a remote mdmd\n"
                   "  --trace-sample R: sample fraction R of requests "
                   "(remote; retrieve traces with \\trace last)\n",
                   argv[0]);
      return 2;
    }
  }
  std::string admin_host;
  uint16_t admin_port = 0;
  if (!admin_endpoint.empty() &&
      !SplitHostPort(admin_endpoint, &admin_host, &admin_port)) {
    std::fprintf(stderr, "mdmsh: --admin wants host:port, got '%s'\n",
                 admin_endpoint.c_str());
    return 2;
  }

  // Local database backing the default (in-process) session. Unused in
  // remote mode, where the data lives in the mdmd server.
  mdm::er::Database db;
  mdm::Connection conn = mdm::Connection::Local(&db);
  if (!endpoint.empty()) {
    auto remote = mdm::Connection::Remote(endpoint, copts);
    if (!remote.ok()) {
      std::fprintf(stderr, "mdmsh: cannot connect to %s: %s\n",
                   endpoint.c_str(), remote.status().ToString().c_str());
      return 1;
    }
    conn = std::move(*remote);
    std::printf("connected to mdmd at %s\n", endpoint.c_str());
  }
  const bool local = !conn.is_remote();
  // Locally every statement is traced (the shell is a debugging tool;
  // the per-span cost is negligible at human typing speed), so `\trace
  // last` always has something to show. Remote tracing is opt-in via
  // --trace-sample because it costs server ring space per request.
  if (local) conn.EnableLocalTracing(/*seed=*/0x6D646D73);  // "mdms"

  std::string buffer;
  std::string line;
  std::string last_script;  // most recent QUEL buffer, for \stress

  std::printf("mdm shell — DDL + QUEL; \\help for commands\n");
  std::printf("mdm> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed(mdm::StrTrim(line));
    if (!trimmed.empty() && trimmed[0] == '\\') {
      auto parts = mdm::StrSplit(trimmed, ' ');
      const std::string& cmd = parts[0];
      if (cmd == "\\quit" || cmd == "\\q") break;
      if (cmd == "\\help") {
        std::printf(
            "  define entity/relationship/ordering ...   (DDL)\n"
            "  range of / retrieve / append / replace / delete (QUEL)\n"
            "  explain retrieve ...   show the plan without running it\n"
            "  explain analyze retrieve ...   run it, annotate with actuals\n"
            "  statements may span lines; a blank line executes\n"
            "  \\schema       deparse the schema as DDL (local)\n"
            "  \\ho           hierarchical ordering graph (DOT) (local)\n"
            "  \\stats        entity counts + session execution counters\n"
            "  \\stress [N] [ITERS]  re-run the last script from N client\n"
            "                threads (default 4 x 100) (local)\n"
            "  \\metrics      Prometheus text ('json' for JSON): the\n"
            "                server's via --admin, else this process's\n"
            "  \\statusz      server status page via --admin; locally the\n"
            "                statement-latency percentiles\n"
            "  \\trace last   last request's trace as Chrome trace JSON\n"
            "                (remote needs --admin and --trace-sample)\n"
            "  \\save PATH    write a snapshot (local)\n"
            "  \\load PATH    replace the session with a snapshot (local)\n"
            "  \\quit\n");
      } else if (!local &&
                 (cmd == "\\schema" || cmd == "\\ho" || cmd == "\\stats" ||
                  cmd == "\\stress" || cmd == "\\save" || cmd == "\\load")) {
        std::printf("%s works on a local session only; this shell is "
                    "connected to a remote mdmd\n",
                    cmd.c_str());
      } else if (cmd == "\\schema") {
        std::printf("%s", mdm::ddl::SchemaToDdl(db.schema()).c_str());
      } else if (cmd == "\\ho") {
        std::printf("%s", db.HoGraphDot().c_str());
      } else if (cmd == "\\stats") {
        // One ReadGuard around the whole report: the counts form one
        // consistent snapshot even if \stress threads were running.
        mdm::er::ReadGuard read{db};
        for (const auto& type : read->schema().entity_types()) {
          auto n = read->CountEntities(type.name);
          std::printf("  %-20s %llu\n", type.name.c_str(),
                      n.ok() ? (unsigned long long)*n : 0ull);
        }
        std::printf("session:\n%s", conn.local_stats().ToString().c_str());
      } else if (cmd == "\\stress") {
        if (last_script.empty()) {
          std::printf("nothing to stress: execute a QUEL script first\n");
        } else {
          size_t threads = parts.size() > 1 ? std::stoul(parts[1]) : 4;
          size_t iters = parts.size() > 2 ? std::stoul(parts[2]) : 100;
          if (threads == 0) threads = 1;
          RunStress(&db, last_script, threads, iters);
        }
      } else if (cmd == "\\metrics") {
        bool json = parts.size() > 1 && parts[1] == "json";
        if (!local && admin_port != 0) {
          // The numbers a remote operator wants are the SERVER's, not
          // this shell process's — fetch them from the admin endpoint.
          if (json)
            std::printf("# note: the admin endpoint serves Prometheus text "
                        "only; showing /metrics\n");
          auto body = mdm::net::HttpGet(admin_host, admin_port, "/metrics",
                                        /*timeout_ms=*/2'000);
          if (body.ok()) {
            std::printf("# origin: mdmd admin %s\n%s", admin_endpoint.c_str(),
                        body->c_str());
          } else {
            std::printf("cannot reach admin endpoint %s: %s\n",
                        admin_endpoint.c_str(),
                        body.status().ToString().c_str());
          }
        } else {
          if (!local)
            std::printf("# origin: this mdmsh process (client-side metrics "
                        "only; pass --admin HOST:PORT for the server's)\n");
          else
            std::printf("# origin: this mdmsh process (local database)\n");
          if (json) {
            std::printf("%s\n", mdm::obs::RenderJson().c_str());
          } else {
            std::printf("%s", mdm::obs::RenderPrometheusText().c_str());
          }
        }
      } else if (cmd == "\\statusz") {
        if (!local) {
          if (admin_port == 0) {
            std::printf("\\statusz on a remote session needs --admin "
                        "HOST:PORT (the server's --admin-port)\n");
          } else {
            auto body = mdm::net::HttpGet(admin_host, admin_port, "/statusz",
                                          /*timeout_ms=*/2'000);
            if (body.ok()) {
              std::printf("%s", body->c_str());
            } else {
              std::printf("cannot reach admin endpoint %s: %s\n",
                          admin_endpoint.c_str(),
                          body.status().ToString().c_str());
            }
          }
        } else {
          mdm::obs::Histogram* h = mdm::obs::Registry::Global()->GetHistogram(
              "mdm_span_duration_ns{span=\"quel.statement\"}",
              "Inclusive span latency in nanoseconds");
          std::printf("quel.statement latency (this process, %llu samples):\n"
                      "  p50 %.0f ns  p90 %.0f ns  p99 %.0f ns\n",
                      (unsigned long long)h->count(),
                      mdm::obs::HistogramPercentile(*h, 0.50),
                      mdm::obs::HistogramPercentile(*h, 0.90),
                      mdm::obs::HistogramPercentile(*h, 0.99));
        }
      } else if (cmd == "\\trace") {
        if (parts.size() < 2 || parts[1] != "last") {
          std::printf("usage: \\trace last\n");
        } else if (conn.last_trace_id() == 0) {
          std::printf("no traced request yet%s\n",
                      !local && copts.trace_sample_rate <= 0.0
                          ? " (start mdmsh with --trace-sample 1)"
                          : "");
        } else if (local) {
          auto trace = mdm::obs::TraceRing::Global()->Find(
              conn.last_trace_id());
          if (trace == nullptr) {
            std::printf("trace %s has aged out of the ring\n",
                        mdm::obs::FormatTraceId(conn.last_trace_id()).c_str());
          } else {
            std::printf("%s\n",
                        mdm::obs::RenderTraceEventJson(*trace).c_str());
          }
        } else if (admin_port == 0) {
          std::printf("\\trace last on a remote session needs --admin "
                      "HOST:PORT (the server's --admin-port)\n");
        } else if (!conn.last_trace_sampled()) {
          std::printf("last request (trace %s) was not sampled; raise "
                      "--trace-sample\n",
                      mdm::obs::FormatTraceId(conn.last_trace_id()).c_str());
        } else {
          std::string path =
              "/traces/" + mdm::obs::FormatTraceId(conn.last_trace_id());
          auto body = mdm::net::HttpGet(admin_host, admin_port, path,
                                        /*timeout_ms=*/2'000);
          if (body.ok()) {
            std::printf("%s\n", body->c_str());
          } else {
            std::printf("cannot fetch %s from %s: %s\n", path.c_str(),
                        admin_endpoint.c_str(),
                        body.status().ToString().c_str());
          }
        }
      } else if (cmd == "\\save" && parts.size() > 1) {
        mdm::Status s = mdm::er::SaveSnapshot(db, parts[1]);
        std::printf("%s\n", s.ToString().c_str());
      } else if (cmd == "\\load" && parts.size() > 1) {
        auto loaded = mdm::er::LoadSnapshot(parts[1]);
        if (loaded.ok()) {
          db = std::move(*loaded);
          std::printf("OK\n");
        } else {
          std::printf("%s\n", loaded.status().ToString().c_str());
        }
      } else {
        std::printf("unknown command %s (try \\help)\n", cmd.c_str());
      }
      std::printf("mdm> ");
      std::fflush(stdout);
      continue;
    }

    // Accumulate statements; execute on blank line.
    if (!trimmed.empty()) {
      buffer += line + "\n";
      std::printf("...> ");
      std::fflush(stdout);
      continue;
    }
    if (buffer.empty()) {
      std::printf("mdm> ");
      std::fflush(stdout);
      continue;
    }
    // DDL and QUEL alike go through the Connection; remote errors come
    // back code-intact over the wire (common::ErrorCode).
    auto rs = conn.Execute(buffer);
    if (rs.ok()) {
      std::printf("%s", rs->ToString().c_str());
      if (!mdm::StartsWith(
              mdm::AsciiLower(std::string(mdm::StrTrim(buffer))), "define"))
        last_script = buffer;
    } else {
      std::printf("%s\n", rs.status().ToString().c_str());
    }
    buffer.clear();
    std::printf("mdm> ");
    std::fflush(stdout);
  }
  return 0;
}

// mdmsh — an interactive MDM shell: a tiny terminal monitor for the
// music data manager, accepting the paper's DDL and extended QUEL plus
// a few meta commands. Reads from stdin; suitable for piping scripts.
//
//   $ ./build/examples/mdmsh
//   mdm> define entity NOTE (name = integer)
//   mdm> append to NOTE (name = 7)
//   mdm> retrieve (NOTE.name)
//   mdm> \schema        -- deparse the schema
//   mdm> \ho            -- HO graph in DOT
//   mdm> \save score.mdm  / \load score.mdm
//   mdm> \quit
#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "er/persist.h"
#include "obs/metrics.h"
#include "quel/quel.h"

namespace {

bool LooksLikeDdl(const std::string& text) {
  return mdm::StartsWith(mdm::AsciiLower(std::string(mdm::StrTrim(text))),
                         "define");
}

}  // namespace

int main() {
  mdm::er::Database db;
  mdm::quel::QuelSession session(&db);
  std::string buffer;
  std::string line;

  std::printf("mdm shell — DDL + QUEL; \\help for commands\n");
  std::printf("mdm> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed(mdm::StrTrim(line));
    if (!trimmed.empty() && trimmed[0] == '\\') {
      auto parts = mdm::StrSplit(trimmed, ' ');
      const std::string& cmd = parts[0];
      if (cmd == "\\quit" || cmd == "\\q") break;
      if (cmd == "\\help") {
        std::printf(
            "  define entity/relationship/ordering ...   (DDL)\n"
            "  range of / retrieve / append / replace / delete (QUEL)\n"
            "  explain retrieve ...   show the plan without running it\n"
            "  explain analyze retrieve ...   run it, annotate with actuals\n"
            "  statements may span lines; a blank line executes\n"
            "  \\schema       deparse the schema as DDL\n"
            "  \\ho           hierarchical ordering graph (DOT)\n"
            "  \\stats        entity counts + session execution counters\n"
            "  \\metrics      process metrics (Prometheus text; 'json' for JSON)\n"
            "  \\save PATH    write a snapshot\n"
            "  \\load PATH    replace the session with a snapshot\n"
            "  \\quit\n");
      } else if (cmd == "\\schema") {
        std::printf("%s", mdm::ddl::SchemaToDdl(db.schema()).c_str());
      } else if (cmd == "\\ho") {
        std::printf("%s", db.HoGraphDot().c_str());
      } else if (cmd == "\\stats") {
        for (const auto& type : db.schema().entity_types()) {
          auto n = db.CountEntities(type.name);
          std::printf("  %-20s %llu\n", type.name.c_str(),
                      n.ok() ? (unsigned long long)*n : 0ull);
        }
        std::printf("session:\n%s", session.stats().ToString().c_str());
      } else if (cmd == "\\metrics") {
        bool json = parts.size() > 1 && parts[1] == "json";
        if (json) {
          std::printf("%s\n", mdm::obs::RenderJson().c_str());
        } else {
          std::printf("%s", mdm::obs::RenderPrometheusText().c_str());
        }
      } else if (cmd == "\\save" && parts.size() > 1) {
        mdm::Status s = mdm::er::SaveSnapshot(db, parts[1]);
        std::printf("%s\n", s.ToString().c_str());
      } else if (cmd == "\\load" && parts.size() > 1) {
        auto loaded = mdm::er::LoadSnapshot(parts[1]);
        if (loaded.ok()) {
          db = std::move(*loaded);
          std::printf("OK\n");
        } else {
          std::printf("%s\n", loaded.status().ToString().c_str());
        }
      } else {
        std::printf("unknown command %s (try \\help)\n", cmd.c_str());
      }
      std::printf("mdm> ");
      std::fflush(stdout);
      continue;
    }

    // Accumulate statements; execute on blank line.
    if (!trimmed.empty()) {
      buffer += line + "\n";
      std::printf("...> ");
      std::fflush(stdout);
      continue;
    }
    if (buffer.empty()) {
      std::printf("mdm> ");
      std::fflush(stdout);
      continue;
    }
    if (LooksLikeDdl(buffer)) {
      auto result = mdm::ddl::ExecuteDdl(buffer, &db);
      if (result.ok()) {
        std::printf("defined %zu entity type(s), %zu relationship(s), "
                    "%zu ordering(s)\n",
                    result->entity_types.size(),
                    result->relationships.size(),
                    result->orderings.size());
      } else {
        std::printf("%s\n", result.status().ToString().c_str());
      }
    } else {
      auto rs = session.Execute(buffer);
      if (rs.ok()) {
        std::printf("%s", rs->ToString().c_str());
      } else {
        std::printf("%s\n", rs.status().ToString().c_str());
      }
    }
    buffer.clear();
    std::printf("mdm> ");
    std::fflush(stdout);
  }
  return 0;
}

// mdmsh — an interactive MDM shell: a tiny terminal monitor for the
// music data manager, accepting the paper's DDL and extended QUEL plus
// a few meta commands. Reads from stdin; suitable for piping scripts.
//
// All statements flow through the mdm::Connection facade, so the same
// shell works against the in-process database (default) or a remote
// mdmd server:
//
//   $ ./build/examples/mdmsh
//   $ ./build/examples/mdmsh --connect 127.0.0.1:7707
//   mdm> define entity NOTE (name = integer)
//   mdm> append to NOTE (name = 7)
//   mdm> retrieve (NOTE.name)
//   mdm> \schema        -- deparse the schema (local sessions only)
//   mdm> \ho            -- HO graph in DOT
//   mdm> \save score.mdm  / \load score.mdm
//   mdm> \quit
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "er/persist.h"
#include "er/session.h"
#include "net/connection.h"
#include "obs/metrics.h"
#include "quel/quel.h"

namespace {

/// \stress: re-runs the last executed QUEL script from N concurrent
/// client threads (each with its own local Connection, the fig 1
/// many-clients shape) and reports aggregate throughput. Retrieves
/// overlap under the shared latch; mutating scripts serialize safely.
/// (Local sessions only: against a remote server, run several mdmsh
/// --connect processes, or bench_s21_net.)
void RunStress(mdm::er::Database* db, const std::string& script,
               size_t threads, size_t iters) {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([db, &script, iters, &ok, &failed] {
      mdm::Connection conn = mdm::Connection::Local(db);
      for (size_t i = 0; i < iters; ++i) {
        if (conn.Execute(script).ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  uint64_t total = ok.load() + failed.load();
  std::printf("%zu threads x %zu iterations: %llu scripts (%llu failed) "
              "in %.3fs = %.0f scripts/s (hw threads: %u)\n",
              threads, iters, (unsigned long long)total,
              (unsigned long long)failed.load(), secs,
              secs > 0 ? total / secs : 0.0,
              std::thread::hardware_concurrency());
}

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint;
  mdm::net::ClientOptions copts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      endpoint = argv[++i];
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      copts.deadline_ms = static_cast<uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      copts.retry.max_attempts = std::atoi(argv[++i]);
      if (copts.retry.max_attempts < 1) copts.retry.max_attempts = 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--connect host:port] [--deadline-ms MS] "
                   "[--retries N]\n"
                   "  --retries N: total attempts for idempotent reads "
                   "(1 = never retry)\n",
                   argv[0]);
      return 2;
    }
  }

  // Local database backing the default (in-process) session. Unused in
  // remote mode, where the data lives in the mdmd server.
  mdm::er::Database db;
  mdm::Connection conn = mdm::Connection::Local(&db);
  if (!endpoint.empty()) {
    auto remote = mdm::Connection::Remote(endpoint, copts);
    if (!remote.ok()) {
      std::fprintf(stderr, "mdmsh: cannot connect to %s: %s\n",
                   endpoint.c_str(), remote.status().ToString().c_str());
      return 1;
    }
    conn = std::move(*remote);
    std::printf("connected to mdmd at %s\n", endpoint.c_str());
  }
  const bool local = !conn.is_remote();

  std::string buffer;
  std::string line;
  std::string last_script;  // most recent QUEL buffer, for \stress

  std::printf("mdm shell — DDL + QUEL; \\help for commands\n");
  std::printf("mdm> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed(mdm::StrTrim(line));
    if (!trimmed.empty() && trimmed[0] == '\\') {
      auto parts = mdm::StrSplit(trimmed, ' ');
      const std::string& cmd = parts[0];
      if (cmd == "\\quit" || cmd == "\\q") break;
      if (cmd == "\\help") {
        std::printf(
            "  define entity/relationship/ordering ...   (DDL)\n"
            "  range of / retrieve / append / replace / delete (QUEL)\n"
            "  explain retrieve ...   show the plan without running it\n"
            "  explain analyze retrieve ...   run it, annotate with actuals\n"
            "  statements may span lines; a blank line executes\n"
            "  \\schema       deparse the schema as DDL (local)\n"
            "  \\ho           hierarchical ordering graph (DOT) (local)\n"
            "  \\stats        entity counts + session execution counters\n"
            "  \\stress [N] [ITERS]  re-run the last script from N client\n"
            "                threads (default 4 x 100) (local)\n"
            "  \\metrics      process metrics (Prometheus text; 'json' for JSON)\n"
            "  \\save PATH    write a snapshot (local)\n"
            "  \\load PATH    replace the session with a snapshot (local)\n"
            "  \\quit\n");
      } else if (!local &&
                 (cmd == "\\schema" || cmd == "\\ho" || cmd == "\\stats" ||
                  cmd == "\\stress" || cmd == "\\save" || cmd == "\\load")) {
        std::printf("%s works on a local session only; this shell is "
                    "connected to a remote mdmd\n",
                    cmd.c_str());
      } else if (cmd == "\\schema") {
        std::printf("%s", mdm::ddl::SchemaToDdl(db.schema()).c_str());
      } else if (cmd == "\\ho") {
        std::printf("%s", db.HoGraphDot().c_str());
      } else if (cmd == "\\stats") {
        // One ReadGuard around the whole report: the counts form one
        // consistent snapshot even if \stress threads were running.
        mdm::er::ReadGuard read{db};
        for (const auto& type : read->schema().entity_types()) {
          auto n = read->CountEntities(type.name);
          std::printf("  %-20s %llu\n", type.name.c_str(),
                      n.ok() ? (unsigned long long)*n : 0ull);
        }
        std::printf("session:\n%s", conn.local_stats().ToString().c_str());
      } else if (cmd == "\\stress") {
        if (last_script.empty()) {
          std::printf("nothing to stress: execute a QUEL script first\n");
        } else {
          size_t threads = parts.size() > 1 ? std::stoul(parts[1]) : 4;
          size_t iters = parts.size() > 2 ? std::stoul(parts[2]) : 100;
          if (threads == 0) threads = 1;
          RunStress(&db, last_script, threads, iters);
        }
      } else if (cmd == "\\metrics") {
        bool json = parts.size() > 1 && parts[1] == "json";
        if (json) {
          std::printf("%s\n", mdm::obs::RenderJson().c_str());
        } else {
          std::printf("%s", mdm::obs::RenderPrometheusText().c_str());
        }
      } else if (cmd == "\\save" && parts.size() > 1) {
        mdm::Status s = mdm::er::SaveSnapshot(db, parts[1]);
        std::printf("%s\n", s.ToString().c_str());
      } else if (cmd == "\\load" && parts.size() > 1) {
        auto loaded = mdm::er::LoadSnapshot(parts[1]);
        if (loaded.ok()) {
          db = std::move(*loaded);
          std::printf("OK\n");
        } else {
          std::printf("%s\n", loaded.status().ToString().c_str());
        }
      } else {
        std::printf("unknown command %s (try \\help)\n", cmd.c_str());
      }
      std::printf("mdm> ");
      std::fflush(stdout);
      continue;
    }

    // Accumulate statements; execute on blank line.
    if (!trimmed.empty()) {
      buffer += line + "\n";
      std::printf("...> ");
      std::fflush(stdout);
      continue;
    }
    if (buffer.empty()) {
      std::printf("mdm> ");
      std::fflush(stdout);
      continue;
    }
    // DDL and QUEL alike go through the Connection; remote errors come
    // back code-intact over the wire (common::ErrorCode).
    auto rs = conn.Execute(buffer);
    if (rs.ok()) {
      std::printf("%s", rs->ToString().c_str());
      if (!mdm::StartsWith(
              mdm::AsciiLower(std::string(mdm::StrTrim(buffer))), "define"))
        last_script = buffer;
    } else {
      std::printf("%s\n", rs.status().ToString().c_str());
    }
    buffer.clear();
    std::printf("mdm> ");
    std::fflush(stdout);
  }
  return 0;
}

// Edge cases and error paths not covered by the main suites.
#include <gtest/gtest.h>

#include "biblio/thematic_index.h"
#include "cmn/schema.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "mtime/meter.h"
#include "net/connection.h"
#include "quel/quel.h"

namespace mdm {
namespace {

TEST(CoverageTest, InstanceGraphErrors) {
  er::Database db;
  ASSERT_TRUE(db.DefineEntityType({"X", {}}).ok());
  EXPECT_EQ(db.InstanceGraphDot("ghost", 1, "").status().code(),
            StatusCode::kNotFound);
  // A valid ordering with a root that has no children still renders.
  ASSERT_TRUE(db.DefineOrdering({"o", {"X"}, "X"}).ok());
  auto x = db.CreateEntity("X");
  auto dot = db.InstanceGraphDot("o", *x, "");
  ASSERT_TRUE(dot.ok());
  EXPECT_NE(dot->find("digraph"), std::string::npos);
}

TEST(CoverageTest, OrderingCountsAndErrors) {
  er::Database db;
  ASSERT_TRUE(db.DefineEntityType({"P", {}}).ok());
  ASSERT_TRUE(db.DefineEntityType({"C", {}}).ok());
  ASSERT_TRUE(db.DefineOrdering({"o", {"C"}, "P"}).ok());
  auto parent = db.CreateEntity("P");
  auto child = db.CreateEntity("C");
  EXPECT_EQ(*db.ChildCount("o", *parent), 0u);
  ASSERT_TRUE(db.AppendChild("o", *parent, *child).ok());
  EXPECT_EQ(*db.ChildCount("o", *parent), 1u);
  EXPECT_EQ(db.ChildCount("ghost", *parent).status().code(),
            StatusCode::kNotFound);
  // Inserting at a position beyond the end is OutOfRange.
  auto child2 = db.CreateEntity("C");
  EXPECT_EQ(db.InsertChildAt("o", *parent, *child2, 5).code(),
            StatusCode::kOutOfRange);
  // Removing a child that has no parent is NotFound.
  EXPECT_EQ(db.RemoveChild("o", *child2).code(), StatusCode::kNotFound);
  // Missing entities.
  EXPECT_EQ(db.AppendChild("o", 999, *child2).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.AppendChild("o", *parent, 999).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.DeleteEntity(999).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.TypeOf(999).status().code(), StatusCode::kNotFound);
}

TEST(CoverageTest, RelationshipErrors) {
  er::Database db;
  ASSERT_TRUE(db.DefineEntityType({"A", {}}).ok());
  ASSERT_TRUE(db.DefineEntityType({"B", {}}).ok());
  ASSERT_TRUE(db.DefineRelationship(
                    {"R",
                     {{"a", "A"}, {"b", "B"}},
                     {{"weight", rel::ValueType::kFloat, ""}}})
                  .ok());
  auto a = db.CreateEntity("A");
  auto b = db.CreateEntity("B");
  EXPECT_EQ(db.Connect("GHOST", {}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.Connect("R", {{"a", *a}, {"zzz", *b}}).status().code(),
            StatusCode::kNotFound);
  auto link = db.Connect("R", {{"a", *a}, {"b", *b}});
  ASSERT_TRUE(link.ok());
  EXPECT_TRUE(
      db.SetRelationshipAttribute(*link, "weight", rel::Value::Float(0.5))
          .ok());
  EXPECT_EQ(db.SetRelationshipAttribute(*link, "ghost", rel::Value::Int(1))
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      db.SetRelationshipAttribute(*link, "weight", rel::Value::String("x"))
          .code(),
      StatusCode::kTypeError);
  EXPECT_EQ(db.SetRelationshipAttribute(999, "weight", rel::Value::Int(1))
                .code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(db.Disconnect(*link).ok());
  EXPECT_EQ(db.Disconnect(*link).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.CountRelationships("GHOST").status().code(),
            StatusCode::kNotFound);
}

TEST(CoverageTest, QuelSortByParseErrors) {
  er::Database db;
  ASSERT_TRUE(
      db.DefineEntityType({"N", {{"v", rel::ValueType::kInt, ""}}}).ok());
  mdm::Connection session = mdm::Connection::Local(&db);
  EXPECT_EQ(session.Execute("retrieve (N.v) sort v").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(session.Execute("retrieve (N.v) sort by").status().code(),
            StatusCode::kParseError);
  // Sorting on mixed null/non-null values is stable and non-crashing.
  for (int i = 0; i < 3; ++i) {
    auto n = db.CreateEntity("N");
    if (i != 1) {
      ASSERT_TRUE(db.SetAttribute(*n, "v", rel::Value::Int(10 - i)).ok());
    }
  }
  auto rs = session.Execute("retrieve (N.v) sort by N.v");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 3u);
  EXPECT_TRUE(rs->rows[0][0].is_null());  // nulls sort first
}

TEST(CoverageTest, BiblioEntryWithoutCitations) {
  er::Database db;
  ASSERT_TRUE(biblio::InstallBiblioSchema(&db).ok());
  auto catalog = biblio::CreateCatalog(&db, "Koechel", "KV");
  biblio::CatalogEntry entry;
  entry.number = "626";
  entry.title = "Requiem";
  auto id = biblio::AddEntry(&db, *catalog, entry);
  ASSERT_TRUE(id.ok());
  auto text = biblio::FormatEntry(db, *id);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("Abschriften"), std::string::npos);
  EXPECT_NE(text->find("Requiem"), std::string::npos);
}

TEST(CoverageTest, MeterLocateEdges) {
  mtime::MeterMap meter;
  auto [m0, b0] = meter.Locate(Rational(0));
  EXPECT_EQ(m0, 0);
  EXPECT_EQ(b0, Rational(0));
  auto [mn, bn] = meter.Locate(Rational(-5));
  EXPECT_EQ(mn, 0);
  EXPECT_EQ(bn, Rational(0));
  // Exactly on a boundary belongs to the following measure.
  auto [m1, b1] = meter.Locate(Rational(4));
  EXPECT_EQ(m1, 1);
  EXPECT_EQ(b1, Rational(0));
}

TEST(CoverageTest, DdlOrderingKeywordCollision) {
  // An ordering explicitly named before parsing children still works,
  // and 'under' as an ordering name is tolerated by the grammar.
  er::Database db;
  ASSERT_TRUE(ddl::ExecuteDdl(R"(
    define entity A ()
    define entity B ()
    define ordering seq (B) under A
  )",
                              &db)
                  .ok());
  EXPECT_NE(db.schema().FindOrdering("seq"), nullptr);
}

TEST(CoverageTest, Fig11EntityTypesAllInstalled) {
  er::Database db;
  ASSERT_TRUE(cmn::InstallCmnSchema(&db).ok());
  // Every type can actually be instantiated.
  for (const std::string& type : cmn::Fig11EntityTypes()) {
    auto id = db.CreateEntity(type);
    EXPECT_TRUE(id.ok()) << type;
  }
}

}  // namespace
}  // namespace mdm

#include <gtest/gtest.h>

#include "cmn/pitch.h"

namespace mdm::cmn {
namespace {

TEST(PitchTest, MidiKeyReferencePoints) {
  EXPECT_EQ((Pitch{0, 4, 0}).MidiKey(), 60);   // C4 (middle C)
  EXPECT_EQ((Pitch{5, 4, 0}).MidiKey(), 69);   // A4 = 440 Hz
  EXPECT_EQ((Pitch{0, -1, 0}).MidiKey(), 0);   // C-1 = MIDI 0
  EXPECT_EQ((Pitch{4, 4, 0}).MidiKey(), 67);   // G4
  EXPECT_EQ((Pitch{3, 4, 1}).MidiKey(), 66);   // F#4
  EXPECT_EQ((Pitch{6, 3, -1}).MidiKey(), 58);  // Bb3
}

TEST(PitchTest, Names) {
  EXPECT_EQ((Pitch{0, 4, 0}).Name(), "C4");
  EXPECT_EQ((Pitch{3, 4, 1}).Name(), "F#4");
  EXPECT_EQ((Pitch{6, 2, -1}).Name(), "Bb2");
  EXPECT_EQ((Pitch{4, 5, 2}).Name(), "G##5");
}

TEST(PitchTest, TrebleClefEveryGoodBoyDoesFine) {
  // §4.3: the treble clef's lines map to E G B D F.
  const char expected_lines[] = {'E', 'G', 'B', 'D', 'F'};
  for (int line = 0; line < 5; ++line) {
    Pitch p = DegreeToPitch(Clef::kTreble, 1 + 2 * line);
    EXPECT_EQ(p.Name()[0], expected_lines[line]) << "line " << line;
  }
  // The spaces spell FACE.
  const char expected_spaces[] = {'F', 'A', 'C', 'E'};
  for (int space = 0; space < 4; ++space) {
    Pitch p = DegreeToPitch(Clef::kTreble, 2 + 2 * space);
    EXPECT_EQ(p.Name()[0], expected_spaces[space]) << "space " << space;
  }
}

TEST(PitchTest, ClefBottomLines) {
  EXPECT_EQ(DegreeToPitch(Clef::kTreble, 1).Name(), "E4");
  EXPECT_EQ(DegreeToPitch(Clef::kBass, 1).Name(), "G2");
  EXPECT_EQ(DegreeToPitch(Clef::kAlto, 1).Name(), "F3");
  EXPECT_EQ(DegreeToPitch(Clef::kTenor, 1).Name(), "D3");
}

TEST(PitchTest, LedgerLinesBelowAndAbove) {
  // Middle C hangs one ledger line below the treble staff: degree -1.
  EXPECT_EQ(DegreeToPitch(Clef::kTreble, -1).Name(), "C4");
  // High C above the treble staff.
  EXPECT_EQ(DegreeToPitch(Clef::kTreble, 13).Name(), "C6");
}

TEST(PitchTest, DegreeRoundTrip) {
  for (Clef clef : {Clef::kTreble, Clef::kBass, Clef::kAlto, Clef::kTenor}) {
    for (int degree = -10; degree <= 20; ++degree) {
      Pitch p = DegreeToPitch(clef, degree);
      EXPECT_EQ(PitchToDegree(clef, p), degree)
          << ClefName(clef) << " degree " << degree;
    }
  }
}

TEST(PitchTest, ParseClefNames) {
  EXPECT_TRUE(ParseClef("treble").ok());
  EXPECT_TRUE(ParseClef("G").ok());
  EXPECT_TRUE(ParseClef("Bass").ok());
  EXPECT_FALSE(ParseClef("soprano").ok());
}

TEST(KeySignatureTest, PaperThreeSharpsExample) {
  // §4.3: three sharps = A major; "perform all notes notated as F, C,
  // or G one semitone higher than written".
  KeySignature a_major{3};
  EXPECT_EQ(a_major.MajorName(), "A major");
  EXPECT_EQ(a_major.AlterFor(3), 1);  // F
  EXPECT_EQ(a_major.AlterFor(0), 1);  // C
  EXPECT_EQ(a_major.AlterFor(4), 1);  // G
  EXPECT_EQ(a_major.AlterFor(1), 0);  // D unaffected
  EXPECT_EQ(a_major.AlterFor(6), 0);  // B unaffected
}

TEST(KeySignatureTest, FlatsAndNames) {
  KeySignature g_minor{-2};  // BWV 578's signature: Bb major / g minor
  EXPECT_EQ(g_minor.MajorName(), "Bb major");
  EXPECT_EQ(g_minor.AlterFor(6), -1);  // Bb
  EXPECT_EQ(g_minor.AlterFor(2), -1);  // Eb
  EXPECT_EQ(g_minor.AlterFor(5), 0);   // A unaffected
  EXPECT_EQ(KeySignature{0}.MajorName(), "C major");
  EXPECT_EQ(KeySignature{7}.MajorName(), "C# major");
  EXPECT_EQ(KeySignature{-7}.MajorName(), "Cb major");
}

TEST(AccidentalStateTest, MeasureScopedAccidentals) {
  AccidentalState state(KeySignature{1});  // G major: F#
  // Unmarked F inherits the sharp from the key signature.
  EXPECT_EQ(state.EffectiveAlter(3, 4), 1);
  // An explicit natural cancels it for the rest of the measure.
  EXPECT_EQ(state.Apply(3, 4, Accidental::kNatural), 0);
  EXPECT_EQ(state.EffectiveAlter(3, 4), 0);
  // ...but only in that octave.
  EXPECT_EQ(state.EffectiveAlter(3, 5), 1);
  // After the barline the key signature applies again.
  state.Reset();
  EXPECT_EQ(state.EffectiveAlter(3, 4), 1);
}

TEST(AccidentalStateTest, LaterAccidentalOverridesEarlier) {
  AccidentalState state(KeySignature{0});
  state.Apply(0, 4, Accidental::kSharp);
  EXPECT_EQ(state.EffectiveAlter(0, 4), 1);
  state.Apply(0, 4, Accidental::kFlat);
  EXPECT_EQ(state.EffectiveAlter(0, 4), -1);
}

TEST(PerformancePitchTest, FullDerivation) {
  // A major (3 sharps), treble clef. Bottom space = F -> F#4 = 66.
  AccidentalState state(KeySignature{3});
  Pitch p;
  EXPECT_EQ(PerformancePitch(Clef::kTreble, 2, Accidental::kNone, &state, &p),
            66);
  EXPECT_EQ(p.Name(), "F#4");
  // Explicit natural overrides the signature.
  EXPECT_EQ(
      PerformancePitch(Clef::kTreble, 2, Accidental::kNatural, &state, &p),
      65);
  // A later unmarked F in the same measure keeps the natural.
  EXPECT_EQ(PerformancePitch(Clef::kTreble, 2, Accidental::kNone, &state, &p),
            65);
  // Without state, an unmarked note is taken at face value.
  EXPECT_EQ(
      PerformancePitch(Clef::kTreble, 2, Accidental::kNone, nullptr, &p), 65);
}

TEST(AccidentalTest, AlterValues) {
  EXPECT_EQ(AccidentalAlter(Accidental::kSharp), 1);
  EXPECT_EQ(AccidentalAlter(Accidental::kFlat), -1);
  EXPECT_EQ(AccidentalAlter(Accidental::kDoubleSharp), 2);
  EXPECT_EQ(AccidentalAlter(Accidental::kDoubleFlat), -2);
  EXPECT_EQ(AccidentalAlter(Accidental::kNatural), 0);
}

}  // namespace
}  // namespace mdm::cmn

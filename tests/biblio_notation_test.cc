#include <gtest/gtest.h>

#include "biblio/thematic_index.h"
#include "cmn/temporal.h"
#include "darms/darms.h"
#include "er/database.h"
#include "mtime/tempo_map.h"
#include "notation/engrave.h"
#include "notation/piano_roll.h"

namespace mdm {
namespace {

using biblio::CatalogEntry;

// The BWV 578 fugue subject (g minor), first phrase, as MIDI keys:
// G4 D5 Bb4 A4 G4 Bb4 A4 G4 F#4 A4 D4.
const std::vector<int> kFugueSubject = {67, 74, 70, 69, 67, 70,
                                        69, 67, 66, 69, 62};

CatalogEntry Bwv578() {
  CatalogEntry e;
  e.number = "578";
  e.title = "Fuge g-moll";
  e.setting = "Orgel";
  e.composed = "Weimar um 1709 (oder schon in Arnstadt?)";
  e.measure_count = 68;
  e.incipit = kFugueSubject;
  e.manuscripts = {"Andreas Bach Buch (S 657-677) B Lpz III 8 4",
                   "BB in Mus ms Bach P 803"};
  e.editions = {"Peters Orgelwerke Bd. IV S 46",
                "Breitkopf & Haertel EB 3174 S 72"};
  e.literature = {"Spitta I 399", "Schweitzer 248", "Keller 73"};
  return e;
}

class BiblioTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(biblio::InstallBiblioSchema(&db_).ok());
    auto catalog =
        biblio::CreateCatalog(&db_, "Bach Werke Verzeichnis", "BWV");
    ASSERT_TRUE(catalog.ok());
    catalog_ = *catalog;
  }

  er::Database db_;
  er::EntityId catalog_;
};

TEST_F(BiblioTest, EntryRoundTrip) {
  auto id = biblio::AddEntry(&db_, catalog_, Bwv578());
  ASSERT_TRUE(id.ok());
  auto entry = biblio::GetEntry(db_, *id);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->title, "Fuge g-moll");
  EXPECT_EQ(entry->measure_count, 68);
  EXPECT_EQ(entry->incipit, kFugueSubject);
  EXPECT_EQ(entry->manuscripts.size(), 2u);
  EXPECT_EQ(entry->editions.size(), 2u);
  EXPECT_EQ(entry->literature.size(), 3u);
}

TEST_F(BiblioTest, AcceptedIdentifierLookup) {
  ASSERT_TRUE(biblio::AddEntry(&db_, catalog_, Bwv578()).ok());
  CatalogEntry other;
  other.number = "1080";
  other.title = "Die Kunst der Fuge";
  ASSERT_TRUE(biblio::AddEntry(&db_, catalog_, other).ok());

  auto hit = biblio::LookupByIdentifier(db_, "BWV 578");
  ASSERT_TRUE(hit.ok());
  auto entry = biblio::GetEntry(db_, *hit);
  EXPECT_EQ(entry->title, "Fuge g-moll");
  EXPECT_TRUE(biblio::LookupByIdentifier(db_, "bwv 1080").ok());
  EXPECT_EQ(biblio::LookupByIdentifier(db_, "BWV 9999").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(biblio::LookupByIdentifier(db_, "KV 626").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(biblio::LookupByIdentifier(db_, "nospace").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BiblioTest, FormatEntryLooksLikeFig2) {
  auto id = biblio::AddEntry(&db_, catalog_, Bwv578());
  auto text = biblio::FormatEntry(db_, *id);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("578"), std::string::npos);
  EXPECT_NE(text->find("Besetzung: Orgel"), std::string::npos);
  EXPECT_NE(text->find("68 Takte"), std::string::npos);
  EXPECT_NE(text->find("Abschriften"), std::string::npos);
  EXPECT_NE(text->find("Ausgaben"), std::string::npos);
  EXPECT_NE(text->find("Literatur"), std::string::npos);
}

TEST_F(BiblioTest, IntervalSearchIsTranspositionInvariant) {
  ASSERT_TRUE(biblio::AddEntry(&db_, catalog_, Bwv578()).ok());
  CatalogEntry decoy;
  decoy.number = "1";
  decoy.title = "Scale study";
  decoy.incipit = {60, 62, 64, 65, 67};
  ASSERT_TRUE(biblio::AddEntry(&db_, catalog_, decoy).ok());

  // The subject's head (G4 D5 Bb4 A4), transposed up a fourth.
  std::vector<int> query_melody = {72, 79, 75, 74};
  auto hits = biblio::SearchByIntervals(db_, catalog_,
                                        biblio::ToIntervals(query_melody));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  auto entry = biblio::GetEntry(db_, (*hits)[0]);
  EXPECT_EQ(entry->number, "578");
  // An interval pattern matching nothing.
  auto miss = biblio::SearchByIntervals(db_, catalog_, {11, -11, 11});
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
  // Empty query matches everything.
  auto all = biblio::SearchByIntervals(db_, catalog_, {});
  EXPECT_EQ(all->size(), 2u);
}

TEST(ToIntervalsTest, Basics) {
  EXPECT_EQ(biblio::ToIntervals({60, 64, 67}), (std::vector<int>{4, 3}));
  EXPECT_TRUE(biblio::ToIntervals({60}).empty());
  EXPECT_TRUE(biblio::ToIntervals({}).empty());
}

// ----------------------------------------------------------------------
// Notation: piano roll (fig 3) and engraving.
// ----------------------------------------------------------------------

std::vector<cmn::PerformedNote> SubjectPerformance() {
  std::vector<cmn::PerformedNote> notes;
  double t = 0;
  for (int key : kFugueSubject) {
    cmn::PerformedNote pn;
    pn.midi_key = key;
    pn.start_seconds = t;
    pn.end_seconds = t + 0.25;
    pn.source_note = static_cast<er::EntityId>(notes.size() + 1);
    notes.push_back(pn);
    t += 0.25;
  }
  return notes;
}

TEST(PianoRollTest, AsciiGridShape) {
  auto notes = SubjectPerformance();
  std::string roll = notation::AsciiPianoRoll(notes);
  // One row per semitone between D4 (62) and D5 (74): 13 rows + axis.
  int rows = 0;
  for (char c : roll)
    if (c == '\n') ++rows;
  EXPECT_EQ(rows, 14);
  EXPECT_NE(roll.find('#'), std::string::npos);
  // Pitch labels on the axis.
  EXPECT_NE(roll.find("D5"), std::string::npos);
  EXPECT_NE(roll.find("G4"), std::string::npos);
  EXPECT_EQ(notation::AsciiPianoRoll({}), "(empty piano roll)\n");
}

TEST(PianoRollTest, HighlightedEntrancesShadedGrey) {
  auto notes = SubjectPerformance();
  notation::PianoRollOptions options;
  options.highlighted_notes = {notes[0].source_note, notes[1].source_note};
  std::string ascii = notation::AsciiPianoRoll(notes, options);
  EXPECT_NE(ascii.find('='), std::string::npos);  // highlighted cells
  std::string svg = notation::SvgPianoRoll(notes, options);
  EXPECT_NE(svg.find("#999999"), std::string::npos);  // grey entrances
  EXPECT_NE(svg.find("#000000"), std::string::npos);  // normal notes
  // One rect per note.
  size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_EQ(rects, notes.size());
}

TEST(EngraveTest, RendersStaffNotesAndBarlines) {
  er::Database db;
  auto import = darms::ImportDarms(&db, "!G 1Q 3Q 5Q 7Q / 8H 6H //", "t");
  ASSERT_TRUE(import.ok());
  auto ps = notation::EngraveScorePostScript(&db, import->score);
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  // 5 staff lines + 2 barlines + 6 note heads + 6 stems.
  size_t strokes = 0, fills = 0, pos = 0;
  while ((pos = ps->find("stroke\n", pos)) != std::string::npos) {
    ++strokes;
    pos += 6;
  }
  pos = 0;
  while ((pos = ps->find("fill\n", pos)) != std::string::npos) {
    ++fills;
    pos += 4;
  }
  EXPECT_EQ(fills, 6u);
  // 5 staff lines + 2 barlines + 6 stems + 2 clef strokes.
  EXPECT_EQ(strokes, 5u + 2u + 6u + 2u);
  auto svg = notation::EngraveScoreSvg(&db, import->score);
  ASSERT_TRUE(svg.ok());
  EXPECT_NE(svg->find("<svg"), std::string::npos);
  EXPECT_NE(svg->find("<path"), std::string::npos);
}

TEST(EngraveTest, KeySignatureAndSlurGlyphs) {
  er::Database db;
  // Two flats and a slur over the first beam group.
  auto import =
      darms::ImportDarms(&db, "!G !K2- (1Q 3Q) 5Q 7Q //", "glyphs");
  ASSERT_TRUE(import.ok());
  // Re-label the imported beam group as a slur so the engraver arcs it.
  (void)db.ForEachEntity("GROUP", [&](er::EntityId group) {
    EXPECT_TRUE(db.SetAttribute(group, "function",
                                rel::Value::String("slur"))
                    .ok());
    return true;
  });
  auto ps = notation::EngraveScorePostScript(&db, import->score);
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  // Two flats: each draws a stem line and a bowl arc; slur draws a
  // curveto.
  EXPECT_NE(ps->find("curveto"), std::string::npos);
  size_t arcs = 0, pos = 0;
  while ((pos = ps->find(" arc stroke", pos)) != std::string::npos) {
    ++arcs;
    pos += 4;
  }
  // 1 clef curl + 2 flat bowls.
  EXPECT_EQ(arcs, 3u);
}

TEST(EngraveTest, Fig3PipelineFromDarmsToPianoRoll) {
  // End-to-end fig 3: DARMS text -> CMN -> performance -> piano roll.
  er::Database db;
  auto import = darms::ImportDarms(
      &db, "!G !K2- 4E 8E 6Q 5Q 4E 6E 5E 4E 3#E 5E 1Q //", "BWV 578 subject");
  ASSERT_TRUE(import.ok());
  mtime::TempoMap tempo;
  auto notes = cmn::ExtractPerformance(&db, import->score, tempo);
  ASSERT_TRUE(notes.ok());
  ASSERT_EQ(notes->size(), 11u);
  std::string roll = notation::AsciiPianoRoll(*notes);
  EXPECT_NE(roll.find('#'), std::string::npos);
  std::string svg = notation::SvgPianoRoll(*notes);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
}

}  // namespace
}  // namespace mdm

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/slotted_page.h"
#include "storage/wal.h"

namespace mdm::storage {
namespace {

TEST(MemoryDiskManagerTest, AllocateReadWrite) {
  MemoryDiskManager dm;
  EXPECT_EQ(dm.NumPages(), 1u);  // header page
  PageId id;
  ASSERT_TRUE(dm.AllocatePage(&id).ok());
  EXPECT_EQ(id, 1u);
  uint8_t out[kPageSize];
  uint8_t in[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) in[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(dm.WritePage(id, in).ok());
  ASSERT_TRUE(dm.ReadPage(id, out).ok());
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST(MemoryDiskManagerTest, OutOfRangeAccessFails) {
  MemoryDiskManager dm;
  uint8_t buf[kPageSize];
  EXPECT_EQ(dm.ReadPage(99, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dm.WritePage(99, buf).code(), StatusCode::kOutOfRange);
}

TEST(FileDiskManagerTest, PersistsAcrossReopen) {
  std::string path = testing::TempDir() + "/mdm_disk_test.db";
  std::remove(path.c_str());
  PageId id;
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    ASSERT_TRUE((*dm)->AllocatePage(&id).ok());
    uint8_t in[kPageSize] = {};
    in[0] = 0x5A;
    in[kPageSize - 1] = 0xA5;
    ASSERT_TRUE((*dm)->WritePage(id, in).ok());
    ASSERT_TRUE((*dm)->Sync().ok());
  }
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ((*dm)->NumPages(), 2u);
    uint8_t out[kPageSize];
    ASSERT_TRUE((*dm)->ReadPage(id, out).ok());
    EXPECT_EQ(out[0], 0x5A);
    EXPECT_EQ(out[kPageSize - 1], 0xA5);
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, BitFlippedPageIsCorruption) {
  std::string path = testing::TempDir() + "/mdm_bitflip_test.db";
  std::remove(path.c_str());
  PageId id;
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    ASSERT_TRUE((*dm)->AllocatePage(&id).ok());
    uint8_t in[kPageSize];
    std::memset(in, 0x33, kPageSize);
    ASSERT_TRUE((*dm)->WritePage(id, in).ok());
    ASSERT_TRUE((*dm)->Sync().ok());
  }
  // Flip one data byte of the page while the file is closed.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    long off = static_cast<long>(kSuperblockSize + id * kPageFrameSize +
                                 kPageFrameHeaderSize + 1234);
    ASSERT_EQ(std::fseek(f, off, SEEK_SET), 0);
    std::fputc(0x34, f);
    std::fclose(f);
  }
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    uint8_t out[kPageSize];
    Status s = (*dm)->ReadPage(id, out);
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
    // The undamaged header page still reads cleanly.
    EXPECT_TRUE((*dm)->ReadPage(0, out).ok());
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, MisdirectedWriteDetected) {
  std::string path = testing::TempDir() + "/mdm_misdirect_test.db";
  std::remove(path.c_str());
  PageId p1, p2;
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    ASSERT_TRUE((*dm)->AllocatePage(&p1).ok());
    ASSERT_TRUE((*dm)->AllocatePage(&p2).ok());
    uint8_t in[kPageSize];
    std::memset(in, 0x77, kPageSize);
    ASSERT_TRUE((*dm)->WritePage(p1, in).ok());
    ASSERT_TRUE((*dm)->Sync().ok());
  }
  // Copy page p1's whole frame (valid CRC and all) over p2's slot — the
  // lost-seek failure mode a bare CRC cannot see.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::vector<uint8_t> frame(kPageFrameSize);
    ASSERT_EQ(std::fseek(
                  f, static_cast<long>(kSuperblockSize + p1 * kPageFrameSize),
                  SEEK_SET),
              0);
    ASSERT_EQ(std::fread(frame.data(), 1, frame.size(), f), frame.size());
    ASSERT_EQ(std::fseek(
                  f, static_cast<long>(kSuperblockSize + p2 * kPageFrameSize),
                  SEEK_SET),
              0);
    ASSERT_EQ(std::fwrite(frame.data(), 1, frame.size(), f), frame.size());
    std::fclose(f);
  }
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    uint8_t out[kPageSize];
    Status s = (*dm)->ReadPage(p2, out);
    EXPECT_EQ(s.code(), StatusCode::kCorruption);
    EXPECT_NE(s.ToString().find("misdirected"), std::string::npos)
        << s.ToString();
    EXPECT_TRUE((*dm)->ReadPage(p1, out).ok());
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, MigratesV1RawPageFile) {
  std::string path = testing::TempDir() + "/mdm_migrate_test.db";
  std::remove(path.c_str());
  // Craft a version-1 file: bare 4096-byte pages, no superblock, no
  // checksums. Page 0 was the header page; page 1 carries data.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::vector<uint8_t> page(kPageSize, 0);
    ASSERT_EQ(std::fwrite(page.data(), 1, kPageSize, f), kPageSize);
    std::memset(page.data(), 0x5C, kPageSize);
    ASSERT_EQ(std::fwrite(page.data(), 1, kPageSize, f), kPageSize);
    std::fclose(f);
  }
  for (int reopen = 0; reopen < 2; ++reopen) {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok()) << "reopen " << reopen << ": "
                         << dm.status().ToString();
    EXPECT_EQ((*dm)->NumPages(), 2u);
    uint8_t out[kPageSize];
    ASSERT_TRUE((*dm)->ReadPage(1, out).ok());
    EXPECT_EQ(out[0], 0x5C);
    EXPECT_EQ(out[kPageSize - 1], 0x5C);
  }
  // The file is now in the checksummed v2 format.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char magic[4];
    ASSERT_EQ(std::fread(magic, 1, 4, f), 4u);
    EXPECT_EQ(std::memcmp(magic, "MDMP", 4), 0);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    EXPECT_EQ(std::ftell(f),
              static_cast<long>(kSuperblockSize + 2 * kPageFrameSize));
    std::fclose(f);
  }
  std::remove(path.c_str());
}

TEST(BufferPoolTest, HitsAndMisses) {
  MemoryDiskManager dm;
  PageId p1, p2;
  ASSERT_TRUE(dm.AllocatePage(&p1).ok());
  ASSERT_TRUE(dm.AllocatePage(&p2).ok());
  BufferPool pool(&dm, 4);

  auto page = pool.FetchPage(p1);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(pool.UnpinPage(p1, false).ok());
  EXPECT_EQ(pool.stats().misses, 1u);

  page = pool.FetchPage(p1);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(pool.UnpinPage(p1, false).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBackDirty) {
  MemoryDiskManager dm;
  BufferPool pool(&dm, 2);
  // Create 3 pages through a pool of capacity 2.
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    ids[i] = (*page)->id;
    (*page)->data[0] = static_cast<uint8_t>(0x10 + i);
    ASSERT_TRUE(pool.UnpinPage(ids[i], true).ok());
  }
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().dirty_writebacks, 1u);
  // The first page must have been written back; fetch and verify.
  auto page = pool.FetchPage(ids[0]);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->data[0], 0x10);
  ASSERT_TRUE(pool.UnpinPage(ids[0], false).ok());
}

TEST(BufferPoolTest, AllPinnedFailsGracefully) {
  MemoryDiskManager dm;
  BufferPool pool(&dm, 2);
  auto a = pool.NewPage();
  auto b = pool.NewPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.NewPage();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(pool.UnpinPage((*a)->id, false).ok());
  ASSERT_TRUE(pool.UnpinPage((*b)->id, false).ok());
}

TEST(BufferPoolTest, UnpinErrors) {
  MemoryDiskManager dm;
  BufferPool pool(&dm, 2);
  EXPECT_EQ(pool.UnpinPage(123, false).code(), StatusCode::kNotFound);
  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  PageId id = (*a)->id;
  ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  EXPECT_EQ(pool.UnpinPage(id, false).code(),
            StatusCode::kFailedPrecondition);
}

class SlottedPageTest : public testing::Test {
 protected:
  SlottedPageTest() : sp_(&page_) { sp_.Init(); }
  Page page_;
  SlottedPage sp_;
};

TEST_F(SlottedPageTest, InsertGetRoundTrip) {
  auto s1 = sp_.Insert("hello");
  auto s2 = sp_.Insert("world!");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(*s1, *s2);
  auto r1 = sp_.Get(*s1);
  auto r2 = sp_.Get(*s2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, "hello");
  EXPECT_EQ(*r2, "world!");
}

TEST_F(SlottedPageTest, DeleteThenSlotReuse) {
  auto s1 = sp_.Insert("first");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(sp_.Delete(*s1).ok());
  EXPECT_FALSE(sp_.IsLive(*s1));
  EXPECT_EQ(sp_.Get(*s1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(sp_.Delete(*s1).code(), StatusCode::kNotFound);
  // Next insert reuses the freed slot.
  auto s2 = sp_.Insert("second");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s1);
}

TEST_F(SlottedPageTest, FillsUntilFullThenCompactionRecoversSpace) {
  std::string rec(100, 'x');
  std::vector<uint16_t> slots;
  while (true) {
    auto s = sp_.Insert(rec);
    if (!s.ok()) {
      EXPECT_EQ(s.status().code(), StatusCode::kOutOfRange);
      break;
    }
    slots.push_back(*s);
  }
  // 4096-byte page, 104 bytes/record: expect ~39 records.
  EXPECT_GT(slots.size(), 30u);
  // Delete every other record, then a larger record must fit via compact.
  for (size_t i = 0; i < slots.size(); i += 2)
    ASSERT_TRUE(sp_.Delete(slots[i]).ok());
  auto big = sp_.Insert(std::string(400, 'y'));
  ASSERT_TRUE(big.ok());
  auto got = sp_.Get(*big);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 400u);
  // Survivors are intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    auto r = sp_.Get(slots[i]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, rec);
  }
}

TEST_F(SlottedPageTest, UpdateShrinkGrowInPlace) {
  auto s = sp_.Insert("medium length record");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(sp_.Update(*s, "short").ok());
  EXPECT_EQ(*sp_.Get(*s), "short");
  ASSERT_TRUE(sp_.Update(*s, std::string(200, 'z')).ok());
  EXPECT_EQ(sp_.Get(*s)->size(), 200u);
}

TEST_F(SlottedPageTest, GrowingUpdateThatCannotFitLeavesRecordIntact) {
  auto s = sp_.Insert("keep me");
  ASSERT_TRUE(s.ok());
  Status st = sp_.Update(*s, std::string(5000, 'q'));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(*sp_.Get(*s), "keep me");
}

TEST_F(SlottedPageTest, OversizeRecordRejected) {
  auto s = sp_.Insert(std::string(kPageSize, 'a'));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

class HeapFileTest : public testing::Test {
 protected:
  HeapFileTest() : pool_(&dm_, 16) {}
  MemoryDiskManager dm_;
  BufferPool pool_;
};

TEST_F(HeapFileTest, AppendReadAcrossManyPages) {
  auto first = HeapFile::Create(&pool_);
  ASSERT_TRUE(first.ok());
  HeapFile hf(&pool_, *first);
  std::vector<Rid> rids;
  for (int i = 0; i < 500; ++i) {
    auto rid = hf.Append("record-" + std::to_string(i) +
                         std::string(50, static_cast<char>('a' + i % 26)));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  // Multiple pages were chained.
  std::set<PageId> pages;
  for (const Rid& r : rids) pages.insert(r.page_id);
  EXPECT_GT(pages.size(), 1u);
  std::string out;
  ASSERT_TRUE(hf.Read(rids[0], &out).ok());
  EXPECT_TRUE(out.rfind("record-0", 0) == 0);
  ASSERT_TRUE(hf.Read(rids[499], &out).ok());
  EXPECT_TRUE(out.rfind("record-499", 0) == 0);
}

TEST_F(HeapFileTest, ScanSeesAllLiveRecordsInOrder) {
  auto first = HeapFile::Create(&pool_);
  ASSERT_TRUE(first.ok());
  HeapFile hf(&pool_, *first);
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {
    auto rid = hf.Append("r" + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  ASSERT_TRUE(hf.Delete(rids[10]).ok());
  ASSERT_TRUE(hf.Delete(rids[50]).ok());
  int count = 0;
  ASSERT_TRUE(hf.Scan([&](const Rid&, std::string_view) {
                  ++count;
                  return true;
                })
                  .ok());
  EXPECT_EQ(count, 98);
  auto total = hf.Count();
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 98u);
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  auto first = HeapFile::Create(&pool_);
  ASSERT_TRUE(first.ok());
  HeapFile hf(&pool_, *first);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(hf.Append("x").ok());
  int seen = 0;
  ASSERT_TRUE(hf.Scan([&](const Rid&, std::string_view) {
                  return ++seen < 5;
                })
                  .ok());
  EXPECT_EQ(seen, 5);
}

TEST_F(HeapFileTest, UpdateInPlace) {
  auto first = HeapFile::Create(&pool_);
  ASSERT_TRUE(first.ok());
  HeapFile hf(&pool_, *first);
  auto rid = hf.Append("before");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(hf.Update(*rid, "after!").ok());
  std::string out;
  ASSERT_TRUE(hf.Read(*rid, &out).ok());
  EXPECT_EQ(out, "after!");
}

TEST_F(HeapFileTest, ReadDeletedRecordFails) {
  auto first = HeapFile::Create(&pool_);
  ASSERT_TRUE(first.ok());
  HeapFile hf(&pool_, *first);
  auto rid = hf.Append("gone");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(hf.Delete(*rid).ok());
  std::string out;
  EXPECT_EQ(hf.Read(*rid, &out).code(), StatusCode::kNotFound);
}

TEST_F(HeapFileTest, TwoFilesDoNotInterfere) {
  auto f1 = HeapFile::Create(&pool_);
  auto f2 = HeapFile::Create(&pool_);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  HeapFile a(&pool_, *f1), b(&pool_, *f2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.Append("a" + std::to_string(i)).ok());
    ASSERT_TRUE(b.Append("b" + std::to_string(i)).ok());
  }
  auto ca = a.Count();
  auto cb = b.Count();
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(*ca, 200u);
  EXPECT_EQ(*cb, 200u);
  int b_records_in_a = 0;
  ASSERT_TRUE(a.Scan([&](const Rid&, std::string_view rec) {
                  if (!rec.empty() && rec[0] == 'b') ++b_records_in_a;
                  return true;
                })
                  .ok());
  EXPECT_EQ(b_records_in_a, 0);
}

TEST(BTreeTest, InsertFindSmall) {
  BTree tree(4);
  tree.Insert(5, Rid{1, 0});
  tree.Insert(3, Rid{1, 1});
  tree.Insert(8, Rid{1, 2});
  EXPECT_EQ(tree.size(), 3u);
  auto hits = tree.Find(3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Rid{1, 1}));
  EXPECT_TRUE(tree.Contains(8));
  EXPECT_FALSE(tree.Contains(7));
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTree tree(4);
  for (int64_t i = 0; i < 100; ++i) tree.Insert(i, Rid{0, static_cast<uint16_t>(i)});
  EXPECT_GT(tree.Height(), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int64_t i = 0; i < 100; ++i) EXPECT_TRUE(tree.Contains(i));
}

TEST(BTreeTest, DuplicateKeys) {
  BTree tree(4);
  for (uint16_t s = 0; s < 10; ++s) tree.Insert(42, Rid{1, s});
  auto hits = tree.Find(42);
  EXPECT_EQ(hits.size(), 10u);
  // Erase a specific duplicate.
  EXPECT_TRUE(tree.Erase(42, Rid{1, 4}));
  EXPECT_FALSE(tree.Erase(42, Rid{1, 4}));
  hits = tree.Find(42);
  EXPECT_EQ(hits.size(), 9u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, RangeScanOrderedAndBounded) {
  BTree tree(8);
  for (int64_t i = 100; i >= 0; --i)
    tree.Insert(i * 2, Rid{0, static_cast<uint16_t>(i)});  // even keys 0..200
  std::vector<int64_t> keys;
  tree.ScanRange(10, 30, [&](int64_t k, const Rid&) {
    keys.push_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 11u);  // 10,12,...,30
  EXPECT_EQ(keys.front(), 10);
  EXPECT_EQ(keys.back(), 30);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(BTreeTest, PropertyAgainstMultimap) {
  // Randomized property test: the tree behaves exactly like a sorted
  // multimap under mixed inserts and erases.
  Rng rng(2026);
  BTree tree(6);
  std::multimap<int64_t, Rid> model;
  for (int step = 0; step < 5000; ++step) {
    int64_t key = rng.Range(0, 200);
    if (rng.Bernoulli(0.3) && !model.empty()) {
      // Erase a random existing (key, rid).
      auto it = model.lower_bound(key);
      if (it == model.end()) it = model.begin();
      bool tree_erased = tree.Erase(it->first, it->second);
      EXPECT_TRUE(tree_erased);
      model.erase(it);
    } else {
      Rid rid{static_cast<PageId>(step / 65536),
              static_cast<uint16_t>(step % 65536)};
      tree.Insert(key, rid);
      model.emplace(key, rid);
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Every model key is found with the same multiplicity.
  for (int64_t k = 0; k <= 200; ++k) {
    EXPECT_EQ(tree.Find(k).size(), model.count(k)) << "key " << k;
  }
  // Full scan matches the model ordering.
  std::vector<int64_t> scanned;
  tree.ScanAll([&](int64_t k, const Rid&) {
    scanned.push_back(k);
    return true;
  });
  std::vector<int64_t> expected;
  for (const auto& [k, v] : model) expected.push_back(k);
  EXPECT_EQ(scanned, expected);
}

TEST(WalTest, CommittedOpsReplayInOrder) {
  MemoryWalSink sink;
  WalWriter wal(&sink);
  auto t1 = wal.Begin();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(wal.LogOp(*t1, "op1").ok());
  ASSERT_TRUE(wal.LogOp(*t1, "op2").ok());
  ASSERT_TRUE(wal.Commit(*t1).ok());

  std::vector<std::string> applied;
  auto n = WalRecover(sink.bytes(), [&](const WalRecord& rec) {
    applied.push_back(rec.payload);
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);  // begin, 2 ops, commit
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0], "op1");
  EXPECT_EQ(applied[1], "op2");
}

TEST(WalTest, UncommittedAndAbortedOpsAreDiscarded) {
  MemoryWalSink sink;
  WalWriter wal(&sink);
  auto t1 = wal.Begin();  // committed
  auto t2 = wal.Begin();  // aborted
  auto t3 = wal.Begin();  // never finished (crash)
  ASSERT_TRUE(wal.LogOp(*t1, "keep").ok());
  ASSERT_TRUE(wal.LogOp(*t2, "aborted").ok());
  ASSERT_TRUE(wal.LogOp(*t3, "in-flight").ok());
  ASSERT_TRUE(wal.Abort(*t2).ok());
  ASSERT_TRUE(wal.Commit(*t1).ok());

  std::vector<std::string> applied;
  ASSERT_TRUE(WalRecover(sink.bytes(), [&](const WalRecord& rec) {
                applied.push_back(rec.payload);
                return Status::OK();
              })
                  .ok());
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], "keep");
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  MemoryWalSink sink;
  WalWriter wal(&sink);
  auto t1 = wal.Begin();
  ASSERT_TRUE(wal.LogOp(*t1, "committed-op").ok());
  ASSERT_TRUE(wal.Commit(*t1).ok());
  size_t good_size = sink.bytes().size();
  auto t2 = wal.Begin();
  ASSERT_TRUE(wal.LogOp(*t2, "will-be-torn").ok());
  ASSERT_TRUE(wal.Commit(*t2).ok());
  // Crash: cut the log mid-way through txn 2's records.
  sink.TruncateTo(good_size + 3);

  std::vector<std::string> applied;
  ASSERT_TRUE(WalRecover(sink.bytes(), [&](const WalRecord& rec) {
                applied.push_back(rec.payload);
                return Status::OK();
              })
                  .ok());
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], "committed-op");
}

TEST(WalTest, CorruptMiddleRecordEndsReplayAtCorruption) {
  MemoryWalSink sink;
  WalWriter wal(&sink);
  auto t1 = wal.Begin();
  ASSERT_TRUE(wal.LogOp(*t1, "op-a").ok());
  ASSERT_TRUE(wal.Commit(*t1).ok());
  // Flip a byte inside the first record's payload area.
  auto& bytes = const_cast<std::vector<uint8_t>&>(sink.bytes());
  bytes[10] ^= 0xFF;
  std::vector<std::string> applied;
  ASSERT_TRUE(WalRecover(sink.bytes(), [&](const WalRecord& rec) {
                applied.push_back(rec.payload);
                return Status::OK();
              })
                  .ok());
  EXPECT_TRUE(applied.empty());
}

}  // namespace
}  // namespace mdm::storage

#include <gtest/gtest.h>

#include "er/database.h"
#include "er/schema.h"
#include "storage/wal.h"

namespace mdm::er {
namespace {

using rel::Value;
using rel::ValueType;

EntityTypeDef SimpleType(const std::string& name) {
  return EntityTypeDef{name, {{"name", ValueType::kString, ""}}};
}

class ErSchemaTest : public testing::Test {
 protected:
  ErSchema schema_;
};

TEST_F(ErSchemaTest, EntityTypeDefinitionAndLookup) {
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("COMPOSITION")).ok());
  EXPECT_NE(schema_.FindEntityType("COMPOSITION"), nullptr);
  // Lookup is case-insensitive, like QUEL identifiers.
  EXPECT_NE(schema_.FindEntityType("composition"), nullptr);
  EXPECT_EQ(schema_.FindEntityType("NOPE"), nullptr);
  EXPECT_EQ(schema_.AddEntityType(SimpleType("COMPOSITION")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ErSchemaTest, DuplicateAttributesRejected) {
  EntityTypeDef def{"X",
                    {{"a", ValueType::kInt, ""}, {"A", ValueType::kInt, ""}}};
  EXPECT_EQ(schema_.AddEntityType(def).code(), StatusCode::kAlreadyExists);
}

TEST_F(ErSchemaTest, RefAttributeRequiresTarget) {
  EntityTypeDef def{"COMPOSITION",
                    {{"composition_date", ValueType::kRef, "DATE"}}};
  EXPECT_EQ(schema_.AddEntityType(def).code(), StatusCode::kNotFound);
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("DATE")).ok());
  EXPECT_TRUE(schema_.AddEntityType(def).ok());
}

TEST_F(ErSchemaTest, RelationshipValidation) {
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("PERSON")).ok());
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("COMPOSITION")).ok());
  RelationshipDef composer{
      "COMPOSER",
      {{"composer", "PERSON"}, {"composition", "COMPOSITION"}},
      {}};
  EXPECT_TRUE(schema_.AddRelationship(composer).ok());
  EXPECT_EQ(schema_.AddRelationship(composer).code(),
            StatusCode::kAlreadyExists);
  RelationshipDef single{"BAD", {{"only", "PERSON"}}, {}};
  EXPECT_EQ(schema_.AddRelationship(single).code(),
            StatusCode::kInvalidArgument);
  RelationshipDef missing{"BAD2",
                          {{"a", "PERSON"}, {"b", "GHOST"}},
                          {}};
  EXPECT_EQ(schema_.AddRelationship(missing).code(), StatusCode::kNotFound);
}

TEST_F(ErSchemaTest, OrderingValidationAndNameGeneration) {
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("NOTE")).ok());
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("CHORD")).ok());
  // Missing parent type.
  OrderingDef bad{"", {"NOTE"}, "GHOST"};
  EXPECT_EQ(schema_.AddOrdering(bad).code(), StatusCode::kNotFound);
  // Anonymous ordering gets a generated name (paper: name is optional).
  OrderingDef anon{"", {"NOTE"}, "CHORD"};
  ASSERT_TRUE(schema_.AddOrdering(anon).ok());
  EXPECT_NE(schema_.FindOrdering("note_under_chord"), nullptr);
  // A second anonymous ordering over the same types gets a distinct name.
  ASSERT_TRUE(schema_.AddOrdering(anon).ok());
  EXPECT_NE(schema_.FindOrdering("note_under_chord_2"), nullptr);
}

TEST_F(ErSchemaTest, RecursiveOrderingDetected) {
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("BEAM_GROUP")).ok());
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("CHORD")).ok());
  OrderingDef beams{"beam", {"BEAM_GROUP", "CHORD"}, "BEAM_GROUP"};
  EXPECT_TRUE(beams.IsRecursive());
  ASSERT_TRUE(schema_.AddOrdering(beams).ok());
  OrderingDef plain{"notes", {"CHORD"}, "BEAM_GROUP"};
  EXPECT_FALSE(plain.IsRecursive());
}

TEST_F(ErSchemaTest, HoGraphDotContainsOrderingEdges) {
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("NOTE")).ok());
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("CHORD")).ok());
  ASSERT_TRUE(schema_.AddOrdering({"note_in_chord", {"NOTE"}, "CHORD"}).ok());
  std::string dot = schema_.ToHoGraphDot();
  EXPECT_NE(dot.find("\"CHORD\" -> \"NOTE\""), std::string::npos);
  EXPECT_NE(dot.find("note_in_chord"), std::string::npos);
}

TEST_F(ErSchemaTest, EncodeDecodeRoundTrip) {
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("PERSON")).ok());
  ASSERT_TRUE(schema_.AddEntityType(SimpleType("COMPOSITION")).ok());
  ASSERT_TRUE(schema_
                  .AddRelationship({"COMPOSER",
                                    {{"composer", "PERSON"},
                                     {"composition", "COMPOSITION"}},
                                    {{"share", ValueType::kFloat, ""}}})
                  .ok());
  ASSERT_TRUE(
      schema_.AddOrdering({"movements", {"COMPOSITION"}, "COMPOSITION"}).ok());
  ByteWriter w;
  schema_.Encode(&w);
  ByteReader r(w.data());
  ErSchema decoded;
  ASSERT_TRUE(ErSchema::Decode(&r, &decoded).ok());
  EXPECT_NE(decoded.FindEntityType("PERSON"), nullptr);
  EXPECT_NE(decoded.FindRelationship("COMPOSER"), nullptr);
  const OrderingDef* o = decoded.FindOrdering("movements");
  ASSERT_NE(o, nullptr);
  EXPECT_TRUE(o->IsRecursive());
}

// ----------------------------------------------------------------------
// Database: the paper's running example (notes in chords).
// ----------------------------------------------------------------------

class DatabaseTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.DefineEntityType(
                       {"CHORD", {{"name", ValueType::kInt, ""}}})
                    .ok());
    ASSERT_TRUE(db_.DefineEntityType({"NOTE",
                                      {{"name", ValueType::kInt, ""},
                                       {"pitch", ValueType::kString, ""}}})
                    .ok());
    auto name = db_.DefineOrdering({"note_in_chord", {"NOTE"}, "CHORD"});
    ASSERT_TRUE(name.ok());
  }

  EntityId MakeNote(int name) {
    auto id = db_.CreateEntity("NOTE");
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(db_.SetAttribute(*id, "name", Value::Int(name)).ok());
    return *id;
  }

  Database db_;
};

TEST_F(DatabaseTest, CreateAndReadAttributes) {
  auto chord = db_.CreateEntity("CHORD");
  ASSERT_TRUE(chord.ok());
  ASSERT_TRUE(db_.SetAttribute(*chord, "name", Value::Int(7)).ok());
  auto v = db_.GetAttribute(*chord, "name");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 7);
  // Unset attributes read as null.
  auto note = db_.CreateEntity("NOTE");
  ASSERT_TRUE(note.ok());
  auto pitch = db_.GetAttribute(*note, "pitch");
  ASSERT_TRUE(pitch.ok());
  EXPECT_TRUE(pitch->is_null());
}

TEST_F(DatabaseTest, AttributeTypeEnforced) {
  auto chord = db_.CreateEntity("CHORD");
  ASSERT_TRUE(chord.ok());
  EXPECT_EQ(db_.SetAttribute(*chord, "name", Value::String("x")).code(),
            StatusCode::kTypeError);
  EXPECT_EQ(db_.SetAttribute(*chord, "ghost", Value::Int(1)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.CreateEntity("GHOST").status().code(), StatusCode::kNotFound);
}

TEST_F(DatabaseTest, OrderedChildrenAndOrdinalAccess) {
  auto chord = db_.CreateEntity("CHORD");
  ASSERT_TRUE(chord.ok());
  EntityId u = MakeNote(1), v = MakeNote(2), w = MakeNote(3), x = MakeNote(4);
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, u).ok());
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, v).ok());
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, x).ok());
  ASSERT_TRUE(db_.InsertChildAt("note_in_chord", *chord, w, 2).ok());

  auto kids = db_.Children("note_in_chord", *chord);
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(*kids, (std::vector<EntityId>{u, v, w, x}));

  // "the third child of the parent labeled y" (fig 6) is w.
  auto third = db_.NthChild("note_in_chord", *chord, 2);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, w);
  auto pos = db_.PositionOf("note_in_chord", w);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, 2u);
  EXPECT_EQ(db_.NthChild("note_in_chord", *chord, 9).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(DatabaseTest, BeforeAfterUnderSemantics) {
  auto c1 = db_.CreateEntity("CHORD");
  auto c2 = db_.CreateEntity("CHORD");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EntityId a = MakeNote(1), b = MakeNote(2), c = MakeNote(3);
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *c1, a).ok());
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *c1, b).ok());
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *c2, c).ok());

  EXPECT_TRUE(*db_.Before("note_in_chord", a, b));
  EXPECT_FALSE(*db_.Before("note_in_chord", b, a));
  EXPECT_TRUE(*db_.After("note_in_chord", b, a));
  EXPECT_FALSE(*db_.Before("note_in_chord", a, a));
  // §5.6: different parents are not comparable -> false, not an error.
  EXPECT_FALSE(*db_.Before("note_in_chord", a, c));
  EXPECT_FALSE(*db_.After("note_in_chord", a, c));

  EXPECT_TRUE(*db_.Under("note_in_chord", a, *c1));
  EXPECT_FALSE(*db_.Under("note_in_chord", a, *c2));
  EXPECT_EQ(*db_.ParentOf("note_in_chord", c), *c2);
  EXPECT_EQ(*db_.ParentOf("note_in_chord", *c1), kInvalidEntityId);
}

TEST_F(DatabaseTest, ChildHasOnePositionPerOrdering) {
  auto c1 = db_.CreateEntity("CHORD");
  auto c2 = db_.CreateEntity("CHORD");
  EntityId n = MakeNote(1);
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *c1, n).ok());
  // Same parent again, or a different parent: both violate "only one
  // second object".
  EXPECT_EQ(db_.AppendChild("note_in_chord", *c1, n).code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(db_.AppendChild("note_in_chord", *c2, n).code(),
            StatusCode::kConstraintViolation);
  // After removal it may be re-inserted elsewhere.
  ASSERT_TRUE(db_.RemoveChild("note_in_chord", n).ok());
  EXPECT_TRUE(db_.AppendChild("note_in_chord", *c2, n).ok());
}

TEST_F(DatabaseTest, TypeCheckingOnOrderingInsert) {
  auto chord = db_.CreateEntity("CHORD");
  auto note = db_.CreateEntity("NOTE");
  // Parent and child swapped.
  EXPECT_EQ(db_.AppendChild("note_in_chord", *note, *chord).code(),
            StatusCode::kTypeError);
  EXPECT_EQ(db_.AppendChild("ghost_ordering", *chord, *note).code(),
            StatusCode::kNotFound);
}

TEST_F(DatabaseTest, MultipleOrderingsWithSharedChild) {
  // The paper's "multiple parents": NOTE under CHORD and NOTE under
  // STAFF are independent orderings.
  ASSERT_TRUE(db_.DefineEntityType(SimpleType("STAFF")).ok());
  ASSERT_TRUE(db_.DefineOrdering({"note_on_staff", {"NOTE"}, "STAFF"}).ok());
  auto chord = db_.CreateEntity("CHORD");
  auto staff = db_.CreateEntity("STAFF");
  EntityId n1 = MakeNote(1), n2 = MakeNote(2);
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, n1).ok());
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, n2).ok());
  // Reverse order on the staff: the orderings do not interfere.
  ASSERT_TRUE(db_.AppendChild("note_on_staff", *staff, n2).ok());
  ASSERT_TRUE(db_.AppendChild("note_on_staff", *staff, n1).ok());
  EXPECT_TRUE(*db_.Before("note_in_chord", n1, n2));
  EXPECT_TRUE(*db_.Before("note_on_staff", n2, n1));
}

TEST_F(DatabaseTest, InhomogeneousOrdering) {
  // §5.5: a VOICE is an ordered sequence of CHORDs and RESTs intermixed.
  ASSERT_TRUE(db_.DefineEntityType(SimpleType("REST")).ok());
  ASSERT_TRUE(db_.DefineEntityType(SimpleType("VOICE")).ok());
  ASSERT_TRUE(
      db_.DefineOrdering({"voice_seq", {"CHORD", "REST"}, "VOICE"}).ok());
  auto voice = db_.CreateEntity("VOICE");
  auto chord1 = db_.CreateEntity("CHORD");
  auto rest = db_.CreateEntity("REST");
  auto chord2 = db_.CreateEntity("CHORD");
  ASSERT_TRUE(db_.AppendChild("voice_seq", *voice, *chord1).ok());
  ASSERT_TRUE(db_.AppendChild("voice_seq", *voice, *rest).ok());
  ASSERT_TRUE(db_.AppendChild("voice_seq", *voice, *chord2).ok());
  // "the second object under voice V" is the rest.
  auto second = db_.NthChild("voice_seq", *voice, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *rest);
  EXPECT_EQ(*db_.TypeOf(*second), "REST");
  // NOTE is not an admitted child type.
  EntityId n = MakeNote(1);
  EXPECT_EQ(db_.AppendChild("voice_seq", *voice, n).code(),
            StatusCode::kTypeError);
}

TEST_F(DatabaseTest, RecursiveOrderingAllowsNestingButNoCycles) {
  // Fig 8: beam groups contain beam groups and chords.
  ASSERT_TRUE(db_.DefineEntityType(SimpleType("BEAM_GROUP")).ok());
  ASSERT_TRUE(db_.DefineOrdering(
                     {"beams", {"BEAM_GROUP", "CHORD"}, "BEAM_GROUP"})
                  .ok());
  auto g1 = db_.CreateEntity("BEAM_GROUP");
  auto g2 = db_.CreateEntity("BEAM_GROUP");
  auto g3 = db_.CreateEntity("BEAM_GROUP");
  auto c1 = db_.CreateEntity("CHORD");
  ASSERT_TRUE(db_.AppendChild("beams", *g1, *g2).ok());
  ASSERT_TRUE(db_.AppendChild("beams", *g2, *g3).ok());
  ASSERT_TRUE(db_.AppendChild("beams", *g3, *c1).ok());
  // Self-cycle and ancestor cycles rejected (§5.5 restrictions).
  EXPECT_EQ(db_.AppendChild("beams", *g1, *g1).code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(db_.AppendChild("beams", *g3, *g1).code(),
            StatusCode::kConstraintViolation);
  // g1 currently has no parent; adding it under g3 would make
  // g1 -> g2 -> g3 -> g1.
  auto parent = db_.ParentOf("beams", *g1);
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(*parent, kInvalidEntityId);
}

TEST_F(DatabaseTest, Fig8BeamGroupInstanceGraph) {
  // Reconstructs fig 8(c): g1 = (c1, g2=(c2, c3, c4), g3=(c5, c6)).
  ASSERT_TRUE(db_.DefineEntityType(SimpleType("BEAM_GROUP")).ok());
  ASSERT_TRUE(db_.DefineOrdering(
                     {"beams", {"BEAM_GROUP", "CHORD"}, "BEAM_GROUP"})
                  .ok());
  auto g1 = db_.CreateEntity("BEAM_GROUP");
  auto g2 = db_.CreateEntity("BEAM_GROUP");
  auto g3 = db_.CreateEntity("BEAM_GROUP");
  EntityId chords[6];
  for (int i = 0; i < 6; ++i) {
    auto c = db_.CreateEntity("CHORD");
    ASSERT_TRUE(c.ok());
    chords[i] = *c;
  }
  ASSERT_TRUE(db_.AppendChild("beams", *g1, chords[0]).ok());
  ASSERT_TRUE(db_.AppendChild("beams", *g1, *g2).ok());
  ASSERT_TRUE(db_.AppendChild("beams", *g1, *g3).ok());
  ASSERT_TRUE(db_.AppendChild("beams", *g2, chords[1]).ok());
  ASSERT_TRUE(db_.AppendChild("beams", *g2, chords[2]).ok());
  ASSERT_TRUE(db_.AppendChild("beams", *g2, chords[3]).ok());
  ASSERT_TRUE(db_.AppendChild("beams", *g3, chords[4]).ok());
  ASSERT_TRUE(db_.AppendChild("beams", *g3, chords[5]).ok());

  auto dot = db_.InstanceGraphDot("beams", *g1, "");
  ASSERT_TRUE(dot.ok());
  // All nine nodes appear, with P-edges and S-edges.
  EXPECT_NE(dot->find("label=\"P\""), std::string::npos);
  EXPECT_NE(dot->find("label=\"S\""), std::string::npos);
  EXPECT_NE(dot->find("BEAM_GROUP#"), std::string::npos);
  EXPECT_NE(dot->find("CHORD#"), std::string::npos);
}

TEST_F(DatabaseTest, DeleteEntityDetachesEverywhere) {
  auto chord = db_.CreateEntity("CHORD");
  EntityId a = MakeNote(1), b = MakeNote(2), c = MakeNote(3);
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, a).ok());
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, b).ok());
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, c).ok());
  ASSERT_TRUE(db_.DeleteEntity(b).ok());
  auto kids = db_.Children("note_in_chord", *chord);
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(*kids, (std::vector<EntityId>{a, c}));
  EXPECT_FALSE(db_.Exists(b));
  // Deleting the parent turns children into roots.
  ASSERT_TRUE(db_.DeleteEntity(*chord).ok());
  EXPECT_EQ(*db_.ParentOf("note_in_chord", a), kInvalidEntityId);
  auto count = db_.CountEntities("NOTE");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
}

TEST_F(DatabaseTest, RelationshipsConnectAndCascadeOnDelete) {
  ASSERT_TRUE(db_.DefineEntityType(SimpleType("PERSON")).ok());
  ASSERT_TRUE(db_.DefineEntityType(SimpleType("COMPOSITION")).ok());
  ASSERT_TRUE(db_.DefineRelationship(
                     {"COMPOSER",
                      {{"composer", "PERSON"}, {"composition", "COMPOSITION"}},
                      {}})
                  .ok());
  auto bach = db_.CreateEntity("PERSON");
  auto fugue = db_.CreateEntity("COMPOSITION");
  auto ri = db_.Connect("COMPOSER", {{"composer", *bach},
                                     {"composition", *fugue}});
  ASSERT_TRUE(ri.ok());
  EXPECT_EQ(*db_.CountRelationships("COMPOSER"), 1u);
  // Unbound role rejected.
  EXPECT_EQ(db_.Connect("COMPOSER", {{"composer", *bach}}).status().code(),
            StatusCode::kInvalidArgument);
  // Wrong role type rejected.
  EXPECT_EQ(db_.Connect("COMPOSER", {{"composer", *fugue},
                                     {"composition", *bach}})
                .status()
                .code(),
            StatusCode::kTypeError);
  // Deleting a participant deletes the relationship instance.
  ASSERT_TRUE(db_.DeleteEntity(*bach).ok());
  EXPECT_EQ(*db_.CountRelationships("COMPOSER"), 0u);
}

TEST_F(DatabaseTest, RefAttributesValidated) {
  ASSERT_TRUE(db_.DefineEntityType(
                     {"DATE",
                      {{"year", ValueType::kInt, ""}}})
                  .ok());
  ASSERT_TRUE(db_.DefineEntityType(
                     {"COMPOSITION",
                      {{"title", ValueType::kString, ""},
                       {"composition_date", ValueType::kRef, "DATE"}}})
                  .ok());
  auto date = db_.CreateEntity("DATE");
  auto comp = db_.CreateEntity("COMPOSITION");
  auto note = db_.CreateEntity("NOTE");
  ASSERT_TRUE(
      db_.SetAttribute(*comp, "composition_date", Value::Ref(*date)).ok());
  // Wrong target type.
  EXPECT_EQ(
      db_.SetAttribute(*comp, "composition_date", Value::Ref(*note)).code(),
      StatusCode::kTypeError);
  // Missing target.
  EXPECT_EQ(
      db_.SetAttribute(*comp, "composition_date", Value::Ref(999)).code(),
      StatusCode::kNotFound);
  EXPECT_EQ(db_.CountDanglingRefs(), 0u);
  ASSERT_TRUE(db_.DeleteEntity(*date).ok());
  EXPECT_EQ(db_.CountDanglingRefs(), 1u);
}

TEST_F(DatabaseTest, SnapshotRestoreRoundTrip) {
  auto chord = db_.CreateEntity("CHORD");
  EntityId a = MakeNote(10), b = MakeNote(20);
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, a).ok());
  ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, b).ok());
  ASSERT_TRUE(db_.SetAttribute(a, "pitch", Value::String("G4")).ok());

  ByteWriter w;
  db_.Snapshot(&w);
  ByteReader r(w.data());
  Database restored;
  ASSERT_TRUE(Database::Restore(&r, &restored).ok());

  EXPECT_EQ(restored.TotalEntities(), db_.TotalEntities());
  auto kids = restored.Children("note_in_chord", *chord);
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(*kids, (std::vector<EntityId>{a, b}));
  auto pitch = restored.GetAttribute(a, "pitch");
  ASSERT_TRUE(pitch.ok());
  EXPECT_EQ(pitch->AsString(), "G4");
  // Ids continue without collision after restore.
  auto fresh = restored.CreateEntity("NOTE");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(db_.Exists(*fresh));
  EXPECT_GT(*fresh, b);
}

TEST_F(DatabaseTest, JournalReplayReproducesDatabase) {
  storage::MemoryWalSink sink;
  storage::WalWriter wal(&sink);

  Database source;
  source.AttachJournal(&wal);
  ASSERT_TRUE(source
                  .DefineEntityType({"CHORD", {{"name", ValueType::kInt, ""}}})
                  .ok());
  ASSERT_TRUE(source
                  .DefineEntityType({"NOTE", {{"name", ValueType::kInt, ""}}})
                  .ok());
  ASSERT_TRUE(
      source.DefineOrdering({"note_in_chord", {"NOTE"}, "CHORD"}).ok());
  auto chord = source.CreateEntity("CHORD");
  auto n1 = source.CreateEntity("NOTE");
  auto n2 = source.CreateEntity("NOTE");
  ASSERT_TRUE(source.SetAttribute(*n1, "name", Value::Int(60)).ok());
  ASSERT_TRUE(source.AppendChild("note_in_chord", *chord, *n1).ok());
  ASSERT_TRUE(source.AppendChild("note_in_chord", *chord, *n2).ok());
  ASSERT_TRUE(source.RemoveChild("note_in_chord", *n2).ok());
  ASSERT_TRUE(source.DeleteEntity(*n2).ok());

  Database replica;
  ASSERT_TRUE(replica.ReplayJournal(sink.bytes()).ok());
  EXPECT_EQ(replica.TotalEntities(), source.TotalEntities());
  auto kids = replica.Children("note_in_chord", *chord);
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(*kids, (std::vector<EntityId>{*n1}));
  EXPECT_EQ(replica.GetAttribute(*n1, "name")->AsInt(), 60);
  EXPECT_FALSE(replica.Exists(*n2));
}

TEST_F(DatabaseTest, JournalReplaysRelationshipOps) {
  storage::MemoryWalSink sink;
  storage::WalWriter wal(&sink);
  Database source;
  source.AttachJournal(&wal);
  ASSERT_TRUE(source.DefineEntityType(SimpleType("PERSON")).ok());
  ASSERT_TRUE(source.DefineEntityType(SimpleType("COMPOSITION")).ok());
  ASSERT_TRUE(source
                  .DefineRelationship(
                      {"COMPOSER",
                       {{"composer", "PERSON"},
                        {"composition", "COMPOSITION"}},
                       {{"share", rel::ValueType::kFloat, ""}}})
                  .ok());
  auto bach = source.CreateEntity("PERSON");
  auto a = source.CreateEntity("COMPOSITION");
  auto b = source.CreateEntity("COMPOSITION");
  auto link_a = source.Connect("COMPOSER", {{"composer", *bach},
                                            {"composition", *a}});
  auto link_b = source.Connect("COMPOSER", {{"composer", *bach},
                                            {"composition", *b}});
  ASSERT_TRUE(link_a.ok());
  ASSERT_TRUE(link_b.ok());
  ASSERT_TRUE(source
                  .SetRelationshipAttribute(*link_a, "share",
                                            Value::Float(0.75))
                  .ok());
  ASSERT_TRUE(source.Disconnect(*link_b).ok());

  Database replica;
  ASSERT_TRUE(replica.ReplayJournal(sink.bytes()).ok());
  EXPECT_EQ(*replica.CountRelationships("COMPOSER"), 1u);
  bool checked = false;
  ASSERT_TRUE(replica
                  .ForEachRelationship(
                      "COMPOSER",
                      [&](const RelationshipInstance& ri) {
                        EXPECT_EQ(ri.id, *link_a);
                        EXPECT_EQ(ri.role_refs[0], *bach);
                        EXPECT_DOUBLE_EQ(ri.attrs[0].AsFloat(), 0.75);
                        checked = true;
                        return true;
                      })
                  .ok());
  EXPECT_TRUE(checked);
}

TEST_F(DatabaseTest, JournalGroupTransaction) {
  storage::MemoryWalSink sink;
  storage::WalWriter wal(&sink);
  Database source;
  source.AttachJournal(&wal);
  ASSERT_TRUE(source.DefineEntityType(SimpleType("X")).ok());
  ASSERT_TRUE(source.BeginTxn().ok());
  ASSERT_TRUE(source.CreateEntity("X").ok());
  ASSERT_TRUE(source.CreateEntity("X").ok());
  size_t before_commit = sink.bytes().size();
  ASSERT_TRUE(source.CommitTxn().ok());

  // Without the commit record, replay sees an unfinished transaction and
  // applies only the auto-committed schema op.
  std::vector<uint8_t> torn(sink.bytes().begin(),
                            sink.bytes().begin() + before_commit);
  Database replica;
  ASSERT_TRUE(replica.ReplayJournal(torn).ok());
  EXPECT_EQ(replica.TotalEntities(), 0u);
  EXPECT_NE(replica.schema().FindEntityType("X"), nullptr);

  Database full;
  ASSERT_TRUE(full.ReplayJournal(sink.bytes()).ok());
  EXPECT_EQ(full.TotalEntities(), 2u);
}

}  // namespace
}  // namespace mdm::er

// End-to-end request tracing (PR 8): trace-event JSON rendering, the
// trace ring, trace-id propagation over wire protocol v3 (including a
// v2 client against a v3 server), the admin endpoint's routes, and the
// structured slow-query log. Uses real loopback sockets like net_test;
// runs under the tsan preset via the `trace` label.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "net/admin.h"
#include "net/client.h"
#include "net/connection.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "quel/quel.h"
#include "rel/value.h"

namespace mdm {
namespace {

// ---------------------------------------------------------------------
// Trace ids: formatting and parsing.

TEST(TraceIdTest, FormatIsSixteenLowerHex) {
  EXPECT_EQ(obs::FormatTraceId(0), "0000000000000000");
  EXPECT_EQ(obs::FormatTraceId(0x1122334455667788ull), "1122334455667788");
  EXPECT_EQ(obs::FormatTraceId(0xABCDEFull), "0000000000abcdef");
}

TEST(TraceIdTest, ParseRoundTripsAndRejectsJunk) {
  uint64_t id = 0;
  ASSERT_TRUE(obs::ParseTraceId("1122334455667788", &id));
  EXPECT_EQ(id, 0x1122334455667788ull);
  ASSERT_TRUE(obs::ParseTraceId("0xABCDEF", &id));
  EXPECT_EQ(id, 0xabcdefull);
  ASSERT_TRUE(obs::ParseTraceId("7", &id));
  EXPECT_EQ(id, 7u);
  EXPECT_FALSE(obs::ParseTraceId("", &id));
  EXPECT_FALSE(obs::ParseTraceId("0x", &id));
  EXPECT_FALSE(obs::ParseTraceId("112233445566778899", &id));  // 18 digits
  EXPECT_FALSE(obs::ParseTraceId("11223344g5667788", &id));
  EXPECT_FALSE(obs::ParseTraceId("trace", &id));
}

// ---------------------------------------------------------------------
// Chrome trace_event JSON: the export format is a compatibility surface
// (Perfetto loads it), so it is byte-golden on a synthetic trace.

TEST(TraceJsonTest, TwoSpanGolden) {
  obs::Trace t;
  t.trace_id = 0x00000000deadbeefull;
  t.events.push_back({"quel.statement", 1'500, 1'234'567, 2});
  t.events.push_back({"net.request", 0, 2'000'000, 1});
  EXPECT_EQ(
      obs::RenderTraceEventJson(t),
      "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
      "\"trace_id\":\"00000000deadbeef\",\"truncated\":false},"
      "\"traceEvents\":["
      "{\"name\":\"quel.statement\",\"cat\":\"mdm\",\"ph\":\"X\","
      "\"ts\":1.500,\"dur\":1234.567,\"pid\":1,\"tid\":1,"
      "\"args\":{\"depth\":2}},"
      "{\"name\":\"net.request\",\"cat\":\"mdm\",\"ph\":\"X\","
      "\"ts\":0.000,\"dur\":2000.000,\"pid\":1,\"tid\":1,"
      "\"args\":{\"depth\":1}}"
      "]}");
}

TEST(TraceJsonTest, TruncatedFlagRenders) {
  obs::Trace t;
  t.trace_id = 1;
  t.truncated = true;
  EXPECT_EQ(obs::RenderTraceEventJson(t),
            "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
            "\"trace_id\":\"0000000000000001\",\"truncated\":true},"
            "\"traceEvents\":[]}");
}

// ---------------------------------------------------------------------
// TraceContext + TraceRing.

TEST(TraceContextTest, SpansRecordIntoTheContextAndPublish) {
  obs::TraceRing::Global()->Clear();
  {
    obs::TraceContext ctx(0xAAull, /*sampled=*/true);
    obs::Span outer("trace_test.outer");
    { obs::Span inner("trace_test.inner"); }
  }
  auto trace = obs::TraceRing::Global()->Find(0xAAull);
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->events.size(), 2u);
  // Spans record at close: inner (depth 2) first, then outer (depth 1).
  EXPECT_STREQ(trace->events[0].name, "trace_test.inner");
  EXPECT_EQ(trace->events[0].depth, 2);
  EXPECT_STREQ(trace->events[1].name, "trace_test.outer");
  EXPECT_EQ(trace->events[1].depth, 1);
  EXPECT_FALSE(trace->truncated);
  // The outer span contains the inner one.
  EXPECT_LE(trace->events[1].start_ns, trace->events[0].start_ns);
  EXPECT_GE(trace->events[1].dur_ns, trace->events[0].dur_ns);
}

TEST(TraceContextTest, UnsampledContextPublishesNothing) {
  obs::TraceRing::Global()->Clear();
  {
    obs::TraceContext ctx(0xBBull, /*sampled=*/false);
    obs::Span span("trace_test.unsampled");
  }
  EXPECT_EQ(obs::TraceRing::Global()->size(), 0u);
  EXPECT_EQ(obs::TraceRing::Global()->Find(0xBBull), nullptr);
}

TEST(TraceContextTest, BufferCapSetsTruncated) {
  obs::TraceRing::Global()->Clear();
  {
    obs::TraceContext ctx(0xCCull, /*sampled=*/true);
    for (size_t i = 0; i < obs::TraceContext::kMaxEventsPerTrace + 5; ++i) {
      obs::Span span("trace_test.many");
    }
  }
  auto trace = obs::TraceRing::Global()->Find(0xCCull);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->events.size(), obs::TraceContext::kMaxEventsPerTrace);
  EXPECT_TRUE(trace->truncated);
}

TEST(TraceRingTest, BoundedNewestFirstAndNewestWinsOnReuse) {
  obs::TraceRing ring(4);
  for (uint64_t i = 1; i <= 6; ++i) {
    obs::Trace t;
    t.trace_id = i;
    ring.Publish(std::move(t));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.RecentIds(), (std::vector<uint64_t>{6, 5, 4, 3}));
  EXPECT_EQ(ring.Find(1), nullptr);  // evicted
  ASSERT_NE(ring.Find(3), nullptr);
  EXPECT_EQ(ring.Latest()->trace_id, 6u);

  // Republish id 5 with a marker event: Find must return the new one.
  obs::Trace again;
  again.trace_id = 5;
  again.events.push_back({"marker", 0, 1, 1});
  ring.Publish(std::move(again));
  auto found = ring.Find(5);
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->events.size(), 1u);
  EXPECT_STREQ(found->events[0].name, "marker");
}

// ---------------------------------------------------------------------
// Slow-query log: JSONL schema and the sink.

TEST(SlowQueryLogTest, Fnv1a64KnownVectors) {
  EXPECT_EQ(obs::Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(obs::Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(obs::Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(SlowQueryLogTest, RecordRendersGoldenJson) {
  obs::SlowQueryRecord r;
  r.seq = 3;
  r.script = "retrieve (n.name)\nwhere n.name = \"x\"";
  r.script_hash = obs::Fnv1a64(r.script);
  r.trace_id = 0xdeadbeefull;
  r.sampled = true;
  r.latency_us = 1234;
  r.rows = 2;
  r.affected = 0;
  r.loops.push_back({"n1", 200, 14});
  r.loops.push_back({"n2", 1400, 2});
  EXPECT_EQ(
      obs::RenderSlowQueryJson(r),
      "{\"seq\":3,"
      "\"script_hash\":\"" + obs::FormatTraceId(r.script_hash) + "\","
      "\"script\":\"retrieve (n.name)\\nwhere n.name = \\\"x\\\"\","
      "\"trace_id\":\"00000000deadbeef\",\"sampled\":true,"
      "\"latency_us\":1234,\"rows\":2,\"affected\":0,\"error\":\"OK\","
      "\"loops\":[{\"var\":\"n1\",\"rows_in\":200,\"rows_out\":14},"
      "{\"var\":\"n2\",\"rows_in\":1400,\"rows_out\":2}]}");
}

TEST(SlowQueryLogTest, SinkStampsSeqAndTruncatesScript) {
  std::string path =
      ::testing::TempDir() + "slowlog_sink_test.jsonl";
  std::remove(path.c_str());
  {
    auto log = obs::SlowQueryLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    obs::SlowQueryRecord r;
    r.script = std::string(500, 'q');  // far past the excerpt cap
    (*log)->Log(r);
    (*log)->Log(obs::SlowQueryRecord{});
    EXPECT_EQ((*log)->records_written(), 2u);
  }
  std::ifstream in(path);
  std::string line1, line2, extra;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line1)));
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line2)));
  EXPECT_FALSE(static_cast<bool>(std::getline(in, extra)));
  EXPECT_NE(line1.find("\"seq\":1,"), std::string::npos);
  EXPECT_NE(line2.find("\"seq\":2,"), std::string::npos);
  // 120-char excerpt + "..." — never the full 500 q's.
  std::string excerpt(obs::SlowQueryLog::kScriptExcerptChars, 'q');
  EXPECT_NE(line1.find(excerpt + "..."), std::string::npos);
  EXPECT_EQ(line1.find(std::string(200, 'q')), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Loopback integration: trace context over the wire, the admin
// endpoint, and the server-side slow-query log.

class TraceServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ddl = ddl::ExecuteDdl(R"(
      define entity CHORD (name = integer)
      define entity NOTE (name = integer)
      define ordering note_in_chord (NOTE) under CHORD
    )",
                               &db_);
    ASSERT_TRUE(ddl.ok());
    auto chord = db_.CreateEntity("CHORD");
    ASSERT_TRUE(chord.ok());
    ASSERT_TRUE(db_.SetAttribute(*chord, "name", rel::Value::Int(1)).ok());
    for (int i = 0; i < 40; ++i) {
      auto note = db_.CreateEntity("NOTE");
      ASSERT_TRUE(note.ok());
      ASSERT_TRUE(db_.SetAttribute(*note, "name", rel::Value::Int(i)).ok());
      ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, *note).ok());
    }
    obs::TraceRing::Global()->Clear();
  }

  void StartServer(net::ServerOptions opts = {}) {
    opts.port = 0;
    server_ = std::make_unique<net::Server>(&db_, opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  void StartAdmin() {
    admin_ = std::make_unique<net::AdminServer>(server_.get());
    ASSERT_TRUE(admin_->Start().ok());
  }

  // The server publishes a request's trace right after sending the last
  // result page, so the client can observe completion a beat earlier.
  std::shared_ptr<const obs::Trace> WaitForTrace(uint64_t id) {
    for (int i = 0; i < 200; ++i) {
      if (auto t = obs::TraceRing::Global()->Find(id)) return t;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return nullptr;
  }

  void TearDown() override {
    if (admin_) admin_->Stop();
    if (server_) server_->Stop();
  }

  er::Database db_;
  std::unique_ptr<net::Server> server_;
  std::unique_ptr<net::AdminServer> admin_;
};

TEST_F(TraceServerTest, TraceIdRoundTripsThroughV3AndTheAdminEndpoint) {
  StartServer();
  StartAdmin();
  net::ClientOptions copts;
  copts.trace_sample_rate = 1.0;
  copts.trace_seed = 42;
  auto conn = Connection::Remote("127.0.0.1", server_->port(), copts);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  auto rs = conn->Execute("range of n is NOTE\nretrieve (n.name)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 40u);

  uint64_t id = conn->last_trace_id();
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(conn->last_trace_sampled());

  // The server-side ring holds the trace under the CLIENT's id...
  auto trace = WaitForTrace(id);
  ASSERT_NE(trace, nullptr);
  std::vector<std::string> names;
  for (const auto& e : trace->events) names.push_back(e.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "quel.statement"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "net.request"),
            names.end());
  // ...the net.request span is outermost and closes last.
  EXPECT_STREQ(trace->events.back().name, "net.request");
  EXPECT_EQ(trace->events.back().depth, 1);

  // And GET /traces/<id> exports it as trace_event JSON.
  auto body = net::HttpGet("127.0.0.1", admin_->port(),
                           "/traces/" + obs::FormatTraceId(id), 2'000);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_NE(body->find("\"trace_id\":\"" + obs::FormatTraceId(id) + "\""),
            std::string::npos);
  EXPECT_NE(body->find("\"name\":\"net.request\""), std::string::npos);
  EXPECT_NE(body->find("\"name\":\"quel.statement\""), std::string::npos);
}

TEST_F(TraceServerTest, UnsampledRequestsLeaveNoTrace) {
  StartServer();
  net::ClientOptions copts;  // trace_sample_rate defaults to 0
  auto conn = Connection::Remote("127.0.0.1", server_->port(), copts);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Execute("retrieve (NOTE.name)").ok());
  EXPECT_NE(conn->last_trace_id(), 0u);  // an id is always stamped
  EXPECT_FALSE(conn->last_trace_sampled());
  server_->Stop();  // drain: the request scope has fully closed
  EXPECT_EQ(obs::TraceRing::Global()->size(), 0u);
}

TEST_F(TraceServerTest, V2ClientAgainstV3ServerGetsV2Replies) {
  StartServer();
  auto t = net::DialTcpTransport("127.0.0.1", server_->port(), 2'000);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  // Hand-build the v2 ExecuteRequest payload: u32 deadline_ms + varint
  // script length + script (no trace fields — exactly what a PR 6
  // client sends).
  net::Frame req;
  req.type = net::FrameType::kExecuteRequest;
  req.version = 2;
  const std::string script = "retrieve (NOTE.name)";
  req.payload = {0, 0, 0, 0};  // deadline_ms = 0: server default
  req.payload.push_back(static_cast<uint8_t>(script.size()));
  req.payload.insert(req.payload.end(), script.begin(), script.end());
  ASSERT_TRUE(net::WriteFrame(t->get(), req).ok());

  quel::ResultSet rs;
  bool done = false;
  while (!done) {
    bool fatal = false;
    auto reply = net::ReadFrame(t->get(), net::kDefaultMaxFrameBytes,
                                &fatal);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->type, net::FrameType::kResultPage);
    // The server mirrors the request's version so the old client's
    // decoder never sees a version it does not know.
    EXPECT_EQ(reply->version, 2);
    ASSERT_TRUE(net::DecodeResultPage(*reply, &rs, &done).ok());
  }
  EXPECT_EQ(rs.rows.size(), 40u);
  (*t)->Close();
}

TEST_F(TraceServerTest, AdminServesMetricsHealthzStatuszAndTraces) {
  net::ServerOptions opts;
  StartServer(opts);
  StartAdmin();
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Execute("retrieve (NOTE.name)").ok());

  auto health = net::HttpGet("127.0.0.1", admin_->port(), "/healthz", 2'000);
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(*health, "ok\n");

  auto metrics = net::HttpGet("127.0.0.1", admin_->port(), "/metrics", 2'000);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("mdm_net_requests_total"), std::string::npos);
  EXPECT_NE(metrics->find("# TYPE"), std::string::npos);

  auto statusz = net::HttpGet("127.0.0.1", admin_->port(), "/statusz", 2'000);
  ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
  EXPECT_NE(statusz->find("\"uptime_ms\":"), std::string::npos);
  EXPECT_NE(statusz->find("\"requests_total\":1"), std::string::npos);
  EXPECT_NE(statusz->find("\"net_request_latency_ns\":"), std::string::npos);
  EXPECT_NE(statusz->find("\"connections\":["), std::string::npos);

  auto list = net::HttpGet("127.0.0.1", admin_->port(), "/traces", 2'000);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_NE(list->find("\"traces\":["), std::string::npos);

  auto missing = net::HttpGet("127.0.0.1", admin_->port(),
                              "/traces/00000000000000ff", 2'000);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  auto nowhere = net::HttpGet("127.0.0.1", admin_->port(), "/nope", 2'000);
  ASSERT_FALSE(nowhere.ok());
  EXPECT_EQ(nowhere.status().code(), StatusCode::kNotFound);
}

TEST_F(TraceServerTest, SlowQueryLogRecordsTraceIdAndPerLoopActuals) {
  std::string path = ::testing::TempDir() + "slowlog_server_test.jsonl";
  std::remove(path.c_str());
  net::ServerOptions opts;
  auto log = obs::SlowQueryLog::Open(path);
  ASSERT_TRUE(log.ok());
  opts.slow_query_log = std::move(*log);
  opts.slow_query_ms = 0;  // log every statement, deterministically
  StartServer(opts);

  net::ClientOptions copts;
  copts.trace_sample_rate = 1.0;
  copts.trace_seed = 7;
  auto conn = Connection::Remote("127.0.0.1", server_->port(), copts);
  ASSERT_TRUE(conn.ok());
  auto rs = conn->Execute(
      "range of n1, n2 is NOTE\n"
      "retrieve (n1.name) where n1 before n2 in note_in_chord "
      "and n2.name = 3");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  uint64_t id = conn->last_trace_id();
  server_->Stop();  // drain: the slow-query record is written

  EXPECT_EQ(opts.slow_query_log->records_written(), 1u);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  // The record carries the CLIENT's trace id — the slowlog/trace join.
  EXPECT_NE(line.find("\"trace_id\":\"" + obs::FormatTraceId(id) + "\""),
            std::string::npos);
  EXPECT_NE(line.find("\"sampled\":true"), std::string::npos);
  EXPECT_NE(line.find("\"error\":\"OK\""), std::string::npos);
  // Two range variables -> two per-loop actuals entries, each naming
  // its variable with real row counts.
  EXPECT_NE(line.find("\"loops\":[{\"var\":\""), std::string::npos);
  EXPECT_NE(line.find("\"rows_in\":"), std::string::npos);
  size_t first_var = line.find("{\"var\":\"");
  ASSERT_NE(first_var, std::string::npos);
  EXPECT_NE(line.find("{\"var\":\"", first_var + 1), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceServerTest, SlowQueryThresholdFiltersFastStatements) {
  std::string path = ::testing::TempDir() + "slowlog_threshold_test.jsonl";
  std::remove(path.c_str());
  net::ServerOptions opts;
  auto log = obs::SlowQueryLog::Open(path);
  ASSERT_TRUE(log.ok());
  opts.slow_query_log = std::move(*log);
  opts.slow_query_ms = 60'000;  // nothing on loopback is this slow
  StartServer(opts);
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Execute("retrieve (NOTE.name)").ok());
  server_->Stop();
  EXPECT_EQ(opts.slow_query_log->records_written(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdm

#include <gtest/gtest.h>

#include "ddl/parser.h"
#include "er/database.h"
#include "net/connection.h"
#include "quel/quel.h"

namespace mdm::quel {
namespace {

using rel::Value;

/// Builds the paper's §5.6 example database: chords with named notes.
class QuelOrderingTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ddl::ExecuteDdl(R"(
      define entity CHORD (name = integer)
      define entity NOTE (name = integer)
      define ordering note_in_chord (NOTE) under CHORD
    )",
                                &db_)
                    .ok());
    // Chord 1 holds notes 10 < 20 < 30; chord 2 holds notes 40, 50.
    auto c1 = db_.CreateEntity("CHORD");
    auto c2 = db_.CreateEntity("CHORD");
    chord1_ = *c1;
    chord2_ = *c2;
    EXPECT_TRUE(db_.SetAttribute(chord1_, "name", Value::Int(1)).ok());
    EXPECT_TRUE(db_.SetAttribute(chord2_, "name", Value::Int(2)).ok());
    for (int n : {10, 20, 30}) AddNote(chord1_, n);
    for (int n : {40, 50}) AddNote(chord2_, n);
  }

  void AddNote(er::EntityId chord, int name) {
    auto id = db_.CreateEntity("NOTE");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(db_.SetAttribute(*id, "name", Value::Int(name)).ok());
    ASSERT_TRUE(db_.AppendChild("note_in_chord", chord, *id).ok());
  }

  std::vector<int64_t> Ints(const ResultSet& rs) {
    std::vector<int64_t> out;
    for (const auto& row : rs.rows) out.push_back(row[0].AsInt());
    std::sort(out.begin(), out.end());
    return out;
  }

  er::Database db_;
  er::EntityId chord1_, chord2_;
};

TEST_F(QuelOrderingTest, PaperQueryNotesBefore) {
  // "Given a note n, retrieve the notes prior to n in its chord."
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of n1, n2 is NOTE
    retrieve (n1.name)
      where n1 before n2 in note_in_chord and n2.name = 30
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(Ints(*rs), (std::vector<int64_t>{10, 20}));
}

TEST_F(QuelOrderingTest, PaperQueryNotesAfter) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of n1, n2 is NOTE
    retrieve (n1.name)
      where n1 after n2 in note_in_chord and n2.name = 10
  )");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(Ints(*rs), (std::vector<int64_t>{20, 30}));
}

TEST_F(QuelOrderingTest, PaperQueryNotesUnderChord) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of n1 is NOTE
    range of c1 is CHORD
    retrieve (n1.name)
      where n1 under c1 in note_in_chord and c1.name = 2
  )");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(Ints(*rs), (std::vector<int64_t>{40, 50}));
}

TEST_F(QuelOrderingTest, PaperQueryParentChord) {
  // "Retrieve the parent chord of note n."
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of n1 is NOTE
    range of c1 is CHORD
    retrieve (c1.name)
      where n1 under c1 in note_in_chord and n1.name = 40
  )");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 2);
}

TEST_F(QuelOrderingTest, DifferentParentsNotComparable) {
  // Notes 10 (chord 1) and 40 (chord 2): neither before nor after.
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of n1, n2 is NOTE
    retrieve (n1.name)
      where (n1 before n2 in note_in_chord
             or n1 after n2 in note_in_chord)
        and n2.name = 40 and n1.name = 10
  )");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

TEST_F(QuelOrderingTest, OrderingNameInferredWhenUnique) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of n1 is NOTE
    range of c1 is CHORD
    retrieve (n1.name) where n1 under c1 and c1.name = 1
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(Ints(*rs), (std::vector<int64_t>{10, 20, 30}));
}

TEST_F(QuelOrderingTest, ImplicitRangeVariables) {
  // Footnote 6: NOTE / CHORD act as implicitly declared range variables.
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(
      "retrieve (NOTE.name) where NOTE under CHORD and CHORD.name = 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(Ints(*rs), (std::vector<int64_t>{10, 20, 30}));
}

TEST_F(QuelOrderingTest, Aggregates) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of n1 is NOTE
    range of c1 is CHORD
    retrieve (c = count(n1), s = sum(n1.name), mn = min(n1.name),
              mx = max(n1.name), a = avg(n1.name))
      where n1 under c1 in note_in_chord and c1.name = 1
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 3);
  EXPECT_EQ(rs->rows[0][1].AsInt(), 60);
  EXPECT_EQ(rs->rows[0][2].AsInt(), 10);
  EXPECT_EQ(rs->rows[0][3].AsInt(), 30);
  EXPECT_DOUBLE_EQ(rs->rows[0][4].AsFloat(), 20.0);
}

TEST_F(QuelOrderingTest, GroupedAggregates) {
  // QUEL's by-grouping: notes per chord in one query.
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of n is NOTE
    range of c is CHORD
    retrieve (k = count(n by c.name))
      where n under c in note_in_chord
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 2u);
  ASSERT_EQ(rs->columns.size(), 2u);
  EXPECT_EQ(rs->columns[0], "c.name");
  EXPECT_EQ(rs->columns[1], "k");
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs->rows[0][1].AsInt(), 3);
  EXPECT_EQ(rs->rows[1][0].AsInt(), 2);
  EXPECT_EQ(rs->rows[1][1].AsInt(), 2);
  // Sum per chord.
  rs = conn.Execute(R"(
    range of n is NOTE
    range of c is CHORD
    retrieve (s = sum(n.name by c.name))
      where n under c in note_in_chord
      sort by s desc
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][1].AsInt(), 90);  // chord 2: 40+50
  EXPECT_EQ(rs->rows[1][1].AsInt(), 60);  // chord 1: 10+20+30
  // A grouped aggregate must be the only target.
  EXPECT_EQ(conn
                .Execute("range of n is NOTE range of c is CHORD "
                         "retrieve (count(n by c.name), c.name) "
                         "where n under c in note_in_chord")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(QuelOrderingTest, AppendReplaceDelete) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute("append to NOTE (name = 99)");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->affected, 1u);
  rs = conn.Execute(R"(
    range of n1 is NOTE
    replace n1 (name = 77) where n1.name = 99
  )");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->affected, 1u);
  rs = conn.Execute(
      "range of n1 is NOTE retrieve (n1.name) where n1.name = 77");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);
  rs = conn.Execute("range of n1 is NOTE delete n1 where n1.name = 77");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->affected, 1u);
  auto count = db_.CountEntities("NOTE");
  EXPECT_EQ(*count, 5u);
}

TEST_F(QuelOrderingTest, DeleteWithoutQualDeletesAll) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute("range of n1 is NOTE delete n1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->affected, 5u);
  EXPECT_EQ(*db_.CountEntities("NOTE"), 0u);
}

TEST_F(QuelOrderingTest, NaiveAndPushdownAgree) {
  Connection conn = Connection::Local(&db_);
  const char* q = R"(
    range of n1, n2 is NOTE
    retrieve (n1.name)
      where n1 before n2 in note_in_chord and n2.name = 30
  )";
  auto fast = conn.Execute(q);
  auto slow = conn.local_session()->ExecuteNaive(q);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(Ints(*fast), Ints(*slow));
}

TEST_F(QuelOrderingTest, Errors) {
  Connection conn = Connection::Local(&db_);
  EXPECT_EQ(conn.Execute("retrieve (x.name)").status().code(),
            StatusCode::kNotFound);  // undeclared variable
  EXPECT_EQ(conn.Execute("range of n1 is GHOST").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(conn
                .Execute("range of n1 is NOTE retrieve (n1.name) "
                         "where n1.name = 'text'")
                .status()
                .code(),
            StatusCode::kTypeError);
  EXPECT_EQ(conn.Execute("retrieve (NOTE.name) where NOTE under NOTE "
                            "in ghost_order")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(conn.Execute("retrieve ()").status().code(),
            StatusCode::kParseError);
  // Mixed aggregate and plain targets.
  EXPECT_EQ(conn
                .Execute("range of n1 is NOTE "
                         "retrieve (count(n1), n1.name)")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------------------
// The Star Spangled Banner query (paper §5.6, with the `is` operator).
// ----------------------------------------------------------------------

TEST(QuelIsOperatorTest, StarSpangledBanner) {
  er::Database db;
  ASSERT_TRUE(ddl::ExecuteDdl(R"(
    define entity PERSON (name = string)
    define entity COMPOSITION (title = string)
    define relationship COMPOSER
        (composer = PERSON, composition = COMPOSITION)
  )",
                              &db)
                  .ok());
  auto key = db.CreateEntity("PERSON");
  auto smith = db.CreateEntity("PERSON");
  auto banner = db.CreateEntity("COMPOSITION");
  auto other = db.CreateEntity("COMPOSITION");
  ASSERT_TRUE(
      db.SetAttribute(*key, "name", Value::String("John Stafford Smith"))
          .ok());
  ASSERT_TRUE(
      db.SetAttribute(*smith, "name", Value::String("Someone Else")).ok());
  ASSERT_TRUE(db.SetAttribute(*banner, "title",
                              Value::String("The Star Spangled Banner"))
                  .ok());
  ASSERT_TRUE(
      db.SetAttribute(*other, "title", Value::String("Greensleeves")).ok());
  ASSERT_TRUE(db.Connect("COMPOSER", {{"composer", *key},
                                      {"composition", *banner}})
                  .ok());
  ASSERT_TRUE(db.Connect("COMPOSER", {{"composer", *smith},
                                      {"composition", *other}})
                  .ok());

  Connection conn = Connection::Local(&db);
  // The paper's query, using implicit range variables.
  auto rs = conn.Execute(R"(
    retrieve (PERSON.name)
      where COMPOSITION.title = "The Star Spangled Banner"
        and COMPOSER.composition is COMPOSITION
        and COMPOSER.composer is PERSON
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsString(), "John Stafford Smith");
}

TEST(QuelResultSetTest, ToStringFormatsTable) {
  ResultSet rs;
  rs.columns = {"name", "n"};
  rs.rows.push_back({Value::String("abc"), Value::Int(1)});
  rs.rows.push_back({Value::String("d"), Value::Int(22)});
  std::string s = rs.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("'abc'"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);

  ResultSet affected;
  affected.affected = 3;
  EXPECT_NE(affected.ToString().find("3 rows affected"), std::string::npos);
}

TEST_F(QuelOrderingTest, AppendUnderAddsLastChild) {
  // The editor's "add at the end" (§5.5): the created entity lands as
  // the final child of the qualified parent.
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of c1 is CHORD
    append to NOTE (name = 60) under c1 in note_in_chord
      where c1.name = 2
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->affected, 1u);
  auto children = db_.Children("note_in_chord", chord2_);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 3u);
  auto name = db_.GetAttribute(children->back(), "name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->AsInt(), 60);
}

TEST_F(QuelOrderingTest, AppendUnderCreatesOnePerMatchingParent) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of c1 is CHORD
    append to NOTE (name = 70) under c1 in note_in_chord
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->affected, 2u);  // one fresh NOTE per chord
  for (er::EntityId chord : {chord1_, chord2_}) {
    auto children = db_.Children("note_in_chord", chord);
    ASSERT_TRUE(children.ok());
    auto name = db_.GetAttribute(children->back(), "name");
    EXPECT_EQ(name->AsInt(), 70);
  }
  EXPECT_EQ(*db_.CountEntities("NOTE"), 7u);
}

TEST_F(QuelOrderingTest, AppendUnderNoMatchCreatesNothing) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of c1 is CHORD
    append to NOTE (name = 80) under c1 in note_in_chord
      where c1.name = 99
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->affected, 0u);
  EXPECT_EQ(*db_.CountEntities("NOTE"), 5u);
}

TEST_F(QuelOrderingTest, AppendUnderAssignmentsSeeParentBinding) {
  // Attribute expressions may reference the parent variable: the new
  // note inherits its chord's name.
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of c1 is CHORD
    append to NOTE (name = c1.name) under c1 in note_in_chord
      where c1.name = 1
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->affected, 1u);
  auto children = db_.Children("note_in_chord", chord1_);
  auto name = db_.GetAttribute(children->back(), "name");
  EXPECT_EQ(name->AsInt(), 1);
}

TEST_F(QuelOrderingTest, AppendUnderErrors) {
  Connection conn = Connection::Local(&db_);
  // Unknown ordering.
  EXPECT_FALSE(conn.Execute(R"(
    range of c1 is CHORD
    append to NOTE (name = 1) under c1 in no_such_ordering
  )")
                   .ok());
  // Malformed: `under` without `in <ordering>`.
  EXPECT_FALSE(conn.Execute(
                       "range of c1 is CHORD "
                       "append to NOTE (name = 1) under c1")
                   .ok());
}

}  // namespace
}  // namespace mdm::quel

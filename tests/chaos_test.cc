// Seeded chaos tests for the networking stack (ISSUE 6 tentpole): a
// real mdmd server on 127.0.0.1 with clients whose byte streams pass
// through a FaultInjectingTransport. Every scenario is deterministic —
// faults fire from a seed or at an armed I/O boundary — and asserts
// four invariants:
//
//  1. no call blocks past its deadline (bounded wall-clock per call);
//  2. the process never dies (SIGPIPE, crashes: the server and the
//     clients share this test process);
//  3. every failure surfaces as a *typed* Status — after retry
//     exhaustion specifically DEADLINE_EXCEEDED (budget) or
//     UNAVAILABLE (attempts);
//  4. the database stays uncorrupted — the tier-1 read checks re-run
//     over a clean connection after every round.
//
// The deterministic sweep additionally asserts every fault site was
// actually hit (FaultInjectingTransport::ProcessStats).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "net/client.h"
#include "net/connection.h"
#include "net/protocol.h"
#include "net/retry.h"
#include "net/server.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "quel/quel.h"
#include "rel/value.h"

namespace mdm {
namespace {

using net::FaultInjectingTransport;
using net::FaultPlan;

int64_t ElapsedMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

class ChaosTest : public ::testing::Test {
 protected:
  static constexpr int kNotes = 60;
  static constexpr uint32_t kDeadlineMs = 8000;
  static constexpr const char* kRead =
      "range of n is NOTE\nretrieve (n.name)";
  static constexpr const char* kCount =
      "retrieve (k = count(NOTE.name))";

  void SetUp() override {
    auto ddl = ddl::ExecuteDdl(R"(
      define entity CHORD (name = integer)
      define entity NOTE (name = integer)
      define ordering note_in_chord (NOTE) under CHORD
    )",
                               &db_);
    ASSERT_TRUE(ddl.ok());
    auto chord = db_.CreateEntity("CHORD");
    ASSERT_TRUE(chord.ok());
    ASSERT_TRUE(db_.SetAttribute(*chord, "name", rel::Value::Int(1)).ok());
    for (int i = 0; i < kNotes; ++i) {
      auto note = db_.CreateEntity("NOTE");
      ASSERT_TRUE(note.ok());
      ASSERT_TRUE(db_.SetAttribute(*note, "name", rel::Value::Int(i)).ok());
      ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, *note).ok());
    }
    appended_min_ = appended_max_ = 0;
  }

  void StartServer(net::ServerOptions opts = {}) {
    opts.port = 0;
    opts.rows_per_page = 8;  // multi-page replies: faults land mid-stream
    if (opts.handshake_timeout_ms == 10'000) opts.handshake_timeout_ms = 1000;
    if (opts.write_timeout_ms == 10'000) opts.write_timeout_ms = 1000;
    server_ = std::make_unique<net::Server>(&db_, opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    FailpointRegistry::Global()->Reset();
    if (server_) server_->Stop();
  }

  /// Client options whose transport is wrapped in a seeded
  /// FaultInjectingTransport; `*out` (optional) tracks the most
  /// recently dialed transport so a test can arm FailAtOp.
  net::ClientOptions FaultyOptions(FaultPlan plan,
                                   FaultInjectingTransport** out = nullptr) {
    net::ClientOptions copts;
    copts.deadline_ms = kDeadlineMs;
    copts.attempt_timeout_ms = 250;  // rescues swallowed (dropped) frames
    copts.retry.max_attempts = 6;
    copts.retry.initial_backoff_ms = 1;
    copts.retry.max_backoff_ms = 8;
    copts.retry.jitter_seed = plan.seed;
    // Each dial perturbs the seed deterministically: a reconnect must
    // not replay the exact fault sequence that killed the previous
    // transport, or no retry could ever heal (groundhog-day chaos).
    auto dials = std::make_shared<std::atomic<uint64_t>>(0);
    copts.transport_factory =
        [plan, out, dials](const std::string& host, uint16_t port,
                           uint32_t timeout_ms)
        -> Result<std::unique_ptr<net::Transport>> {
      auto base = net::DialTcpTransport(host, port, timeout_ms);
      if (!base.ok()) return base.status();
      FaultPlan dialed = plan;
      dialed.seed = plan.seed + dials->fetch_add(1) * 0x9E3779B97F4A7C15ull;
      auto faulty = std::make_unique<FaultInjectingTransport>(
          std::move(*base), dialed);
      if (out != nullptr) *out = faulty.get();
      return std::unique_ptr<net::Transport>(std::move(faulty));
    };
    return copts;
  }

  /// The exhaustion contract: a failed call is typed UNAVAILABLE or
  /// DEADLINE_EXCEEDED, nothing else, and no call overran its deadline.
  static void ExpectTypedOutcome(const Status& s, int64_t elapsed_ms,
                                 const std::string& what) {
    EXPECT_TRUE(s.code() == StatusCode::kUnavailable ||
                s.code() == StatusCode::kDeadlineExceeded)
        << what << ": " << s.ToString();
    EXPECT_TRUE(s.error_code() == ErrorCode::UNAVAILABLE ||
                s.error_code() == ErrorCode::DEADLINE_EXCEEDED)
        << what << ": " << s.ToString();
    // Generous sanitizer slack, but the same order of magnitude: a hang
    // would blow far past this.
    EXPECT_LT(elapsed_ms, static_cast<int64_t>(kDeadlineMs) + 4000) << what;
  }

  /// Re-runs the tier-1 reads over a clean (fault-free) connection:
  /// count and ordering traversal both still see every note.
  void VerifyDbIntact(const std::string& when) {
    auto conn = Connection::Remote("127.0.0.1", server_->port());
    ASSERT_TRUE(conn.ok()) << when << ": " << conn.status().ToString();
    auto count = conn->Execute(kCount);
    ASSERT_TRUE(count.ok()) << when << ": " << count.status().ToString();
    int64_t expect_max = kNotes + appended_max_;
    int64_t expect_min = kNotes + appended_min_;
    EXPECT_GE(count->At(0, 0).AsInt(), expect_min) << when;
    EXPECT_LE(count->At(0, 0).AsInt(), expect_max) << when;
    auto under = conn->Execute(
        "range of n is NOTE\nrange of c is CHORD\n"
        "retrieve (k = count(n)) "
        "where n under c in note_in_chord and c.name = 1");
    ASSERT_TRUE(under.ok()) << when << ": " << under.status().ToString();
    EXPECT_EQ(under->At(0, 0).AsInt(), kNotes) << when;
  }

  er::Database db_;
  std::unique_ptr<net::Server> server_;
  // Appends attempted under fault injection: the client may not learn
  // whether one applied, so the count check tracks a [min, max] window.
  int64_t appended_min_ = 0;
  int64_t appended_max_ = 0;
};

// ---------------------------------------------------------------------
// Deterministic fault-site sweep: every FaultKind armed at a range of
// I/O boundaries (send, early recv, mid-stream recv). With one-shot
// faults and retries on, every read must heal to success.

TEST_F(ChaosTest, DeterministicFaultSiteSweepHealsEveryKind) {
  StartServer();
  const FaultKind kinds[] = {
      FaultKind::kError,      FaultKind::kShortWrite,
      FaultKind::kTornWrite,  FaultKind::kCorrupt,
      FaultKind::kDisconnect, FaultKind::kDelay,
      FaultKind::kDrop,
  };
  // Boundary 1 is the request send; later ones land in the multi-page
  // response stream (1 send + ~2 recvs per page).
  const uint64_t boundaries[] = {1, 2, 3, 7, 11};
  FaultInjectingTransport::ResetProcessStats();
  int scenarios = 0;
  for (FaultKind kind : kinds) {
    for (uint64_t at : boundaries) {
      SCOPED_TRACE(std::string(FaultKindName(kind)) + " at op " +
                   std::to_string(at));
      FaultInjectingTransport* t = nullptr;
      FaultPlan plan;
      plan.seed = 1000 + scenarios;
      auto conn = Connection::Remote("127.0.0.1", server_->port(),
                                     FaultyOptions(plan, &t));
      ASSERT_TRUE(conn.ok()) << conn.status().ToString();
      ASSERT_NE(t, nullptr);
      auto before = FaultInjectingTransport::ProcessStats();
      t->FailAtOp(t->ops() + at, kind);
      auto t0 = std::chrono::steady_clock::now();
      auto rs = conn->Execute(kRead);
      int64_t elapsed = ElapsedMs(t0);
      EXPECT_LT(elapsed, static_cast<int64_t>(kDeadlineMs) + 4000);
      if (kind == FaultKind::kCorrupt && !rs.ok()) {
        // One corruption shape is not healable: a flipped byte in the
        // *request header* that still parses (bad version / length /
        // type) draws a typed echo from the server instead of a CRC
        // bounce. Typed, bounded, no hang — the invariants hold.
        EXPECT_TRUE(rs.status().code() == StatusCode::kInvalidArgument ||
                    rs.status().code() == StatusCode::kResourceExhausted)
            << rs.status().ToString();
      } else {
        // One-shot fault + retries: the read heals, in bounded time.
        ASSERT_TRUE(rs.ok()) << rs.status().ToString();
        EXPECT_EQ(rs->rows.size(), static_cast<size_t>(kNotes));
      }
      // The armed site actually fired.
      EXPECT_GE(FaultInjectingTransport::ProcessStats().injected(),
                before.injected() + 1);
      ++scenarios;
    }
  }
  EXPECT_EQ(scenarios, 35);
  // Every fault site in the taxonomy was hit during the sweep.
  auto stats = FaultInjectingTransport::ProcessStats();
  EXPECT_GE(stats.delays, 1u);
  EXPECT_GE(stats.corruptions, 1u);
  EXPECT_GE(stats.truncations, 1u);
  EXPECT_GE(stats.short_writes, 1u);
  EXPECT_GE(stats.short_reads, 1u);
  EXPECT_GE(stats.closes, 1u);
  EXPECT_GE(stats.drops, 1u);
  EXPECT_GE(stats.errors, 1u);
  VerifyDbIntact("after deterministic sweep");
}

// ---------------------------------------------------------------------
// Probabilistic storms: seeded Bernoulli faults on every client I/O
// boundary. Reads either succeed or fail typed; never a hang, never a
// crash, never a corrupted database.

TEST_F(ChaosTest, SeededFaultStormsKeepEveryInvariant) {
  StartServer();
  int scenarios = 0;
  for (uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    for (double p : {0.05, 0.15}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " p " +
                   std::to_string(p));
      FaultPlan plan;
      plan.seed = seed;
      plan.p_fault = p;
      plan.delay_ms = 1;
      auto copts = FaultyOptions(plan);

      // Connecting itself may hit faults; every failure must be typed.
      std::unique_ptr<Connection> conn;
      for (int tries = 0; tries < 10 && conn == nullptr; ++tries) {
        auto t0 = std::chrono::steady_clock::now();
        auto c = Connection::Remote("127.0.0.1", server_->port(), copts);
        if (c.ok()) {
          conn = std::make_unique<Connection>(std::move(*c));
        } else {
          ExpectTypedOutcome(c.status(), ElapsedMs(t0), "connect");
        }
      }
      ASSERT_NE(conn, nullptr) << "could not connect in 10 tries";

      int ok = 0, failed = 0;
      for (int i = 0; i < 12; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        auto rs = conn->Execute(kRead);
        int64_t elapsed = ElapsedMs(t0);
        if (rs.ok()) {
          ++ok;
          // A success is a *correct* success: all rows, in order.
          ASSERT_EQ(rs->rows.size(), static_cast<size_t>(kNotes));
          for (int r = 0; r < kNotes; ++r)
            ASSERT_EQ(rs->At(r, 0).AsInt(), r);
        } else {
          ++failed;
          ExpectTypedOutcome(rs.status(), elapsed, "read");
        }
      }
      // Retries make the low-fault rounds mostly clean; at any rate
      // every call resolved one way or the other.
      EXPECT_EQ(ok + failed, 12);
      if (p <= 0.05) {
        EXPECT_GT(ok, 0);
      }
      VerifyDbIntact("after storm");
      ++scenarios;
    }
  }
  EXPECT_EQ(scenarios, 10);
}

// ---------------------------------------------------------------------
// Mutations under fault injection: never transparently retried, and the
// database ends in an explainable state (applied at most once).

TEST_F(ChaosTest, MutationsUnderFaultsApplyAtMostOnce) {
  StartServer();
  obs::Counter* retries = obs::Registry::Global()->GetCounter(
      "mdm_net_client_retries_total", "");
  int scenarios = 0;
  for (uint64_t seed : {7u, 8u, 9u, 10u, 11u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultPlan plan;
    plan.seed = seed;
    plan.p_fault = 0.25;
    plan.delay_ms = 1;
    // Weights without corruption: a corrupted *request* frame bounces
    // off the server CRC harmlessly, but this test wants the harder
    // cases — lost requests and dead links — where the client cannot
    // know whether the append applied.
    plan.w_corrupt = 0;
    auto copts = FaultyOptions(plan);

    std::unique_ptr<Connection> conn;
    for (int tries = 0; tries < 10 && conn == nullptr; ++tries) {
      auto c = Connection::Remote("127.0.0.1", server_->port(), copts);
      if (c.ok()) conn = std::make_unique<Connection>(std::move(*c));
    }
    ASSERT_NE(conn, nullptr);

    uint64_t retries_before = retries->value();
    auto t0 = std::chrono::steady_clock::now();
    auto rs = conn->Execute("append to NOTE (name = " +
                            std::to_string(9000 + scenarios) + ")");
    int64_t elapsed = ElapsedMs(t0);
    if (rs.ok()) {
      ++appended_min_;
      ++appended_max_;
    } else {
      ExpectTypedOutcome(rs.status(), elapsed, "append");
      // The request may or may not have reached the server before the
      // fault; either end state is legal, but double-apply is not.
      ++appended_max_;
    }
    // Mutations are never transparently retried.
    EXPECT_EQ(retries->value(), retries_before);
    VerifyDbIntact("after faulty append");
    ++scenarios;
  }
  EXPECT_EQ(scenarios, 5);
}

// ---------------------------------------------------------------------
// Server-side fault injection: the *server's* byte stream misbehaves
// (mdmd --fault-inject). Clean clients with retries ride it out; the
// server survives its own flaky sockets.

TEST_F(ChaosTest, ServerSideFaultsDoNotKillTheServer) {
  int scenarios = 0;
  for (uint64_t seed : {101u, 202u}) {
    SCOPED_TRACE("server seed " + std::to_string(seed));
    net::ServerOptions sopts;
    FaultPlan plan;
    plan.seed = seed;
    plan.p_fault = 0.08;
    plan.delay_ms = 1;
    plan.w_drop = 0;  // a server-side swallowed reply needs only the
                      // client's attempt timeout, covered above; keep
                      // this round fast
    sopts.transport_factory = [plan](int fd) {
      return std::make_unique<FaultInjectingTransport>(
          std::make_unique<net::TcpTransport>(fd), plan);
    };
    StartServer(sopts);

    net::ClientOptions copts;
    copts.deadline_ms = kDeadlineMs;
    copts.attempt_timeout_ms = 250;
    copts.retry.max_attempts = 6;
    copts.retry.initial_backoff_ms = 1;
    copts.retry.max_backoff_ms = 8;

    std::unique_ptr<Connection> conn;
    for (int tries = 0; tries < 10 && conn == nullptr; ++tries) {
      auto t0 = std::chrono::steady_clock::now();
      auto c = Connection::Remote("127.0.0.1", server_->port(), copts);
      if (c.ok()) {
        conn = std::make_unique<Connection>(std::move(*c));
      } else {
        ExpectTypedOutcome(c.status(), ElapsedMs(t0), "connect");
      }
    }
    ASSERT_NE(conn, nullptr);

    for (int i = 0; i < 10; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      auto rs = conn->Execute(kRead);
      int64_t elapsed = ElapsedMs(t0);
      if (rs.ok()) {
        ASSERT_EQ(rs->rows.size(), static_cast<size_t>(kNotes));
      } else {
        ExpectTypedOutcome(rs.status(), elapsed, "read via faulty server");
      }
    }
    VerifyDbIntact("after server-side faults");
    server_->Stop();
    server_.reset();
    ++scenarios;
  }
  EXPECT_EQ(scenarios, 2);
}

// ---------------------------------------------------------------------
// The PR 1 failpoint machinery reaches socket I/O: points "net.send"
// and "net.recv" on the process-global registry fire inside any
// FaultInjectingTransport.

TEST_F(ChaosTest, GlobalFailpointsReachSocketIo) {
  StartServer();
  FaultPlan plan;  // p_fault 0: only the registry injects
  plan.seed = 5;
  auto copts = FaultyOptions(plan);

  {  // net.send: the first send after arming dies, the read heals.
    auto conn =
        Connection::Remote("127.0.0.1", server_->port(), copts);
    ASSERT_TRUE(conn.ok());
    FaultInjectingTransport::ResetProcessStats();
    FailpointRegistry::Global()->Arm(
        "net.send", Failpoint::FailNth(1, FaultKind::kError));
    auto rs = conn->Execute(kRead);
    FailpointRegistry::Global()->Reset();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_GE(FaultInjectingTransport::ProcessStats().errors, 1u);
  }
  {  // net.recv: the second recv hard-closes, the read heals.
    auto conn =
        Connection::Remote("127.0.0.1", server_->port(), copts);
    ASSERT_TRUE(conn.ok());
    FaultInjectingTransport::ResetProcessStats();
    FailpointRegistry::Global()->Arm(
        "net.recv", Failpoint::FailNth(2, FaultKind::kDisconnect));
    auto rs = conn->Execute(kRead);
    FailpointRegistry::Global()->Reset();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_GE(FaultInjectingTransport::ProcessStats().closes, 1u);
  }
  VerifyDbIntact("after failpoint scenarios");
}

}  // namespace
}  // namespace mdm

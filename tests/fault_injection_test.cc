// Fault-injection suite: the failpoint registry itself, the
// FaultInjecting{DiskManager,WalSink} decorators, physical-level tears
// caught by page checksums, and DurableDatabase behavior under injected
// snapshot/journal failures (torn WAL tails, bit-flipped records,
// corrupt snapshots).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "er/persist.h"
#include "rel/value.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/wal.h"

namespace mdm::storage {
namespace {

TEST(FailpointTest, DisarmedNeverFires) {
  Failpoint fp;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fp.Eval().fired());
  EXPECT_EQ(fp.fires(), 0u);
}

TEST(FailpointTest, FailNthFiresExactlyOnce) {
  Failpoint fp = Failpoint::FailNth(3, FaultKind::kError);
  EXPECT_FALSE(fp.Eval().fired());
  EXPECT_FALSE(fp.Eval().fired());
  FaultDecision d = fp.Eval();
  EXPECT_EQ(d.kind, FaultKind::kError);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fp.Eval().fired());
  EXPECT_EQ(fp.hits(), 13u);
  EXPECT_EQ(fp.fires(), 1u);
}

TEST(FailpointTest, ProbabilityStreamIsDeterminedBySeed) {
  Failpoint a = Failpoint::FailWithProbability(0.3, 42, FaultKind::kError);
  Failpoint b = Failpoint::FailWithProbability(0.3, 42, FaultKind::kError);
  int fires = 0;
  for (int i = 0; i < 500; ++i) {
    bool fa = a.Eval().fired();
    EXPECT_EQ(fa, b.Eval().fired()) << "diverged at eval " << i;
    fires += fa;
  }
  EXPECT_GT(fires, 80);   // ~150 expected
  EXPECT_LT(fires, 250);
}

TEST(FailpointTest, PowerCutLatchesAndCountsIo) {
  FailpointRegistry reg;
  EXPECT_FALSE(reg.armed());
  reg.Eval("a");  // disarmed: not counted
  EXPECT_EQ(reg.io_count(), 0u);
  reg.ArmPowerCutAtIo(3);
  EXPECT_FALSE(reg.Eval("a").fired());
  EXPECT_FALSE(reg.Eval("b").fired());
  EXPECT_EQ(reg.Eval("c").kind, FaultKind::kPowerCut);
  EXPECT_TRUE(reg.power_out());
  EXPECT_EQ(reg.Eval("d").kind, FaultKind::kError);
  EXPECT_EQ(reg.io_count(), 4u);
  reg.Reset();
  EXPECT_FALSE(reg.armed());
  EXPECT_FALSE(reg.Eval("a").fired());
  EXPECT_EQ(reg.io_count(), 0u);
}

class FaultDiskTest : public testing::Test {
 protected:
  FaultDiskTest() : dm_(&base_, &reg_) {}
  FailpointRegistry reg_;
  MemoryDiskManager base_;
  FaultInjectingDiskManager dm_;
};

TEST_F(FaultDiskTest, NthWriteFailsWithIoError) {
  PageId id;
  ASSERT_TRUE(dm_.AllocatePage(&id).ok());
  uint8_t buf[kPageSize] = {1};
  reg_.Arm("disk.write", Failpoint::FailNth(2, FaultKind::kError));
  EXPECT_TRUE(dm_.WritePage(id, buf).ok());
  EXPECT_EQ(dm_.WritePage(id, buf).code(), StatusCode::kIoError);
  EXPECT_TRUE(dm_.WritePage(id, buf).ok());
}

TEST_F(FaultDiskTest, TornWriteIsSilentAndLeavesMixedPage) {
  PageId id;
  ASSERT_TRUE(dm_.AllocatePage(&id).ok());
  uint8_t old_data[kPageSize];
  uint8_t new_data[kPageSize];
  std::memset(old_data, 0xAA, kPageSize);
  std::memset(new_data, 0xBB, kPageSize);
  ASSERT_TRUE(dm_.WritePage(id, old_data).ok());
  reg_.Arm("disk.write",
           Failpoint::FailNth(1, FaultKind::kTornWrite, 0.25));
  EXPECT_TRUE(dm_.WritePage(id, new_data).ok());  // silent tear
  uint8_t out[kPageSize];
  ASSERT_TRUE(dm_.ReadPage(id, out).ok());
  EXPECT_EQ(out[0], 0xBB);                 // new prefix landed
  EXPECT_EQ(out[kPageSize - 1], 0xAA);     // old tail survived
}

TEST_F(FaultDiskTest, ShortWriteReportsErrorAndTearsPage) {
  PageId id;
  ASSERT_TRUE(dm_.AllocatePage(&id).ok());
  uint8_t new_data[kPageSize];
  std::memset(new_data, 0xCC, kPageSize);
  reg_.Arm("disk.write",
           Failpoint::FailNth(1, FaultKind::kShortWrite, 0.5));
  EXPECT_EQ(dm_.WritePage(id, new_data).code(), StatusCode::kIoError);
  uint8_t out[kPageSize];
  ASSERT_TRUE(dm_.ReadPage(id, out).ok());
  EXPECT_EQ(out[0], 0xCC);
  EXPECT_EQ(out[kPageSize - 1], 0x00);  // freshly allocated page was zero
}

TEST_F(FaultDiskTest, ReadAndSyncFailures) {
  PageId id;
  ASSERT_TRUE(dm_.AllocatePage(&id).ok());
  uint8_t buf[kPageSize] = {};
  reg_.Arm("disk.read", Failpoint::FailNth(1, FaultKind::kError));
  reg_.Arm("disk.sync", Failpoint::FailNth(1, FaultKind::kError));
  EXPECT_EQ(dm_.ReadPage(id, buf).code(), StatusCode::kIoError);
  EXPECT_TRUE(dm_.ReadPage(id, buf).ok());
  EXPECT_EQ(dm_.Sync().code(), StatusCode::kIoError);
  EXPECT_TRUE(dm_.Sync().ok());
}

/// Tests below arm the process-global registry (the physical failpoints
/// inside FileDiskManager / FileWalSink / the snapshot writer) and must
/// leave it clean.
class GlobalFaultTest : public testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global()->Reset(); }
  void TearDown() override { FailpointRegistry::Global()->Reset(); }

  static std::string TempPath(const char* name) {
    std::string path = testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    std::remove((path + ".wal").c_str());
    for (int e = 1; e <= 4; ++e)
      std::remove((path + ".wal." + std::to_string(e)).c_str());
    return path;
  }
};

TEST_F(GlobalFaultTest, PhysicalTornPageWriteCaughtByChecksumOnRead) {
  std::string path = TempPath("torn_page.db");
  auto dm = FileDiskManager::Open(path);
  ASSERT_TRUE(dm.ok());
  PageId id;
  ASSERT_TRUE((*dm)->AllocatePage(&id).ok());
  uint8_t data[kPageSize];
  std::memset(data, 0x42, kPageSize);
  // Tear the physical frame write: a prefix (header + some data) lands,
  // the write reports success — exactly what a power cut leaves.
  FailpointRegistry::Global()->Arm(
      "disk.file.write", Failpoint::FailNth(1, FaultKind::kTornWrite, 0.5));
  EXPECT_TRUE((*dm)->WritePage(id, data).ok());
  uint8_t out[kPageSize];
  EXPECT_EQ((*dm)->ReadPage(id, out).code(), StatusCode::kCorruption);
  // An intact page on the same file still reads fine.
  EXPECT_TRUE((*dm)->ReadPage(0, out).ok());
  std::remove(path.c_str());
}

TEST_F(GlobalFaultTest, TornWalAppendRecoversCommittedPrefix) {
  MemoryWalSink base;
  FailpointRegistry reg;
  FaultInjectingWalSink sink(&base, &reg);
  WalWriter wal(&sink);
  auto t1 = wal.Begin();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(wal.LogOp(*t1, "keep-me").ok());
  ASSERT_TRUE(wal.Commit(*t1).ok());
  // Tear txn 2's commit record silently: begin, op, then a torn commit.
  reg.Arm("walsink.append",
          Failpoint::FailNth(3, FaultKind::kTornWrite, 0.4));
  auto t2 = wal.Begin();
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(wal.LogOp(*t2, "lost").ok());
  ASSERT_TRUE(wal.Commit(*t2).ok());  // silent tear under the sync
  std::vector<std::string> applied;
  ASSERT_TRUE(WalRecover(base.bytes(), [&](const WalRecord& rec) {
                applied.push_back(rec.payload);
                return Status::OK();
              })
                  .ok());
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], "keep-me");
}

TEST_F(GlobalFaultTest, WalSinkSyncFailureSurfacesToCommit) {
  MemoryWalSink base;
  FailpointRegistry reg;
  FaultInjectingWalSink sink(&base, &reg);
  WalWriter wal(&sink);
  auto t1 = wal.Begin();
  ASSERT_TRUE(t1.ok());
  reg.Arm("walsink.sync", Failpoint::FailNth(1, FaultKind::kError));
  EXPECT_EQ(wal.Commit(*t1).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace mdm::storage

namespace mdm::er {
namespace {

using rel::Value;

class PersistFaultTest : public testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global()->Reset(); }
  void TearDown() override { FailpointRegistry::Global()->Reset(); }

  static std::string TempPath(const char* name) {
    std::string path = testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    std::remove((path + ".wal").c_str());
    for (int e = 1; e <= 4; ++e)
      std::remove((path + ".wal." + std::to_string(e)).c_str());
    return path;
  }

  static void DefineSchemaAndNotes(Database* db, int notes) {
    ASSERT_TRUE(db->DefineEntityType(
                      {"NOTE", {{"pitch", rel::ValueType::kInt, ""}}})
                    .ok());
    for (int i = 0; i < notes; ++i) {
      auto note = db->CreateEntity("NOTE");
      ASSERT_TRUE(note.ok());
      ASSERT_TRUE(
          db->SetAttribute(*note, "pitch", Value::Int(60 + i)).ok());
    }
  }
};

TEST_F(PersistFaultTest, SnapshotWriteFailureKeepsOldPairRecoverable) {
  std::string path = TempPath("snap_fail.mdm");
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok());
    DefineSchemaAndNotes((*handle)->db(), 3);
    FailpointRegistry::Global()->Arm(
        "snapshot.write", Failpoint::FailNth(1, FaultKind::kError));
    EXPECT_EQ((*handle)->Checkpoint().code(), StatusCode::kIoError);
    FailpointRegistry::Global()->Reset();
    // The journal is still live: mutations keep working.
    EXPECT_TRUE((*handle)->db()->CreateEntity("NOTE").ok());
  }
  auto handle = DurableDatabase::Open(path);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ((*handle)->db()->TotalEntities(), 4u);
}

TEST_F(PersistFaultTest, SilentlyTornSnapshotCaughtBeforeJournalRotation) {
  std::string path = TempPath("snap_torn.mdm");
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok());
    DefineSchemaAndNotes((*handle)->db(), 3);
    // The snapshot write tears but reports success; the read-back
    // verification must catch it while the journal is still intact.
    FailpointRegistry::Global()->Arm(
        "snapshot.write",
        Failpoint::FailNth(1, FaultKind::kTornWrite, 0.6));
    EXPECT_EQ((*handle)->Checkpoint().code(), StatusCode::kCorruption);
    FailpointRegistry::Global()->Reset();
    EXPECT_EQ((*handle)->epoch(), 0u);  // rotation never happened
  }
  auto handle = DurableDatabase::Open(path);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ((*handle)->db()->TotalEntities(), 3u);
}

TEST_F(PersistFaultTest, CrashBetweenSnapshotRenameAndJournalRotation) {
  std::string path = TempPath("snap_window.mdm");
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok());
    DefineSchemaAndNotes((*handle)->db(), 3);
    // The new snapshot lands, but creating the next epoch's journal
    // fails — the historical double-apply window.
    FailpointRegistry::Global()->Arm(
        "wal.truncate", Failpoint::FailNth(1, FaultKind::kError));
    EXPECT_EQ((*handle)->Checkpoint().code(), StatusCode::kIoError);
    FailpointRegistry::Global()->Reset();
    // The handle is poisoned: no mutation may be acknowledged without
    // a journal to log it.
    EXPECT_EQ((*handle)->db()->CreateEntity("NOTE").status().code(),
              StatusCode::kIoError);
  }
  // The old epoch-0 journal still exists on disk; recovery must use the
  // new snapshot and must NOT replay the old journal on top of it.
  auto handle = DurableDatabase::Open(path);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ((*handle)->db()->TotalEntities(), 3u);
}

TEST_F(PersistFaultTest, CorruptSnapshotSurfacesCorruptionNotHalfRestore) {
  std::string path = TempPath("snap_corrupt.mdm");
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok());
    DefineSchemaAndNotes((*handle)->db(), 5);
    ASSERT_TRUE((*handle)->Checkpoint().ok());
  }
  // Flip one payload byte in the snapshot.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -7, SEEK_END), 0);
    int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, -7, SEEK_END), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  auto handle = DurableDatabase::Open(path);
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kCorruption);
  auto snap = LoadSnapshot(path);
  EXPECT_EQ(snap.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistFaultTest, BitFlippedWalRecordRecoversCleanPrefix) {
  std::string path = TempPath("wal_flip.mdm");
  std::string wal_file;
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok());
    DefineSchemaAndNotes((*handle)->db(), 6);
    wal_file = (*handle)->wal_path();
  }
  // Flip a byte ~60% into the journal: every record from there on is
  // dead, everything before replays.
  {
    auto bytes = storage::ReadWalFile(wal_file);
    ASSERT_TRUE(bytes.ok());
    ASSERT_GT(bytes->size(), 20u);
    long pos = static_cast<long>(bytes->size() * 6 / 10);
    std::FILE* f = std::fopen(wal_file.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, pos, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, pos, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto handle = DurableDatabase::Open(path);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  // A strict prefix survived, and the database stays writable.
  EXPECT_LT((*handle)->db()->TotalEntities(), 7u);
  EXPECT_TRUE((*handle)->db()->Exists(1));
  EXPECT_TRUE((*handle)->db()->CreateEntity("NOTE").ok());
}

}  // namespace
}  // namespace mdm::er

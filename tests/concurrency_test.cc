// Concurrent multi-client MDM coverage (ctest label: concurrency).
//
// Two complementary styles:
//
//  * Deterministic interleaving harness — real threads, but a
//    coordinator grants one turn at a time from a seeded schedule
//    (common/random.h), so every interleaving is reproducible and the
//    readers can assert EXACT expected states, not just invariants.
//  * Free-running stress — N reader threads race 1 mutator under real
//    contention, asserting snapshot invariants that only hold if reads
//    are never torn (run under the tsan preset for enforcement).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "er/persist.h"
#include "er/session.h"
#include "obs/metrics.h"
#include "net/connection.h"
#include "quel/quel.h"
#include "rel/value.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"

namespace mdm {
namespace {

using er::Database;
using er::EntityId;
using er::OrderingHandle;
using rel::Value;

// ----------------------------------------------------------------------
// The deterministic interleaving harness.
//
// Workers block until the coordinator grants them a turn; the
// coordinator blocks until the turn completes. Exactly one worker runs
// at any moment, in an order drawn from a seeded Rng, so a failing
// seed replays the identical interleaving. The mutex/condvar handoff
// also gives TSan a clean happens-before chain for the shared model
// state the assertions compare against.
// ----------------------------------------------------------------------
class TurnScheduler {
 public:
  void GrantTurn(int worker) {
    std::unique_lock<std::mutex> lock(mu_);
    turn_ = worker;
    cv_.notify_all();
    cv_.wait(lock, [&] { return turn_ == kIdle; });
  }

  /// Worker side: blocks until granted a turn (true) or shut down
  /// (false).
  bool AwaitTurn(int worker) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return turn_ == worker || shutdown_; });
    return turn_ == worker;
  }

  void CompleteTurn() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      turn_ = kIdle;
    }
    cv_.notify_all();
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
  }

 private:
  static constexpr int kIdle = -1;
  std::mutex mu_;
  std::condition_variable cv_;
  int turn_ = kIdle;
  bool shutdown_ = false;
};

/// Builds a seeded schedule: `per_worker` turns for each of `workers`
/// workers, Fisher-Yates shuffled.
std::vector<int> MakeSchedule(uint64_t seed, int workers, int per_worker) {
  std::vector<int> slots;
  for (int w = 0; w < workers; ++w)
    slots.insert(slots.end(), per_worker, w);
  Rng rng(seed);
  for (size_t i = slots.size(); i > 1; --i)
    std::swap(slots[i - 1], slots[rng.Uniform(i)]);
  return slots;
}

EntityId MustCreate(Database* db, const std::string& type, int name) {
  auto id = db->CreateEntity(type);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(db->SetAttribute(*id, "name", Value::Int(name)).ok());
  return *id;
}

// ----------------------------------------------------------------------
// Deterministic: N readers and 1 mutator on a seeded schedule. The
// mutator rotates a chord's sibling order one complete step per turn;
// readers assert the EXACT expected child order and that every
// Before/After/PositionOf answer matches it — any torn or stale index
// snapshot is an immediate mismatch, and the failing seed reproduces.
// ----------------------------------------------------------------------
class DeterministicScheduleTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DeterministicScheduleTest, ReadersSeeExactPrePostMutationStates) {
  Database db;
  ASSERT_TRUE(ddl::ExecuteDdl(R"(
    define entity CHORD (name = integer)
    define entity NOTE (name = integer)
    define ordering note_in_chord (NOTE) under CHORD
  )",
                              &db)
                  .ok());
  const EntityId chord = MustCreate(&db, "CHORD", 1);
  std::vector<EntityId> model;
  for (int n = 0; n < 5; ++n) {
    EntityId note = MustCreate(&db, "NOTE", n);
    ASSERT_TRUE(db.AppendChild("note_in_chord", chord, note).ok());
    model.push_back(note);
  }
  OrderingHandle h = *db.ResolveOrderingHandle("note_in_chord");
  er::Session session(&db);

  constexpr int kReaders = 3;
  constexpr int kTurnsPerWorker = 32;
  TurnScheduler sched;
  std::atomic<int> failures{0};

  // Worker 0: one full rotation per turn, inside ONE WriteGuard, so no
  // reader may observe the half-rotated (note detached) state. `model`
  // is only touched by the turn holder; the scheduler's mutex orders it.
  auto mutator = [&] {
    while (sched.AwaitTurn(0)) {
      EntityId first = model.front();
      {
        auto w = session.Write();
        if (!w->RemoveChild(h, first).ok() ||
            !w->AppendChild(h, chord, first).ok())
          failures.fetch_add(1);
      }
      model.erase(model.begin());
      model.push_back(first);
      sched.CompleteTurn();
    }
  };
  auto reader = [&](int id) {
    while (sched.AwaitTurn(id)) {
      auto r = session.Read();
      auto kids = r->Children(h, chord);
      if (!kids.ok() || *kids != model) failures.fetch_add(1);
      // Every pairwise predicate must agree with the model order.
      for (size_t i = 0; i < model.size(); ++i) {
        auto pos = r->PositionOf(h, model[i]);
        if (!pos.ok() || *pos != i) failures.fetch_add(1);
        for (size_t j = i + 1; j < model.size(); ++j) {
          auto before = r->Before(h, model[i], model[j]);
          auto after = r->After(h, model[i], model[j]);
          if (!before.ok() || !*before) failures.fetch_add(1);
          if (!after.ok() || *after) failures.fetch_add(1);
        }
      }
      sched.CompleteTurn();
    }
  };

  std::vector<std::thread> workers;
  workers.emplace_back(mutator);
  for (int id = 1; id <= kReaders; ++id) workers.emplace_back(reader, id);

  for (int w : MakeSchedule(GetParam(), kReaders + 1, kTurnsPerWorker))
    sched.GrantTurn(w);
  sched.Shutdown();
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SeededSchedules, DeterministicScheduleTest,
                         testing::Values(1u, 7u, 42u, 20260805u));

// ----------------------------------------------------------------------
// Free-running: snapshot reads are never torn. A mutator thread swaps
// two siblings and reparents a subtree between two roots (each change
// one atomic WriteGuard); readers under one ReadGuard must always see
// exactly one of the two legal states for each invariant — a torn rank
// or interval snapshot breaks the XOR.
// ----------------------------------------------------------------------
TEST(FreeRunningConcurrency, SnapshotReadsNeverTornUnderMutation) {
  Database db;
  ASSERT_TRUE(ddl::ExecuteDdl(R"(
    define entity CHORD (name = integer)
    define entity NOTE (name = integer)
    define entity SECTION (name = integer)
    define ordering note_in_chord (NOTE) under CHORD
    define ordering sec_tree (SECTION) under SECTION
  )",
                              &db)
                  .ok());
  const EntityId chord = MustCreate(&db, "CHORD", 1);
  const EntityId x = MustCreate(&db, "NOTE", 1);
  const EntityId y = MustCreate(&db, "NOTE", 2);
  const EntityId z = MustCreate(&db, "NOTE", 3);
  for (EntityId n : {x, y, z})
    ASSERT_TRUE(db.AppendChild("note_in_chord", chord, n).ok());
  const EntityId root_a = MustCreate(&db, "SECTION", 10);
  const EntityId root_b = MustCreate(&db, "SECTION", 11);
  const EntityId mid = MustCreate(&db, "SECTION", 12);
  const EntityId leaf = MustCreate(&db, "SECTION", 13);
  ASSERT_TRUE(db.AppendChild("sec_tree", root_a, mid).ok());
  ASSERT_TRUE(db.AppendChild("sec_tree", mid, leaf).ok());

  OrderingHandle notes = *db.ResolveOrderingHandle("note_in_chord");
  OrderingHandle tree = *db.ResolveOrderingHandle("sec_tree");
  er::Session session(&db);

  constexpr int kReaders = 4;
  constexpr int kReadsPerThread = 1200;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::atomic<uint64_t> states_seen{0};

  std::thread mutator([&] {
    bool on_a = true;
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (i++ % 2 == 0) {
        // Swap x and y (complete swap under one guard).
        auto w = session.Write();
        auto pos = w->PositionOf(notes, x);
        if (!pos.ok()) {
          violations.fetch_add(1);
          continue;
        }
        size_t target = *pos == 0 ? 1 : 0;
        if (!w->RemoveChild(notes, x).ok() ||
            !w->InsertChildAt(notes, chord, x, target).ok())
          violations.fetch_add(1);
      } else {
        // Reparent mid (and with it leaf) to the other root.
        auto w = session.Write();
        if (!w->RemoveChild(tree, mid).ok() ||
            !w->AppendChild(tree, on_a ? root_b : root_a, mid).ok())
          violations.fetch_add(1);
        on_a = !on_a;
      }
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        auto r = session.Read();
        auto xy = r->Before(notes, x, y);
        auto yx = r->Before(notes, y, x);
        // x and y always share the chord: exactly one order holds.
        if (!xy.ok() || !yx.ok() || (*xy == *yx)) violations.fetch_add(1);
        auto za = r->After(notes, z, x);
        if (!za.ok() || !*za) violations.fetch_add(1);  // z stays last
        auto ua = r->Under(tree, leaf, root_a);
        auto ub = r->Under(tree, leaf, root_b);
        // leaf is under exactly one root at every committed state.
        if (!ua.ok() || !ub.ok() || (*ua == *ub)) violations.fetch_add(1);
        auto um = r->Under(tree, leaf, mid);
        if (!um.ok() || !*um) violations.fetch_add(1);
        if (xy.ok() && *xy) states_seen.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true);
  mutator.join();
  EXPECT_EQ(violations.load(), 0);
  // Smoke-check the race actually exercised both orders (not a fixed
  // schedule artifact). With 1200*4 reads this is overwhelmingly likely.
  SUCCEED() << "x-before-y observed " << states_seen.load() << " times";
}

// ----------------------------------------------------------------------
// BufferPool: concurrent clients fetch/latch/write/unpin against a pool
// smaller than the page set. Every page carries the same 8-byte stamp
// at its head and tail; a torn write or a lost update surfaces as a
// head/tail mismatch. Exercises the pool mutex, per-frame latches,
// eviction writebacks, and the stats snapshot.
// ----------------------------------------------------------------------
TEST(BufferPoolConcurrency, ConcurrentClientsSeeUntornPages) {
  storage::MemoryDiskManager disk;
  storage::BufferPool pool(&disk, /*capacity=*/8);
  constexpr int kPages = 32;
  std::vector<storage::PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    ids.push_back((*page)->id);
    ASSERT_TRUE(pool.UnpinPage((*page)->id, /*dirty=*/true).ok());
  }

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::atomic<int> violations{0};
  std::atomic<uint64_t> stamp_source{1};

  auto client = [&](uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < kOpsPerThread; ++i) {
      storage::PageId id = ids[rng.Uniform(kPages)];
      auto page = pool.FetchPage(id);
      if (!page.ok()) {
        violations.fetch_add(1);
        continue;
      }
      storage::Page* p = *page;
      bool write = rng.Bernoulli(0.4);
      if (write) {
        uint64_t stamp = stamp_source.fetch_add(1, std::memory_order_relaxed);
        {
          std::unique_lock<std::shared_mutex> latch(p->latch);
          std::memcpy(p->data, &stamp, sizeof(stamp));
          std::memcpy(p->data + storage::kPageSize - sizeof(stamp), &stamp,
                      sizeof(stamp));
        }
      } else {
        uint64_t head = 0, tail = 0;
        {
          std::shared_lock<std::shared_mutex> latch(p->latch);
          std::memcpy(&head, p->data, sizeof(head));
          std::memcpy(&tail, p->data + storage::kPageSize - sizeof(tail),
                      sizeof(tail));
        }
        if (head != tail) violations.fetch_add(1);
      }
      // Latch released above — pool calls are never made latch-in-hand.
      if (!pool.UnpinPage(id, write).ok()) violations.fetch_add(1);
    }
  };

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) clients.emplace_back(client, 0xC0FFEE + t);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(violations.load(), 0);
  ASSERT_TRUE(pool.FlushAll().ok());
  // Evictions forced writebacks mid-run; the flushed images must be
  // whole too.
  for (storage::PageId id : ids) {
    uint8_t buf[storage::kPageSize];
    ASSERT_TRUE(disk.ReadPage(id, buf).ok());
    uint64_t head = 0, tail = 0;
    std::memcpy(&head, buf, sizeof(head));
    std::memcpy(&tail, buf + storage::kPageSize - sizeof(tail), sizeof(tail));
    EXPECT_EQ(head, tail) << "page " << id;
  }
  // Every client op is exactly one FetchPage (NewPage counts neither).
  storage::BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kOpsPerThread));
}

// ----------------------------------------------------------------------
// QUEL: concurrent retrieves against a mutating client. Each reader's
// count(NOTE.name) sequence must be monotone non-decreasing (appends
// only) and inside [initial, final] — a read overlapping a half-applied
// append, or a stale snapshot after a newer one, breaks monotonicity.
// ----------------------------------------------------------------------
TEST(QuelConcurrency, ConcurrentRetrievesWithMutatingClient) {
  Database db;
  ASSERT_TRUE(
      ddl::ExecuteDdl("define entity NOTE (name = integer)", &db).ok());
  constexpr int64_t kInitial = 40;
  constexpr int64_t kAppends = 120;
  for (int64_t i = 0; i < kInitial; ++i) MustCreate(&db, "NOTE", i);

  std::atomic<int> violations{0};
  std::thread writer([&] {
    mdm::Connection session = mdm::Connection::Local(&db);
    for (int64_t i = 0; i < kAppends; ++i) {
      if (!session.Execute("append to NOTE (name = 900)").ok())
        violations.fetch_add(1);
    }
  });

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      mdm::Connection session = mdm::Connection::Local(&db);
      int64_t last = kInitial;
      for (int i = 0; i < 200; ++i) {
        auto rs = session.Execute("retrieve (c = count(NOTE.name))");
        if (!rs.ok() || rs->rows.size() != 1) {
          violations.fetch_add(1);
          continue;
        }
        int64_t count = rs->rows[0][0].AsInt();
        if (count < last || count > kInitial + kAppends)
          violations.fetch_add(1);
        last = count;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);

  mdm::Connection check = mdm::Connection::Local(&db);
  auto rs = check.Execute("retrieve (c = count(NOTE.name))");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), kInitial + kAppends);
}

// ----------------------------------------------------------------------
// QUEL: one session SHARED by several threads — the parse cache and
// counters are session state, so this hammers the session mutex and the
// atomic ExecStats. Counter totals must come out exact, both on the
// session and on the process-wide obs registry (the PR3 counters,
// verified race-free under load).
// ----------------------------------------------------------------------
TEST(QuelConcurrency, SharedSessionParseCacheAndCountersExact) {
  Database db;
  ASSERT_TRUE(ddl::ExecuteDdl(R"(
    define entity CHORD (name = integer)
    define entity NOTE (name = integer)
    define ordering note_in_chord (NOTE) under CHORD
  )",
                              &db)
                  .ok());
  const EntityId chord = MustCreate(&db, "CHORD", 1);
  for (int n = 0; n < 6; ++n)
    ASSERT_TRUE(
        db.AppendChild("note_in_chord", chord, MustCreate(&db, "NOTE", n))
            .ok());

  const std::vector<std::string> scripts = {
      "retrieve (c = count(NOTE.name))",
      "retrieve (NOTE.name) where NOTE.name > 2",
      "range of n1, n2 is NOTE\n"
      "retrieve (n1.name) where n1 before n2 in note_in_chord "
      "and n2.name = 3",
      "retrieve (m = max(NOTE.name))",
  };

  mdm::Connection shared_conn = mdm::Connection::Local(&db);
  quel::QuelSession& shared = *shared_conn.local_session();
  const uint64_t statements_before =
      obs::Registry::Global()
          ->GetCounter("mdm_quel_statements_total")
          ->value();

  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 100;
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRunsPerThread; ++i) {
        const std::string& script = scripts[(t + i) % scripts.size()];
        if (!shared.Execute(script).ok()) violations.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);

  // Script 2 contains two statements (range + retrieve).
  constexpr uint64_t kTotalRuns = kThreads * kRunsPerThread;
  const uint64_t expected_statements = kTotalRuns + kTotalRuns / 4;
  quel::ExecStats stats = shared.stats();
  EXPECT_EQ(stats.statements, expected_statements);
  // Exactly one parse per distinct script — the session mutex makes the
  // lookup-or-parse-and-insert step atomic.
  EXPECT_EQ(stats.plan_cache_hits, kTotalRuns - scripts.size());
  const uint64_t statements_after =
      obs::Registry::Global()
          ->GetCounter("mdm_quel_statements_total")
          ->value();
  EXPECT_EQ(statements_after - statements_before, expected_statements);
}

// ----------------------------------------------------------------------
// The write-path overhaul's headline read-side claim, asserted via the
// latch counters: a read-only statement is served from a pinned
// snapshot and takes NO latch at all — neither exclusive nor shared.
// ----------------------------------------------------------------------
TEST(QuelConcurrency, ReadOnlyStatementsAcquireNoExclusiveLatch) {
  Database db;
  mdm::Connection conn = mdm::Connection::Local(&db);
  ASSERT_TRUE(conn.Execute("define entity NOTE (name = integer)").ok());
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(
        conn.Execute(StrFormat("append to NOTE (name = %d)", i)).ok());

  obs::Registry* reg = obs::Registry::Global();
  obs::Counter* exclusive =
      reg->GetCounter("mdm_quel_exclusive_latch_total");
  obs::Counter* shared = reg->GetCounter("mdm_quel_shared_latch_total");
  obs::Counter* snapshot =
      reg->GetCounter("mdm_quel_snapshot_reads_total");
  const uint64_t exclusive_before = exclusive->value();
  const uint64_t shared_before = shared->value();
  const uint64_t snapshot_before = snapshot->value();

  constexpr int kReads = 50;
  for (int i = 0; i < kReads; ++i) {
    auto rs = conn.Execute("retrieve (c = count(NOTE.name))");
    ASSERT_TRUE(rs.ok());
    ASSERT_EQ(rs->rows[0][0].AsInt(), 8);
  }

  EXPECT_EQ(exclusive->value() - exclusive_before, 0u)
      << "a read-only statement took the exclusive db latch";
  EXPECT_EQ(shared->value() - shared_before, 0u)
      << "a read-only statement fell back to the shared latch "
         "(no published snapshot?)";
  EXPECT_EQ(snapshot->value() - snapshot_before,
            static_cast<uint64_t>(kReads));
}

// ----------------------------------------------------------------------
// Reader-never-blocks, the direct form: a writer HOLDS the exclusive
// db latch while a reader executes a retrieve. The read must complete
// (against the last published snapshot) while the latch is still held;
// a reader that queues on the latch times out and fails the test.
// ----------------------------------------------------------------------
TEST(QuelConcurrency, ReadersCompleteWhileWriterHoldsExclusiveLatch) {
  Database db;
  mdm::Connection setup = mdm::Connection::Local(&db);
  ASSERT_TRUE(setup.Execute("define entity NOTE (name = integer)").ok());
  constexpr int kNotes = 10;
  for (int i = 0; i < kNotes; ++i)
    ASSERT_TRUE(
        setup.Execute(StrFormat("append to NOTE (name = %d)", i)).ok());

  // Pose as a writer mid-mutation: exclusive latch held, no publishes.
  std::unique_lock<std::shared_mutex> writer_latch(db.latch());

  std::atomic<bool> read_ok{false};
  std::atomic<bool> read_done{false};
  std::thread reader([&] {
    mdm::Connection conn = mdm::Connection::Local(&db);
    auto rs = conn.Execute("retrieve (c = count(NOTE.name))");
    read_ok = rs.ok() && rs->rows.size() == 1 &&
              rs->rows[0][0].AsInt() == kNotes;
    read_done.store(true, std::memory_order_release);
  });

  // The reader must finish while we still hold the latch.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!read_done.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const bool finished_under_latch =
      read_done.load(std::memory_order_acquire);

  writer_latch.unlock();  // let a blocked reader finish so join() returns
  reader.join();
  EXPECT_TRUE(finished_under_latch)
      << "reader blocked behind the exclusive latch instead of reading "
         "the published snapshot";
  EXPECT_TRUE(read_ok.load());
}

// ----------------------------------------------------------------------
// WAL group commit under real contention: N committer threads against
// one journaled database with the coordinator attached. Every append
// must be durable after recovery, and the number of fsync batches the
// coordinator issued must not exceed the number of commits (leader/
// follower amortization never loses a commit, never double-syncs).
// ----------------------------------------------------------------------
TEST(GroupCommitConcurrency, ConcurrentCommittersAllDurableAndBatched) {
  const std::string path =
      testing::TempDir() + "/mdm_group_commit_conc.mdm";
  auto remove_files = [&] {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    std::remove((path + ".wal").c_str());
  };
  remove_files();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 25;
  obs::Counter* groups = obs::Registry::Global()->GetCounter(
      "mdm_wal_group_commits_total");
  uint64_t groups_before = 0;
  {
    auto h = er::DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    (*h)->EnableGroupCommit({/*interval_us=*/200, /*max_batch=*/64});
    er::Database* db = (*h)->db();
    mdm::Connection setup = mdm::Connection::Local(db);
    ASSERT_TRUE(setup.Execute("define entity NOTE (name = integer)").ok());
    groups_before = groups->value();

    std::atomic<int> violations{0};
    std::vector<std::thread> committers;
    for (int t = 0; t < kThreads; ++t) {
      committers.emplace_back([&, t] {
        mdm::Connection conn = mdm::Connection::Local(db);
        for (int i = 0; i < kOpsPerThread; ++i) {
          if (!conn.Execute(StrFormat("append to NOTE (name = %d)",
                                      t * kOpsPerThread + i))
                   .ok())
            violations.fetch_add(1);
        }
      });
    }
    for (std::thread& t : committers) t.join();
    EXPECT_EQ(violations.load(), 0);

    const uint64_t batches = groups->value() - groups_before;
    EXPECT_GE(batches, 1u);
    EXPECT_LE(batches, static_cast<uint64_t>(kThreads * kOpsPerThread));
  }

  // Recovery: every acknowledged commit survives, exactly once.
  auto h = er::DurableDatabase::Open(path);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  mdm::Connection check = mdm::Connection::Local((*h)->db());
  auto rs = check.Execute("retrieve (c = count(NOTE.name))");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), kThreads * kOpsPerThread);
  remove_files();
}

// ----------------------------------------------------------------------
// Recovery paths hold their locks correctly too: replaying a journal
// into a live database under a WriteGuard while readers hammer it.
// ----------------------------------------------------------------------
TEST(FreeRunningConcurrency, JournalReplayUnderWriteGuardExcludesReaders) {
  // Source database with a journal.
  storage::MemoryWalSink sink;
  storage::WalWriter wal(&sink);
  Database source;
  ASSERT_TRUE(
      ddl::ExecuteDdl("define entity NOTE (name = integer)", &source).ok());
  source.AttachJournal(&wal);
  for (int i = 0; i < 30; ++i) MustCreate(&source, "NOTE", i);

  // Target database, same schema, concurrently read while replaying.
  Database db;
  ASSERT_TRUE(
      ddl::ExecuteDdl("define entity NOTE (name = integer)", &db).ok());
  er::Session session(&db);
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = session.Read();
      auto n = r->CountEntities("NOTE");
      // Reads must see 0 (before) or 30 (after): ReplayJournal runs
      // under one WriteGuard, so no intermediate count is visible.
      if (!n.ok() || (*n != 0 && *n != 30)) {
        violations.fetch_add(1);
        break;
      }
      if (*n == 30) break;
    }
  });
  {
    auto w = session.Write();
    ASSERT_TRUE(w->ReplayJournal(sink.bytes()).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(*db.CountEntities("NOTE"), 30u);
}

}  // namespace
}  // namespace mdm

#include <gtest/gtest.h>

#include "ddl/lexer.h"
#include "ddl/parser.h"
#include "er/database.h"

namespace mdm::ddl {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex("define entity NOTE (name = integer) -- comment\n"
                    "x != 3.5 'str' <= >= < > <>");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.type);
  EXPECT_EQ(kinds.front(), TokenType::kIdentifier);
  // The comment is skipped entirely.
  for (const Token& t : *tokens) EXPECT_NE(t.text, "comment");
  // '<>' lexes as not-equals.
  int ne = 0;
  for (const Token& t : *tokens)
    if (t.type == TokenType::kNotEquals) ++ne;
  EXPECT_EQ(ne, 2);  // != and <>
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Lex("578 -12 3.25 \"The Star Spangled Banner\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 578);
  EXPECT_EQ((*tokens)[1].int_value, -12);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 3.25);
  EXPECT_EQ((*tokens)[3].type, TokenType::kString);
  EXPECT_EQ((*tokens)[3].text, "The Star Spangled Banner");
}

TEST(LexerTest, Errors) {
  EXPECT_EQ(Lex("\"unterminated").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Lex("a @ b").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Lex("a ! b").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, LineTracking) {
  auto tokens = Lex("a\nb\n\nc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1u);
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[2].line, 4u);
}

// The paper's §5.1 schema, verbatim (modulo '.'-free attribute syntax).
constexpr char kPaperSchema[] = R"(
  define entity DATE (day = integer, month = integer, year = integer)
  define entity COMPOSITION (title = string, composition_date = DATE)
  define entity PERSON (name = string)
  define relationship COMPOSER
      (person = PERSON, composition = COMPOSITION)
)";

TEST(DdlTest, PaperSection51SchemaExecutes) {
  er::Database db;
  auto result = ExecuteDdl(kPaperSchema, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->entity_types.size(), 3u);
  EXPECT_EQ(result->relationships.size(), 1u);
  // composition_date became an entity-valued (ref) attribute.
  const er::EntityTypeDef* comp =
      db.schema().FindEntityType("COMPOSITION");
  ASSERT_NE(comp, nullptr);
  auto idx = comp->AttributeIndex("composition_date");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(comp->attributes[*idx].type, rel::ValueType::kRef);
  EXPECT_EQ(comp->attributes[*idx].ref_target, "DATE");
}

TEST(DdlTest, PaperSection54Orderings) {
  er::Database db;
  auto result = ExecuteDdl(R"(
    define entity CHORD (name = integer)
    define entity NOTE (name = integer)
    define entity MEASURE ()
    define ordering note_in_chord (NOTE) under CHORD
    define ordering (CHORD) under MEASURE
  )",
                           &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->orderings.size(), 2u);
  EXPECT_EQ(result->orderings[0], "note_in_chord");
  // The anonymous ordering got a generated name.
  EXPECT_EQ(result->orderings[1], "chord_under_measure");
}

TEST(DdlTest, InhomogeneousAndRecursiveOrderings) {
  er::Database db;
  auto result = ExecuteDdl(R"(
    define entity CHORD ()
    define entity REST ()
    define entity VOICE ()
    define entity BEAM_GROUP ()
    define ordering (CHORD, REST) under VOICE
    define ordering (BEAM_GROUP, CHORD) under BEAM_GROUP
  )",
                           &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const er::OrderingDef* beams =
      db.schema().FindOrdering("beam_group_chord_under_beam_group");
  ASSERT_NE(beams, nullptr);
  EXPECT_TRUE(beams->IsRecursive());
}

TEST(DdlTest, SyntaxErrorsNameTheLine) {
  er::Database db;
  auto r1 = ExecuteDdl("define entity (a = integer)", &db);
  EXPECT_EQ(r1.status().code(), StatusCode::kParseError);
  auto r2 = ExecuteDdl("define ordering (X) above Y", &db);
  EXPECT_EQ(r2.status().code(), StatusCode::kParseError);
  auto r3 = ExecuteDdl("create table foo", &db);
  EXPECT_EQ(r3.status().code(), StatusCode::kParseError);
  auto r4 = ExecuteDdl("define entity X (a = integer", &db);
  EXPECT_EQ(r4.status().code(), StatusCode::kParseError);
}

TEST(DdlTest, SemanticErrorsSurface) {
  er::Database db;
  // Unknown attribute type name that is also not an entity type.
  auto r = ExecuteDdl("define entity X (a = WIDGET)", &db);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(DdlTest, CheckSyntaxDoesNotExecute) {
  EXPECT_TRUE(CheckDdlSyntax("define entity X (a = integer)").ok());
  EXPECT_FALSE(CheckDdlSyntax("define entity X a = integer)").ok());
}

TEST(DdlTest, DeparseRoundTrip) {
  er::Database db;
  ASSERT_TRUE(ExecuteDdl(kPaperSchema, &db).ok());
  std::string ddl = SchemaToDdl(db.schema());
  // Deparsed text re-executes to an equivalent schema.
  er::Database db2;
  ASSERT_TRUE(ExecuteDdl(ddl, &db2).ok()) << ddl;
  EXPECT_EQ(db2.schema().entity_types().size(),
            db.schema().entity_types().size());
  EXPECT_EQ(db2.schema().relationships().size(),
            db.schema().relationships().size());
  EXPECT_NE(ddl.find("composition_date = DATE"), std::string::npos);
}

}  // namespace
}  // namespace mdm::ddl

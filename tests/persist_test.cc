#include <gtest/gtest.h>

#include <cstdio>

#include "er/persist.h"
#include "rel/value.h"

namespace mdm::er {
namespace {

using rel::Value;

std::string TempPath(const char* name) {
  std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".wal").c_str());
  for (int e = 1; e <= 4; ++e)
    std::remove((path + ".wal." + std::to_string(e)).c_str());
  return path;
}

void DefineNoteSchema(Database* db) {
  ASSERT_TRUE(db->DefineEntityType(
                    {"CHORD", {{"name", rel::ValueType::kInt, ""}}})
                  .ok());
  ASSERT_TRUE(db->DefineEntityType(
                    {"NOTE", {{"name", rel::ValueType::kInt, ""}}})
                  .ok());
  ASSERT_TRUE(db->DefineOrdering({"note_in_chord", {"NOTE"}, "CHORD"}).ok());
}

TEST(SnapshotFileTest, SaveLoadRoundTrip) {
  std::string path = TempPath("snapshot_test.mdm");
  Database db;
  DefineNoteSchema(&db);
  auto chord = db.CreateEntity("CHORD");
  auto note = db.CreateEntity("NOTE");
  ASSERT_TRUE(db.SetAttribute(*note, "name", Value::Int(42)).ok());
  ASSERT_TRUE(db.AppendChild("note_in_chord", *chord, *note).ok());

  ASSERT_TRUE(SaveSnapshot(db, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->TotalEntities(), 2u);
  EXPECT_EQ(loaded->GetAttribute(*note, "name")->AsInt(), 42);
  EXPECT_EQ(*loaded->ParentOf("note_in_chord", *note), *chord);
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(LoadSnapshot("/nonexistent/dir/x.mdm").status().code(),
            StatusCode::kNotFound);
}

TEST(DurableDatabaseTest, SurvivesReopen) {
  std::string path = TempPath("durable_test.mdm");
  EntityId chord, note;
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    Database* db = (*handle)->db();
    DefineNoteSchema(db);
    chord = *db->CreateEntity("CHORD");
    note = *db->CreateEntity("NOTE");
    ASSERT_TRUE(db->SetAttribute(note, "name", Value::Int(7)).ok());
    ASSERT_TRUE(db->AppendChild("note_in_chord", chord, note).ok());
    // No checkpoint: everything lives in the journal only.
  }
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    Database* db = (*handle)->db();
    EXPECT_EQ(db->TotalEntities(), 2u);
    EXPECT_EQ(db->GetAttribute(note, "name")->AsInt(), 7);
    EXPECT_EQ(*db->ParentOf("note_in_chord", note), chord);
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(DurableDatabaseTest, CheckpointCompactsAndRecovers) {
  std::string path = TempPath("checkpoint_test.mdm");
  EntityId note_a, note_b;
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok());
    Database* db = (*handle)->db();
    DefineNoteSchema(db);
    note_a = *db->CreateEntity("NOTE");
    ASSERT_TRUE((*handle)->Checkpoint().ok());
    // Post-checkpoint mutations land in the fresh journal.
    note_b = *db->CreateEntity("NOTE");
    ASSERT_TRUE(db->SetAttribute(note_b, "name", Value::Int(2)).ok());
  }
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    Database* db = (*handle)->db();
    EXPECT_TRUE(db->Exists(note_a));
    EXPECT_TRUE(db->Exists(note_b));
    EXPECT_EQ(db->GetAttribute(note_b, "name")->AsInt(), 2);
    // Ids keep advancing without collision.
    auto fresh = db->CreateEntity("NOTE");
    ASSERT_TRUE(fresh.ok());
    EXPECT_GT(*fresh, note_b);
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(DurableDatabaseTest, TornJournalTailDiscarded) {
  std::string path = TempPath("torn_test.mdm");
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok());
    Database* db = (*handle)->db();
    DefineNoteSchema(db);
    ASSERT_TRUE(db->CreateEntity("NOTE").ok());
    ASSERT_TRUE(db->CreateEntity("NOTE").ok());
  }
  // Simulate a crash that tore the last record: chop bytes off the wal.
  {
    auto bytes = storage::ReadWalFile(path + ".wal");
    ASSERT_TRUE(bytes.ok());
    ASSERT_GT(bytes->size(), 10u);
    std::FILE* f = std::fopen((path + ".wal").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes->data(), 1, bytes->size() - 5, f);
    std::fclose(f);
  }
  {
    auto handle = DurableDatabase::Open(path);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    // The torn final transaction (second CreateEntity) is gone; the
    // rest recovered.
    EXPECT_EQ((*handle)->db()->TotalEntities(), 1u);
    // The database remains writable after recovery.
    EXPECT_TRUE((*handle)->db()->CreateEntity("NOTE").ok());
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(SnapshotFileTest, CorruptSnapshotIsCorruptionNotGarbage) {
  std::string path = TempPath("corrupt_snapshot.mdm");
  Database db;
  DefineNoteSchema(&db);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(db.CreateEntity("NOTE").ok());
  ASSERT_TRUE(SaveSnapshot(db, path).ok());
  // Flip one byte near the middle of the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    long mid = std::ftell(f) / 2;
    ASSERT_EQ(std::fseek(f, mid, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, mid, SEEK_SET), 0);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  EXPECT_EQ(LoadSnapshot(path).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(DurableDatabase::Open(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DurableDatabaseTest, EmptyDatabaseOpens) {
  std::string path = TempPath("empty_test.mdm");
  auto handle = DurableDatabase::Open(path);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->db()->TotalEntities(), 0u);
  std::remove((path + ".wal").c_str());
}

}  // namespace
}  // namespace mdm::er

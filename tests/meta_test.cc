#include <gtest/gtest.h>

#include "ddl/parser.h"
#include "er/database.h"
#include "meta/meta_schema.h"
#include "net/connection.h"
#include "quel/quel.h"

namespace mdm::meta {
namespace {

using rel::Value;

class MetaTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallMetaSchema(&db_).ok());
    // The paper's STEM example (§6.2).
    ASSERT_TRUE(ddl::ExecuteDdl(R"(
      define entity STEM (xpos = integer, ypos = integer,
                          length = integer, direction = integer)
    )",
                                &db_)
                    .ok());
    ASSERT_TRUE(SyncSchemaToMeta(&db_).ok());
  }

  er::Database db_;
};

TEST_F(MetaTest, MetaSchemaInstallsOnceOnly) {
  EXPECT_NE(db_.schema().FindEntityType("ENTITY"), nullptr);
  EXPECT_NE(db_.schema().FindEntityType("ATTRIBUTE"), nullptr);
  EXPECT_NE(db_.schema().FindOrdering("entity_attributes"), nullptr);
  EXPECT_NE(db_.schema().FindRelationship("order_child"), nullptr);
  // Idempotent.
  EXPECT_TRUE(InstallMetaSchema(&db_).ok());
}

TEST_F(MetaTest, SchemaCatalogedAsData) {
  // STEM is catalogued as an ENTITY instance...
  auto stem_meta = FindMetaEntity(db_, "STEM");
  ASSERT_TRUE(stem_meta.ok());
  // ...with its four attributes hierarchically ordered under it.
  auto names = MetaAttributeNames(db_, "STEM");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"xpos", "ypos", "length",
                                              "direction"}));
}

TEST_F(MetaTest, MetaSchemaIsSelfHosting) {
  // §6: the meta types catalogue themselves.
  auto entity_meta = FindMetaEntity(db_, "ENTITY");
  ASSERT_TRUE(entity_meta.ok());
  auto attrs = MetaAttributeNames(db_, "ATTRIBUTE");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(*attrs, (std::vector<std::string>{"attribute_name",
                                              "attribute_type"}));
  // ORDERING instances exist for entity_attributes and
  // relationship_attributes.
  auto count = db_.CountEntities("ORDERING");
  ASSERT_TRUE(count.ok());
  EXPECT_GE(*count, 2u);
}

TEST_F(MetaTest, SyncIsIdempotent) {
  auto before = db_.CountEntities("ATTRIBUTE");
  ASSERT_TRUE(SyncSchemaToMeta(&db_).ok());
  auto after = db_.CountEntities("ATTRIBUTE");
  EXPECT_EQ(*before, *after);
}

TEST_F(MetaTest, MetaIsQueryableThroughQuel) {
  // The schema/data blur: the catalog answers QUEL queries like any
  // other data.
  mdm::Connection session = mdm::Connection::Local(&db_);
  auto rs = session.Execute(R"(
    range of e is ENTITY
    range of a is ATTRIBUTE
    retrieve (a.attribute_name)
      where a under e in entity_attributes and e.entity_name = "STEM"
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 4u);
}

TEST_F(MetaTest, StemDrawingViaFourStepProcedure) {
  ASSERT_TRUE(InstallGraphicsSchema(&db_).ok());
  ASSERT_TRUE(SyncSchemaToMeta(&db_).ok());
  // The stem drawing function: a vertical line of `length` from
  // (xpos, ypos), going up or down by `direction` (+1/-1).
  auto graphdef = DefineGraphDef(&db_, "draw-stem", R"(
    newpath
    xpos ypos moveto
    0 length direction mul rlineto
    stroke
  )");
  ASSERT_TRUE(graphdef.ok());
  ASSERT_TRUE(AttachGraphDef(&db_, "STEM", *graphdef).ok());
  for (const char* attr : {"xpos", "ypos", "length", "direction"}) {
    ASSERT_TRUE(AttachParameter(&db_, *graphdef, "STEM", attr,
                                std::string("/") + attr + " exch def")
                    .ok());
  }

  auto stem = db_.CreateEntity("STEM");
  ASSERT_TRUE(stem.ok());
  ASSERT_TRUE(db_.SetAttribute(*stem, "xpos", Value::Int(100)).ok());
  ASSERT_TRUE(db_.SetAttribute(*stem, "ypos", Value::Int(50)).ok());
  ASSERT_TRUE(db_.SetAttribute(*stem, "length", Value::Int(30)).ok());
  ASSERT_TRUE(db_.SetAttribute(*stem, "direction", Value::Int(-1)).ok());

  auto rendering = DrawEntity(&db_, *stem);
  ASSERT_TRUE(rendering.ok()) << rendering.status().ToString();
  ASSERT_EQ(rendering->paths.size(), 1u);
  EXPECT_EQ(rendering->paths[0].d, "M 100.00 50.00 L 100.00 20.00");
  // Changing the stored function changes how stems draw — "the client
  // program may freely modify such attributes as the printing function".
  ASSERT_TRUE(db_.SetAttribute(*graphdef, "function",
                               Value::String("newpath xpos ypos moveto "
                                             "length 0 rlineto stroke"))
                  .ok());
  rendering = DrawEntity(&db_, *stem);
  ASSERT_TRUE(rendering.ok());
  EXPECT_EQ(rendering->paths[0].d, "M 100.00 50.00 L 130.00 50.00");
}

TEST_F(MetaTest, DrawErrorsSurface) {
  ASSERT_TRUE(InstallGraphicsSchema(&db_).ok());
  ASSERT_TRUE(SyncSchemaToMeta(&db_).ok());
  auto stem = db_.CreateEntity("STEM");
  ASSERT_TRUE(stem.ok());
  // No GraphDef attached yet.
  EXPECT_EQ(DrawEntity(&db_, *stem).status().code(), StatusCode::kNotFound);
  // Attaching a parameter for an uncatalogued attribute fails.
  auto graphdef = DefineGraphDef(&db_, "d", "0 0 moveto 1 1 lineto stroke");
  ASSERT_TRUE(graphdef.ok());
  EXPECT_EQ(
      AttachParameter(&db_, *graphdef, "STEM", "ghost", "/g exch def").code(),
      StatusCode::kNotFound);
}

TEST_F(MetaTest, Fig9MetaHoGraphContainsMetaEdges) {
  std::string dot = db_.HoGraphDot();
  EXPECT_NE(dot.find("\"ENTITY\" -> \"ATTRIBUTE\""), std::string::npos);
  EXPECT_NE(dot.find("\"RELATIONSHIP\" -> \"ATTRIBUTE\""),
            std::string::npos);
}

}  // namespace
}  // namespace mdm::meta

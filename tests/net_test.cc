// The mdmd wire protocol and client/server stack (src/net): frame
// codec goldens, malformed-frame rejection, error transport fidelity,
// and loopback integration of concurrent remote clients against one
// server. The integration tests exercise real TCP sockets on 127.0.0.1
// and run under the tsan preset (a connection thread per client over
// the PR 4 locking stack).
#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "net/client.h"
#include "net/connection.h"
#include "net/protocol.h"
#include "net/retry.h"
#include "net/server.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "quel/quel.h"
#include "rel/value.h"

namespace mdm {
namespace {

std::string Hex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xf];
  }
  return out;
}

// ---------------------------------------------------------------------
// common::ErrorCode — every Status carries a canonical code.

TEST(ErrorCodeTest, CanonicalMappingIsTotal) {
  EXPECT_EQ(CanonicalCode(StatusCode::kOk), ErrorCode::OK);
  EXPECT_EQ(CanonicalCode(StatusCode::kNotFound), ErrorCode::NOT_FOUND);
  for (StatusCode c :
       {StatusCode::kInvalidArgument, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kConstraintViolation, StatusCode::kParseError,
        StatusCode::kTypeError})
    EXPECT_EQ(CanonicalCode(c), ErrorCode::INVALID_ARGUMENT)
        << StatusCodeName(c);
  EXPECT_EQ(CanonicalCode(StatusCode::kCorruption), ErrorCode::CORRUPTION);
  EXPECT_EQ(CanonicalCode(StatusCode::kResourceExhausted),
            ErrorCode::RESOURCE_EXHAUSTED);
  EXPECT_EQ(CanonicalCode(StatusCode::kDeadlineExceeded),
            ErrorCode::DEADLINE_EXCEEDED);
  EXPECT_EQ(CanonicalCode(StatusCode::kIoError), ErrorCode::UNAVAILABLE);
  EXPECT_EQ(CanonicalCode(StatusCode::kUnavailable),
            ErrorCode::UNAVAILABLE);
  EXPECT_EQ(CanonicalCode(StatusCode::kUnimplemented),
            ErrorCode::INTERNAL);
  EXPECT_EQ(CanonicalCode(StatusCode::kInternal), ErrorCode::INTERNAL);
}

TEST(ErrorCodeTest, StatusExposesErrorCode) {
  EXPECT_EQ(Status::OK().error_code(), ErrorCode::OK);
  EXPECT_EQ(NotFound("x").error_code(), ErrorCode::NOT_FOUND);
  EXPECT_EQ(ParseError("x").error_code(), ErrorCode::INVALID_ARGUMENT);
  EXPECT_EQ(ResourceExhausted("x").error_code(),
            ErrorCode::RESOURCE_EXHAUSTED);
  EXPECT_EQ(DeadlineExceeded("x").error_code(),
            ErrorCode::DEADLINE_EXCEEDED);
  EXPECT_EQ(Unavailable("x").error_code(), ErrorCode::UNAVAILABLE);
  EXPECT_STREQ(ErrorCodeName(ErrorCode::RESOURCE_EXHAUSTED),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::OK), "OK");
}

// ---------------------------------------------------------------------
// Frame codec goldens: the wire encoding is a compatibility surface
// (docs/PROTOCOL.md); byte-level changes are protocol revisions.

TEST(ProtocolGoldenTest, ExecuteRequestFrame) {
  net::ExecuteRequest req;
  req.script = "retrieve (NOTE.name)";
  req.deadline_ms = 250;
  // v3+ layout: deadline_ms u32 | trace_id u64 | flags u8 | script
  // (the header now stamps v4; the ExecuteRequest payload is unchanged
  // since v3, so only the version byte moved).
  EXPECT_EQ(Hex(net::EncodeFrame(net::EncodeExecuteRequest(req))),
            "4d444d5004010000220000002b9518f6fa0000000000000000000000"
            "0014726574726965766520284e4f54452e6e616d6529");
}

TEST(ProtocolGoldenTest, ExecuteRequestFrameWithTrace) {
  net::ExecuteRequest req;
  req.script = "retrieve (NOTE.name)";
  req.deadline_ms = 250;
  req.trace_id = 0x1122334455667788ull;
  req.trace_sampled = true;
  EXPECT_EQ(Hex(net::EncodeFrame(net::EncodeExecuteRequest(req))),
            "4d444d500401000022000000474f2a1ffa000000887766554433221101"
            "14726574726965766520284e4f54452e6e616d6529");
}

// The previous protocol revisions' bytes must keep decoding: a v2
// client talking to a v4 server sends exactly these (the PR 6 golden).
TEST(ProtocolGoldenTest, V2ExecuteRequestStillDecodes) {
  const char kV2Hex[] =
      "4d444d500201000019000000312b51a4fa000000147265747269657665"
      "20284e4f54452e6e616d6529";
  std::vector<uint8_t> bytes;
  for (size_t i = 0; kV2Hex[i] != '\0'; i += 2) {
    auto nibble = [](char c) {
      return static_cast<uint8_t>(c <= '9' ? c - '0' : c - 'a' + 10);
    };
    bytes.push_back(
        static_cast<uint8_t>(nibble(kV2Hex[i]) << 4 | nibble(kV2Hex[i + 1])));
  }
  auto frame = net::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->version, 2);
  auto req = net::DecodeExecuteRequest(*frame);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->script, "retrieve (NOTE.name)");
  EXPECT_EQ(req->deadline_ms, 250u);
  EXPECT_EQ(req->trace_id, 0u);  // v2 carries no trace context
  EXPECT_FALSE(req->trace_sampled);
}

TEST(ProtocolGoldenTest, ErrorFrame) {
  EXPECT_EQ(Hex(net::EncodeFrame(net::EncodeErrorFrame(
                NotFound("no entity type named FOO")))),
            "4d444d50040300001f0000002979de74010200000000186e6f20656e74"
            "6974792074797065206e616d656420464f4f");
}

TEST(ProtocolGoldenTest, ResultPageFrames) {
  quel::ResultSet rs;
  rs.columns = {"n.name", "n.pitch"};
  rs.rows.push_back({rel::Value::Int(7), rel::Value::String("G4")});
  rs.rows.push_back({rel::Value::Int(9), rel::Value::String("B4")});
  rs.rows.push_back({rel::Value::Null(), rel::Value::Ref(17)});
  rs.affected = 3;
  auto pages = net::EncodeResultSetPages(rs, 2);
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(Hex(net::EncodeFrame(pages[0])),
            "4d444d50040200002f0000009680e84c0102066e2e6e616d65076e2e70"
            "6974636800020202070000000000000004024734020209000000000000"
            "0004024234");
  EXPECT_EQ(Hex(net::EncodeFrame(pages[1])),
            "4d444d500402000015000000a5e6e7d5020102000611000000000000"
            "000300000000000000");
}

// v4 batch frames: the BatchExecuteRequest payload mirrors a v3
// ExecuteRequest prefix (deadline | trace_id | flags), then varint N
// and N scripts.
TEST(ProtocolGoldenTest, BatchExecuteRequestFrame) {
  net::BatchExecuteRequest req;
  req.deadline_ms = 250;
  req.trace_id = 0x1122334455667788ull;
  req.trace_sampled = true;
  req.scripts = {"append to NOTE (name = \"C4\")",
                 "retrieve (NOTE.name)"};
  EXPECT_EQ(Hex(net::EncodeFrame(net::EncodeBatchExecuteRequest(req))),
            "4d444d50040600004000000009a0bfc4fa0000008877665544332211"
            "01021c617070656e6420746f204e4f544520286e616d65203d202243"
            "34222914726574726965766520284e4f54452e6e616d6529");
}

TEST(ProtocolGoldenTest, BatchStatusFrameAllOk) {
  BatchResult br;
  br.submitted = 2;
  br.statements.push_back({Status::OK(), 1});
  br.statements.push_back({Status::OK(), 0});
  // submitted=2 | attempted=2 | {ok,affected}x2 | results_follow=1.
  EXPECT_EQ(Hex(net::EncodeFrame(net::EncodeBatchStatus(br))),
            "4d444d5004070000150000006bdf7bcf020201010000000000000001"
            "000000000000000001");
}

TEST(ProtocolGoldenTest, BatchStatusFramePrefixStop) {
  BatchResult br;
  br.submitted = 3;
  br.statements.push_back({Status::OK(), 1});
  br.statements.push_back({NotFound("no entity type named FOO"), 0});
  // Statement 3 was never attempted; results_follow=0.
  EXPECT_EQ(Hex(net::EncodeFrame(net::EncodeBatchStatus(br))),
            "4d444d5004070000340000001720d5bb030201010000000000000000"
            "0000000000000000010200000000186e6f20656e7469747920747970"
            "65206e616d656420464f4f00");
}

TEST(ProtocolTest, BatchExecuteRequestRoundTrip) {
  net::BatchExecuteRequest req;
  req.deadline_ms = 77;
  req.trace_id = 42;
  req.trace_sampled = false;
  req.scripts = {"range of n is NOTE", "retrieve (n.name)", ""};
  auto bytes = net::EncodeFrame(net::EncodeBatchExecuteRequest(req));
  auto frame = net::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->version, net::kProtocolVersion);
  auto decoded = net::DecodeBatchExecuteRequest(*frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->scripts, req.scripts);
  EXPECT_EQ(decoded->deadline_ms, req.deadline_ms);
  EXPECT_EQ(decoded->trace_id, req.trace_id);
  EXPECT_FALSE(decoded->trace_sampled);
}

// Batch frames are a v4 construct: a batch frame stamped with an older
// version is a protocol violation, not something to guess about.
TEST(ProtocolTest, BatchFrameClaimingV3IsRejected) {
  net::BatchExecuteRequest req;
  req.scripts = {"retrieve (NOTE.name)"};
  net::Frame f = net::EncodeBatchExecuteRequest(req);
  f.version = 3;
  auto decoded = net::DecodeBatchExecuteRequest(f);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, BatchStatusRoundTripStatusesIntact) {
  BatchResult br;
  br.submitted = 4;
  br.statements.push_back({Status::OK(), 3});
  br.statements.push_back({Status::OK(), 0});
  Status failed = ParseError("bad token near 'retrive'");
  failed.set_retry_after_ms(250);
  br.statements.push_back({failed, 0});
  net::Frame f = net::EncodeBatchStatus(br);
  BatchResult out;
  bool results_follow = true;
  ASSERT_TRUE(net::DecodeBatchStatus(f, &out, &results_follow).ok());
  EXPECT_FALSE(results_follow);  // not all_ok
  EXPECT_EQ(out.submitted, 4u);
  ASSERT_EQ(out.statements.size(), 3u);
  EXPECT_TRUE(out.statements[0].status.ok());
  EXPECT_EQ(out.statements[0].affected, 3u);
  EXPECT_TRUE(out.statements[1].status.ok());
  EXPECT_EQ(out.statements[2].status.code(), StatusCode::kParseError);
  EXPECT_EQ(out.statements[2].status.error_code(),
            ErrorCode::INVALID_ARGUMENT);
  EXPECT_EQ(out.statements[2].status.message(),
            "bad token near 'retrive'");
  EXPECT_EQ(out.statements[2].status.retry_after_ms(), 250u);
  EXPECT_EQ(out.failed_index(), 2u);
  EXPECT_FALSE(out.all_ok());
}

// ---------------------------------------------------------------------
// Codec round trips.

TEST(ProtocolTest, ExecuteRequestRoundTrip) {
  net::ExecuteRequest req;
  req.script = "range of n is NOTE\nretrieve (n.name)";
  req.deadline_ms = 1234;
  auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(req));
  size_t consumed = 0;
  auto frame = net::DecodeFrame(bytes.data(), bytes.size(),
                                net::kDefaultMaxFrameBytes, &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(consumed, bytes.size());
  auto decoded = net::DecodeExecuteRequest(*frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->script, req.script);
  EXPECT_EQ(decoded->deadline_ms, req.deadline_ms);
}

TEST(ProtocolTest, ErrorFramesRoundTripEveryCodeIntact) {
  const Status statuses[] = {
      InvalidArgument("m1"),   NotFound("m2"),
      AlreadyExists("m3"),     FailedPrecondition("m4"),
      OutOfRange("m5"),        Corruption("m6"),
      ConstraintViolation("m7"), ParseError("m8"),
      TypeError("m9"),         IoError("m10"),
      Unimplemented("m11"),    Internal("m12"),
      ResourceExhausted("m13"), DeadlineExceeded("m14"),
      Unavailable("m15"),
  };
  for (const Status& s : statuses) {
    Status out;
    ASSERT_TRUE(
        net::DecodeErrorFrame(net::EncodeErrorFrame(s), &out).ok());
    EXPECT_EQ(out.code(), s.code()) << s.ToString();
    EXPECT_EQ(out.error_code(), s.error_code()) << s.ToString();
    EXPECT_EQ(out.message(), s.message());
  }
}

TEST(ProtocolTest, ResultSetPagingRoundTrip) {
  quel::ResultSet rs;
  rs.columns = {"a", "b", "c"};
  rs.explain = "plan text";
  rs.affected = 42;
  for (int i = 0; i < 5; ++i)
    rs.rows.push_back({rel::Value::Int(i),
                       rel::Value::String("s" + std::to_string(i)),
                       rel::Value::Rat(Rational(i, 4))});
  auto pages = net::EncodeResultSetPages(rs, 2);
  ASSERT_EQ(pages.size(), 3u);

  quel::ResultSet out;
  bool done = false;
  for (const net::Frame& page : pages) {
    ASSERT_FALSE(done);
    ASSERT_TRUE(net::DecodeResultPage(page, &out, &done).ok());
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(out.columns, rs.columns);
  EXPECT_EQ(out.explain, rs.explain);
  EXPECT_EQ(out.affected, rs.affected);
  ASSERT_EQ(out.rows.size(), rs.rows.size());
  for (size_t r = 0; r < rs.rows.size(); ++r)
    for (size_t c = 0; c < rs.columns.size(); ++c)
      EXPECT_TRUE(out.rows[r][c].Equals(rs.rows[r][c]));
}

TEST(ProtocolTest, EmptyResultSetIsOnePage) {
  quel::ResultSet rs;
  rs.affected = 7;
  auto pages = net::EncodeResultSetPages(rs, 100);
  ASSERT_EQ(pages.size(), 1u);
  quel::ResultSet out;
  bool done = false;
  ASSERT_TRUE(net::DecodeResultPage(pages[0], &out, &done).ok());
  EXPECT_TRUE(done);
  EXPECT_TRUE(out.rows.empty());
  EXPECT_EQ(out.affected, 7u);
}

// ---------------------------------------------------------------------
// Malformed frames: every rejection is a typed error.

TEST(ProtocolTest, TruncatedFramesAreCorruption) {
  auto bytes = net::EncodeFrame(net::EncodeErrorFrame(NotFound("x")));
  for (size_t cut : {size_t{0}, size_t{5}, net::kFrameHeaderBytes,
                     bytes.size() - 1}) {
    auto r = net::DecodeFrame(bytes.data(), cut);
    ASSERT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << "cut=" << cut;
    EXPECT_EQ(r.status().error_code(), ErrorCode::CORRUPTION);
  }
}

TEST(ProtocolTest, BadMagicIsCorruption) {
  auto bytes = net::EncodeFrame(net::EncodeErrorFrame(NotFound("x")));
  bytes[0] ^= 0xff;
  auto r = net::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, BadVersionIsInvalidArgument) {
  auto bytes = net::EncodeFrame(net::EncodeErrorFrame(NotFound("x")));
  bytes[4] = net::kProtocolVersion + 1;
  auto r = net::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().error_code(), ErrorCode::INVALID_ARGUMENT);
}

TEST(ProtocolTest, OversizedFrameIsResourceExhausted) {
  net::ExecuteRequest req;
  req.script = std::string(2048, 'x');
  auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(req));
  auto r = net::DecodeFrame(bytes.data(), bytes.size(), /*max=*/1024);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.status().error_code(), ErrorCode::RESOURCE_EXHAUSTED);
}

TEST(ProtocolTest, BadChecksumIsCorruption) {
  auto bytes = net::EncodeFrame(net::EncodeErrorFrame(NotFound("x")));
  bytes.back() ^= 0x01;  // flip a payload bit; crc no longer matches
  auto r = net::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, IsIdempotentScript) {
  EXPECT_TRUE(net::IsIdempotentScript(
      "range of n is NOTE\nretrieve (n.name)"));
  EXPECT_TRUE(net::IsIdempotentScript(
      "explain retrieve (NOTE.name) where NOTE.name = 3"));
  EXPECT_FALSE(net::IsIdempotentScript("append to NOTE (name = 7)"));
  EXPECT_FALSE(net::IsIdempotentScript(
      "replace n (pitch = \"A4\") where n.name = 7"));
  EXPECT_FALSE(net::IsIdempotentScript("delete n where n.name = 7"));
  EXPECT_FALSE(net::IsIdempotentScript(
      "define entity NOTE (name = integer)"));
  // Substrings of keywords do not disqualify.
  EXPECT_TRUE(net::IsIdempotentScript(
      "retrieve (n.name) where n.definedness = 1"));
}

// ---------------------------------------------------------------------
// Loopback integration: a real server on 127.0.0.1.

class NetServerTest : public ::testing::Test {
 protected:
  static constexpr int kNotes = 200;

  void StartServer(net::ServerOptions opts = {}) {
    opts.port = 0;
    server_ = std::make_unique<net::Server>(&db_, opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  static void SeedDb(er::Database* db) {
    auto ddl = ddl::ExecuteDdl(R"(
      define entity CHORD (name = integer)
      define entity NOTE (name = integer)
      define ordering note_in_chord (NOTE) under CHORD
    )",
                               db);
    ASSERT_TRUE(ddl.ok());
    auto chord = db->CreateEntity("CHORD");
    ASSERT_TRUE(chord.ok());
    ASSERT_TRUE(
        db->SetAttribute(*chord, "name", rel::Value::Int(1)).ok());
    for (int i = 0; i < kNotes; ++i) {
      auto note = db->CreateEntity("NOTE");
      ASSERT_TRUE(note.ok());
      ASSERT_TRUE(
          db->SetAttribute(*note, "name", rel::Value::Int(i)).ok());
      ASSERT_TRUE(db->AppendChild("note_in_chord", *chord, *note).ok());
    }
  }

  void SetUp() override { SeedDb(&db_); }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  er::Database db_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(NetServerTest, RemoteExecuteMatchesLocal) {
  StartServer();
  auto remote = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  Connection local = Connection::Local(&db_);

  const char* script = "retrieve (k = count(NOTE.name))";
  auto rr = remote->Execute(script);
  auto lr = local.Execute(script);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  ASSERT_TRUE(lr.ok());
  EXPECT_EQ(rr->ToString(), lr->ToString());
  ASSERT_EQ(rr->rows.size(), 1u);
  EXPECT_EQ(rr->At(0, 0).AsInt(), kNotes);
}

TEST_F(NetServerTest, MultiPageResultArrivesExactly) {
  net::ServerOptions opts;
  opts.rows_per_page = 7;  // forces ceil(200/7) = 29 pages
  StartServer(opts);
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  auto rs = conn->Execute("range of n is NOTE\nretrieve (n.name)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), static_cast<size_t>(kNotes));
  // Every note name exactly once, in scan order.
  for (int i = 0; i < kNotes; ++i) EXPECT_EQ(rs->At(i, 0).AsInt(), i);
}

TEST_F(NetServerTest, DdlAndMutationsOverTheWire) {
  StartServer();
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  auto ddl = conn->Execute("define entity LYRIC (text = string)");
  ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
  EXPECT_EQ(ddl->At(0, 0).AsInt(), 1);  // one entity type defined
  ASSERT_TRUE(conn->Execute("append to LYRIC (text = \"la\")").ok());
  auto rs = conn->Execute("retrieve (k = count(LYRIC.text))");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsInt(), 1);
  // The mutation is visible in-process too: one shared database.
  EXPECT_EQ(*db_.CountEntities("LYRIC"), 1u);
}

TEST_F(NetServerTest, BatchExecutesInOneRoundTripWithLastResult) {
  StartServer();
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  auto br = conn->ExecuteBatch({
      "define entity LYRIC (text = string)",
      "append to LYRIC (text = \"la\")",
      "append to LYRIC (text = \"da\")",
      "retrieve (k = count(LYRIC.text))",
  });
  ASSERT_TRUE(br.ok()) << br.status().ToString();
  EXPECT_TRUE(br->all_ok());
  ASSERT_EQ(br->statements.size(), 4u);
  EXPECT_EQ(br->statements[0].affected, 1u);  // one entity type defined
  EXPECT_EQ(br->statements[1].affected, 1u);
  EXPECT_EQ(br->statements[2].affected, 1u);
  // The last statement's ResultSet rides along in the same round trip.
  ASSERT_EQ(br->last.rows.size(), 1u);
  EXPECT_EQ(br->last.At(0, 0).AsInt(), 2);
  // Applied on the shared database, not a shadow copy.
  EXPECT_EQ(*db_.CountEntities("LYRIC"), 2u);
}

TEST_F(NetServerTest, BatchMatchesLocalSemantics) {
  StartServer();
  auto remote = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(remote.ok());
  er::Database local_db;
  SeedDb(&local_db);  // identical seed to the fixture's remote db
  Connection local = Connection::Local(&local_db);
  std::vector<std::string> scripts = {
      "append to NOTE (name = 41)",
      "append to NOTE (name = 43)",
      "range of n is NOTE\nretrieve (n.name) where n.name > 40",
  };
  auto rr = remote->ExecuteBatch(scripts);
  auto lr = local.ExecuteBatch(scripts);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  ASSERT_TRUE(lr.ok()) << lr.status().ToString();
  EXPECT_TRUE(rr->all_ok());
  EXPECT_TRUE(lr->all_ok());
  ASSERT_EQ(rr->statements.size(), lr->statements.size());
  for (size_t i = 0; i < rr->statements.size(); ++i)
    EXPECT_EQ(rr->statements[i].affected, lr->statements[i].affected) << i;
  EXPECT_EQ(rr->last.ToString(), lr->last.ToString());
}

TEST_F(NetServerTest, BatchStopsAtFirstErrorCodeIntact) {
  StartServer();
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  auto br = conn->ExecuteBatch({
      "append to NOTE (name = 999)",
      "retrieve (NOPE.x)",          // fails: no such entity type
      "append to NOTE (name = 1000)",  // never attempted
  });
  ASSERT_TRUE(br.ok()) << br.status().ToString();
  EXPECT_FALSE(br->all_ok());
  ASSERT_EQ(br->statements.size(), 2u);  // prefix-stop after the failure
  EXPECT_TRUE(br->statements[0].status.ok());
  EXPECT_EQ(br->statements[1].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(br->statements[1].status.error_code(), ErrorCode::NOT_FOUND);
  EXPECT_EQ(br->failed_index(), 1u);
  EXPECT_EQ(br->first_error().code(), StatusCode::kNotFound);
  // The applied prefix committed; the tail never ran.
  auto rs = conn->Execute("range of n is NOTE\n"
                          "retrieve (k = count(n.name)) where n.name > 900");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsInt(), 1);
}

TEST_F(NetServerTest, EmptyBatchIsOkAndEmpty) {
  StartServer();
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  auto br = conn->ExecuteBatch({});
  ASSERT_TRUE(br.ok()) << br.status().ToString();
  EXPECT_TRUE(br->all_ok());
  EXPECT_EQ(br->submitted, 0u);
  EXPECT_TRUE(br->statements.empty());
  EXPECT_TRUE(br->last.rows.empty());
}

TEST_F(NetServerTest, ErrorsArriveCodeIntact) {
  StartServer();
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());

  auto nf = conn->Execute("retrieve (NOPE.x)");
  ASSERT_FALSE(nf.ok());
  EXPECT_EQ(nf.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(nf.status().error_code(), ErrorCode::NOT_FOUND);
  EXPECT_FALSE(nf.status().message().empty());

  auto pe = conn->Execute("retrieve ((((");
  ASSERT_FALSE(pe.ok());
  EXPECT_EQ(pe.status().code(), StatusCode::kParseError);
  EXPECT_EQ(pe.status().error_code(), ErrorCode::INVALID_ARGUMENT);
}

TEST_F(NetServerTest, FourConcurrentClientsExactCounts) {
  StartServer();
  constexpr int kClients = 4;
  constexpr int kRequests = 25;
  std::atomic<int> ok{0};
  std::atomic<int> exact{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto conn = Connection::Remote("127.0.0.1", server_->port());
      if (!conn.ok()) return;
      for (int i = 0; i < kRequests; ++i) {
        const char* script =
            (t + i) % 2 == 0
                ? "retrieve (k = count(NOTE.name))"
                : "range of n is NOTE\nrange of c is CHORD\n"
                  "retrieve (k = count(n)) "
                  "where n under c in note_in_chord and c.name = 1";
        auto rs = conn->Execute(script);
        if (!rs.ok()) continue;
        ok.fetch_add(1);
        if (rs->rows.size() == 1 && rs->At(0, 0).AsInt() == kNotes)
          exact.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Exact-count assertions: every request succeeded and saw all 200
  // notes (the database is static during this test).
  EXPECT_EQ(ok.load(), kClients * kRequests);
  EXPECT_EQ(exact.load(), kClients * kRequests);
  // The server counts a request after writing its reply, so the last
  // increment can trail the client's read by a moment; it can settle at
  // exactly kClients * kRequests and never beyond.
  // Likewise a connection thread notices the client's close (EOF) only
  // at its next poll wakeup, so active_connections drains to 0 shortly
  // after the last join rather than synchronously with it.
  const auto want = static_cast<uint64_t>(kClients * kRequests);
  for (int i = 0; i < 100 && (server_->requests_served() < want ||
                              server_->active_connections() > 0);
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server_->requests_served(), want);
  EXPECT_EQ(server_->active_connections(), 0u);  // all clients closed
}

TEST_F(NetServerTest, MalformedFramesGetTypedErrorsWithoutKillingServer) {
  net::ServerOptions opts;
  opts.max_frame_bytes = 1024;
  StartServer(opts);
  auto fd = net::DialTcp("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(fd.ok());

  auto expect_error = [&](const std::vector<uint8_t>& bytes,
                          StatusCode want) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t w = ::send(*fd, bytes.data() + sent, bytes.size() - sent, 0);
      ASSERT_GT(w, 0);
      sent += static_cast<size_t>(w);
    }
    bool fatal = false;
    auto reply = net::ReadFrame(*fd, net::kDefaultMaxFrameBytes, &fatal);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->type, net::FrameType::kError);
    Status remote;
    ASSERT_TRUE(net::DecodeErrorFrame(*reply, &remote).ok());
    EXPECT_EQ(remote.code(), want);
  };

  // Bad checksum: framing intact, typed Corruption comes back.
  {
    auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(
        {"retrieve (NOTE.name)", 0}));
    bytes.back() ^= 0x01;
    expect_error(bytes, StatusCode::kCorruption);
  }
  // Unsupported version.
  {
    auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(
        {"retrieve (NOTE.name)", 0}));
    bytes[4] = net::kProtocolVersion + 1;
    expect_error(bytes, StatusCode::kInvalidArgument);
  }
  // Oversized payload (2 KiB against the 1 KiB server limit).
  {
    net::ExecuteRequest big;
    big.script = std::string(2048, 'x');
    expect_error(net::EncodeFrame(net::EncodeExecuteRequest(big)),
                 StatusCode::kResourceExhausted);
  }
  // The same connection still serves real requests afterwards.
  {
    auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(
        {"retrieve (k = count(NOTE.name))", 0}));
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t w = ::send(*fd, bytes.data() + sent, bytes.size() - sent, 0);
      ASSERT_GT(w, 0);
      sent += static_cast<size_t>(w);
    }
    bool fatal = false;
    auto reply = net::ReadFrame(*fd, net::kDefaultMaxFrameBytes, &fatal);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, net::FrameType::kResultPage);
  }
  ::close(*fd);

  // Garbage magic kills only that connection; the server keeps
  // accepting new ones.
  auto fd2 = net::DialTcp("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(fd2.ok());
  std::vector<uint8_t> garbage(64, 0xAB);
  ASSERT_GT(::send(*fd2, garbage.data(), garbage.size(), 0), 0);
  ::close(*fd2);
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_TRUE(conn->Execute("retrieve (k = count(NOTE.name))").ok());
}

TEST_F(NetServerTest, BackpressureRejectsBeyondMaxConnections) {
  net::ServerOptions opts;
  opts.max_connections = 1;
  StartServer(opts);
  auto first = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The admission handshake of the second connection reports the limit.
  auto second = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(second.status().error_code(), ErrorCode::RESOURCE_EXHAUSTED);
  // The admitted client is unaffected.
  EXPECT_TRUE(first->Execute("retrieve (k = count(NOTE.name))").ok());
}

TEST_F(NetServerTest, DeadlineExceededIsReported) {
  StartServer();
  net::ClientOptions copts;
  copts.deadline_ms = 1;  // the n×n scan below takes well over 1ms
  auto conn =
      Connection::Remote("127.0.0.1", server_->port(), copts);
  ASSERT_TRUE(conn.ok());
  auto rs = conn->Execute(
      "range of a, b is NOTE\n"
      "retrieve (a.name) where a.name = b.name");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rs.status().error_code(), ErrorCode::DEADLINE_EXCEEDED);
  // The server survives the miss: a fresh connection without the 1ms
  // budget still serves. (The original connection may have been dropped
  // by the client when its recv timed out mid-reply — by design.)
  auto again = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->Ping().ok());
}

TEST_F(NetServerTest, StopDrainsCleanly) {
  StartServer();
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Execute("retrieve (k = count(NOTE.name))").ok());
  server_->Stop();
  EXPECT_EQ(server_->active_connections(), 0u);
  // The drained server refuses further traffic: the request or its
  // reply fails with a transport-level UNAVAILABLE (never a hang).
  net::ClientOptions no_retry;
  no_retry.retry = net::RetryPolicy::None();
  auto gone = net::Client::Connect("127.0.0.1", server_->port(), no_retry);
  if (gone.ok()) {
    auto rs = gone->Execute("retrieve (NOTE.name)");
    EXPECT_FALSE(rs.ok());
  }
}

// ---------------------------------------------------------------------
// v2 error frames carry the retry_after_ms backoff hint.

TEST(ProtocolTest, ErrorFrameCarriesRetryAfterHint) {
  Status shed = Unavailable("server overloaded");
  shed.set_retry_after_ms(75);
  Status out;
  ASSERT_TRUE(net::DecodeErrorFrame(net::EncodeErrorFrame(shed), &out).ok());
  EXPECT_EQ(out.code(), StatusCode::kUnavailable);
  EXPECT_EQ(out.retry_after_ms(), 75u);

  // A status without a hint round-trips as 0 (no hint).
  Status plain;
  ASSERT_TRUE(
      net::DecodeErrorFrame(net::EncodeErrorFrame(NotFound("x")), &plain)
          .ok());
  EXPECT_EQ(plain.retry_after_ms(), 0u);
}

// ---------------------------------------------------------------------
// RetrySchedule: the decorrelated-jitter sequence is pinned per seed.

TEST(RetryScheduleTest, SequenceIsDeterministicPerSeed) {
  net::RetryPolicy p;  // default seed
  net::RetrySchedule a(p);
  net::RetrySchedule b(p);
  std::vector<uint32_t> sa, sb;
  for (int i = 0; i < 8; ++i) {
    sa.push_back(a.NextBackoffMs());
    sb.push_back(b.NextBackoffMs());
  }
  EXPECT_EQ(sa, sb);

  net::RetryPolicy other = p;
  other.jitter_seed = p.jitter_seed + 1;
  net::RetrySchedule c(other);
  std::vector<uint32_t> sc;
  for (int i = 0; i < 8; ++i) sc.push_back(c.NextBackoffMs());
  EXPECT_NE(sa, sc);
}

TEST(RetryScheduleTest, GoldenSequenceForDefaultSeed) {
  // Pinned output of the default policy (initial 5ms, max 1000ms, seed
  // "mdmr"). A change here is a behavior change to every client's retry
  // timeline — deliberate edits only.
  net::RetrySchedule s((net::RetryPolicy()));
  std::vector<uint32_t> got;
  for (int i = 0; i < 6; ++i) got.push_back(s.NextBackoffMs());
  EXPECT_EQ(got, (std::vector<uint32_t>{13, 9, 8, 14, 6, 17}));
}

TEST(RetryScheduleTest, BackoffStaysWithinDecorrelatedBounds) {
  net::RetryPolicy p;
  p.initial_backoff_ms = 10;
  p.max_backoff_ms = 100;
  p.jitter_seed = 42;
  net::RetrySchedule s(p);
  uint64_t prev = p.initial_backoff_ms;
  for (int i = 0; i < 200; ++i) {
    uint32_t b = s.NextBackoffMs();
    EXPECT_GE(b, p.initial_backoff_ms);
    EXPECT_LE(b, p.max_backoff_ms);
    EXPECT_LE(b, std::max<uint64_t>(3 * prev, p.initial_backoff_ms));
    prev = b;
  }
}

// ---------------------------------------------------------------------
// DeadlineBudget: elapsed/remaining bookkeeping.

TEST(DeadlineBudgetTest, UnlimitedBudgetAffordsEverything) {
  net::DeadlineBudget b(0);
  EXPECT_TRUE(b.unlimited());
  EXPECT_FALSE(b.exhausted());
  EXPECT_TRUE(b.CanAfford(1u << 30));
}

TEST(DeadlineBudgetTest, TracksElapsedAndExhausts) {
  net::DeadlineBudget wide(60'000);
  EXPECT_FALSE(wide.unlimited());
  EXPECT_FALSE(wide.exhausted());
  EXPECT_GT(wide.remaining_ms(), 50'000u);
  EXPECT_TRUE(wide.CanAfford(100));
  EXPECT_FALSE(wide.CanAfford(70'000));  // longer than the whole budget

  net::DeadlineBudget tiny(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(tiny.exhausted());
  EXPECT_EQ(tiny.remaining_ms(), 0u);
  EXPECT_FALSE(tiny.CanAfford(0));  // strictly positive margin required
}

// ---------------------------------------------------------------------
// Connection::Remote endpoint parsing: every malformed input is a typed
// INVALID_ARGUMENT, an unreachable target UNAVAILABLE — never a crash
// or a hang.

TEST(ConnectionRemoteTest, MalformedEndpointsAreInvalidArgument) {
  const char* cases[] = {
      "",                  // nothing at all
      "localhost",         // no port
      "localhost:",        // empty port
      ":7707",             // empty host
      "[]:7707",           // empty bracketed host
      "localhost:abc",     // non-numeric port
      "localhost:7x7",     // digits then junk
      "localhost:-1",      // sign is junk too
      "localhost:0",       // port 0 is the "pick one" sentinel, not a target
      "localhost:65536",   // out of range
      "localhost:999999",  // far out of range
      "::1:7707",          // unbracketed v6 literal is ambiguous
  };
  for (const char* ep : cases) {
    auto c = Connection::Remote(ep);
    ASSERT_FALSE(c.ok()) << ep;
    EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument) << ep;
    EXPECT_EQ(c.status().error_code(), ErrorCode::INVALID_ARGUMENT) << ep;
  }
}

TEST(ConnectionRemoteTest, UnreachableEndpointsAreUnavailable) {
  // Nothing listens here (port 1 is reserved and unbound in practice);
  // connect is refused immediately.
  net::ClientOptions copts;
  copts.retry = net::RetryPolicy::None();
  copts.connect_timeout_ms = 2000;
  auto refused = Connection::Remote("127.0.0.1:1", copts);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(refused.status().error_code(), ErrorCode::UNAVAILABLE);

  // An unresolvable name (RFC 2606 reserves .invalid) fails in the
  // resolver, also UNAVAILABLE.
  auto nxdomain =
      Connection::Remote("no-such-host.invalid:7707", copts);
  ASSERT_FALSE(nxdomain.ok());
  EXPECT_EQ(nxdomain.status().code(), StatusCode::kUnavailable);
}

TEST(ClientTest, EmptyHostIsInvalidArgument) {
  auto fd = net::DialTcp("", 7707, 100);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kInvalidArgument);
}

// Regression: Connect bounds the admission handshake recv with
// connect_timeout_ms, and that bound must be cleared before later
// requests — a leftover handshake timeout silently capped every recv
// on the original connection, so legitimate replies slower than
// connect_timeout_ms (server default deadline is 30s) spuriously
// failed UNAVAILABLE.
TEST(ClientTest, HandshakeTimeoutDoesNotCapLaterReplies) {
  // A hand-rolled server: answers the admission ping promptly, then
  // stalls well past connect_timeout_ms before answering the next one.
  int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<struct sockaddr*>(&addr),
                          &len),
            0);
  uint16_t port = ntohs(addr.sin_port);

  std::thread srv([lfd] {
    int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) return;
    auto answer_ping = [cfd](uint32_t stall_ms) {
      bool fatal = false;
      auto req = net::ReadFrame(cfd, net::kDefaultMaxFrameBytes, &fatal);
      if (!req.ok() || req->type != net::FrameType::kPing) return false;
      if (stall_ms != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
      net::Frame pong;
      pong.type = net::FrameType::kPong;
      return net::WriteFrame(cfd, pong).ok();
    };
    answer_ping(0);    // admission handshake: prompt
    answer_ping(600);  // next ping: 3x connect_timeout_ms
    ::close(cfd);
  });

  net::ClientOptions copts;
  copts.connect_timeout_ms = 200;  // bounds the *handshake* only
  copts.retry = net::RetryPolicy::None();  // a retry must not mask this
  auto client = net::Client::Connect("127.0.0.1", port, copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // With a stale handshake bound this recv would die UNAVAILABLE after
  // ~200ms; unbounded (deadline_ms = 0, attempt_timeout_ms = 0) it
  // must wait out the 600ms stall and succeed.
  EXPECT_TRUE(client->Ping().ok());
  client->Close();
  srv.join();
  ::close(lfd);
}

// ---------------------------------------------------------------------
// Client retry discipline over a live server.

TEST_F(NetServerTest, RetryBudgetNeverExceedsDeadline) {
  StartServer();
  net::ClientOptions copts;
  copts.deadline_ms = 300;
  copts.retry.max_attempts = 50;  // budget, not attempts, must stop us
  copts.retry.initial_backoff_ms = 5;
  auto conn = Connection::Remote("127.0.0.1", server_->port(), copts);
  ASSERT_TRUE(conn.ok());
  server_->Stop();  // every retry now fails to reconnect

  auto t0 = std::chrono::steady_clock::now();
  auto rs = conn->Execute("retrieve (k = count(NOTE.name))");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rs.status().error_code(), ErrorCode::DEADLINE_EXCEEDED);
  // The loop may start one last attempt just inside the budget, but it
  // never *sleeps* past it; connect-refused attempts are instant, so a
  // modest slack proves the bound.
  EXPECT_LE(elapsed, 300 + 700);
}

TEST_F(NetServerTest, AttemptsExhaustionIsUnavailable) {
  StartServer();
  net::ClientOptions copts;
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff_ms = 1;
  copts.retry.max_backoff_ms = 5;
  auto conn = Connection::Remote("127.0.0.1", server_->port(), copts);
  ASSERT_TRUE(conn.ok());
  server_->Stop();  // unlimited budget: attempts run out first
  auto rs = conn->Execute("retrieve (k = count(NOTE.name))");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(rs.status().error_code(), ErrorCode::UNAVAILABLE);
}

TEST_F(NetServerTest, IdempotentReadsRetryButMutationsDoNot) {
  StartServer();
  obs::Counter* retries = obs::Registry::Global()->GetCounter(
      "mdm_net_client_retries_total", "");

  // The factory wires a fault-injecting transport around each dial and
  // parks a pointer so the test can arm faults after the handshake.
  net::FaultInjectingTransport* current = nullptr;
  net::ClientOptions copts;
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff_ms = 1;
  copts.retry.max_backoff_ms = 5;
  copts.transport_factory =
      [&current](const std::string& host, uint16_t port,
                 uint32_t timeout_ms)
      -> Result<std::unique_ptr<net::Transport>> {
    auto base = net::DialTcpTransport(host, port, timeout_ms);
    if (!base.ok()) return base.status();
    auto faulty = std::make_unique<net::FaultInjectingTransport>(
        std::move(*base), net::FaultPlan{});
    current = faulty.get();
    return std::unique_ptr<net::Transport>(std::move(faulty));
  };

  {  // A read heals through a one-shot disconnect.
    auto conn = Connection::Remote("127.0.0.1", server_->port(), copts);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    ASSERT_NE(current, nullptr);
    uint64_t before = retries->value();
    current->FailAtOp(current->ops() + 1, FaultKind::kDisconnect);
    auto rs = conn->Execute("retrieve (k = count(NOTE.name))");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs->At(0, 0).AsInt(), kNotes);
    EXPECT_GE(retries->value() - before, 1u);
  }
  {  // The same fault on a mutation surfaces UNAVAILABLE, no retry.
    auto conn = Connection::Remote("127.0.0.1", server_->port(), copts);
    ASSERT_TRUE(conn.ok());
    uint64_t before = retries->value();
    current->FailAtOp(current->ops() + 1, FaultKind::kDisconnect);
    auto rs = conn->Execute("append to NOTE (name = 9999)");
    ASSERT_FALSE(rs.ok());
    EXPECT_EQ(rs.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(retries->value(), before);  // never retried
    // The database was not double-appended by any hidden replay: the
    // append died in the client's send, so the count is unchanged.
    auto check = Connection::Remote("127.0.0.1", server_->port());
    ASSERT_TRUE(check.ok());
    auto count = check->Execute("retrieve (k = count(NOTE.name))");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->At(0, 0).AsInt(), kNotes);
  }
}

// ---------------------------------------------------------------------
// Server self-protection.

TEST_F(NetServerTest, SigpipeSafeWhenClientVanishesMidResultSet) {
  // The client walks away mid-ResultSet; the server's writes to the
  // dead socket must fail with a status, not raise SIGPIPE (which would
  // kill this whole test process — server and client share it here).
  net::ServerOptions opts;
  opts.rows_per_page = 1;  // 200 pages: the disconnect lands mid-stream
  StartServer(opts);
  for (int round = 0; round < 3; ++round) {
    auto fd = net::DialTcp("127.0.0.1", server_->port(), 2000);
    ASSERT_TRUE(fd.ok());
    auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(
        {"range of n is NOTE\nretrieve (n.name)", 0}));
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t w = ::send(*fd, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      ASSERT_GT(w, 0);
      sent += static_cast<size_t>(w);
    }
    // Read one page so the server is committed to streaming, then bail.
    bool fatal = false;
    auto first = net::ReadFrame(*fd, net::kDefaultMaxFrameBytes, &fatal);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ::close(*fd);
  }
  // Give the connection threads a moment to hit the dead sockets.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Alive and serving: the writes EPIPEd quietly.
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto rs = conn->Execute("retrieve (k = count(NOTE.name))");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsInt(), kNotes);
}

TEST_F(NetServerTest, HandshakeTimeoutDropsSilentConnections) {
  net::ServerOptions opts;
  opts.handshake_timeout_ms = 150;
  StartServer(opts);
  obs::Counter* timeouts = obs::Registry::Global()->GetCounter(
      "mdm_net_handshake_timeouts_total", "");
  uint64_t before = timeouts->value();
  // Connect and say nothing — a slow-loris opening move.
  auto fd = net::DialTcp("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(fd.ok());
  // The server hangs up on us within the allowance (plus poll slack).
  uint8_t byte = 0;
  struct timeval tv = {3, 0};
  ::setsockopt(*fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ssize_t n = ::recv(*fd, &byte, 1, 0);
  EXPECT_LE(n, 0);  // EOF (0) or reset; never a payload
  ::close(*fd);
  for (int i = 0; i < 100 && timeouts->value() == before; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(timeouts->value(), before);
  // A well-behaved client is unaffected.
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  EXPECT_TRUE(conn->Ping().ok());
}

TEST_F(NetServerTest, IdleReaperFreesAbandonedConnections) {
  net::ServerOptions opts;
  opts.idle_timeout_ms = 150;
  StartServer(opts);
  obs::Counter* reaped = obs::Registry::Global()->GetCounter(
      "mdm_net_reaped_idle_total", "");
  uint64_t before = reaped->value();
  net::ClientOptions copts;
  copts.retry = net::RetryPolicy::None();
  auto conn =
      Connection::Remote("127.0.0.1", server_->port(), copts);
  ASSERT_TRUE(conn.ok());  // the handshake counts as traffic
  for (int i = 0; i < 200 && reaped->value() == before; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(reaped->value(), before);
  for (int i = 0; i < 100 && server_->active_connections() != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server_->active_connections(), 0u);  // the slot was freed
  // The reaped client sees a clean transport failure on next use.
  auto rs = conn->Execute("retrieve (k = count(NOTE.name))");
  EXPECT_FALSE(rs.ok());
}

TEST_F(NetServerTest, LoadSheddingAnswersUnavailableWithHint) {
  net::ServerOptions opts;
  opts.max_active_statements = 1;
  opts.shed_retry_after_ms = 37;
  StartServer(opts);

  // Hammer the single-statement watermark from several no-retry
  // clients; overlapping statements beyond the first get shed.
  constexpr int kThreads = 3;
  std::atomic<int> shed_seen{0};
  std::atomic<int> ok_seen{0};
  std::atomic<uint32_t> hint_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      net::ClientOptions copts;
      copts.retry = net::RetryPolicy::None();
      auto conn =
          Connection::Remote("127.0.0.1", server_->port(), copts);
      if (!conn.ok()) return;
      for (int i = 0; i < 40; ++i) {
        auto rs = conn->Execute(
            "range of a, b is NOTE\n"
            "retrieve (k = count(a.name)) where a.name = b.name");
        if (rs.ok()) {
          ok_seen.fetch_add(1);
        } else if (rs.status().code() == StatusCode::kUnavailable) {
          shed_seen.fetch_add(1);
          hint_seen.store(rs.status().retry_after_ms());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(ok_seen.load(), 0);    // the admitted statements completed
  EXPECT_GT(shed_seen.load(), 0);  // and overload was answered, not queued
  EXPECT_EQ(hint_seen.load(), 37u);
  EXPECT_GT(server_->shed_requests(), 0u);

  // With retries on, the same overload heals transparently.
  net::ClientOptions retrying;
  retrying.retry.max_attempts = 8;
  auto conn = Connection::Remote("127.0.0.1", server_->port(), retrying);
  ASSERT_TRUE(conn.ok());
  auto rs = conn->Execute("retrieve (k = count(NOTE.name))");
  EXPECT_TRUE(rs.ok()) << rs.status().ToString();
}

TEST_F(NetServerTest, WriteTimeoutCutsOffSlowConsumers) {
  net::ServerOptions opts;
  opts.write_timeout_ms = 200;
  opts.rows_per_page = 8;
  StartServer(opts);
  obs::Counter* cut = obs::Registry::Global()->GetCounter(
      "mdm_net_write_timeouts_total", "");
  uint64_t before = cut->value();

  // Seed ~64 rows of 4KB strings, then ask for the 64x64 cross product
  // (~32MB) and never read it: the kernel buffers fill and the server's
  // send blocks until SO_SNDTIMEO cuts the connection.
  {
    auto seed = Connection::Remote("127.0.0.1", server_->port());
    ASSERT_TRUE(seed.ok());
    ASSERT_TRUE(
        seed->Execute("define entity LYRIC (text = string)").ok());
    std::string big(4096, 'x');
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(
          seed->Execute("append to LYRIC (text = \"" + big + "\")").ok());
    }
  }
  auto fd = net::DialTcp("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(fd.ok());
  int small = 4096;  // shrink our receive window to fill buffers fast
  ::setsockopt(*fd, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(
      {"range of a, b is LYRIC\nretrieve (a.text, b.text)", 0}));
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t w = ::send(*fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    sent += static_cast<size_t>(w);
  }
  // Do not read. The server must cut us off rather than block forever.
  for (int i = 0; i < 500 && cut->value() == before; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(cut->value(), before);
  ::close(*fd);
  // The server remains fully available to well-behaved clients.
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  EXPECT_TRUE(conn->Execute("retrieve (k = count(NOTE.name))").ok());
}

}  // namespace
}  // namespace mdm

// The mdmd wire protocol and client/server stack (src/net): frame
// codec goldens, malformed-frame rejection, error transport fidelity,
// and loopback integration of concurrent remote clients against one
// server. The integration tests exercise real TCP sockets on 127.0.0.1
// and run under the tsan preset (a connection thread per client over
// the PR 4 locking stack).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "net/client.h"
#include "net/connection.h"
#include "net/protocol.h"
#include "net/server.h"
#include "quel/quel.h"
#include "rel/value.h"

namespace mdm {
namespace {

std::string Hex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xf];
  }
  return out;
}

// ---------------------------------------------------------------------
// common::ErrorCode — every Status carries a canonical code.

TEST(ErrorCodeTest, CanonicalMappingIsTotal) {
  EXPECT_EQ(CanonicalCode(StatusCode::kOk), ErrorCode::OK);
  EXPECT_EQ(CanonicalCode(StatusCode::kNotFound), ErrorCode::NOT_FOUND);
  for (StatusCode c :
       {StatusCode::kInvalidArgument, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kConstraintViolation, StatusCode::kParseError,
        StatusCode::kTypeError})
    EXPECT_EQ(CanonicalCode(c), ErrorCode::INVALID_ARGUMENT)
        << StatusCodeName(c);
  EXPECT_EQ(CanonicalCode(StatusCode::kCorruption), ErrorCode::CORRUPTION);
  EXPECT_EQ(CanonicalCode(StatusCode::kResourceExhausted),
            ErrorCode::RESOURCE_EXHAUSTED);
  EXPECT_EQ(CanonicalCode(StatusCode::kDeadlineExceeded),
            ErrorCode::DEADLINE_EXCEEDED);
  EXPECT_EQ(CanonicalCode(StatusCode::kIoError), ErrorCode::UNAVAILABLE);
  EXPECT_EQ(CanonicalCode(StatusCode::kUnavailable),
            ErrorCode::UNAVAILABLE);
  EXPECT_EQ(CanonicalCode(StatusCode::kUnimplemented),
            ErrorCode::INTERNAL);
  EXPECT_EQ(CanonicalCode(StatusCode::kInternal), ErrorCode::INTERNAL);
}

TEST(ErrorCodeTest, StatusExposesErrorCode) {
  EXPECT_EQ(Status::OK().error_code(), ErrorCode::OK);
  EXPECT_EQ(NotFound("x").error_code(), ErrorCode::NOT_FOUND);
  EXPECT_EQ(ParseError("x").error_code(), ErrorCode::INVALID_ARGUMENT);
  EXPECT_EQ(ResourceExhausted("x").error_code(),
            ErrorCode::RESOURCE_EXHAUSTED);
  EXPECT_EQ(DeadlineExceeded("x").error_code(),
            ErrorCode::DEADLINE_EXCEEDED);
  EXPECT_EQ(Unavailable("x").error_code(), ErrorCode::UNAVAILABLE);
  EXPECT_STREQ(ErrorCodeName(ErrorCode::RESOURCE_EXHAUSTED),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::OK), "OK");
}

// ---------------------------------------------------------------------
// Frame codec goldens: the wire encoding is a compatibility surface
// (docs/PROTOCOL.md); byte-level changes are protocol revisions.

TEST(ProtocolGoldenTest, ExecuteRequestFrame) {
  net::ExecuteRequest req;
  req.script = "retrieve (NOTE.name)";
  req.deadline_ms = 250;
  EXPECT_EQ(Hex(net::EncodeFrame(net::EncodeExecuteRequest(req))),
            "4d444d500101000019000000312b51a4fa000000147265747269657665"
            "20284e4f54452e6e616d6529");
}

TEST(ProtocolGoldenTest, ErrorFrame) {
  EXPECT_EQ(Hex(net::EncodeFrame(net::EncodeErrorFrame(
                NotFound("no entity type named FOO")))),
            "4d444d50010300001b000000c5f94d0a0102186e6f20656e7469747920"
            "74797065206e616d656420464f4f");
}

TEST(ProtocolGoldenTest, ResultPageFrames) {
  quel::ResultSet rs;
  rs.columns = {"n.name", "n.pitch"};
  rs.rows.push_back({rel::Value::Int(7), rel::Value::String("G4")});
  rs.rows.push_back({rel::Value::Int(9), rel::Value::String("B4")});
  rs.rows.push_back({rel::Value::Null(), rel::Value::Ref(17)});
  rs.affected = 3;
  auto pages = net::EncodeResultSetPages(rs, 2);
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(Hex(net::EncodeFrame(pages[0])),
            "4d444d50010200002f0000009680e84c0102066e2e6e616d65076e2e70"
            "6974636800020202070000000000000004024734020209000000000000"
            "0004024234");
  EXPECT_EQ(Hex(net::EncodeFrame(pages[1])),
            "4d444d500102000015000000a5e6e7d50201020006110000000000000"
            "00300000000000000");
}

// ---------------------------------------------------------------------
// Codec round trips.

TEST(ProtocolTest, ExecuteRequestRoundTrip) {
  net::ExecuteRequest req;
  req.script = "range of n is NOTE\nretrieve (n.name)";
  req.deadline_ms = 1234;
  auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(req));
  size_t consumed = 0;
  auto frame = net::DecodeFrame(bytes.data(), bytes.size(),
                                net::kDefaultMaxFrameBytes, &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(consumed, bytes.size());
  auto decoded = net::DecodeExecuteRequest(*frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->script, req.script);
  EXPECT_EQ(decoded->deadline_ms, req.deadline_ms);
}

TEST(ProtocolTest, ErrorFramesRoundTripEveryCodeIntact) {
  const Status statuses[] = {
      InvalidArgument("m1"),   NotFound("m2"),
      AlreadyExists("m3"),     FailedPrecondition("m4"),
      OutOfRange("m5"),        Corruption("m6"),
      ConstraintViolation("m7"), ParseError("m8"),
      TypeError("m9"),         IoError("m10"),
      Unimplemented("m11"),    Internal("m12"),
      ResourceExhausted("m13"), DeadlineExceeded("m14"),
      Unavailable("m15"),
  };
  for (const Status& s : statuses) {
    Status out;
    ASSERT_TRUE(
        net::DecodeErrorFrame(net::EncodeErrorFrame(s), &out).ok());
    EXPECT_EQ(out.code(), s.code()) << s.ToString();
    EXPECT_EQ(out.error_code(), s.error_code()) << s.ToString();
    EXPECT_EQ(out.message(), s.message());
  }
}

TEST(ProtocolTest, ResultSetPagingRoundTrip) {
  quel::ResultSet rs;
  rs.columns = {"a", "b", "c"};
  rs.explain = "plan text";
  rs.affected = 42;
  for (int i = 0; i < 5; ++i)
    rs.rows.push_back({rel::Value::Int(i),
                       rel::Value::String("s" + std::to_string(i)),
                       rel::Value::Rat(Rational(i, 4))});
  auto pages = net::EncodeResultSetPages(rs, 2);
  ASSERT_EQ(pages.size(), 3u);

  quel::ResultSet out;
  bool done = false;
  for (const net::Frame& page : pages) {
    ASSERT_FALSE(done);
    ASSERT_TRUE(net::DecodeResultPage(page, &out, &done).ok());
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(out.columns, rs.columns);
  EXPECT_EQ(out.explain, rs.explain);
  EXPECT_EQ(out.affected, rs.affected);
  ASSERT_EQ(out.rows.size(), rs.rows.size());
  for (size_t r = 0; r < rs.rows.size(); ++r)
    for (size_t c = 0; c < rs.columns.size(); ++c)
      EXPECT_TRUE(out.rows[r][c].Equals(rs.rows[r][c]));
}

TEST(ProtocolTest, EmptyResultSetIsOnePage) {
  quel::ResultSet rs;
  rs.affected = 7;
  auto pages = net::EncodeResultSetPages(rs, 100);
  ASSERT_EQ(pages.size(), 1u);
  quel::ResultSet out;
  bool done = false;
  ASSERT_TRUE(net::DecodeResultPage(pages[0], &out, &done).ok());
  EXPECT_TRUE(done);
  EXPECT_TRUE(out.rows.empty());
  EXPECT_EQ(out.affected, 7u);
}

// ---------------------------------------------------------------------
// Malformed frames: every rejection is a typed error.

TEST(ProtocolTest, TruncatedFramesAreCorruption) {
  auto bytes = net::EncodeFrame(net::EncodeErrorFrame(NotFound("x")));
  for (size_t cut : {size_t{0}, size_t{5}, net::kFrameHeaderBytes,
                     bytes.size() - 1}) {
    auto r = net::DecodeFrame(bytes.data(), cut);
    ASSERT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << "cut=" << cut;
    EXPECT_EQ(r.status().error_code(), ErrorCode::CORRUPTION);
  }
}

TEST(ProtocolTest, BadMagicIsCorruption) {
  auto bytes = net::EncodeFrame(net::EncodeErrorFrame(NotFound("x")));
  bytes[0] ^= 0xff;
  auto r = net::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, BadVersionIsInvalidArgument) {
  auto bytes = net::EncodeFrame(net::EncodeErrorFrame(NotFound("x")));
  bytes[4] = net::kProtocolVersion + 1;
  auto r = net::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().error_code(), ErrorCode::INVALID_ARGUMENT);
}

TEST(ProtocolTest, OversizedFrameIsResourceExhausted) {
  net::ExecuteRequest req;
  req.script = std::string(2048, 'x');
  auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(req));
  auto r = net::DecodeFrame(bytes.data(), bytes.size(), /*max=*/1024);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.status().error_code(), ErrorCode::RESOURCE_EXHAUSTED);
}

TEST(ProtocolTest, BadChecksumIsCorruption) {
  auto bytes = net::EncodeFrame(net::EncodeErrorFrame(NotFound("x")));
  bytes.back() ^= 0x01;  // flip a payload bit; crc no longer matches
  auto r = net::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, IsIdempotentScript) {
  EXPECT_TRUE(net::IsIdempotentScript(
      "range of n is NOTE\nretrieve (n.name)"));
  EXPECT_TRUE(net::IsIdempotentScript(
      "explain retrieve (NOTE.name) where NOTE.name = 3"));
  EXPECT_FALSE(net::IsIdempotentScript("append to NOTE (name = 7)"));
  EXPECT_FALSE(net::IsIdempotentScript(
      "replace n (pitch = \"A4\") where n.name = 7"));
  EXPECT_FALSE(net::IsIdempotentScript("delete n where n.name = 7"));
  EXPECT_FALSE(net::IsIdempotentScript(
      "define entity NOTE (name = integer)"));
  // Substrings of keywords do not disqualify.
  EXPECT_TRUE(net::IsIdempotentScript(
      "retrieve (n.name) where n.definedness = 1"));
}

// ---------------------------------------------------------------------
// Loopback integration: a real server on 127.0.0.1.

class NetServerTest : public ::testing::Test {
 protected:
  static constexpr int kNotes = 200;

  void StartServer(net::ServerOptions opts = {}) {
    opts.port = 0;
    server_ = std::make_unique<net::Server>(&db_, opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  void SetUp() override {
    auto ddl = ddl::ExecuteDdl(R"(
      define entity CHORD (name = integer)
      define entity NOTE (name = integer)
      define ordering note_in_chord (NOTE) under CHORD
    )",
                               &db_);
    ASSERT_TRUE(ddl.ok());
    auto chord = db_.CreateEntity("CHORD");
    ASSERT_TRUE(chord.ok());
    ASSERT_TRUE(
        db_.SetAttribute(*chord, "name", rel::Value::Int(1)).ok());
    for (int i = 0; i < kNotes; ++i) {
      auto note = db_.CreateEntity("NOTE");
      ASSERT_TRUE(note.ok());
      ASSERT_TRUE(
          db_.SetAttribute(*note, "name", rel::Value::Int(i)).ok());
      ASSERT_TRUE(db_.AppendChild("note_in_chord", *chord, *note).ok());
    }
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  er::Database db_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(NetServerTest, RemoteExecuteMatchesLocal) {
  StartServer();
  auto remote = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  Connection local = Connection::Local(&db_);

  const char* script = "retrieve (k = count(NOTE.name))";
  auto rr = remote->Execute(script);
  auto lr = local.Execute(script);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  ASSERT_TRUE(lr.ok());
  EXPECT_EQ(rr->ToString(), lr->ToString());
  ASSERT_EQ(rr->rows.size(), 1u);
  EXPECT_EQ(rr->At(0, 0).AsInt(), kNotes);
}

TEST_F(NetServerTest, MultiPageResultArrivesExactly) {
  net::ServerOptions opts;
  opts.rows_per_page = 7;  // forces ceil(200/7) = 29 pages
  StartServer(opts);
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  auto rs = conn->Execute("range of n is NOTE\nretrieve (n.name)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), static_cast<size_t>(kNotes));
  // Every note name exactly once, in scan order.
  for (int i = 0; i < kNotes; ++i) EXPECT_EQ(rs->At(i, 0).AsInt(), i);
}

TEST_F(NetServerTest, DdlAndMutationsOverTheWire) {
  StartServer();
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  auto ddl = conn->Execute("define entity LYRIC (text = string)");
  ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
  EXPECT_EQ(ddl->At(0, 0).AsInt(), 1);  // one entity type defined
  ASSERT_TRUE(conn->Execute("append to LYRIC (text = \"la\")").ok());
  auto rs = conn->Execute("retrieve (k = count(LYRIC.text))");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsInt(), 1);
  // The mutation is visible in-process too: one shared database.
  EXPECT_EQ(*db_.CountEntities("LYRIC"), 1u);
}

TEST_F(NetServerTest, ErrorsArriveCodeIntact) {
  StartServer();
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());

  auto nf = conn->Execute("retrieve (NOPE.x)");
  ASSERT_FALSE(nf.ok());
  EXPECT_EQ(nf.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(nf.status().error_code(), ErrorCode::NOT_FOUND);
  EXPECT_FALSE(nf.status().message().empty());

  auto pe = conn->Execute("retrieve ((((");
  ASSERT_FALSE(pe.ok());
  EXPECT_EQ(pe.status().code(), StatusCode::kParseError);
  EXPECT_EQ(pe.status().error_code(), ErrorCode::INVALID_ARGUMENT);
}

TEST_F(NetServerTest, FourConcurrentClientsExactCounts) {
  StartServer();
  constexpr int kClients = 4;
  constexpr int kRequests = 25;
  std::atomic<int> ok{0};
  std::atomic<int> exact{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto conn = Connection::Remote("127.0.0.1", server_->port());
      if (!conn.ok()) return;
      for (int i = 0; i < kRequests; ++i) {
        const char* script =
            (t + i) % 2 == 0
                ? "retrieve (k = count(NOTE.name))"
                : "range of n is NOTE\nrange of c is CHORD\n"
                  "retrieve (k = count(n)) "
                  "where n under c in note_in_chord and c.name = 1";
        auto rs = conn->Execute(script);
        if (!rs.ok()) continue;
        ok.fetch_add(1);
        if (rs->rows.size() == 1 && rs->At(0, 0).AsInt() == kNotes)
          exact.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Exact-count assertions: every request succeeded and saw all 200
  // notes (the database is static during this test).
  EXPECT_EQ(ok.load(), kClients * kRequests);
  EXPECT_EQ(exact.load(), kClients * kRequests);
  // The server counts a request after writing its reply, so the last
  // increment can trail the client's read by a moment; it can settle at
  // exactly kClients * kRequests and never beyond.
  const auto want = static_cast<uint64_t>(kClients * kRequests);
  for (int i = 0; i < 100 && server_->requests_served() < want; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server_->requests_served(), want);
  EXPECT_EQ(server_->active_connections(), 0u);  // all clients closed
}

TEST_F(NetServerTest, MalformedFramesGetTypedErrorsWithoutKillingServer) {
  net::ServerOptions opts;
  opts.max_frame_bytes = 1024;
  StartServer(opts);
  auto fd = net::DialTcp("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(fd.ok());

  auto expect_error = [&](const std::vector<uint8_t>& bytes,
                          StatusCode want) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t w = ::send(*fd, bytes.data() + sent, bytes.size() - sent, 0);
      ASSERT_GT(w, 0);
      sent += static_cast<size_t>(w);
    }
    bool fatal = false;
    auto reply = net::ReadFrame(*fd, net::kDefaultMaxFrameBytes, &fatal);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->type, net::FrameType::kError);
    Status remote;
    ASSERT_TRUE(net::DecodeErrorFrame(*reply, &remote).ok());
    EXPECT_EQ(remote.code(), want);
  };

  // Bad checksum: framing intact, typed Corruption comes back.
  {
    auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(
        {"retrieve (NOTE.name)", 0}));
    bytes.back() ^= 0x01;
    expect_error(bytes, StatusCode::kCorruption);
  }
  // Unsupported version.
  {
    auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(
        {"retrieve (NOTE.name)", 0}));
    bytes[4] = net::kProtocolVersion + 1;
    expect_error(bytes, StatusCode::kInvalidArgument);
  }
  // Oversized payload (2 KiB against the 1 KiB server limit).
  {
    net::ExecuteRequest big;
    big.script = std::string(2048, 'x');
    expect_error(net::EncodeFrame(net::EncodeExecuteRequest(big)),
                 StatusCode::kResourceExhausted);
  }
  // The same connection still serves real requests afterwards.
  {
    auto bytes = net::EncodeFrame(net::EncodeExecuteRequest(
        {"retrieve (k = count(NOTE.name))", 0}));
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t w = ::send(*fd, bytes.data() + sent, bytes.size() - sent, 0);
      ASSERT_GT(w, 0);
      sent += static_cast<size_t>(w);
    }
    bool fatal = false;
    auto reply = net::ReadFrame(*fd, net::kDefaultMaxFrameBytes, &fatal);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, net::FrameType::kResultPage);
  }
  ::close(*fd);

  // Garbage magic kills only that connection; the server keeps
  // accepting new ones.
  auto fd2 = net::DialTcp("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(fd2.ok());
  std::vector<uint8_t> garbage(64, 0xAB);
  ASSERT_GT(::send(*fd2, garbage.data(), garbage.size(), 0), 0);
  ::close(*fd2);
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_TRUE(conn->Execute("retrieve (k = count(NOTE.name))").ok());
}

TEST_F(NetServerTest, BackpressureRejectsBeyondMaxConnections) {
  net::ServerOptions opts;
  opts.max_connections = 1;
  StartServer(opts);
  auto first = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The admission handshake of the second connection reports the limit.
  auto second = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(second.status().error_code(), ErrorCode::RESOURCE_EXHAUSTED);
  // The admitted client is unaffected.
  EXPECT_TRUE(first->Execute("retrieve (k = count(NOTE.name))").ok());
}

TEST_F(NetServerTest, DeadlineExceededIsReported) {
  StartServer();
  net::ClientOptions copts;
  copts.deadline_ms = 1;  // the n×n scan below takes well over 1ms
  auto conn =
      Connection::Remote("127.0.0.1", server_->port(), copts);
  ASSERT_TRUE(conn.ok());
  auto rs = conn->Execute(
      "range of a, b is NOTE\n"
      "retrieve (a.name) where a.name = b.name");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rs.status().error_code(), ErrorCode::DEADLINE_EXCEEDED);
  // The connection survives a deadline miss. (Ping, not Execute: the
  // 1ms deadline applies to every request on this connection, and under
  // sanitizers even the count query can miss it.)
  EXPECT_TRUE(conn->Ping().ok());
}

TEST_F(NetServerTest, StopDrainsCleanly) {
  StartServer();
  auto conn = Connection::Remote("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Execute("retrieve (k = count(NOTE.name))").ok());
  server_->Stop();
  EXPECT_EQ(server_->active_connections(), 0u);
  // The drained server refuses further traffic: the request or its
  // reply fails with a transport-level UNAVAILABLE (never a hang).
  net::ClientOptions no_retry;
  no_retry.retry_reads = 0;
  auto gone = net::Client::Connect("127.0.0.1", server_->port(), no_retry);
  if (gone.ok()) {
    auto rs = gone->Execute("retrieve (NOTE.name)");
    EXPECT_FALSE(rs.ok());
  }
}

}  // namespace
}  // namespace mdm

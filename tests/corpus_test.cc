// Corpus generator + loader properties (tier-1).
//
// The macro-benchmark's foundation is a generator whose every output
// parses cleanly through the real DARMS front end and a loader whose
// in-memory models agree with what the database actually stored. Both
// properties are checked here over a wide seed sweep, plus a seeded
// mutation fuzz asserting the parser fails with typed Statuses (never
// crashes) on corrupted corpus text.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "corpus/generator.h"
#include "corpus/loader.h"
#include "darms/darms.h"
#include "er/database.h"
#include "net/connection.h"

namespace mdm::corpus {
namespace {

// Satellite acceptance: the round-trip property holds for >= 100 seeds.
constexpr uint64_t kCorpusSeeds = 30;
constexpr int kScoresPerSeed = 4;  // 30 * 4 = 120 generated scores

TEST(CorpusGeneratorTest, RoundTripStableAcrossSeeds) {
  for (uint64_t seed = 0; seed < kCorpusSeeds; ++seed) {
    CorpusSpec cs;
    cs.seed = seed;
    cs.scores = kScoresPerSeed;
    cs.target_total_notes = 400;
    for (int i = 0; i < kScoresPerSeed; ++i) {
      ScoreSpec spec = DeriveScoreSpec(cs, i);
      GeneratedScore gen = GenerateScore(spec);
      ASSERT_FALSE(gen.user_darms.empty());
      ASSERT_GT(gen.notes, 0);

      // The compact form the loader feeds the importer parses cleanly...
      auto items = darms::ParseDarms(gen.user_darms);
      ASSERT_TRUE(items.ok()) << "seed " << seed << " score " << i << ": "
                              << items.status().ToString() << "\n"
                              << gen.user_darms;
      // ...into exactly the items the generator produced (stable
      // re-emission: encode(parse(encode(items))) == encode(items)).
      EXPECT_EQ(darms::EncodeUser(*items), gen.user_darms);
      EXPECT_EQ(darms::EncodeCanonical(*items), gen.canonical_darms);

      // The canonical form is a fixed point of the canonizer.
      auto canon = darms::Canonicalize(gen.canonical_darms);
      ASSERT_TRUE(canon.ok()) << canon.status().ToString();
      EXPECT_EQ(*canon, gen.canonical_darms);

      // Parsed stream agrees with the generator's own counts.
      int notes = 0, rests = 0, barlines = 0;
      for (const darms::DarmsItem& item : *items) {
        if (item.kind == darms::DarmsItem::Kind::kNote) ++notes;
        if (item.kind == darms::DarmsItem::Kind::kRest) ++rests;
        if (item.kind == darms::DarmsItem::Kind::kBarline ||
            item.kind == darms::DarmsItem::Kind::kFinalBarline)
          ++barlines;
      }
      EXPECT_EQ(notes, gen.notes);
      EXPECT_EQ(rests, gen.rests);
      EXPECT_EQ(barlines, gen.measures);
    }
  }
}

TEST(CorpusGeneratorTest, DeterministicInSeed) {
  ScoreSpec spec;
  spec.seed = 1234;
  spec.target_notes = 200;
  GeneratedScore a = GenerateScore(spec);
  GeneratedScore b = GenerateScore(spec);
  EXPECT_EQ(a.user_darms, b.user_darms);
  EXPECT_EQ(a.canonical_darms, b.canonical_darms);
  EXPECT_EQ(a.notes, b.notes);
  spec.seed = 1235;
  GeneratedScore c = GenerateScore(spec);
  EXPECT_NE(a.user_darms, c.user_darms);
}

TEST(CorpusGeneratorTest, TracksTargetNotes) {
  for (int target : {50, 500, 2000}) {
    ScoreSpec spec;
    spec.seed = 7;
    spec.target_notes = target;
    GeneratedScore gen = GenerateScore(spec);
    // Generation closes the measure after crossing the target, so the
    // overshoot is bounded by one measure of notes.
    EXPECT_GE(gen.notes, target);
    EXPECT_LE(gen.notes, target + 32);
  }
}

// Seeded mutation fuzz: corrupt generated corpus text and assert the
// parser and importer return typed Statuses — no crash, no hang, and
// never a success that misreports itself. (The specific historical
// crashers live as named regressions in darms_test.cc.)
TEST(CorpusFuzzTest, MutatedScoresFailWithTypedStatus) {
  ScoreSpec spec;
  spec.seed = 99;
  spec.target_notes = 120;
  const std::string base = GenerateScore(spec).user_darms;
  Rng rng(0xFADED);
  const char kBytes[] = "!KMR()@$,/0123456789WHQES#-N.ZU ";
  for (int round = 0; round < 300; ++round) {
    std::string text = base;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(text.size());
      switch (rng.Uniform(3)) {
        case 0:  // flip a byte
          text[pos] = kBytes[rng.Uniform(sizeof(kBytes) - 1)];
          break;
        case 1:  // insert a byte
          text.insert(pos, 1, kBytes[rng.Uniform(sizeof(kBytes) - 1)]);
          break;
        default:  // truncate
          text.resize(pos);
          break;
      }
      if (text.empty()) break;
    }
    auto items = darms::ParseDarms(text);
    if (!items.ok())
      EXPECT_FALSE(items.status().message().empty()) << text;
    er::Database db;
    auto import = darms::ImportDarms(&db, text, "fuzz");
    if (!import.ok())
      EXPECT_FALSE(import.status().message().empty()) << text;
  }
}

TEST(CorpusLoaderTest, ModelsAgreeWithDatabase) {
  er::Database db;
  LoadOptions options;
  options.spec.seed = 5;
  options.spec.scores = 4;
  options.spec.target_total_notes = 400;
  auto corpus = LoadCorpus(&db, options);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  ASSERT_EQ(corpus->tenants.size(), 4u);

  int64_t notes = 0;
  for (const TenantModel& t : corpus->tenants) {
    EXPECT_EQ(t.notes, static_cast<int>(t.keys.size()));
    EXPECT_GT(t.measures, 0);
    EXPECT_FALSE(t.incipit_text.empty());
    int counted = 0;
    for (const auto& [key, n] : t.key_count) {
      EXPECT_GE(key, 0);
      counted += n;
    }
    EXPECT_EQ(counted, t.notes);
    notes += t.notes;
  }
  EXPECT_EQ(notes, corpus->total_notes);

  // Cross-check tenant 0 through the public query surface.
  Connection conn = Connection::Local(&db);
  auto rs = conn.Execute(
      "range of n is NOTE range of s is STAFF "
      "retrieve (c = count(n)) where n under s in note_on_staff "
      "and s.number = 0");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->At(0, 0).AsInt(), corpus->tenants[0].notes);

  // The thematic index has one entry per score, addressable by number.
  auto entry = conn.Execute(
      "range of e is CATALOG_ENTRY retrieve (e.title) "
      "where e.number = \"2\"");
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  ASSERT_EQ(entry->rows.size(), 1u);
  EXPECT_EQ(entry->At(0, 0).AsString(), "score-2");

  // The workload's secondary indexes were defined by the load.
  EXPECT_NE(db.FindAttrIndexByName("idx_score_title"), nullptr);
  EXPECT_NE(db.FindAttrIndexByName("idx_note_midi_key"), nullptr);
  EXPECT_NE(db.FindAttrIndexByName("idx_entry_incipit"), nullptr);
}

TEST(CorpusLoaderTest, IncipitCountsCoverAllScores) {
  er::Database db;
  LoadOptions options;
  options.spec.seed = 11;
  options.spec.scores = 6;
  options.spec.target_total_notes = 300;
  auto corpus = LoadCorpus(&db, options);
  ASSERT_TRUE(corpus.ok());
  int total = 0;
  for (const auto& [text, n] : corpus->incipit_count) {
    EXPECT_FALSE(text.empty());
    total += n;
  }
  EXPECT_EQ(total, 6);
}

}  // namespace
}  // namespace mdm::corpus

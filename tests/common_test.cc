#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/random.h"
#include "common/rational.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace mdm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no entity type named FOO");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: no entity type named FOO");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return InvalidArgument("not positive");
  return v;
}

Result<int> DoubleIt(int v) {
  MDM_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = DoubleIt(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad = DoubleIt(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(ParsePositive(-5).value_or(7), 7);
  EXPECT_EQ(ParsePositive(5).value_or(7), 5);
}

TEST(RationalTest, NormalizesOnConstruction) {
  Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
  Rational zero(0, 17);
  EXPECT_EQ(zero.den(), 1);
  EXPECT_TRUE(zero.IsZero());
}

TEST(RationalTest, TripletArithmeticIsExact) {
  // The motivating case: three triplet eighths fill one quarter exactly.
  Rational triplet(1, 12);
  Rational sum = triplet + triplet + triplet;
  EXPECT_EQ(sum, Rational(1, 4));
}

TEST(RationalTest, ArithmeticIdentities) {
  Rational a(3, 4), b(5, 6);
  EXPECT_EQ(a + b, Rational(19, 12));
  EXPECT_EQ(b - a, Rational(1, 12));
  EXPECT_EQ(a * b, Rational(5, 8));
  EXPECT_EQ(a / b, Rational(9, 10));
  EXPECT_EQ(a - a, Rational(0));
}

TEST(RationalTest, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(7, 8), Rational(3, 4));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
}

TEST(RationalTest, FloorHandlesNegatives) {
  EXPECT_EQ(Rational(7, 2).Floor(), 3);
  EXPECT_EQ(Rational(-7, 2).Floor(), -4);
  EXPECT_EQ(Rational(4).Floor(), 4);
  EXPECT_EQ(Rational(-4).Floor(), -4);
}

TEST(RationalTest, ParseRoundTrip) {
  Rational r;
  ASSERT_TRUE(Rational::Parse("3/4", &r));
  EXPECT_EQ(r, Rational(3, 4));
  ASSERT_TRUE(Rational::Parse("-5", &r));
  EXPECT_EQ(r, Rational(-5));
  ASSERT_TRUE(Rational::Parse("-6/8", &r));
  EXPECT_EQ(r, Rational(-3, 4));
  EXPECT_FALSE(Rational::Parse("", &r));
  EXPECT_FALSE(Rational::Parse("abc", &r));
  EXPECT_FALSE(Rational::Parse("1/0", &r));
  EXPECT_FALSE(Rational::Parse("1/", &r));
  EXPECT_FALSE(Rational::Parse("1/2x", &r));
}

TEST(RationalTest, ToString) {
  EXPECT_EQ(Rational(3, 4).ToString(), "3/4");
  EXPECT_EQ(Rational(8, 4).ToString(), "2");
  EXPECT_EQ(Rational(-1, 2).ToString(), "-1/2");
}

TEST(StringsTest, SplitJoinRoundTrip) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrJoin(parts, ","), "a,b,,c");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  hello \t\n"), "hello");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("x"), "x");
}

TEST(StringsTest, CaseConversionAndCompare) {
  EXPECT_EQ(AsciiLower("MiXeD"), "mixed");
  EXPECT_EQ(AsciiUpper("MiXeD"), "MIXED");
  EXPECT_TRUE(EqualsIgnoreCase("Chord", "CHORD"));
  EXPECT_FALSE(EqualsIgnoreCase("Chord", "Chords"));
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("define entity", "define"));
  EXPECT_FALSE(StartsWith("def", "define"));
  EXPECT_TRUE(EndsWith("note_in_chord", "chord"));
  EXPECT_FALSE(EndsWith("chord", "note_in_chord"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%s-%d", "BWV", 578), "BWV-578");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutF64(3.25);

  ByteReader r(w.data());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double f64;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetF64(&f64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f64, 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintBoundaries) {
  ByteWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 16383, 16384, UINT64_MAX};
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.data());
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(r.GetVarint(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, StringRoundTripIncludingEmbeddedNul) {
  ByteWriter w;
  std::string s("with\0nul", 8);
  w.PutString(s);
  w.PutString("");
  ByteReader r(w.data());
  std::string a, b;
  ASSERT_TRUE(r.GetString(&a).ok());
  ASSERT_TRUE(r.GetString(&b).ok());
  EXPECT_EQ(a, s);
  EXPECT_EQ(b, "");
}

TEST(BytesTest, ExhaustionIsCorruption) {
  ByteWriter w;
  w.PutU8(1);
  ByteReader r(w.data());
  uint32_t v;
  EXPECT_EQ(r.GetU32(&v).code(), StatusCode::kCorruption);
}

TEST(BytesTest, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926 is the standard check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace mdm

#include <gtest/gtest.h>

#include "analysis/harmony.h"
#include "cmn/schema.h"
#include "cmn/score_builder.h"
#include "cmn/timbral.h"
#include "darms/darms.h"
#include "er/database.h"
#include "er/versions.h"
#include "mtime/tempo_map.h"

namespace mdm {
namespace {

using er::EntityId;

class TimbralTest : public testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(cmn::InstallCmnSchema(&db_).ok()); }
  er::Database db_;
};

TEST_F(TimbralTest, OrchestraHierarchyAndRouting) {
  cmn::OrchestraBuilder orch(&db_);
  auto orchestra = orch.CreateOrchestra("chamber");
  ASSERT_TRUE(orchestra.ok());
  auto strings = orch.AddSection(*orchestra, "strings");
  auto winds = orch.AddSection(*orchestra, "winds");
  auto violin = orch.AddInstrument(*strings, "violin", 40);
  auto clarinet = orch.AddInstrument(*winds, "clarinet in Bb", 71, -2);
  ASSERT_TRUE(violin.ok());
  ASSERT_TRUE(clarinet.ok());
  auto violin_part = orch.AddPart(*violin, "violin I");
  auto clarinet_part = orch.AddPart(*clarinet, "clarinet I");
  cmn::ScoreBuilder builder(&db_);
  auto v1 = builder.AddVoice(1);
  auto v2 = builder.AddVoice(2);
  ASSERT_TRUE(orch.AssignVoice(*violin_part, *v1).ok());
  ASSERT_TRUE(orch.AssignVoice(*clarinet_part, *v2).ok());

  auto routes = cmn::RouteVoices(db_, *orchestra);
  ASSERT_TRUE(routes.ok());
  ASSERT_EQ(routes->size(), 2u);
  EXPECT_EQ((*routes)[0].voice, *v1);
  EXPECT_EQ((*routes)[0].channel, 0);
  EXPECT_EQ((*routes)[0].midi_program, 40);
  EXPECT_EQ((*routes)[1].voice, *v2);
  EXPECT_EQ((*routes)[1].channel, 1);
  EXPECT_EQ((*routes)[1].transposition, -2);
  // Bad program rejected.
  EXPECT_EQ(orch.AddInstrument(*winds, "bad", 200).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TimbralTest, ChannelAssignmentSkipsPercussion) {
  cmn::OrchestraBuilder orch(&db_);
  auto orchestra = orch.CreateOrchestra("big band");
  auto section = orch.AddSection(*orchestra, "all");
  for (int i = 0; i < 12; ++i)
    ASSERT_TRUE(orch.AddInstrument(*section, "inst" + std::to_string(i), i)
                    .ok());
  // Channels assigned to instruments even with no parts/voices yet.
  auto routes = cmn::RouteVoices(db_, *orchestra);
  ASSERT_TRUE(routes.ok());
  EXPECT_TRUE(routes->empty());  // no voices assigned
  // Attach one part+voice per instrument and re-route.
  cmn::ScoreBuilder builder(&db_);
  auto sections = db_.Children(cmn::kSectionInOrchestra, *orchestra);
  auto instruments = db_.Children(cmn::kInstrumentInSection, *section);
  int n = 0;
  for (EntityId instrument : *instruments) {
    auto part = orch.AddPart(instrument, "p" + std::to_string(n));
    auto voice = builder.AddVoice(n++);
    ASSERT_TRUE(orch.AssignVoice(*part, *voice).ok());
  }
  (void)sections;
  routes = cmn::RouteVoices(db_, *orchestra);
  ASSERT_EQ(routes->size(), 12u);
  for (const auto& route : *routes) EXPECT_NE(route.channel, 9);
}

TEST_F(TimbralTest, PerformWithOrchestraRoutesAndTransposes) {
  cmn::ScoreBuilder builder(&db_);
  auto score = builder.CreateScore("duet");
  auto movement = builder.AddMovement(*score, "I");
  auto measure = builder.AddMeasure(*movement, 1, {4, 4});
  auto v1 = builder.AddVoice(1);
  auto v2 = builder.AddVoice(2);
  auto sync = builder.GetOrAddSync(*measure, Rational(0));
  auto c1 = builder.AddChord(*sync, *v1, Rational(1));
  ASSERT_TRUE(builder.AddNoteMidi(*c1, 60).ok());
  auto c2 = builder.AddChord(*sync, *v2, Rational(1));
  ASSERT_TRUE(builder.AddNoteMidi(*c2, 60).ok());

  cmn::OrchestraBuilder orch(&db_);
  auto orchestra = orch.CreateOrchestra("pair");
  auto section = orch.AddSection(*orchestra, "winds");
  auto flute = orch.AddInstrument(*section, "flute", 73, 0);
  auto clarinet = orch.AddInstrument(*section, "clarinet", 71, -2);
  auto p1 = orch.AddPart(*flute, "fl");
  auto p2 = orch.AddPart(*clarinet, "cl");
  ASSERT_TRUE(orch.AssignVoice(*p1, *v1).ok());
  ASSERT_TRUE(orch.AssignVoice(*p2, *v2).ok());
  ASSERT_TRUE(orch.Performs(*orchestra, *score).ok());

  mtime::TempoMap tempo;
  auto track = cmn::PerformWithOrchestra(&db_, *score, *orchestra, tempo);
  ASSERT_TRUE(track.ok()) << track.status().ToString();
  int programs = 0, ons = 0;
  bool saw_transposed = false, saw_straight = false;
  for (const auto& e : track->events) {
    if (e.kind == midi::MidiEvent::Kind::kProgram) ++programs;
    if (e.kind == midi::MidiEvent::Kind::kNoteOn) {
      ++ons;
      if (e.key == 58 && e.channel == 1) saw_transposed = true;
      if (e.key == 60 && e.channel == 0) saw_straight = true;
    }
  }
  EXPECT_EQ(programs, 2);
  EXPECT_EQ(ons, 2);
  EXPECT_TRUE(saw_transposed);  // clarinet sounded down a tone
  EXPECT_TRUE(saw_straight);
}

// ----------------------------------------------------------------------
// Harmonic and melodic analysis.
// ----------------------------------------------------------------------

TEST(HarmonyTest, TriadAndSeventhClassification) {
  using analysis::ChordQuality;
  EXPECT_EQ(analysis::ClassifyChord({60, 64, 67}).quality,
            ChordQuality::kMajor);  // C E G
  EXPECT_EQ(analysis::ClassifyChord({60, 64, 67}).root_pc, 0);
  // Inversions fold to the same root.
  EXPECT_EQ(analysis::ClassifyChord({64, 67, 72}).root_pc, 0);
  EXPECT_EQ(analysis::ClassifyChord({64, 67, 72}).quality,
            ChordQuality::kMajor);
  EXPECT_EQ(analysis::ClassifyChord({57, 60, 64}).quality,
            ChordQuality::kMinor);  // A C E
  EXPECT_EQ(analysis::ClassifyChord({57, 60, 64}).root_pc, 9);
  EXPECT_EQ(analysis::ClassifyChord({59, 62, 65}).quality,
            ChordQuality::kDiminished);  // B D F
  EXPECT_EQ(analysis::ClassifyChord({60, 64, 68}).quality,
            ChordQuality::kAugmented);
  EXPECT_EQ(analysis::ClassifyChord({55, 59, 62, 65}).quality,
            ChordQuality::kDominantSeventh);  // G B D F
  EXPECT_EQ(analysis::ClassifyChord({60, 64, 67, 71}).quality,
            ChordQuality::kMajorSeventh);
  EXPECT_EQ(analysis::ClassifyChord({62, 65, 69, 72}).quality,
            ChordQuality::kMinorSeventh);  // D F A C
  // Non-chords.
  EXPECT_EQ(analysis::ClassifyChord({60, 61, 62}).quality,
            ChordQuality::kOther);
  EXPECT_EQ(analysis::ClassifyChord({60, 67}).quality, ChordQuality::kOther);
  EXPECT_EQ(analysis::ClassifyChord({}).quality, ChordQuality::kOther);
  EXPECT_EQ(analysis::ClassifyChord({55, 59, 62}).Name(), "G maj");
}

TEST(HarmonyTest, AnalyzeHarmonyOverScore) {
  er::Database db;
  ASSERT_TRUE(cmn::InstallCmnSchema(&db).ok());
  cmn::ScoreBuilder builder(&db);
  auto score = builder.CreateScore("cadence");
  auto movement = builder.AddMovement(*score, "I");
  auto measure = builder.AddMeasure(*movement, 1, {4, 4});
  auto voice = builder.AddVoice(1);
  // I - IV - V7 - I in C major.
  const std::vector<std::vector<int>> progression = {
      {60, 64, 67}, {60, 65, 69}, {59, 62, 65, 67}, {60, 64, 67}};
  for (size_t b = 0; b < progression.size(); ++b) {
    auto sync = builder.GetOrAddSync(*measure, Rational(b));
    auto chord = builder.AddChord(*sync, *voice, Rational(1));
    for (int key : progression[b])
      ASSERT_TRUE(builder.AddNoteMidi(*chord, key).ok());
  }
  auto labels = analysis::AnalyzeHarmony(&db, *score);
  ASSERT_TRUE(labels.ok());
  ASSERT_EQ(labels->size(), 4u);
  EXPECT_EQ((*labels)[0].Name(), "C maj");
  EXPECT_EQ((*labels)[1].Name(), "F maj");
  EXPECT_EQ((*labels)[2].Name(), "G 7");
  EXPECT_EQ((*labels)[3].Name(), "C maj");
  EXPECT_EQ((*labels)[2].score_time, Rational(2));
}

TEST(HarmonyTest, KeyEstimationGMinorSubject) {
  // The BWV 578 subject should profile as G minor.
  er::Database db;
  // G4 D5 Bb4 A4 G4 Bb4 A4 G4 F#4 A4 / D4...
  auto import = darms::ImportDarms(
      &db, "!G !K2- 3Q 7Q 5E 4E 3E 5E 4E 3E 2#E 4E / 0Q 3Q 2E 1E 0E 2E //",
      "subject");
  ASSERT_TRUE(import.ok());
  mtime::TempoMap tempo;
  auto notes = cmn::ExtractPerformance(&db, import->score, tempo);
  ASSERT_TRUE(notes.ok());
  auto key = analysis::EstimateKey(*notes);
  EXPECT_EQ(key.Name(), "G minor");
  EXPECT_GT(key.correlation, 0.5);
}

TEST(HarmonyTest, KeyEstimationCMajorScale) {
  std::vector<cmn::PerformedNote> notes;
  double t = 0;
  for (int key : {60, 62, 64, 65, 67, 69, 71, 72, 67, 64, 60}) {
    cmn::PerformedNote pn;
    pn.midi_key = key;
    pn.start_seconds = t;
    pn.end_seconds = t + 0.5;
    // Weight the tonic by duration.
    if (key == 60) pn.end_seconds = t + 1.5;
    notes.push_back(pn);
    t = pn.end_seconds;
  }
  auto key = analysis::EstimateKey(notes);
  EXPECT_EQ(key.Name(), "C major");
}

TEST(HarmonyTest, MelodicProfile) {
  std::vector<cmn::PerformedNote> notes;
  for (int key : {60, 62, 64, 64, 67, 65, 64, 62, 60}) {
    cmn::PerformedNote pn;
    pn.midi_key = key;
    notes.push_back(pn);
  }
  auto p = analysis::ProfileMelody(notes);
  EXPECT_EQ(p.notes, 9);
  EXPECT_EQ(p.repeats, 1);
  EXPECT_EQ(p.leaps, 1);       // 64 -> 67
  EXPECT_EQ(p.steps, 6);
  EXPECT_EQ(p.ambitus, 7);
  EXPECT_EQ(p.longest_descent, 4);  // 67 65 64 62 60
  EXPECT_EQ(analysis::ProfileMelody({}).notes, 0);
}

// ----------------------------------------------------------------------
// Version store.
// ----------------------------------------------------------------------

TEST(VersionStoreTest, CommitCheckoutLineageDiff) {
  er::Database db;
  ASSERT_TRUE(db.DefineEntityType(
                    {"NOTE", {{"name", rel::ValueType::kInt, ""}}})
                  .ok());
  auto n1 = db.CreateEntity("NOTE");
  ASSERT_TRUE(db.SetAttribute(*n1, "name", rel::Value::Int(1)).ok());

  er::VersionStore store;
  auto v1 = store.Commit(db, er::VersionStore::kNoParent, "draft",
                         "first sketch");
  ASSERT_TRUE(v1.ok());

  // Mutate: add a note, change the first.
  auto n2 = db.CreateEntity("NOTE");
  ASSERT_TRUE(db.SetAttribute(*n2, "name", rel::Value::Int(2)).ok());
  ASSERT_TRUE(db.SetAttribute(*n1, "name", rel::Value::Int(99)).ok());
  auto v2 = store.Commit(db, *v1, "revised", "added a note");
  ASSERT_TRUE(v2.ok());

  // An alternative reading branches from v1.
  auto alt_db = store.Checkout(*v1);
  ASSERT_TRUE(alt_db.ok());
  ASSERT_TRUE(alt_db->DeleteEntity(*n1).ok());
  auto v3 = store.Commit(*alt_db, *v1, "ossia", "alternative reading");
  ASSERT_TRUE(v3.ok());

  // Checkout reproduces old states exactly.
  auto old_db = store.Checkout(*v1);
  ASSERT_TRUE(old_db.ok());
  EXPECT_EQ(old_db->GetAttribute(*n1, "name")->AsInt(), 1);
  EXPECT_EQ(old_db->TotalEntities(), 1u);

  // Lineage: v2 -> v1; v3 -> v1.
  auto lineage = store.Lineage(*v2);
  ASSERT_TRUE(lineage.ok());
  EXPECT_EQ(*lineage, (std::vector<er::VersionId>{*v2, *v1}));
  lineage = store.Lineage(*v3);
  EXPECT_EQ(*lineage, (std::vector<er::VersionId>{*v3, *v1}));

  // Diffs.
  auto diff = store.DiffVersions(*v1, *v2);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->added, 1u);
  EXPECT_EQ(diff->removed, 0u);
  EXPECT_EQ(diff->modified, 1u);
  diff = store.DiffVersions(*v2, *v3);
  EXPECT_EQ(diff->removed, 2u);  // n1 (deleted) and n2 (never in v3)
  EXPECT_EQ(diff->added, 0u);

  // Names resolve; duplicates rejected.
  EXPECT_EQ(*store.FindByName("ossia"), *v3);
  EXPECT_EQ(store.FindByName("nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.Commit(db, *v1, "draft", "dup").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(store.Checkout(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.List().size(), 3u);
}

}  // namespace
}  // namespace mdm

#include <gtest/gtest.h>

#include "rel/schema.h"
#include "rel/table.h"
#include "rel/value.h"
#include "storage/disk_manager.h"

namespace mdm::rel {
namespace {

TEST(ValueTest, TypesAndToString) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Float(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::Rat(Rational(3, 4)).ToString(), "3/4");
  EXPECT_EQ(Value::Ref(17).ToString(), "#17");
}

TEST(ValueTest, CompareSemantics) {
  EXPECT_EQ(*Value::Int(1).Compare(Value::Int(2)), -1);
  EXPECT_EQ(*Value::Int(2).Compare(Value::Float(2.0)), 0);  // numeric
  EXPECT_EQ(*Value::Float(3.5).Compare(Value::Int(3)), 1);
  EXPECT_EQ(*Value::String("a").Compare(Value::String("b")), -1);
  EXPECT_EQ(*Value::Rat(Rational(1, 3)).Compare(Value::Rat(Rational(1, 2))),
            -1);
  EXPECT_EQ(*Value::Null().Compare(Value::Null()), 0);
  EXPECT_EQ(*Value::Null().Compare(Value::Int(0)), -1);
  // Cross-type comparison errors.
  EXPECT_EQ(Value::Int(1).Compare(Value::String("1")).status().code(),
            StatusCode::kTypeError);
  EXPECT_FALSE(Value::Int(1).Equals(Value::String("1")));
  EXPECT_TRUE(Value::Int(2).Equals(Value::Float(2.0)));
}

TEST(ValueTest, EncodeDecodeAllTypes) {
  std::vector<Value> values = {
      Value::Null(),          Value::Bool(true),
      Value::Int(-123456789), Value::Float(2.71828),
      Value::String("hello"), Value::Rat(Rational(-5, 8)),
      Value::Ref(42)};
  ByteWriter w;
  for (const Value& v : values) v.Encode(&w);
  ByteReader r(w.data());
  for (const Value& expected : values) {
    Value got;
    ASSERT_TRUE(Value::Decode(&r, &got).ok());
    EXPECT_TRUE(got.Equals(expected)) << expected.ToString();
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(ValueTest, DecodeRejectsGarbage) {
  ByteWriter w;
  w.PutU8(99);  // invalid tag
  ByteReader r(w.data());
  Value v;
  EXPECT_EQ(Value::Decode(&r, &v).code(), StatusCode::kCorruption);
}

TEST(SchemaTest, TupleValidation) {
  RelSchema schema({{"id", ValueType::kInt, ""},
                    {"title", ValueType::kString, ""},
                    {"weight", ValueType::kFloat, ""}});
  EXPECT_TRUE(
      CheckTuple(schema, {Value::Int(1), Value::String("x"), Value::Float(1.5)})
          .ok());
  // Int accepted for float column; null anywhere.
  EXPECT_TRUE(
      CheckTuple(schema, {Value::Int(1), Value::Null(), Value::Int(2)}).ok());
  EXPECT_EQ(CheckTuple(schema, {Value::Int(1), Value::String("x")}).code(),
            StatusCode::kTypeError);
  EXPECT_EQ(CheckTuple(schema, {Value::String("no"), Value::String("x"),
                                Value::Null()})
                .code(),
            StatusCode::kTypeError);
  EXPECT_TRUE(schema.IndexOf("TITLE").has_value());  // case-insensitive
  EXPECT_FALSE(schema.IndexOf("ghost").has_value());
}

class TableTest : public testing::Test {
 protected:
  TableTest() : pool_(&dm_, 64), catalog_(&pool_) {}

  Table* MakeTable() {
    auto t = catalog_.CreateTable(
        "notes", RelSchema({{"id", ValueType::kInt, ""},
                            {"pitch", ValueType::kString, ""}}));
    EXPECT_TRUE(t.ok());
    return *t;
  }

  storage::MemoryDiskManager dm_;
  storage::BufferPool pool_;
  Catalog catalog_;
};

TEST_F(TableTest, InsertGetScanDelete) {
  Table* t = MakeTable();
  std::vector<storage::Rid> rids;
  for (int i = 0; i < 100; ++i) {
    auto rid = t->Insert({Value::Int(i), Value::String("p" + std::to_string(i))});
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  auto tuple = t->Get(rids[42]);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ((*tuple)[0].AsInt(), 42);
  ASSERT_TRUE(t->Delete(rids[42]).ok());
  EXPECT_FALSE(t->Get(rids[42]).ok());
  auto count = t->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 99u);
  // Type errors rejected at insert.
  EXPECT_EQ(t->Insert({Value::String("x"), Value::Null()}).status().code(),
            StatusCode::kTypeError);
}

TEST_F(TableTest, IndexMaintainedAcrossMutations) {
  Table* t = MakeTable();
  ASSERT_TRUE(t->CreateIndex("id").ok());
  EXPECT_TRUE(t->HasIndex("id"));
  EXPECT_EQ(t->CreateIndex("id").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t->CreateIndex("pitch").code(), StatusCode::kTypeError);
  std::vector<storage::Rid> rids;
  for (int i = 0; i < 50; ++i) {
    auto rid = t->Insert({Value::Int(i % 10), Value::String("x")});
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  int hits = 0;
  ASSERT_TRUE(t->IndexScan("id", 3, 3,
                           [&](const storage::Rid&, const Tuple&) {
                             ++hits;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(hits, 5);
  // Update moves the key.
  ASSERT_TRUE(t->Update(rids[0], {Value::Int(99), Value::String("x")}).ok());
  hits = 0;
  ASSERT_TRUE(t->IndexScan("id", 99, 99,
                           [&](const storage::Rid&, const Tuple&) {
                             ++hits;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(hits, 1);
  // Delete removes from the index.
  ASSERT_TRUE(t->Delete(rids[0]).ok());
  hits = 0;
  ASSERT_TRUE(t->IndexScan("id", 99, 99,
                           [&](const storage::Rid&, const Tuple&) {
                             ++hits;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(hits, 0);
}

TEST_F(TableTest, GrowingUpdateRelocatesRecord) {
  Table* t = MakeTable();
  ASSERT_TRUE(t->CreateIndex("id").ok());
  auto rid = t->Insert({Value::Int(7), Value::String("small")});
  ASSERT_TRUE(rid.ok());
  // Fill the page so the grown record cannot stay.
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(
        t->Insert({Value::Int(1000 + i), Value::String(std::string(30, 'f'))})
            .ok());
  ASSERT_TRUE(
      t->Update(*rid, {Value::Int(7), Value::String(std::string(3000, 'y'))})
          .ok());
  // The index still finds the (possibly moved) record.
  int hits = 0;
  ASSERT_TRUE(t->IndexScan("id", 7, 7,
                           [&](const storage::Rid&, const Tuple& tuple) {
                             ++hits;
                             EXPECT_EQ(tuple[1].AsString().size(), 3000u);
                             return true;
                           })
                  .ok());
  EXPECT_EQ(hits, 1);
}

TEST_F(TableTest, CatalogSaveLoadRoundTrip) {
  Table* t = MakeTable();
  auto rid = t->Insert({Value::Int(578), Value::String("g-moll")});
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(catalog_.Save().ok());

  Catalog reloaded(&pool_);
  ASSERT_TRUE(reloaded.Load().ok());
  auto t2 = reloaded.GetTable("notes");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ((*t2)->schema().size(), 2u);
  auto tuple = (*t2)->Get(*rid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ((*tuple)[0].AsInt(), 578);
  EXPECT_EQ(reloaded.GetTable("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST_F(TableTest, CatalogDuplicateAndDrop) {
  MakeTable();
  EXPECT_EQ(catalog_
                .CreateTable("notes", RelSchema({{"x", ValueType::kInt, ""}}))
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.TableNames().size(), 1u);
  EXPECT_TRUE(catalog_.DropTable("notes").ok());
  EXPECT_EQ(catalog_.DropTable("notes").code(), StatusCode::kNotFound);
}

TEST_F(TableTest, ManyTablesSaveLoad) {
  // Catalog blob spans multiple chained pages.
  for (int i = 0; i < 120; ++i) {
    auto t = catalog_.CreateTable(
        "table_with_a_rather_long_name_" + std::to_string(i),
        RelSchema({{"alpha", ValueType::kInt, ""},
                   {"beta", ValueType::kString, ""},
                   {"gamma", ValueType::kFloat, ""}}));
    ASSERT_TRUE(t.ok());
  }
  ASSERT_TRUE(catalog_.Save().ok());
  Catalog reloaded(&pool_);
  ASSERT_TRUE(reloaded.Load().ok());
  EXPECT_EQ(reloaded.TableNames().size(), 120u);
}

}  // namespace
}  // namespace mdm::rel

// Macro-benchmark harness suite (`macro` label; also in the tsan
// preset's filter): the workload driver's determinism contract, oracle
// soundness against both transports, and a sabotage test proving the
// oracle actually detects divergence rather than vacuously passing.
//
// `ctest -L macro` runs the 10^4-note acceptance preset; the nightly CI
// workflow runs the full 10^6-note scale through bench_fig01_macro.
#include <gtest/gtest.h>

#include <memory>

#include "corpus/loader.h"
#include "er/database.h"
#include "net/connection.h"
#include "net/server.h"
#include "workload/driver.h"

namespace mdm::workload {
namespace {

corpus::Corpus LoadFresh(er::Database* db, uint64_t seed, int scores,
                         int64_t notes) {
  corpus::LoadOptions options;
  options.spec.seed = seed;
  options.spec.scores = scores;
  options.spec.target_total_notes = notes;
  auto corpus = corpus::LoadCorpus(db, options);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return *std::move(corpus);
}

WorkloadSpec SmallSpec(int threads, int oracle_every = 2) {
  WorkloadSpec spec;
  spec.seed = 21;
  spec.threads = threads;
  spec.ops_per_tenant = 6;
  spec.oracle_every = oracle_every;
  return spec;
}

Report RunLocal(const WorkloadSpec& spec, er::Database* db,
                corpus::Corpus* corpus) {
  auto report = RunWorkload(spec, corpus, [db] {
    return Result<Connection>(Connection::Local(db));
  });
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *std::move(report);
}

TEST(MacroDeterminismTest, SameSeedSameHashes) {
  Report reports[2];
  for (int run = 0; run < 2; ++run) {
    er::Database db;
    corpus::Corpus corpus = LoadFresh(&db, 3, 6, 1200);
    reports[run] = RunLocal(SmallSpec(/*threads=*/1), &db, &corpus);
  }
  EXPECT_EQ(reports[0].op_log_hash, reports[1].op_log_hash);
  EXPECT_EQ(reports[0].oracle_hash, reports[1].oracle_hash);
  EXPECT_EQ(reports[0].total_ops, reports[1].total_ops);
  EXPECT_EQ(reports[0].oracle_divergences, 0u);
  EXPECT_EQ(reports[1].oracle_divergences, 0u);
  EXPECT_GT(reports[0].oracle_checks, 0u);
}

TEST(MacroDeterminismTest, ThreadCountDoesNotChangeHashes) {
  Report single, multi;
  {
    er::Database db;
    corpus::Corpus corpus = LoadFresh(&db, 3, 6, 1200);
    single = RunLocal(SmallSpec(/*threads=*/1), &db, &corpus);
  }
  {
    er::Database db;
    corpus::Corpus corpus = LoadFresh(&db, 3, 6, 1200);
    multi = RunLocal(SmallSpec(/*threads=*/4), &db, &corpus);
  }
  EXPECT_EQ(single.op_log_hash, multi.op_log_hash);
  EXPECT_EQ(single.oracle_hash, multi.oracle_hash);
  EXPECT_EQ(single.total_ops, multi.total_ops);
  EXPECT_EQ(multi.oracle_divergences, 0u);
  EXPECT_EQ(multi.total_errors, 0u);
}

TEST(MacroDeterminismTest, RemoteTransportMatchesLocal) {
  Report local;
  {
    er::Database db;
    corpus::Corpus corpus = LoadFresh(&db, 3, 6, 1200);
    local = RunLocal(SmallSpec(/*threads=*/2), &db, &corpus);
  }
  Report remote;
  {
    er::Database db;
    corpus::Corpus corpus = LoadFresh(&db, 3, 6, 1200);
    net::Server server(&db);
    ASSERT_TRUE(server.Start().ok());
    const uint16_t port = server.port();
    auto report =
        RunWorkload(SmallSpec(/*threads=*/2), &corpus,
                    [port] { return Connection::Remote("127.0.0.1", port); });
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    remote = *std::move(report);
    server.Stop();
  }
  // One op stream, two transports: bit-identical results.
  EXPECT_EQ(local.op_log_hash, remote.op_log_hash);
  EXPECT_EQ(local.oracle_hash, remote.oracle_hash);
  EXPECT_EQ(remote.oracle_divergences, 0u);
  EXPECT_EQ(remote.total_errors, 0u);
}

// The oracle must detect corruption, not just bless whatever the
// database says: plant a rogue annotation the driver never made and
// the per-tenant battery has to flag it.
TEST(MacroOracleTest, DetectsInjectedDivergence) {
  er::Database db;
  corpus::Corpus corpus = LoadFresh(&db, 3, 4, 800);
  {
    Connection conn = Connection::Local(&db);
    auto rs =
        conn.Execute("append to ANNOTATION (text = \"rogue\", xpos = 0)");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  }
  WorkloadSpec spec = SmallSpec(/*threads=*/1, /*oracle_every=*/1);
  auto report = RunWorkload(spec, &corpus, [&db] {
    return Result<Connection>(Connection::Local(&db));
  });
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->oracle_divergences, 0u);
  ASSERT_FALSE(report->divergences.empty());
  EXPECT_NE(report->divergences[0].find("B1"), std::string::npos)
      << report->divergences[0];
}

// The issue's acceptance preset: ~10^4 notes across 20 scores, the full
// mix with the oracle on, multi-threaded, zero divergences — the same
// shape bench_fig01_macro --smoke runs, wired into `ctest -L macro`.
TEST(MacroAcceptanceTest, TenThousandNotePresetRunsClean) {
  er::Database db;
  corpus::Corpus corpus = LoadFresh(&db, 42, 20, 10'000);
  EXPECT_GE(corpus.total_notes, 10'000);
  WorkloadSpec spec;
  spec.seed = 42;
  spec.threads = 4;
  spec.ops_per_tenant = 6;
  spec.oracle_every = 3;
  Report report = RunLocal(spec, &db, &corpus);
  EXPECT_EQ(report.total_errors, 0u);
  EXPECT_EQ(report.oracle_divergences, 0u)
      << (report.divergences.empty() ? "" : report.divergences[0]);
  EXPECT_GT(report.oracle_checks, 0u);
  // Timed() records battery and paired-query executions too, so the
  // mix floor is scores * ops_per_tenant.
  EXPECT_GE(report.total_ops, static_cast<uint64_t>(20 * spec.ops_per_tenant));
  for (const auto& cs : report.per_class) EXPECT_GE(cs.p99_us, cs.p50_us);
}

}  // namespace
}  // namespace mdm::workload

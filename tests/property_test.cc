// Property-based tests: randomized sweeps over the core invariants,
// parameterized with TEST_P across sizes, seeds and configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "common/random.h"
#include "common/rational.h"
#include "er/database.h"
#include "midi/midi.h"
#include "mtime/tempo_map.h"
#include "sound/sound.h"
#include "storage/btree.h"
#include "storage/page.h"
#include "storage/slotted_page.h"

namespace mdm {
namespace {

// ----------------------------------------------------------------------
// Rational: field axioms and ordering under random values.
// ----------------------------------------------------------------------

class RationalPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RationalPropertyTest, FieldAxiomsHold) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    Rational a(rng.Range(-50, 50), rng.Range(1, 24));
    Rational b(rng.Range(-50, 50), rng.Range(1, 24));
    Rational c(rng.Range(-50, 50), rng.Range(1, 24));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.IsZero()) {
      EXPECT_EQ((a / b) * b, a);
    }
    // Normalization invariant.
    Rational sum = a + b;
    EXPECT_GT(sum.den(), 0);
    EXPECT_EQ(std::gcd(std::abs(sum.num()), sum.den()), 1);
  }
}

TEST_P(RationalPropertyTest, OrderingIsTotalAndConsistent) {
  Rng rng(GetParam() * 31 + 5);
  for (int i = 0; i < 300; ++i) {
    Rational a(rng.Range(-40, 40), rng.Range(1, 16));
    Rational b(rng.Range(-40, 40), rng.Range(1, 16));
    // Trichotomy.
    int relations = (a < b ? 1 : 0) + (b < a ? 1 : 0) + (a == b ? 1 : 0);
    EXPECT_EQ(relations, 1);
    // Consistency with subtraction.
    EXPECT_EQ(a < b, (a - b).IsNegative());
    // Consistency with double conversion (values are small enough).
    if (a != b) {
      EXPECT_EQ(a < b, a.ToDouble() < b.ToDouble());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         testing::Values(1, 7, 42, 1987, 99991));

// ----------------------------------------------------------------------
// Hierarchical ordering: random mutations never break invariants.
// ----------------------------------------------------------------------

struct OrderingParam {
  uint64_t seed;
  int n_parents;
  int n_children;
  int ops;
};

class OrderingPropertyTest : public testing::TestWithParam<OrderingParam> {};

TEST_P(OrderingPropertyTest, ModelEquivalenceUnderRandomOps) {
  const OrderingParam p = GetParam();
  er::Database db;
  ASSERT_TRUE(db.DefineEntityType({"P", {}}).ok());
  ASSERT_TRUE(db.DefineEntityType({"C", {}}).ok());
  ASSERT_TRUE(db.DefineOrdering({"ord", {"C"}, "P"}).ok());

  std::vector<er::EntityId> parents, children;
  for (int i = 0; i < p.n_parents; ++i)
    parents.push_back(*db.CreateEntity("P"));
  for (int i = 0; i < p.n_children; ++i)
    children.push_back(*db.CreateEntity("C"));

  // Reference model: parent -> ordered children.
  std::map<er::EntityId, std::vector<er::EntityId>> model;
  std::map<er::EntityId, er::EntityId> parent_of;

  Rng rng(p.seed);
  for (int op = 0; op < p.ops; ++op) {
    er::EntityId child = children[rng.Uniform(children.size())];
    if (parent_of.count(child) == 0 && rng.Bernoulli(0.7)) {
      er::EntityId parent = parents[rng.Uniform(parents.size())];
      size_t pos = model[parent].empty()
                       ? 0
                       : rng.Uniform(model[parent].size() + 1);
      ASSERT_TRUE(db.InsertChildAt("ord", parent, child, pos).ok());
      model[parent].insert(model[parent].begin() + pos, child);
      parent_of[child] = parent;
    } else if (parent_of.count(child) != 0) {
      ASSERT_TRUE(db.RemoveChild("ord", child).ok());
      auto& sibs = model[parent_of[child]];
      sibs.erase(std::find(sibs.begin(), sibs.end(), child));
      parent_of.erase(child);
    }
  }

  // Invariant 1: children lists match the model exactly (order too).
  for (er::EntityId parent : parents) {
    auto kids = db.Children("ord", parent);
    ASSERT_TRUE(kids.ok());
    EXPECT_EQ(*kids, model[parent]);
  }
  // Invariant 2: ParentOf matches; PositionOf is each child's index.
  for (er::EntityId child : children) {
    auto parent = db.ParentOf("ord", child);
    ASSERT_TRUE(parent.ok());
    if (parent_of.count(child) == 0) {
      EXPECT_EQ(*parent, er::kInvalidEntityId);
    } else {
      EXPECT_EQ(*parent, parent_of[child]);
      auto pos = db.PositionOf("ord", child);
      ASSERT_TRUE(pos.ok());
      const auto& sibs = model[parent_of[child]];
      EXPECT_EQ(sibs[*pos], child);
    }
  }
  // Invariant 3: Before agrees with model positions for same-parent
  // pairs and is false otherwise.
  Rng probe(p.seed ^ 0xABCD);
  for (int i = 0; i < 200; ++i) {
    er::EntityId a = children[probe.Uniform(children.size())];
    er::EntityId b = children[probe.Uniform(children.size())];
    auto before = db.Before("ord", a, b);
    ASSERT_TRUE(before.ok());
    bool expected = false;
    if (a != b && parent_of.count(a) != 0 && parent_of.count(b) != 0 &&
        parent_of[a] == parent_of[b]) {
      const auto& sibs = model[parent_of[a]];
      expected = std::find(sibs.begin(), sibs.end(), a) <
                 std::find(sibs.begin(), sibs.end(), b);
    }
    EXPECT_EQ(*before, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderingPropertyTest,
    testing::Values(OrderingParam{3, 1, 8, 50},
                    OrderingParam{11, 4, 32, 300},
                    OrderingParam{2026, 8, 64, 1000},
                    OrderingParam{77, 2, 128, 2000}));

// ----------------------------------------------------------------------
// Recursive orderings: random insertion attempts never create cycles.
// ----------------------------------------------------------------------

class RecursivePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RecursivePropertyTest, NoCycleEverForms) {
  er::Database db;
  ASSERT_TRUE(db.DefineEntityType({"G", {}}).ok());
  ASSERT_TRUE(db.DefineOrdering({"nest", {"G"}, "G"}).ok());
  std::vector<er::EntityId> groups;
  for (int i = 0; i < 40; ++i) groups.push_back(*db.CreateEntity("G"));
  Rng rng(GetParam());
  int accepted = 0, rejected = 0;
  for (int op = 0; op < 500; ++op) {
    er::EntityId parent = groups[rng.Uniform(groups.size())];
    er::EntityId child = groups[rng.Uniform(groups.size())];
    Status s = db.AppendChild("nest", parent, child);
    if (s.ok()) ++accepted;
    else ++rejected;
    if (rng.Bernoulli(0.2)) {
      er::EntityId victim = groups[rng.Uniform(groups.size())];
      (void)db.RemoveChild("nest", victim);
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
  // Verify acyclicity: from every node, walking P-edges terminates.
  for (er::EntityId g : groups) {
    std::set<er::EntityId> seen;
    er::EntityId cur = g;
    while (cur != er::kInvalidEntityId) {
      ASSERT_TRUE(seen.insert(cur).second)
          << "cycle detected through entity " << cur;
      cur = *db.ParentOf("nest", cur);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecursivePropertyTest,
                         testing::Values(5, 1987, 0xBAC4));

// ----------------------------------------------------------------------
// B+tree fan-out sweep.
// ----------------------------------------------------------------------

class BTreeFanoutTest : public testing::TestWithParam<int> {};

TEST_P(BTreeFanoutTest, InvariantsAcrossFanouts) {
  storage::BTree tree(static_cast<size_t>(GetParam()));
  std::multimap<int64_t, storage::Rid> model;
  Rng rng(0x5EED);
  for (int i = 0; i < 3000; ++i) {
    int64_t key = rng.Range(-500, 500);
    storage::Rid rid{static_cast<storage::PageId>(i), 0};
    tree.Insert(key, rid);
    model.emplace(key, rid);
    if (i % 512 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok());
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), model.size());
  for (int64_t probe = -500; probe <= 500; probe += 37)
    EXPECT_EQ(tree.Find(probe).size(), model.count(probe)) << probe;
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeFanoutTest,
                         testing::Values(4, 8, 32, 128, 512));

// ----------------------------------------------------------------------
// Slotted page: random inserts/deletes/updates against a model.
// ----------------------------------------------------------------------

class SlottedPagePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SlottedPagePropertyTest, ModelEquivalence) {
  storage::Page page;
  storage::SlottedPage sp(&page);
  sp.Init();
  std::map<uint16_t, std::string> model;
  Rng rng(GetParam());
  for (int op = 0; op < 2000; ++op) {
    double roll = rng.NextDouble();
    if (roll < 0.5) {
      std::string rec(rng.Range(1, 120), static_cast<char>('a' + op % 26));
      auto slot = sp.Insert(rec);
      if (slot.ok()) {
        EXPECT_EQ(model.count(*slot), 0u);
        model[*slot] = rec;
      }
    } else if (roll < 0.75 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(sp.Delete(it->first).ok());
      model.erase(it);
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::string rec(rng.Range(1, 150), 'z');
      if (sp.Update(it->first, rec).ok()) it->second = rec;
    }
    if (op % 256 == 0) {
      for (const auto& [slot, expected] : model) {
        auto got = sp.Get(slot);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, expected);
      }
    }
  }
  for (const auto& [slot, expected] : model) {
    auto got = sp.Get(slot);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlottedPagePropertyTest,
                         testing::Values(1, 17, 23981));

// ----------------------------------------------------------------------
// Tempo map: beats->seconds->beats round trip across random plans.
// ----------------------------------------------------------------------

class TempoMapPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TempoMapPropertyTest, InverseAndMonotone) {
  Rng rng(GetParam());
  mtime::TempoMap map;
  int64_t beat = 0;
  for (int seg = 0; seg < 8; ++seg) {
    double bpm = 40.0 + static_cast<double>(rng.Uniform(160));
    mtime::TempoShape shape =
        rng.Bernoulli(0.5)
            ? mtime::TempoShape::kConstant
            : (rng.Bernoulli(0.5) ? mtime::TempoShape::kAccelerando
                                  : mtime::TempoShape::kRitardando);
    ASSERT_TRUE(map.AddSegment(Rational(beat), bpm, shape).ok());
    beat += rng.Range(2, 12);
  }
  double prev = -1;
  for (int i = 0; i <= beat + 8; ++i) {
    double t = map.ToSeconds(Rational(i));
    EXPECT_GT(t, prev) << "time must be strictly increasing at beat " << i;
    prev = t;
    Rational back = map.ToBeats(t, 7680);
    EXPECT_NEAR(back.ToDouble(), static_cast<double>(i), 2e-3)
        << "round trip at beat " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TempoMapPropertyTest,
                         testing::Values(3, 14, 159, 2653));

// ----------------------------------------------------------------------
// Sound codecs: lossless round trip on random-ish signals.
// ----------------------------------------------------------------------

struct CodecParam {
  uint64_t seed;
  int length;
};

class DeltaCodecPropertyTest : public testing::TestWithParam<CodecParam> {};

TEST_P(DeltaCodecPropertyTest, BitExactRoundTrip) {
  const CodecParam p = GetParam();
  Rng rng(p.seed);
  sound::PcmBuffer pcm;
  pcm.sample_rate = 8000;
  int16_t v = 0;
  for (int i = 0; i < p.length; ++i) {
    // Random walk with occasional jumps — adversarial for delta coding.
    if (rng.Bernoulli(0.02)) {
      v = static_cast<int16_t>(rng.Range(-32000, 32000));
    } else {
      v = static_cast<int16_t>(
          std::clamp<int64_t>(v + rng.Range(-300, 300), INT16_MIN,
                              INT16_MAX));
    }
    pcm.samples.push_back(v);
  }
  auto decoded = sound::DecodeDelta(sound::EncodeDelta(pcm));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->samples, pcm.samples);
  // Silence codec also round-trips exactly when nothing is below the
  // threshold... use threshold 0 to make it lossless here.
  auto silent = sound::DecodeSilence(sound::EncodeSilence(pcm, 0));
  ASSERT_TRUE(silent.ok());
  for (size_t i = 0; i < pcm.samples.size(); ++i) {
    if (pcm.samples[i] != 0) {
      EXPECT_EQ(silent->samples[i], pcm.samples[i]) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeltaCodecPropertyTest,
                         testing::Values(CodecParam{1, 100},
                                         CodecParam{9, 5000},
                                         CodecParam{77, 20000}));

// ----------------------------------------------------------------------
// SMF: write/read round trip over random tracks.
// ----------------------------------------------------------------------

class SmfPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SmfPropertyTest, NoteStreamSurvives) {
  Rng rng(GetParam());
  std::vector<cmn::PerformedNote> notes;
  double t = 0;
  for (int i = 0; i < 200; ++i) {
    cmn::PerformedNote pn;
    pn.midi_key = static_cast<int>(rng.Range(21, 108));
    pn.velocity = static_cast<int>(rng.Range(1, 127));
    pn.start_seconds = t;
    pn.end_seconds = t + 0.05 + rng.NextDouble() * 0.5;
    notes.push_back(pn);
    t += rng.NextDouble() * 0.25;
  }
  midi::MidiTrack track = midi::TrackFromPerformance(notes);
  auto parsed = midi::ReadSmf(midi::WriteSmf(track, 960));
  ASSERT_TRUE(parsed.ok());
  // Same number of note-ons with identical keys in order.
  std::vector<int> sent, received;
  for (const auto& e : track.events)
    if (e.kind == midi::MidiEvent::Kind::kNoteOn) sent.push_back(e.key);
  for (const auto& e : parsed->events)
    if (e.kind == midi::MidiEvent::Kind::kNoteOn)
      received.push_back(e.key);
  EXPECT_EQ(sent, received);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmfPropertyTest,
                         testing::Values(4, 44, 444));

}  // namespace
}  // namespace mdm

// Planner, ordering-handle API, explain (+ analyze), and ExecStats
// coverage for the §5.6 execution layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <regex>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "net/connection.h"
#include "quel/planner.h"
#include "quel/quel.h"

namespace mdm::quel {
namespace {

using er::EntityId;
using er::OrderingHandle;
using rel::Value;

/// Chords with named notes plus a recursive section tree:
///   section 1 > section 2 > notes 100, 200 (sec_tree)
///   chord 1: notes 10 < 20 < 30; chord 2: notes 40, 50 (note_in_chord)
class QuelPlannerTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ddl::ExecuteDdl(R"(
      define entity CHORD (name = integer)
      define entity NOTE (name = integer)
      define entity SECTION (name = integer)
      define ordering note_in_chord (NOTE) under CHORD
      define ordering sec_tree (SECTION, NOTE) under SECTION
    )",
                                &db_)
                    .ok());
    chord1_ = Create("CHORD", 1);
    chord2_ = Create("CHORD", 2);
    for (int n : {10, 20, 30})
      notes_[n] = AddChild("note_in_chord", "NOTE", chord1_, n);
    for (int n : {40, 50})
      notes_[n] = AddChild("note_in_chord", "NOTE", chord2_, n);
    section1_ = Create("SECTION", 1);
    section2_ = AddChild("sec_tree", "SECTION", section1_, 2);
    for (int n : {100, 200})
      notes_[n] = AddChild("sec_tree", "NOTE", section2_, n);
  }

  EntityId Create(const std::string& type, int name) {
    auto id = db_.CreateEntity(type);
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(db_.SetAttribute(*id, "name", Value::Int(name)).ok());
    return *id;
  }

  EntityId AddChild(const std::string& ordering, const std::string& type,
                    EntityId parent, int name) {
    EntityId id = Create(type, name);
    EXPECT_TRUE(db_.AppendChild(ordering, parent, id).ok());
    return id;
  }

  std::vector<int64_t> Ints(const ResultSet& rs) {
    std::vector<int64_t> out;
    for (const auto& row : rs.rows) out.push_back(row[0].AsInt());
    std::sort(out.begin(), out.end());
    return out;
  }

  er::Database db_;
  EntityId chord1_, chord2_, section1_, section2_;
  std::map<int, EntityId> notes_;
};

// ----------------------------------------------------------------------
// Ordering-handle API.
// ----------------------------------------------------------------------

TEST_F(QuelPlannerTest, ResolveOrderingHandle) {
  auto h = db_.ResolveOrderingHandle("note_in_chord");
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->valid());
  EXPECT_EQ(db_.ordering_def(*h).name, "note_in_chord");
  // Resolution is case-insensitive, like every name lookup.
  auto upper = db_.ResolveOrderingHandle("NOTE_IN_CHORD");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(*h, *upper);
  EXPECT_EQ(db_.ResolveOrderingHandle("ghost_order").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(OrderingHandle().valid());
}

TEST_F(QuelPlannerTest, HandleOverloadsMatchStringOverloads) {
  auto h = db_.ResolveOrderingHandle("note_in_chord");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*db_.Children(*h, chord1_), *db_.Children("note_in_chord",
                                                      chord1_));
  EXPECT_EQ(*db_.ChildCount(*h, chord1_), 3u);
  EXPECT_EQ(*db_.ParentOf(*h, notes_[20]), chord1_);
  EXPECT_EQ(*db_.NthChild(*h, chord1_, 2), notes_[30]);
  EXPECT_EQ(*db_.PositionOf(*h, notes_[30]), 2u);
  EXPECT_TRUE(*db_.Before(*h, notes_[10], notes_[20]));
  EXPECT_TRUE(*db_.After(*h, notes_[30], notes_[10]));
  EXPECT_TRUE(*db_.Under(*h, notes_[10], chord1_));
}

// ----------------------------------------------------------------------
// Tri-state predicate contract (§5.6): error vs incomparable vs holds.
// ----------------------------------------------------------------------

TEST_F(QuelPlannerTest, BeforeAcrossParentsIsFalseNotError) {
  auto h = db_.ResolveOrderingHandle("note_in_chord");
  ASSERT_TRUE(h.ok());
  // Different parents: a legitimate "no", not an error.
  auto r = db_.Before(*h, notes_[10], notes_[40]);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  r = db_.After(*h, notes_[40], notes_[10]);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST_F(QuelPlannerTest, EntityAbsentFromOrderingIsFalseNotError) {
  // notes 100/200 exist but participate only in sec_tree.
  auto h = db_.ResolveOrderingHandle("note_in_chord");
  ASSERT_TRUE(h.ok());
  auto r = db_.Before(*h, notes_[100], notes_[10]);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  r = db_.Under(*h, notes_[100], chord1_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST_F(QuelPlannerTest, NonexistentOperandIsAnError) {
  auto h = db_.ResolveOrderingHandle("note_in_chord");
  ASSERT_TRUE(h.ok());
  const EntityId ghost = 999999;
  EXPECT_EQ(db_.Before(*h, notes_[10], ghost).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.After(*h, ghost, notes_[10]).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Under(*h, ghost, chord1_).status().code(),
            StatusCode::kNotFound);
}

// ----------------------------------------------------------------------
// Multi-level `under` (recursive orderings).
// ----------------------------------------------------------------------

TEST_F(QuelPlannerTest, UnderReachesAnyDepth) {
  auto h = db_.ResolveOrderingHandle("sec_tree");
  ASSERT_TRUE(h.ok());
  // Direct parent (depth 1) and grandparent (depth 2).
  EXPECT_TRUE(*db_.Under(*h, notes_[100], section2_));
  EXPECT_TRUE(*db_.Under(*h, notes_[100], section1_));
  EXPECT_TRUE(*db_.Under(*h, section2_, section1_));
  // Never reflexive, never upward.
  EXPECT_FALSE(*db_.Under(*h, section1_, section1_));
  EXPECT_FALSE(*db_.Under(*h, section1_, notes_[100]));
  // The ablation path answers identically.
  db_.EnableOrderingIndex(false);
  EXPECT_TRUE(*db_.Under(*h, notes_[100], section1_));
  EXPECT_FALSE(*db_.Under(*h, section1_, notes_[100]));
  db_.EnableOrderingIndex(true);
}

TEST_F(QuelPlannerTest, UnderIndexSurvivesMutation) {
  auto h = db_.ResolveOrderingHandle("sec_tree");
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(*db_.Under(*h, notes_[100], section1_));  // builds intervals
  // Deepen the tree; the interval index must be invalidated.
  EntityId section3 = AddChild("sec_tree", "SECTION", section2_, 3);
  EntityId deep = AddChild("sec_tree", "NOTE", section3, 300);
  EXPECT_TRUE(*db_.Under(*h, deep, section1_));
  EXPECT_TRUE(*db_.Under(*h, deep, section3));
  // Detach and re-attach at the top: depth changes, answers follow.
  ASSERT_TRUE(db_.RemoveChild(*h, section3).ok());
  EXPECT_FALSE(*db_.Under(*h, section3, section1_));
  EXPECT_TRUE(*db_.Under(*h, deep, section3));
  ASSERT_TRUE(db_.AppendChild(*h, section1_, section3).ok());
  EXPECT_TRUE(*db_.Under(*h, deep, section1_));
  EXPECT_FALSE(*db_.Under(*h, deep, section2_));
}

TEST_F(QuelPlannerTest, QuelUnderIsMultiLevel) {
  Connection conn = Connection::Local(&db_);
  // section 1 is the root: both notes lie under it at depth 2.
  auto rs = conn.Execute(R"(
    range of n is NOTE
    range of s is SECTION
    retrieve (n.name) where n under s in sec_tree and s.name = 1
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(Ints(*rs), (std::vector<int64_t>{100, 200}));
}

// ----------------------------------------------------------------------
// Planner.
// ----------------------------------------------------------------------

TEST_F(QuelPlannerTest, PlanOrdersBySelectivityThenCardinality) {
  auto stmts = ParseQuel(
      "retrieve (note.name) where note under chord in note_in_chord");
  ASSERT_TRUE(stmts.ok());
  auto plan = PlanQuery(&db_, {}, (*stmts)[0], /*pushdown=*/true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->vars.size(), 2u);
  // Equal selectivity (one 2-ary conjunct): the smaller relation —
  // 2 chords vs 7 notes — loops first.
  EXPECT_EQ(plan->vars[0].name, "chord");
  EXPECT_EQ(plan->vars[0].cardinality, 2u);
  EXPECT_EQ(plan->vars[1].name, "note");
  EXPECT_EQ(plan->vars[1].cardinality, 7u);
  // The single conjunct evaluates once both are bound, with a handle
  // bound at plan time.
  ASSERT_EQ(plan->conjuncts.size(), 1u);
  EXPECT_EQ(plan->conjuncts[0].depth, 2u);
  ASSERT_EQ(plan->order_handles.size(), 1u);
  EXPECT_EQ(db_.ordering_def(plan->order_handles.begin()->second).name,
            "note_in_chord");
}

TEST_F(QuelPlannerTest, PlanBindsOrderingInsideOrAndNot) {
  auto stmts = ParseQuel(
      "range of n1, n2 is NOTE\n"
      "retrieve (n1.name) where not (n1 before n2 in note_in_chord"
      " or n1 under chord in note_in_chord)");
  ASSERT_TRUE(stmts.ok());
  std::map<std::string, std::string> ranges = {{"n1", "NOTE"},
                                               {"n2", "NOTE"}};
  auto plan = PlanQuery(&db_, ranges, (*stmts)[1], /*pushdown=*/true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->order_handles.size(), 2u);
}

TEST_F(QuelPlannerTest, PlanErrors) {
  Connection conn = Connection::Local(&db_);
  // Unknown ordering: rejected at plan time, before any row is read.
  EXPECT_EQ(conn
                .Execute("range of n1, n2 is NOTE\n"
                         "retrieve (n1.name) where n1 before n2 in ghost")
                .status()
                .code(),
            StatusCode::kNotFound);
  // No ordering relates two chords.
  EXPECT_EQ(conn
                .Execute("range of c1, c2 is CHORD\n"
                         "retrieve (c1.name) where c1 before c2")
                .status()
                .code(),
            StatusCode::kNotFound);
  // NOTE participates in two orderings: the operand types are ambiguous
  // without an `in` clause.
  EXPECT_EQ(conn
                .Execute("range of n1, n2 is NOTE\n"
                         "retrieve (n1.name) where n1 before n2")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(conn.Execute("retrieve (zzz.name)").status().code(),
            StatusCode::kNotFound);
}

// ----------------------------------------------------------------------
// explain.
// ----------------------------------------------------------------------

TEST_F(QuelPlannerTest, ExplainGolden) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of n1, n2 is NOTE
    explain retrieve (n1.name)
      where n1 before n2 in note_in_chord and n2.name = 30
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->ToString(),
            "plan: retrieve\n"
            "  pushdown: on\n"
            "  ordering index: on\n"
            "  loop 1: n2 is NOTE (~7 rows)\n"
            "    filter: n2.name = 30\n"
            "  loop 2: n1 is NOTE (~7 rows)\n"
            "    filter: n1 before n2 in note_in_chord [rank index]\n"
            "  emit: n1.name\n");
  EXPECT_TRUE(rs->rows.empty());
}

TEST_F(QuelPlannerTest, ExplainUnderShowsIntervalIndexAndAblation) {
  Connection conn = Connection::Local(&db_);
  const char* query =
      "range of n is NOTE\nrange of s is SECTION\n"
      "explain retrieve (c = count(n))"
      " where n under s in sec_tree and s.name = 1";
  auto rs = conn.Execute(query);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->ToString(),
            "plan: retrieve\n"
            "  pushdown: on\n"
            "  ordering index: on\n"
            "  loop 1: s is SECTION (~2 rows)\n"
            "    filter: s.name = 1\n"
            "  loop 2: n is NOTE (~7 rows)\n"
            "    filter: n under s in sec_tree [interval index]\n"
            "  emit: count(n)\n");
  db_.EnableOrderingIndex(false);
  auto ablated = conn.Execute(query);
  ASSERT_TRUE(ablated.ok());
  EXPECT_NE(ablated->ToString().find("[linear scan]"), std::string::npos);
  EXPECT_NE(ablated->ToString().find("ordering index: off"),
            std::string::npos);
}

TEST_F(QuelPlannerTest, ExplainNeverExecutes) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(
      "range of n is NOTE\nexplain retrieve (n.name)");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
  EXPECT_FALSE(rs->explain.empty());
  // A plan-only run enumerates no bindings.
  EXPECT_EQ(conn.local_stats().rows_scanned, 0u);
  // And `explain` is retrieve-only.
  EXPECT_EQ(conn.Execute("explain delete n").status().code(),
            StatusCode::kParseError);
}

// ----------------------------------------------------------------------
// explain analyze.
// ----------------------------------------------------------------------

/// Replaces every nanosecond figure so the annotated plan goldens are
/// deterministic.
std::string ScrubTimes(const std::string& s) {
  return std::regex_replace(s, std::regex("[0-9]+ns"), "Xns");
}

/// Pulls the integer after `key=` (e.g. "join=" -> ns) out of an
/// explain-analyze rendering.
uint64_t ExtractNs(const std::string& text, const std::string& key) {
  std::smatch m;
  EXPECT_TRUE(
      std::regex_search(text, m, std::regex(key + "([0-9]+)ns")))
      << text;
  return m.empty() ? 0 : std::stoull(m[1]);
}

TEST_F(QuelPlannerTest, ExplainAnalyzeGolden) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of n1, n2 is NOTE
    explain analyze retrieve (n1.name)
      where n1 before n2 in note_in_chord and n2.name = 30
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // 7 notes scanned per loop; n2.name = 30 passes once, and two notes
  // (10, 20) precede note 30 in its chord.
  EXPECT_EQ(ScrubTimes(rs->ToString()),
            "plan: retrieve (analyze)\n"
            "  pushdown: on\n"
            "  ordering index: on\n"
            "  loop 1: n2 is NOTE (~7 rows) [actual: in=7 out=1, "
            "self=Xns]\n"
            "    filter: n2.name = 30\n"
            "  loop 2: n1 is NOTE (~7 rows) [actual: in=7 out=2, "
            "self=Xns]\n"
            "    filter: n1 before n2 in note_in_chord [rank index]\n"
            "  emit: n1.name [actual: rows=2, time=Xns]\n"
            "  actual: join=Xns, statement=Xns\n");
  EXPECT_TRUE(rs->rows.empty());
}

TEST_F(QuelPlannerTest, ExplainAnalyzeExecutesForReal) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(
      "range of n is NOTE\nexplain analyze retrieve (n.name)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_FALSE(rs->explain.empty());
  // Unlike plain explain, analyze enumerates every binding.
  EXPECT_EQ(conn.local_stats().rows_scanned, 7u);
}

TEST_F(QuelPlannerTest, ExplainAnalyzeTimesSumToStatement) {
  // A 10k-note score: 100 chords of 100 notes each.
  ASSERT_TRUE(ddl::ExecuteDdl(R"(
    define entity BIGCHORD (name = integer)
    define entity BIGNOTE (name = integer)
    define ordering big_note_in_chord (BIGNOTE) under BIGCHORD
  )",
                              &db_)
                  .ok());
  int note_name = 0;
  for (int c = 1; c <= 100; ++c) {
    EntityId chord = Create("BIGCHORD", c);
    for (int n = 0; n < 100; ++n)
      AddChild("big_note_in_chord", "BIGNOTE", chord, note_name++);
  }
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(R"(
    range of b1, b2 is BIGNOTE
    explain analyze retrieve (b1.name)
      where b1 before b2 in big_note_in_chord and b2.name = 50
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  const std::string text = rs->ToString();
  // Per-loop actual row counts: both loops scan all 10k notes once.
  EXPECT_NE(text.find("in=10000 out=1,"), std::string::npos) << text;
  EXPECT_NE(text.find("in=10000 out=50,"), std::string::npos) << text;
  // The per-loop self times plus the emit time reconstruct the join
  // total exactly, and the join dominates the reported statement
  // latency (within 10%) on a database this size.
  uint64_t self1 = ExtractNs(text, "self=");
  std::string rest = text.substr(text.find("self=") + 5);
  uint64_t self2 = ExtractNs(rest, "self=");
  uint64_t emit_ns = ExtractNs(text, "time=");
  uint64_t join_ns = ExtractNs(text, "join=");
  uint64_t statement_ns = ExtractNs(text, "statement=");
  EXPECT_EQ(self1 + self2 + emit_ns, join_ns) << text;
  EXPECT_LE(join_ns, statement_ns) << text;
  EXPECT_GE(join_ns * 10, statement_ns * 9) << text;
}

// ----------------------------------------------------------------------
// ResultSet consumption API.
// ----------------------------------------------------------------------

TEST_F(QuelPlannerTest, ResultSetAccessors) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(
      "range of n is NOTE\n"
      "retrieve (n.name) where n under chord in note_in_chord"
      " sort by n.name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->size(), 5u);
  EXPECT_FALSE(rs->empty());
  EXPECT_EQ(rs->ColumnIndex("n.name"), std::optional<size_t>(0));
  EXPECT_EQ(rs->ColumnIndex("N.NAME"), std::optional<size_t>(0));
  EXPECT_EQ(rs->ColumnIndex("nope"), std::nullopt);
  EXPECT_EQ(rs->At(0, 0).AsInt(), 10);
  EXPECT_TRUE(rs->At(0, 7).is_null());   // column out of range
  EXPECT_TRUE(rs->At(99, 0).is_null());  // row out of range
  int64_t expect = 10;
  size_t seen = 0;
  for (ResultSet::RowRef row : *rs) {
    EXPECT_EQ(row[0].AsInt(), expect);
    EXPECT_EQ(row["n.name"].AsInt(), expect);
    EXPECT_TRUE(row["nope"].is_null());
    EXPECT_EQ(row.size(), 1u);
    EXPECT_EQ(row.row_index(), seen);
    expect += 10;
    ++seen;
  }
  EXPECT_EQ(seen, rs->size());
}

// ----------------------------------------------------------------------
// ExecStats and the statement cache.
// ----------------------------------------------------------------------

TEST_F(QuelPlannerTest, ExecStatsAndParseCache) {
  Connection conn = Connection::Local(&db_);
  const std::string query =
      "range of n1, n2 is NOTE\n"
      "retrieve (n1.name)"
      " where n1 before n2 in note_in_chord and n2.name = 30";
  auto first = conn.Execute(query);
  ASSERT_TRUE(first.ok());
  const ExecStats after_first = conn.local_stats();
  EXPECT_EQ(after_first.statements, 2u);  // range + retrieve
  EXPECT_EQ(after_first.plan_cache_hits, 0u);
  // n2 loops over all 7 notes; n1 only under the surviving binding.
  EXPECT_EQ(after_first.rows_scanned, 14u);
  EXPECT_GT(after_first.conjuncts_evaluated, 0u);

  auto second = conn.Execute(query);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Ints(*second), Ints(*first));
  const ExecStats& after_second = conn.local_stats();
  EXPECT_EQ(after_second.statements, 4u);
  EXPECT_EQ(after_second.plan_cache_hits, 1u);
  // The rank index was built during the first run; the re-run only hits.
  EXPECT_GT(after_second.index_hits, after_first.index_hits);

  conn.local_session()->ResetStats();
  EXPECT_EQ(conn.local_stats().statements, 0u);
  EXPECT_EQ(conn.local_stats().ToString(),
            "statements: 0\nrows scanned: 0\nconjuncts evaluated: 0\n"
            "ordering index hits: 0\nordering index misses: 0\n"
            "plan cache hits: 0\n");
}

TEST_F(QuelPlannerTest, ResetStatsKeepsParseCache) {
  Connection conn = Connection::Local(&db_);
  const std::string query = "range of n is NOTE\nretrieve (n.name)";
  ASSERT_TRUE(conn.Execute(query).ok());
  conn.local_session()->ResetStats();
  EXPECT_EQ(conn.local_stats().plan_cache_hits, 0u);
  // The cache survived the reset: the re-run skips the parser and the
  // hit counter starts counting again from zero.
  ASSERT_TRUE(conn.Execute(query).ok());
  EXPECT_EQ(conn.local_stats().plan_cache_hits, 1u);
  EXPECT_EQ(conn.local_stats().statements, 2u);
}

TEST_F(QuelPlannerTest, ClearParseCacheForcesReparseWithoutTouchingStats) {
  Connection conn = Connection::Local(&db_);
  const std::string query = "range of n is NOTE\nretrieve (n.name)";
  ASSERT_TRUE(conn.Execute(query).ok());
  ASSERT_TRUE(conn.Execute(query).ok());
  EXPECT_EQ(conn.local_stats().plan_cache_hits, 1u);
  conn.local_session()->ClearParseCache();
  // Counters are untouched; the next run re-parses, so no new hit.
  EXPECT_EQ(conn.local_stats().plan_cache_hits, 1u);
  ASSERT_TRUE(conn.Execute(query).ok());
  EXPECT_EQ(conn.local_stats().plan_cache_hits, 1u);
  // And the re-parsed script is cached again.
  ASSERT_TRUE(conn.Execute(query).ok());
  EXPECT_EQ(conn.local_stats().plan_cache_hits, 2u);
}

TEST_F(QuelPlannerTest, NaiveAndPlannedAgreeOnRecursiveUnder) {
  Connection conn = Connection::Local(&db_);
  const char* query =
      "range of n is NOTE\nrange of s is SECTION\n"
      "retrieve (n.name) where n under s in sec_tree and s.name = 1";
  auto planned = conn.Execute(query);
  ASSERT_TRUE(planned.ok());
  auto naive = conn.local_session()->ExecuteNaive(query);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(Ints(*planned), Ints(*naive));
  db_.EnableOrderingIndex(false);
  auto ablated = conn.Execute(query);
  ASSERT_TRUE(ablated.ok());
  EXPECT_EQ(Ints(*planned), Ints(*ablated));
}

// ----------------------------------------------------------------------
// Index-ablation equivalence property: a database with the ordering
// index on and one with it off receive the SAME seeded random sequence
// of mutations and queries, and every answer must match — the index is
// a pure accelerator, never an oracle. 500+ ops per seed; a failure
// prints the seed and op number for replay.
// ----------------------------------------------------------------------

class IndexAblationFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(IndexAblationFuzz, IndexedAndUnindexedDatabasesStayEquivalent) {
  const uint64_t seed = GetParam();
  er::Database indexed;
  er::Database plain;
  for (er::Database* db : {&indexed, &plain}) {
    ASSERT_TRUE(ddl::ExecuteDdl(R"(
      define entity CHORD (name = integer)
      define entity NOTE (name = integer)
      define ordering note_in_chord (NOTE) under CHORD
    )",
                                db)
                    .ok());
  }
  plain.EnableOrderingIndex(false);
  ASSERT_TRUE(indexed.ordering_index_enabled());
  ASSERT_FALSE(plain.ordering_index_enabled());

  // Parallel id vectors: slot i refers to the same logical entity in
  // both databases (ids may differ; slots keep them aligned).
  std::vector<std::pair<EntityId, EntityId>> chords;
  std::vector<std::pair<EntityId, EntityId>> notes;
  int next_name = 0;
  Rng rng(seed);

  auto create = [&](const std::string& type,
                    std::vector<std::pair<EntityId, EntityId>>* out) {
    int name = next_name++;
    auto a = indexed.CreateEntity(type);
    auto b = plain.CreateEntity(type);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(indexed.SetAttribute(*a, "name", Value::Int(name)).ok());
    ASSERT_TRUE(plain.SetAttribute(*b, "name", Value::Int(name)).ok());
    out->emplace_back(*a, *b);
  };
  for (int i = 0; i < 3; ++i) create("CHORD", &chords);
  for (int i = 0; i < 8; ++i) create("NOTE", &notes);

  auto h_indexed = *indexed.ResolveOrderingHandle("note_in_chord");
  auto h_plain = *plain.ResolveOrderingHandle("note_in_chord");
  Connection c_indexed = Connection::Local(&indexed);
  Connection c_plain = Connection::Local(&plain);

  constexpr int kOps = 600;
  for (int op = 0; op < kOps; ++op) {
    SCOPED_TRACE(testing::Message() << "seed " << seed << " op " << op);
    const double dice = rng.NextDouble();
    if (dice < 0.12 && !notes.empty()) {
      // Append a random note under a random chord. Legal iff the note
      // is currently unordered; both databases must agree either way.
      auto [na, nb] = notes[rng.Uniform(notes.size())];
      auto [ca, cb] = chords[rng.Uniform(chords.size())];
      Status a = indexed.AppendChild(h_indexed, ca, na);
      Status b = plain.AppendChild(h_plain, cb, nb);
      ASSERT_EQ(a.code(), b.code()) << a.ToString() << " vs " << b.ToString();
    } else if (dice < 0.22 && !notes.empty()) {
      // Insert at a random position.
      auto [na, nb] = notes[rng.Uniform(notes.size())];
      auto [ca, cb] = chords[rng.Uniform(chords.size())];
      size_t at = rng.Uniform(4);
      Status a = indexed.InsertChildAt(h_indexed, ca, na, at);
      Status b = plain.InsertChildAt(h_plain, cb, nb, at);
      ASSERT_EQ(a.code(), b.code());
    } else if (dice < 0.30 && !notes.empty()) {
      auto [na, nb] = notes[rng.Uniform(notes.size())];
      Status a = indexed.RemoveChild(h_indexed, na);
      Status b = plain.RemoveChild(h_plain, nb);
      ASSERT_EQ(a.code(), b.code());
    } else if (dice < 0.36) {
      if (rng.Bernoulli(0.7) || notes.size() < 4) {
        create("NOTE", &notes);
      } else {
        // Delete an entity outright (detaches it from the ordering).
        size_t slot = rng.Uniform(notes.size());
        Status a = indexed.DeleteEntity(notes[slot].first);
        Status b = plain.DeleteEntity(notes[slot].second);
        ASSERT_EQ(a.code(), b.code());
        notes.erase(notes.begin() + slot);
      }
    } else if (dice < 0.55 && notes.size() >= 2) {
      // Pairwise predicates: Before/After must agree ok-ness and value.
      auto [xa, xb] = notes[rng.Uniform(notes.size())];
      auto [ya, yb] = notes[rng.Uniform(notes.size())];
      auto before_a = indexed.Before(h_indexed, xa, ya);
      auto before_b = plain.Before(h_plain, xb, yb);
      ASSERT_EQ(before_a.ok(), before_b.ok());
      if (before_a.ok()) {
        ASSERT_EQ(*before_a, *before_b);
      }
      auto after_a = indexed.After(h_indexed, xa, ya);
      auto after_b = plain.After(h_plain, xb, yb);
      ASSERT_EQ(after_a.ok(), after_b.ok());
      if (after_a.ok()) {
        ASSERT_EQ(*after_a, *after_b);
      }
    } else if (dice < 0.70 && !notes.empty()) {
      auto [na, nb] = notes[rng.Uniform(notes.size())];
      auto [ca, cb] = chords[rng.Uniform(chords.size())];
      auto under_a = indexed.Under(h_indexed, na, ca);
      auto under_b = plain.Under(h_plain, nb, cb);
      ASSERT_EQ(under_a.ok(), under_b.ok());
      if (under_a.ok()) {
        ASSERT_EQ(*under_a, *under_b);
      }
      auto pos_a = indexed.PositionOf(h_indexed, na);
      auto pos_b = plain.PositionOf(h_plain, nb);
      ASSERT_EQ(pos_a.ok(), pos_b.ok());
      if (pos_a.ok()) {
        ASSERT_EQ(*pos_a, *pos_b);
      }
    } else if (dice < 0.85 && !chords.empty()) {
      // Child lists must agree element-by-element (mapped via slots).
      auto [ca, cb] = chords[rng.Uniform(chords.size())];
      auto kids_a = indexed.Children(h_indexed, ca);
      auto kids_b = plain.Children(h_plain, cb);
      ASSERT_EQ(kids_a.ok(), kids_b.ok());
      if (!kids_a.ok()) continue;
      ASSERT_EQ(kids_a->size(), kids_b->size());
      for (size_t i = 0; i < kids_a->size(); ++i) {
        auto slot = std::find_if(
            notes.begin(), notes.end(),
            [&](const auto& p) { return p.first == (*kids_a)[i]; });
        ASSERT_NE(slot, notes.end());
        ASSERT_EQ(slot->second, (*kids_b)[i]);
      }
    } else {
      // The same QUEL ordering query against both databases.
      const std::string query =
          "range of n1, n2 is NOTE\n"
          "retrieve (n1.name) where n1 " +
          std::string(rng.Bernoulli(0.5) ? "before" : "after") +
          " n2 in note_in_chord and n2.name = " +
          std::to_string(rng.Uniform(static_cast<uint64_t>(next_name)));
      auto rs_a = c_indexed.Execute(query);
      auto rs_b = c_plain.Execute(query);
      ASSERT_EQ(rs_a.ok(), rs_b.ok());
      if (rs_a.ok()) {
        std::vector<int64_t> va, vb;
        for (const auto& row : rs_a->rows) va.push_back(row[0].AsInt());
        for (const auto& row : rs_b->rows) vb.push_back(row[0].AsInt());
        std::sort(va.begin(), va.end());
        std::sort(vb.begin(), vb.end());
        ASSERT_EQ(va, vb);
      }
    }
  }
  // The ablated database must never have built an index; the indexed
  // one must have actually used its.
  er::OrderingIndexStats ablated = plain.ordering_index_stats();
  EXPECT_EQ(ablated.rank_rebuilds + ablated.interval_rebuilds, 0u);
  er::OrderingIndexStats used = indexed.ordering_index_stats();
  EXPECT_GT(used.rank_hits + used.interval_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexAblationFuzz,
                         testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace mdm::quel

// Metrics registry + trace spans (src/obs): bucket boundaries,
// concurrency, renderer goldens, and span nesting/attribution.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace mdm::obs {
namespace {

// ----------------------------------------------------------------------
// Histogram bucket boundaries.
// ----------------------------------------------------------------------

TEST(HistogramTest, BucketIndexBoundaries) {
  // A value v lands in the first bucket whose upper bound 2^i satisfies
  // v <= 2^i.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 3u);
  EXPECT_EQ(Histogram::BucketIndex(9), 4u);
  // The last finite bucket holds values up to 2^31...
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 31),
            Histogram::kFiniteBuckets - 1);
  // ...and anything beyond overflows into +Inf.
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 31) + 1),
            Histogram::kFiniteBuckets);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kFiniteBuckets);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(31), uint64_t{1} << 31);
}

TEST(HistogramTest, ObservePlacesCountAndSum) {
  Histogram h;
  h.Observe(1);
  h.Observe(3);
  h.Observe(3);
  h.Observe(5'000'000'000);  // ~5 s: past every finite bound
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5'000'000'007u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // le=1
  EXPECT_EQ(h.bucket_count(1), 0u);  // le=2
  EXPECT_EQ(h.bucket_count(2), 2u);  // le=4
  EXPECT_EQ(h.bucket_count(Histogram::kFiniteBuckets), 1u);  // +Inf
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

// ----------------------------------------------------------------------
// Concurrency: the fast path is relaxed atomics; registration is
// mutex-protected and idempotent. Run under TSan via the obs-tsan
// preset.
// ----------------------------------------------------------------------

TEST(RegistryTest, ConcurrentIncrementsAndRegistration) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      // Every thread registers the same names; all must resolve to the
      // same instances.
      Counter* c = reg.GetCounter("mdm_test_concurrent_total");
      Histogram* h = reg.GetHistogram("mdm_test_concurrent_ns");
      seen[t] = c;
      for (int i = 0; i < kIters; ++i) {
        c->Inc();
        h->Observe(static_cast<uint64_t>(i % 1000));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(reg.GetCounter("mdm_test_concurrent_total")->value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.GetHistogram("mdm_test_concurrent_ns")->count(),
            static_cast<uint64_t>(kThreads) * kIters);
}

// ----------------------------------------------------------------------
// Renderer goldens (private registry for deterministic content).
// ----------------------------------------------------------------------

Registry* MakeGoldenRegistry() {
  auto* reg = new Registry();
  reg->GetCounter("mdm_test_total", "Things counted")->Inc(3);
  reg->GetGauge("mdm_depth", "Current depth")->Set(-2);
  Histogram* h = reg->GetHistogram("mdm_lat_ns{op=\"x\"}", "Latency");
  h->Observe(1);
  h->Observe(3);
  h->Observe(5'000'000'000);
  return reg;
}

TEST(RegistryTest, PrometheusTextGolden) {
  std::unique_ptr<Registry> reg(MakeGoldenRegistry());
  std::string expected =
      "# HELP mdm_depth Current depth\n"
      "# TYPE mdm_depth gauge\n"
      "mdm_depth -2\n"
      "# HELP mdm_lat_ns Latency\n"
      "# TYPE mdm_lat_ns histogram\n";
  uint64_t cumulative[Histogram::kFiniteBuckets] = {};
  // Observations 1 and 3 land in buckets le=1 and le=4; 5e9 overflows.
  for (size_t i = 0; i < Histogram::kFiniteBuckets; ++i)
    cumulative[i] = i < 2 ? 1 : 2;
  for (size_t i = 0; i < Histogram::kFiniteBuckets; ++i)
    expected += "mdm_lat_ns_bucket{op=\"x\",le=\"" +
                std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
                std::to_string(cumulative[i]) + "\n";
  expected +=
      "mdm_lat_ns_bucket{op=\"x\",le=\"+Inf\"} 3\n"
      "mdm_lat_ns_sum{op=\"x\"} 5000000004\n"
      "mdm_lat_ns_count{op=\"x\"} 3\n"
      "# HELP mdm_test_total Things counted\n"
      "# TYPE mdm_test_total counter\n"
      "mdm_test_total 3\n";
  EXPECT_EQ(reg->RenderPrometheusText(), expected);
}

TEST(RegistryTest, JsonGolden) {
  std::unique_ptr<Registry> reg(MakeGoldenRegistry());
  EXPECT_EQ(reg->RenderJson(),
            "{\"counters\": {\"mdm_test_total\": 3}, "
            "\"gauges\": {\"mdm_depth\": -2}, "
            "\"histograms\": {\"mdm_lat_ns{op=\\\"x\\\"}\": "
            "{\"count\": 3, \"sum\": 5000000004, "
            "\"buckets\": [[1, 1], [4, 1], [\"+Inf\", 1]]}}}");
}

TEST(RegistryTest, LabelledSeriesShareOneFamilyHeader) {
  Registry reg;
  reg.GetCounter("mdm_multi_total{kind=\"a\"}", "Multi")->Inc(1);
  reg.GetCounter("mdm_multi_total{kind=\"b\"}", "Multi")->Inc(2);
  std::string text = reg.RenderPrometheusText();
  // One HELP/TYPE pair for the family, one sample per series.
  EXPECT_EQ(text,
            "# HELP mdm_multi_total Multi\n"
            "# TYPE mdm_multi_total counter\n"
            "mdm_multi_total{kind=\"a\"} 1\n"
            "mdm_multi_total{kind=\"b\"} 2\n");
}

TEST(RegistryTest, FamiliesStayContiguousWhenLabeledSeriesInterleave) {
  // Registry iteration is by FULL name, and '_' (0x5f) sorts before
  // '{' (0x7b) — so "mdm_fam_other" falls lexicographically between
  // "mdm_fam" and "mdm_fam{...}". The renderer must group by (base
  // name, labels), not full-name order, or the mdm_fam family is split
  // in two and Prometheus rejects the duplicate HELP/TYPE headers.
  Registry reg;
  reg.GetCounter("mdm_fam", "Fam")->Inc(1);
  reg.GetCounter("mdm_fam_other", "Other")->Inc(2);
  reg.GetCounter("mdm_fam{kind=\"z\"}", "Fam")->Inc(3);
  EXPECT_EQ(reg.RenderPrometheusText(),
            "# HELP mdm_fam Fam\n"
            "# TYPE mdm_fam counter\n"
            "mdm_fam 1\n"
            "mdm_fam{kind=\"z\"} 3\n"
            "# HELP mdm_fam_other Other\n"
            "# TYPE mdm_fam_other counter\n"
            "mdm_fam_other 2\n");
}

TEST(RegistryTest, CounterValuesSnapshotsMonotonicSeries) {
  Registry reg;
  reg.GetCounter("mdm_c_total")->Inc(5);
  reg.GetGauge("mdm_g")->Set(9);  // gauges are excluded: not monotonic
  Histogram* h = reg.GetHistogram("mdm_h_ns{op=\"y\"}");
  h->Observe(7);
  h->Observe(9);
  auto values = reg.CounterValues();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values.at("mdm_c_total"), 5u);
  EXPECT_EQ(values.at("mdm_h_ns_count{op=\"y\"}"), 2u);
  EXPECT_EQ(values.at("mdm_h_ns_sum{op=\"y\"}"), 16u);
}

TEST(RegistryTest, ResetAllKeepsPointersValid) {
  Registry reg;
  Counter* c = reg.GetCounter("mdm_r_total");
  c->Inc(4);
  reg.ResetAllForTest();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.GetCounter("mdm_r_total"), c);
}

// ----------------------------------------------------------------------
// HistogramPercentile: the log2-bucket quantile estimate behind
// /statusz and the benches.
// ----------------------------------------------------------------------

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(HistogramPercentile(h, 0.5), 0.0);
  EXPECT_EQ(HistogramPercentile(h, 0.99), 0.0);
}

TEST(HistogramPercentileTest, SingleBucketInterpolatesLinearly) {
  Histogram h;
  // Four observations, all in bucket (4, 8] (index 3).
  for (int i = 0; i < 4; ++i) h.Observe(6);
  // The k-th of n=4 observations sits at lo + (k/4)(hi-lo), lo=4 hi=8.
  EXPECT_DOUBLE_EQ(HistogramPercentile(h, 0.25), 5.0);   // rank 1
  EXPECT_DOUBLE_EQ(HistogramPercentile(h, 0.50), 6.0);   // rank 2
  EXPECT_DOUBLE_EQ(HistogramPercentile(h, 1.00), 8.0);   // rank 4
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(HistogramPercentile(h, -1.0), 5.0);
  EXPECT_DOUBLE_EQ(HistogramPercentile(h, 2.0), 8.0);
}

TEST(HistogramPercentileTest, WalksAcrossBuckets) {
  Histogram h;
  h.Observe(1);    // bucket 0: (0, 1]
  h.Observe(2);    // bucket 1: (1, 2]
  h.Observe(100);  // bucket 7: (64, 128]
  h.Observe(100);
  // rank(0.5 * 4) = 2 -> the single observation filling bucket 1.
  EXPECT_DOUBLE_EQ(HistogramPercentile(h, 0.5), 2.0);
  // rank 4 -> second of two in (64, 128].
  EXPECT_DOUBLE_EQ(HistogramPercentile(h, 1.0), 128.0);
  // rank 3 -> first of two in (64, 128]: 64 + 32.
  EXPECT_DOUBLE_EQ(HistogramPercentile(h, 0.75), 96.0);
}

TEST(HistogramPercentileTest, OverflowSaturatesAtLastFiniteBound) {
  Histogram h;
  h.Observe(1);
  h.Observe(5'000'000'000);  // +Inf bucket
  EXPECT_DOUBLE_EQ(
      HistogramPercentile(h, 1.0),
      static_cast<double>(
          Histogram::BucketUpperBound(Histogram::kFiniteBuckets - 1)));
}

TEST(HistogramPercentileTest, EstimateIsWithinOneBucketOfTruth) {
  // 1000 uniform observations in [1, 1000]: p50 true value 500 lies in
  // (256, 512], p99's 990 in (512, 1024] — the estimate must land in
  // the same bucket as the exact answer (the documented ~2x accuracy).
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  double p50 = HistogramPercentile(h, 0.50);
  EXPECT_GT(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  double p99 = HistogramPercentile(h, 0.99);
  EXPECT_GT(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
}

// ----------------------------------------------------------------------
// Spans.
// ----------------------------------------------------------------------

void BusyWaitNs(uint64_t ns) {
  auto start = std::chrono::steady_clock::now();
  while (static_cast<uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) < ns) {
  }
}

TEST(SpanTest, NestingDepthAndSelfTimeAttribution) {
  auto* reg = Registry::Global();
  Histogram* outer_h =
      reg->GetHistogram("mdm_span_duration_ns{span=\"test.outer\"}");
  Counter* outer_self =
      reg->GetCounter("mdm_span_self_ns_total{span=\"test.outer\"}");
  Histogram* inner_h =
      reg->GetHistogram("mdm_span_duration_ns{span=\"test.inner\"}");

  ASSERT_EQ(Span::depth(), 0);
  {
    Span outer("test.outer");
    EXPECT_EQ(Span::depth(), 1);
    BusyWaitNs(100'000);
    {
      Span inner("test.inner");
      EXPECT_EQ(Span::depth(), 2);
      BusyWaitNs(300'000);
      EXPECT_GE(inner.elapsed_ns(), 300'000u);
    }
    EXPECT_EQ(Span::depth(), 1);
  }
  EXPECT_EQ(Span::depth(), 0);

  EXPECT_EQ(outer_h->count(), 1u);
  EXPECT_EQ(inner_h->count(), 1u);
  uint64_t outer_total = outer_h->sum();
  uint64_t inner_total = inner_h->sum();
  // The outer span's inclusive time covers the inner span entirely, and
  // its self time is exactly the remainder.
  EXPECT_GE(inner_total, 300'000u);
  EXPECT_GE(outer_total, inner_total + 100'000);
  EXPECT_EQ(outer_self->value() + inner_total, outer_total);
}

TEST(SpanTest, SequentialSiblingsAccumulateOnOneSeries) {
  auto* reg = Registry::Global();
  Histogram* h =
      reg->GetHistogram("mdm_span_duration_ns{span=\"test.sibling\"}");
  uint64_t before = h->count();
  for (int i = 0; i < 3; ++i) {
    Span span("test.sibling");
  }
  EXPECT_EQ(h->count(), before + 3);
}

}  // namespace
}  // namespace mdm::obs

#include <gtest/gtest.h>

#include "cmn/aspects.h"
#include "cmn/schema.h"
#include "cmn/score_builder.h"
#include "cmn/temporal.h"
#include "er/database.h"
#include "net/connection.h"
#include "quel/quel.h"

namespace mdm::cmn {
namespace {

using er::EntityId;

class CmnScoreTest : public testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(InstallCmnSchema(&db_).ok()); }

  er::Database db_;
};

TEST_F(CmnScoreTest, SchemaInstallsAllFig11Entities) {
  for (const std::string& type : Fig11EntityTypes())
    EXPECT_NE(db_.schema().FindEntityType(type), nullptr) << type;
  // Key orderings from fig 13.
  for (const char* ordering :
       {kMovementInScore, kMeasureInMovement, kSyncInMeasure, kChordInSync,
        kNoteInChord, kGroupSeq, kVoiceSeq, kNoteInEvent, kMidiInEvent})
    EXPECT_NE(db_.schema().FindOrdering(ordering), nullptr) << ordering;
  // group_seq is the recursive one (beams within beams).
  EXPECT_TRUE(db_.schema().FindOrdering(kGroupSeq)->IsRecursive());
  // Idempotent.
  EXPECT_TRUE(InstallCmnSchema(&db_).ok());
}

TEST_F(CmnScoreTest, Fig11TableRegenerates) {
  std::string table = Fig11Table();
  EXPECT_NE(table.find("Sync"), std::string::npos);
  EXPECT_NE(table.find("Sets of simultaneous events"), std::string::npos);
  EXPECT_NE(table.find("The unit of homophony"), std::string::npos);
}

TEST_F(CmnScoreTest, BuildSmallScore) {
  ScoreBuilder b(&db_);
  auto score = b.CreateScore("Fuge g-moll", "BWV 578");
  ASSERT_TRUE(score.ok());
  auto movement = b.AddMovement(*score, "Fuga");
  ASSERT_TRUE(movement.ok());
  auto m1 = b.AddMeasure(*movement, 1, {4, 4});
  auto m2 = b.AddMeasure(*movement, 2, {4, 4});
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  auto voice = b.AddVoice(1);
  ASSERT_TRUE(voice.ok());
  auto sync = b.GetOrAddSync(*m1, Rational(0));
  ASSERT_TRUE(sync.ok());
  auto chord = b.AddChord(*sync, *voice, Rational(1, 2));
  ASSERT_TRUE(chord.ok());
  auto note = b.AddNote(*chord, Clef::kTreble, 4);  // D5... degree 4 = B4
  ASSERT_TRUE(note.ok());
  auto key = db_.GetAttribute(*note, "midi_key");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->AsInt(), DegreeToPitch(Clef::kTreble, 4).MidiKey());

  // The temporal hierarchy is navigable through plain ordering ops.
  EXPECT_EQ(*db_.ParentOf(kChordInSync, *chord), *sync);
  EXPECT_EQ(*db_.ParentOf(kSyncInMeasure, *sync), *m1);
  EXPECT_EQ(*db_.ParentOf(kMeasureInMovement, *m1), *movement);
  EXPECT_EQ(*db_.ParentOf(kMovementInScore, *movement), *score);
}

TEST_F(CmnScoreTest, SyncsSortedAndDeduplicated) {
  ScoreBuilder b(&db_);
  auto score = b.CreateScore("t");
  auto movement = b.AddMovement(*score, "I");
  auto measure = b.AddMeasure(*movement, 1, {4, 4});
  auto s_half = b.GetOrAddSync(*measure, Rational(1, 2));
  auto s_zero = b.GetOrAddSync(*measure, Rational(0));
  auto s_third = b.GetOrAddSync(*measure, Rational(1, 3));
  auto again = b.GetOrAddSync(*measure, Rational(1, 2));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *s_half);  // reused, not duplicated
  auto kids = db_.Children(kSyncInMeasure, *measure);
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(*kids, (std::vector<EntityId>{*s_zero, *s_third, *s_half}));
}

TEST_F(CmnScoreTest, SyncScoreTimeAccumulatesMeasures) {
  ScoreBuilder b(&db_);
  auto score = b.CreateScore("t");
  auto movement = b.AddMovement(*score, "I");
  auto m1 = b.AddMeasure(*movement, 1, {3, 4});
  auto m2 = b.AddMeasure(*movement, 2, {4, 4});
  auto m3 = b.AddMeasure(*movement, 3, {6, 8});
  (void)m2;
  auto sync = b.GetOrAddSync(*m3, Rational(3, 2));
  ASSERT_TRUE(sync.ok());
  // m1 is 3 beats, m2 is 4 beats; sync is 1.5 beats into m3.
  auto t = SyncScoreTime(db_, *sync);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(*t, Rational(17, 2));
  (void)m1;
}

TEST_F(CmnScoreTest, TiesMergeNotesIntoEvents) {
  ScoreBuilder b(&db_);
  auto score = b.CreateScore("t");
  auto movement = b.AddMovement(*score, "I");
  auto m1 = b.AddMeasure(*movement, 1, {4, 4});
  auto m2 = b.AddMeasure(*movement, 2, {4, 4});
  auto voice = b.AddVoice(1);
  // A half note on beat 3 of m1 tied across the barline to a half note
  // on beat 0 of m2: one EVENT of 2+2 beats... here quarter+quarter.
  auto s1 = b.GetOrAddSync(*m1, Rational(3));
  auto c1 = b.AddChord(*s1, *voice, Rational(1));
  auto n1 = b.AddNoteMidi(*c1, 67);
  auto s2 = b.GetOrAddSync(*m2, Rational(0));
  auto c2 = b.AddChord(*s2, *voice, Rational(1));
  auto n2 = b.AddNoteMidi(*c2, 67);
  ASSERT_TRUE(b.Tie(*n1, *n2).ok());
  // Tying the same note again violates the one-event rule.
  EXPECT_EQ(b.Tie(*n1, *n2).code(), StatusCode::kConstraintViolation);

  mtime::TempoMap tempo;  // default 120 bpm: 0.5 s per beat
  auto notes = ExtractPerformance(&db_, *score, tempo);
  ASSERT_TRUE(notes.ok()) << notes.status().ToString();
  ASSERT_EQ(notes->size(), 1u);  // the tie merged two notes
  const PerformedNote& pn = (*notes)[0];
  EXPECT_EQ(pn.midi_key, 67);
  EXPECT_EQ(pn.start_beats, Rational(3));
  EXPECT_EQ(pn.duration_beats, Rational(2));
  EXPECT_DOUBLE_EQ(pn.start_seconds, 1.5);
  EXPECT_DOUBLE_EQ(pn.end_seconds, 2.5);
  // The EVENT carries its performance times (fig 13's temporal
  // attributes of EVENT).
  auto event = db_.ParentOf(kNoteInEvent, *n1);
  ASSERT_TRUE(event.ok());
  auto start = db_.GetAttribute(*event, "start_seconds");
  ASSERT_TRUE(start.ok());
  EXPECT_DOUBLE_EQ(start->AsFloat(), 1.5);
}

TEST_F(CmnScoreTest, DynamicsAndArticulationShapePerformance) {
  ScoreBuilder b(&db_);
  auto score = b.CreateScore("t");
  auto movement = b.AddMovement(*score, "I");
  auto m1 = b.AddMeasure(*movement, 1, {4, 4});
  auto voice = b.AddVoice(1);
  auto sync = b.GetOrAddSync(*m1, Rational(0));
  auto chord = b.AddChord(*sync, *voice, Rational(1));
  auto note = b.AddNoteMidi(*chord, 60);
  ASSERT_TRUE(
      db_.SetAttribute(*note, "dynamic", rel::Value::String("ff")).ok());
  ASSERT_TRUE(
      db_.SetAttribute(*note, "articulation", rel::Value::String("staccato"))
          .ok());
  mtime::TempoMap tempo;
  auto notes = ExtractPerformance(&db_, *score, tempo);
  ASSERT_TRUE(notes.ok());
  ASSERT_EQ(notes->size(), 1u);
  EXPECT_EQ((*notes)[0].velocity, 100);  // ff
  // Staccato halves the sounding duration: 1 beat -> 0.25 s at 120.
  EXPECT_DOUBLE_EQ((*notes)[0].end_seconds, 0.25);
}

TEST_F(CmnScoreTest, GroupDurationAggregatesRecursively) {
  // Fig 15 / fig 8: nested beam groups.
  ScoreBuilder b(&db_);
  auto score = b.CreateScore("t");
  auto movement = b.AddMovement(*score, "I");
  auto measure = b.AddMeasure(*movement, 1, {4, 4});
  auto voice = b.AddVoice(1);
  auto sync = b.GetOrAddSync(*measure, Rational(0));
  auto outer = b.AddGroup("beam");
  auto inner = b.AddGroup("beam");
  ASSERT_TRUE(outer.ok());
  ASSERT_TRUE(inner.ok());
  auto c1 = b.AddChord(*sync, *voice, Rational(1, 2));
  auto sync2 = b.GetOrAddSync(*measure, Rational(1, 2));
  auto c2 = b.AddChord(*sync2, *voice, Rational(1, 4));
  auto sync3 = b.GetOrAddSync(*measure, Rational(3, 4));
  auto c3 = b.AddChord(*sync3, *voice, Rational(1, 4));
  ASSERT_TRUE(b.AddToGroup(*outer, *c1).ok());
  ASSERT_TRUE(b.AddToGroup(*inner, *c2).ok());
  ASSERT_TRUE(b.AddToGroup(*inner, *c3).ok());
  ASSERT_TRUE(b.AddToGroup(*outer, *inner).ok());
  auto duration = GroupDuration(&db_, *outer);
  ASSERT_TRUE(duration.ok());
  EXPECT_EQ(*duration, Rational(1));
  // The computed duration is stored on the group entity.
  auto stored = db_.GetAttribute(*outer, "duration_beats");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->AsRational(), Rational(1));
}

TEST_F(CmnScoreTest, Fig14AlignVoicesToSyncs) {
  // Fig 14: two voices with different rhythms divide a measure into
  // syncs at every distinct onset.
  ScoreBuilder b(&db_);
  auto score = b.CreateScore("t");
  auto movement = b.AddMovement(*score, "I");
  auto measure = b.AddMeasure(*movement, 1, {4, 4});
  (void)measure;
  auto v1 = b.AddVoice(1);
  auto v2 = b.AddVoice(2);
  // Voice 1: four quarters (onsets 0, 1, 2, 3).
  // Voice 2: half, quarter rest, quarter (onsets 0, [2], 3).
  er::Database& db = *b.db();
  auto mk_chord = [&](EntityId voice, Rational dur) {
    auto chord = db.CreateEntity("CHORD");
    EXPECT_TRUE(chord.ok());
    EXPECT_TRUE(
        db.SetAttribute(*chord, "duration_beats", rel::Value::Rat(dur)).ok());
    EXPECT_TRUE(db.AppendChild(kVoiceSeq, voice, *chord).ok());
    return *chord;
  };
  for (int i = 0; i < 4; ++i) mk_chord(*v1, Rational(1));
  mk_chord(*v2, Rational(2));
  ASSERT_TRUE(b.AddRest(*v2, Rational(1)).ok());
  mk_chord(*v2, Rational(1));

  auto syncs = AlignVoicesToSyncs(&db_, *score, {*v1, *v2});
  ASSERT_TRUE(syncs.ok()) << syncs.status().ToString();
  // Distinct onsets: 0, 1, 2, 3 (the rest at beat 2 creates no sync of
  // its own, but voice 1 has a chord there).
  EXPECT_EQ(*syncs, 4u);
  // The sync at beat 0 holds chords from both voices.
  auto m_syncs = db_.Children(kSyncInMeasure, *measure);
  ASSERT_TRUE(m_syncs.ok());
  auto chords_at_0 = db_.Children(kChordInSync, (*m_syncs)[0]);
  ASSERT_TRUE(chords_at_0.ok());
  EXPECT_EQ(chords_at_0->size(), 2u);
  // Beat 3 likewise (voice 1's fourth quarter + voice 2's last quarter).
  auto chords_at_3 = db_.Children(kChordInSync, (*m_syncs)[3]);
  ASSERT_TRUE(chords_at_3.ok());
  EXPECT_EQ(chords_at_3->size(), 2u);
  // Re-running is idempotent for already-aligned chords.
  auto again = AlignVoicesToSyncs(&db_, *score, {*v1, *v2});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 4u);
}

TEST_F(CmnScoreTest, MaterializeMidiEvents) {
  ScoreBuilder b(&db_);
  auto score = b.CreateScore("t");
  auto movement = b.AddMovement(*score, "I");
  auto measure = b.AddMeasure(*movement, 1, {4, 4});
  auto voice = b.AddVoice(1);
  for (int i = 0; i < 4; ++i) {
    auto sync = b.GetOrAddSync(*measure, Rational(i));
    auto chord = b.AddChord(*sync, *voice, Rational(1));
    ASSERT_TRUE(b.AddNoteMidi(*chord, 60 + i).ok());
  }
  mtime::TempoMap tempo;
  auto n = MaterializeMidiEvents(&db_, *score, tempo);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(*db_.CountEntities("MIDI_EVENT"), 4u);
}

TEST_F(CmnScoreTest, BuilderValidatesInput) {
  ScoreBuilder b(&db_);
  auto score = b.CreateScore("t");
  auto movement = b.AddMovement(*score, "I");
  auto measure = b.AddMeasure(*movement, 1, {4, 4});
  auto voice = b.AddVoice(1);
  auto sync = b.GetOrAddSync(*measure, Rational(0));
  EXPECT_EQ(b.GetOrAddSync(*measure, Rational(-1)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(b.AddChord(*sync, *voice, Rational(0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(b.AddRest(*voice, Rational(-1, 2)).status().code(),
            StatusCode::kInvalidArgument);
  auto chord = b.AddChord(*sync, *voice, Rational(1));
  EXPECT_EQ(b.AddNoteMidi(*chord, 300).status().code(),
            StatusCode::kInvalidArgument);
  // Tying non-notes fails.
  EXPECT_EQ(b.Tie(*chord, *chord).code(), StatusCode::kTypeError);
}

TEST_F(CmnScoreTest, AspectsClassification) {
  auto note_aspects = AspectsOf("NOTE");
  // §7.1.1: a note participates in every aspect of fig 12 except the
  // textual subaspect.
  EXPECT_EQ(note_aspects.size(), 6u);
  auto midi_aspects = AspectsOf("MIDI_EVENT");
  for (Aspect a : midi_aspects) EXPECT_NE(a, Aspect::kGraphical);
  EXPECT_TRUE(AspectsOf("UNKNOWN_TYPE").empty());
  // Attribute-level views.
  auto beat_aspects = AttributeAspects("SYNC", "beat");
  ASSERT_EQ(beat_aspects.size(), 1u);
  EXPECT_EQ(beat_aspects[0], Aspect::kTemporal);
  std::string tree = AspectTreeText();
  EXPECT_NE(tree.find("articulation"), std::string::npos);
  EXPECT_NE(tree.find("textual"), std::string::npos);
}

TEST_F(CmnScoreTest, CmnQueriesThroughQuel) {
  ScoreBuilder b(&db_);
  auto score = b.CreateScore("Fuge g-moll", "BWV 578");
  auto movement = b.AddMovement(*score, "Fuga");
  auto measure = b.AddMeasure(*movement, 1, {4, 4});
  auto voice = b.AddVoice(1);
  auto sync = b.GetOrAddSync(*measure, Rational(0));
  auto chord = b.AddChord(*sync, *voice, Rational(1));
  ASSERT_TRUE(b.AddNote(*chord, Clef::kTreble, 1).ok());
  ASSERT_TRUE(b.AddNote(*chord, Clef::kTreble, 3).ok());
  ASSERT_TRUE(b.AddNote(*chord, Clef::kTreble, 5).ok());

  mdm::Connection session = mdm::Connection::Local(&db_);
  auto rs = session.Execute(R"(
    range of n is NOTE
    range of c is CHORD
    retrieve (k = count(n)) where n under c in note_in_chord
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsInt(), 3);
}

}  // namespace
}  // namespace mdm::cmn

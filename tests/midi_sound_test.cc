#include <gtest/gtest.h>

#include <cmath>

#include "midi/midi.h"
#include "sound/sound.h"

namespace mdm {
namespace {

using cmn::PerformedNote;
using midi::MidiEvent;
using midi::MidiTrack;

std::vector<PerformedNote> SmallPerformance() {
  std::vector<PerformedNote> notes;
  for (int i = 0; i < 4; ++i) {
    PerformedNote pn;
    pn.midi_key = 60 + i * 2;
    pn.velocity = 80;
    pn.start_seconds = i * 0.5;
    pn.end_seconds = i * 0.5 + 0.45;
    notes.push_back(pn);
  }
  return notes;
}

TEST(MidiTrackTest, FromPerformanceAndSorting) {
  MidiTrack track = midi::TrackFromPerformance(SmallPerformance());
  ASSERT_EQ(track.events.size(), 8u);
  // Events are time-sorted, and the stream alternates on/off here.
  for (size_t i = 1; i < track.events.size(); ++i)
    EXPECT_LE(track.events[i - 1].seconds, track.events[i].seconds);
  EXPECT_DOUBLE_EQ(track.Duration(), 1.95);
}

TEST(MidiTrackTest, NoteOffBeforeOnAtSameInstant) {
  MidiTrack track;
  MidiEvent on;
  on.kind = MidiEvent::Kind::kNoteOn;
  on.seconds = 1.0;
  MidiEvent off;
  off.kind = MidiEvent::Kind::kNoteOff;
  off.seconds = 1.0;
  track.events = {on, off};
  track.Sort();
  EXPECT_EQ(track.events[0].kind, MidiEvent::Kind::kNoteOff);
}

TEST(SmfTest, WriteReadRoundTrip) {
  MidiTrack track = midi::TrackFromPerformance(SmallPerformance());
  std::vector<uint8_t> bytes = midi::WriteSmf(track);
  // Header sanity.
  ASSERT_GT(bytes.size(), 22u);
  EXPECT_EQ(bytes[0], 'M');
  EXPECT_EQ(bytes[1], 'T');
  EXPECT_EQ(bytes[2], 'h');
  EXPECT_EQ(bytes[3], 'd');

  auto parsed = midi::ReadSmf(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // 8 note events + 1 tempo meta.
  ASSERT_EQ(parsed->events.size(), 9u);
  int ons = 0, offs = 0;
  for (const MidiEvent& e : parsed->events) {
    if (e.kind == MidiEvent::Kind::kNoteOn) {
      ++ons;
      EXPECT_GE(e.key, 60);
      EXPECT_LE(e.key, 66);
    }
    if (e.kind == MidiEvent::Kind::kNoteOff) ++offs;
  }
  EXPECT_EQ(ons, 4);
  EXPECT_EQ(offs, 4);
  // Times survive within one tick of quantization.
  double tick = 0.5 / 480;
  for (const MidiEvent& e : parsed->events) {
    if (e.kind != MidiEvent::Kind::kNoteOn) continue;
    double nearest = std::round(e.seconds / 0.5) * 0.5;
    EXPECT_NEAR(e.seconds, nearest, tick + 1e-9);
  }
}

TEST(SmfTest, ControlAndProgramEvents) {
  MidiTrack track;
  MidiEvent ctl;
  ctl.kind = MidiEvent::Kind::kControl;
  ctl.seconds = 0.25;
  ctl.controller = 66;  // sostenuto, the paper's §7.2 example
  ctl.value = 127;
  MidiEvent prg;
  prg.kind = MidiEvent::Kind::kProgram;
  prg.seconds = 0.0;
  prg.value = 19;  // church organ
  track.events = {ctl, prg};
  auto parsed = midi::ReadSmf(midi::WriteSmf(track));
  ASSERT_TRUE(parsed.ok());
  bool saw_ctl = false, saw_prg = false;
  for (const MidiEvent& e : parsed->events) {
    if (e.kind == MidiEvent::Kind::kControl) {
      saw_ctl = true;
      EXPECT_EQ(e.controller, 66);
      EXPECT_EQ(e.value, 127);
    }
    if (e.kind == MidiEvent::Kind::kProgram) {
      saw_prg = true;
      EXPECT_EQ(e.value, 19);
    }
  }
  EXPECT_TRUE(saw_ctl);
  EXPECT_TRUE(saw_prg);
}

TEST(SmfTest, RejectsGarbage) {
  EXPECT_FALSE(midi::ReadSmf({1, 2, 3}).ok());
  std::vector<uint8_t> bad = {'M', 'T', 'h', 'd', 0, 0, 0, 6,
                              0,   2,  0,  1,  1, 0xE0};  // format 2
  EXPECT_FALSE(midi::ReadSmf(bad).ok());
}

TEST(SmfTest, EventListTextMentionsEverything) {
  MidiTrack track = midi::TrackFromPerformance(SmallPerformance());
  std::string text = midi::EventListText(track);
  EXPECT_NE(text.find("note-on"), std::string::npos);
  EXPECT_NE(text.find("note-off"), std::string::npos);
  EXPECT_NE(text.find("key  60"), std::string::npos);
}

TEST(SoundTest, PaperStorageArithmetic) {
  // §4.1: "ten minutes of musical sound ... 57.6 megabytes".
  EXPECT_EQ(sound::StorageBytes(600.0), 57'600'000u);
  EXPECT_EQ(sound::StorageBytes(1.0, 48000, 16), 96'000u);
  EXPECT_EQ(sound::StorageBytes(1.0, 44100, 8), 44'100u);
}

TEST(SoundTest, KeyToFrequency) {
  EXPECT_DOUBLE_EQ(sound::KeyToFrequency(69), 440.0);
  EXPECT_NEAR(sound::KeyToFrequency(60), 261.6256, 1e-3);
  EXPECT_NEAR(sound::KeyToFrequency(81), 880.0, 1e-9);
}

TEST(SoundTest, SynthesisProducesSignal) {
  MidiTrack track = midi::TrackFromPerformance(SmallPerformance());
  sound::PcmBuffer pcm = sound::Synthesize(track, 8000);
  EXPECT_EQ(pcm.sample_rate, 8000);
  EXPECT_GT(pcm.samples.size(), 8000u);  // > 1 s of audio
  // Signal present during the first note...
  int16_t peak = 0;
  for (size_t i = 0; i < 2000; ++i)
    peak = std::max<int16_t>(peak, std::abs(pcm.samples[i]));
  EXPECT_GT(peak, 1000);
  // ...and near-silence in the gap between notes 1 and 2 is NOT
  // expected (decay tail), but the tail end dies out.
  int16_t tail = 0;
  for (size_t i = pcm.samples.size() - 100; i < pcm.samples.size(); ++i)
    tail = std::max<int16_t>(tail, std::abs(pcm.samples[i]));
  EXPECT_LT(tail, peak);
}

TEST(SoundTest, DeltaCodecLosslessRoundTrip) {
  MidiTrack track = midi::TrackFromPerformance(SmallPerformance());
  sound::PcmBuffer pcm = sound::Synthesize(track, 8000);
  sound::CompactionStats stats;
  auto encoded = sound::EncodeDelta(pcm, &stats);
  EXPECT_EQ(stats.raw_bytes, pcm.SizeBytes());
  EXPECT_LT(stats.encoded_bytes, stats.raw_bytes);  // actually compresses
  auto decoded = sound::DecodeDelta(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sample_rate, pcm.sample_rate);
  ASSERT_EQ(decoded->samples.size(), pcm.samples.size());
  EXPECT_EQ(decoded->samples, pcm.samples);  // bit-exact
}

TEST(SoundTest, SilenceCodecCompressesQuietStreams) {
  sound::PcmBuffer pcm;
  pcm.sample_rate = 8000;
  pcm.samples.assign(8000, 0);
  for (int i = 2000; i < 2500; ++i)
    pcm.samples[i] = static_cast<int16_t>(1000 * std::sin(i * 0.1));
  sound::CompactionStats stats;
  auto encoded = sound::EncodeSilence(pcm, 8, &stats);
  EXPECT_LT(stats.encoded_bytes, stats.raw_bytes / 4);
  auto decoded = sound::DecodeSilence(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->samples.size(), pcm.samples.size());
  // Above-threshold samples are exact; sub-threshold samples (e.g. the
  // sine's zero crossings) fold to silence — the codec's documented
  // lossiness.
  for (int i = 2000; i < 2500; ++i) {
    if (std::abs(pcm.samples[i]) > 8) {
      EXPECT_EQ(decoded->samples[i], pcm.samples[i]) << i;
    } else {
      EXPECT_EQ(decoded->samples[i], 0) << i;
    }
  }
  EXPECT_EQ(decoded->samples[100], 0);
}

TEST(SoundTest, QuantizedCodecLossyButBounded) {
  MidiTrack track = midi::TrackFromPerformance(SmallPerformance());
  sound::PcmBuffer pcm = sound::Synthesize(track, 8000);
  sound::CompactionStats stats;
  auto encoded = sound::EncodeQuantized(pcm, 8, &stats);
  EXPECT_LT(stats.encoded_bytes, stats.raw_bytes);
  auto decoded = sound::DecodeQuantized(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->samples.size(), pcm.samples.size());
  // 8-bit quantization: error bounded by one quantization step (256).
  for (size_t i = 0; i < pcm.samples.size(); i += 97) {
    EXPECT_LE(std::abs(pcm.samples[i] - decoded->samples[i]), 256)
        << "sample " << i;
  }
}

TEST(SoundTest, CodecsRejectForeignStreams) {
  sound::PcmBuffer pcm;
  pcm.samples = {1, 2, 3};
  auto delta = sound::EncodeDelta(pcm);
  EXPECT_FALSE(sound::DecodeSilence(delta).ok());
  EXPECT_FALSE(sound::DecodeQuantized(delta).ok());
  EXPECT_FALSE(sound::DecodeDelta({1, 2, 3}).ok());
}

}  // namespace
}  // namespace mdm

// Secondary attribute indexes (§5.2 as physical design): DDL round
// trip, planner probe selection with explain goldens (including the
// footnote 3 wrong-key fallback), index-nested-loop `is` joins,
// maintenance under update/delete, null-key scan fallback, seeded
// ablation-equivalence fuzz, journal replay + snapshot round trip,
// power-cut-sim consistency, meta-schema cataloguing, obs metrics, and
// Local/Remote DDL parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "er/persist.h"
#include "meta/meta_schema.h"
#include "net/connection.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "quel/quel.h"

namespace mdm {
namespace {

using er::AttrIndex;
using er::AttrIndexDef;
using er::EntityId;
using rel::Value;

/// Every index must agree exactly with a full scan: each entity whose
/// attribute compares equal to its own stored value is reachable
/// through IndexLookup, and the tree holds one entry per non-null
/// value (hash collisions make lookups supersets, never subsets).
void ValidateIndexConsistency(const er::Database& db) {
  for (const AttrIndexDef& def : db.AttrIndexDefs()) {
    const AttrIndex* ix = db.FindAttrIndexByName(def.name);
    ASSERT_NE(ix, nullptr) << def.name;
    ASSERT_TRUE(ix->tree.CheckInvariants().ok()) << def.name;
    uint64_t non_null = 0;
    ASSERT_TRUE(db.ForEachEntity(def.entity_type, [&](EntityId id) {
                    auto v = db.GetAttribute(id, def.attr);
                    EXPECT_TRUE(v.ok());
                    if (!v.ok() || v->is_null()) return true;
                    ++non_null;
                    std::vector<EntityId> hits = db.IndexLookup(*ix, *v);
                    EXPECT_NE(std::find(hits.begin(), hits.end(), id),
                              hits.end())
                        << def.name << ": entity " << id
                        << " missing from probe for " << v->ToString();
                    return true;
                  })
                    .ok());
    EXPECT_EQ(ix->tree.size(), non_null) << def.name;
  }
}

std::vector<int64_t> Ints(const quel::ResultSet& rs) {
  std::vector<int64_t> out;
  for (const auto& row : rs.rows)
    out.push_back(row[0].is_null() ? std::numeric_limits<int64_t>::min()
                                   : row[0].AsInt());
  std::sort(out.begin(), out.end());
  return out;
}

// ----------------------------------------------------------------------
// DDL surface.
// ----------------------------------------------------------------------

class IndexDdlTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ddl::ExecuteDdl(R"(
      define entity CHORD (name = integer)
      define entity NOTE (name = integer, chord = CHORD)
    )",
                                &db_)
                    .ok());
  }
  er::Database db_;
};

TEST_F(IndexDdlTest, DefineAndDestroyRoundTrip) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute("define index note_name on NOTE(name)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->columns.size(), 4u);
  EXPECT_EQ(rs->columns[3], "indexes");
  EXPECT_EQ(rs->At(0, 3).AsInt(), 1);
  ASSERT_EQ(db_.AttrIndexDefs().size(), 1u);
  EXPECT_EQ(db_.AttrIndexDefs()[0].name, "note_name");
  // Canonical schema spellings are stored even when the DDL differs in
  // case.
  EXPECT_NE(db_.FindAttrIndex("note", "NAME"), nullptr);
  EXPECT_NE(db_.FindAttrIndexByName("NOTE_NAME"), nullptr);

  auto destroy = conn.Execute("destroy index note_name");
  ASSERT_TRUE(destroy.ok()) << destroy.status().ToString();
  EXPECT_EQ(destroy->At(0, 3).AsInt(), 1);
  EXPECT_TRUE(db_.AttrIndexDefs().empty());
  EXPECT_EQ(db_.FindAttrIndex("NOTE", "name"), nullptr);
}

TEST_F(IndexDdlTest, DdlErrors) {
  Connection conn = Connection::Local(&db_);
  ASSERT_TRUE(conn.Execute("define index i1 on NOTE(name)").ok());
  EXPECT_EQ(conn.Execute("define index i1 on CHORD(name)").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(conn.Execute("define index i2 on GHOST(name)").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(conn.Execute("define index i2 on NOTE(ghost)").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(conn.Execute("destroy index ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(conn.Execute("define index broken on NOTE").status().code(),
            StatusCode::kParseError);
  // Check-only parsing accepts the new productions without a database.
  EXPECT_TRUE(
      ddl::CheckDdlSyntax("define index i9 on NOPE(xyz)\ndestroy index i9")
          .ok());
}

TEST_F(IndexDdlTest, BackfillIndexesExistingEntities) {
  for (int i = 0; i < 10; ++i) {
    auto id = db_.CreateEntity("NOTE");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(db_.SetAttribute(*id, "name", Value::Int(i % 4)).ok());
  }
  ASSERT_TRUE(db_.DefineIndex({"note_name", "NOTE", "name"}).ok());
  const AttrIndex* ix = db_.FindAttrIndexByName("note_name");
  ASSERT_NE(ix, nullptr);
  EXPECT_EQ(ix->tree.size(), 10u);
  EXPECT_GE(db_.attr_index_stats().rebuilds, 1u);
  ValidateIndexConsistency(db_);
}

// ----------------------------------------------------------------------
// Planner + executor: the §5.6 chord database with an index on
// NOTE(name) and an entity-valued NOTE.chord reference for `is` joins.
// ----------------------------------------------------------------------

class IndexPlanTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ddl::ExecuteDdl(R"(
      define entity CHORD (name = integer)
      define entity NOTE (name = integer, chord = CHORD)
      define index note_name on NOTE(name)
      define index note_chord on NOTE(chord)
    )",
                                &db_)
                    .ok());
    for (int c = 1; c <= 2; ++c) {
      auto chord = db_.CreateEntity("CHORD");
      ASSERT_TRUE(chord.ok());
      ASSERT_TRUE(db_.SetAttribute(*chord, "name", Value::Int(c)).ok());
      chords_.push_back(*chord);
    }
    // Chord 1 holds notes 10, 20, 30; chord 2 holds 40, 50.
    AddNote(chords_[0], 10);
    AddNote(chords_[0], 20);
    AddNote(chords_[0], 30);
    AddNote(chords_[1], 40);
    AddNote(chords_[1], 50);
  }

  void AddNote(EntityId chord, int name) {
    auto id = db_.CreateEntity("NOTE");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(db_.SetAttribute(*id, "name", Value::Int(name)).ok());
    ASSERT_TRUE(db_.SetAttribute(*id, "chord", Value::Ref(chord)).ok());
  }

  er::Database db_;
  std::vector<EntityId> chords_;
};

TEST_F(IndexPlanTest, ExplainGoldenIndexSelection) {
  Connection conn = Connection::Local(&db_);
  auto rs = conn.Execute(
      "range of n is NOTE\nexplain retrieve (n.name) where n.name = 30");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->ToString(),
            "plan: retrieve\n"
            "  pushdown: on\n"
            "  ordering index: on\n"
            "  loop 1: n is NOTE (~5 rows) via index note_name(name)\n"
            "    filter: n.name = 30\n"
            "  emit: n.name\n");
  // The probed query answers correctly and touches one row.
  auto exec = conn.Execute(
      "range of n is NOTE\nretrieve (n.name) where n.name = 30");
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(Ints(*exec), (std::vector<int64_t>{30}));
  EXPECT_EQ(conn.local_stats().rows_scanned, 1u);
}

TEST_F(IndexPlanTest, ExplainWrongKeyFallsBackToScan) {
  // Footnote 3: a query on an un-indexed attribute cannot use the
  // index — the plan quietly keeps the scan.
  Connection conn = Connection::Local(&db_);
  ASSERT_TRUE(db_.DestroyIndex("note_name").ok());
  auto rs = conn.Execute(
      "range of n is NOTE\nexplain retrieve (n.name) where n.name = 30");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->ToString(),
            "plan: retrieve\n"
            "  pushdown: on\n"
            "  ordering index: on\n"
            "  loop 1: n is NOTE (~5 rows)\n"
            "    filter: n.name = 30\n"
            "  emit: n.name\n");
  auto exec = conn.Execute(
      "range of n is NOTE\nretrieve (n.name) where n.name = 30");
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(Ints(*exec), (std::vector<int64_t>{30}));
  EXPECT_EQ(conn.local_stats().rows_scanned, 5u);  // full scan
}

TEST_F(IndexPlanTest, IndexNestedLoopJoinViaIs) {
  // §5.6 `is` join over the entity-valued reference: the outer chord
  // loop binds c, the inner note loop probes note_chord with Ref(c).
  Connection conn = Connection::Local(&db_);
  const char* query =
      "range of n is NOTE\nrange of c is CHORD\n"
      "retrieve (n.name) where n.chord is c and c.name = 2";
  auto plan = conn.Execute(std::string("range of n is NOTE\n"
                                       "range of c is CHORD\n"
                                       "explain retrieve (n.name)"
                                       " where n.chord is c and c.name = 2"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->ToString(),
            "plan: retrieve\n"
            "  pushdown: on\n"
            "  ordering index: on\n"
            "  loop 1: c is CHORD (~2 rows)\n"
            "    filter: c.name = 2\n"
            "  loop 2: n is NOTE (~5 rows) via index note_chord(chord)\n"
            "    filter: n.chord is c\n"
            "  emit: n.name\n");
  auto rs = conn.Execute(query);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(Ints(*rs), (std::vector<int64_t>{40, 50}));
  // 2 chords + 2 probed notes, instead of 2 + 2*5 scanned.
  EXPECT_EQ(conn.local_stats().rows_scanned, 4u);
}

TEST_F(IndexPlanTest, AblationDisablesProbesButKeepsAnswers) {
  Connection conn = Connection::Local(&db_);
  const char* query =
      "range of n is NOTE\nretrieve (n.name) where n.name = 20";
  auto indexed = conn.Execute(query);
  ASSERT_TRUE(indexed.ok());
  db_.EnableAttrIndex(false);
  conn.local_session()->ClearParseCache();
  auto explain = conn.Execute(
      "range of n is NOTE\nexplain retrieve (n.name) where n.name = 20");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->ToString().find("via index"), std::string::npos);
  auto ablated = conn.Execute(query);
  ASSERT_TRUE(ablated.ok());
  EXPECT_EQ(Ints(*indexed), Ints(*ablated));
  // Maintenance continues while disabled, so re-enabling needs no
  // rebuild.
  AddNote(chords_[0], 60);
  db_.EnableAttrIndex(true);
  ValidateIndexConsistency(db_);
}

TEST_F(IndexPlanTest, RuntimeNullKeyFallsBackToScan) {
  // A chord with a null name: probing with a null key would miss the
  // null-named note (nulls are never indexed), so the executor must
  // scan — null = null holds under Value::Compare.
  auto chord = db_.CreateEntity("CHORD");
  ASSERT_TRUE(chord.ok());
  auto note = db_.CreateEntity("NOTE");
  ASSERT_TRUE(note.ok());  // name stays null
  Connection conn = Connection::Local(&db_);
  const char* query =
      "range of n is NOTE\nrange of c is CHORD\n"
      "retrieve (k = count(n)) where n.name = c.name and c.name = 1";
  auto rs = conn.Execute(query);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->At(0, 0).AsInt(), 0);  // no note named 1
  const char* null_query =
      "range of n is NOTE\nrange of c is CHORD\n"
      "retrieve (k = count(n)) where n.name = c.name";
  auto with_null = conn.Execute(null_query);
  ASSERT_TRUE(with_null.ok());
  db_.EnableAttrIndex(false);
  conn.local_session()->ClearParseCache();
  auto ablated = conn.Execute(null_query);
  ASSERT_TRUE(ablated.ok());
  // The probe plan and the scan plan agree even with the null binding:
  // the only matching pair is (null-named note, null-named chord),
  // because nulls compare equal — and that note is invisible to the
  // index, so the probe MUST have fallen back to the scan to find it.
  EXPECT_EQ(with_null->At(0, 0).AsInt(), ablated->At(0, 0).AsInt());
  EXPECT_EQ(with_null->At(0, 0).AsInt(), 1);
}

TEST_F(IndexPlanTest, MaintenanceAcrossUpdateAndDelete) {
  const AttrIndex* ix = db_.FindAttrIndexByName("note_name");
  ASSERT_NE(ix, nullptr);
  Connection conn = Connection::Local(&db_);
  ASSERT_TRUE(conn.Execute("range of n is NOTE\n"
                           "replace n (name = 21) where n.name = 20")
                  .ok());
  EXPECT_TRUE(db_.IndexLookup(*ix, Value::Int(20)).empty());
  EXPECT_EQ(db_.IndexLookup(*ix, Value::Int(21)).size(), 1u);
  ASSERT_TRUE(
      conn.Execute("range of n is NOTE\ndelete n where n.name = 21").ok());
  EXPECT_TRUE(db_.IndexLookup(*ix, Value::Int(21)).empty());
  EXPECT_EQ(ix->tree.size(), 4u);
  er::AttrIndexStats stats = db_.attr_index_stats();
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_GT(stats.erases, 0u);
  ValidateIndexConsistency(db_);
}

TEST_F(IndexPlanTest, ObsCountersAndProbeSpan) {
  auto* lookups =
      obs::Registry::Global()->GetCounter("mdm_index_lookups_total");
  auto* inserts =
      obs::Registry::Global()->GetCounter("mdm_index_inserts_total");
  uint64_t lookups_before = lookups->value();
  uint64_t inserts_before = inserts->value();
  Connection conn = Connection::Local(&db_);
  ASSERT_TRUE(
      conn.Execute("range of n is NOTE\nretrieve (n.name) where n.name = 30")
          .ok());
  AddNote(chords_[0], 70);
  EXPECT_GT(lookups->value(), lookups_before);
  EXPECT_GT(inserts->value(), inserts_before);
  // The probe span series exists on the registry after an indexed query.
  std::string prom = obs::Registry::Global()->RenderPrometheusText();
  EXPECT_NE(prom.find("span=\"quel.index_probe\""), std::string::npos);
}

// ----------------------------------------------------------------------
// Ablation-equivalence fuzz (PR 4 pattern): an indexed and an
// index-disabled database receive the same seeded op sequence; every
// query answer must match — the index is an accelerator, not an oracle.
// ----------------------------------------------------------------------

class AttrIndexAblationFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(AttrIndexAblationFuzz, IndexedAndAblatedStayEquivalent) {
  const uint64_t seed = GetParam();
  er::Database indexed;
  er::Database plain;
  for (er::Database* db : {&indexed, &plain}) {
    ASSERT_TRUE(ddl::ExecuteDdl(R"(
      define entity CHORD (name = integer)
      define entity NOTE (name = integer, chord = CHORD)
      define index note_name on NOTE(name)
      define index note_chord on NOTE(chord)
    )",
                                db)
                    .ok());
  }
  plain.EnableAttrIndex(false);

  // Parallel id vectors: slot i is the same logical entity in both.
  std::vector<std::pair<EntityId, EntityId>> chords;
  std::vector<std::pair<EntityId, EntityId>> notes;
  Rng rng(seed);
  auto create = [&](const std::string& type,
                    std::vector<std::pair<EntityId, EntityId>>* out) {
    auto a = indexed.CreateEntity(type);
    auto b = plain.CreateEntity(type);
    ASSERT_TRUE(a.ok() && b.ok());
    out->emplace_back(*a, *b);
  };
  for (int i = 0; i < 3; ++i) create("CHORD", &chords);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        indexed.SetAttribute(chords[i].first, "name", Value::Int(i)).ok());
    ASSERT_TRUE(
        plain.SetAttribute(chords[i].second, "name", Value::Int(i)).ok());
  }

  Connection c_indexed = Connection::Local(&indexed);
  Connection c_plain = Connection::Local(&plain);
  constexpr int kOps = 500;
  for (int op = 0; op < kOps; ++op) {
    SCOPED_TRACE(testing::Message() << "seed " << seed << " op " << op);
    const double dice = rng.NextDouble();
    if (dice < 0.25) {
      create("NOTE", &notes);
    } else if (dice < 0.50 && !notes.empty()) {
      // Set or clear an attribute; small name domain forces duplicate
      // keys and overwrite churn in the tree.
      auto [na, nb] = notes[rng.Uniform(notes.size())];
      if (rng.Bernoulli(0.5)) {
        Value v = rng.Bernoulli(0.15)
                      ? Value()
                      : Value::Int(static_cast<int64_t>(rng.Uniform(6)));
        ASSERT_EQ(indexed.SetAttribute(na, "name", v).ok(),
                  plain.SetAttribute(nb, "name", v).ok());
      } else {
        size_t c = rng.Uniform(chords.size());
        ASSERT_EQ(
            indexed.SetAttribute(na, "chord", Value::Ref(chords[c].first))
                .ok(),
            plain.SetAttribute(nb, "chord", Value::Ref(chords[c].second))
                .ok());
      }
    } else if (dice < 0.58 && notes.size() > 2) {
      size_t slot = rng.Uniform(notes.size());
      Status a = indexed.DeleteEntity(notes[slot].first);
      Status b = plain.DeleteEntity(notes[slot].second);
      ASSERT_EQ(a.code(), b.code());
      notes.erase(notes.begin() + slot);
    } else {
      // The same QUEL query against both: an indexed equality or an
      // `is` index-nested-loop join.
      std::string query;
      if (rng.Bernoulli(0.5)) {
        query = "range of n is NOTE\nretrieve (n.name) where n.name = " +
                std::to_string(rng.Uniform(6));
      } else {
        query =
            "range of n is NOTE\nrange of c is CHORD\n"
            "retrieve (n.name) where n.chord is c and c.name = " +
            std::to_string(rng.Uniform(3));
      }
      auto rs_a = c_indexed.Execute(query);
      auto rs_b = c_plain.Execute(query);
      ASSERT_EQ(rs_a.ok(), rs_b.ok())
          << rs_a.status().ToString() << " vs " << rs_b.status().ToString();
      if (rs_a.ok()) {
        ASSERT_EQ(Ints(*rs_a), Ints(*rs_b));
      }
    }
  }
  // The ablated database never answered through an index; the indexed
  // one did. Both trees stayed consistent (maintenance is always on).
  EXPECT_EQ(plain.attr_index_stats().lookups, 0u);
  EXPECT_GT(indexed.attr_index_stats().lookups, 0u);
  ValidateIndexConsistency(indexed);
  ValidateIndexConsistency(plain);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttrIndexAblationFuzz,
                         testing::Values(11u, 12u, 13u));

// ----------------------------------------------------------------------
// Durability: journal replay, snapshot round trip, power-cut sim.
// ----------------------------------------------------------------------

std::string IndexTestDir() {
  std::string dir =
      std::filesystem::temp_directory_path() / "mdm_index_test";
  std::filesystem::create_directories(dir);
  return dir;
}

std::string IndexDbPath(const char* tag) {
  return IndexTestDir() + "/" +
         testing::UnitTest::GetInstance()->current_test_info()->name() +
         "." + tag + ".mdm";
}

void RemoveDbFiles(const std::string& path) {
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(IndexTestDir(), ec)) {
    const std::string name = entry.path().string();
    if (name.rfind(path, 0) == 0) std::filesystem::remove(entry.path(), ec);
  }
}

Status BuildIndexedScore(er::Database* db, int notes) {
  auto r = ddl::ExecuteDdl(R"(
    define entity CHORD (name = integer)
    define entity NOTE (name = integer, chord = CHORD)
    define index note_name on NOTE(name)
  )",
                           db);
  if (!r.ok()) return r.status();
  MDM_ASSIGN_OR_RETURN(EntityId chord, db->CreateEntity("CHORD"));
  MDM_RETURN_IF_ERROR(db->SetAttribute(chord, "name", Value::Int(1)));
  for (int i = 0; i < notes; ++i) {
    MDM_ASSIGN_OR_RETURN(EntityId id, db->CreateEntity("NOTE"));
    MDM_RETURN_IF_ERROR(db->SetAttribute(id, "name", Value::Int(i)));
    MDM_RETURN_IF_ERROR(db->SetAttribute(id, "chord", Value::Ref(chord)));
  }
  return Status::OK();
}

TEST(IndexDurabilityTest, JournalReplayRebuildsIndexes) {
  std::string path = IndexDbPath("wal");
  RemoveDbFiles(path);
  {
    auto h = er::DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    ASSERT_TRUE(BuildIndexedScore((*h)->db(), 20).ok());
    // Mid-life DDL: a second index over existing rows, then destroy it
    // again — both journaled.
    ASSERT_TRUE((*h)->db()->DefineIndex({"note_chord", "NOTE", "chord"}).ok());
    ASSERT_TRUE((*h)->db()->DestroyIndex("note_chord").ok());
  }
  auto h = er::DurableDatabase::Open(path);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  er::Database* db = (*h)->db();
  ASSERT_EQ(db->AttrIndexDefs().size(), 1u);
  EXPECT_EQ(db->AttrIndexDefs()[0].name, "note_name");
  EXPECT_EQ(db->FindAttrIndexByName("note_chord"), nullptr);
  ValidateIndexConsistency(*db);
  // Post-recovery queries keep probing.
  Connection conn = Connection::Local(db);
  auto rs = conn.Execute(
      "range of n is NOTE\nexplain retrieve (n.name) where n.name = 7");
  ASSERT_TRUE(rs.ok());
  EXPECT_NE(rs->ToString().find("via index note_name"), std::string::npos);
  RemoveDbFiles(path);
}

TEST(IndexDurabilityTest, SnapshotRoundTripPreservesIndexes) {
  er::Database db;
  ASSERT_TRUE(BuildIndexedScore(&db, 15).ok());
  std::string path = IndexDbPath("snap");
  RemoveDbFiles(path);
  ASSERT_TRUE(er::SaveSnapshot(db, path).ok());
  auto loaded = er::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->AttrIndexDefs().size(), 1u);
  EXPECT_EQ(loaded->AttrIndexDefs()[0].attr, "name");
  // Trees are rebuilt on restore, not serialized.
  EXPECT_GE(loaded->attr_index_stats().rebuilds, 1u);
  ValidateIndexConsistency(*loaded);
  RemoveDbFiles(path);
}

TEST(IndexDurabilityTest, PowerCutLeavesIndexesConsistent) {
  // The PR 1 crash contract extended to indexes: cut power at every
  // I/O boundary of an index-heavy workload (define, backfill,
  // checkpoint, update, destroy); after each recovery every surviving
  // index must agree exactly with a full scan.
  FailpointRegistry* reg = FailpointRegistry::Global();
  reg->Reset();
  std::string path = IndexDbPath("cut");

  auto workload = [](er::DurableDatabase* h) -> Status {
    er::Database* db = h->db();
    MDM_RETURN_IF_ERROR(BuildIndexedScore(db, 8));
    MDM_RETURN_IF_ERROR(h->Checkpoint());  // snapshot carries the defs
    MDM_RETURN_IF_ERROR(db->DefineIndex({"note_chord", "NOTE", "chord"}));
    uint64_t i = 0;
    MDM_RETURN_IF_ERROR(db->ForEachEntity("NOTE", [&](EntityId) {
      ++i;
      return i <= 3;  // touch the first few ids
    }));
    MDM_ASSIGN_OR_RETURN(EntityId extra, db->CreateEntity("NOTE"));
    MDM_RETURN_IF_ERROR(db->SetAttribute(extra, "name", Value::Int(99)));
    MDM_RETURN_IF_ERROR(db->DestroyIndex("note_chord"));
    return Status::OK();
  };

  // Dry run counts the I/O boundaries.
  uint64_t total_io = 0;
  {
    RemoveDbFiles(path);
    reg->ArmPowerCutAtIo(std::numeric_limits<uint64_t>::max());
    auto h = er::DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    ASSERT_TRUE(workload((*h).get()).ok());
    total_io = reg->io_count();
    reg->Reset();
  }
  ASSERT_GE(total_io, 20u);

  for (uint64_t cut = 1; cut <= total_io; ++cut) {
    RemoveDbFiles(path);
    reg->ArmPowerCutAtIo(cut, /*keep=*/cut % 2 == 0 ? 0.5 : 0.0);
    {
      auto h = er::DurableDatabase::Open(path);
      if (h.ok()) (void)workload((*h).get());
    }
    reg->Reset();
    auto h = er::DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok()) << "cut " << cut << ": " << h.status().ToString();
    ValidateIndexConsistency(*(*h)->db());
  }
  RemoveDbFiles(path);
}

// ----------------------------------------------------------------------
// Meta-schema: the index catalog is data (Fig 9 discipline).
// ----------------------------------------------------------------------

TEST(IndexMetaTest, IndexesCataloguedAndUncataloguedAsData) {
  er::Database db;
  ASSERT_TRUE(meta::InstallMetaSchema(&db).ok());
  ASSERT_TRUE(ddl::ExecuteDdl(R"(
    define entity NOTE (name = integer)
    define index note_name on NOTE(name)
  )",
                              &db)
                  .ok());
  ASSERT_TRUE(meta::SyncSchemaToMeta(&db).ok());
  Connection conn = Connection::Local(&db);
  const char* query = R"(
    range of i is INDEX_DEF
    range of e is ENTITY
    retrieve (i.index_attribute)
      where i.index_entity is e and e.entity_name = "NOTE"
  )";
  auto rs = conn.Execute(query);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsString(), "name");
  // Destroy + re-sync removes the stale catalog row.
  ASSERT_TRUE(db.DestroyIndex("note_name").ok());
  ASSERT_TRUE(meta::SyncSchemaToMeta(&db).ok());
  auto gone = conn.Execute(query);
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->rows.empty());
}

// ----------------------------------------------------------------------
// Local/Remote parity: the index DDL is part of the one public surface.
// ----------------------------------------------------------------------

TEST(IndexNetTest, IndexDdlWorksIdenticallyOverLocalAndRemote) {
  er::Database db;
  ASSERT_TRUE(ddl::ExecuteDdl(R"(
    define entity NOTE (name = integer)
  )",
                              &db)
                  .ok());
  for (int i = 0; i < 50; ++i) {
    auto id = db.CreateEntity("NOTE");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(db.SetAttribute(*id, "name", Value::Int(i)).ok());
  }
  net::ServerOptions opts;
  opts.port = 0;
  net::Server server(&db, opts);
  ASSERT_TRUE(server.Start().ok());
  auto remote = Connection::Remote("127.0.0.1", server.port());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  // Define over the wire; observe locally and via a local Connection.
  auto rs = remote->Execute("define index note_name on NOTE(name)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->At(0, 3).AsInt(), 1);
  EXPECT_NE(db.FindAttrIndexByName("note_name"), nullptr);

  // The remote planner probes it, and explain crosses the wire intact.
  auto plan = remote->Execute(
      "range of n is NOTE\nexplain retrieve (n.name) where n.name = 17");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->ToString().find("via index note_name(name)"),
            std::string::npos);
  auto got = remote->Execute(
      "range of n is NOTE\nretrieve (n.name) where n.name = 17");
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->rows.size(), 1u);

  // Error codes arrive code-intact: duplicate definition.
  EXPECT_EQ(
      remote->Execute("define index note_name on NOTE(name)").status().code(),
      StatusCode::kAlreadyExists);

  // Destroy over the wire too; a local Connection sees the same surface.
  ASSERT_TRUE(remote->Execute("destroy index note_name").ok());
  EXPECT_EQ(db.FindAttrIndexByName("note_name"), nullptr);
  Connection local = Connection::Local(&db);
  ASSERT_TRUE(local.Execute("define index note_name on NOTE(name)").ok());
  EXPECT_NE(db.FindAttrIndexByName("note_name"), nullptr);
  server.Stop();
}

}  // namespace
}  // namespace mdm

#include <gtest/gtest.h>

#include "cmn/temporal.h"
#include "midi/import.h"
#include "mtime/tempo_map.h"
#include "net/connection.h"
#include "quel/quel.h"

namespace mdm::midi {
namespace {

MidiTrack MakeTrack(
    const std::vector<std::tuple<double, double, int, int>>& notes) {
  MidiTrack track;
  for (const auto& [start, end, key, channel] : notes) {
    MidiEvent on;
    on.kind = MidiEvent::Kind::kNoteOn;
    on.seconds = start;
    on.key = static_cast<uint8_t>(key);
    on.channel = static_cast<uint8_t>(channel);
    MidiEvent off = on;
    off.kind = MidiEvent::Kind::kNoteOff;
    off.seconds = end;
    track.events.push_back(on);
    track.events.push_back(off);
  }
  track.Sort();
  return track;
}

TEST(MidiImportTest, MonophonicStreamBecomesScore) {
  // Four quarters at 120 bpm: 0.5 s each.
  MidiTrack track = MakeTrack({{0.0, 0.5, 60, 0},
                               {0.5, 1.0, 62, 0},
                               {1.0, 1.5, 64, 0},
                               {1.5, 2.0, 65, 0}});
  er::Database db;
  mtime::TempoMap tempo;
  auto import = ImportMidiTrack(&db, track, tempo, "transcribed");
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_EQ(import->notes, 4);
  EXPECT_EQ(import->measures, 1);
  EXPECT_EQ(import->voices.size(), 1u);
  // Round trip through performance extraction reproduces the stream.
  auto notes = cmn::ExtractPerformance(&db, import->score, tempo);
  ASSERT_TRUE(notes.ok());
  ASSERT_EQ(notes->size(), 4u);
  EXPECT_EQ((*notes)[0].midi_key, 60);
  EXPECT_EQ((*notes)[3].midi_key, 65);
  EXPECT_EQ((*notes)[3].start_beats, Rational(3));
  EXPECT_EQ((*notes)[3].duration_beats, Rational(1));
}

TEST(MidiImportTest, QuantizationSnapsLooseTiming) {
  // Slightly humanized timing snaps to the sixteenth grid.
  MidiTrack track = MakeTrack({{0.02, 0.49, 60, 0},
                               {0.53, 0.97, 62, 0}});
  er::Database db;
  mtime::TempoMap tempo;
  auto import = ImportMidiTrack(&db, track, tempo, "humanized");
  ASSERT_TRUE(import.ok());
  auto notes = cmn::ExtractPerformance(&db, import->score, tempo);
  ASSERT_EQ(notes->size(), 2u);
  EXPECT_EQ((*notes)[0].start_beats, Rational(0));
  EXPECT_EQ((*notes)[0].duration_beats, Rational(1));
  EXPECT_EQ((*notes)[1].start_beats, Rational(1));
}

TEST(MidiImportTest, ChannelsBecomeVoicesAndChordsMerge) {
  // Channel 0 plays a C-major triad (three simultaneous notes); channel
  // 1 plays a bass note.
  MidiTrack track = MakeTrack({{0.0, 1.0, 60, 0},
                               {0.0, 1.0, 64, 0},
                               {0.0, 1.0, 67, 0},
                               {0.0, 2.0, 36, 1}});
  er::Database db;
  mtime::TempoMap tempo;
  auto import = ImportMidiTrack(&db, track, tempo, "two channels");
  ASSERT_TRUE(import.ok());
  EXPECT_EQ(import->voices.size(), 2u);
  EXPECT_EQ(import->notes, 4);
  // The triad merged into ONE chord.
  EXPECT_EQ(*db.CountEntities("CHORD"), 2u);
  mdm::Connection session = mdm::Connection::Local(&db);
  auto rs = session.Execute(R"(
    range of n is NOTE
    range of c is CHORD
    retrieve (k = count(n)) where n under c in note_in_chord
  )");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 4);
}

TEST(MidiImportTest, MultiMeasureAndMeterOption) {
  // Six quarters in 3/4 = two measures.
  std::vector<std::tuple<double, double, int, int>> spec;
  for (int i = 0; i < 6; ++i)
    spec.emplace_back(i * 0.5, i * 0.5 + 0.5, 60 + i, 0);
  MidiTrack track = MakeTrack(spec);
  er::Database db;
  mtime::TempoMap tempo;
  ImportOptions options;
  options.meter_numerator = 3;
  auto import = ImportMidiTrack(&db, track, tempo, "waltz", options);
  ASSERT_TRUE(import.ok());
  EXPECT_EQ(import->measures, 2);
  auto table = cmn::BuildMeasureTable(db, import->score);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)[0].length, Rational(3));
}

TEST(MidiImportTest, StrayAndUnterminatedNotesHandled) {
  MidiTrack track;
  MidiEvent stray_off;
  stray_off.kind = MidiEvent::Kind::kNoteOff;
  stray_off.seconds = 0.1;
  stray_off.key = 99;
  MidiEvent dangling_on;
  dangling_on.kind = MidiEvent::Kind::kNoteOn;
  dangling_on.seconds = 0.0;
  dangling_on.key = 60;
  track.events = {stray_off, dangling_on};
  er::Database db;
  mtime::TempoMap tempo;
  auto import = ImportMidiTrack(&db, track, tempo, "edge");
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_EQ(import->notes, 1);  // the dangling note-on, quantum-length
}

TEST(MidiImportTest, BadQuantumRejected) {
  er::Database db;
  mtime::TempoMap tempo;
  ImportOptions options;
  options.quantum = Rational(0);
  EXPECT_EQ(ImportMidiTrack(&db, MidiTrack{}, tempo, "x", options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// QUEL sort by, exercised on an imported stream.
TEST(QuelSortByTest, SortsRows) {
  MidiTrack track = MakeTrack({{0.0, 0.5, 67, 0},
                               {0.5, 1.0, 60, 0},
                               {1.0, 1.5, 64, 0}});
  er::Database db;
  mtime::TempoMap tempo;
  auto import = ImportMidiTrack(&db, track, tempo, "sortable");
  ASSERT_TRUE(import.ok());
  mdm::Connection session = mdm::Connection::Local(&db);
  auto rs = session.Execute(
      "range of n is NOTE retrieve (n.midi_key) sort by n.midi_key");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 3u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 60);
  EXPECT_EQ(rs->rows[2][0].AsInt(), 67);
  rs = session.Execute(
      "range of n is NOTE retrieve (k = n.midi_key) sort by k desc");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 67);
  EXPECT_EQ(rs->rows[2][0].AsInt(), 60);
  // Unknown sort column errors.
  EXPECT_EQ(session
                .Execute("range of n is NOTE retrieve (n.midi_key) "
                         "sort by ghost")
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mdm::midi

#include <gtest/gtest.h>

#include "cmn/schema.h"
#include "cmn/temporal.h"
#include "darms/darms.h"
#include "er/database.h"

namespace mdm::darms {
namespace {

// The fig 4 fragment, transliterated into our DARMS dialect ('!' for the
// paper's leading quote, which OCR renders inconsistently).
constexpr char kFig4[] =
    "I4 !G !K2# 00@\xC2\xA2tenor$ R2W / (7,@\xC2\xA2glo-$ 47) / "
    "(8 (9 8 7 8)) / 9E 9,@ri-$ 8,@a$ / (7,@in$ 6) 7,@ex-$ / "
    "(4D,@cel-$ (8 7 8 6)) / (4D 31) 4,@sis$ / 8Q,@\xC2\xA2" "de-$ E,@o$ //";

TEST(DarmsParseTest, DurationsAndCarrying) {
  auto items = ParseDarms("1W 2 3H 4 5Q 6E 7S 8T");
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  ASSERT_EQ(items->size(), 8u);
  // 2 carries W from 1; 4 carries H from 3.
  EXPECT_EQ((*items)[0].duration, Rational(4));
  EXPECT_EQ((*items)[1].duration, Rational(4));
  EXPECT_EQ((*items)[2].duration, Rational(2));
  EXPECT_EQ((*items)[3].duration, Rational(2));
  EXPECT_EQ((*items)[4].duration, Rational(1));
  EXPECT_EQ((*items)[5].duration, Rational(1, 2));
  EXPECT_EQ((*items)[6].duration, Rational(1, 4));
  EXPECT_EQ((*items)[7].duration, Rational(1, 8));
}

TEST(DarmsParseTest, SpaceCodesShortAndFull) {
  auto items = ParseDarms("1Q 21 29 9");
  ASSERT_TRUE(items.ok());
  EXPECT_EQ((*items)[0].space_code, 1);
  EXPECT_EQ((*items)[1].space_code, 1);  // 21 = full form of 1
  EXPECT_EQ((*items)[2].space_code, 9);
  EXPECT_EQ((*items)[3].space_code, 9);
}

TEST(DarmsParseTest, AccidentalsStemsDots) {
  auto items = ParseDarms("5#Q 6-E 7NQ 4QD 3Q. 2QU.");
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  EXPECT_EQ((*items)[0].accidental, cmn::Accidental::kSharp);
  EXPECT_EQ((*items)[1].accidental, cmn::Accidental::kFlat);
  EXPECT_EQ((*items)[2].accidental, cmn::Accidental::kNatural);
  EXPECT_TRUE((*items)[3].stem_down);
  EXPECT_TRUE((*items)[3].stem_explicit);
  EXPECT_TRUE((*items)[4].dotted);
  EXPECT_EQ((*items)[4].duration, Rational(3, 2));
  EXPECT_FALSE((*items)[5].stem_down);
  EXPECT_EQ((*items)[5].duration, Rational(3, 2));
}

TEST(DarmsParseTest, RestsClefsKeysMeters) {
  auto items = ParseDarms("!G !K2- !M3:4 R2W RQ");
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  EXPECT_EQ((*items)[0].kind, DarmsItem::Kind::kClef);
  EXPECT_EQ((*items)[0].clef, 'G');
  EXPECT_EQ((*items)[1].number, -2);  // two flats
  EXPECT_EQ((*items)[2].meter_num, 3);
  // R2W expands to two whole rests.
  EXPECT_EQ((*items)[3].kind, DarmsItem::Kind::kRest);
  EXPECT_EQ((*items)[3].duration, Rational(4));
  EXPECT_EQ((*items)[4].kind, DarmsItem::Kind::kRest);
  EXPECT_EQ((*items)[5].kind, DarmsItem::Kind::kRest);
  EXPECT_EQ((*items)[5].duration, Rational(1));
}

TEST(DarmsParseTest, LiteralsAndCapitalization) {
  auto items = ParseDarms("00@\xC2\xA2tenor$ 5Q,@glo-$");
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  EXPECT_EQ((*items)[0].kind, DarmsItem::Kind::kAnnotation);
  EXPECT_EQ((*items)[0].text, "Tenor");  // ¢ capitalized the t
  EXPECT_EQ((*items)[1].text, "glo-");
}

TEST(DarmsParseTest, Errors) {
  EXPECT_EQ(ParseDarms("@unterminated").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseDarms("!K2").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseDarms("!Z").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseDarms("&").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseDarms("!M4").status().code(), StatusCode::kParseError);
}

TEST(DarmsCanonTest, CanonicalFormIsExplicitAndStable) {
  auto canon = Canonicalize("1W 2 3 / 4Q 5");
  ASSERT_TRUE(canon.ok());
  // Every note gets an explicit duration and a 2-digit code.
  EXPECT_EQ(*canon, "21W 22W 23W / 24Q 25Q");
  // Canonicalizing is idempotent.
  auto again = Canonicalize(*canon);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *canon);
}

TEST(DarmsCanonTest, UserEncodingElidesRepeatedDurations) {
  auto items = ParseDarms("21W 22W 23Q 24Q");
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(EncodeUser(*items), "1W 2 3Q 4");
}

TEST(DarmsCanonTest, Fig4FragmentRoundTrips) {
  auto items = ParseDarms(kFig4);
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  // Canonical form parses back to the same item sequence.
  std::string canon = EncodeCanonical(*items);
  auto reparsed = ParseDarms(canon);
  ASSERT_TRUE(reparsed.ok()) << canon;
  ASSERT_EQ(reparsed->size(), items->size());
  for (size_t i = 0; i < items->size(); ++i) {
    EXPECT_EQ(static_cast<int>((*reparsed)[i].kind),
              static_cast<int>((*items)[i].kind))
        << "item " << i;
    EXPECT_EQ((*reparsed)[i].duration, (*items)[i].duration) << "item " << i;
    EXPECT_EQ((*reparsed)[i].space_code, (*items)[i].space_code)
        << "item " << i;
    EXPECT_EQ((*reparsed)[i].text, (*items)[i].text) << "item " << i;
  }
}

TEST(DarmsImportTest, BuildsCmnScore) {
  er::Database db;
  auto import = ImportDarms(&db, kFig4, "Gloria fragment");
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_EQ(import->measures, 8);
  EXPECT_GT(import->notes, 15);
  EXPECT_EQ(import->rests, 2);
  // The key signature (2 sharps: D major) made F and C sharp: the
  // imported notes around degree 7/8 (D/E) are unaffected, but the
  // database must hold KEY_SIGNATURE and CLEF entities on the staff.
  EXPECT_EQ(*db.CountEntities("KEY_SIGNATURE"), 1u);
  EXPECT_EQ(*db.CountEntities("CLEF"), 1u);
  // Syllables attached through the relationship.
  auto syllables = db.CountEntities("SYLLABLE");
  ASSERT_TRUE(syllables.ok());
  EXPECT_GT(*syllables, 5u);
  EXPECT_EQ(*db.CountRelationships("SYLLABLE_OF_NOTE"), *syllables);
  // Beam groups became GROUP entities (nested ones included).
  auto groups = db.CountEntities("GROUP");
  ASSERT_TRUE(groups.ok());
  EXPECT_GE(*groups, 6u);
}

TEST(DarmsImportTest, KeySignatureAffectsPerformancePitch) {
  er::Database db;
  // !K1# = G major: degree 2 (bottom space, F4) performs as F#4 = 66.
  auto import = ImportDarms(&db, "!G !K1# 2Q //", "t");
  ASSERT_TRUE(import.ok());
  int midi = -1;
  ASSERT_TRUE(db.ForEachEntity("NOTE", [&](er::EntityId note) {
                  auto v = db.GetAttribute(note, "midi_key");
                  if (v.ok() && !v->is_null())
                    midi = static_cast<int>(v->AsInt());
                  return true;
                })
                  .ok());
  EXPECT_EQ(midi, 66);
}

TEST(DarmsImportTest, AccidentalsResetAtBarlines) {
  er::Database db;
  // Sharp on F in measure 1 carries within the measure, resets after /.
  auto import = ImportDarms(&db, "!G 2#Q 2Q / 2Q //", "t");
  ASSERT_TRUE(import.ok());
  std::vector<int> keys;
  ASSERT_TRUE(db.ForEachEntity("NOTE", [&](er::EntityId note) {
                  auto v = db.GetAttribute(note, "midi_key");
                  keys.push_back(static_cast<int>(v->AsInt()));
                  return true;
                })
                  .ok());
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], 66);  // F#4 (explicit)
  EXPECT_EQ(keys[1], 66);  // carried within the measure
  EXPECT_EQ(keys[2], 65);  // F natural after the barline
}

TEST(DarmsImportTest, UnbalancedBeamsRejected) {
  er::Database db;
  EXPECT_EQ(ImportDarms(&db, "(5Q 6Q //", "t").status().code(),
            StatusCode::kParseError);
  er::Database db2;
  EXPECT_EQ(ImportDarms(&db2, "5Q 6Q) //", "t").status().code(),
            StatusCode::kParseError);
}

TEST(DarmsExportTest, ImportExportReimportPreservesNotes) {
  er::Database db;
  const char* source = "!G !K2# 5Q 6E 7E / 8H. 9S 8S 7E //";
  auto import = ImportDarms(&db, source, "t");
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  auto exported = ExportDarms(&db, import->score);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();

  er::Database db2;
  auto reimport = ImportDarms(&db2, *exported, "t2");
  ASSERT_TRUE(reimport.ok()) << *exported;
  EXPECT_EQ(reimport->notes, import->notes);
  EXPECT_EQ(reimport->measures, import->measures);
  // Degrees survive the round trip in order.
  auto degrees = [](er::Database& d) {
    std::vector<int64_t> out;
    EXPECT_TRUE(d.ForEachEntity("NOTE", [&](er::EntityId n) {
                    auto v = d.GetAttribute(n, "degree");
                    out.push_back(v->AsInt());
                    return true;
                  })
                    .ok());
    return out;
  };
  EXPECT_EQ(degrees(db), degrees(db2));
}

// Regressions from fuzzing the parser with corpus-generator mutations:
// every malformed input must come back as a typed ParseError — no
// crash, no signed-overflow UB, no allocation proportional to a bogus
// repeat count.
TEST(DarmsFuzzRegressionTest, HugeDigitRunIsParseError) {
  auto items = ParseDarms("99999999999999999999Q");
  ASSERT_FALSE(items.ok());
  EXPECT_EQ(items.status().code(), StatusCode::kParseError);
  EXPECT_NE(items.status().message().find("out of range"),
            std::string::npos);
}

TEST(DarmsFuzzRegressionTest, RestCountIsBounded) {
  EXPECT_FALSE(ParseDarms("R99999W").ok());
  EXPECT_FALSE(ParseDarms("R99999999999999999999W").ok());
  auto ok = ParseDarms("R4W");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(DarmsFuzzRegressionTest, MeterBoundsEnforced) {
  EXPECT_FALSE(ParseDarms("!M4:0").ok());
  EXPECT_FALSE(ParseDarms("!M0:4").ok());
  EXPECT_FALSE(ParseDarms("!M99:4").ok());
  EXPECT_FALSE(ParseDarms("!M4:99999999999999999999").ok());
  EXPECT_TRUE(ParseDarms("!M64:64").ok());
}

TEST(DarmsFuzzRegressionTest, KeySignatureBoundsEnforced) {
  EXPECT_FALSE(ParseDarms("!K8#").ok());
  EXPECT_FALSE(ParseDarms("!K99-").ok());
  EXPECT_FALSE(ParseDarms("!K99999999999999999999#").ok());
  auto ok = ParseDarms("!K7#");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)[0].number, 7);
}

TEST(DarmsFuzzRegressionTest, ImporterSurvivesMalformedInput) {
  // The importer path (parser + schema writes) returns typed errors for
  // the same corrupted inputs instead of crashing mid-import.
  for (const char* bad :
       {"99999999999999999999Q", "R99999W", "!M4:0", "!K9#", "(((((", "@"}) {
    er::Database db;
    auto import = ImportDarms(&db, bad, "bad");
    EXPECT_FALSE(import.ok()) << bad;
    EXPECT_FALSE(import.status().message().empty());
  }
}

}  // namespace
}  // namespace mdm::darms

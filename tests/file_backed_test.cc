// File-backed storage integration: tables and catalogs over a real
// database file survive process "restarts" (manager re-opens), and the
// buffer pool keeps working under tiny memory budgets.
#include <gtest/gtest.h>

#include <cstdio>

#include "rel/table.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace mdm::rel {
namespace {

using storage::BufferPool;
using storage::FileDiskManager;

std::string TempDbPath(const char* name) {
  std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(FileBackedTest, TablesSurviveReopen) {
  std::string path = TempDbPath("file_backed.db");
  std::vector<storage::Rid> rids;
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    BufferPool pool(dm->get(), 32);
    Catalog catalog(&pool);
    auto table = catalog.CreateTable(
        "entries", RelSchema({{"id", ValueType::kInt, ""},
                              {"title", ValueType::kString, ""}}));
    ASSERT_TRUE(table.ok());
    for (int i = 0; i < 300; ++i) {
      auto rid = (*table)->Insert(
          {Value::Int(i), Value::String("title " + std::to_string(i))});
      ASSERT_TRUE(rid.ok());
      rids.push_back(*rid);
    }
    ASSERT_TRUE(catalog.Save().ok());
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    BufferPool pool(dm->get(), 8);  // smaller pool: force eviction
    Catalog catalog(&pool);
    ASSERT_TRUE(catalog.Load().ok());
    auto table = catalog.GetTable("entries");
    ASSERT_TRUE(table.ok());
    auto count = (*table)->Count();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 300u);
    auto tuple = (*table)->Get(rids[150]);
    ASSERT_TRUE(tuple.ok());
    EXPECT_EQ((*tuple)[0].AsInt(), 150);
    EXPECT_EQ((*tuple)[1].AsString(), "title 150");
    // Rebuild an index on the reopened table and use it.
    ASSERT_TRUE((*table)->CreateIndex("id").ok());
    int hits = 0;
    ASSERT_TRUE((*table)
                    ->IndexScan("id", 100, 110,
                                [&](const storage::Rid&, const Tuple&) {
                                  ++hits;
                                  return true;
                                })
                    .ok());
    EXPECT_EQ(hits, 11);
  }
  std::remove(path.c_str());
}

TEST(FileBackedTest, PartialPageFileIsCorruption) {
  std::string path = TempDbPath("partial.db");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("not a page", 1, 10, f);
  std::fclose(f);
  auto dm = FileDiskManager::Open(path);
  EXPECT_FALSE(dm.ok());
  EXPECT_EQ(dm.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(FileBackedTest, TinyPoolHeavyTraffic) {
  std::string path = TempDbPath("tiny_pool.db");
  auto dm = FileDiskManager::Open(path);
  ASSERT_TRUE(dm.ok());
  BufferPool pool(dm->get(), 3);
  Catalog catalog(&pool);
  auto table = catalog.CreateTable(
      "stress", RelSchema({{"k", ValueType::kInt, ""},
                           {"pad", ValueType::kString, ""}}));
  ASSERT_TRUE(table.ok());
  std::vector<storage::Rid> rids;
  std::string padding(200, 'x');  // ~20 records/page -> ~100 pages
  for (int i = 0; i < 2000; ++i) {
    auto rid = (*table)->Insert({Value::Int(i), Value::String(padding)});
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_GT(pool.stats().evictions, 100u);
  // Random-access reads under heavy eviction still return right data.
  for (int i = 0; i < 2000; i += 97) {
    auto tuple = (*table)->Get(rids[i]);
    ASSERT_TRUE(tuple.ok());
    EXPECT_EQ((*tuple)[0].AsInt(), i);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdm::rel

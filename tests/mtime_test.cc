#include <gtest/gtest.h>

#include <cmath>

#include "mtime/meter.h"
#include "mtime/tempo_map.h"

namespace mdm::mtime {
namespace {

TEST(TempoMapTest, EmptyMapIs120Bpm) {
  TempoMap map;
  EXPECT_DOUBLE_EQ(map.ToSeconds(Rational(4)), 2.0);  // 4 beats @ 120
  EXPECT_EQ(map.ToBeats(2.0), Rational(4));
  EXPECT_DOUBLE_EQ(map.TempoAt(Rational(10)), 120.0);
}

TEST(TempoMapTest, ConstantTempoSegments) {
  TempoMap map;
  ASSERT_TRUE(map.SetTempo(Rational(0), 60).ok());
  ASSERT_TRUE(map.SetTempo(Rational(4), 120).ok());
  // 4 beats at 60 bpm = 4 s, then 4 beats at 120 = 2 s.
  EXPECT_DOUBLE_EQ(map.ToSeconds(Rational(4)), 4.0);
  EXPECT_DOUBLE_EQ(map.ToSeconds(Rational(8)), 6.0);
  EXPECT_DOUBLE_EQ(map.TempoAt(Rational(2)), 60.0);
  EXPECT_DOUBLE_EQ(map.TempoAt(Rational(5)), 120.0);
}

TEST(TempoMapTest, InverseMappingRoundTrips) {
  TempoMap map;
  ASSERT_TRUE(map.SetTempo(Rational(0), 90).ok());
  ASSERT_TRUE(map.Accelerando(Rational(8), 90).ok());
  ASSERT_TRUE(map.SetTempo(Rational(16), 180).ok());
  ASSERT_TRUE(map.Ritardando(Rational(24), 180).ok());
  ASSERT_TRUE(map.SetTempo(Rational(32), 60).ok());
  for (int i = 0; i <= 40; ++i) {
    Rational beat(i, 1);
    double t = map.ToSeconds(beat);
    Rational back = map.ToBeats(t, 3840);
    EXPECT_NEAR(back.ToDouble(), beat.ToDouble(), 1e-3)
        << "beat " << i << " t=" << t;
  }
}

TEST(TempoMapTest, AccelerandoShortensTime) {
  // 8 beats ramping 60 -> 120 must take less time than 8 beats at 60
  // and more than 8 beats at 120.
  TempoMap ramp;
  ASSERT_TRUE(ramp.Accelerando(Rational(0), 60).ok());
  ASSERT_TRUE(ramp.SetTempo(Rational(8), 120).ok());
  double t = ramp.ToSeconds(Rational(8));
  EXPECT_LT(t, 8.0);   // slower bound: 8 beats @60 = 8 s
  EXPECT_GT(t, 4.0);   // faster bound: 8 beats @120 = 4 s
  // Analytic value: 60*8/(120-60) * ln(120/60) = 8 ln 2 ≈ 5.545.
  EXPECT_NEAR(t, 8.0 * std::log(2.0), 1e-9);
  // Instantaneous tempo mid-ramp.
  EXPECT_NEAR(ramp.TempoAt(Rational(4)), 90.0, 1e-9);
}

TEST(TempoMapTest, RitardandoMonotonicity) {
  TempoMap map;
  ASSERT_TRUE(map.Ritardando(Rational(0), 120).ok());
  ASSERT_TRUE(map.SetTempo(Rational(8), 40).ok());
  double prev = -1;
  for (int i = 0; i <= 16; ++i) {
    double t = map.ToSeconds(Rational(i, 1));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(TempoMapTest, DirectivesValidated) {
  TempoMap map;
  EXPECT_EQ(map.SetTempo(Rational(0), 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(map.SetTempo(Rational(0), -10).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(map.SetTempo(Rational(-1), 100).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(map.SetTempo(Rational(4), 100).ok());
  EXPECT_EQ(map.SetTempo(Rational(2), 90).code(),
            StatusCode::kFailedPrecondition);
  // Same start replaces.
  ASSERT_TRUE(map.SetTempo(Rational(4), 110).ok());
  EXPECT_DOUBLE_EQ(map.TempoAt(Rational(5)), 110.0);
}

TEST(TempoMapTest, ImplicitDefaultBeforeFirstDirective) {
  TempoMap map;
  ASSERT_TRUE(map.SetTempo(Rational(4), 60).ok());
  // Beats 0..4 at the 120 default (2 s), beats 4..8 at 60 (4 s).
  EXPECT_DOUBLE_EQ(map.ToSeconds(Rational(4)), 2.0);
  EXPECT_DOUBLE_EQ(map.ToSeconds(Rational(8)), 6.0);
  EXPECT_EQ(map.ToBeats(6.0), Rational(8));
}

TEST(TempoMapTest, ToStringListsDirectives) {
  TempoMap map;
  ASSERT_TRUE(map.SetTempo(Rational(0), 96).ok());
  ASSERT_TRUE(map.Ritardando(Rational(8), 96).ok());
  std::string s = map.ToString();
  EXPECT_NE(s.find("96.00"), std::string::npos);
  EXPECT_NE(s.find("ritardando"), std::string::npos);
}

TEST(MeterTest, BeatsPerMeasure) {
  EXPECT_EQ((TimeSignature{4, 4}).BeatsPerMeasure(), Rational(4));
  EXPECT_EQ((TimeSignature{3, 4}).BeatsPerMeasure(), Rational(3));
  EXPECT_EQ((TimeSignature{6, 8}).BeatsPerMeasure(), Rational(3));
  EXPECT_EQ((TimeSignature{2, 2}).BeatsPerMeasure(), Rational(4));
  EXPECT_EQ((TimeSignature{5, 8}).BeatsPerMeasure(), Rational(5, 2));
}

TEST(MeterTest, DefaultFourFour) {
  MeterMap meter;
  EXPECT_EQ(meter.MeasureStart(0), Rational(0));
  EXPECT_EQ(meter.MeasureStart(3), Rational(12));
  auto [m, beat] = meter.Locate(Rational(13, 2));  // 6.5 beats
  EXPECT_EQ(m, 1);
  EXPECT_EQ(beat, Rational(5, 2));
}

TEST(MeterTest, SignatureChanges) {
  MeterMap meter;
  ASSERT_TRUE(meter.SetSignature(0, {3, 4}).ok());
  ASSERT_TRUE(meter.SetSignature(2, {4, 4}).ok());
  // Measures: 0 -> 0, 1 -> 3, 2 -> 6, 3 -> 10.
  EXPECT_EQ(meter.MeasureStart(1), Rational(3));
  EXPECT_EQ(meter.MeasureStart(2), Rational(6));
  EXPECT_EQ(meter.MeasureStart(3), Rational(10));
  EXPECT_EQ(meter.SignatureAt(1).numerator, 3);
  EXPECT_EQ(meter.SignatureAt(2).numerator, 4);
  auto pos = meter.Position(2, Rational(7, 2));
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, Rational(19, 2));
  auto [m, beat] = meter.Locate(Rational(19, 2));
  EXPECT_EQ(m, 2);
  EXPECT_EQ(beat, Rational(7, 2));
}

TEST(MeterTest, PositionBoundsChecked) {
  MeterMap meter;
  ASSERT_TRUE(meter.SetSignature(0, {3, 4}).ok());
  EXPECT_EQ(meter.Position(0, Rational(3)).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(meter.Position(-1, Rational(0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(meter.Position(0, Rational(-1)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(meter.Position(0, Rational(11, 4)).ok());
}

TEST(MeterTest, OrderEnforcedAndReplacement) {
  MeterMap meter;
  ASSERT_TRUE(meter.SetSignature(4, {3, 4}).ok());
  EXPECT_EQ(meter.SetSignature(2, {2, 4}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(meter.SetSignature(4, {6, 8}).ok());  // replace
  EXPECT_EQ(meter.SignatureAt(4).denominator, 8);
}

}  // namespace
}  // namespace mdm::mtime

#include <gtest/gtest.h>

#include "graphics/postscript.h"

namespace mdm::graphics {
namespace {

TEST(PostScriptTest, StrokeSimpleLine) {
  PostScriptInterp ps;
  ASSERT_TRUE(ps.Run("newpath 0 0 moveto 10 20 lineto stroke").ok());
  Rendering r = ps.Take();
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_FALSE(r.paths[0].filled);
  EXPECT_EQ(r.paths[0].d, "M 0.00 0.00 L 10.00 20.00");
  EXPECT_DOUBLE_EQ(r.bbox.Width(), 10.0);
  EXPECT_DOUBLE_EQ(r.bbox.Height(), 20.0);
}

TEST(PostScriptTest, ArithmeticAndStackOps) {
  PostScriptInterp ps;
  // (3 + 4) * 2 - 5 = 9; exch/dup/pop exercise the stack.
  ASSERT_TRUE(ps.Run("3 4 add 2 mul 5 sub dup pop 0 exch moveto "
                     "1 1 rlineto stroke")
                  .ok());
  Rendering r = ps.Take();
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].d, "M 0.00 9.00 L 1.00 10.00");
}

TEST(PostScriptTest, DefinedNumbersAndProcedures) {
  PostScriptInterp ps;
  ASSERT_TRUE(ps.Run(R"(
    /unit 10 def
    /box {
      0 0 moveto unit 0 rlineto 0 unit rlineto
      unit neg 0 rlineto closepath fill
    } def
    box
  )")
                  .ok());
  Rendering r = ps.Take();
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_TRUE(r.paths[0].filled);
  EXPECT_NE(r.paths[0].d.find("Z"), std::string::npos);
  EXPECT_DOUBLE_EQ(r.bbox.Width(), 10.0);
}

TEST(PostScriptTest, TransformsCompose) {
  PostScriptInterp ps;
  ASSERT_TRUE(ps.Run("gsave 100 50 translate 2 2 scale "
                     "0 0 moveto 10 0 lineto stroke grestore "
                     "0 0 moveto 10 0 lineto stroke")
                  .ok());
  Rendering r = ps.Take();
  ASSERT_EQ(r.paths.size(), 2u);
  // Translated+scaled line: from (100,50) to (120,50).
  EXPECT_EQ(r.paths[0].d, "M 100.00 50.00 L 120.00 50.00");
  // After grestore the CTM is identity again.
  EXPECT_EQ(r.paths[1].d, "M 0.00 0.00 L 10.00 0.00");
}

TEST(PostScriptTest, RotateNinetyDegrees) {
  PostScriptInterp ps;
  ASSERT_TRUE(ps.Run("90 rotate 0 0 moveto 10 0 lineto stroke").ok());
  Rendering r = ps.Take();
  ASSERT_EQ(r.paths.size(), 1u);
  // (10,0) rotated 90° CCW is (0,10).
  EXPECT_EQ(r.paths[0].d, "M 0.00 0.00 L 0.00 10.00");
}

TEST(PostScriptTest, ArcProducesClosedCircleBBox) {
  PostScriptInterp ps;
  ASSERT_TRUE(ps.Run("newpath 50 50 10 0 360 arc closepath fill").ok());
  Rendering r = ps.Take();
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_NEAR(r.bbox.Width(), 20.0, 0.2);
  EXPECT_NEAR(r.bbox.min_x, 40.0, 0.2);
}

TEST(PostScriptTest, SetGrayAndLineWidth) {
  PostScriptInterp ps;
  ASSERT_TRUE(
      ps.Run("0.5 setgray 3 setlinewidth 0 0 moveto 5 5 lineto stroke")
          .ok());
  Rendering r = ps.Take();
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_DOUBLE_EQ(r.paths[0].gray, 0.5);
  EXPECT_DOUBLE_EQ(r.paths[0].line_width, 3.0);
}

TEST(PostScriptTest, CommentsIgnored) {
  PostScriptInterp ps;
  ASSERT_TRUE(ps.Run("% draw nothing but a dot\n"
                     "0 0 moveto 1 0 lineto stroke % trailing\n")
                  .ok());
  EXPECT_EQ(ps.Take().paths.size(), 1u);
}

TEST(PostScriptTest, ErrorsAreStatuses) {
  PostScriptInterp ps;
  EXPECT_EQ(ps.Run("add").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ps.Run("5 0 div").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ps.Run("frobnicate").code(), StatusCode::kParseError);
  EXPECT_EQ(ps.Run("10 20 lineto").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ps.Run("grestore").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ps.Run("/x { 1 2").code(), StatusCode::kParseError);
  EXPECT_EQ(ps.Run("/x").code(), StatusCode::kParseError);
}

TEST(PostScriptTest, RecursionGuard) {
  PostScriptInterp ps;
  EXPECT_EQ(ps.Run("/loop { loop } def loop").code(),
            StatusCode::kFailedPrecondition);
}

TEST(PostScriptTest, DefineNumberBindsParameters) {
  PostScriptInterp ps;
  ps.DefineNumber("xpos", 30);
  ps.DefineNumber("ypos", 40);
  ASSERT_TRUE(ps.Run("xpos ypos moveto xpos ypos add 0 lineto stroke").ok());
  Rendering r = ps.Take();
  EXPECT_EQ(r.paths[0].d, "M 30.00 40.00 L 70.00 0.00");
}

TEST(PostScriptTest, SvgOutputWellFormed) {
  PostScriptInterp ps;
  ASSERT_TRUE(ps.Run("0 0 moveto 10 10 lineto stroke "
                     "newpath 5 5 2 0 360 arc fill")
                  .ok());
  std::string svg = ps.Take().ToSvg();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("stroke-width"), std::string::npos);
  EXPECT_NE(svg.find("fill=\"rgb(0,0,0)\""), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace mdm::graphics

// A simulated score-editor client (§2): random editing sessions against
// the MDM, checking that the temporal hierarchy's invariants hold after
// every burst of edits — the consistency a shared data manager must
// guarantee its clients.
#include <gtest/gtest.h>

#include <set>

#include "cmn/schema.h"
#include "cmn/score_builder.h"
#include "cmn/temporal.h"
#include "common/random.h"
#include "er/database.h"
#include "mtime/tempo_map.h"

namespace mdm::cmn {
namespace {

struct EditorParam {
  uint64_t seed;
  int edits;
};

class EditorPropertyTest : public testing::TestWithParam<EditorParam> {};

TEST_P(EditorPropertyTest, HierarchyInvariantsSurviveRandomEditing) {
  const EditorParam param = GetParam();
  er::Database db;
  ASSERT_TRUE(InstallCmnSchema(&db).ok());
  ScoreBuilder builder(&db);
  auto score = builder.CreateScore("editing session");
  auto movement = builder.AddMovement(*score, "I");
  auto voice = builder.AddVoice(1);
  std::vector<er::EntityId> measures;
  for (int m = 1; m <= 4; ++m) {
    auto measure = builder.AddMeasure(*movement, m, {4, 4});
    measures.push_back(*measure);
  }

  std::vector<er::EntityId> live_notes;
  std::vector<er::EntityId> live_chords;
  Rng rng(param.seed);

  for (int edit = 0; edit < param.edits; ++edit) {
    double roll = rng.NextDouble();
    if (roll < 0.5) {
      // Insert a note (possibly creating a chord at a random sync).
      er::EntityId measure = measures[rng.Uniform(measures.size())];
      Rational beat(rng.Range(0, 15), 4);  // sixteenth grid in 4/4
      auto sync = builder.GetOrAddSync(measure, beat);
      ASSERT_TRUE(sync.ok());
      er::EntityId chord;
      auto chords_here = db.Children(kChordInSync, *sync);
      if (!chords_here->empty() && rng.Bernoulli(0.5)) {
        chord = chords_here->front();
      } else {
        auto fresh = builder.AddChord(*sync, *voice,
                                      Rational(1, 1 + rng.Uniform(4)));
        ASSERT_TRUE(fresh.ok());
        chord = *fresh;
        live_chords.push_back(chord);
      }
      auto note =
          builder.AddNoteMidi(chord, 48 + static_cast<int>(rng.Uniform(36)));
      ASSERT_TRUE(note.ok());
      live_notes.push_back(*note);
    } else if (roll < 0.75 && !live_notes.empty()) {
      // Delete a random note entirely.
      size_t idx = rng.Uniform(live_notes.size());
      ASSERT_TRUE(db.DeleteEntity(live_notes[idx]).ok());
      live_notes.erase(live_notes.begin() + idx);
    } else if (!live_chords.empty()) {
      // Delete a whole chord (its notes detach but survive as roots;
      // a real editor would cascade — exercise both paths).
      size_t idx = rng.Uniform(live_chords.size());
      er::EntityId chord = live_chords[idx];
      auto notes = db.Children(kNoteInChord, chord);
      ASSERT_TRUE(notes.ok());
      if (rng.Bernoulli(0.5)) {
        // Cascade by hand first.
        for (er::EntityId note : *notes) {
          ASSERT_TRUE(db.DeleteEntity(note).ok());
          live_notes.erase(
              std::find(live_notes.begin(), live_notes.end(), note));
        }
      }
      ASSERT_TRUE(db.DeleteEntity(chord).ok());
      live_chords.erase(live_chords.begin() + idx);
    }

    if (edit % 64 != 63) continue;
    // ---- invariant audit ----
    // 1. Syncs in every measure are strictly sorted by beat.
    for (er::EntityId measure : measures) {
      auto syncs = db.Children(kSyncInMeasure, measure);
      ASSERT_TRUE(syncs.ok());
      Rational prev(-1);
      for (er::EntityId sync : *syncs) {
        auto beat = db.GetAttribute(sync, "beat");
        ASSERT_TRUE(beat.ok());
        ASSERT_TRUE(prev < beat->AsRational());
        prev = beat->AsRational();
      }
    }
    // 2. Every live note is under at most one chord, and that chord
    // lists it exactly once.
    for (er::EntityId note : live_notes) {
      auto parent = db.ParentOf(kNoteInChord, note);
      ASSERT_TRUE(parent.ok());
      if (*parent == er::kInvalidEntityId) continue;  // orphaned by edits
      auto sibs = db.Children(kNoteInChord, *parent);
      ASSERT_TRUE(sibs.ok());
      EXPECT_EQ(std::count(sibs->begin(), sibs->end(), note), 1);
    }
    // 3. Performance extraction never fails and never emits deleted
    // notes.
    mtime::TempoMap tempo;
    auto performed = ExtractPerformance(&db, *score, tempo);
    ASSERT_TRUE(performed.ok());
    std::set<er::EntityId> live_set(live_notes.begin(), live_notes.end());
    for (const PerformedNote& pn : *performed)
      EXPECT_TRUE(live_set.count(pn.source_note) != 0);
    // 4. No dangling refs anywhere.
    EXPECT_EQ(db.CountDanglingRefs(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sessions, EditorPropertyTest,
                         testing::Values(EditorParam{1, 128},
                                         EditorParam{58, 512},
                                         EditorParam{17, 1024}));

}  // namespace
}  // namespace mdm::cmn

// Second property-test batch: heap-file model equivalence and executor
// strategy equivalence (push-down vs naive must agree on every query).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "common/strings.h"
#include "ddl/parser.h"
#include "er/database.h"
#include "net/connection.h"
#include "quel/quel.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace mdm {
namespace {

// ----------------------------------------------------------------------
// Heap file vs a std::map model, across buffer-pool sizes (eviction
// pressure is part of the parameter sweep).
// ----------------------------------------------------------------------

struct HeapParam {
  uint64_t seed;
  size_t pool_frames;
  int ops;
};

class HeapFilePropertyTest : public testing::TestWithParam<HeapParam> {};

TEST_P(HeapFilePropertyTest, ModelEquivalenceUnderEviction) {
  const HeapParam p = GetParam();
  storage::MemoryDiskManager dm;
  storage::BufferPool pool(&dm, p.pool_frames);
  auto first = storage::HeapFile::Create(&pool);
  ASSERT_TRUE(first.ok());
  storage::HeapFile hf(&pool, *first);

  std::map<std::string, std::string> model;  // rid-key -> record
  auto rid_key = [](const storage::Rid& rid) {
    return StrFormat("%u:%u", rid.page_id, rid.slot);
  };
  std::vector<std::pair<storage::Rid, std::string>> live;

  Rng rng(p.seed);
  for (int op = 0; op < p.ops; ++op) {
    double roll = rng.NextDouble();
    if (roll < 0.55) {
      std::string rec(rng.Range(1, 300),
                      static_cast<char>('a' + rng.Uniform(26)));
      auto rid = hf.Append(rec);
      ASSERT_TRUE(rid.ok());
      model[rid_key(*rid)] = rec;
      live.emplace_back(*rid, rec);
    } else if (roll < 0.75 && !live.empty()) {
      size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(hf.Delete(live[idx].first).ok());
      model.erase(rid_key(live[idx].first));
      live.erase(live.begin() + idx);
    } else if (!live.empty()) {
      size_t idx = rng.Uniform(live.size());
      std::string rec(rng.Range(1, 200), 'u');
      Status s = hf.Update(live[idx].first, rec);
      if (s.ok()) {
        model[rid_key(live[idx].first)] = rec;
        live[idx].second = rec;
      } else {
        // In-place update can fail when the page is full; the record
        // must be unchanged.
        std::string out;
        ASSERT_TRUE(hf.Read(live[idx].first, &out).ok());
        EXPECT_EQ(out, live[idx].second);
      }
    }
  }
  // Full-scan equivalence.
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE(hf.Scan([&](const storage::Rid& rid, std::string_view rec) {
                  scanned[rid_key(rid)] = std::string(rec);
                  return true;
                })
                  .ok());
  EXPECT_EQ(scanned, model);
  // Point reads agree.
  for (const auto& [rid, expected] : live) {
    std::string out;
    ASSERT_TRUE(hf.Read(rid, &out).ok());
    EXPECT_EQ(out, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeapFilePropertyTest,
    testing::Values(HeapParam{1, 2, 300},     // brutal eviction pressure
                    HeapParam{7, 8, 1000},
                    HeapParam{42, 64, 3000}));

// ----------------------------------------------------------------------
// QUEL: push-down and naive evaluation must produce identical rows for
// randomized databases and a family of queries.
// ----------------------------------------------------------------------

class QuelStrategyPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(QuelStrategyPropertyTest, PushdownMatchesNaive) {
  Rng rng(GetParam());
  er::Database db;
  ASSERT_TRUE(ddl::ExecuteDdl(R"(
    define entity CHORD (name = integer)
    define entity NOTE (name = integer, octave = integer)
    define ordering note_in_chord (NOTE) under CHORD
  )",
                              &db)
                  .ok());
  int chords = static_cast<int>(rng.Range(2, 8));
  int note_name = 0;
  for (int c = 0; c < chords; ++c) {
    auto chord = db.CreateEntity("CHORD");
    ASSERT_TRUE(db.SetAttribute(*chord, "name", rel::Value::Int(c)).ok());
    int notes = static_cast<int>(rng.Range(0, 6));
    for (int n = 0; n < notes; ++n) {
      auto note = db.CreateEntity("NOTE");
      ASSERT_TRUE(
          db.SetAttribute(*note, "name", rel::Value::Int(note_name++)).ok());
      ASSERT_TRUE(db.SetAttribute(*note, "octave",
                                  rel::Value::Int(rng.Range(2, 6)))
                      .ok());
      ASSERT_TRUE(db.AppendChild("note_in_chord", *chord, *note).ok());
    }
  }
  const std::string queries[] = {
      "range of n1, n2 is NOTE\n"
      "retrieve (n1.name) where n1 before n2 in note_in_chord",
      "range of n1, n2 is NOTE\n"
      "retrieve (n1.name, n2.name) where n1 after n2 in note_in_chord "
      "and n2.octave = 4",
      "range of n is NOTE\nrange of c is CHORD\n"
      "retrieve (n.name, c.name) where n under c in note_in_chord "
      "and c.name > 1",
      "range of n is NOTE\nretrieve (n.name) "
      "where n.octave >= 3 and n.octave <= 4 or n.name = 0",
      "range of n is NOTE\nrange of c is CHORD\n"
      "retrieve (k = count(n)) where n under c in note_in_chord "
      "and not c.name = 0",
      "retrieve unique (NOTE.octave)",
  };
  mdm::Connection session = mdm::Connection::Local(&db);
  for (const std::string& q : queries) {
    auto fast = session.Execute(q);
    auto slow = session.local_session()->ExecuteNaive(q);
    ASSERT_TRUE(fast.ok()) << q << " -> " << fast.status().ToString();
    ASSERT_TRUE(slow.ok()) << q << " -> " << slow.status().ToString();
    // Compare as multisets of stringified rows (join order may differ).
    auto rows = [](const quel::ResultSet& rs) {
      std::vector<std::string> out;
      for (const auto& row : rs.rows) {
        std::string s;
        for (const auto& v : row) s += v.ToString() + "|";
        out.push_back(s);
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(rows(*fast), rows(*slow)) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuelStrategyPropertyTest,
                         testing::Values(2, 29, 578, 1080, 9001));

}  // namespace
}  // namespace mdm

#include <gtest/gtest.h>

#include "cmn/temporal.h"
#include "cmn/transform.h"
#include "darms/darms.h"
#include "er/database.h"
#include "mtime/tempo_map.h"
#include "net/connection.h"
#include "quel/quel.h"

namespace mdm::cmn {
namespace {

std::vector<int> MidiKeys(er::Database* db, er::EntityId score) {
  mtime::TempoMap tempo;
  auto notes = ExtractPerformance(db, score, tempo);
  EXPECT_TRUE(notes.ok());
  std::vector<int> out;
  for (const auto& n : *notes) out.push_back(n.midi_key);
  return out;
}

TEST(TransformTest, TransposePreservesIntervals) {
  er::Database db;
  auto import = darms::ImportDarms(&db, "!G 1Q 3Q 5Q / 8H 6H //", "t");
  ASSERT_TRUE(import.ok());
  std::vector<int> before = MidiKeys(&db, import->score);
  auto n = TransposeScore(&db, import->score, 5);  // up a fourth
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  std::vector<int> after = MidiKeys(&db, import->score);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(after[i], before[i] + 5) << i;
  // Degrees moved diatonically (5 semitones ~ 3 steps).
  auto first_degree = [&db]() {
    int64_t degree = -99;
    (void)db.ForEachEntity("NOTE", [&](er::EntityId note) {
      auto v = db.GetAttribute(note, "degree");
      if (v.ok() && !v->is_null()) degree = v->AsInt();
      return false;
    });
    return degree;
  };
  EXPECT_EQ(first_degree(), 1 + 3);
}

TEST(TransformTest, TransposeOutOfRangeFailsCleanly) {
  er::Database db;
  auto import = darms::ImportDarms(&db, "!G 9Q //", "t");
  ASSERT_TRUE(import.ok());
  EXPECT_EQ(TransposeScore(&db, import->score, 100).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(TransposeScore(&db, import->score, -100).status().code(),
            StatusCode::kOutOfRange);
}

TEST(TransformTest, RetrogradeReversesVoice) {
  er::Database db;
  auto import = darms::ImportDarms(&db, "!G 1Q 3Q 5Q 7Q //", "t");
  ASSERT_TRUE(import.ok());
  auto before = db.Children(kVoiceSeq, import->voice);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(RetrogradeVoice(&db, import->voice).ok());
  auto after = db.Children(kVoiceSeq, import->voice);
  ASSERT_TRUE(after.ok());
  std::vector<er::EntityId> reversed(before->rbegin(), before->rend());
  EXPECT_EQ(*after, reversed);
  // Applying retrograde twice restores the original.
  ASSERT_TRUE(RetrogradeVoice(&db, import->voice).ok());
  after = db.Children(kVoiceSeq, import->voice);
  EXPECT_EQ(*after, *before);
}

TEST(TransformTest, ExtractVoiceClonesOnlyThatVoice) {
  er::Database db;
  ASSERT_TRUE(InstallCmnSchema(&db).ok());
  ScoreBuilder builder(&db);
  auto score = builder.CreateScore("duet");
  auto movement = builder.AddMovement(*score, "I");
  auto measure = builder.AddMeasure(*movement, 1, {3, 4});
  auto v1 = builder.AddVoice(1);
  auto v2 = builder.AddVoice(2);
  for (int b = 0; b < 3; ++b) {
    auto sync = builder.GetOrAddSync(*measure, Rational(b));
    auto c1 = builder.AddChord(*sync, *v1, Rational(1));
    (void)builder.AddNoteMidi(*c1, 60 + b);
    auto c2 = builder.AddChord(*sync, *v2, Rational(1));
    (void)builder.AddNoteMidi(*c2, 72 + b);
  }
  auto part = ExtractVoice(&db, *score, *v1);
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  std::vector<int> keys = MidiKeys(&db, *part);
  EXPECT_EQ(keys, (std::vector<int>{60, 61, 62}));
  // The part's measures carry the source meter.
  auto table = BuildMeasureTable(db, *part);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->size(), 1u);
  EXPECT_EQ((*table)[0].length, Rational(3));
  // The original score is untouched.
  EXPECT_EQ(MidiKeys(&db, *score).size(), 6u);
}

TEST(TransformTest, NotesInTemporalOrder) {
  er::Database db;
  auto import = darms::ImportDarms(&db, "!G 5Q 3Q / 7H 1H //", "t");
  ASSERT_TRUE(import.ok());
  auto notes = NotesInTemporalOrder(db, import->score);
  ASSERT_TRUE(notes.ok());
  EXPECT_EQ(notes->size(), 4u);
  std::vector<int64_t> degrees;
  for (er::EntityId n : *notes)
    degrees.push_back(db.GetAttribute(n, "degree")->AsInt());
  EXPECT_EQ(degrees, (std::vector<int64_t>{5, 3, 7, 1}));
}

TEST(QuelUniqueTest, RetrieveUniqueDeduplicates) {
  er::Database db;
  ASSERT_TRUE(db.DefineEntityType(
                    {"NOTE", {{"pitch", rel::ValueType::kString, ""}}})
                  .ok());
  for (const char* p : {"G4", "A4", "G4", "G4", "B4"}) {
    auto note = db.CreateEntity("NOTE");
    ASSERT_TRUE(
        db.SetAttribute(*note, "pitch", rel::Value::String(p)).ok());
  }
  mdm::Connection session = mdm::Connection::Local(&db);
  auto all = session.Execute("retrieve (NOTE.pitch)");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 5u);
  auto unique = session.Execute("retrieve unique (NOTE.pitch)");
  ASSERT_TRUE(unique.ok()) << unique.status().ToString();
  EXPECT_EQ(unique->rows.size(), 3u);
  // First-seen order preserved.
  EXPECT_EQ(unique->rows[0][0].AsString(), "G4");
  EXPECT_EQ(unique->rows[1][0].AsString(), "A4");
  EXPECT_EQ(unique->rows[2][0].AsString(), "B4");
}

}  // namespace
}  // namespace mdm::cmn

// End-to-end integration: the full MDM pipeline the paper envisions,
// crossing every module boundary in one scenario — a score enters as
// DARMS, is catalogued, queried, typeset, performed, synthesized,
// compacted, persisted, and recovered.
#include <gtest/gtest.h>

#include <cstdio>

#include "biblio/thematic_index.h"
#include "cmn/temporal.h"
#include "cmn/transform.h"
#include "darms/darms.h"
#include "er/persist.h"
#include "meta/meta_schema.h"
#include "midi/midi.h"
#include "mtime/tempo_map.h"
#include "notation/engrave.h"
#include "notation/piano_roll.h"
#include "net/connection.h"
#include "quel/quel.h"
#include "sound/sound.h"

namespace mdm {
namespace {

constexpr const char* kSubjectDarms =
    "!G !K2- 2Q 6Q 4E 3E 2E 4E 3E 2E 1#E 3E / 5H 4E 3E 2E 1E / 2W //";

TEST(IntegrationTest, FullPipeline) {
  er::Database db;

  // 1. Ingest: DARMS -> CMN entities.
  auto import = darms::ImportDarms(&db, kSubjectDarms, "Fuge g-moll");
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_EQ(import->measures, 3);
  EXPECT_EQ(import->notes, 16);

  // 2. Catalog: the biblio layer lives in the SAME database.
  ASSERT_TRUE(biblio::InstallBiblioSchema(&db).ok());
  auto bwv = biblio::CreateCatalog(&db, "Bach Werke Verzeichnis", "BWV");
  ASSERT_TRUE(bwv.ok());
  biblio::CatalogEntry entry;
  entry.number = "578";
  entry.title = "Fuge g-moll";
  entry.measure_count = import->measures;
  // Incipit from the stored notes themselves.
  auto ordered = cmn::NotesInTemporalOrder(db, import->score);
  ASSERT_TRUE(ordered.ok());
  for (er::EntityId note : *ordered) {
    auto key = db.GetAttribute(note, "midi_key");
    entry.incipit.push_back(static_cast<int>(key->AsInt()));
  }
  ASSERT_TRUE(biblio::AddEntry(&db, *bwv, entry).ok());

  // 3. Query: QUEL over the combined schema.
  mdm::Connection session = mdm::Connection::Local(&db);
  auto rs = session.Execute(R"(
    range of n is NOTE
    retrieve (lo = min(n.midi_key), hi = max(n.midi_key), c = count(n))
  )");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][2].AsInt(), 16);
  int lo = static_cast<int>(rs->rows[0][0].AsInt());
  int hi = static_cast<int>(rs->rows[0][1].AsInt());
  EXPECT_LT(lo, hi);

  // 4. Meta: self-host the combined schema and read it back as data.
  ASSERT_TRUE(meta::InstallMetaSchema(&db).ok());
  ASSERT_TRUE(meta::SyncSchemaToMeta(&db).ok());
  auto attrs = meta::MetaAttributeNames(db, "CATALOG_ENTRY");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size(), 6u);

  // 5. Typeset and notate.
  auto svg = notation::EngraveScoreSvg(&db, import->score);
  ASSERT_TRUE(svg.ok());
  EXPECT_GT(svg->size(), 500u);

  // 6. Perform: conductor -> events -> MIDI -> SMF round trip.
  mtime::TempoMap tempo;
  ASSERT_TRUE(tempo.SetTempo(Rational(0), 84).ok());
  ASSERT_TRUE(tempo.Ritardando(Rational(8), 84).ok());
  ASSERT_TRUE(tempo.SetTempo(Rational(12), 42).ok());
  auto notes = cmn::ExtractPerformance(&db, import->score, tempo);
  ASSERT_TRUE(notes.ok());
  ASSERT_EQ(notes->size(), 16u);
  // The ritardando stretches late notes.
  double early_len =
      (*notes)[0].end_seconds - (*notes)[0].start_seconds;
  double late_len =
      notes->back().end_seconds - notes->back().start_seconds;
  EXPECT_GT(late_len, early_len);

  auto track = midi::TrackFromPerformance(*notes);
  auto reparsed = midi::ReadSmf(midi::WriteSmf(track));
  ASSERT_TRUE(reparsed.ok());

  // 7. Sound: synthesize and compact losslessly.
  auto pcm = sound::Synthesize(track, 8000);
  EXPECT_GT(pcm.DurationSeconds(), 5.0);
  sound::CompactionStats stats;
  auto encoded = sound::EncodeDelta(pcm, &stats);
  EXPECT_GT(stats.Ratio(), 1.0);
  auto decoded = sound::DecodeDelta(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->samples, pcm.samples);

  // 8. Piano roll of the same performance.
  std::string roll = notation::AsciiPianoRoll(*notes);
  EXPECT_NE(roll.find('#'), std::string::npos);

  // 9. Persist and recover; the recovered database answers the same
  // melodic search.
  std::string path = testing::TempDir() + "/integration.mdm";
  std::remove(path.c_str());
  ASSERT_TRUE(er::SaveSnapshot(db, path).ok());
  auto recovered = er::LoadSnapshot(path);
  ASSERT_TRUE(recovered.ok());
  auto hits = biblio::SearchByIntervals(
      *recovered, *bwv,
      biblio::ToIntervals({entry.incipit[0] + 7, entry.incipit[1] + 7,
                           entry.incipit[2] + 7}));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(biblio::GetEntry(*recovered, (*hits)[0])->number, "578");
  EXPECT_EQ(recovered->CountDanglingRefs(), 0u);
  std::remove(path.c_str());
}

TEST(IntegrationTest, TransposedPartExtractionPipeline) {
  // Compose a two-voice passage, extract one part, transpose it for a
  // Bb instrument, and verify through performance extraction.
  er::Database db;
  ASSERT_TRUE(cmn::InstallCmnSchema(&db).ok());
  cmn::ScoreBuilder builder(&db);
  auto score = builder.CreateScore("duet");
  auto movement = builder.AddMovement(*score, "I");
  auto v1 = builder.AddVoice(1);
  auto v2 = builder.AddVoice(2);
  for (int m = 1; m <= 2; ++m) {
    auto measure = builder.AddMeasure(*movement, m, {4, 4});
    for (int b = 0; b < 4; ++b) {
      auto sync = builder.GetOrAddSync(*measure, Rational(b));
      auto c1 = builder.AddChord(*sync, *v1, Rational(1));
      ASSERT_TRUE(builder.AddNoteMidi(*c1, 60 + b).ok());
      auto c2 = builder.AddChord(*sync, *v2, Rational(1));
      ASSERT_TRUE(builder.AddNoteMidi(*c2, 48 + b).ok());
    }
  }
  auto part = cmn::ExtractVoice(&db, *score, *v2);
  ASSERT_TRUE(part.ok());
  auto transposed = cmn::TransposeScore(&db, *part, 2);  // Bb -> written D
  ASSERT_TRUE(transposed.ok());
  EXPECT_EQ(*transposed, 8u);

  mtime::TempoMap tempo;
  auto notes = cmn::ExtractPerformance(&db, *part, tempo);
  ASSERT_TRUE(notes.ok());
  ASSERT_EQ(notes->size(), 8u);
  EXPECT_EQ((*notes)[0].midi_key, 50);  // 48 + 2
  // The original is untouched.
  auto original = cmn::ExtractPerformance(&db, *score, tempo);
  EXPECT_EQ(original->size(), 16u);
}

}  // namespace
}  // namespace mdm

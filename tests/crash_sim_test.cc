// Deterministic power-cut simulator (the crash-consistency acceptance
// test). A fixed musical workload — chords, notes, orderings, NEXT
// relationships, deletes, checkpoints — runs against a DurableDatabase
// while the global failpoint registry cuts power at every single I/O
// boundary in turn. After each cut the database is reopened and its
// recovered state must equal the state after some step k with
// acked <= k <= attempted: nothing acknowledged is ever lost, nothing
// half-applied ever surfaces.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "er/persist.h"
#include "rel/value.h"

namespace mdm {
namespace {

using er::DurableDatabase;
using rel::Value;

/// Directory for the simulator's database files. The full sweep performs
/// tens of thousands of fsyncs, so prefer tmpfs when available.
std::string CrashDir() {
  static const std::string dir = [] {
    std::string d = "/dev/shm/mdm_crash_sim";
    ::mkdir(d.c_str(), 0755);
    std::string probe = d + "/probe";
    std::FILE* f = std::fopen(probe.c_str(), "wb");
    if (f != nullptr) {
      std::fclose(f);
      std::remove(probe.c_str());
      return d;
    }
    d = testing::TempDir() + "/mdm_crash_sim";
    ::mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

void RemoveDbFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".wal").c_str());
  for (int e = 1; e <= 12; ++e)
    std::remove((path + ".wal." + std::to_string(e)).c_str());
}

struct Step {
  std::string what;
  std::function<Status(DurableDatabase*)> run;
};

constexpr int kChords = 16;
constexpr int kNotes = 3;

/// Entity ids are deterministic: ids are assigned 1, 2, 3, ... in
/// creation order, and the workload creates chord c followed by its
/// kNotes notes.
er::EntityId ChordId(int c) {
  return static_cast<er::EntityId>(1 + c * (1 + kNotes));
}
er::EntityId NoteId(int c, int n) { return ChordId(c) + 1 + n; }

/// ~200 schema + mutation + checkpoint steps, all deterministic.
std::vector<Step> BuildWorkload() {
  std::vector<Step> steps;
  auto add = [&](std::string what,
                 std::function<Status(DurableDatabase*)> fn) {
    steps.push_back({std::move(what), std::move(fn)});
  };
  add("define CHORD", [](DurableDatabase* h) {
    return h->db()->DefineEntityType(
        {"CHORD", {{"name", rel::ValueType::kInt, ""}}});
  });
  add("define NOTE", [](DurableDatabase* h) {
    return h->db()->DefineEntityType(
        {"NOTE",
         {{"pitch", rel::ValueType::kInt, ""},
          {"dur", rel::ValueType::kInt, ""}}});
  });
  add("define NEXT", [](DurableDatabase* h) {
    return h->db()->DefineRelationship(
        {"NEXT", {{"from", "CHORD"}, {"to", "CHORD"}}, {}});
  });
  add("define note_in_chord", [](DurableDatabase* h) {
    return h->db()
        ->DefineOrdering({"note_in_chord", {"NOTE"}, "CHORD"})
        .status();
  });
  for (int c = 0; c < kChords; ++c) {
    add("create chord " + std::to_string(c), [](DurableDatabase* h) {
      return h->db()->CreateEntity("CHORD").status();
    });
    add("name chord " + std::to_string(c), [c](DurableDatabase* h) {
      return h->db()->SetAttribute(ChordId(c), "name", Value::Int(c));
    });
    for (int n = 0; n < kNotes; ++n) {
      add("create note", [](DurableDatabase* h) {
        return h->db()->CreateEntity("NOTE").status();
      });
      add("pitch note", [c, n](DurableDatabase* h) {
        return h->db()->SetAttribute(NoteId(c, n), "pitch",
                                     Value::Int(60 + (c * 7 + n) % 24));
      });
      add("append note", [c, n](DurableDatabase* h) {
        return h->db()->AppendChild("note_in_chord", ChordId(c),
                                    NoteId(c, n));
      });
    }
    if (c % 4 == 3) {
      add("checkpoint after chord " + std::to_string(c),
          [](DurableDatabase* h) { return h->Checkpoint(); });
    }
  }
  for (int c = 1; c < kChords; ++c) {
    add("connect NEXT " + std::to_string(c), [c](DurableDatabase* h) {
      return h->db()
          ->Connect("NEXT",
                    {{"from", ChordId(c - 1)}, {"to", ChordId(c)}})
          .status();
    });
  }
  for (int c = 0; c < 4; ++c) {
    add("delete first note of chord " + std::to_string(c),
        [c](DurableDatabase* h) {
          return h->db()->DeleteEntity(NoteId(c, 0));
        });
  }
  add("final checkpoint",
      [](DurableDatabase* h) { return h->Checkpoint(); });
  return steps;
}

/// Serializes everything the workload can affect: entities with their
/// attribute values, ordering edges, relationship instances. Visiting
/// order is deterministic (creation order), so equal fingerprints mean
/// equal database states.
std::string Fingerprint(const er::Database& db) {
  std::string out;
  for (const auto& et : db.schema().entity_types()) {
    out += et.name + "[";
    (void)db.ForEachEntity(et.name, [&](er::EntityId id) {
      out += std::to_string(id) + "{";
      for (const auto& attr : et.attributes) {
        auto v = db.GetAttribute(id, attr.name);
        out += attr.name + "=" + (v.ok() ? v->ToString() : "?") + ",";
      }
      out += "}";
      return true;
    });
    out += "]";
  }
  for (const auto& od : db.schema().orderings()) {
    out += od.name + "(";
    (void)db.ForEachEntity(od.parent_type, [&](er::EntityId parent) {
      auto kids = db.Children(od.name, parent);
      if (kids.ok() && !kids->empty()) {
        out += std::to_string(parent) + ":";
        for (er::EntityId k : *kids) out += std::to_string(k) + ".";
        out += ";";
      }
      return true;
    });
    out += ")";
  }
  for (const auto& rd : db.schema().relationships()) {
    out += rd.name + "<";
    (void)db.ForEachRelationship(
        rd.name, [&](const er::RelationshipInstance& ri) {
          out += std::to_string(ri.id) + ":";
          for (er::EntityId r : ri.role_refs) out += std::to_string(r) + ".";
          out += ";";
          return true;
        });
    out += ">";
  }
  return out;
}

struct RunOutcome {
  size_t acked = 0;      // steps that returned OK
  size_t attempted = 0;  // acked plus the step that failed, if any
};

/// Applies steps until the first failure. The in-memory database may
/// have partially applied the failing step, which is why the run stops:
/// only the on-disk state is consulted afterwards.
RunOutcome RunSteps(DurableDatabase* h, const std::vector<Step>& steps) {
  RunOutcome out;
  for (size_t i = 0; i < steps.size(); ++i) {
    out.attempted = i + 1;
    if (!steps[i].run(h).ok()) return out;
    out.acked = i + 1;
  }
  return out;
}

/// A database path private to the calling test, so ctest can run the
/// simulator's tests in parallel without file collisions.
std::string TestDbPath(const char* tag) {
  return CrashDir() + "/" +
         testing::UnitTest::GetInstance()->current_test_info()->name() +
         "." + tag + ".mdm";
}

/// ref[k] = fingerprint after the first k steps, from an uninjected run.
std::vector<std::string> ReferenceFingerprints(
    const std::vector<Step>& steps) {
  std::string path = TestDbPath("ref");
  RemoveDbFiles(path);
  std::vector<std::string> ref;
  {
    auto h = DurableDatabase::Open(path);
    EXPECT_TRUE(h.ok()) << h.status().ToString();
    if (!h.ok()) return ref;
    ref.push_back(Fingerprint(*(*h)->db()));
    for (const Step& s : steps) {
      Status st = s.run((*h).get());
      EXPECT_TRUE(st.ok()) << s.what << ": " << st.ToString();
      ref.push_back(Fingerprint(*(*h)->db()));
    }
  }
  RemoveDbFiles(path);
  return ref;
}

/// True iff the recovered state equals some committed prefix within
/// [acked, attempted].
bool MatchesCommittedPrefix(const std::string& got,
                            const std::vector<std::string>& ref,
                            const RunOutcome& rc, size_t* matched_k) {
  for (size_t k = rc.acked; k <= rc.attempted && k < ref.size(); ++k) {
    if (got == ref[k]) {
      *matched_k = k;
      return true;
    }
  }
  return false;
}

TEST(CrashSimTest, PowerCutAtEveryIoBoundary) {
  FailpointRegistry* reg = FailpointRegistry::Global();
  reg->Reset();
  std::vector<Step> steps = BuildWorkload();
  std::vector<std::string> ref = ReferenceFingerprints(steps);
  ASSERT_EQ(ref.size(), steps.size() + 1);

  // Dry run with the cut armed past the horizon: counts the I/O
  // boundaries without failing any of them.
  std::string path = TestDbPath("cut");
  uint64_t total_io = 0;
  {
    RemoveDbFiles(path);
    reg->ArmPowerCutAtIo(std::numeric_limits<uint64_t>::max());
    auto h = DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    RunOutcome rc = RunSteps((*h).get(), steps);
    ASSERT_EQ(rc.acked, steps.size());
    total_io = reg->io_count();
    reg->Reset();
  }
  ASSERT_GE(total_io, 500u)
      << "workload too small to cover 500 distinct crash points";

  // Cut power at every I/O boundary, with varying amounts of the
  // in-flight bytes surviving the tear.
  const double keeps[5] = {0.0, 0.3, 0.5, 0.8, 0.97};
  uint64_t violations = 0;
  for (uint64_t cut = 1; cut <= total_io; ++cut) {
    double keep = keeps[cut % 5];
    RemoveDbFiles(path);
    reg->ArmPowerCutAtIo(cut, keep);
    RunOutcome rc;  // stays {0, 0} when the cut kills Open itself
    {
      auto h = DurableDatabase::Open(path);
      if (h.ok()) rc = RunSteps((*h).get(), steps);
    }
    reg->Reset();
    auto h = DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok())
        << "cut " << cut << ": recovery failed: " << h.status().ToString();
    size_t k = 0;
    if (!MatchesCommittedPrefix(Fingerprint(*(*h)->db()), ref, rc, &k)) {
      ++violations;
      ADD_FAILURE() << "cut " << cut << " (keep " << keep
                    << "): recovered state matches no step in ["
                    << rc.acked << ", " << rc.attempted << "]";
    }
  }
  EXPECT_EQ(violations, 0u);
  RemoveDbFiles(path);
}

TEST(CrashSimTest, ProbabilisticTornAppendTorture) {
  FailpointRegistry* reg = FailpointRegistry::Global();
  reg->Reset();
  std::vector<Step> steps = BuildWorkload();
  std::vector<std::string> ref = ReferenceFingerprints(steps);
  ASSERT_EQ(ref.size(), steps.size() + 1);

  // Random journal-append failures. kTornWrite is deliberately absent:
  // an append that tears *and reports success* models firmware lying
  // about durability, which no journal protocol can survive — the
  // page-level checksums cover that class instead.
  const FaultKind kinds[3] = {FaultKind::kError, FaultKind::kShortWrite,
                              FaultKind::kPowerCut};
  std::string path = TestDbPath("torture");
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    RemoveDbFiles(path);
    reg->Reset();
    reg->Arm("wal.append", Failpoint::FailWithProbability(
                               0.02, seed, kinds[seed % 3], 0.5));
    RunOutcome rc;
    {
      auto h = DurableDatabase::Open(path);
      if (h.ok()) rc = RunSteps((*h).get(), steps);
    }
    reg->Reset();
    auto h = DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok()) << "seed " << seed
                        << ": recovery failed: " << h.status().ToString();
    size_t k = 0;
    EXPECT_TRUE(
        MatchesCommittedPrefix(Fingerprint(*(*h)->db()), ref, rc, &k))
        << "seed " << seed << ": recovered state matches no step in ["
        << rc.acked << ", " << rc.attempted << "]";
  }
  RemoveDbFiles(path);
}

// Group commit + statement groups under power cuts. Each step below is
// a BATCH — one statement group, i.e. one WAL transaction with a single
// commit record, exactly what Connection::ExecuteBatch produces — and
// the database runs with the commit coordinator attached. The sweep
// cuts power at every I/O boundary; the recovered state must land on a
// BATCH boundary. A fingerprint between boundaries would mean a batch
// tore in half (half its mutations applied after recovery), violating
// all-or-nothing; a commit record fsynced by a leader on behalf of a
// follower must likewise never be lost once acknowledged.
std::vector<Step> BuildBatchedWorkload() {
  std::vector<Step> steps;
  auto add = [&](std::string what,
                 std::function<Status(DurableDatabase*)> fn) {
    steps.push_back({std::move(what), std::move(fn)});
  };
  // Wraps `body` in one statement group and waits for durability — the
  // in-process shape of an ExecuteBatch call.
  auto batched = [](std::function<Status(er::Database*)> body) {
    return [body](DurableDatabase* h) -> Status {
      er::Database* db = h->db();
      db->BeginStatementGroup();
      Status st = body(db);
      Result<uint64_t> lsn = db->EndStatementGroup();
      MDM_RETURN_IF_ERROR(st);
      MDM_RETURN_IF_ERROR(lsn.status());
      return db->WaitDurable(*lsn);
    };
  };
  add("schema batch", batched([](er::Database* db) -> Status {
        MDM_RETURN_IF_ERROR(db->DefineEntityType(
            {"CHORD", {{"name", rel::ValueType::kInt, ""}}}));
        MDM_RETURN_IF_ERROR(db->DefineEntityType(
            {"NOTE",
             {{"pitch", rel::ValueType::kInt, ""},
              {"dur", rel::ValueType::kInt, ""}}}));
        MDM_RETURN_IF_ERROR(db->DefineRelationship(
            {"NEXT", {{"from", "CHORD"}, {"to", "CHORD"}}, {}}));
        return db->DefineOrdering({"note_in_chord", {"NOTE"}, "CHORD"})
            .status();
      }));
  constexpr int kBatchChords = 8;
  for (int c = 0; c < kBatchChords; ++c) {
    add("chord batch " + std::to_string(c),
        batched([c](er::Database* db) -> Status {
          MDM_ASSIGN_OR_RETURN(er::EntityId chord, db->CreateEntity("CHORD"));
          MDM_RETURN_IF_ERROR(db->SetAttribute(chord, "name", Value::Int(c)));
          for (int n = 0; n < kNotes; ++n) {
            MDM_ASSIGN_OR_RETURN(er::EntityId note, db->CreateEntity("NOTE"));
            MDM_RETURN_IF_ERROR(db->SetAttribute(
                note, "pitch", Value::Int(60 + (c * 7 + n) % 24)));
            MDM_RETURN_IF_ERROR(
                db->AppendChild("note_in_chord", chord, note));
          }
          if (c > 0)
            return db
                ->Connect("NEXT", {{"from", ChordId(c - 1)}, {"to", chord}})
                .status();
          return Status::OK();
        }));
    if (c % 4 == 3) {
      add("checkpoint after batch " + std::to_string(c),
          [](DurableDatabase* h) { return h->Checkpoint(); });
    }
  }
  add("delete batch", batched([](er::Database* db) -> Status {
        for (int c = 0; c < 3; ++c)
          MDM_RETURN_IF_ERROR(db->DeleteEntity(NoteId(c, 0)));
        return Status::OK();
      }));
  return steps;
}

TEST(CrashSimTest, GroupCommitBatchesArePowerCutAtomic) {
  FailpointRegistry* reg = FailpointRegistry::Global();
  reg->Reset();
  std::vector<Step> steps = BuildBatchedWorkload();
  std::vector<std::string> ref = ReferenceFingerprints(steps);
  ASSERT_EQ(ref.size(), steps.size() + 1);

  const er::CommitCoordinator::Options gc{/*interval_us=*/0,
                                          /*max_batch=*/8};
  std::string path = TestDbPath("gc");
  uint64_t total_io = 0;
  {
    RemoveDbFiles(path);
    reg->ArmPowerCutAtIo(std::numeric_limits<uint64_t>::max());
    auto h = DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    (*h)->EnableGroupCommit(gc);
    RunOutcome rc = RunSteps((*h).get(), steps);
    ASSERT_EQ(rc.acked, steps.size());
    total_io = reg->io_count();
    reg->Reset();
  }
  ASSERT_GE(total_io, 100u)
      << "batched workload too small to cover distinct crash points";

  const double keeps[5] = {0.0, 0.3, 0.5, 0.8, 0.97};
  uint64_t violations = 0;
  for (uint64_t cut = 1; cut <= total_io; ++cut) {
    double keep = keeps[cut % 5];
    RemoveDbFiles(path);
    reg->ArmPowerCutAtIo(cut, keep);
    RunOutcome rc;
    {
      auto h = DurableDatabase::Open(path);
      if (h.ok()) {
        (*h)->EnableGroupCommit(gc);
        rc = RunSteps((*h).get(), steps);
      }
    }
    reg->Reset();
    auto h = DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok())
        << "cut " << cut << ": recovery failed: " << h.status().ToString();
    size_t k = 0;
    if (!MatchesCommittedPrefix(Fingerprint(*(*h)->db()), ref, rc, &k)) {
      ++violations;
      ADD_FAILURE() << "cut " << cut << " (keep " << keep
                    << "): recovered state matches no batch boundary in ["
                    << rc.acked << ", " << rc.attempted << "]";
    }
  }
  EXPECT_EQ(violations, 0u);
  RemoveDbFiles(path);
}

// Recovery must be idempotent: opening an intact database is a pure
// read — two consecutive Open() calls (snapshot restore + journal
// replay each time) land on the same state, same epoch, and leave the
// on-disk files untouched. A recovery that "repairs" something on a
// clean open would mean replay itself mutates durable state.
TEST(CrashSimTest, ConsecutiveRecoveriesAreIdempotent) {
  FailpointRegistry::Global()->Reset();
  std::vector<Step> steps = BuildWorkload();
  std::string path = TestDbPath("idem");
  RemoveDbFiles(path);

  std::string fp_live;
  {
    auto h = DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    RunOutcome rc = RunSteps((*h).get(), steps);
    ASSERT_EQ(rc.acked, steps.size());
    // Leave uncheckpointed work in the journal so recovery actually
    // replays (the workload ends on a checkpoint; mutate past it).
    ASSERT_TRUE(
        (*h)->db()->SetAttribute(ChordId(0), "name", Value::Int(99)).ok());
    ASSERT_TRUE((*h)->db()->DeleteEntity(NoteId(5, 1)).ok());
    fp_live = Fingerprint(*(*h)->db());
  }

  std::string fp_first;
  uint64_t epoch_first = 0;
  {
    auto h = DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    fp_first = Fingerprint(*(*h)->db());
    epoch_first = (*h)->epoch();
  }
  EXPECT_EQ(fp_first, fp_live);

  {
    auto h = DurableDatabase::Open(path);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_EQ(Fingerprint(*(*h)->db()), fp_first);
    EXPECT_EQ((*h)->epoch(), epoch_first);
  }
  RemoveDbFiles(path);
}

}  // namespace
}  // namespace mdm

#include "corpus/generator.h"

#include <algorithm>
#include <iterator>

#include "common/random.h"

namespace mdm::corpus {

using darms::DarmsItem;

namespace {

// All generated durations are integer multiples of a sixteenth note, so
// any partially filled measure can always be completed exactly (a
// sixteenth always fits). Values are in sixteenth units; the letters are
// the DARMS codes the encoder will emit.
struct Duration {
  int sixteenths;
  Rational beats;  // quarter-note beats, as DarmsItem stores them
  bool dotted;
};

const Duration kDurations[] = {
    {16, Rational(4), false},     // W
    {12, Rational(3), true},      // H.
    {8, Rational(2), false},      // H
    {6, Rational(3, 2), true},    // Q.
    {4, Rational(1), false},      // Q
    {3, Rational(3, 4), true},    // E.
    {2, Rational(1, 2), false},   // E
    {1, Rational(1, 4), false},   // S
};

// Weights biasing toward quarters and eighths — a plausible melodic
// duration distribution rather than a uniform one.
const int kDurationWeight[] = {1, 1, 3, 2, 8, 2, 8, 3};

const char* const kSyllables[] = {"al", "le", "lu", "ia", "do", "re",
                                  "mi", "fa", "sol", "la", "ti", "san",
                                  "ctus", "glo", "ri", "a"};

const char* const kAnnotations[] = {"dolce",    "cresc.",   "dim.",
                                    "rit.",     "a tempo",  "espress.",
                                    "legato",   "marcato",  "rubato"};

// Picks a duration no longer than `remaining` sixteenths; `allow_dots`
// is cleared for rests (the encoder's rest form has no dot syntax).
const Duration& PickDuration(Rng* rng, int remaining, bool allow_dots) {
  int total = 0;
  int weights[8] = {0};
  for (int i = 0; i < 8; ++i) {
    if (kDurations[i].sixteenths > remaining) continue;
    if (kDurations[i].dotted && !allow_dots) continue;
    weights[i] = kDurationWeight[i];
    total += weights[i];
  }
  int pick = static_cast<int>(rng->Uniform(static_cast<uint64_t>(total)));
  for (int i = 0; i < 8; ++i) {
    pick -= weights[i];
    if (pick < 0) return kDurations[i];
  }
  return kDurations[7];  // unreachable: the sixteenth always qualifies
}

DarmsItem MakeItem(DarmsItem::Kind kind) {
  DarmsItem item;
  item.kind = kind;
  return item;
}

}  // namespace

GeneratedScore GenerateScore(const ScoreSpec& spec) {
  Rng rng(spec.seed);
  GeneratedScore out;

  DarmsItem instrument = MakeItem(DarmsItem::Kind::kInstrument);
  instrument.number = 1;
  out.items.push_back(instrument);

  DarmsItem clef = MakeItem(DarmsItem::Kind::kClef);
  clef.clef = spec.clef;
  out.items.push_back(clef);

  DarmsItem key = MakeItem(DarmsItem::Kind::kKeySignature);
  key.number = std::clamp(spec.key_sharps, -7, 7);
  out.items.push_back(key);

  DarmsItem meter = MakeItem(DarmsItem::Kind::kMeter);
  meter.meter_num = std::max(1, spec.meter_num);
  meter.meter_den = spec.meter_den;
  if (meter.meter_den != 2 && meter.meter_den != 4 && meter.meter_den != 8)
    meter.meter_den = 4;
  out.items.push_back(meter);

  const int capacity = meter.meter_num * 16 / meter.meter_den;

  // Melodic random walk over short-form space codes. Short codes must
  // stay in [1, 19]: the parser reads user codes >= 20 as full-form
  // (2x -> x), so 20+ would not round-trip through EncodeUser.
  int degree = 9;  // middle of the staff region
  const int max_step = std::clamp(spec.max_step, 1, 8);

  auto emit_note = [&](const Duration& d) {
    int step = static_cast<int>(rng.Range(-max_step, max_step));
    degree = std::clamp(degree + step, 1, 19);
    DarmsItem note = MakeItem(DarmsItem::Kind::kNote);
    note.space_code = degree;
    note.duration = d.beats;
    note.dotted = d.dotted;
    if (rng.Bernoulli(spec.accidental_prob)) {
      uint64_t which = rng.Uniform(3);
      note.accidental = which == 0   ? cmn::Accidental::kSharp
                        : which == 1 ? cmn::Accidental::kFlat
                                     : cmn::Accidental::kNatural;
    }
    if (rng.Bernoulli(0.04)) {
      note.stem_explicit = true;
      note.stem_down = degree > 9;
    }
    if (rng.Bernoulli(spec.syllable_prob))
      note.text = kSyllables[rng.Uniform(std::size(kSyllables))];
    out.items.push_back(note);
    ++out.notes;
  };

  while (out.notes < std::max(1, spec.target_notes)) {
    if (out.measures > 0) out.items.push_back(MakeItem(DarmsItem::Kind::kBarline));
    ++out.measures;
    if (rng.Bernoulli(spec.annotation_prob)) {
      DarmsItem ann = MakeItem(DarmsItem::Kind::kAnnotation);
      ann.text = kAnnotations[rng.Uniform(std::size(kAnnotations))];
      out.items.push_back(ann);
    }
    int remaining = capacity;
    while (remaining > 0) {
      // A beamed run of eighths, when at least two fit.
      if (remaining >= 4 && rng.Bernoulli(spec.beam_prob)) {
        int run = static_cast<int>(rng.Range(2, std::min(4, remaining / 2)));
        out.items.push_back(MakeItem(DarmsItem::Kind::kBeamBegin));
        for (int i = 0; i < run; ++i) emit_note(kDurations[6]);  // eighths
        out.items.push_back(MakeItem(DarmsItem::Kind::kBeamEnd));
        remaining -= run * 2;
        continue;
      }
      if (rng.Bernoulli(spec.rest_prob)) {
        const Duration& d = PickDuration(&rng, remaining, /*allow_dots=*/false);
        DarmsItem rest = MakeItem(DarmsItem::Kind::kRest);
        rest.duration = d.beats;
        out.items.push_back(rest);
        ++out.rests;
        remaining -= d.sixteenths;
        continue;
      }
      const Duration& d = PickDuration(&rng, remaining, /*allow_dots=*/true);
      emit_note(d);
      remaining -= d.sixteenths;
    }
  }
  out.items.push_back(MakeItem(DarmsItem::Kind::kFinalBarline));

  out.user_darms = darms::EncodeUser(out.items);
  out.canonical_darms = darms::EncodeCanonical(out.items);
  return out;
}

ScoreSpec DeriveScoreSpec(const CorpusSpec& corpus, int index) {
  // A dedicated RNG per score, decorrelated from neighbours by mixing
  // the index with a large odd constant before seeding.
  Rng rng(corpus.seed * 0x9E3779B97F4A7C15ull +
          static_cast<uint64_t>(index + 1) * 0xBF58476D1CE4E5B9ull);
  ScoreSpec spec;
  spec.seed = rng.Next();

  const int scores = std::max(1, corpus.scores);
  // Per-score note budgets must *sum* to the corpus target, not merely
  // average to it (independent ±40% jitter across 10³ scores can land
  // the total below target_total_notes). Each boundary between
  // consecutive scores draws a seeded jitter and score i's budget is
  // base_i + J(i) − J(i−1): the jitters telescope away, so budgets sum
  // to exactly the target while scores still differ in length — and
  // GenerateScore guarantees ≥ budget notes per score. J is a pure
  // function of (corpus seed, boundary), keeping this stateless.
  const int64_t total = std::max<int64_t>(scores, corpus.target_total_notes);
  const int64_t mean = total / scores;
  const int64_t amp = (mean * 2) / 5;
  auto boundary_jitter = [&](int i) -> int64_t {
    if (i < 0 || i >= scores - 1 || amp == 0) return 0;
    Rng jrng(corpus.seed * 0xD6E8FEB86659FD93ull +
             static_cast<uint64_t>(i + 1) * 0xA0761D6478BD642Full);
    return jrng.Range(-amp, amp);
  };
  const int64_t base = total * (index + 1) / scores - total * index / scores;
  spec.target_notes = static_cast<int>(std::max<int64_t>(
      1, base + boundary_jitter(index) - boundary_jitter(index - 1)));

  spec.key_sharps = static_cast<int>(rng.Range(-4, 4));
  const char clefs[] = {'G', 'G', 'F', 'C'};  // treble-heavy, like a library
  spec.clef = clefs[rng.Uniform(4)];
  switch (rng.Uniform(4)) {
    case 0: spec.meter_num = 3, spec.meter_den = 4; break;
    case 1: spec.meter_num = 2, spec.meter_den = 4; break;
    case 2: spec.meter_num = 6, spec.meter_den = 8; break;
    default: spec.meter_num = 4, spec.meter_den = 4; break;
  }
  spec.rest_prob = 0.04 + rng.NextDouble() * 0.10;
  spec.accidental_prob = 0.02 + rng.NextDouble() * 0.10;
  spec.beam_prob = 0.20 + rng.NextDouble() * 0.30;
  spec.syllable_prob = rng.Bernoulli(0.3) ? 0.15 : 0.02;  // some are vocal
  spec.annotation_prob = rng.NextDouble() * 0.05;
  spec.max_step = static_cast<int>(rng.Range(2, 6));
  return spec;
}

}  // namespace mdm::corpus

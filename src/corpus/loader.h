#ifndef MDM_CORPUS_LOADER_H_
#define MDM_CORPUS_LOADER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/generator.h"
#include "er/database.h"

namespace mdm::corpus {

/// The cheap in-memory model of one loaded score that the workload
/// driver's oracle checks query answers against. Everything here is
/// derived from the generated items at load time and updated by the
/// driver as its editors mutate the tenant — deliberately *independent*
/// of the er/quel code paths it validates.
///
/// Entity ids are intentionally absent: under a multi-threaded driver
/// id assignment is interleaving-dependent, so models (and the oracle
/// hash over them) only hold interleaving-stable facts.
struct TenantModel {
  int tenant = 0;
  std::string title;           // "score-<tenant>" — SCORE.title
  std::string catalog_number;  // "<tenant>" — CATALOG_ENTRY.number
  std::vector<int> incipit;    // first MIDI keys, as indexed in biblio
  std::string incipit_text;    // the space-joined form CATALOG_ENTRY stores

  std::vector<int> keys;        // every note's midi_key, temporal order
  std::map<int, int> key_count; // midi_key -> occurrences
  std::map<int, int> degree_hist;  // NOTE.degree -> occurrences
  int notes = 0;
  int measures = 0;  // imported measures (driver tracks appends itself)
  int min_key = 0;
  int max_key = 0;
};

/// A loaded corpus: per-tenant models plus whole-library facts.
struct Corpus {
  std::vector<TenantModel> tenants;
  int64_t total_notes = 0;
  int64_t total_rests = 0;
  int64_t total_measures = 0;
  /// incipit_text -> number of catalog entries sharing it (thematic
  /// search ground truth; collisions are possible and meaningful).
  std::map<std::string, int> incipit_count;
};

struct LoadOptions {
  CorpusSpec spec;
  /// When true (default), defines the secondary attribute indexes the
  /// workload's planner-sensitive queries rely on (score title, staff
  /// number, catalog number/incipit, annotation xpos) before the bulk
  /// load begins.
  bool define_indexes = true;
  /// When true (default), the load runs in bulk index mode: per-insert
  /// secondary-index maintenance is suppressed (BeginBulkIndexLoad)
  /// and every index is rebuilt ONCE from the loaded data at the end
  /// (EndBulkIndexLoad). This is what keeps a 10^6-note load from
  /// sliding into per-note B-tree maintenance — the 10^5 -> 10^6
  /// slowdown the write-path overhaul was chartered to fix. false =
  /// ablation: indexes are maintained incrementally on every insert
  /// (bench_fig01 --bulk-index=off measures exactly this).
  bool bulk_index_build = true;
  /// Invoked after each score is loaded; for bench progress lines.
  std::function<void(int scores_done, int64_t notes_done)> progress;
};

/// Generates and loads the whole corpus into `db` through the DARMS
/// importer: CMN + biblio schemas, one score/staff/voice universe per
/// tenant (STAFF.number and VOICE.number are set to the tenant id so
/// QUEL can address a tenant without knowing entity ids), one
/// CATALOG_ENTRY per score carrying its incipit. Progress and totals
/// are also published on the obs registry (mdm_corpus_*).
///
/// Single-threaded, caller holds no latch (the db is private until
/// loading finishes).
Result<Corpus> LoadCorpus(er::Database* db, const LoadOptions& options);

}  // namespace mdm::corpus

#endif  // MDM_CORPUS_LOADER_H_

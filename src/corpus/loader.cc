#include "corpus/loader.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <shared_mutex>

#include "biblio/thematic_index.h"
#include "cmn/schema.h"
#include "common/strings.h"
#include "darms/darms.h"
#include "obs/metrics.h"

namespace mdm::corpus {

using er::EntityId;
using rel::Value;

namespace {

constexpr int kIncipitKeys = 8;

std::string JoinKeys(const std::vector<int>& keys) {
  std::vector<std::string> parts;
  parts.reserve(keys.size());
  for (int k : keys) parts.push_back(std::to_string(k));
  return StrJoin(parts, " ");
}

Status DefineWorkloadIndexes(er::Database* db) {
  const er::AttrIndexDef defs[] = {
      {"idx_score_title", "SCORE", "title"},
      {"idx_staff_number", "STAFF", "number"},
      {"idx_note_midi_key", "NOTE", "midi_key"},
      {"idx_entry_number", "CATALOG_ENTRY", "number"},
      {"idx_entry_incipit", "CATALOG_ENTRY", "incipit"},
      {"idx_annotation_xpos", "ANNOTATION", "xpos"},
  };
  for (const er::AttrIndexDef& def : defs) {
    if (db->FindAttrIndexByName(def.name) != nullptr) continue;
    MDM_RETURN_IF_ERROR(db->DefineIndex(def));
  }
  return Status::OK();
}

/// Restores normal index maintenance even when the load errors out
/// mid-way — a database left in bulk mode would silently stop
/// maintaining its indexes.
class BulkIndexScope {
 public:
  explicit BulkIndexScope(er::Database* db) : db_(db) {
    db_->BeginBulkIndexLoad();
  }
  ~BulkIndexScope() {
    if (db_ != nullptr) (void)db_->EndBulkIndexLoad();
  }
  /// Ends the scope explicitly so the success path can surface a
  /// rebuild failure instead of swallowing it in the destructor.
  Result<uint64_t> End() {
    er::Database* db = db_;
    db_ = nullptr;
    return db->EndBulkIndexLoad();
  }

 private:
  er::Database* db_;
};

/// One score's import = ONE er statement group = one WAL transaction
/// with a single (group-committable) fsync — the in-process analog of
/// Connection::ExecuteBatch, which the workload driver uses for the
/// same reason. Without this, every CreateEntity/SetAttribute inside
/// the DARMS importer auto-commits, and a journaled 10^6-note load
/// pays millions of syncs.
class ScoreBatchScope {
 public:
  explicit ScoreBatchScope(er::Database* db)
      : db_(db), latch_(db->latch()) {
    db_->BeginStatementGroup();
  }
  ~ScoreBatchScope() {
    if (!ended_) (void)db_->EndStatementGroup();
  }
  /// Commits the group, releases the latch, and waits for durability.
  Status Commit() {
    ended_ = true;
    Result<uint64_t> lsn = db_->EndStatementGroup();
    latch_.unlock();
    MDM_RETURN_IF_ERROR(lsn.status());
    return db_->WaitDurable(*lsn);
  }

 private:
  er::Database* db_;
  std::unique_lock<std::shared_mutex> latch_;
  bool ended_ = false;
};

}  // namespace

Result<Corpus> LoadCorpus(er::Database* db, const LoadOptions& options) {
  obs::Registry* reg = obs::Registry::Global();
  obs::Counter* scores_c = reg->GetCounter(
      "mdm_corpus_scores_total", "scores loaded by the corpus loader");
  obs::Counter* notes_c = reg->GetCounter(
      "mdm_corpus_notes_total", "notes loaded by the corpus loader");
  obs::Counter* measures_c = reg->GetCounter(
      "mdm_corpus_measures_total", "measures loaded by the corpus loader");
  obs::Gauge* progress_g = reg->GetGauge(
      "mdm_corpus_load_progress", "scores loaded in the current corpus load");

  MDM_RETURN_IF_ERROR(cmn::InstallCmnSchema(db));
  MDM_RETURN_IF_ERROR(biblio::InstallBiblioSchema(db));
  MDM_ASSIGN_OR_RETURN(EntityId catalog,
                       biblio::CreateCatalog(db, "MDM corpus", "MDM"));
  // Indexes are defined BEFORE the load; in bulk mode their per-insert
  // maintenance is suppressed and each tree is rebuilt once at the end,
  // so the default cost matches the old define-after-load shape while
  // also covering databases that already carry indexes.
  if (options.define_indexes) MDM_RETURN_IF_ERROR(DefineWorkloadIndexes(db));
  std::optional<BulkIndexScope> bulk;
  if (options.bulk_index_build) bulk.emplace(db);

  Corpus corpus;
  corpus.tenants.reserve(static_cast<size_t>(std::max(1, options.spec.scores)));
  progress_g->Set(0);

  for (int i = 0; i < std::max(1, options.spec.scores); ++i) {
    ScoreSpec spec = DeriveScoreSpec(options.spec, i);
    GeneratedScore gen = GenerateScore(spec);
    // One WAL transaction per score (see ScoreBatchScope).
    ScoreBatchScope batch(db);

    TenantModel model;
    model.tenant = i;
    model.title = StrFormat("score-%d", i);
    model.catalog_number = std::to_string(i);

    MDM_ASSIGN_OR_RETURN(darms::DarmsImport import,
                         darms::ImportDarms(db, gen.user_darms, model.title));
    // Make the tenant addressable from QUEL without entity ids: the
    // staff (and voice) carry the tenant number.
    MDM_RETURN_IF_ERROR(
        db->SetAttribute(import.staff, "number", Value::Int(i)));
    MDM_RETURN_IF_ERROR(
        db->SetAttribute(import.voice, "number", Value::Int(i)));

    // Read the notes back *through the database* (not from the items):
    // the model must agree with what the importer actually stored.
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> notes,
                         db->Children(cmn::kNoteOnStaff, import.staff));
    model.keys.reserve(notes.size());
    for (EntityId note : notes) {
      MDM_ASSIGN_OR_RETURN(Value key, db->GetAttribute(note, "midi_key"));
      MDM_ASSIGN_OR_RETURN(Value degree, db->GetAttribute(note, "degree"));
      if (key.is_null() || degree.is_null())
        return Internal(StrFormat("imported note %llu lacks midi_key/degree",
                                  static_cast<unsigned long long>(note)));
      int k = static_cast<int>(key.AsInt());
      model.keys.push_back(k);
      ++model.key_count[k];
      ++model.degree_hist[static_cast<int>(degree.AsInt())];
    }
    model.notes = static_cast<int>(model.keys.size());
    model.measures = import.measures;
    if (!model.keys.empty()) {
      auto [lo, hi] = std::minmax_element(model.keys.begin(), model.keys.end());
      model.min_key = *lo;
      model.max_key = *hi;
    }
    model.incipit.assign(
        model.keys.begin(),
        model.keys.begin() + std::min<size_t>(model.keys.size(), kIncipitKeys));
    model.incipit_text = JoinKeys(model.incipit);

    biblio::CatalogEntry entry;
    entry.number = model.catalog_number;
    entry.title = model.title;
    entry.setting = "solo";
    entry.measure_count = model.measures;
    entry.incipit = model.incipit;
    MDM_RETURN_IF_ERROR(biblio::AddEntry(db, catalog, entry).status());
    MDM_RETURN_IF_ERROR(batch.Commit());

    corpus.total_notes += model.notes;
    corpus.total_rests += import.rests;
    corpus.total_measures += model.measures;
    ++corpus.incipit_count[model.incipit_text];
    corpus.tenants.push_back(std::move(model));

    scores_c->Inc();
    notes_c->Inc(static_cast<uint64_t>(corpus.tenants.back().notes));
    measures_c->Inc(static_cast<uint64_t>(import.measures));
    progress_g->Set(i + 1);
    if (options.progress) options.progress(i + 1, corpus.total_notes);
  }

  // One rebuild per index, at full scale, instead of per-insert upkeep.
  if (bulk.has_value()) MDM_RETURN_IF_ERROR(bulk->End().status());
  return corpus;
}

}  // namespace mdm::corpus

#ifndef MDM_CORPUS_GENERATOR_H_
#define MDM_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "darms/darms.h"

namespace mdm::corpus {

/// Tunable distributions for one synthesized score. Every knob is a
/// probability or small integer so a CorpusSpec can jitter them per
/// score; the generated item stream always parses cleanly (the
/// round-trip property test in tests/corpus_test.cc holds over the
/// whole parameter space — see docs/WORKLOADS.md "Corpus knobs").
struct ScoreSpec {
  uint64_t seed = 1;
  /// Approximate note count; generation closes the final measure after
  /// reaching it, so actual counts overshoot by at most one measure.
  int target_notes = 1000;
  int meter_num = 4;
  int meter_den = 4;
  int key_sharps = 0;  // -7 (flats) .. +7 (sharps)
  char clef = 'G';     // 'G' | 'F' | 'C'
  double rest_prob = 0.08;        // rest instead of a note
  double accidental_prob = 0.06;  // explicit #/-/N on a note
  double dot_prob = 0.10;         // dotted duration (when it fits)
  double beam_prob = 0.35;        // an eighth/sixteenth run gets beamed
  double syllable_prob = 0.05;    // attached ,@syllable$
  double annotation_prob = 0.02;  // standalone @annotation$ per measure
  int max_step = 4;  // melodic random-walk step, in staff degrees
};

/// One synthesized score: the DARMS item stream plus its two encodings.
/// `user_darms` (durations elided, short space codes) is what the
/// loader feeds the importer — the compact form a copyist would type —
/// so corpus loading exercises the carried-duration parser paths.
struct GeneratedScore {
  std::vector<darms::DarmsItem> items;
  std::string user_darms;
  std::string canonical_darms;
  int notes = 0;
  int rests = 0;
  int measures = 0;
};

/// Synthesizes a statistically plausible single-voice DARMS score:
/// clef/key/meter header, a bounded melodic random walk over staff
/// degrees, durations drawn to exactly fill each measure, beamed
/// eighth-note runs, rests, syllables and annotations per the spec's
/// distributions. Deterministic in spec.seed.
GeneratedScore GenerateScore(const ScoreSpec& spec);

/// Corpus-level shape: how many scores, how many notes in total, and
/// how much the per-score specs vary around the defaults.
struct CorpusSpec {
  uint64_t seed = 42;
  int scores = 1000;
  /// Total notes across all scores; per-score targets are jittered
  /// ±40% around target_total_notes/scores.
  int64_t target_total_notes = 1'000'000;
};

/// The derived spec for score `index` (0-based): seeded from the corpus
/// seed, with per-score key/clef/meter/density variation.
ScoreSpec DeriveScoreSpec(const CorpusSpec& corpus, int index);

}  // namespace mdm::corpus

#endif  // MDM_CORPUS_GENERATOR_H_

#include "net/retry.h"

#include <algorithm>

namespace mdm::net {

uint32_t RetrySchedule::NextBackoffMs() {
  uint64_t lo = policy_.initial_backoff_ms;
  uint64_t hi = std::max<uint64_t>(lo, 3 * static_cast<uint64_t>(prev_ms_));
  uint64_t pick = lo + (hi > lo ? rng_.Uniform(hi - lo + 1) : 0);
  pick = std::min<uint64_t>(pick, policy_.max_backoff_ms);
  prev_ms_ = static_cast<uint32_t>(pick);
  return prev_ms_;
}

uint64_t DeadlineBudget::remaining_ms() const {
  if (unlimited()) return UINT64_MAX;
  uint64_t spent = elapsed_ms();
  return spent >= deadline_ms_ ? 0 : deadline_ms_ - spent;
}

}  // namespace mdm::net

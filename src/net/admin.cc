#include "net/admin.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdm::net {

namespace {

/// Accept loop poll cadence: bounds Stop() latency only.
constexpr int kPollMs = 100;
/// A GET request line + headers comfortably fits; anything longer is a
/// client we do not want to serve.
constexpr size_t kMaxRequestBytes = 8 * 1024;
/// HttpGet response cap — /metrics and trace JSON are tens of KB, a
/// response beyond this means something is wrong on the other end.
constexpr size_t kMaxResponseBytes = 8 * 1024 * 1024;

void JsonEscapeTo(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

const char* ReasonPhrase(int http_status) {
  switch (http_status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

}  // namespace

AdminServer::AdminServer(Server* server, AdminOptions opts)
    : server_(server), opts_(std::move(opts)) {}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  if (started_.exchange(true))
    return FailedPrecondition("admin server already started");
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* addrs = nullptr;
  std::string port_str = std::to_string(opts_.port);
  int rc =
      ::getaddrinfo(opts_.host.c_str(), port_str.c_str(), &hints, &addrs);
  if (rc != 0)
    return Unavailable("cannot resolve " + opts_.host + ": " +
                       gai_strerror(rc));
  Status last = Unavailable("no addresses for " + opts_.host);
  for (struct addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0 &&
        ::listen(fd, 16) == 0) {
      listen_fd_ = fd;
      break;
    }
    last = Unavailable("cannot bind admin " + opts_.host + ":" + port_str +
                       ": " + std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  if (listen_fd_ < 0) return last;

  struct sockaddr_storage bound = {};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &len) == 0) {
    if (bound.ss_family == AF_INET) {
      port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      port_ =
          ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AdminServer::Stop() {
  if (!started_.load() || stop_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, kPollMs);
    if (pr <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ServeOne(fd);
  }
}

void AdminServer::ServeOne(int fd) {
  std::unique_ptr<Transport> t = opts_.transport_factory
                                     ? opts_.transport_factory(fd)
                                     : std::make_unique<TcpTransport>(fd);
  if (opts_.io_timeout_ms != 0) {
    (void)t->SetRecvTimeout(opts_.io_timeout_ms);
    (void)t->SetSendTimeout(opts_.io_timeout_ms);
  }
  // Read until the end-of-headers blank line; HTTP GETs have no body.
  std::string head;
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() >= kMaxRequestBytes) {
      t->Close();
      return;
    }
    uint8_t buf[1024];
    Result<size_t> n = t->Recv(buf, sizeof(buf));
    if (!n.ok() || *n == 0) {
      t->Close();
      return;
    }
    head.append(reinterpret_cast<char*>(buf), *n);
  }

  int http_status = 400;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body = "bad request\n";
  size_t line_end = head.find("\r\n");
  std::string request_line = head.substr(0, line_end);
  // "GET /path HTTP/1.x" — split on the two spaces.
  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 != std::string::npos && sp2 != std::string::npos) {
    std::string method = request_line.substr(0, sp1);
    std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (method != "GET") {
      http_status = 405;
      body = "only GET is served here\n";
    } else {
      Route(target, &http_status, &content_type, &body);
    }
  }

  std::string resp;
  resp.reserve(body.size() + 128);
  AppendF(&resp, "HTTP/1.0 %d %s\r\n", http_status,
          ReasonPhrase(http_status));
  resp += "Content-Type: " + content_type + "\r\n";
  AppendF(&resp, "Content-Length: %zu\r\n", body.size());
  resp += "Connection: close\r\n\r\n";
  resp += body;
  (void)t->Send(reinterpret_cast<const uint8_t*>(resp.data()), resp.size());
  t->Close();
  requests_.fetch_add(1, std::memory_order_relaxed);
}

void AdminServer::Route(const std::string& target, int* http_status,
                        std::string* content_type, std::string* body) const {
  // Ignore any query string: scrapers append ?format= etc.
  std::string path = target.substr(0, target.find('?'));
  *http_status = 200;
  if (path == "/healthz") {
    *body = "ok\n";
    return;
  }
  if (path == "/metrics") {
    // Prometheus text exposition 0.0.4 (the version=... parameter is
    // what scrapers sniff).
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    *body = obs::RenderPrometheusText();
    return;
  }
  if (path == "/statusz") {
    *content_type = "application/json";
    *body = RenderStatusz();
    return;
  }
  if (path == "/traces") {
    *content_type = "application/json";
    std::string out = "{\"traces\":[";
    bool first = true;
    for (uint64_t id : obs::TraceRing::Global()->RecentIds()) {
      if (!first) out += ",";
      first = false;
      out += "\"" + obs::FormatTraceId(id) + "\"";
    }
    out += "]}\n";
    *body = std::move(out);
    return;
  }
  constexpr size_t kTracePrefixLen = 8;  // "/traces/"
  if (path.compare(0, kTracePrefixLen, "/traces/") == 0) {
    uint64_t id = 0;
    if (!obs::ParseTraceId(path.substr(kTracePrefixLen), &id)) {
      *http_status = 400;
      *body = "malformed trace id (want 16 hex digits)\n";
      return;
    }
    std::shared_ptr<const obs::Trace> trace =
        obs::TraceRing::Global()->Find(id);
    if (trace == nullptr) {
      *http_status = 404;
      *body = "no such trace (the ring holds the most recent " +
              std::to_string(obs::TraceRing::kDefaultCapacity) +
              " sampled traces)\n";
      return;
    }
    *content_type = "application/json";
    *body = obs::RenderTraceEventJson(*trace);
    return;
  }
  *http_status = 404;
  *body = "no such route; try /metrics /healthz /statusz /traces\n";
}

std::string AdminServer::RenderStatusz() const {
  std::string out = "{";
  if (server_ != nullptr) {
    AppendF(&out, "\"uptime_ms\":%llu,",
            static_cast<unsigned long long>(server_->uptime_ms()));
    AppendF(&out, "\"active_connections\":%zu,",
            server_->active_connections());
    AppendF(&out, "\"active_statements\":%zu,",
            server_->active_statements());
    AppendF(&out, "\"requests_total\":%llu,",
            static_cast<unsigned long long>(server_->requests_served()));
    AppendF(&out, "\"shed_total\":%llu,",
            static_cast<unsigned long long>(server_->shed_requests()));
    AppendF(&out, "\"reaped_total\":%llu,",
            static_cast<unsigned long long>(server_->reaped_connections()));
  }
  // net.request latency percentiles from the span histogram the server
  // already maintains — the HistogramPercentile estimate is plenty for
  // a status page (docs/OBSERVABILITY.md "Percentiles").
  obs::Histogram* h = obs::Registry::Global()->GetHistogram(
      "mdm_span_duration_ns{span=\"net.request\"}",
      "Inclusive span latency in nanoseconds");
  AppendF(&out,
          "\"net_request_latency_ns\":{\"count\":%llu,\"p50\":%.0f,"
          "\"p90\":%.0f,\"p99\":%.0f},",
          static_cast<unsigned long long>(h->count()),
          obs::HistogramPercentile(*h, 0.50),
          obs::HistogramPercentile(*h, 0.90),
          obs::HistogramPercentile(*h, 0.99));
  AppendF(&out, "\"traces_held\":%zu,", obs::TraceRing::Global()->size());
  out += "\"connections\":[";
  if (server_ != nullptr) {
    bool first = true;
    for (const ConnectionStatus& cs : server_->ConnectionStatuses()) {
      if (!first) out += ",";
      first = false;
      AppendF(&out, "{\"id\":%llu,\"peer\":\"",
              static_cast<unsigned long long>(cs.id));
      JsonEscapeTo(&out, cs.peer);
      AppendF(&out, "\",\"age_ms\":%llu,\"requests\":%llu,",
              static_cast<unsigned long long>(cs.age_ms),
              static_cast<unsigned long long>(cs.requests));
      out += cs.executing ? "\"executing\":true,\"statement\":\""
                          : "\"executing\":false,\"statement\":\"";
      JsonEscapeTo(&out, cs.statement);
      AppendF(&out, "\",\"statement_age_ms\":%llu}",
              static_cast<unsigned long long>(cs.statement_age_ms));
    }
  }
  out += "]}\n";
  return out;
}

Result<std::string> HttpGet(const std::string& host, uint16_t port,
                            const std::string& path, uint32_t timeout_ms) {
  Result<std::unique_ptr<Transport>> t =
      DialTcpTransport(host, port, timeout_ms);
  if (!t.ok()) return t.status();
  if (timeout_ms != 0) {
    (void)(*t)->SetRecvTimeout(timeout_ms);
    (void)(*t)->SetSendTimeout(timeout_ms);
  }
  std::string req =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  Status s =
      (*t)->Send(reinterpret_cast<const uint8_t*>(req.data()), req.size());
  if (!s.ok()) return s;
  std::string resp;
  for (;;) {
    if (resp.size() >= kMaxResponseBytes)
      return ResourceExhausted("admin response exceeds " +
                               std::to_string(kMaxResponseBytes) + " bytes");
    uint8_t buf[4096];
    Result<size_t> n = (*t)->Recv(buf, sizeof(buf));
    if (!n.ok()) return n.status();
    if (*n == 0) break;  // orderly EOF: HTTP/1.0 end of response
    resp.append(reinterpret_cast<char*>(buf), *n);
  }
  (*t)->Close();
  size_t line_end = resp.find("\r\n");
  size_t head_end = resp.find("\r\n\r\n");
  if (line_end == std::string::npos || head_end == std::string::npos)
    return Unavailable("malformed HTTP response from admin endpoint");
  std::string status_line = resp.substr(0, line_end);
  // "HTTP/1.0 200 OK" — the code is the second token.
  size_t sp = status_line.find(' ');
  int code = sp == std::string::npos
                 ? 0
                 : std::atoi(status_line.c_str() + sp + 1);
  std::string http_body = resp.substr(head_end + 4);
  if (code == 200) return http_body;
  if (code == 404) return Status(NotFound(http_body));
  return Status(
      Internal("admin endpoint returned HTTP " + std::to_string(code) +
               ": " + http_body));
}

}  // namespace mdm::net

#ifndef MDM_NET_CONNECTION_H_
#define MDM_NET_CONNECTION_H_

#include <cstdint>
#include <memory>
#include <string>

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "er/database.h"
#include "net/client.h"
#include "net/exec_options.h"
#include "quel/quel.h"

namespace mdm {

/// The one public client API to the music data manager: issue DDL/QUEL
/// scripts and read ResultSets through the same interface whether the
/// database lives in this process or behind an mdmd server.
///
///   auto conn = mdm::Connection::Local();                 // in-process
///   auto conn = mdm::Connection::Remote("127.0.0.1:7707");// over TCP
///   auto rs = conn.Execute("retrieve (NOTE.name)");
///
/// Execute accepts both languages: scripts starting with `define` or
/// `destroy` run through the DDL layer (the result is a one-row summary
/// of what was defined/destroyed — entity types, relationships,
/// orderings, and secondary indexes); everything else is QUEL. Errors
/// carry a canonical common::ErrorCode either way — remote errors
/// arrive code-intact over the wire (docs/PROTOCOL.md). This class plus
/// the DDL/QUEL string surface IS the public API (DESIGN.md §"Public
/// API"); raw QuelSession/ExecuteDdl use is internal.
///
/// Thread safety matches the underlying session: a Connection is a
/// single client and is not itself thread-safe; create one per thread.
/// Local connections may share one er::Database freely (the PR 4
/// locking stack serializes them); remote connections are independent
/// sockets against a shared server.
class Connection {
 public:
  /// In-process connection owning a fresh empty database.
  static Connection Local();
  /// In-process connection onto an existing database (not owned); the
  /// database must outlive the Connection.
  static Connection Local(er::Database* db);
  /// TCP connection to an mdmd server.
  static Result<Connection> Remote(const std::string& host, uint16_t port,
                                   net::ClientOptions opts = {});
  /// Convenience: "host:port" in one string (mdmsh --connect form).
  static Result<Connection> Remote(const std::string& endpoint,
                                   net::ClientOptions opts = {});

  Connection(Connection&&) noexcept = default;
  Connection& operator=(Connection&&) noexcept = default;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Executes one DDL or QUEL script, local or remote. `opts` overrides
  /// the connection-wide defaults (deadline, trace sampling, retry
  /// policy) for this call only; a default-constructed ExecOptions
  /// keeps the old single-argument behavior exactly. Local connections
  /// execute inline, so deadline_ms and retry are remote-only knobs.
  Result<quel::ResultSet> Execute(const std::string& script,
                                  const ExecOptions& opts = {});

  /// Executes N scripts as ONE batch — the bulk write surface. All
  /// statements run back-to-back under a single exclusive database
  /// latch acquisition and commit as ONE WAL transaction with one
  /// group-committed fsync; remotely the whole batch is one network
  /// round trip (wire protocol v4). Execution stops at the first
  /// failing statement (its outcome is the last entry in
  /// BatchResult::statements); crash recovery replays the batch
  /// all-or-nothing. Identical semantics over Local() and Remote().
  Result<BatchResult> ExecuteBatch(const std::vector<std::string>& scripts,
                                   const ExecOptions& opts = {});

  /// Liveness probe: trivially OK locally, ping/pong remotely.
  Status Ping();

  bool is_remote() const { return client_ != nullptr; }
  /// The in-process database, or nullptr on a remote connection.
  /// Local-only tooling (mdmsh \schema, \save, ...) gates on this.
  er::Database* local_db() const { return db_; }
  /// Per-session execution counters (local connections only; remote
  /// statistics live on the server's obs registry).
  quel::ExecStats local_stats() const {
    return session_ ? session_->stats() : quel::ExecStats{};
  }
  /// The in-process QUEL session, or nullptr on a remote connection.
  /// For tooling/tests that need session-level knobs (ExecuteNaive
  /// ablations, ClearParseCache, ResetStats) — not part of the public
  /// client surface.
  quel::QuelSession* local_session() const { return session_.get(); }

  /// Local connections only: wrap every subsequent Execute in an
  /// always-sampled obs::TraceContext with seeded ids, so `\trace last`
  /// works without a server (the ids land in TraceRing::Global()).
  /// Remote connections trace via ClientOptions::trace_sample_rate
  /// instead; this is a no-op there.
  void EnableLocalTracing(uint64_t seed);

  /// The trace id stamped on the most recent Execute (0 before the
  /// first one, or when tracing is off). Remote: the id sent on the
  /// wire. Local: the id of the trace published to the local ring.
  uint64_t last_trace_id() const;
  /// Whether the most recent Execute was sampled.
  bool last_trace_sampled() const;

 private:
  Connection() = default;

  std::unique_ptr<er::Database> owned_db_;
  er::Database* db_ = nullptr;               // set iff local
  std::unique_ptr<quel::QuelSession> session_;
  std::unique_ptr<net::Client> client_;      // set iff remote
  std::unique_ptr<Rng> local_trace_rng_;     // set iff local tracing on
  uint64_t local_last_trace_id_ = 0;
};

/// The shared local execution path used by Connection::Execute and by
/// the mdmd server for each request: dispatches `script` to the DDL
/// layer (leading keyword `define` or `destroy`) or to `session`.
/// Because the server routes through here, every DDL form — including
/// index DDL — behaves identically over Local() and Remote().
Result<quel::ResultSet> RunScript(er::Database* db,
                                  quel::QuelSession* session,
                                  const std::string& script);

/// The shared batch execution core used by Connection::ExecuteBatch
/// (local) and by the mdmd server for each kBatchExecuteRequest: takes
/// the exclusive latch ONCE, opens one er statement group, dispatches
/// each script (DDL or QUEL) pre-locked, stops at the first failure,
/// commits the group as one WAL transaction, and waits for durability
/// after the latch is released. Returns a non-OK Result only for
/// commit/fsync-level failures; per-statement errors land in
/// BatchResult::statements.
Result<BatchResult> RunBatch(er::Database* db, quel::QuelSession* session,
                             const std::vector<std::string>& scripts);

}  // namespace mdm

#endif  // MDM_NET_CONNECTION_H_

#include "net/transport.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "net/client.h"

namespace mdm::net {

namespace {

bool IsTimeout(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT;
}

Status SetSocketTimeout(int fd, int which, uint32_t ms) {
  if (fd < 0) return Unavailable("transport is closed");
  struct timeval tv = {};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv)) < 0)
    return Unavailable(std::string("setsockopt failed: ") +
                       std::strerror(errno));
  return Status::OK();
}

}  // namespace

TcpTransport::~TcpTransport() {
  if (owns_fd_) Close();
}

void TcpTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpTransport::Send(const uint8_t* data, size_t n) {
  if (fd_ < 0) return Unavailable("transport is closed");
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE, never a process signal —
    // a client closing mid-page must not be able to kill mdmd.
    ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (IsTimeout(errno))
        return DeadlineExceeded("send timed out (" + std::to_string(sent) +
                                "/" + std::to_string(n) + " bytes)");
      return Unavailable(std::string("send failed: ") +
                         std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<size_t> TcpTransport::Recv(uint8_t* buf, size_t n) {
  if (fd_ < 0) return Unavailable("transport is closed");
  for (;;) {
    ssize_t r = ::recv(fd_, buf, n, 0);
    if (r >= 0) return static_cast<size_t>(r);
    if (errno == EINTR) continue;
    if (IsTimeout(errno))
      return DeadlineExceeded("recv timed out");
    return Unavailable(std::string("recv failed: ") + std::strerror(errno));
  }
}

Status TcpTransport::SetRecvTimeout(uint32_t ms) {
  return SetSocketTimeout(fd_, SO_RCVTIMEO, ms);
}

Status TcpTransport::SetSendTimeout(uint32_t ms) {
  return SetSocketTimeout(fd_, SO_SNDTIMEO, ms);
}

Result<std::unique_ptr<Transport>> DialTcpTransport(const std::string& host,
                                                    uint16_t port,
                                                    uint32_t timeout_ms) {
  MDM_ASSIGN_OR_RETURN(int fd, DialTcp(host, port, timeout_ms));
  return std::unique_ptr<Transport>(new TcpTransport(fd));
}

// ---------------------------------------------------------------------
// FaultInjectingTransport

namespace {

/// Process-wide injection tallies (relaxed atomics; the per-instance
/// Stats stay exact per transport).
struct GlobalStats {
  std::atomic<uint64_t> sends{0}, recvs{0}, delays{0}, corruptions{0},
      truncations{0}, short_writes{0}, short_reads{0}, closes{0}, drops{0},
      errors{0};
};

GlobalStats* Globals() {
  static GlobalStats g;
  return &g;
}

}  // namespace

FaultInjectingTransport::Stats FaultInjectingTransport::ProcessStats() {
  GlobalStats* g = Globals();
  Stats s;
  s.sends = g->sends.load(std::memory_order_relaxed);
  s.recvs = g->recvs.load(std::memory_order_relaxed);
  s.delays = g->delays.load(std::memory_order_relaxed);
  s.corruptions = g->corruptions.load(std::memory_order_relaxed);
  s.truncations = g->truncations.load(std::memory_order_relaxed);
  s.short_writes = g->short_writes.load(std::memory_order_relaxed);
  s.short_reads = g->short_reads.load(std::memory_order_relaxed);
  s.closes = g->closes.load(std::memory_order_relaxed);
  s.drops = g->drops.load(std::memory_order_relaxed);
  s.errors = g->errors.load(std::memory_order_relaxed);
  return s;
}

void FaultInjectingTransport::ResetProcessStats() {
  GlobalStats* g = Globals();
  g->sends = g->recvs = g->delays = g->corruptions = g->truncations =
      g->short_writes = g->short_reads = g->closes = g->drops = g->errors = 0;
}

FaultKind FaultInjectingTransport::DrawKind(bool is_send) {
  struct Entry {
    uint32_t weight;
    FaultKind kind;
  };
  const Entry entries[] = {
      {plan_.w_delay, FaultKind::kDelay},
      {plan_.w_corrupt, FaultKind::kCorrupt},
      {plan_.w_truncate, FaultKind::kTornWrite},
      {is_send ? plan_.w_short_write : plan_.w_short_read,
       FaultKind::kShortWrite},
      {plan_.w_close, FaultKind::kDisconnect},
      // Dropping received bytes cannot be simulated from this side of
      // the stream, so on the recv path the drop weight becomes a
      // short read.
      {plan_.w_drop, is_send ? FaultKind::kDrop : FaultKind::kShortWrite},
  };
  uint64_t total = 0;
  for (const Entry& e : entries) total += e.weight;
  if (total == 0) return FaultKind::kNone;
  uint64_t pick = rng_.Uniform(total);
  for (const Entry& e : entries) {
    if (pick < e.weight) return e.kind;
    pick -= e.weight;
  }
  return FaultKind::kNone;
}

FaultDecision FaultInjectingTransport::Decide(bool is_send) {
  ++op_count_;
  // The process-global failpoint registry reaches socket I/O here: the
  // same FailNth / FailWithProbability / ArmPowerCutAtIo machinery the
  // storage fault sweeps use (common/failpoint.h).
  FaultDecision d = fps_->Eval(is_send ? "net.send" : "net.recv");
  if (d.fired()) return d;
  if (fail_at_op_ != 0 && op_count_ == fail_at_op_)
    return {fail_kind_, 0.5, plan_.delay_ms};
  if (plan_.p_fault > 0.0 && rng_.Bernoulli(plan_.p_fault))
    return {DrawKind(is_send), 0.5, plan_.delay_ms};
  return {};
}

void FaultInjectingTransport::Count(FaultKind kind) {
  GlobalStats* g = Globals();
  switch (kind) {
    case FaultKind::kDelay:
      ++stats_.delays;
      g->delays.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kCorrupt:
      ++stats_.corruptions;
      g->corruptions.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kTornWrite:
      ++stats_.truncations;
      g->truncations.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kDisconnect:
    case FaultKind::kPowerCut:
      ++stats_.closes;
      g->closes.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kDrop:
      ++stats_.drops;
      g->drops.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kError:
      ++stats_.errors;
      g->errors.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

Status FaultInjectingTransport::Send(const uint8_t* data, size_t n) {
  ++stats_.sends;
  Globals()->sends.fetch_add(1, std::memory_order_relaxed);
  FaultDecision d = Decide(/*is_send=*/true);
  switch (d.kind) {
    case FaultKind::kNone:
      return base_->Send(data, n);
    case FaultKind::kDelay:
      Count(d.kind);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(d.delay_ms != 0 ? d.delay_ms
                                                    : plan_.delay_ms));
      return base_->Send(data, n);
    case FaultKind::kCorrupt: {
      Count(d.kind);
      if (n == 0) return base_->Send(data, n);
      std::vector<uint8_t> mangled(data, data + n);
      mangled[rng_.Uniform(n)] ^= 0xFF;
      return base_->Send(mangled.data(), mangled.size());
    }
    case FaultKind::kTornWrite: {
      // Silent truncation mid-frame: a prefix reaches the wire, the
      // connection dies, and the call still reports success — the peer
      // discovers the tear as a short read / bad frame.
      Count(d.kind);
      size_t keep = static_cast<size_t>(static_cast<double>(n) *
                                        d.keep_fraction);
      if (keep > 0) (void)base_->Send(data, keep);
      base_->Close();
      return Status::OK();
    }
    case FaultKind::kShortWrite: {
      ++stats_.short_writes;
      Globals()->short_writes.fetch_add(1, std::memory_order_relaxed);
      size_t keep = static_cast<size_t>(static_cast<double>(n) *
                                        d.keep_fraction);
      if (keep > 0) (void)base_->Send(data, keep);
      return Unavailable("injected short write (" + std::to_string(keep) +
                         "/" + std::to_string(n) + " bytes)");
    }
    case FaultKind::kDrop:
      // The bytes vanish but the call reports success: the peer never
      // sees the frame and the caller only learns via its deadline.
      Count(d.kind);
      return Status::OK();
    case FaultKind::kDisconnect:
    case FaultKind::kPowerCut:
      Count(d.kind);
      base_->Close();
      return Unavailable("injected disconnect before send");
    case FaultKind::kError:
      Count(d.kind);
      return Unavailable("injected send error");
  }
  return base_->Send(data, n);
}

Result<size_t> FaultInjectingTransport::Recv(uint8_t* buf, size_t n) {
  ++stats_.recvs;
  Globals()->recvs.fetch_add(1, std::memory_order_relaxed);
  FaultDecision d = Decide(/*is_send=*/false);
  FaultKind kind = d.kind == FaultKind::kDrop ? FaultKind::kShortWrite
                                              : d.kind;
  switch (kind) {
    case FaultKind::kNone:
      return base_->Recv(buf, n);
    case FaultKind::kDelay:
      Count(kind);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(d.delay_ms != 0 ? d.delay_ms
                                                    : plan_.delay_ms));
      return base_->Recv(buf, n);
    case FaultKind::kCorrupt: {
      Count(kind);
      Result<size_t> got = base_->Recv(buf, n);
      if (got.ok() && *got > 0) buf[rng_.Uniform(*got)] ^= 0xFF;
      return got;
    }
    case FaultKind::kTornWrite: {
      // The response truncates mid-frame: deliver a prefix of whatever
      // arrived, then lose the connection.
      Count(kind);
      Result<size_t> got = base_->Recv(buf, n);
      base_->Close();
      if (!got.ok()) return got;
      return static_cast<size_t>(static_cast<double>(*got) *
                                 d.keep_fraction);
    }
    case FaultKind::kShortWrite: {
      // Short read: fewer bytes than asked, stream intact. Exercises
      // the reassembly loops (ReadFully) rather than failing anything.
      ++stats_.short_reads;
      Globals()->short_reads.fetch_add(1, std::memory_order_relaxed);
      size_t m = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(n) * d.keep_fraction));
      return base_->Recv(buf, std::min(n, m));
    }
    case FaultKind::kDisconnect:
    case FaultKind::kPowerCut:
      Count(kind);
      base_->Close();
      return Unavailable("injected disconnect before recv");
    case FaultKind::kError:
      Count(kind);
      return Unavailable("injected recv error");
    default:
      break;
  }
  return base_->Recv(buf, n);
}

}  // namespace mdm::net

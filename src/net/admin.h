#ifndef MDM_NET_ADMIN_H_
#define MDM_NET_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "net/server.h"
#include "net/transport.h"

namespace mdm::net {

struct AdminOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back via port().
  uint16_t port = 0;
  /// One admin request must complete its recv and its send within this
  /// bound each — the endpoint serves requests inline on its accept
  /// thread, so a stalled scraper must not wedge it (0 = no bound).
  uint32_t io_timeout_ms = 1'000;
  /// Wraps each accepted socket; null uses plain TcpTransport. The same
  /// chaos seam the data port has, so fault sweeps can hit /metrics too.
  ServerTransportFactory transport_factory;
};

/// mdmd's admin/telemetry endpoint: a deliberately minimal HTTP/1.0
/// listener (GET only, one request per connection, Connection: close)
/// so `curl` and a Prometheus scraper work against it without pulling
/// an HTTP library into the tree. Routes (docs/OBSERVABILITY.md):
///
///   GET /metrics      Prometheus text exposition of the global registry
///   GET /healthz      "ok" once accepting — a liveness probe
///   GET /statusz      JSON: uptime, request/shed/reap totals, net.request
///                     latency percentiles, per-connection status table
///   GET /traces       JSON list of trace ids in the ring, newest first
///   GET /traces/<id>  Chrome trace_event JSON for that trace (16-hex id)
///
/// Serving is inline on the accept thread: admin traffic is a scraper
/// every few seconds, not a request stream, and the io timeout bounds
/// how long one slow client can hold the thread.
class AdminServer {
 public:
  /// `server` supplies the /statusz live data; may be null (a bare
  /// metrics endpoint), in which case /statusz reports only the
  /// registry-independent fields it can compute alone.
  explicit AdminServer(Server* server, AdminOptions opts = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  Status Start();
  void Stop();

  /// The bound port (after Start; resolves port 0 to the real one).
  uint16_t port() const { return port_; }
  /// HTTP requests answered (any status), for tests.
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeOne(int fd);
  /// Routes a request target to (status, content-type, body).
  void Route(const std::string& target, int* http_status,
             std::string* content_type, std::string* body) const;
  std::string RenderStatusz() const;

  Server* server_;
  AdminOptions opts_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread accept_thread_;
};

/// Minimal HTTP/1.0 GET, the client side of AdminServer: connects,
/// sends the request, reads to EOF, returns the response body. Maps
/// HTTP status onto Status: 200 -> OK, 404 -> NotFound, anything else
/// -> Internal (body in the message). mdmsh's \metrics/\statusz/\trace
/// use it; tests hit the endpoint through it.
Result<std::string> HttpGet(const std::string& host, uint16_t port,
                            const std::string& path, uint32_t timeout_ms);

}  // namespace mdm::net

#endif  // MDM_NET_ADMIN_H_

#ifndef MDM_NET_RETRY_H_
#define MDM_NET_RETRY_H_

#include <chrono>
#include <cstdint>

#include "common/random.h"

namespace mdm::net {

/// Client-side retry discipline for idempotent reads against mdmd.
///
/// Execute retries only transport-level UNAVAILABLE / CORRUPTION
/// failures of scripts IsIdempotentScript accepts, sleeping an
/// exponential backoff with *decorrelated jitter* between attempts:
///
///   backoff[0] = uniform(initial, 3 * initial)
///   backoff[k] = min(max_backoff, uniform(initial, 3 * backoff[k-1]))
///
/// The jitter stream is fully determined by `jitter_seed` (common Rng),
/// so a chaos run's retry timeline replays exactly from its seed.
///
/// Retries never overrun the request's deadline: the total budget is
/// `deadline_ms` (when non-zero), and a retry is attempted only if the
/// elapsed time plus the next backoff still fits (DeadlineBudget). On
/// exhaustion the caller sees a typed status: DEADLINE_EXCEEDED when
/// the deadline ran out, UNAVAILABLE when max_attempts did.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries entirely.
  int max_attempts = 3;
  uint32_t initial_backoff_ms = 5;
  uint32_t max_backoff_ms = 1000;
  /// Seed for the decorrelated jitter stream. Fixed default keeps unit
  /// tests and chaos replays deterministic; long-lived fleets may mix
  /// in a per-client value to avoid synchronized retry storms.
  uint64_t jitter_seed = 0x6D646D72u;  // "mdmr"

  /// Convenience: a policy that never retries.
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// Deterministic backoff sequence generator for one request's retry
/// loop. Exposed separately from Client so tests can pin the exact
/// sequence a seed produces.
class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy)
      : policy_(policy),
        rng_(policy.jitter_seed),
        prev_ms_(policy.initial_backoff_ms) {}

  /// The next decorrelated-jitter backoff, in milliseconds.
  uint32_t NextBackoffMs();

 private:
  RetryPolicy policy_;
  Rng rng_;
  uint32_t prev_ms_;
};

/// Tracks one request's total time budget so the retry loop can prove
/// it never sleeps (or dials) past the caller's deadline.
class DeadlineBudget {
 public:
  /// `deadline_ms` = 0 means unlimited (the server's default deadline
  /// still bounds execution remotely).
  explicit DeadlineBudget(uint32_t deadline_ms)
      : deadline_ms_(deadline_ms),
        t0_(std::chrono::steady_clock::now()) {}

  bool unlimited() const { return deadline_ms_ == 0; }

  uint64_t elapsed_ms() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  /// Milliseconds left before the deadline (saturating at 0); a very
  /// large value when unlimited.
  uint64_t remaining_ms() const;

  bool exhausted() const { return !unlimited() && remaining_ms() == 0; }

  /// Whether sleeping `backoff_ms` and then doing any work at all still
  /// fits in the budget (strict: the backoff must leave time over).
  bool CanAfford(uint32_t backoff_ms) const {
    return unlimited() || remaining_ms() > backoff_ms;
  }

 private:
  uint32_t deadline_ms_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace mdm::net

#endif  // MDM_NET_RETRY_H_

#include "net/server.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/connection.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace mdm::net {

namespace {

/// Connection threads and the accept loop wake at this cadence to
/// notice Stop(); it bounds drain latency, not request latency.
constexpr int kPollMs = 100;

uint64_t ElapsedMs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Numeric "ip:port" of the connected peer, for /statusz attribution.
std::string PeerString(int fd) {
  struct sockaddr_storage ss = {};
  socklen_t len = sizeof(ss);
  if (::getpeername(fd, reinterpret_cast<struct sockaddr*>(&ss), &len) != 0)
    return "?";
  char host[NI_MAXHOST];
  char serv[NI_MAXSERV];
  if (::getnameinfo(reinterpret_cast<struct sockaddr*>(&ss), len, host,
                    sizeof(host), serv, sizeof(serv),
                    NI_NUMERICHOST | NI_NUMERICSERV) != 0)
    return "?";
  return std::string(host) + ":" + serv;
}

}  // namespace

Server::Server(er::Database* db, ServerOptions opts)
    : db_(db),
      opts_(std::move(opts)),
      requests_total_(obs::Registry::Global()->GetCounter(
          "mdm_net_requests_total", "Execute requests answered by mdmd")),
      rejected_total_(obs::Registry::Global()->GetCounter(
          "mdm_net_rejected_total",
          "Connections rejected at the admission limit")),
      bytes_in_total_(obs::Registry::Global()->GetCounter(
          "mdm_net_bytes_in_total", "Frame bytes received by mdmd")),
      bytes_out_total_(obs::Registry::Global()->GetCounter(
          "mdm_net_bytes_out_total", "Frame bytes sent by mdmd")),
      active_connections_(obs::Registry::Global()->GetGauge(
          "mdm_net_active_connections", "Currently serving connections")),
      request_span_duration_(obs::Registry::Global()->GetHistogram(
          "mdm_span_duration_ns{span=\"net.request\"}",
          "Inclusive span latency in nanoseconds")),
      request_span_self_(obs::Registry::Global()->GetCounter(
          "mdm_span_self_ns_total{span=\"net.request\"}",
          "Span latency excluding child spans")),
      shed_total_(obs::Registry::Global()->GetCounter(
          "mdm_net_shed_total",
          "Execute requests answered UNAVAILABLE by the load shedder")),
      reaped_idle_total_(obs::Registry::Global()->GetCounter(
          "mdm_net_reaped_idle_total",
          "Connections dropped by the idle reaper")),
      handshake_timeouts_total_(obs::Registry::Global()->GetCounter(
          "mdm_net_handshake_timeouts_total",
          "Connections dropped for a slow handshake or a mid-frame stall")),
      write_timeouts_total_(obs::Registry::Global()->GetCounter(
          "mdm_net_write_timeouts_total",
          "Connections dropped because the peer stopped reading")) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true))
    return FailedPrecondition("server already started");
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* addrs = nullptr;
  std::string port_str = std::to_string(opts_.port);
  int rc = ::getaddrinfo(opts_.host.c_str(), port_str.c_str(), &hints,
                         &addrs);
  if (rc != 0)
    return Unavailable("cannot resolve " + opts_.host + ": " +
                       gai_strerror(rc));
  Status last = Unavailable("no addresses for " + opts_.host);
  for (struct addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0 &&
        ::listen(fd, 128) == 0) {
      listen_fd_ = fd;
      break;
    }
    last = Unavailable("cannot bind " + opts_.host + ":" + port_str + ": " +
                       std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  if (listen_fd_ < 0) return last;

  // Resolve the bound port (meaningful when opts_.port was 0).
  struct sockaddr_storage bound = {};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &len) == 0) {
    if (bound.ss_family == AF_INET) {
      port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      port_ =
          ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  started_at_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

uint64_t Server::uptime_ms() const {
  if (started_at_ == std::chrono::steady_clock::time_point{}) return 0;
  return ElapsedMs(started_at_);
}

std::vector<ConnectionStatus> Server::ConnectionStatuses() const {
  std::vector<std::pair<uint64_t, std::shared_ptr<ConnState>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(states_mu_);
    snapshot.assign(states_.begin(), states_.end());
  }
  std::vector<ConnectionStatus> out;
  out.reserve(snapshot.size());
  for (const auto& [id, state] : snapshot) {
    ConnectionStatus cs;
    cs.id = id;
    cs.peer = state->peer;
    cs.age_ms = ElapsedMs(state->connected_at);
    cs.requests = state->requests.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->statement.empty()) {
        cs.executing = true;
        cs.statement = state->statement;
        cs.statement_age_ms = ElapsedMs(state->stmt_start);
      }
    }
    out.push_back(std::move(cs));
  }
  std::sort(out.begin(), out.end(),
            [](const ConnectionStatus& a, const ConnectionStatus& b) {
              return a.id < b.id;
            });
  return out;
}

void Server::Stop() {
  // Not started, or another Stop already owns the drain: the joins
  // below must run exactly once.
  if (!started_.load() || stop_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain: connection threads notice stop_ at their next poll tick,
  // finish any request in flight, respond, and exit.
  for (;;) {
    std::unordered_map<uint64_t, std::thread> remaining;
    {
      std::lock_guard<std::mutex> lock(mu_);
      remaining.swap(conns_);
      finished_.clear();
    }
    if (remaining.empty()) break;
    for (auto& [id, t] : remaining)
      if (t.joinable()) t.join();
  }
}

void Server::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t id : finished_) {
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        done.push_back(std::move(it->second));
        conns_.erase(it);
      }
    }
    finished_.clear();
  }
  for (std::thread& t : done)
    if (t.joinable()) t.join();
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, kPollMs);
    if (pr <= 0) {
      ReapFinished();
      continue;
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (active_.load(std::memory_order_relaxed) >= opts_.max_connections) {
      // Graceful backpressure: answer the admission ping (or whatever
      // arrives first) with RESOURCE_EXHAUSTED, then close.
      rejected_total_->Inc();
      Status reject_status = ResourceExhausted(
          "server at its limit of " +
          std::to_string(opts_.max_connections) + " connections");
      reject_status.set_retry_after_ms(opts_.shed_retry_after_ms);
      Frame reject = EncodeErrorFrame(reject_status);
      (void)WriteFrame(fd, reject);
      ::close(fd);
      continue;
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    active_connections_->Add(1);
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      id = next_conn_id_++;
      conns_.emplace(id, std::thread([this, id, fd] {
                       ServeConnection(id, fd);
                     }));
    }
    ReapFinished();
  }
}

void Server::ServeConnection(uint64_t id, int fd) {
  std::unique_ptr<Transport> t = opts_.transport_factory
                                     ? opts_.transport_factory(fd)
                                     : std::make_unique<TcpTransport>(fd);
  // Self-protection at the socket: a peer that stalls mid-frame trips
  // the recv timeout (slow-loris can't hold the thread), and a peer
  // that stops reading its pages trips the send timeout.
  if (opts_.handshake_timeout_ms != 0)
    (void)t->SetRecvTimeout(opts_.handshake_timeout_ms);
  if (opts_.write_timeout_ms != 0)
    (void)t->SetSendTimeout(opts_.write_timeout_ms);

  // The peer's protocol version, updated from each frame it sends; the
  // server mirrors it onto replies so a v2 client decodes a v3
  // server's answers (docs/PROTOCOL.md "Versioning").
  uint8_t peer_version = kProtocolVersion;

  // Sends an error/pong/page frame, counting write timeouts; false
  // means the connection is unusable and the loop must exit.
  auto send_frame = [&](Frame f) {
    f.version = peer_version;
    Status ws = WriteFrame(t.get(), f);
    if (ws.ok()) {
      // Counted only once the frame is actually on the wire — a write
      // timeout or dead peer must not inflate bytes-out.
      bytes_out_total_->Inc(kFrameHeaderBytes + f.payload.size());
      return true;
    }
    if (ws.code() == StatusCode::kDeadlineExceeded) {
      write_timeouts_total_->Inc();
      reaped_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  };

  // Live status row for /statusz.
  auto state = std::make_shared<ConnState>();
  state->peer = PeerString(fd);
  state->connected_at = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(states_mu_);
    states_.emplace(id, state);
  }

  // One QUEL session per connection: its parse cache and declared
  // ranges live as long as the client stays connected, mirroring an
  // in-process QuelSession per client thread.
  quel::QuelSession session(db_);
  // Per-loop actuals cost two clock reads per loop entry; pay them
  // only when a slow-query log wants the attribution.
  if (opts_.slow_query_log != nullptr) session.set_collect_actuals(true);
  bool saw_frame = false;  // handshake allowance until the first frame
  auto last_activity = std::chrono::steady_clock::now();
  while (true) {
    if (t->closed()) break;
    // Wait for the next request, waking periodically to honor drain and
    // the idle/handshake allowances.
    struct pollfd pfd = {t->fd(), POLLIN, 0};
    int pr = ::poll(&pfd, 1, kPollMs);
    if (pr == 0) {
      if (stop_.load(std::memory_order_relaxed)) break;
      uint64_t allowance =
          saw_frame ? opts_.idle_timeout_ms : opts_.handshake_timeout_ms;
      if (allowance != 0 && ElapsedMs(last_activity) > allowance) {
        (saw_frame ? reaped_idle_total_ : handshake_timeouts_total_)->Inc();
        reaped_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      continue;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool fatal = false;
    Result<Frame> frame =
        ReadFrame(t.get(), opts_.max_frame_bytes, &fatal);
    auto t0 = std::chrono::steady_clock::now();
    last_activity = t0;
    if (!frame.ok()) {
      if (fatal) {
        // A recv-timeout here is a mid-frame stall: the header arrived
        // but the rest never did (slow-loris with a drip feed).
        if (frame.status().code() == StatusCode::kDeadlineExceeded) {
          handshake_timeouts_total_->Inc();
          reaped_.fetch_add(1, std::memory_order_relaxed);
        }
        break;  // framing lost or peer gone: drop the link
      }
      // Framing intact: report the typed error and keep serving.
      if (!send_frame(EncodeErrorFrame(frame.status()))) break;
      continue;
    }
    saw_frame = true;
    peer_version = frame->version;
    bytes_in_total_->Inc(kFrameHeaderBytes + frame->payload.size());
    if (frame->type == FrameType::kPing) {
      Frame pong;
      pong.type = FrameType::kPong;
      if (!send_frame(pong)) break;
      continue;
    }
    if (frame->type != FrameType::kExecuteRequest &&
        frame->type != FrameType::kBatchExecuteRequest) {
      Frame err = EncodeErrorFrame(
          InvalidArgument("unexpected frame type " +
                          std::to_string(static_cast<int>(frame->type))));
      if (!send_frame(err)) break;
      continue;
    }

    // Load shedding: past the high-water mark of statements already
    // holding (or queueing on) the database latch, answer UNAVAILABLE
    // with a backoff hint instead of deepening the convoy. A batch
    // counts as one unit — it holds the latch once, like one statement.
    size_t in_flight = active_statements_.fetch_add(1) + 1;
    if (opts_.max_active_statements != 0 &&
        in_flight > opts_.max_active_statements) {
      active_statements_.fetch_sub(1);
      shed_total_->Inc();
      shed_.fetch_add(1, std::memory_order_relaxed);
      Status shed = Unavailable(
          "server overloaded: " +
          std::to_string(opts_.max_active_statements) +
          " statements already in flight");
      shed.set_retry_after_ms(opts_.shed_retry_after_ms);
      if (!send_frame(EncodeErrorFrame(shed))) break;
      continue;
    }

    if (frame->type == FrameType::kBatchExecuteRequest) {
      // One batch = one latch acquisition + one group-committed WAL
      // transaction server-side (RunBatch in net/connection.cc). The
      // reply is a kBatchStatus frame, then — iff every statement
      // succeeded — the last statement's ResultSet as ordinary pages.
      Result<BatchExecuteRequest> breq = DecodeBatchExecuteRequest(*frame);
      Status finished = Status::OK();
      bool write_ok = true;
      if (!breq.ok()) {
        finished = breq.status();
      } else {
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->statement =
              "batch of " + std::to_string(breq->scripts.size()) +
              " statement(s)";
          if (!breq->scripts.empty()) {
            const std::string& first = breq->scripts.front();
            state->statement +=
                ": " + (first.size() > 120 ? first.substr(0, 120) + "..."
                                           : first);
          }
          state->stmt_start = std::chrono::steady_clock::now();
        }
        uint32_t deadline_ms = breq->deadline_ms != 0
                                   ? breq->deadline_ms
                                   : opts_.default_deadline_ms;
        {
          // The whole batch is one trace and one net.request span.
          obs::TraceContext trace_ctx(
              breq->trace_id, breq->trace_sampled && breq->trace_id != 0);
          obs::Span span("net.request", request_span_duration_,
                         request_span_self_);
          Result<BatchResult> br = RunBatch(db_, &session, breq->scripts);
          if (!br.ok()) {
            finished = br.status();
          } else if (deadline_ms != 0 && ElapsedMs(t0) > deadline_ms) {
            finished = DeadlineExceeded(
                "batch exceeded its " + std::to_string(deadline_ms) +
                "ms deadline after execution");
          } else if (!send_frame(EncodeBatchStatus(*br))) {
            write_ok = false;
          } else if (br->all_ok()) {
            for (Frame& page :
                 EncodeResultSetPages(br->last, opts_.rows_per_page)) {
              if (deadline_ms != 0 && ElapsedMs(t0) > deadline_ms) {
                finished = DeadlineExceeded(
                    "batch exceeded its " + std::to_string(deadline_ms) +
                    "ms deadline while streaming results");
                break;
              }
              if (!send_frame(page)) {
                write_ok = false;
                break;
              }
            }
          }
        }
        state->requests.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->statement.clear();
        }
        // Clear the per-statement actuals so a batch's loops can never
        // attach to a later slow single statement. Batches are not
        // slow-query logged — there is no single script to attribute.
        if (opts_.slow_query_log != nullptr) (void)session.TakeLastActuals();
      }
      active_statements_.fetch_sub(1);
      requests_total_->Inc();
      requests_.fetch_add(1, std::memory_order_relaxed);
      if (!write_ok) break;
      if (!finished.ok()) {
        if (!send_frame(EncodeErrorFrame(finished))) break;
      }
      if (stop_.load(std::memory_order_relaxed)) break;
      continue;
    }

    Result<ExecuteRequest> req = DecodeExecuteRequest(*frame);
    Status finished = Status::OK();
    bool write_ok = true;
    uint64_t rows_emitted = 0;
    uint64_t rows_affected = 0;
    if (!req.ok()) {
      finished = req.status();
    } else {
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->statement = req->script.size() > 160
                               ? req->script.substr(0, 160) + "..."
                               : req->script;
        state->stmt_start = std::chrono::steady_clock::now();
      }
      uint32_t deadline_ms = req->deadline_ms != 0
                                 ? req->deadline_ms
                                 : opts_.default_deadline_ms;
      {
        // Request-scoped tracing (wire protocol v3): every span closed
        // on this thread until the end of this block — net.request,
        // quel.statement, index probes, fsyncs — records into this
        // request's buffer. The context publishes to the trace ring
        // (GET /traces/<id>) when it leaves scope, after the span.
        obs::TraceContext trace_ctx(
            req->trace_id, req->trace_sampled && req->trace_id != 0);
        obs::Span span("net.request", request_span_duration_,
                       request_span_self_);
        Result<quel::ResultSet> rs = RunScript(db_, &session, req->script);
        if (!rs.ok()) {
          finished = rs.status();
        } else if (deadline_ms != 0 && ElapsedMs(t0) > deadline_ms) {
          finished = DeadlineExceeded(
              "request exceeded its " + std::to_string(deadline_ms) +
              "ms deadline after execution");
        } else {
          rows_emitted = rs->rows.size();
          rows_affected = rs->affected;
          for (Frame& page :
               EncodeResultSetPages(*rs, opts_.rows_per_page)) {
            if (deadline_ms != 0 && ElapsedMs(t0) > deadline_ms) {
              finished = DeadlineExceeded(
                  "request exceeded its " + std::to_string(deadline_ms) +
                  "ms deadline while streaming results");
              break;
            }
            if (!send_frame(page)) {
              write_ok = false;
              break;
            }
          }
        }
      }
      state->requests.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->statement.clear();
      }
      // Structured slow-query log: one JSONL record per statement at
      // least slow_query_ms slow, carrying the trace_id for /traces
      // correlation and the per-loop actuals for why-is-it-slow.
      if (opts_.slow_query_log != nullptr) {
        // Take (and thereby clear) the actuals unconditionally so a
        // fast statement's loops can never attach to a later slow one.
        quel::StatementActuals actuals = session.TakeLastActuals();
        uint64_t latency_us = ElapsedUs(t0);
        if (latency_us / 1000 >= opts_.slow_query_ms) {
          obs::SlowQueryRecord rec;
          rec.script_hash = obs::Fnv1a64(req->script);
          rec.script = req->script;
          rec.trace_id = req->trace_id;
          rec.sampled = req->trace_sampled && req->trace_id != 0;
          rec.latency_us = latency_us;
          rec.rows = rows_emitted;
          rec.affected = rows_affected;
          rec.error = ErrorCodeName(finished.error_code());
          for (auto& loop : actuals.loops)
            rec.loops.push_back(
                {std::move(loop.var), loop.rows_in, loop.rows_out});
          opts_.slow_query_log->Log(std::move(rec));
        }
      }
    }
    active_statements_.fetch_sub(1);
    requests_total_->Inc();
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!write_ok) break;
    if (!finished.ok()) {
      if (!send_frame(EncodeErrorFrame(finished))) break;
    }
    if (stop_.load(std::memory_order_relaxed)) break;
  }
  t->Close();
  active_.fetch_sub(1, std::memory_order_relaxed);
  active_connections_->Add(-1);
  {
    std::lock_guard<std::mutex> lock(states_mu_);
    states_.erase(id);
  }
  std::lock_guard<std::mutex> lock(mu_);
  finished_.push_back(id);
}

}  // namespace mdm::net

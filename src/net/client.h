#ifndef MDM_NET_CLIENT_H_
#define MDM_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "net/protocol.h"
#include "quel/quel.h"

namespace mdm::net {

struct ClientOptions {
  /// Wall-clock budget for establishing the TCP connection (and the
  /// ping/pong admission handshake).
  uint32_t connect_timeout_ms = 5000;
  /// Per-request execution deadline sent to the server; 0 asks for the
  /// server's default.
  uint32_t deadline_ms = 0;
  /// Largest frame this client will accept from the server.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// How many times Execute transparently reconnects and retries after
  /// a lost connection (ECONNRESET, server restart) — applied only to
  /// idempotent read scripts (IsIdempotentScript); mutations surface
  /// UNAVAILABLE to the caller instead, since the server may or may not
  /// have applied them.
  int retry_reads = 1;
};

/// Blocking mdmd client: one TCP connection, one outstanding request at
/// a time. Not thread-safe — use one Client per thread (the fig 1
/// many-clients shape), exactly like QuelSession-per-thread in-process.
class Client {
 public:
  /// Connects and performs the admission handshake (ping/pong). A
  /// server at its connection limit answers the handshake with
  /// RESOURCE_EXHAUSTED, which is returned here.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                ClientOptions opts = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Executes one DDL/QUEL script on the server; reassembles the paged
  /// response. Errors arrive code-intact (Status::error_code()).
  Result<quel::ResultSet> Execute(const std::string& script);

  /// Round-trips a ping frame.
  Status Ping();

  void Close();
  bool connected() const { return fd_ >= 0; }
  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  Client(ClientOptions opts, std::string host, uint16_t port, int fd)
      : opts_(opts), host_(std::move(host)), port_(port), fd_(fd) {}

  Result<quel::ResultSet> ExecuteOnce(const std::string& script);
  Status PingOnce();
  Status Reconnect();

  ClientOptions opts_;
  std::string host_;
  uint16_t port_ = 0;
  int fd_ = -1;
};

/// Low-level dial: TCP connect to host:port with a timeout; returns the
/// connected blocking socket fd. Exposed for tests that need a raw
/// socket to inject malformed frames.
Result<int> DialTcp(const std::string& host, uint16_t port,
                    uint32_t timeout_ms);

}  // namespace mdm::net

#endif  // MDM_NET_CLIENT_H_

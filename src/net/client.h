#ifndef MDM_NET_CLIENT_H_
#define MDM_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "net/exec_options.h"
#include "net/protocol.h"
#include "net/retry.h"
#include "net/transport.h"
#include "quel/quel.h"

namespace mdm::net {

/// Hook for interposing on the client's byte stream (chaos tests wrap
/// the dialed TcpTransport in a FaultInjectingTransport). Called for
/// the initial connect and for every retry reconnect.
using TransportFactory =
    std::function<Result<std::unique_ptr<Transport>>(
        const std::string& host, uint16_t port, uint32_t connect_timeout_ms)>;

struct ClientOptions {
  /// Wall-clock budget for establishing the TCP connection (and the
  /// ping/pong admission handshake).
  uint32_t connect_timeout_ms = 5000;
  /// Per-request execution deadline sent to the server (0 asks for the
  /// server's default) — and, when non-zero, the client's *total* retry
  /// budget: Execute never blocks or backs off past it, even while the
  /// server (or a faulty link) stalls mid-frame.
  ///
  /// DEPRECATION NOTE: since the ExecOptions redesign this field is the
  /// connection-wide *default*; prefer passing mdm::ExecOptions
  /// {.deadline_ms = ...} per call. The field stays (existing fleet
  /// configs keep working) but new code should not reach for it.
  uint32_t deadline_ms = 0;
  /// Bounds how long one attempt may wait on a single stalled recv
  /// (0 = only the deadline bounds it). With a deadline set, the
  /// effective per-attempt recv timeout is min(attempt_timeout_ms,
  /// remaining budget).
  uint32_t attempt_timeout_ms = 0;
  /// Largest frame this client will accept from the server.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Retry discipline for idempotent read scripts (net/retry.h):
  /// exponential backoff with seeded decorrelated jitter, honoring the
  /// server's retry_after_ms hints. Mutations are never retried — the
  /// server may or may not have applied them — and surface UNAVAILABLE.
  ///
  /// DEPRECATION NOTE: the connection-wide *default*; per-call override
  /// via mdm::ExecOptions::retry.
  RetryPolicy retry;
  /// Fraction of Execute calls marked for server-side tracing (wire
  /// protocol v3): every request carries a fresh trace_id; `sampled` is
  /// set on this fraction of them, telling the server to record the
  /// request's span tree into its trace ring (GET /traces/<id> on the
  /// admin endpoint). 0 disables sampling, 1 samples everything.
  ///
  /// DEPRECATION NOTE: the connection-wide *default*; per-call override
  /// via mdm::ExecOptions::trace (kForce / kOff).
  double trace_sample_rate = 0.0;
  /// Seed for the trace_id/sampling PRNG — ids are seeded, never
  /// wall-clock, so a workload replays with identical ids. Give each
  /// client of a fleet its own seed or ids will collide.
  uint64_t trace_seed = 0x6D646D74;  // "mdmt"
  /// Dials the server; null uses plain TCP (DialTcpTransport).
  TransportFactory transport_factory;
};

/// Blocking mdmd client: one TCP connection, one outstanding request at
/// a time. Not thread-safe — use one Client per thread (the fig 1
/// many-clients shape), exactly like QuelSession-per-thread in-process.
class Client {
 public:
  /// Connects and performs the admission handshake (ping/pong). A
  /// server at its connection limit answers the handshake with
  /// RESOURCE_EXHAUSTED, which is returned here.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                ClientOptions opts = {});

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() = default;

  /// Executes one DDL/QUEL script on the server; reassembles the paged
  /// response. Errors arrive code-intact (Status::error_code()).
  /// `opts` overrides the ClientOptions defaults for this call only.
  ///
  /// Transport failures (UNAVAILABLE, stream CORRUPTION) of idempotent
  /// read scripts are retried per the effective retry policy;
  /// exhaustion is typed: DEADLINE_EXCEEDED when the deadline ran out
  /// first, UNAVAILABLE when max_attempts did. Observability:
  /// mdm_net_client_retries_total / mdm_net_client_backoff_ms_total.
  Result<quel::ResultSet> Execute(const std::string& script,
                                  const ExecOptions& opts = {});

  /// Executes N scripts in ONE round trip (wire protocol v4): the
  /// server runs them under a single exclusive latch acquisition and
  /// commits them as one group-committed WAL transaction. Per-statement
  /// outcomes arrive in the BatchResult; the last statement's ResultSet
  /// rides along when every statement succeeded. Retried transparently
  /// only when EVERY script is idempotent.
  Result<BatchResult> ExecuteBatch(const std::vector<std::string>& scripts,
                                   const ExecOptions& opts = {});

  /// Round-trips a ping frame (retried like an idempotent read).
  Status Ping();

  void Close();
  bool connected() const { return transport_ != nullptr && !transport_->closed(); }
  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  /// Trace context of the most recent Execute call (all attempts of one
  /// call share one id, so a retried request is still one trace).
  /// last_trace_id() is 0 until the first Execute.
  uint64_t last_trace_id() const { return last_trace_id_; }
  bool last_trace_sampled() const { return last_trace_sampled_; }

 private:
  Client(ClientOptions opts, std::string host, uint16_t port,
         std::unique_ptr<Transport> t)
      : opts_(std::move(opts)),
        host_(std::move(host)),
        port_(port),
        transport_(std::move(t)),
        trace_rng_(opts_.trace_seed) {}

  Result<quel::ResultSet> ExecuteOnce(const std::string& script,
                                      uint32_t deadline_ms);
  Result<BatchResult> ExecuteBatchOnce(const std::vector<std::string>& scripts,
                                       uint32_t deadline_ms);
  Status PingOnce();
  /// Dials a fresh transport, never spending longer than the remaining
  /// budget on the connect.
  Status Reconnect(const DeadlineBudget& budget);
  /// Applies the per-attempt recv timeout from the remaining budget.
  void ArmAttemptTimeout(const DeadlineBudget& budget);
  /// Resolves per-call overrides against the ClientOptions defaults.
  uint32_t EffectiveDeadlineMs(const ExecOptions& opts) const {
    return opts.deadline_ms != 0 ? opts.deadline_ms : opts_.deadline_ms;
  }
  const RetryPolicy& EffectiveRetry(const ExecOptions& opts) const {
    return opts.retry.has_value() ? *opts.retry : opts_.retry;
  }
  /// Stamps a fresh trace identity for one Execute/ExecuteBatch call.
  void NewTraceIdentity(const ExecOptions& opts);
  /// Shared retry loop driving `attempt` (see Execute). `deadline_ms`
  /// and `retry` are the per-call effective values.
  template <typename T, typename Attempt>
  Result<T> WithRetries(bool retryable, uint32_t deadline_ms,
                        const RetryPolicy& retry, Attempt attempt);

  ClientOptions opts_;
  std::string host_;
  uint16_t port_ = 0;
  std::unique_ptr<Transport> transport_;
  Rng trace_rng_;
  uint64_t last_trace_id_ = 0;
  bool last_trace_sampled_ = false;
};

/// Low-level dial: TCP connect to host:port with a timeout; returns the
/// connected blocking socket fd. Exposed for tests that need a raw
/// socket to inject malformed frames. Validates host up front: an
/// empty host is INVALID_ARGUMENT, an unresolvable one UNAVAILABLE.
Result<int> DialTcp(const std::string& host, uint16_t port,
                    uint32_t timeout_ms);

}  // namespace mdm::net

#endif  // MDM_NET_CLIENT_H_

#ifndef MDM_NET_SERVER_H_
#define MDM_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "er/database.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"

namespace mdm::net {

/// Hook for interposing on a connection's byte stream server-side
/// (chaos tests and `mdmd --fault-inject` wrap the accepted socket in a
/// FaultInjectingTransport). Receives the accepted fd and must return a
/// Transport owning it.
using ServerTransportFactory =
    std::function<std::unique_ptr<Transport>(int fd)>;

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back via port().
  uint16_t port = 0;
  /// Admission limit: connection N+1 is accepted, answered with a
  /// RESOURCE_EXHAUSTED error frame, and closed (graceful backpressure
  /// rather than a SYN backlog timeout on the client).
  size_t max_connections = 64;
  /// Frames above this are rejected with RESOURCE_EXHAUSTED without
  /// buffering the payload.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Execution deadline applied when a request carries deadline_ms = 0.
  uint32_t default_deadline_ms = 30'000;
  /// Result rows per kResultPage frame.
  size_t rows_per_page = 256;

  // --- self-protection (docs/ROBUSTNESS.md) ---

  /// Reap a connection that has completed at least one frame but sent
  /// nothing for this long (0 = never). Frees the thread and the
  /// connection slot a vanished client would otherwise pin forever.
  uint32_t idle_timeout_ms = 300'000;
  /// Slow-loris guard, two-fold: a fresh connection must complete its
  /// first frame within this window, and (as the socket recv timeout)
  /// no peer may stall *mid-frame* longer than this. 0 disables both.
  uint32_t handshake_timeout_ms = 10'000;
  /// Per-connection socket send timeout: a client that stops reading
  /// its ResultSet pages is cut off after this long (0 = never).
  uint32_t write_timeout_ms = 10'000;
  /// Load shedding high-water mark: when this many statements are
  /// already executing, further Execute requests are answered with
  /// UNAVAILABLE + a retry_after_ms hint instead of queueing on the
  /// database latch (0 = never shed).
  size_t max_active_statements = 32;
  /// The backoff hint stamped on shed (and admission-reject) errors.
  uint32_t shed_retry_after_ms = 50;
  /// Wraps each accepted socket; null uses plain TcpTransport.
  ServerTransportFactory transport_factory;

  // --- observability (docs/OBSERVABILITY.md) ---

  /// Structured slow-query log sink; null disables slow-query logging.
  /// Shared so mdmd and tests can read records_written() after Stop.
  std::shared_ptr<obs::SlowQueryLog> slow_query_log;
  /// Statements at least this slow are logged (requires a sink). 0 logs
  /// every statement — useful for tests and short traffic captures.
  uint32_t slow_query_ms = 0;
};

/// One row of /statusz's per-connection table: who is connected, for
/// how long, and what (if anything) they are executing right now.
struct ConnectionStatus {
  uint64_t id = 0;
  std::string peer;             // "ip:port" of the accepted socket
  uint64_t age_ms = 0;          // since accept
  uint64_t requests = 0;        // Execute requests answered so far
  bool executing = false;
  std::string statement;        // current script (excerpt), "" when idle
  uint64_t statement_age_ms = 0;
};

/// mdmd: the multi-client TCP server putting one er::Database on a
/// socket — the paper's fig 1 music data manager proper. One connection
/// thread and one QuelSession per client; statements serialize through
/// the PR 4 locking stack exactly as in-process sessions do (see
/// docs/CONCURRENCY.md, "What a connection thread holds").
///
/// Lifecycle: Start() binds and spawns the accept loop; Stop() drains —
/// stops accepting, lets every in-flight request finish and respond,
/// then joins all connection threads. Stop is idempotent and also runs
/// from the destructor. `mdmd` (examples/mdmd.cpp) wires SIGTERM/SIGINT
/// to Stop for clean shutdown.
///
/// Deadlines are cooperative: checked when a request is picked up,
/// after statement execution, and between result pages. A blocking
/// statement is never interrupted mid-flight (the QUEL layer holds the
/// database latch), so a deadline bounds what the client waits for, not
/// server-side work already underway.
///
/// Observability: mdm_net_requests_total, mdm_net_rejected_total,
/// mdm_net_bytes_{in,out}_total, mdm_net_active_connections,
/// mdm_net_shed_total, mdm_net_reaped_idle_total,
/// mdm_net_handshake_timeouts_total, mdm_net_write_timeouts_total and
/// the net.request span on the global registry.
class Server {
 public:
  explicit Server(er::Database* db, ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts accepting. Fails with UNAVAILABLE if
  /// the address cannot be bound.
  Status Start();

  /// Graceful drain; safe to call multiple times / concurrently with
  /// request processing.
  void Stop();

  /// The bound port (after Start; resolves port 0 to the real one).
  uint16_t port() const { return port_; }
  size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }
  /// Execute requests fully processed (success or error answered).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Statements executing right now (the load-shed watermark input).
  size_t active_statements() const {
    return active_statements_.load(std::memory_order_relaxed);
  }
  /// Execute requests answered UNAVAILABLE by the load shedder.
  uint64_t shed_requests() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Connections reaped by the self-protection timeouts (idle reaper +
  /// handshake/write timeouts) since Start.
  uint64_t reaped_connections() const {
    return reaped_.load(std::memory_order_relaxed);
  }
  /// Milliseconds since Start (0 before Start).
  uint64_t uptime_ms() const;
  /// Snapshot of every live connection, for /statusz.
  std::vector<ConnectionStatus> ConnectionStatuses() const;

 private:
  struct ConnState {
    std::string peer;
    std::chrono::steady_clock::time_point connected_at;
    std::atomic<uint64_t> requests{0};
    mutable std::mutex mu;  // guards statement + stmt_start
    std::string statement;  // non-empty while executing
    std::chrono::steady_clock::time_point stmt_start;
  };

  void AcceptLoop();
  void ServeConnection(uint64_t id, int fd);
  void ReapFinished();  // joins connection threads that have exited

  er::Database* db_;
  ServerOptions opts_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::thread accept_thread_;

  std::mutex mu_;  // guards conns_ and finished_
  std::unordered_map<uint64_t, std::thread> conns_;
  std::vector<uint64_t> finished_;
  uint64_t next_conn_id_ = 0;

  // Live-connection status registry for /statusz: the serving thread
  // writes, the admin endpoint reads. Separate from mu_ so a statusz
  // render never contends with thread reaping.
  mutable std::mutex states_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<ConnState>> states_;

  std::chrono::steady_clock::time_point started_at_{};
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<size_t> active_statements_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> reaped_{0};

  obs::Counter* requests_total_;
  obs::Counter* rejected_total_;
  obs::Counter* bytes_in_total_;
  obs::Counter* bytes_out_total_;
  obs::Gauge* active_connections_;
  obs::Histogram* request_span_duration_;
  obs::Counter* request_span_self_;
  obs::Counter* shed_total_;
  obs::Counter* reaped_idle_total_;
  obs::Counter* handshake_timeouts_total_;
  obs::Counter* write_timeouts_total_;
};

}  // namespace mdm::net

#endif  // MDM_NET_SERVER_H_

#ifndef MDM_NET_SERVER_H_
#define MDM_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "er/database.h"
#include "net/protocol.h"
#include "obs/metrics.h"

namespace mdm::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back via port().
  uint16_t port = 0;
  /// Admission limit: connection N+1 is accepted, answered with a
  /// RESOURCE_EXHAUSTED error frame, and closed (graceful backpressure
  /// rather than a SYN backlog timeout on the client).
  size_t max_connections = 64;
  /// Frames above this are rejected with RESOURCE_EXHAUSTED without
  /// buffering the payload.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Execution deadline applied when a request carries deadline_ms = 0.
  uint32_t default_deadline_ms = 30'000;
  /// Result rows per kResultPage frame.
  size_t rows_per_page = 256;
};

/// mdmd: the multi-client TCP server putting one er::Database on a
/// socket — the paper's fig 1 music data manager proper. One connection
/// thread and one QuelSession per client; statements serialize through
/// the PR 4 locking stack exactly as in-process sessions do (see
/// docs/CONCURRENCY.md, "What a connection thread holds").
///
/// Lifecycle: Start() binds and spawns the accept loop; Stop() drains —
/// stops accepting, lets every in-flight request finish and respond,
/// then joins all connection threads. Stop is idempotent and also runs
/// from the destructor. `mdmd` (examples/mdmd.cpp) wires SIGTERM/SIGINT
/// to Stop for clean shutdown.
///
/// Deadlines are cooperative: checked when a request is picked up,
/// after statement execution, and between result pages. A blocking
/// statement is never interrupted mid-flight (the QUEL layer holds the
/// database latch), so a deadline bounds what the client waits for, not
/// server-side work already underway.
///
/// Observability: mdm_net_requests_total, mdm_net_rejected_total,
/// mdm_net_bytes_{in,out}_total, mdm_net_active_connections and the
/// net.request span on the global registry.
class Server {
 public:
  explicit Server(er::Database* db, ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts accepting. Fails with UNAVAILABLE if
  /// the address cannot be bound.
  Status Start();

  /// Graceful drain; safe to call multiple times / concurrently with
  /// request processing.
  void Stop();

  /// The bound port (after Start; resolves port 0 to the real one).
  uint16_t port() const { return port_; }
  size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }
  /// Execute requests fully processed (success or error answered).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(uint64_t id, int fd);
  void ReapFinished();  // joins connection threads that have exited

  er::Database* db_;
  ServerOptions opts_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::thread accept_thread_;

  std::mutex mu_;  // guards conns_ and finished_
  std::unordered_map<uint64_t, std::thread> conns_;
  std::vector<uint64_t> finished_;
  uint64_t next_conn_id_ = 0;

  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> requests_{0};

  obs::Counter* requests_total_;
  obs::Counter* rejected_total_;
  obs::Counter* bytes_in_total_;
  obs::Counter* bytes_out_total_;
  obs::Gauge* active_connections_;
  obs::Histogram* request_span_duration_;
  obs::Counter* request_span_self_;
};

}  // namespace mdm::net

#endif  // MDM_NET_SERVER_H_

#include "net/protocol.h"

#include "net/transport.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/strings.h"

namespace mdm::net {

namespace {

// ResultPage flag bits.
constexpr uint8_t kPageFirst = 0x1;
constexpr uint8_t kPageLast = 0x2;

// A frame whose header claims more than this is treated as garbage even
// while discarding (protects the discard loop from a hostile length).
constexpr size_t kDiscardCeilingBytes = 64u << 20;

void PutHeader(ByteWriter* w, uint8_t version, FrameType type,
               uint32_t payload_len, uint32_t crc) {
  w->PutU32(kFrameMagic);
  w->PutU8(version);
  w->PutU8(static_cast<uint8_t>(type));
  w->PutU16(0);  // reserved
  w->PutU32(payload_len);
  w->PutU32(crc);
}

bool VersionSupported(uint8_t version) {
  return version >= kMinProtocolVersion && version <= kProtocolVersion;
}

std::string UnsupportedVersionMessage(uint8_t version) {
  return "unsupported protocol version " + std::to_string(version) +
         " (this side speaks " + std::to_string(kMinProtocolVersion) + ".." +
         std::to_string(kProtocolVersion) + ")";
}

/// Reconstructs a transported Status from its wire bytes. A peer
/// speaking a later minor revision may send a fine code we do not
/// know; the canonical byte still identifies the error class.
Status StatusFromWire(uint8_t canonical, uint8_t fine,
                      uint32_t retry_after_ms, std::string message) {
  StatusCode code = static_cast<StatusCode>(fine);
  if (StatusCodeName(code) == std::string("Unknown")) {
    switch (static_cast<ErrorCode>(canonical)) {
      case ErrorCode::NOT_FOUND: code = StatusCode::kNotFound; break;
      case ErrorCode::INVALID_ARGUMENT:
        code = StatusCode::kInvalidArgument;
        break;
      case ErrorCode::CORRUPTION: code = StatusCode::kCorruption; break;
      case ErrorCode::RESOURCE_EXHAUSTED:
        code = StatusCode::kResourceExhausted;
        break;
      case ErrorCode::DEADLINE_EXCEEDED:
        code = StatusCode::kDeadlineExceeded;
        break;
      case ErrorCode::UNAVAILABLE: code = StatusCode::kUnavailable; break;
      default: code = StatusCode::kInternal; break;
    }
  }
  Status out(code, std::move(message));
  out.set_retry_after_ms(retry_after_ms);
  return out;
}

}  // namespace

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  ByteWriter w;
  PutHeader(&w, frame.version, frame.type,
            static_cast<uint32_t>(frame.payload.size()),
            Crc32(frame.payload.data(), frame.payload.size()));
  w.PutBytes(frame.payload.data(), frame.payload.size());
  return w.Take();
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t size,
                          size_t max_frame_bytes, size_t* consumed) {
  if (size < kFrameHeaderBytes)
    return Corruption("truncated frame: " + std::to_string(size) +
                      " bytes, header needs " +
                      std::to_string(kFrameHeaderBytes));
  ByteReader r(data, size);
  uint32_t magic = 0, payload_len = 0, crc = 0;
  uint8_t version = 0, type = 0;
  uint16_t reserved = 0;
  MDM_RETURN_IF_ERROR(r.GetU32(&magic));
  MDM_RETURN_IF_ERROR(r.GetU8(&version));
  MDM_RETURN_IF_ERROR(r.GetU8(&type));
  MDM_RETURN_IF_ERROR(r.GetU16(&reserved));
  MDM_RETURN_IF_ERROR(r.GetU32(&payload_len));
  MDM_RETURN_IF_ERROR(r.GetU32(&crc));
  if (magic != kFrameMagic) return Corruption("bad frame magic");
  if (!VersionSupported(version))
    return InvalidArgument(UnsupportedVersionMessage(version));
  if (payload_len > max_frame_bytes)
    return ResourceExhausted("frame payload of " +
                             std::to_string(payload_len) +
                             " bytes exceeds the " +
                             std::to_string(max_frame_bytes) + "-byte limit");
  if (size - kFrameHeaderBytes < payload_len)
    return Corruption("truncated frame: payload claims " +
                      std::to_string(payload_len) + " bytes, " +
                      std::to_string(size - kFrameHeaderBytes) + " present");
  const uint8_t* payload = data + kFrameHeaderBytes;
  if (Crc32(payload, payload_len) != crc)
    return Corruption("frame checksum mismatch");
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.version = version;
  frame.payload.assign(payload, payload + payload_len);
  if (consumed != nullptr) *consumed = kFrameHeaderBytes + payload_len;
  return frame;
}

Frame EncodeExecuteRequest(const ExecuteRequest& req) {
  // v3 payload: u32 deadline_ms, u64 trace_id, u8 flags, string script.
  // (v2 omitted the trace fields; DecodeExecuteRequest branches on the
  // frame's stamped version.)
  ByteWriter w;
  w.PutU32(req.deadline_ms);
  w.PutU64(req.trace_id);
  w.PutU8(req.trace_sampled ? 1 : 0);
  w.PutString(req.script);
  Frame f;
  f.type = FrameType::kExecuteRequest;
  f.payload = w.Take();
  return f;
}

Result<ExecuteRequest> DecodeExecuteRequest(const Frame& frame) {
  if (frame.type != FrameType::kExecuteRequest)
    return InvalidArgument("frame is not an ExecuteRequest");
  ByteReader r(frame.payload);
  ExecuteRequest req;
  MDM_RETURN_IF_ERROR(r.GetU32(&req.deadline_ms));
  if (frame.version >= 3) {
    uint8_t flags = 0;
    MDM_RETURN_IF_ERROR(r.GetU64(&req.trace_id));
    MDM_RETURN_IF_ERROR(r.GetU8(&flags));
    req.trace_sampled = (flags & 0x1) != 0;
  }
  MDM_RETURN_IF_ERROR(r.GetString(&req.script));
  if (!r.AtEnd()) return Corruption("trailing bytes after ExecuteRequest");
  return req;
}

Frame EncodeErrorFrame(const Status& status) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(status.error_code()));
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutU32(status.retry_after_ms());
  w.PutString(status.message());
  Frame f;
  f.type = FrameType::kError;
  f.payload = w.Take();
  return f;
}

Status DecodeErrorFrame(const Frame& frame, Status* out) {
  if (frame.type != FrameType::kError)
    return InvalidArgument("frame is not an error frame");
  ByteReader r(frame.payload);
  uint8_t canonical = 0, fine = 0;
  uint32_t retry_after_ms = 0;
  std::string message;
  MDM_RETURN_IF_ERROR(r.GetU8(&canonical));
  MDM_RETURN_IF_ERROR(r.GetU8(&fine));
  MDM_RETURN_IF_ERROR(r.GetU32(&retry_after_ms));
  MDM_RETURN_IF_ERROR(r.GetString(&message));
  if (!r.AtEnd()) return Corruption("trailing bytes after error frame");
  *out = StatusFromWire(canonical, fine, retry_after_ms, std::move(message));
  return Status::OK();
}

Frame EncodeBatchExecuteRequest(const BatchExecuteRequest& req) {
  // v4 payload: u32 deadline_ms, u64 trace_id, u8 flags, varint N,
  // N x string scripts. The shared prefix deliberately mirrors a v3
  // ExecuteRequest so the two request kinds stay diffable on the wire.
  ByteWriter w;
  w.PutU32(req.deadline_ms);
  w.PutU64(req.trace_id);
  w.PutU8(req.trace_sampled ? 1 : 0);
  w.PutVarint(req.scripts.size());
  for (const std::string& s : req.scripts) w.PutString(s);
  Frame f;
  f.type = FrameType::kBatchExecuteRequest;
  f.payload = w.Take();
  return f;
}

Result<BatchExecuteRequest> DecodeBatchExecuteRequest(const Frame& frame) {
  if (frame.type != FrameType::kBatchExecuteRequest)
    return InvalidArgument("frame is not a BatchExecuteRequest");
  if (frame.version < 4)
    return InvalidArgument("batch frames require protocol v4, frame is v" +
                           std::to_string(frame.version));
  ByteReader r(frame.payload);
  BatchExecuteRequest req;
  uint8_t flags = 0;
  uint64_t n = 0;
  MDM_RETURN_IF_ERROR(r.GetU32(&req.deadline_ms));
  MDM_RETURN_IF_ERROR(r.GetU64(&req.trace_id));
  MDM_RETURN_IF_ERROR(r.GetU8(&flags));
  req.trace_sampled = (flags & 0x1) != 0;
  MDM_RETURN_IF_ERROR(r.GetVarint(&n));
  req.scripts.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string script;
    MDM_RETURN_IF_ERROR(r.GetString(&script));
    req.scripts.push_back(std::move(script));
  }
  if (!r.AtEnd())
    return Corruption("trailing bytes after BatchExecuteRequest");
  return req;
}

Frame EncodeBatchStatus(const BatchResult& result) {
  // v4 payload: varint submitted, varint attempted, per attempted
  // statement {u8 ok, u64 affected, [error bytes as in kError]},
  // u8 results_follow.
  ByteWriter w;
  w.PutVarint(result.submitted);
  w.PutVarint(result.statements.size());
  for (const BatchStatementOutcome& st : result.statements) {
    w.PutU8(st.status.ok() ? 1 : 0);
    w.PutU64(st.affected);
    if (!st.status.ok()) {
      w.PutU8(static_cast<uint8_t>(st.status.error_code()));
      w.PutU8(static_cast<uint8_t>(st.status.code()));
      w.PutU32(st.status.retry_after_ms());
      w.PutString(st.status.message());
    }
  }
  w.PutU8(result.all_ok() ? 1 : 0);
  Frame f;
  f.type = FrameType::kBatchStatus;
  f.payload = w.Take();
  return f;
}

Status DecodeBatchStatus(const Frame& frame, BatchResult* out,
                         bool* results_follow) {
  if (frame.type != FrameType::kBatchStatus)
    return InvalidArgument("frame is not a BatchStatus");
  ByteReader r(frame.payload);
  uint64_t submitted = 0, attempted = 0;
  MDM_RETURN_IF_ERROR(r.GetVarint(&submitted));
  MDM_RETURN_IF_ERROR(r.GetVarint(&attempted));
  if (attempted > submitted)
    return Corruption("BatchStatus claims more attempted than submitted");
  out->submitted = static_cast<size_t>(submitted);
  out->statements.clear();
  out->statements.reserve(attempted);
  out->last = quel::ResultSet{};
  for (uint64_t i = 0; i < attempted; ++i) {
    uint8_t ok = 0;
    BatchStatementOutcome st;
    MDM_RETURN_IF_ERROR(r.GetU8(&ok));
    MDM_RETURN_IF_ERROR(r.GetU64(&st.affected));
    if (ok == 0) {
      uint8_t canonical = 0, fine = 0;
      uint32_t retry_after_ms = 0;
      std::string message;
      MDM_RETURN_IF_ERROR(r.GetU8(&canonical));
      MDM_RETURN_IF_ERROR(r.GetU8(&fine));
      MDM_RETURN_IF_ERROR(r.GetU32(&retry_after_ms));
      MDM_RETURN_IF_ERROR(r.GetString(&message));
      st.status =
          StatusFromWire(canonical, fine, retry_after_ms, std::move(message));
    }
    out->statements.push_back(std::move(st));
  }
  uint8_t follow = 0;
  MDM_RETURN_IF_ERROR(r.GetU8(&follow));
  if (!r.AtEnd()) return Corruption("trailing bytes after BatchStatus");
  *results_follow = follow != 0;
  return Status::OK();
}

std::vector<Frame> EncodeResultSetPages(const quel::ResultSet& rs,
                                        size_t rows_per_page) {
  if (rows_per_page == 0) rows_per_page = 1;
  std::vector<Frame> pages;
  size_t row = 0;
  do {
    size_t end = std::min(rs.rows.size(), row + rows_per_page);
    uint8_t flags = 0;
    if (row == 0) flags |= kPageFirst;
    if (end == rs.rows.size()) flags |= kPageLast;
    ByteWriter w;
    w.PutU8(flags);
    if (flags & kPageFirst) {
      w.PutVarint(rs.columns.size());
      for (const std::string& c : rs.columns) w.PutString(c);
      w.PutString(rs.explain);
    }
    w.PutVarint(end - row);
    for (; row < end; ++row) {
      const auto& cells = rs.rows[row];
      w.PutVarint(cells.size());
      for (const rel::Value& v : cells) v.Encode(&w);
    }
    if (flags & kPageLast) w.PutU64(rs.affected);
    Frame f;
    f.type = FrameType::kResultPage;
    f.payload = w.Take();
    pages.push_back(std::move(f));
  } while (row < rs.rows.size());
  return pages;
}

Status DecodeResultPage(const Frame& frame, quel::ResultSet* out,
                        bool* done) {
  if (frame.type != FrameType::kResultPage)
    return InvalidArgument("frame is not a result page");
  ByteReader r(frame.payload);
  uint8_t flags = 0;
  MDM_RETURN_IF_ERROR(r.GetU8(&flags));
  if (flags & kPageFirst) {
    uint64_t ncols = 0;
    MDM_RETURN_IF_ERROR(r.GetVarint(&ncols));
    out->columns.clear();
    out->columns.reserve(ncols);
    for (uint64_t i = 0; i < ncols; ++i) {
      std::string col;
      MDM_RETURN_IF_ERROR(r.GetString(&col));
      out->columns.push_back(std::move(col));
    }
    MDM_RETURN_IF_ERROR(r.GetString(&out->explain));
    out->rows.clear();
    out->affected = 0;
  }
  uint64_t nrows = 0;
  MDM_RETURN_IF_ERROR(r.GetVarint(&nrows));
  for (uint64_t i = 0; i < nrows; ++i) {
    uint64_t ncells = 0;
    MDM_RETURN_IF_ERROR(r.GetVarint(&ncells));
    std::vector<rel::Value> cells;
    cells.reserve(ncells);
    for (uint64_t c = 0; c < ncells; ++c) {
      rel::Value v;
      MDM_RETURN_IF_ERROR(rel::Value::Decode(&r, &v));
      cells.push_back(std::move(v));
    }
    out->rows.push_back(std::move(cells));
  }
  if (flags & kPageLast) MDM_RETURN_IF_ERROR(r.GetU64(&out->affected));
  if (!r.AtEnd()) return Corruption("trailing bytes after result page");
  *done = (flags & kPageLast) != 0;
  return Status::OK();
}

namespace {

/// Recv exactly `n` bytes through the transport. `*eof` is set when the
/// peer closed cleanly before the first byte (n stays unread); a close
/// mid-buffer is an error, not EOF. A recv timeout propagates as the
/// transport's DeadlineExceeded — the stream position is unknown, so
/// the caller must treat it as fatal.
Status ReadFully(Transport* t, uint8_t* buf, size_t n, bool* eof) {
  if (eof != nullptr) *eof = false;
  size_t got = 0;
  while (got < n) {
    Result<size_t> r = t->Recv(buf + got, n - got);
    if (!r.ok()) return r.status();
    if (*r == 0) {
      if (got == 0 && eof != nullptr) {
        *eof = true;
        return Unavailable("connection closed by peer");
      }
      return Corruption("connection closed mid-frame (" +
                        std::to_string(got) + "/" + std::to_string(n) +
                        " bytes)");
    }
    got += *r;
  }
  return Status::OK();
}

Status DiscardFully(Transport* t, size_t n) {
  uint8_t sink[4096];
  while (n > 0) {
    size_t chunk = std::min(n, sizeof(sink));
    MDM_RETURN_IF_ERROR(ReadFully(t, sink, chunk, nullptr));
    n -= chunk;
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(Transport* t, const Frame& frame) {
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  return t->Send(bytes.data(), bytes.size());
}

Status WriteFrame(int fd, const Frame& frame) {
  TcpTransport t(fd, /*owns_fd=*/false);
  return WriteFrame(&t, frame);
}

Result<Frame> ReadFrame(int fd, size_t max_frame_bytes, bool* fatal) {
  TcpTransport t(fd, /*owns_fd=*/false);
  return ReadFrame(&t, max_frame_bytes, fatal);
}

Result<Frame> ReadFrame(Transport* t, size_t max_frame_bytes, bool* fatal) {
  *fatal = true;  // default: any early exit kills the stream
  uint8_t header[kFrameHeaderBytes];
  bool eof = false;
  MDM_RETURN_IF_ERROR(ReadFully(t, header, sizeof(header), &eof));
  ByteReader r(header, sizeof(header));
  uint32_t magic = 0, payload_len = 0, crc = 0;
  uint8_t version = 0, type = 0;
  uint16_t reserved = 0;
  (void)r.GetU32(&magic);
  (void)r.GetU8(&version);
  (void)r.GetU8(&type);
  (void)r.GetU16(&reserved);
  (void)r.GetU32(&payload_len);
  (void)r.GetU32(&crc);
  // Bad magic means we lost framing: there is no way to find the next
  // frame boundary, so the connection must go.
  if (magic != kFrameMagic) return Corruption("bad frame magic");
  // From here on the framing is intact — we know where the next frame
  // starts — so protocol-level rejections are recoverable.
  if (payload_len > kDiscardCeilingBytes)
    return Corruption("frame payload of " + std::to_string(payload_len) +
                      " bytes is beyond the discard ceiling");
  if (!VersionSupported(version)) {
    MDM_RETURN_IF_ERROR(DiscardFully(t, payload_len));
    *fatal = false;
    return InvalidArgument(UnsupportedVersionMessage(version));
  }
  if (payload_len > max_frame_bytes) {
    MDM_RETURN_IF_ERROR(DiscardFully(t, payload_len));
    *fatal = false;
    return ResourceExhausted("frame payload of " +
                             std::to_string(payload_len) +
                             " bytes exceeds the " +
                             std::to_string(max_frame_bytes) + "-byte limit");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.version = version;
  frame.payload.resize(payload_len);
  if (payload_len > 0)
    MDM_RETURN_IF_ERROR(ReadFully(t, frame.payload.data(), payload_len,
                                  nullptr));
  if (Crc32(frame.payload.data(), frame.payload.size()) != crc) {
    *fatal = false;
    return Corruption("frame checksum mismatch");
  }
  *fatal = false;
  return frame;
}

bool IsIdempotentScript(const std::string& script) {
  // Conservative word scan: any mutating / DDL keyword anywhere (even
  // inside a string literal) disqualifies the script from transparent
  // retry. False negatives only cost a surfaced error.
  std::string lower = AsciiLower(script);
  for (const char* kw : {"append", "replace", "delete", "define"}) {
    size_t pos = 0;
    size_t len = std::strlen(kw);
    while ((pos = lower.find(kw, pos)) != std::string::npos) {
      bool head = pos == 0 || !std::isalnum(
          static_cast<unsigned char>(lower[pos - 1]));
      bool tail = pos + len == lower.size() ||
                  !std::isalnum(static_cast<unsigned char>(lower[pos + len]));
      if (head && tail) return false;
      ++pos;
    }
  }
  return true;
}

}  // namespace mdm::net

#ifndef MDM_NET_EXEC_OPTIONS_H_
#define MDM_NET_EXEC_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "net/retry.h"
#include "quel/quel.h"

namespace mdm {

/// Per-call execution knobs for Connection::Execute / ExecuteBatch (and
/// the underlying net::Client). Connection-wide defaults still live in
/// net::ClientOptions; every field here overrides that default for one
/// call only. A default-constructed ExecOptions changes nothing, so
/// existing call sites keep their exact behavior.
struct ExecOptions {
  /// Server-side execution deadline and client retry budget for this
  /// call, in milliseconds. 0 = use the connection's default
  /// (ClientOptions::deadline_ms). Local connections execute inline and
  /// ignore the deadline.
  uint32_t deadline_ms = 0;

  /// Per-call trace sampling override. kDefault defers to the
  /// connection's ClientOptions::trace_sample_rate coin flip; kForce
  /// samples this call unconditionally (the way `\trace` tooling wants
  /// exactly one request recorded); kOff suppresses sampling even when
  /// the connection-wide rate would have picked it.
  enum class Trace : uint8_t { kDefault, kOff, kForce };
  Trace trace = Trace::kDefault;

  /// Per-call retry policy override for idempotent reads. Unset = use
  /// the connection's ClientOptions::retry. Mutations are never retried
  /// regardless of this setting.
  std::optional<net::RetryPolicy> retry;
};

/// Outcome of one statement inside a batch (script order).
struct BatchStatementOutcome {
  Status status;
  /// Rows affected by this statement (0 for pure reads and failures).
  uint64_t affected = 0;
};

/// Result of Connection::ExecuteBatch. Statements execute in order
/// under ONE exclusive latch acquisition and commit as ONE WAL
/// transaction (one group-committed fsync). Execution stops at the
/// first failing statement: `statements` holds one outcome per
/// *attempted* statement, so statements.size() < submitted means the
/// tail after the failure was never run. Crash atomicity is
/// all-or-nothing for the whole batch — recovery either replays the
/// batch's single transaction or none of it (docs/WRITEPATH.md).
struct BatchResult {
  /// Number of scripts in the request.
  size_t submitted = 0;
  /// One entry per attempted statement, in script order.
  std::vector<BatchStatementOutcome> statements;
  /// The last attempted statement's ResultSet when the whole batch
  /// succeeded (the common "load N rows, then retrieve a digest"
  /// shape); empty otherwise.
  quel::ResultSet last;

  /// Every submitted statement ran and succeeded.
  bool all_ok() const {
    if (statements.size() != submitted) return false;
    for (const BatchStatementOutcome& s : statements)
      if (!s.status.ok()) return false;
    return true;
  }
  /// Index of the first failed statement, or `submitted` when none
  /// failed.
  size_t failed_index() const {
    for (size_t i = 0; i < statements.size(); ++i)
      if (!statements[i].status.ok()) return i;
    return submitted;
  }
  /// The first failure, or OK when the batch fully succeeded.
  Status first_error() const {
    for (const BatchStatementOutcome& s : statements)
      if (!s.status.ok()) return s.status;
    return Status::OK();
  }
};

}  // namespace mdm

#endif  // MDM_NET_EXEC_OPTIONS_H_

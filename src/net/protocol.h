#ifndef MDM_NET_PROTOCOL_H_
#define MDM_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/exec_options.h"
#include "quel/quel.h"

namespace mdm::net {

/// The mdmd wire protocol: length-prefixed binary frames over a byte
/// stream (TCP). Full layout, error-code table and versioning rules in
/// docs/PROTOCOL.md.
///
/// Frame = 16-byte header + payload:
///
///   u32  magic        "MDMP" (0x504D444D little-endian)
///   u8   version      kMinProtocolVersion..kProtocolVersion
///   u8   type         FrameType
///   u16  reserved     0
///   u32  payload_len  bytes following the header
///   u32  crc32        CRC32 (IEEE) of the payload bytes
///
/// All integers little-endian (the ByteWriter/ByteReader convention
/// shared with the storage layer). Strings are varint-length-prefixed.
///
/// Version negotiation is per-frame and implicit: both sides accept the
/// whole [kMinProtocolVersion, kProtocolVersion] range, decode each
/// frame per its own stamped version, and the server mirrors a
/// request's version onto its reply frames — so a v2 client talks to a
/// v3 server without a handshake round.

inline constexpr uint8_t kProtocolVersion = 4;
/// Oldest version this build still decodes (v2 added retry_after_ms on
/// error frames; v3 added trace_id/sampling on ExecuteRequest; v4 added
/// the batch frames kBatchExecuteRequest/kBatchStatus).
inline constexpr uint8_t kMinProtocolVersion = 2;
inline constexpr uint32_t kFrameMagic = 0x504D444Du;  // "MDMP" on the wire
inline constexpr size_t kFrameHeaderBytes = 16;
/// Default cap on a single frame's payload. Oversized frames are
/// rejected with RESOURCE_EXHAUSTED without buffering the payload.
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

enum class FrameType : uint8_t {
  kExecuteRequest = 1,       // client -> server: one DDL/QUEL script
  kResultPage = 2,           // server -> client: one page of a ResultSet
  kError = 3,                // server -> client: Status (code + message)
  kPing = 4,                 // either direction: liveness / handshake
  kPong = 5,                 // reply to kPing
  kBatchExecuteRequest = 6,  // client -> server (v4): N scripts, one trip
  kBatchStatus = 7,          // server -> client (v4): per-statement status
};

struct Frame {
  FrameType type = FrameType::kPing;
  /// Stamped into the header by EncodeFrame; set from the header by
  /// DecodeFrame/ReadFrame. The server copies a request's version onto
  /// its replies so old clients keep decoding them.
  uint8_t version = kProtocolVersion;
  std::vector<uint8_t> payload;
};

/// Serializes header + payload, ready to write to the stream.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

/// Decodes exactly one frame from `data`. Fails with Corruption on bad
/// magic / bad checksum / truncation, InvalidArgument on an unsupported
/// version, ResourceExhausted when payload_len exceeds
/// `max_frame_bytes`. `consumed`, when non-null, receives the number of
/// bytes the frame occupied (valid only on success).
Result<Frame> DecodeFrame(const uint8_t* data, size_t size,
                          size_t max_frame_bytes = kDefaultMaxFrameBytes,
                          size_t* consumed = nullptr);

/// One Execute round: the client sends the script text (DDL or QUEL);
/// `deadline_ms` bounds server-side execution (0 = server default).
///
/// v3 adds end-to-end trace context: a client-generated 8-byte
/// `trace_id` (seeded PRNG, never wall-clock — see ClientOptions) plus
/// a sampling flag. When `trace_sampled` is set the server records the
/// request's span tree into its trace ring (obs/trace.h), retrievable
/// as `GET /traces/<id>` from the admin endpoint. A v2 frame decodes
/// with trace_id = 0 / unsampled.
struct ExecuteRequest {
  std::string script;
  uint32_t deadline_ms = 0;
  uint64_t trace_id = 0;
  bool trace_sampled = false;
};

Frame EncodeExecuteRequest(const ExecuteRequest& req);
Result<ExecuteRequest> DecodeExecuteRequest(const Frame& frame);

/// One batched round (v4): N scripts executed back-to-back under a
/// single exclusive database latch acquisition, committed as ONE WAL
/// transaction with one group-committed fsync, answered in one network
/// round trip. The reply is a single kBatchStatus frame (per-statement
/// outcome), followed — only when every statement succeeded — by
/// kResultPage frames carrying the LAST statement's ResultSet.
/// `deadline_ms` and the trace fields mean exactly what they do on
/// ExecuteRequest; the whole batch is one trace. v2/v3 peers never see
/// these frames: a client only sends them stamped v4, and the server
/// rejects a batch frame claiming an older version.
struct BatchExecuteRequest {
  std::vector<std::string> scripts;
  uint32_t deadline_ms = 0;
  uint64_t trace_id = 0;
  bool trace_sampled = false;
};

Frame EncodeBatchExecuteRequest(const BatchExecuteRequest& req);
Result<BatchExecuteRequest> DecodeBatchExecuteRequest(const Frame& frame);

/// Serializes the per-statement outcomes of `result` (statuses travel
/// losslessly, like error frames) plus a results-follow flag that is
/// set iff the batch fully succeeded — the server then streams the
/// last statement's ResultSet as ordinary kResultPage frames.
Frame EncodeBatchStatus(const BatchResult& result);
/// Recovers submitted/statements into `*out` (last is left empty; the
/// caller folds any following result pages into it). `*results_follow`
/// mirrors the encoded flag.
Status DecodeBatchStatus(const Frame& frame, BatchResult* out,
                         bool* results_follow);

/// Error frames carry the Status losslessly: canonical ErrorCode byte
/// (what remote callers branch on), fine StatusCode byte, the
/// retry_after_ms backoff hint (v2; 0 = no hint), message.
Frame EncodeErrorFrame(const Status& status);
/// Recovers the transported Status into `*out` (always non-OK on a
/// well-formed error frame); the return value reports decoding itself
/// (Corruption if the payload is malformed).
Status DecodeErrorFrame(const Frame& frame, Status* out);

/// Splits a ResultSet into one or more kResultPage frames of at most
/// `rows_per_page` rows. The first page carries the column labels and
/// the explain text; the last page carries the affected count. A
/// ResultSet always encodes to at least one page (first == last for
/// small results).
std::vector<Frame> EncodeResultSetPages(const quel::ResultSet& rs,
                                        size_t rows_per_page);

/// Folds one kResultPage frame into `*out` (columns/explain from the
/// first page, rows appended in order, affected from the last). Sets
/// `*done` when the page was marked last.
Status DecodeResultPage(const Frame& frame, quel::ResultSet* out,
                        bool* done);

class Transport;

/// Blocking framed I/O over a Transport (net/transport.h). WriteFrame
/// loops until the whole frame is on the wire; ReadFrame reassembles
/// one frame. The int-fd overloads wrap the fd in a non-owning
/// TcpTransport — kept for raw-socket tests and one-shot writes.
///
/// ReadFrame distinguishes two failure classes via `*fatal`:
///  * fatal (stream unusable): peer closed, short read mid-frame, bad
///    magic, a recv timeout mid-frame — the caller must drop the
///    connection;
///  * recoverable (framing intact): unsupported version, oversized
///    payload (the payload is read and discarded), bad checksum — the
///    caller may answer with a typed error frame and keep reading.
Status WriteFrame(Transport* t, const Frame& frame);
Result<Frame> ReadFrame(Transport* t, size_t max_frame_bytes, bool* fatal);
Status WriteFrame(int fd, const Frame& frame);
Result<Frame> ReadFrame(int fd, size_t max_frame_bytes, bool* fatal);

/// True when `script` contains only read statements (range / retrieve /
/// explain): safe for the client to retry transparently after a lost
/// connection. Any append/replace/delete/define makes it false.
bool IsIdempotentScript(const std::string& script);

}  // namespace mdm::net

#endif  // MDM_NET_PROTOCOL_H_

#ifndef MDM_NET_TRANSPORT_H_
#define MDM_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace mdm::net {

/// The byte-stream seam under the mdmd wire protocol. Client and Server
/// frame all socket I/O through a Transport: production code uses
/// TcpTransport (a thin wrapper over a connected socket), chaos tests
/// interpose FaultInjectingTransport — the network analog of PR 1's
/// FaultInjectingDiskManager (storage/fault_injection.h).
///
/// Failure taxonomy the implementations must honor (docs/ROBUSTNESS.md):
///  * Unavailable       — the peer is gone (reset, refused, EOF mid-op)
///    or the OS rejected the I/O; the stream is unusable.
///  * DeadlineExceeded  — a configured send/recv timeout elapsed with
///    the operation incomplete (slow peer, stalled link). The stream
///    position is unknown, so the connection must be dropped too.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends all `n` bytes (blocking, looping over partial sends). Must
  /// never raise SIGPIPE — a dead peer is an Unavailable status.
  virtual Status Send(const uint8_t* data, size_t n) = 0;

  /// Receives up to `n` bytes into `buf`; returns the count actually
  /// received. 0 means the peer closed the stream cleanly (orderly EOF
  /// at a frame boundary is the normal end of a connection).
  virtual Result<size_t> Recv(uint8_t* buf, size_t n) = 0;

  virtual void Close() = 0;

  /// The underlying socket (for poll()); -1 once closed.
  virtual int fd() const = 0;

  /// Bounds how long one Recv/Send may block before returning
  /// DeadlineExceeded. 0 disables the bound. Default implementations
  /// are no-ops for transports without a kernel socket.
  virtual Status SetRecvTimeout(uint32_t ms) {
    (void)ms;
    return Status::OK();
  }
  virtual Status SetSendTimeout(uint32_t ms) {
    (void)ms;
    return Status::OK();
  }

  bool closed() const { return fd() < 0; }
};

/// A connected TCP (or any stream) socket behind the Transport seam.
class TcpTransport : public Transport {
 public:
  /// Wraps a connected fd. When `owns_fd`, Close()/the destructor close
  /// it; otherwise the caller keeps ownership (the fd-based
  /// ReadFrame/WriteFrame compatibility shims use this).
  explicit TcpTransport(int fd, bool owns_fd = true)
      : fd_(fd), owns_fd_(owns_fd) {}
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status Send(const uint8_t* data, size_t n) override;
  Result<size_t> Recv(uint8_t* buf, size_t n) override;
  void Close() override;
  int fd() const override { return fd_; }
  Status SetRecvTimeout(uint32_t ms) override;
  Status SetSendTimeout(uint32_t ms) override;

 private:
  int fd_ = -1;
  bool owns_fd_ = true;
};

/// TCP connect to host:port bounded by `timeout_ms`, returning a ready
/// TcpTransport. The Transport-level twin of DialTcp (net/client.h).
Result<std::unique_ptr<Transport>> DialTcpTransport(const std::string& host,
                                                    uint16_t port,
                                                    uint32_t timeout_ms);

/// Seeded fault plan for a FaultInjectingTransport. Two trigger modes
/// compose:
///  * probabilistic — each I/O boundary (a Send or Recv call) fires
///    independently with probability `p_fault`, the decision stream
///    fully determined by `seed`; the fired kind is drawn from the
///    kind weights below;
///  * deterministic — FailAtOp(nth, kind) arms exactly one fault at the
///    nth I/O boundary (1-based, Sends and Recvs share the counter),
///    the knob chaos sweeps iterate (the network ArmPowerCutAtIo).
///
/// Both modes are evaluated *in addition to* the process-global
/// FailpointRegistry points "net.send" / "net.recv", so the PR 1
/// failpoint machinery reaches socket I/O unchanged.
struct FaultPlan {
  uint64_t seed = 1;
  double p_fault = 0.0;
  /// Relative weights of the fault drawn once a boundary fires. A zero
  /// weight disables that kind. Defaults exercise every kind.
  uint32_t w_delay = 1;       ///< stall delay_ms, then complete intact
  uint32_t w_corrupt = 1;     ///< flip one byte in flight, report success
  uint32_t w_truncate = 1;    ///< deliver a prefix, then hard-close
  uint32_t w_short_write = 1; ///< deliver a prefix, report Unavailable
  uint32_t w_short_read = 1;  ///< benign: return fewer bytes than asked
  uint32_t w_close = 1;       ///< hard-close before the I/O
  uint32_t w_drop = 1;        ///< swallow the bytes, report success
  uint32_t delay_ms = 2;
};

/// Decorates a Transport with seeded, deterministic fault injection at
/// every Send/Recv boundary. Not thread-safe (Transports are
/// per-connection, used from one thread — same contract as Client).
class FaultInjectingTransport : public Transport {
 public:
  /// Per-kind injection counts, for "every fault site hit" assertions.
  struct Stats {
    uint64_t sends = 0;
    uint64_t recvs = 0;
    uint64_t delays = 0;
    uint64_t corruptions = 0;
    uint64_t truncations = 0;
    uint64_t short_writes = 0;
    uint64_t short_reads = 0;
    uint64_t closes = 0;
    uint64_t drops = 0;
    uint64_t errors = 0;

    uint64_t injected() const {
      return delays + corruptions + truncations + short_writes +
             short_reads + closes + drops + errors;
    }
  };

  FaultInjectingTransport(std::unique_ptr<Transport> base, FaultPlan plan,
                          FailpointRegistry* fps = nullptr)
      : base_(std::move(base)),
        plan_(plan),
        rng_(plan.seed),
        fps_(fps != nullptr ? fps : FailpointRegistry::Global()) {}

  /// Arms exactly one deterministic fault at the nth I/O boundary
  /// (1-based; counts Sends and Recvs in call order).
  void FailAtOp(uint64_t nth, FaultKind kind) {
    fail_at_op_ = nth;
    fail_kind_ = kind;
  }

  Status Send(const uint8_t* data, size_t n) override;
  Result<size_t> Recv(uint8_t* buf, size_t n) override;
  void Close() override { base_->Close(); }
  int fd() const override { return base_->fd(); }
  Status SetRecvTimeout(uint32_t ms) override {
    return base_->SetRecvTimeout(ms);
  }
  Status SetSendTimeout(uint32_t ms) override {
    return base_->SetSendTimeout(ms);
  }

  const Stats& stats() const { return stats_; }
  uint64_t ops() const { return op_count_; }

  /// Aggregate across every FaultInjectingTransport in the process
  /// since the last ResetProcessStats — chaos sweeps assert sites were
  /// hit even when each request dials a fresh transport.
  static Stats ProcessStats();
  static void ResetProcessStats();

 private:
  /// Decides what (if anything) to inject at this boundary.
  FaultDecision Decide(bool is_send);
  FaultKind DrawKind(bool is_send);
  void Count(FaultKind kind);

  std::unique_ptr<Transport> base_;
  FaultPlan plan_;
  Rng rng_;
  FailpointRegistry* fps_;
  uint64_t op_count_ = 0;
  uint64_t fail_at_op_ = 0;  // 0 = disarmed
  FaultKind fail_kind_ = FaultKind::kNone;
  Stats stats_;
};

}  // namespace mdm::net

#endif  // MDM_NET_TRANSPORT_H_

#include "net/connection.h"

#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/strings.h"
#include "ddl/parser.h"
#include "obs/trace.h"

namespace mdm {

namespace {

bool IsDdlScript(const std::string& script) {
  std::string head = AsciiLower(std::string(StrTrim(script)));
  return StartsWith(head, "define") || StartsWith(head, "destroy");
}

quel::ResultSet DdlSummary(const ddl::DdlResult& ddl) {
  quel::ResultSet rs;
  // "indexes" counts index DDL statements executed, defined plus
  // destroyed — schema objects the script touched either way.
  rs.columns = {"entity_types", "relationships", "orderings", "indexes"};
  size_t index_ops = ddl.indexes.size() + ddl.destroyed_indexes.size();
  rs.rows.push_back(
      {rel::Value::Int(static_cast<int64_t>(ddl.entity_types.size())),
       rel::Value::Int(static_cast<int64_t>(ddl.relationships.size())),
       rel::Value::Int(static_cast<int64_t>(ddl.orderings.size())),
       rel::Value::Int(static_cast<int64_t>(index_ops))});
  rs.affected = ddl.entity_types.size() + ddl.relationships.size() +
                ddl.orderings.size() + index_ops;
  return rs;
}

/// Dispatches one script with the exclusive db latch already held and
/// an er statement group open — the shape both the batch path and the
/// latched DDL path execute under.
Result<quel::ResultSet> RunStatementPreLocked(er::Database* db,
                                              quel::QuelSession* session,
                                              const std::string& script) {
  if (IsDdlScript(script)) {
    MDM_ASSIGN_OR_RETURN(ddl::DdlResult ddl, ddl::ExecuteDdl(script, db));
    return DdlSummary(ddl);
  }
  return session->ExecutePreLocked(script);
}

}  // namespace

Result<quel::ResultSet> RunScript(er::Database* db,
                                  quel::QuelSession* session,
                                  const std::string& script) {
  if (IsDdlScript(script)) {
    // DDL mutates schema state shared with every reader, so it takes
    // the exclusive latch and commits through a statement group exactly
    // like a QUEL write (historically it ran unlatched, racing against
    // concurrent QUEL sessions on the same database).
    Result<quel::ResultSet> rs = quel::ResultSet{};
    Result<uint64_t> lsn = 0;
    {
      std::unique_lock<std::shared_mutex> latch(db->latch());
      db->BeginStatementGroup();
      rs = RunStatementPreLocked(db, session, script);
      lsn = db->EndStatementGroup();
    }
    MDM_RETURN_IF_ERROR(rs.status());
    MDM_RETURN_IF_ERROR(lsn.status());
    MDM_RETURN_IF_ERROR(db->WaitDurable(*lsn));
    return rs;
  }
  return session->Execute(script);
}

Result<BatchResult> RunBatch(er::Database* db, quel::QuelSession* session,
                             const std::vector<std::string>& scripts) {
  BatchResult out;
  out.submitted = scripts.size();
  out.statements.reserve(scripts.size());
  Result<uint64_t> lsn = 0;
  {
    std::unique_lock<std::shared_mutex> latch(db->latch());
    db->BeginStatementGroup();
    for (const std::string& script : scripts) {
      Result<quel::ResultSet> rs =
          RunStatementPreLocked(db, session, script);
      if (!rs.ok()) {
        // Prefix-stop: earlier statements stay applied and commit with
        // the group (redo-only WAL has no statement-level undo); the
        // tail after the failure never runs.
        out.statements.push_back({rs.status(), 0});
        out.last = quel::ResultSet{};
        break;
      }
      out.statements.push_back({Status::OK(), rs->affected});
      out.last = std::move(*rs);
    }
    // The group always ends — even after a failed statement — so the
    // latch is never released with a transaction half-open.
    lsn = db->EndStatementGroup();
  }
  MDM_RETURN_IF_ERROR(lsn.status());
  // One durability wait for the whole batch, after the latch is gone:
  // the group-commit coordinator folds it into a shared fsync.
  MDM_RETURN_IF_ERROR(db->WaitDurable(*lsn));
  return out;
}

Connection Connection::Local() {
  Connection c;
  c.owned_db_ = std::make_unique<er::Database>();
  c.db_ = c.owned_db_.get();
  c.session_ = std::make_unique<quel::QuelSession>(c.db_);
  return c;
}

Connection Connection::Local(er::Database* db) {
  Connection c;
  c.db_ = db;
  c.session_ = std::make_unique<quel::QuelSession>(db);
  return c;
}

Result<Connection> Connection::Remote(const std::string& host, uint16_t port,
                                      net::ClientOptions opts) {
  MDM_ASSIGN_OR_RETURN(net::Client client,
                       net::Client::Connect(host, port, opts));
  Connection c;
  c.client_ = std::make_unique<net::Client>(std::move(client));
  return c;
}

Result<Connection> Connection::Remote(const std::string& endpoint,
                                      net::ClientOptions opts) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 == endpoint.size())
    return InvalidArgument("endpoint must be host:port, got '" + endpoint +
                           "'");
  std::string host = endpoint.substr(0, colon);
  // Accept [v6::literal]:port and unwrap the brackets for the resolver.
  if (host.size() >= 2 && host.front() == '[' && host.back() == ']')
    host = host.substr(1, host.size() - 2);
  if (host.empty())
    return InvalidArgument("empty host in endpoint '" + endpoint + "'");
  if (host.find(':') != std::string::npos && endpoint.front() != '[')
    return InvalidArgument(
        "ambiguous endpoint '" + endpoint +
        "': bracket IPv6 literals as [addr]:port");
  int port = 0;
  for (size_t i = colon + 1; i < endpoint.size(); ++i) {
    char ch = endpoint[i];
    if (ch < '0' || ch > '9')
      return InvalidArgument("bad port in endpoint '" + endpoint + "'");
    port = port * 10 + (ch - '0');
    if (port > 65535)
      return InvalidArgument("port out of range in '" + endpoint + "'");
  }
  if (port == 0)
    return InvalidArgument("port must be 1-65535 in '" + endpoint + "'");
  return Remote(host, static_cast<uint16_t>(port), opts);
}

void Connection::EnableLocalTracing(uint64_t seed) {
  if (client_ != nullptr) return;  // remote traces via ClientOptions
  local_trace_rng_ = std::make_unique<Rng>(seed);
}

uint64_t Connection::last_trace_id() const {
  if (client_ != nullptr) return client_->last_trace_id();
  return local_last_trace_id_;
}

bool Connection::last_trace_sampled() const {
  if (client_ != nullptr) return client_->last_trace_sampled();
  return local_last_trace_id_ != 0;
}

Result<quel::ResultSet> Connection::Execute(const std::string& script,
                                            const ExecOptions& opts) {
  if (client_ != nullptr) return client_->Execute(script, opts);
  if (local_trace_rng_ != nullptr &&
      opts.trace != ExecOptions::Trace::kOff) {
    // Local analog of the server's request scope: one always-sampled
    // context per Execute, published to the global ring on exit so
    // mdmsh's `\trace last` can export it.
    uint64_t id = local_trace_rng_->Next();
    if (id == 0) id = local_trace_rng_->Next() | 1;
    local_last_trace_id_ = id;
    obs::TraceContext trace_ctx(id, /*sampled=*/true);
    return RunScript(db_, session_.get(), script);
  }
  return RunScript(db_, session_.get(), script);
}

Result<BatchResult> Connection::ExecuteBatch(
    const std::vector<std::string>& scripts, const ExecOptions& opts) {
  if (client_ != nullptr) return client_->ExecuteBatch(scripts, opts);
  if (local_trace_rng_ != nullptr &&
      opts.trace != ExecOptions::Trace::kOff) {
    uint64_t id = local_trace_rng_->Next();
    if (id == 0) id = local_trace_rng_->Next() | 1;
    local_last_trace_id_ = id;
    obs::TraceContext trace_ctx(id, /*sampled=*/true);
    return RunBatch(db_, session_.get(), scripts);
  }
  return RunBatch(db_, session_.get(), scripts);
}

Status Connection::Ping() {
  if (client_ != nullptr) return client_->Ping();
  return Status::OK();
}

}  // namespace mdm

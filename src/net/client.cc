#include "net/client.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mdm::net {

namespace {

Status SetBlocking(int fd, bool blocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0)
    return Unavailable(std::string("fcntl failed: ") + std::strerror(errno));
  if (blocking)
    flags &= ~O_NONBLOCK;
  else
    flags |= O_NONBLOCK;
  if (::fcntl(fd, F_SETFL, flags) < 0)
    return Unavailable(std::string("fcntl failed: ") + std::strerror(errno));
  return Status::OK();
}

}  // namespace

Result<int> DialTcp(const std::string& host, uint16_t port,
                    uint32_t timeout_ms) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &addrs);
  if (rc != 0)
    return Unavailable("cannot resolve " + host + ": " + gai_strerror(rc));

  Status last = Unavailable("no addresses for " + host);
  for (struct addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last = Unavailable(std::string("socket failed: ") +
                         std::strerror(errno));
      continue;
    }
    // Non-blocking connect bounded by poll, then back to blocking.
    Status s = SetBlocking(fd, false);
    if (s.ok()) {
      if (::connect(fd, a->ai_addr, a->ai_addrlen) < 0 &&
          errno != EINPROGRESS) {
        s = Unavailable(std::string("connect failed: ") +
                        std::strerror(errno));
      } else {
        struct pollfd pfd = {fd, POLLOUT, 0};
        int pr = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
        if (pr == 0) {
          s = DeadlineExceeded("connect to " + host + ":" + port_str +
                               " timed out after " +
                               std::to_string(timeout_ms) + "ms");
        } else if (pr < 0) {
          s = Unavailable(std::string("poll failed: ") +
                          std::strerror(errno));
        } else {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0)
            s = Unavailable("connect to " + host + ":" + port_str +
                            " failed: " + std::strerror(err));
        }
      }
    }
    if (s.ok()) s = SetBlocking(fd, true);
    if (s.ok()) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(addrs);
      return fd;
    }
    ::close(fd);
    last = std::move(s);
  }
  ::freeaddrinfo(addrs);
  return last;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               ClientOptions opts) {
  MDM_ASSIGN_OR_RETURN(int fd, DialTcp(host, port, opts.connect_timeout_ms));
  Client client(opts, host, port, fd);
  // Admission handshake: a server over its connection limit answers the
  // ping with RESOURCE_EXHAUSTED before closing.
  MDM_RETURN_IF_ERROR(client.PingOnce());
  return client;
}

Client::Client(Client&& other) noexcept
    : opts_(other.opts_),
      host_(std::move(other.host_)),
      port_(other.port_),
      fd_(other.fd_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    opts_ = other.opts_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Reconnect() {
  Close();
  MDM_ASSIGN_OR_RETURN(int fd,
                       DialTcp(host_, port_, opts_.connect_timeout_ms));
  fd_ = fd;
  return PingOnce();
}

Status Client::PingOnce() {
  if (fd_ < 0) return Unavailable("client is not connected");
  Frame ping;
  ping.type = FrameType::kPing;
  MDM_RETURN_IF_ERROR(WriteFrame(fd_, ping));
  bool fatal = false;
  Result<Frame> reply = ReadFrame(fd_, opts_.max_frame_bytes, &fatal);
  if (!reply.ok()) {
    if (fatal) Close();
    return reply.status();
  }
  if (reply->type == FrameType::kError) {
    Status remote;
    MDM_RETURN_IF_ERROR(DecodeErrorFrame(*reply, &remote));
    return remote;
  }
  if (reply->type != FrameType::kPong)
    return Internal("unexpected reply to ping");
  return Status::OK();
}

Status Client::Ping() {
  Status s = PingOnce();
  if (s.code() == StatusCode::kUnavailable && opts_.retry_reads > 0) {
    MDM_RETURN_IF_ERROR(Reconnect());
    return PingOnce();
  }
  return s;
}

Result<quel::ResultSet> Client::ExecuteOnce(const std::string& script) {
  if (fd_ < 0) return Unavailable("client is not connected");
  ExecuteRequest req;
  req.script = script;
  req.deadline_ms = opts_.deadline_ms;
  Status sent = WriteFrame(fd_, EncodeExecuteRequest(req));
  if (!sent.ok()) {
    Close();
    return sent;
  }
  quel::ResultSet rs;
  bool done = false;
  while (!done) {
    bool fatal = false;
    Result<Frame> frame = ReadFrame(fd_, opts_.max_frame_bytes, &fatal);
    if (!frame.ok()) {
      if (fatal) Close();
      return frame.status();
    }
    switch (frame->type) {
      case FrameType::kError: {
        Status remote;
        MDM_RETURN_IF_ERROR(DecodeErrorFrame(*frame, &remote));
        return remote;
      }
      case FrameType::kResultPage:
        MDM_RETURN_IF_ERROR(DecodeResultPage(*frame, &rs, &done));
        break;
      default:
        Close();  // stream state unknown: give up on the connection
        return Internal("unexpected frame type in Execute reply");
    }
  }
  return rs;
}

Result<quel::ResultSet> Client::Execute(const std::string& script) {
  Result<quel::ResultSet> r = ExecuteOnce(script);
  // A connection lost mid-read is transparently retryable only for
  // idempotent scripts: a mutation may have been applied before the
  // reset, so replaying it could double-apply.
  int attempts = opts_.retry_reads;
  while (!r.ok() && attempts-- > 0 &&
         r.status().code() == StatusCode::kUnavailable &&
         IsIdempotentScript(script)) {
    Status re = Reconnect();
    if (!re.ok()) return re;
    r = ExecuteOnce(script);
  }
  return r;
}

}  // namespace mdm::net

#include "net/client.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace mdm::net {

namespace {

Status SetBlocking(int fd, bool blocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0)
    return Unavailable(std::string("fcntl failed: ") + std::strerror(errno));
  if (blocking)
    flags &= ~O_NONBLOCK;
  else
    flags |= O_NONBLOCK;
  if (::fcntl(fd, F_SETFL, flags) < 0)
    return Unavailable(std::string("fcntl failed: ") + std::strerror(errno));
  return Status::OK();
}

obs::Counter* RetriesCounter() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_net_client_retries_total",
      "Transparent client retries of idempotent reads");
  return c;
}

obs::Counter* BackoffCounter() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_net_client_backoff_ms_total",
      "Milliseconds spent sleeping between client retry attempts");
  return c;
}

/// A transport-level failure the retry loop may transparently repair by
/// reconnecting: the peer vanished (UNAVAILABLE) or the byte stream
/// broke (CORRUPTION — a flipped frame on a flaky link). Everything
/// else is an answer from the server and surfaces as-is.
bool IsTransportFailure(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kCorruption;
}

/// Normalizes a ReadFrame failure observed *mid-reply*. None of these
/// are answers from the server (those arrive as decoded kError frames);
/// they all mean the reply stream is unusable:
///  * a recv timeout is a stalled peer/link — UNAVAILABLE, so the
///    retry loop owns the deadline verdict;
///  * a version or frame-size anomaly on a stream that handshook fine
///    is byte garbage wearing a plausible header — CORRUPTION, exactly
///    like a checksum mismatch.
Status AsStreamFailure(const Status& s, const char* what) {
  switch (s.code()) {
    case StatusCode::kDeadlineExceeded:
      return Unavailable(std::string(what) + " stalled: " + s.message());
    case StatusCode::kUnavailable:
    case StatusCode::kCorruption:
      return s;
    default:
      return Corruption(std::string(what) + " stream broken: " +
                        s.message());
  }
}

}  // namespace

Result<int> DialTcp(const std::string& host, uint16_t port,
                    uint32_t timeout_ms) {
  if (host.empty())
    return InvalidArgument("host must not be empty");
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &addrs);
  if (rc != 0)
    return Unavailable("cannot resolve " + host + ": " + gai_strerror(rc));

  Status last = Unavailable("no addresses for " + host);
  for (struct addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last = Unavailable(std::string("socket failed: ") +
                         std::strerror(errno));
      continue;
    }
    // Non-blocking connect bounded by poll, then back to blocking.
    Status s = SetBlocking(fd, false);
    if (s.ok()) {
      if (::connect(fd, a->ai_addr, a->ai_addrlen) < 0 &&
          errno != EINPROGRESS) {
        s = Unavailable(std::string("connect failed: ") +
                        std::strerror(errno));
      } else {
        struct pollfd pfd = {fd, POLLOUT, 0};
        int pr = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
        if (pr == 0) {
          s = DeadlineExceeded("connect to " + host + ":" + port_str +
                               " timed out after " +
                               std::to_string(timeout_ms) + "ms");
        } else if (pr < 0) {
          s = Unavailable(std::string("poll failed: ") +
                          std::strerror(errno));
        } else {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0)
            s = Unavailable("connect to " + host + ":" + port_str +
                            " failed: " + std::strerror(err));
        }
      }
    }
    if (s.ok()) s = SetBlocking(fd, true);
    if (s.ok()) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(addrs);
      return fd;
    }
    ::close(fd);
    last = std::move(s);
  }
  ::freeaddrinfo(addrs);
  return last;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               ClientOptions opts) {
  Result<std::unique_ptr<Transport>> t =
      opts.transport_factory
          ? opts.transport_factory(host, port, opts.connect_timeout_ms)
          : DialTcpTransport(host, port, opts.connect_timeout_ms);
  if (!t.ok()) return t.status();
  Client client(std::move(opts), host, port, std::move(*t));
  // Admission handshake: a server over its connection limit answers the
  // ping with RESOURCE_EXHAUSTED before closing. Bound the wait so a
  // half-dead server cannot hang the connect.
  if (client.opts_.connect_timeout_ms != 0)
    (void)client.transport_->SetRecvTimeout(client.opts_.connect_timeout_ms);
  MDM_RETURN_IF_ERROR(client.PingOnce());
  return client;
}

void Client::Close() {
  if (transport_ != nullptr) transport_->Close();
}

Status Client::Reconnect(const DeadlineBudget& budget) {
  Close();
  uint32_t connect_ms = opts_.connect_timeout_ms;
  if (!budget.unlimited()) {
    uint64_t remaining = std::max<uint64_t>(1, budget.remaining_ms());
    connect_ms = connect_ms != 0
                     ? static_cast<uint32_t>(
                           std::min<uint64_t>(connect_ms, remaining))
                     : static_cast<uint32_t>(remaining);
  }
  Result<std::unique_ptr<Transport>> t =
      opts_.transport_factory
          ? opts_.transport_factory(host_, port_, connect_ms)
          : DialTcpTransport(host_, port_, connect_ms);
  if (!t.ok()) {
    // A timed-out dial is still "the peer is unreachable" to the retry
    // loop; the deadline verdict belongs to the budget alone.
    if (t.status().code() == StatusCode::kDeadlineExceeded)
      return Unavailable("reconnect timed out: " + t.status().message());
    return t.status();
  }
  transport_ = std::move(*t);
  ArmAttemptTimeout(budget);  // bound the handshake ping too
  if (budget.unlimited() && opts_.attempt_timeout_ms == 0 &&
      opts_.connect_timeout_ms != 0) {
    // The budget supplies no bound, so mirror Connect: a half-dead
    // server must not hang the handshake indefinitely. WithRetries
    // re-arms (and thereby clears) this before the next attempt.
    (void)transport_->SetRecvTimeout(opts_.connect_timeout_ms);
  }
  return PingOnce();
}

void Client::ArmAttemptTimeout(const DeadlineBudget& budget) {
  if (transport_ == nullptr || transport_->closed()) return;
  uint64_t ms = 0;  // 0 = unbounded
  if (!budget.unlimited())
    ms = std::max<uint64_t>(1, budget.remaining_ms());
  if (opts_.attempt_timeout_ms != 0)
    ms = ms != 0 ? std::min<uint64_t>(ms, opts_.attempt_timeout_ms)
                 : opts_.attempt_timeout_ms;
  // Always applied, including 0 (= unbounded): the connect/reconnect
  // handshake arms connect_timeout_ms on the socket, and a leftover
  // handshake bound must never cap a later attempt's recv — a query
  // legitimately slower than connect_timeout_ms is not a dead peer.
  (void)transport_->SetRecvTimeout(static_cast<uint32_t>(ms));
  (void)transport_->SetSendTimeout(static_cast<uint32_t>(ms));
}

Status Client::PingOnce() {
  if (transport_ == nullptr || transport_->closed())
    return Unavailable("client is not connected");
  Frame ping;
  ping.type = FrameType::kPing;
  MDM_RETURN_IF_ERROR(WriteFrame(transport_.get(), ping));
  bool fatal = false;
  Result<Frame> reply =
      ReadFrame(transport_.get(), opts_.max_frame_bytes, &fatal);
  if (!reply.ok()) {
    Close();
    return AsStreamFailure(reply.status(), "ping reply");
  }
  if (reply->type == FrameType::kError) {
    Status remote;
    MDM_RETURN_IF_ERROR(DecodeErrorFrame(*reply, &remote));
    return remote;
  }
  if (reply->type != FrameType::kPong)
    return Internal("unexpected reply to ping");
  return Status::OK();
}

Result<quel::ResultSet> Client::ExecuteOnce(const std::string& script,
                                            uint32_t deadline_ms) {
  if (transport_ == nullptr || transport_->closed())
    return Unavailable("client is not connected");
  ExecuteRequest req;
  req.script = script;
  req.deadline_ms = deadline_ms;
  req.trace_id = last_trace_id_;
  req.trace_sampled = last_trace_sampled_;
  Status sent = WriteFrame(transport_.get(), EncodeExecuteRequest(req));
  if (!sent.ok()) {
    Close();
    if (sent.code() == StatusCode::kDeadlineExceeded)
      return Unavailable("send stalled: " + sent.message());
    return sent;
  }
  quel::ResultSet rs;
  bool done = false;
  while (!done) {
    bool fatal = false;
    Result<Frame> frame =
        ReadFrame(transport_.get(), opts_.max_frame_bytes, &fatal);
    if (!frame.ok()) {
      // Any failure mid-response leaves the reply stream unusable —
      // even a "recoverable" CRC mismatch means pages were lost — so
      // the connection is dropped either way; the retry loop may dial
      // a fresh one.
      Close();
      return AsStreamFailure(frame.status(), "response");
    }
    switch (frame->type) {
      case FrameType::kError: {
        Status remote;
        MDM_RETURN_IF_ERROR(DecodeErrorFrame(*frame, &remote));
        return remote;
      }
      case FrameType::kResultPage:
        MDM_RETURN_IF_ERROR(DecodeResultPage(*frame, &rs, &done));
        break;
      default:
        Close();  // stream state unknown: give up on the connection
        return Internal("unexpected frame type in Execute reply");
    }
  }
  return rs;
}

Result<BatchResult> Client::ExecuteBatchOnce(
    const std::vector<std::string>& scripts, uint32_t deadline_ms) {
  if (transport_ == nullptr || transport_->closed())
    return Unavailable("client is not connected");
  BatchExecuteRequest req;
  req.scripts = scripts;
  req.deadline_ms = deadline_ms;
  req.trace_id = last_trace_id_;
  req.trace_sampled = last_trace_sampled_;
  Status sent = WriteFrame(transport_.get(), EncodeBatchExecuteRequest(req));
  if (!sent.ok()) {
    Close();
    if (sent.code() == StatusCode::kDeadlineExceeded)
      return Unavailable("send stalled: " + sent.message());
    return sent;
  }
  BatchResult result;
  bool have_status = false;
  bool results_follow = false;
  bool done = false;
  // Reply shape: one kBatchStatus frame, then — iff every statement
  // succeeded — the last statement's ResultSet as ordinary pages.
  while (!have_status || (results_follow && !done)) {
    bool fatal = false;
    Result<Frame> frame =
        ReadFrame(transport_.get(), opts_.max_frame_bytes, &fatal);
    if (!frame.ok()) {
      Close();
      return AsStreamFailure(frame.status(), "batch response");
    }
    switch (frame->type) {
      case FrameType::kError: {
        Status remote;
        MDM_RETURN_IF_ERROR(DecodeErrorFrame(*frame, &remote));
        return remote;
      }
      case FrameType::kBatchStatus:
        if (have_status) {
          Close();
          return Internal("duplicate BatchStatus frame in batch reply");
        }
        MDM_RETURN_IF_ERROR(
            DecodeBatchStatus(*frame, &result, &results_follow));
        have_status = true;
        break;
      case FrameType::kResultPage:
        if (!have_status) {
          Close();
          return Internal("result page before BatchStatus in batch reply");
        }
        MDM_RETURN_IF_ERROR(DecodeResultPage(*frame, &result.last, &done));
        break;
      default:
        Close();  // stream state unknown: give up on the connection
        return Internal("unexpected frame type in ExecuteBatch reply");
    }
  }
  return result;
}

template <typename T, typename Attempt>
Result<T> Client::WithRetries(bool retryable, uint32_t deadline_ms,
                              const RetryPolicy& retry, Attempt attempt) {
  DeadlineBudget budget(deadline_ms);
  RetrySchedule schedule(retry);
  int attempts_made = 0;
  Status last = Status::OK();
  for (;;) {
    if (budget.exhausted())
      return DeadlineExceeded(
          "deadline of " + std::to_string(deadline_ms) +
          "ms exhausted after " + std::to_string(attempts_made) +
          " attempt(s)" +
          (last.ok() ? std::string() : "; last error: " + last.message()));
    std::optional<Status> fail;
    if (transport_ == nullptr || transport_->closed()) {
      Status re = Reconnect(budget);
      if (!re.ok()) fail = re;
    }
    if (!fail.has_value()) {
      ArmAttemptTimeout(budget);
      Result<T> r = attempt();
      if (r.ok()) return r;
      fail = r.status();
    }
    ++attempts_made;
    last = *fail;
    // Answers from the server (NOT_FOUND, parse errors, a missed
    // execution deadline, admission RESOURCE_EXHAUSTED, ...) surface
    // as-is; only transport failures are transparently repairable.
    if (!IsTransportFailure(last)) return last;
    if (!retryable) return last;
    if (attempts_made >= retry.max_attempts) {
      Status s = Unavailable(
          "retries exhausted after " + std::to_string(attempts_made) +
          " attempt(s); last error: " + last.message());
      return s;
    }
    uint32_t backoff_ms =
        std::max(schedule.NextBackoffMs(), last.retry_after_ms());
    if (!budget.CanAfford(backoff_ms))
      return DeadlineExceeded(
          "retry budget exhausted: " + std::to_string(budget.elapsed_ms()) +
          "ms elapsed of a " + std::to_string(deadline_ms) +
          "ms deadline after " + std::to_string(attempts_made) +
          " attempt(s); last error: " + last.message());
    RetriesCounter()->Inc();
    BackoffCounter()->Inc(backoff_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
}

void Client::NewTraceIdentity(const ExecOptions& opts) {
  // One trace identity per Execute/ExecuteBatch call: every retry
  // attempt replays the same id, so a retried request is one trace
  // server-side. Ids come from the seeded PRNG (never wall-clock) and
  // are never 0 — 0 marks "no trace context" on the wire.
  last_trace_id_ = trace_rng_.Next();
  if (last_trace_id_ == 0) last_trace_id_ = trace_rng_.Next() | 1;
  switch (opts.trace) {
    case ExecOptions::Trace::kForce:
      last_trace_sampled_ = true;
      break;
    case ExecOptions::Trace::kOff:
      last_trace_sampled_ = false;
      break;
    case ExecOptions::Trace::kDefault:
      last_trace_sampled_ = opts_.trace_sample_rate > 0.0 &&
                            trace_rng_.Bernoulli(opts_.trace_sample_rate);
      break;
  }
}

Result<quel::ResultSet> Client::Execute(const std::string& script,
                                        const ExecOptions& opts) {
  NewTraceIdentity(opts);
  uint32_t deadline_ms = EffectiveDeadlineMs(opts);
  const RetryPolicy& retry = EffectiveRetry(opts);
  // A mutation may have been applied before a connection died, so
  // replaying it could double-apply; only idempotent reads retry.
  const bool retryable =
      retry.max_attempts > 1 && IsIdempotentScript(script);
  return WithRetries<quel::ResultSet>(
      retryable, deadline_ms, retry,
      [this, &script, deadline_ms] {
        return ExecuteOnce(script, deadline_ms);
      });
}

Result<BatchResult> Client::ExecuteBatch(
    const std::vector<std::string>& scripts, const ExecOptions& opts) {
  NewTraceIdentity(opts);
  uint32_t deadline_ms = EffectiveDeadlineMs(opts);
  const RetryPolicy& retry = EffectiveRetry(opts);
  // The server may have applied (and committed) a batch whose reply was
  // lost, so only an all-reads batch is transparently retryable.
  bool all_idempotent = true;
  for (const std::string& s : scripts)
    if (!IsIdempotentScript(s)) {
      all_idempotent = false;
      break;
    }
  const bool retryable = retry.max_attempts > 1 && all_idempotent;
  return WithRetries<BatchResult>(
      retryable, deadline_ms, retry,
      [this, &scripts, deadline_ms] {
        return ExecuteBatchOnce(scripts, deadline_ms);
      });
}

Status Client::Ping() {
  Result<bool> r = WithRetries<bool>(opts_.retry.max_attempts > 1,
                                     opts_.deadline_ms, opts_.retry,
                                     [this]() -> Result<bool> {
                                       Status s = PingOnce();
                                       if (!s.ok()) return s;
                                       return true;
                                     });
  if (!r.ok()) return r.status();
  return Status::OK();
}

}  // namespace mdm::net

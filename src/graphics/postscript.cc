#include "graphics/postscript.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace mdm::graphics {

void BBox::Extend(double x, double y) {
  if (empty) {
    min_x = max_x = x;
    min_y = max_y = y;
    empty = false;
    return;
  }
  if (x < min_x) min_x = x;
  if (x > max_x) max_x = x;
  if (y < min_y) min_y = y;
  if (y > max_y) max_y = y;
}

std::string Rendering::ToSvg() const {
  const double pad = 4.0;
  double w = bbox.Width() + 2 * pad;
  double h = bbox.Height() + 2 * pad;
  double ox = bbox.empty ? 0 : bbox.min_x - pad;
  double oy = bbox.empty ? 0 : bbox.min_y - pad;
  std::string svg = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" "
      "viewBox=\"%.2f %.2f %.2f %.2f\">\n",
      ox, oy, w, h);
  for (const PaintedPath& p : paths) {
    int shade = static_cast<int>((1.0 - p.gray) * 0.0 + p.gray * 255.0);
    if (p.filled) {
      svg += StrFormat("  <path d=\"%s\" fill=\"rgb(%d,%d,%d)\"/>\n",
                       p.d.c_str(), shade, shade, shade);
    } else {
      svg += StrFormat(
          "  <path d=\"%s\" fill=\"none\" stroke=\"rgb(%d,%d,%d)\" "
          "stroke-width=\"%.2f\"/>\n",
          p.d.c_str(), shade, shade, shade, p.line_width);
    }
  }
  svg += "</svg>\n";
  return svg;
}

namespace {

/// 2x3 affine transform (a b c d e f): x' = a*x + c*y + e, y' = b*x +
/// d*y + f.
struct Matrix {
  double a = 1, b = 0, c = 0, d = 1, e = 0, f = 0;

  void Apply(double x, double y, double* ox, double* oy) const {
    *ox = a * x + c * y + e;
    *oy = b * x + d * y + f;
  }
  // this = this * m (m applied first in user space).
  void Concat(const Matrix& m) {
    Matrix r;
    r.a = a * m.a + c * m.b;
    r.b = b * m.a + d * m.b;
    r.c = a * m.c + c * m.d;
    r.d = b * m.c + d * m.d;
    r.e = a * m.e + c * m.f + e;
    r.f = b * m.e + d * m.f + f;
    *this = r;
  }
};

struct GState {
  Matrix ctm;
  double line_width = 1.0;
  double gray = 0.0;
};

struct PsValue {
  enum class Kind { kNumber, kProcedure };
  Kind kind = Kind::kNumber;
  double number = 0;
  std::vector<std::string> proc;  // token list
};

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    char ch = text[i];
    if (ch == '%') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      ++i;
      continue;
    }
    if (ch == '{' || ch == '}') {
      out.push_back(std::string(1, ch));
      ++i;
      continue;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])) &&
           text[i] != '{' && text[i] != '}' && text[i] != '%')
      ++i;
    out.push_back(text.substr(start, i - start));
  }
  return out;
}

bool IsNumber(const std::string& tok, double* value) {
  if (tok.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) return false;
  *value = v;
  return true;
}

}  // namespace

struct PostScriptInterp::Impl {
  std::vector<double> stack;
  std::map<std::string, PsValue> dict;
  std::vector<GState> gstack;
  GState gs;
  // Current path in device coordinates.
  std::string path;
  bool has_current_point = false;
  double cur_x = 0, cur_y = 0;  // user-space current point
  Rendering rendering;
  int depth = 0;  // procedure recursion guard

  Status Pop(double* v) {
    if (stack.empty()) return FailedPrecondition("operand stack underflow");
    *v = stack.back();
    stack.pop_back();
    return Status::OK();
  }

  void DevPoint(double x, double y, double* dx, double* dy) {
    gs.ctm.Apply(x, y, dx, dy);
    rendering.bbox.Extend(*dx, *dy);
  }

  Status MoveTo(double x, double y, bool relative) {
    if (relative) {
      if (!has_current_point)
        return FailedPrecondition("rmoveto with no current point");
      x += cur_x;
      y += cur_y;
    }
    double dx, dy;
    DevPoint(x, y, &dx, &dy);
    path += StrFormat("M %.2f %.2f ", dx, dy);
    cur_x = x;
    cur_y = y;
    has_current_point = true;
    return Status::OK();
  }

  Status LineTo(double x, double y, bool relative) {
    if (!has_current_point)
      return FailedPrecondition("lineto with no current point");
    if (relative) {
      x += cur_x;
      y += cur_y;
    }
    double dx, dy;
    DevPoint(x, y, &dx, &dy);
    path += StrFormat("L %.2f %.2f ", dx, dy);
    cur_x = x;
    cur_y = y;
    return Status::OK();
  }

  void FlushPath(bool filled) {
    if (path.empty()) return;
    PaintedPath p;
    p.d = StrTrim(path);
    p.filled = filled;
    p.line_width = gs.line_width;
    p.gray = gs.gray;
    rendering.paths.push_back(std::move(p));
    path.clear();
    has_current_point = false;
  }

  Status Execute(const std::vector<std::string>& tokens);
  Status ExecuteToken(const std::vector<std::string>& tokens, size_t* i);
};

Status PostScriptInterp::Impl::Execute(
    const std::vector<std::string>& tokens) {
  if (++depth > 64) {
    --depth;
    return FailedPrecondition("procedure recursion too deep");
  }
  for (size_t i = 0; i < tokens.size();) {
    Status s = ExecuteToken(tokens, &i);
    if (!s.ok()) {
      --depth;
      return s;
    }
  }
  --depth;
  return Status::OK();
}

Status PostScriptInterp::Impl::ExecuteToken(
    const std::vector<std::string>& tokens, size_t* ip) {
  const std::string& tok = tokens[*ip];
  double num;
  if (IsNumber(tok, &num)) {
    stack.push_back(num);
    ++*ip;
    return Status::OK();
  }
  // /name [value|{proc}] ... def
  if (tok[0] == '/') {
    std::string name = tok.substr(1);
    ++*ip;
    if (*ip >= tokens.size())
      return ParseError("literal name at end of program");
    PsValue v;
    if (tokens[*ip] == "{") {
      int nest = 1;
      ++*ip;
      while (*ip < tokens.size() && nest > 0) {
        if (tokens[*ip] == "{") ++nest;
        if (tokens[*ip] == "}") {
          --nest;
          if (nest == 0) break;
        }
        v.proc.push_back(tokens[*ip]);
        ++*ip;
      }
      if (nest != 0) return ParseError("unbalanced procedure braces");
      ++*ip;  // past '}'
      v.kind = PsValue::Kind::kProcedure;
    } else if (tokens[*ip] == "exch") {
      // The `value /name exch def` idiom: bind the value already on the
      // operand stack (GParmUse set-up fragments use this, §6.2).
      ++*ip;
      double value;
      MDM_RETURN_IF_ERROR(Pop(&value));
      v.kind = PsValue::Kind::kNumber;
      v.number = value;
    } else {
      double value;
      if (!IsNumber(tokens[*ip], &value)) {
        // Allow `/a b def` where b is an existing numeric binding.
        auto it = dict.find(tokens[*ip]);
        if (it == dict.end() || it->second.kind != PsValue::Kind::kNumber)
          return ParseError("expected number or procedure after /" + name);
        value = it->second.number;
      }
      v.kind = PsValue::Kind::kNumber;
      v.number = value;
      ++*ip;
    }
    if (*ip >= tokens.size() || tokens[*ip] != "def")
      return ParseError("expected 'def' binding /" + name);
    ++*ip;
    dict[name] = std::move(v);
    return Status::OK();
  }
  ++*ip;
  // Operators.
  if (tok == "add" || tok == "sub" || tok == "mul" || tok == "div") {
    double b = 0, a = 0;
    MDM_RETURN_IF_ERROR(Pop(&b));
    MDM_RETURN_IF_ERROR(Pop(&a));
    if (tok == "add") stack.push_back(a + b);
    else if (tok == "sub") stack.push_back(a - b);
    else if (tok == "mul") stack.push_back(a * b);
    else {
      if (b == 0) return FailedPrecondition("division by zero");
      stack.push_back(a / b);
    }
    return Status::OK();
  }
  if (tok == "neg") {
    double a;
    MDM_RETURN_IF_ERROR(Pop(&a));
    stack.push_back(-a);
    return Status::OK();
  }
  if (tok == "dup") {
    double a;
    MDM_RETURN_IF_ERROR(Pop(&a));
    stack.push_back(a);
    stack.push_back(a);
    return Status::OK();
  }
  if (tok == "pop") {
    double a;
    return Pop(&a);
  }
  if (tok == "exch") {
    double b, a;
    MDM_RETURN_IF_ERROR(Pop(&b));
    MDM_RETURN_IF_ERROR(Pop(&a));
    stack.push_back(b);
    stack.push_back(a);
    return Status::OK();
  }
  if (tok == "newpath") {
    path.clear();
    has_current_point = false;
    return Status::OK();
  }
  if (tok == "moveto" || tok == "rmoveto" || tok == "lineto" ||
      tok == "rlineto") {
    double y, x;
    MDM_RETURN_IF_ERROR(Pop(&y));
    MDM_RETURN_IF_ERROR(Pop(&x));
    bool relative = tok[0] == 'r';
    return tok.find("move") != std::string::npos ? MoveTo(x, y, relative)
                                                 : LineTo(x, y, relative);
  }
  if (tok == "curveto") {
    double y3, x3, y2, x2, y1, x1;
    MDM_RETURN_IF_ERROR(Pop(&y3));
    MDM_RETURN_IF_ERROR(Pop(&x3));
    MDM_RETURN_IF_ERROR(Pop(&y2));
    MDM_RETURN_IF_ERROR(Pop(&x2));
    MDM_RETURN_IF_ERROR(Pop(&y1));
    MDM_RETURN_IF_ERROR(Pop(&x1));
    if (!has_current_point)
      return FailedPrecondition("curveto with no current point");
    double d1x, d1y, d2x, d2y, d3x, d3y;
    DevPoint(x1, y1, &d1x, &d1y);
    DevPoint(x2, y2, &d2x, &d2y);
    DevPoint(x3, y3, &d3x, &d3y);
    path += StrFormat("C %.2f %.2f %.2f %.2f %.2f %.2f ", d1x, d1y, d2x, d2y,
                      d3x, d3y);
    cur_x = x3;
    cur_y = y3;
    return Status::OK();
  }
  if (tok == "arc") {
    double a2, a1, r, y, x;
    MDM_RETURN_IF_ERROR(Pop(&a2));
    MDM_RETURN_IF_ERROR(Pop(&a1));
    MDM_RETURN_IF_ERROR(Pop(&r));
    MDM_RETURN_IF_ERROR(Pop(&y));
    MDM_RETURN_IF_ERROR(Pop(&x));
    // Approximate with line segments in user space (8 per quarter turn)
    // so arbitrary CTMs transform correctly.
    double start = a1 * M_PI / 180.0;
    double end = a2 * M_PI / 180.0;
    if (end < start) end += 2 * M_PI;
    int steps = std::max(8, static_cast<int>((end - start) / (M_PI / 16)));
    for (int k = 0; k <= steps; ++k) {
      double th = start + (end - start) * k / steps;
      double px = x + r * std::cos(th);
      double py = y + r * std::sin(th);
      if (k == 0 && !has_current_point) {
        MDM_RETURN_IF_ERROR(MoveTo(px, py, false));
      } else {
        MDM_RETURN_IF_ERROR(LineTo(px, py, false));
      }
    }
    return Status::OK();
  }
  if (tok == "closepath") {
    path += "Z ";
    return Status::OK();
  }
  if (tok == "stroke") {
    FlushPath(/*filled=*/false);
    return Status::OK();
  }
  if (tok == "fill") {
    FlushPath(/*filled=*/true);
    return Status::OK();
  }
  if (tok == "gsave") {
    gstack.push_back(gs);
    return Status::OK();
  }
  if (tok == "grestore") {
    if (gstack.empty()) return FailedPrecondition("grestore without gsave");
    gs = gstack.back();
    gstack.pop_back();
    return Status::OK();
  }
  if (tok == "translate") {
    double y, x;
    MDM_RETURN_IF_ERROR(Pop(&y));
    MDM_RETURN_IF_ERROR(Pop(&x));
    Matrix m;
    m.e = x;
    m.f = y;
    gs.ctm.Concat(m);
    return Status::OK();
  }
  if (tok == "scale") {
    double y, x;
    MDM_RETURN_IF_ERROR(Pop(&y));
    MDM_RETURN_IF_ERROR(Pop(&x));
    Matrix m;
    m.a = x;
    m.d = y;
    gs.ctm.Concat(m);
    return Status::OK();
  }
  if (tok == "rotate") {
    double deg;
    MDM_RETURN_IF_ERROR(Pop(&deg));
    double th = deg * M_PI / 180.0;
    Matrix m;
    m.a = std::cos(th);
    m.b = std::sin(th);
    m.c = -std::sin(th);
    m.d = std::cos(th);
    gs.ctm.Concat(m);
    return Status::OK();
  }
  if (tok == "setlinewidth") {
    double w;
    MDM_RETURN_IF_ERROR(Pop(&w));
    gs.line_width = w;
    return Status::OK();
  }
  if (tok == "setgray") {
    double g;
    MDM_RETURN_IF_ERROR(Pop(&g));
    gs.gray = std::min(1.0, std::max(0.0, g));
    return Status::OK();
  }
  // Dictionary lookup: number pushes, procedure executes.
  auto it = dict.find(tok);
  if (it != dict.end()) {
    if (it->second.kind == PsValue::Kind::kNumber) {
      stack.push_back(it->second.number);
      return Status::OK();
    }
    return Execute(it->second.proc);
  }
  return ParseError("unknown operator '" + tok + "'");
}

PostScriptInterp::PostScriptInterp() : impl_(std::make_unique<Impl>()) {}
PostScriptInterp::~PostScriptInterp() = default;

void PostScriptInterp::DefineNumber(const std::string& name, double value) {
  PsValue v;
  v.kind = PsValue::Kind::kNumber;
  v.number = value;
  impl_->dict[name] = v;
}

Status PostScriptInterp::Run(const std::string& program) {
  return impl_->Execute(Tokenize(program));
}

Rendering PostScriptInterp::Take() {
  Rendering out = std::move(impl_->rendering);
  impl_->rendering = Rendering();
  impl_->path.clear();
  impl_->has_current_point = false;
  return out;
}

void PostScriptInterp::Reset() {
  impl_ = std::make_unique<Impl>();
}

size_t PostScriptInterp::StackDepth() const { return impl_->stack.size(); }

}  // namespace mdm::graphics

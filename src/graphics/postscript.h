#ifndef MDM_GRAPHICS_POSTSCRIPT_H_
#define MDM_GRAPHICS_POSTSCRIPT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mdm::graphics {

/// Axis-aligned bounding box of rendered output.
struct BBox {
  double min_x = 0, min_y = 0, max_x = 0, max_y = 0;
  bool empty = true;

  void Extend(double x, double y);
  double Width() const { return empty ? 0 : max_x - min_x; }
  double Height() const { return empty ? 0 : max_y - min_y; }
};

/// One painted path (already transformed to device space).
struct PaintedPath {
  std::string d;        // SVG path data
  bool filled = false;  // fill vs stroke
  double line_width = 1.0;
  double gray = 0.0;  // 0 = black, 1 = white
};

/// The result of interpreting a drawing program.
struct Rendering {
  std::vector<PaintedPath> paths;
  BBox bbox;

  /// Serializes to a standalone SVG document.
  std::string ToSvg() const;
};

/// Interpreter for the PostScript dialect used by GraphDef drawing
/// definitions (§6.2; the paper stores "the graphical definition (e.g.
/// PostScript function) to draw a particular object").
///
/// Supported operators:
///   arithmetic: add sub mul div neg
///   stack:      dup pop exch
///   defs:       /name value def   /name { proc } def   name (execute)
///   path:       newpath moveto lineto rmoveto rlineto curveto arc
///               closepath
///   paint:      stroke fill
///   state:      gsave grestore translate scale rotate setlinewidth
///               setgray
///
/// Values are numbers or procedure blocks. Comments run from `%` to end
/// of line. The interpreter is reusable: Define() installs bindings (the
/// GParmUse "set up" mechanism), Run() executes program text against the
/// current dictionary, Take() returns and clears the rendering.
class PostScriptInterp {
 public:
  PostScriptInterp();
  ~PostScriptInterp();
  PostScriptInterp(const PostScriptInterp&) = delete;
  PostScriptInterp& operator=(const PostScriptInterp&) = delete;

  /// Binds /name to a number (parameter set-up).
  void DefineNumber(const std::string& name, double value);

  /// Executes program text.
  Status Run(const std::string& program);

  /// Returns the accumulated rendering and resets it.
  Rendering Take();

  /// Clears user definitions and the rendering.
  void Reset();

  /// Depth of the operand stack (exposed for tests).
  size_t StackDepth() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mdm::graphics

#endif  // MDM_GRAPHICS_POSTSCRIPT_H_

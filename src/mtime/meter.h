#ifndef MDM_MTIME_METER_H_
#define MDM_MTIME_METER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rational.h"
#include "common/result.h"
#include "common/status.h"

namespace mdm::mtime {

/// A meter (time) signature: 3/4 has 3 beats per measure with the
/// quarter note as the beat unit.
struct TimeSignature {
  int numerator = 4;
  int denominator = 4;

  /// Beats (quarter-note units) per measure: 6/8 -> 3 beats.
  Rational BeatsPerMeasure() const {
    return Rational(numerator * 4, denominator);
  }
  std::string ToString() const;
};

/// Assigns a time signature to measure ranges and converts between
/// (measure index, beat within measure) and absolute score time.
/// Measures are 0-based; beats are quarter-note units from the measure
/// start (§7.2: "a number of beats from the start of the measure in
/// which the sync occurs").
class MeterMap {
 public:
  /// Defaults to 4/4 from measure 0.
  MeterMap() = default;

  /// Sets the signature from `measure` onward. Must be added in
  /// increasing measure order.
  Status SetSignature(int64_t measure, TimeSignature sig);

  TimeSignature SignatureAt(int64_t measure) const;

  /// Absolute score time (quarter-note beats from the score start) of
  /// the start of `measure`.
  Rational MeasureStart(int64_t measure) const;

  /// Absolute score time of `beat` within `measure`; fails if the beat
  /// exceeds the measure's capacity.
  Result<Rational> Position(int64_t measure, const Rational& beat) const;

  /// Inverse: which measure contains `score_time`, and the offset into
  /// it.
  std::pair<int64_t, Rational> Locate(const Rational& score_time) const;

 private:
  struct Change {
    int64_t measure;
    TimeSignature sig;
    Rational start;  // absolute score time of this change
  };
  std::vector<Change> changes_;  // sorted by measure; empty = 4/4
};

}  // namespace mdm::mtime

#endif  // MDM_MTIME_METER_H_

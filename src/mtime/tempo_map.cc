#include "mtime/tempo_map.h"

#include <cmath>

#include "common/strings.h"

namespace mdm::mtime {

namespace {
constexpr double kDefaultBpm = 120.0;
}  // namespace

Status TempoMap::AddSegment(ScoreTime start, double bpm, TempoShape shape) {
  if (bpm <= 0.0 || !std::isfinite(bpm))
    return InvalidArgument(StrFormat("tempo must be positive, got %f", bpm));
  if (start.IsNegative())
    return InvalidArgument("tempo directives cannot precede the score");
  if (!segments_.empty()) {
    const ScoreTime& last = segments_.back().start;
    if (start < last)
      return FailedPrecondition(
          "tempo directives must be added in score order");
    if (start == last) {
      segments_.back().bpm = bpm;
      segments_.back().shape = shape;
      return Status::OK();
    }
  }
  segments_.push_back({start, bpm, shape});
  return Status::OK();
}

double TempoMap::SegmentBeats(size_t i) const {
  if (i + 1 >= segments_.size()) return -1.0;  // unbounded
  return (segments_[i + 1].start - segments_[i].start).ToDouble();
}

double TempoMap::SegmentEndBpm(size_t i) const {
  if (segments_[i].shape == TempoShape::kConstant ||
      i + 1 >= segments_.size())
    return segments_[i].bpm;
  return segments_[i + 1].bpm;
}

Seconds TempoMap::SegmentElapsed(size_t i, double x) const {
  const double b0 = segments_[i].bpm;
  const double b1 = SegmentEndBpm(i);
  const double len = SegmentBeats(i);
  if (b1 == b0 || len <= 0.0) return 60.0 * x / b0;
  // Linear bpm ramp: bpm(u) = b0 + (b1-b0)u/len; integrate 60/bpm.
  const double db = b1 - b0;
  const double bpm_x = b0 + db * x / len;
  return 60.0 * len / db * std::log(bpm_x / b0);
}

Seconds TempoMap::ToSeconds(const ScoreTime& beat) const {
  const double target = beat.ToDouble();
  if (segments_.empty()) return 60.0 * target / kDefaultBpm;
  double t = 0.0;
  // Implicit default-tempo region before the first directive.
  const double first_start = segments_.front().start.ToDouble();
  if (target <= first_start || first_start > 0.0) {
    if (target <= first_start) return 60.0 * target / kDefaultBpm;
    t += 60.0 * first_start / kDefaultBpm;
  }
  for (size_t i = 0; i < segments_.size(); ++i) {
    const double seg_start = segments_[i].start.ToDouble();
    const double len = SegmentBeats(i);
    const double into = target - seg_start;
    if (len < 0.0 || into <= len) return t + SegmentElapsed(i, into);
    t += SegmentElapsed(i, len);
  }
  return t;  // unreachable: last segment is unbounded
}

ScoreTime TempoMap::ToBeats(Seconds t, int64_t denominator) const {
  if (denominator <= 0) denominator = 960;
  auto quantize = [denominator](double beats) {
    return Rational(
        static_cast<int64_t>(std::llround(beats * denominator)), denominator);
  };
  if (segments_.empty()) return quantize(t * kDefaultBpm / 60.0);
  double acc = 0.0;
  double beat = 0.0;
  const double first_start = segments_.front().start.ToDouble();
  if (first_start > 0.0) {
    double pre = 60.0 * first_start / kDefaultBpm;
    if (t <= pre) return quantize(t * kDefaultBpm / 60.0);
    acc = pre;
    beat = first_start;
  } else if (t <= 0.0) {
    return quantize(t * segments_.front().bpm / 60.0);
  }
  for (size_t i = 0; i < segments_.size(); ++i) {
    const double len = SegmentBeats(i);
    const double seg_seconds = len < 0.0 ? -1.0 : SegmentElapsed(i, len);
    if (seg_seconds >= 0.0 && acc + seg_seconds < t) {
      acc += seg_seconds;
      beat = segments_[i].start.ToDouble() + len;
      continue;
    }
    // Invert within segment i.
    const double dt = t - acc;
    const double b0 = segments_[i].bpm;
    const double b1 = SegmentEndBpm(i);
    double x;
    if (b1 == b0 || len <= 0.0) {
      x = dt * b0 / 60.0;
    } else {
      const double db = b1 - b0;
      x = len * b0 * (std::exp(dt * db / (60.0 * len)) - 1.0) / db;
    }
    return quantize(segments_[i].start.ToDouble() + x);
  }
  return quantize(beat);
}

double TempoMap::TempoAt(const ScoreTime& beat) const {
  if (segments_.empty()) return kDefaultBpm;
  const double target = beat.ToDouble();
  if (target < segments_.front().start.ToDouble()) return kDefaultBpm;
  for (size_t i = segments_.size(); i-- > 0;) {
    const double seg_start = segments_[i].start.ToDouble();
    if (target < seg_start) continue;
    const double b0 = segments_[i].bpm;
    const double b1 = SegmentEndBpm(i);
    const double len = SegmentBeats(i);
    if (b1 == b0 || len <= 0.0) return b0;
    const double into = target - seg_start;
    return b0 + (b1 - b0) * std::min(into, len) / len;
  }
  return kDefaultBpm;
}

std::string TempoMap::ToString() const {
  if (segments_.empty()) return "tempo: 120 bpm throughout\n";
  std::string out;
  for (size_t i = 0; i < segments_.size(); ++i) {
    const TempoSegment& s = segments_[i];
    const char* shape =
        s.shape == TempoShape::kConstant
            ? "a tempo"
            : (s.shape == TempoShape::kAccelerando ? "accelerando"
                                                   : "ritardando");
    out += StrFormat("beat %-8s %7.2f bpm  %s\n", s.start.ToString().c_str(),
                     s.bpm, shape);
  }
  return out;
}

}  // namespace mdm::mtime

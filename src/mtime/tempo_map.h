#ifndef MDM_MTIME_TEMPO_MAP_H_
#define MDM_MTIME_TEMPO_MAP_H_

#include <string>
#include <vector>

#include "common/rational.h"
#include "common/result.h"
#include "common/status.h"

namespace mdm::mtime {

/// A point in score time, measured in beats from the start of the
/// composition (exact rational; §7.2 "score time ... measured in
/// rhythmic units").
using ScoreTime = Rational;

/// A point in performance time, in seconds (§7.2 "the units of
/// performance time are seconds").
using Seconds = double;

/// How tempo evolves over one segment.
enum class TempoShape {
  kConstant,     // fixed beats-per-minute
  kAccelerando,  // linear bpm ramp upward to the next segment
  kRitardando,   // linear bpm ramp downward to the next segment
};

/// One tempo directive: "from beat `start`, `bpm` beats per minute",
/// optionally ramping linearly to the next directive's bpm.
struct TempoSegment {
  ScoreTime start;
  double bpm = 120.0;
  TempoShape shape = TempoShape::kConstant;
};

/// The "conductor": the mapping between score time and performance time
/// (§7.2 — "when an orchestra performs, it is the role of the conductor
/// to establish this relationship").
///
/// The map is a piecewise tempo function. Constant segments integrate to
/// linear time; ramped segments (accelerando/ritardando) integrate a
/// linear bpm function, giving a logarithmic time map over the segment.
/// Both directions (beats→seconds, seconds→beats) are exact inverses up
/// to floating-point rounding.
class TempoMap {
 public:
  /// An empty map behaves as constant 120 bpm.
  TempoMap() = default;

  /// Adds a directive. Segments must be added in increasing score-time
  /// order; a duplicate start time replaces the earlier directive.
  Status AddSegment(ScoreTime start, double bpm,
                    TempoShape shape = TempoShape::kConstant);

  /// Convenience named after the score directives.
  Status SetTempo(ScoreTime start, double bpm) {
    return AddSegment(start, bpm, TempoShape::kConstant);
  }
  Status Accelerando(ScoreTime start, double bpm) {
    return AddSegment(start, bpm, TempoShape::kAccelerando);
  }
  Status Ritardando(ScoreTime start, double bpm) {
    return AddSegment(start, bpm, TempoShape::kRitardando);
  }

  /// Performance time at which `beat` occurs.
  Seconds ToSeconds(const ScoreTime& beat) const;

  /// Score position playing at `t` seconds (the inverse mapping).
  ScoreTime ToBeats(Seconds t, int64_t denominator = 960) const;

  /// Instantaneous tempo at `beat` (bpm).
  double TempoAt(const ScoreTime& beat) const;

  const std::vector<TempoSegment>& segments() const { return segments_; }

  /// Human-readable listing of the tempo plan.
  std::string ToString() const;

 private:
  // Seconds elapsed between segment i's start and `end_beat` (which must
  // lie inside segment i).
  Seconds SegmentElapsed(size_t i, double beats_into_segment) const;
  // Total beats in segment i (infinite for the last).
  double SegmentBeats(size_t i) const;
  double SegmentEndBpm(size_t i) const;

  std::vector<TempoSegment> segments_;
};

}  // namespace mdm::mtime

#endif  // MDM_MTIME_TEMPO_MAP_H_

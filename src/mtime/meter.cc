#include "mtime/meter.h"

#include "common/strings.h"

namespace mdm::mtime {

std::string TimeSignature::ToString() const {
  return StrFormat("%d/%d", numerator, denominator);
}

Status MeterMap::SetSignature(int64_t measure, TimeSignature sig) {
  if (sig.numerator <= 0 || sig.denominator <= 0)
    return InvalidArgument("time signature parts must be positive");
  if (measure < 0) return InvalidArgument("measure index must be >= 0");
  if (!changes_.empty() && measure <= changes_.back().measure) {
    if (measure == changes_.back().measure) {
      // Replace; recompute start is unnecessary (same measure).
      changes_.back().sig = sig;
      return Status::OK();
    }
    return FailedPrecondition("signatures must be added in measure order");
  }
  Rational start = MeasureStart(measure);
  changes_.push_back({measure, sig, start});
  return Status::OK();
}

TimeSignature MeterMap::SignatureAt(int64_t measure) const {
  TimeSignature sig;  // default 4/4
  for (const Change& c : changes_) {
    if (c.measure > measure) break;
    sig = c.sig;
  }
  return sig;
}

Rational MeterMap::MeasureStart(int64_t measure) const {
  if (measure <= 0) return Rational(0);
  Rational t(0);
  int64_t m = 0;
  TimeSignature sig;  // 4/4 until the first change
  size_t ci = 0;
  // Walk change by change, skipping whole spans of equal signature.
  while (m < measure) {
    int64_t span_end = measure;
    if (ci < changes_.size() && changes_[ci].measure <= m) {
      sig = changes_[ci].sig;
      ++ci;
    }
    if (ci < changes_.size() && changes_[ci].measure < span_end)
      span_end = changes_[ci].measure;
    t += sig.BeatsPerMeasure() * Rational(span_end - m);
    m = span_end;
  }
  return t;
}

Result<Rational> MeterMap::Position(int64_t measure,
                                    const Rational& beat) const {
  if (measure < 0) return InvalidArgument("measure index must be >= 0");
  if (beat.IsNegative()) return InvalidArgument("beat must be >= 0");
  TimeSignature sig = SignatureAt(measure);
  if (!(beat < sig.BeatsPerMeasure()))
    return OutOfRange(StrFormat("beat %s exceeds a %s measure",
                                beat.ToString().c_str(),
                                sig.ToString().c_str()));
  return MeasureStart(measure) + beat;
}

std::pair<int64_t, Rational> MeterMap::Locate(
    const Rational& score_time) const {
  if (score_time.IsNegative() || score_time.IsZero())
    return {0, score_time.IsNegative() ? Rational(0) : score_time};
  int64_t m = 0;
  Rational start(0);
  while (true) {
    Rational len = SignatureAt(m).BeatsPerMeasure();
    if (score_time < start + len) return {m, score_time - start};
    start += len;
    ++m;
  }
}

}  // namespace mdm::mtime

#include "obs/span.h"

#include <string>

#include "obs/trace.h"

namespace mdm::obs {

namespace {

thread_local Span* g_current = nullptr;
thread_local int g_depth = 0;

}  // namespace

Span::Span(const char* name)
    : Span(name,
           Registry::Global()->GetHistogram(
               "mdm_span_duration_ns{span=\"" + std::string(name) + "\"}",
               "Inclusive span latency in nanoseconds"),
           Registry::Global()->GetCounter(
               "mdm_span_self_ns_total{span=\"" + std::string(name) + "\"}",
               "Span latency excluding child spans")) {}

Span::Span(const char* name, Histogram* duration, Counter* self_ns)
    : name_(name),
      duration_(duration),
      self_ns_(self_ns),
      parent_(g_current),
      start_(std::chrono::steady_clock::now()) {
  g_current = this;
  ++g_depth;
}

Span::~Span() {
  uint64_t total = elapsed_ns();
  duration_->Observe(total);
  self_ns_->Inc(total >= child_ns_ ? total - child_ns_ : 0);
  if (parent_ != nullptr) parent_->child_ns_ += total;
  // Request-scoped tracing (obs/trace.h): when the thread is serving a
  // sampled request, the span also lands in that request's trace
  // buffer. One thread-local read when no context is installed.
  if (TraceContext* ctx = TraceContext::Current())
    ctx->Record(name_, start_, total, g_depth);
  g_current = parent_;
  --g_depth;
}

int Span::depth() { return g_depth; }

uint64_t Span::elapsed_ns() const {
  auto d = std::chrono::steady_clock::now() - start_;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace mdm::obs

#ifndef MDM_OBS_SLOWLOG_H_
#define MDM_OBS_SLOWLOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mdm::obs {

/// Structured slow-query log (PR 8): mdmd appends one JSON object per
/// slow statement (JSONL) to a file or stderr, gated by
/// `--slow-query-ms`. Each record carries enough to find and explain
/// the offender without re-running it: a stable hash of the statement
/// text (for aggregation across log rotations), a truncated script
/// excerpt, the request's trace_id (join against /traces/<id>), the
/// measured latency, rows emitted, the canonical error code, and the
/// per-loop actual row counts the `explain analyze` collector produces
/// — re-used here so a slow join shows WHICH loop exploded.

/// Per-loop actuals for one executed query statement, outermost loop
/// first. rows_in = bindings the loop enumerated; rows_out = bindings
/// that survived the conjuncts pushed down to that loop.
struct SlowQueryLoop {
  std::string var;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

struct SlowQueryRecord {
  uint64_t seq = 0;           // stamped by the log: 1, 2, ... per sink
  uint64_t script_hash = 0;   // Fnv1a64 of the full script text
  std::string script;         // excerpt, truncated to kScriptExcerptChars
  uint64_t trace_id = 0;      // 0 = request carried none (v2 client)
  bool sampled = false;       // whether a trace was recorded for it
  uint64_t latency_us = 0;
  uint64_t rows = 0;          // rows emitted by the last retrieve
  uint64_t affected = 0;      // rows touched by the last mutation
  std::string error = "OK";   // canonical ErrorCode name
  std::vector<SlowQueryLoop> loops;
};

/// FNV-1a 64-bit over the script text: stable across runs/platforms so
/// one statement aggregates under one hash fleet-wide.
uint64_t Fnv1a64(std::string_view s);

/// Renders one record as a single JSON line (no trailing newline).
/// Deterministic given the record — the JSONL schema test goldens this.
std::string RenderSlowQueryJson(const SlowQueryRecord& record);

/// Append-only JSONL sink. Thread-safe: connection threads Log()
/// concurrently; each record is written and flushed as one line under a
/// mutex so lines never interleave.
class SlowQueryLog {
 public:
  static constexpr size_t kScriptExcerptChars = 120;

  /// Opens `path` for appending ("-" = stderr). Fails with UNAVAILABLE
  /// if the file cannot be opened.
  static Result<std::unique_ptr<SlowQueryLog>> Open(const std::string& path);

  ~SlowQueryLog();
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Stamps seq, truncates the script excerpt, writes one line.
  void Log(SlowQueryRecord record);

  uint64_t records_written() const;

 private:
  explicit SlowQueryLog(std::FILE* f, bool owns) : f_(f), owns_(owns) {}

  mutable std::mutex mu_;
  std::FILE* f_;
  bool owns_;
  uint64_t seq_ = 0;
};

}  // namespace mdm::obs

#endif  // MDM_OBS_SLOWLOG_H_

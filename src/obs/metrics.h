#ifndef MDM_OBS_METRICS_H_
#define MDM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace mdm::obs {

/// Process-wide metrics for the MDM: counters, gauges and fixed-bucket
/// log-scale histograms, collected in a registry and rendered as
/// Prometheus text exposition or JSON.
///
/// Design contract:
///  * the *fast path* (Inc/Set/Observe) is lock-free — plain relaxed
///    atomics, safe from any thread, no allocation;
///  * *registration* (Registry::GetCounter etc.) takes a mutex and may
///    allocate, so hot call sites should resolve their metric pointer
///    once (function-local static, member, or plan-time) and reuse it;
///  * metric pointers are stable for the registry's lifetime — the
///    registry never deletes or moves a registered metric.
///
/// Metric identity is the full name string. A name may carry Prometheus
/// labels inline — `mdm_span_duration_ns{span="quel.statement"}` — and
/// the renderers group such series under one metric family.

/// Monotonic counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Testing/bench only: counters are monotonic in production.
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous signed value.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Histogram with fixed log2-scale buckets: finite upper bounds
/// 2^0, 2^1, …, 2^(kFiniteBuckets-1), plus an overflow (+Inf) bucket.
/// With nanosecond observations the finite range spans 1 ns .. ~2.1 s,
/// which covers every latency the MDM produces; slower events land in
/// +Inf but still contribute to count and sum exactly.
class Histogram {
 public:
  static constexpr size_t kFiniteBuckets = 32;

  void Observe(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Non-cumulative count of bucket `i` (i == kFiniteBuckets: +Inf).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of finite bucket `i`: 2^i. A value v lands in the
  /// first bucket with v <= bound.
  static uint64_t BucketUpperBound(size_t i) { return uint64_t{1} << i; }
  static size_t BucketIndex(uint64_t v);

  /// Testing/bench only.
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kFiniteBuckets + 1] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Thread-safe name -> metric registry. One process-wide instance
/// (Global()); tests may construct private registries for deterministic
/// golden output.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry* Global();

  /// Returns the metric registered under `name`, creating it on first
  /// use. `help` is kept from the first registration. Registering the
  /// same name as two different kinds aborts — that is a programming
  /// error, not a runtime condition.
  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view help = "");

  /// Prometheus text exposition format (version 0.0.4): HELP/TYPE
  /// headers per family, cumulative `_bucket{le=...}` series plus
  /// `_sum`/`_count` for histograms.
  std::string RenderPrometheusText() const;
  /// The same data as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// buckets:[[le,count],...]}}}.
  std::string RenderJson() const;

  /// Flat snapshot of every monotonic series: counters by name, and
  /// histograms as `<base>_count`/`<base>_sum` (labels preserved).
  /// Benchmarks diff two snapshots to attribute activity to a section.
  std::map<std::string, uint64_t> CounterValues() const;

  /// Zeroes every metric without invalidating pointers. Tests only.
  void ResetAllForTest();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetEntry(std::string_view name, std::string_view help, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

/// Convenience wrappers over Registry::Global().
std::string RenderPrometheusText();
std::string RenderJson();

/// Estimated quantile of a log2-bucket histogram: finds the bucket
/// holding the q-th observation (q in [0, 1]) and interpolates linearly
/// between its bounds. The log2 buckets make this a ~2×-accurate
/// estimate — plenty for p50/p90/p99 dashboards, and cheap enough for
/// the /statusz endpoint and the benches to recompute per render.
/// Returns 0 for an empty histogram; observations past the last finite
/// bound (the +Inf bucket) report as that bound.
double HistogramPercentile(const Histogram& h, double q);

}  // namespace mdm::obs

#endif  // MDM_OBS_METRICS_H_

#include "obs/trace.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace mdm::obs {

namespace {

thread_local TraceContext* g_trace_context = nullptr;

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

}  // namespace

TraceContext::TraceContext(uint64_t trace_id, bool sampled)
    : trace_id_(trace_id),
      sampled_(sampled),
      t0_(std::chrono::steady_clock::now()),
      prev_(g_trace_context) {
  if (sampled_) events_.reserve(16);
  g_trace_context = this;
}

TraceContext::~TraceContext() {
  g_trace_context = prev_;
  if (!sampled_) return;
  Trace t;
  t.trace_id = trace_id_;
  t.events = std::move(events_);
  t.truncated = truncated_;
  TraceRing::Global()->Publish(std::move(t));
}

TraceContext* TraceContext::Current() { return g_trace_context; }

void TraceContext::Record(const char* name,
                          std::chrono::steady_clock::time_point start,
                          uint64_t dur_ns, int depth) {
  if (!sampled_) return;
  if (events_.size() >= kMaxEventsPerTrace) {
    truncated_ = true;
    return;
  }
  TraceEvent e;
  e.name = name;
  // A span opened before the context was installed (possible only under
  // misuse) clamps to offset 0 rather than wrapping.
  e.start_ns = start >= t0_
                   ? static_cast<uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             start - t0_)
                             .count())
                   : 0;
  e.dur_ns = dur_ns;
  e.depth = depth;
  events_.push_back(e);
}

TraceRing* TraceRing::Global() {
  static TraceRing* g = new TraceRing();  // never destroyed, like the
  return g;                               // metrics registry
}

void TraceRing::Publish(Trace trace) {
  auto t = std::make_shared<const Trace>(std::move(trace));
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_front(std::move(t));
  while (ring_.size() > capacity_) ring_.pop_back();
}

std::shared_ptr<const Trace> TraceRing::Find(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : ring_)
    if (t->trace_id == trace_id) return t;
  return nullptr;
}

std::shared_ptr<const Trace> TraceRing::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? nullptr : ring_.front();
}

std::vector<uint64_t> TraceRing::RecentIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(ring_.size());
  for (const auto& t : ring_) ids.push_back(t->trace_id);
  return ids;
}

size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

std::string RenderTraceEventJson(const Trace& trace) {
  // Timestamps are microseconds in the trace_event format; emit
  // fractional microseconds so nanosecond spans stay distinguishable.
  std::string out = "{\"displayTimeUnit\":\"ns\",\"otherData\":{";
  out += "\"trace_id\":\"" + FormatTraceId(trace.trace_id) + "\",";
  out += std::string("\"truncated\":") +
         (trace.truncated ? "true" : "false") + "},\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : trace.events) {
    if (!first) out += ",";
    first = false;
    AppendF(&out,
            "{\"name\":\"%s\",\"cat\":\"mdm\",\"ph\":\"X\","
            "\"ts\":%" PRIu64 ".%03" PRIu64 ",\"dur\":%" PRIu64
            ".%03" PRIu64 ",\"pid\":1,\"tid\":1,\"args\":{\"depth\":%d}}",
            e.name, e.start_ns / 1000, e.start_ns % 1000, e.dur_ns / 1000,
            e.dur_ns % 1000, e.depth);
  }
  out += "]}";
  return out;
}

std::string FormatTraceId(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, trace_id);
  return buf;
}

bool ParseTraceId(const std::string& text, uint64_t* out) {
  size_t i = 0;
  if (text.size() >= 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X'))
    i = 2;
  if (i == text.size() || text.size() - i > 16) return false;
  uint64_t v = 0;
  for (; i < text.size(); ++i) {
    char c = text[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

}  // namespace mdm::obs

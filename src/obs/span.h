#ifndef MDM_OBS_SPAN_H_
#define MDM_OBS_SPAN_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace mdm::obs {

/// RAII trace span: times a scope and aggregates per-name latency on
/// the global registry. Spans nest — a thread-local stack tracks the
/// active span, so each span also knows how much of its wall time was
/// spent in child spans.
///
/// On destruction a span records:
///   mdm_span_duration_ns{span="<name>"}  histogram — inclusive time
///   mdm_span_self_ns_total{span="<name>"} counter  — time minus children
///   (the histogram's _count doubles as the span's hit counter)
///
/// `name` must be a string literal (or otherwise outlive the span): it
/// is not copied. Construction resolves two registry entries under a
/// mutex; for very hot scopes, prefer the pre-resolved constructor.
class Span {
 public:
  explicit Span(const char* name);
  /// Pre-resolved fast form: no registry lookup at construction.
  Span(const char* name, Histogram* duration, Counter* self_ns);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Nesting depth of the calling thread's active span stack (0 when no
  /// span is open). Exposed for tests.
  static int depth();

  /// Inclusive nanoseconds so far (the span is still open).
  uint64_t elapsed_ns() const;

 private:
  const char* name_;
  Histogram* duration_;
  Counter* self_ns_;
  Span* parent_;
  std::chrono::steady_clock::time_point start_;
  uint64_t child_ns_ = 0;
};

}  // namespace mdm::obs

#endif  // MDM_OBS_SPAN_H_

#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mdm::obs {

namespace {

/// Splits "base{labels}" into base and the brace-enclosed label body
/// ("" when the name carries no labels).
void SplitName(const std::string& name, std::string* base,
               std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  // Keep the inner body only; the renderer re-wraps as needed.
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// Re-wraps a label body, appending `extra` (e.g. le="4") when present.
std::string WrapLabels(const std::string& body, const std::string& extra) {
  if (body.empty() && extra.empty()) return "";
  std::string out = "{" + body;
  if (!body.empty() && !extra.empty()) out += ",";
  out += extra + "}";
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void Append(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t v) {
  if (v <= 1) return 0;
  // First i with v <= 2^i, i.e. ceil(log2 v) = bit_width(v - 1).
  size_t i = static_cast<size_t>(std::bit_width(v - 1));
  return i < kFiniteBuckets ? i : kFiniteBuckets;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry* Registry::Global() {
  static Registry* g = new Registry();  // never destroyed: metric
  return g;                             // pointers outlive static dtors
}

Registry::Entry* Registry::GetEntry(std::string_view name,
                                    std::string_view help, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = kind;
    e.help = std::string(help);
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  }
  if (it->second.kind != kind) {
    std::fprintf(stderr, "obs: metric %.*s registered with two kinds\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return &it->second;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help) {
  return GetEntry(name, help, Kind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help) {
  return GetEntry(name, help, Kind::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view help) {
  return GetEntry(name, help, Kind::kHistogram)->histogram.get();
}

std::string Registry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Group series by family *base*, not by full registered name: the
  // map's full-name order would split a family whenever another name
  // sorts between its unlabeled series ("fam") and a labeled one
  // ("fam{...}", and '_' < '{' puts "fam_other" in between), emitting
  // duplicate HELP/TYPE headers — invalid exposition text. Sort by
  // (base, labels) instead so every family renders contiguously.
  struct Row {
    std::string base;
    std::string labels;
    const Entry* entry;
  };
  std::vector<Row> rows;
  rows.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    Row row;
    SplitName(name, &row.base, &row.labels);
    row.entry = &e;
    rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) {
                     if (a.base != b.base) return a.base < b.base;
                     return a.labels < b.labels;
                   });
  std::string out;
  std::string last_family;
  for (const Row& row : rows) {
    const std::string& base = row.base;
    const std::string& labels = row.labels;
    const Entry& e = *row.entry;
    if (base != last_family) {
      last_family = base;
      if (!e.help.empty())
        out += "# HELP " + base + " " + e.help + "\n";
      const char* type = e.kind == Kind::kCounter   ? "counter"
                         : e.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
      out += "# TYPE " + base + " " + type + "\n";
    }
    switch (e.kind) {
      case Kind::kCounter:
        Append(&out, "%s%s %" PRIu64 "\n", base.c_str(),
               WrapLabels(labels, "").c_str(), e.counter->value());
        break;
      case Kind::kGauge:
        Append(&out, "%s%s %" PRId64 "\n", base.c_str(),
               WrapLabels(labels, "").c_str(), e.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < Histogram::kFiniteBuckets; ++i) {
          cumulative += h.bucket_count(i);
          Append(&out, "%s_bucket%s %" PRIu64 "\n", base.c_str(),
                 WrapLabels(labels,
                            "le=\"" +
                                std::to_string(Histogram::BucketUpperBound(i)) +
                                "\"")
                     .c_str(),
                 cumulative);
        }
        Append(&out, "%s_bucket%s %" PRIu64 "\n", base.c_str(),
               WrapLabels(labels, "le=\"+Inf\"").c_str(), h.count());
        Append(&out, "%s_sum%s %" PRIu64 "\n", base.c_str(),
               WrapLabels(labels, "").c_str(), h.sum());
        Append(&out, "%s_count%s %" PRIu64 "\n", base.c_str(),
               WrapLabels(labels, "").c_str(), h.count());
        break;
      }
    }
  }
  return out;
}

std::string Registry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        Append(&counters, "\"%s\": %" PRIu64, JsonEscape(name).c_str(),
               e.counter->value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        Append(&gauges, "\"%s\": %" PRId64, JsonEscape(name).c_str(),
               e.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        if (!histograms.empty()) histograms += ", ";
        Append(&histograms, "\"%s\": {\"count\": %" PRIu64
                            ", \"sum\": %" PRIu64 ", \"buckets\": [",
               JsonEscape(name).c_str(), h.count(), h.sum());
        bool first = true;
        for (size_t i = 0; i <= Histogram::kFiniteBuckets; ++i) {
          uint64_t n = h.bucket_count(i);
          if (n == 0) continue;  // sparse: empty buckets are implied
          if (!first) histograms += ", ";
          first = false;
          if (i < Histogram::kFiniteBuckets)
            Append(&histograms, "[%" PRIu64 ", %" PRIu64 "]",
                   Histogram::BucketUpperBound(i), n);
          else
            Append(&histograms, "[\"+Inf\", %" PRIu64 "]", n);
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

std::map<std::string, uint64_t> Registry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter:
        out[name] = e.counter->value();
        break;
      case Kind::kHistogram: {
        std::string base, labels;
        SplitName(name, &base, &labels);
        out[base + "_count" + WrapLabels(labels, "")] =
            e.histogram->count();
        out[base + "_sum" + WrapLabels(labels, "")] = e.histogram->sum();
        break;
      }
      case Kind::kGauge:
        break;  // not monotonic; meaningless to diff
    }
  }
  return out;
}

void Registry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter: e.counter->Reset(); break;
      case Kind::kGauge: e.gauge->Set(0); break;
      case Kind::kHistogram: e.histogram->Reset(); break;
    }
  }
}

std::string RenderPrometheusText() {
  return Registry::Global()->RenderPrometheusText();
}

std::string RenderJson() { return Registry::Global()->RenderJson(); }

double HistogramPercentile(const Histogram& h, double q) {
  const uint64_t count = h.count();
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The rank of the q-th observation, 1-based; q=0 means the first.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kFiniteBuckets; ++i) {
    uint64_t n = h.bucket_count(i);
    if (n == 0) continue;
    if (cumulative + n >= rank) {
      // Linear interpolation inside bucket (lo, hi]: the k-th of its n
      // observations sits at lo + (k/n)·(hi − lo).
      double lo = i == 0 ? 0.0
                         : static_cast<double>(
                               Histogram::BucketUpperBound(i - 1));
      double hi = static_cast<double>(Histogram::BucketUpperBound(i));
      double k = static_cast<double>(rank - cumulative);
      return lo + (hi - lo) * (k / static_cast<double>(n));
    }
    cumulative += n;
  }
  // The rank lands in +Inf: saturate at the last finite bound.
  return static_cast<double>(
      Histogram::BucketUpperBound(Histogram::kFiniteBuckets - 1));
}

}  // namespace mdm::obs

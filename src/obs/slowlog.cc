#include "obs/slowlog.h"

#include <cerrno>
#include <cinttypes>
#include <cstring>

#include "obs/trace.h"

namespace mdm::obs {

namespace {

/// JSON string escaping for the script excerpt: quotes, backslashes,
/// and control characters (QUEL scripts may span lines).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string RenderSlowQueryJson(const SlowQueryRecord& r) {
  std::string out = "{";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\"seq\":%" PRIu64 ",", r.seq);
  out += buf;
  out += "\"script_hash\":\"" + FormatTraceId(r.script_hash) + "\",";
  out += "\"script\":\"" + JsonEscape(r.script) + "\",";
  out += "\"trace_id\":\"" + FormatTraceId(r.trace_id) + "\",";
  out += std::string("\"sampled\":") + (r.sampled ? "true" : "false") + ",";
  std::snprintf(buf, sizeof(buf),
                "\"latency_us\":%" PRIu64 ",\"rows\":%" PRIu64
                ",\"affected\":%" PRIu64 ",",
                r.latency_us, r.rows, r.affected);
  out += buf;
  out += "\"error\":\"" + JsonEscape(r.error) + "\",\"loops\":[";
  bool first = true;
  for (const SlowQueryLoop& loop : r.loops) {
    if (!first) out += ",";
    first = false;
    out += "{\"var\":\"" + JsonEscape(loop.var) + "\",";
    std::snprintf(buf, sizeof(buf),
                  "\"rows_in\":%" PRIu64 ",\"rows_out\":%" PRIu64 "}",
                  loop.rows_in, loop.rows_out);
    out += buf;
  }
  out += "]}";
  return out;
}

Result<std::unique_ptr<SlowQueryLog>> SlowQueryLog::Open(
    const std::string& path) {
  if (path == "-")
    return std::unique_ptr<SlowQueryLog>(
        new SlowQueryLog(stderr, /*owns=*/false));
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr)
    return Unavailable("cannot open slow-query log '" + path +
                       "': " + std::strerror(errno));
  return std::unique_ptr<SlowQueryLog>(new SlowQueryLog(f, /*owns=*/true));
}

SlowQueryLog::~SlowQueryLog() {
  if (owns_ && f_ != nullptr) std::fclose(f_);
}

void SlowQueryLog::Log(SlowQueryRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = ++seq_;
  if (record.script.size() > kScriptExcerptChars) {
    record.script.resize(kScriptExcerptChars);
    record.script += "...";
  }
  std::string line = RenderSlowQueryJson(record);
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fflush(f_);
}

uint64_t SlowQueryLog::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace mdm::obs

#ifndef MDM_OBS_TRACE_H_
#define MDM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mdm::obs {

/// Request-scoped tracing (PR 8): while aggregate metrics (metrics.h)
/// answer "how is the process doing", a trace answers "where did THIS
/// request spend its time". A client stamps every ExecuteRequest with a
/// seeded 8-byte trace_id + sampling flag (wire protocol v3); the
/// server installs a TraceContext for the request's lifetime, and every
/// obs::Span that closes under it (net.request → quel.statement →
/// quel.index_probe → storage.fsync ...) appends one event to the
/// per-trace buffer. Completed sampled traces land in a bounded
/// in-memory ring and are exported as Chrome trace_event JSON
/// (chrome://tracing / Perfetto) via `GET /traces/<id>` on the mdmd
/// admin endpoint (net/admin.h).

/// One closed span inside a trace. `name` is the span's literal name
/// (spans require their name to outlive them, so storing the pointer is
/// safe). Times are relative to the owning TraceContext's start.
struct TraceEvent {
  const char* name = "";
  uint64_t start_ns = 0;  // offset from the trace's start
  uint64_t dur_ns = 0;    // inclusive duration
  int depth = 0;          // span nesting depth at close (1 = outermost)
};

/// A completed request's span buffer.
struct Trace {
  uint64_t trace_id = 0;
  std::vector<TraceEvent> events;  // in span-close order (children first)
  /// Set when the request closed more spans than kMaxEventsPerTrace;
  /// the surplus was dropped, not sampled.
  bool truncated = false;
};

/// RAII scope installing a per-request trace buffer as the calling
/// thread's current context. Construction pushes (contexts nest, the
/// innermost wins — the server uses exactly one per request);
/// destruction pops and, when sampled, publishes the collected events
/// to TraceRing::Global().
///
/// Not thread-safe and deliberately thread-local: a request is served
/// by one connection thread, the same contract as obs::Span. Spans on
/// other threads (background flushers etc.) do not record into it.
class TraceContext {
 public:
  /// Bounds one trace's buffer so a pathological statement cannot hold
  /// unbounded memory; past it, events are dropped and `truncated` set.
  static constexpr size_t kMaxEventsPerTrace = 512;

  TraceContext(uint64_t trace_id, bool sampled);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// The calling thread's innermost context, or nullptr.
  static TraceContext* Current();

  uint64_t trace_id() const { return trace_id_; }
  bool sampled() const { return sampled_; }

  /// Appends one closed span. No-op when not sampled, so an installed
  /// but unsampled context costs one branch per span close.
  void Record(const char* name, std::chrono::steady_clock::time_point start,
              uint64_t dur_ns, int depth);

 private:
  uint64_t trace_id_;
  bool sampled_;
  std::chrono::steady_clock::time_point t0_;
  std::vector<TraceEvent> events_;
  bool truncated_ = false;
  TraceContext* prev_;
};

/// Bounded ring of recently completed sampled traces, newest evicting
/// oldest. Lookups return shared_ptr snapshots so an export can render
/// while new traces keep landing.
class TraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  static TraceRing* Global();

  explicit TraceRing(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Publish(Trace trace);
  /// The trace with this id, or nullptr. When an id was published more
  /// than once (a client reusing ids), the newest wins.
  std::shared_ptr<const Trace> Find(uint64_t trace_id) const;
  /// The most recently published trace, or nullptr.
  std::shared_ptr<const Trace> Latest() const;
  /// Ids currently held, newest first.
  std::vector<uint64_t> RecentIds() const;
  size_t size() const;
  void Clear();  // tests

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const Trace>> ring_;  // front = newest
};

/// Renders a trace as Chrome trace_event JSON — load the body in
/// chrome://tracing or https://ui.perfetto.dev. Events are complete
/// ("ph":"X") slices on one pid/tid; nesting is reconstructed by the
/// viewer from ts/dur. Deterministic byte-for-byte for a given Trace.
std::string RenderTraceEventJson(const Trace& trace);

/// Formats a trace id the way URLs and logs carry it: 16 lowercase hex
/// digits, zero-padded. ParseTraceId accepts exactly that form (with an
/// optional 0x prefix); returns false on malformed input.
std::string FormatTraceId(uint64_t trace_id);
bool ParseTraceId(const std::string& text, uint64_t* out);

}  // namespace mdm::obs

#endif  // MDM_OBS_TRACE_H_

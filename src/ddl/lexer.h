#ifndef MDM_DDL_LEXER_H_
#define MDM_DDL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mdm::ddl {

/// Token kinds shared by the DDL and QUEL front ends.
enum class TokenType {
  kIdentifier,   // note_in_chord, CHORD, retrieve
  kInteger,      // 578
  kFloat,        // 3.25
  kString,       // "The Star Spangled Banner" or 'G4'
  kLParen,       // (
  kRParen,       // )
  kComma,        // ,
  kEquals,       // =
  kNotEquals,    // !=
  kLess,         // <
  kLessEq,       // <=
  kGreater,      // >
  kGreaterEq,    // >=
  kDot,          // .
  kEnd,          // end of input
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier / string contents / number text
  int64_t int_value = 0;
  double float_value = 0;
  size_t line = 1;    // 1-based, for error messages
};

/// Tokenizes DDL/QUEL text. Comments run from `--` to end of line.
/// Identifiers are [A-Za-z_][A-Za-z0-9_#]* (the '#' admits DARMS-ish
/// names); keywords are not distinguished here — parsers match
/// identifiers case-insensitively.
Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace mdm::ddl

#endif  // MDM_DDL_LEXER_H_

#include "ddl/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace mdm::ddl {

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  size_t line = 1;
  auto push = [&](TokenType t, std::string s = "") {
    Token tok;
    tok.type = t;
    tok.text = std::move(s);
    tok.line = line;
    out.push_back(std::move(tok));
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_' || text[i] == '#'))
        ++i;
      push(TokenType::kIdentifier, text.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              text[i] == '.')) {
        if (text[i] == '.') {
          // A second '.' ends the number (e.g. range syntax; not used,
          // but don't swallow it).
          if (is_float) break;
          is_float = true;
        }
        ++i;
      }
      std::string num = text.substr(start, i - start);
      Token tok;
      tok.line = line;
      tok.text = num;
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string s;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        if (text[i] == '\n') ++line;
        if (text[i] == '\\' && i + 1 < text.size()) ++i;  // escape
        s += text[i++];
      }
      if (!closed)
        return ParseError(StrFormat("unterminated string at line %zu", line));
      push(TokenType::kString, std::move(s));
      continue;
    }
    switch (c) {
      case '(': push(TokenType::kLParen); ++i; continue;
      case ')': push(TokenType::kRParen); ++i; continue;
      case ',': push(TokenType::kComma); ++i; continue;
      case '.': push(TokenType::kDot); ++i; continue;
      case '=': push(TokenType::kEquals); ++i; continue;
      case '!':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenType::kNotEquals);
          i += 2;
          continue;
        }
        return ParseError(StrFormat("stray '!' at line %zu", line));
      case '<':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenType::kLessEq);
          i += 2;
        } else if (i + 1 < text.size() && text[i + 1] == '>') {
          push(TokenType::kNotEquals);
          i += 2;
        } else {
          push(TokenType::kLess);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenType::kGreaterEq);
          i += 2;
        } else {
          push(TokenType::kGreater);
          ++i;
        }
        continue;
      default:
        return ParseError(
            StrFormat("unexpected character '%c' at line %zu", c, line));
    }
  }
  Token end;
  end.type = TokenType::kEnd;
  end.line = line;
  out.push_back(end);
  return out;
}

}  // namespace mdm::ddl

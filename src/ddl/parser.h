#ifndef MDM_DDL_PARSER_H_
#define MDM_DDL_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "er/database.h"
#include "er/schema.h"

namespace mdm::ddl {

/// Result of executing a DDL script: what was defined (or destroyed).
struct DdlResult {
  std::vector<std::string> entity_types;
  std::vector<std::string> relationships;
  std::vector<std::string> orderings;  // final (possibly generated) names
  std::vector<std::string> indexes;
  std::vector<std::string> destroyed_indexes;
};

/// Parses and executes a DDL script against `db`.
///
/// Grammar (§5.4, [Rub87] BNF):
///   script     := { statement }
///   statement  := define_entity | define_rel | define_ordering
///                   | define_index | destroy_index
///   define_entity   := "define" "entity" name "(" [attr {"," attr}] ")"
///   attr            := name "=" type_name
///   define_rel      := "define" "relationship" name
///                          "(" role {"," role} ")"
///   role            := name "=" entity_type_name
///   define_ordering := "define" "ordering" [name]
///                          "(" child {"," child} ")" "under" parent
///   define_index    := "define" "index" name "on" entity_type_name
///                          "(" attr_name ")"
///   destroy_index   := "destroy" "index" name
///
/// `type_name` is one of the scalar domains (integer, float, string,
/// bool, rational) or a previously defined entity type (making the
/// attribute an entity-valued reference, §5.1). Indexes are the §5.2
/// physical design: a secondary B-tree over one attribute of one entity
/// type, maintained on every create/update/delete and journaled like
/// any other schema change (see docs/INDEXES.md).
Result<DdlResult> ExecuteDdl(const std::string& script, er::Database* db);

/// Parses a DDL script without executing it (syntax check only).
Status CheckDdlSyntax(const std::string& script);

/// Deparses a schema back to canonical DDL text (used to regenerate the
/// paper's schema listings).
std::string SchemaToDdl(const er::ErSchema& schema);

}  // namespace mdm::ddl

#endif  // MDM_DDL_PARSER_H_

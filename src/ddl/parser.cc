#include "ddl/parser.h"

#include "common/strings.h"
#include "ddl/lexer.h"
#include "rel/value.h"

namespace mdm::ddl {

namespace {

/// Recursive-descent parser over the token stream. When `db` is null the
/// parser runs in check-only mode: statements are validated syntactically
/// but not executed (ref-attribute targets cannot be verified then).
class DdlParser {
 public:
  DdlParser(std::vector<Token> tokens, er::Database* db)
      : tokens_(std::move(tokens)), db_(db) {}

  Result<DdlResult> Run() {
    DdlResult result;
    while (!AtEnd()) {
      if (IsKeyword(Peek(), "destroy")) {
        Advance();
        MDM_RETURN_IF_ERROR(ExpectKeyword("index"));
        MDM_RETURN_IF_ERROR(DestroyIndex(&result));
        continue;
      }
      MDM_RETURN_IF_ERROR(ExpectKeyword("define"));
      const Token& what = Peek();
      if (IsKeyword(what, "entity")) {
        Advance();
        MDM_RETURN_IF_ERROR(ParseEntity(&result));
      } else if (IsKeyword(what, "relationship")) {
        Advance();
        MDM_RETURN_IF_ERROR(ParseRelationship(&result));
      } else if (IsKeyword(what, "ordering")) {
        Advance();
        MDM_RETURN_IF_ERROR(ParseOrdering(&result));
      } else if (IsKeyword(what, "index")) {
        Advance();
        MDM_RETURN_IF_ERROR(ParseIndex(&result));
      } else {
        return ParseError(StrFormat(
            "line %zu: expected entity/relationship/ordering/index after "
            "'define', got '%s'",
            what.line, what.text.c_str()));
      }
    }
    return result;
  }

 private:
  bool AtEnd() const { return tokens_[pos_].type == TokenType::kEnd; }
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (!AtEnd()) ++pos_;
  }

  static bool IsKeyword(const Token& tok, const char* kw) {
    return tok.type == TokenType::kIdentifier &&
           EqualsIgnoreCase(tok.text, kw);
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(Peek(), kw))
      return ParseError(StrFormat("line %zu: expected '%s', got '%s'",
                                  Peek().line, kw, Peek().text.c_str()));
    Advance();
    return Status::OK();
  }

  Status Expect(TokenType t, const char* what) {
    if (Peek().type != t)
      return ParseError(StrFormat("line %zu: expected %s, got '%s'",
                                  Peek().line, what, Peek().text.c_str()));
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier)
      return ParseError(StrFormat("line %zu: expected %s, got '%s'",
                                  Peek().line, what, Peek().text.c_str()));
    std::string name = Peek().text;
    Advance();
    return name;
  }

  // attr := name "=" type; the type is a scalar domain or an entity type.
  Result<er::AttributeDef> ParseAttribute() {
    MDM_ASSIGN_OR_RETURN(std::string name,
                         ExpectIdentifier("attribute name"));
    MDM_RETURN_IF_ERROR(Expect(TokenType::kEquals, "'='"));
    MDM_ASSIGN_OR_RETURN(std::string type_name,
                         ExpectIdentifier("attribute type"));
    er::AttributeDef attr;
    attr.name = std::move(name);
    rel::ValueType vt;
    if (rel::ParseValueType(type_name, &vt)) {
      attr.type = vt;
    } else {
      // Entity-valued attribute (implicit 1:n relationship, §5.1).
      attr.type = rel::ValueType::kRef;
      attr.ref_target = type_name;
    }
    return attr;
  }

  Status ParseEntity(DdlResult* result) {
    MDM_ASSIGN_OR_RETURN(std::string name,
                         ExpectIdentifier("entity type name"));
    MDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    er::EntityTypeDef def;
    def.name = name;
    if (Peek().type != TokenType::kRParen) {
      while (true) {
        MDM_ASSIGN_OR_RETURN(er::AttributeDef attr, ParseAttribute());
        def.attributes.push_back(std::move(attr));
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
    }
    MDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (db_ != nullptr) MDM_RETURN_IF_ERROR(db_->DefineEntityType(def));
    result->entity_types.push_back(name);
    return Status::OK();
  }

  Status ParseRelationship(DdlResult* result) {
    MDM_ASSIGN_OR_RETURN(std::string name,
                         ExpectIdentifier("relationship name"));
    MDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    er::RelationshipDef def;
    def.name = name;
    while (true) {
      MDM_ASSIGN_OR_RETURN(std::string role, ExpectIdentifier("role name"));
      MDM_RETURN_IF_ERROR(Expect(TokenType::kEquals, "'='"));
      MDM_ASSIGN_OR_RETURN(std::string type,
                           ExpectIdentifier("role entity type"));
      // A scalar domain makes this a relationship attribute (e.g. the
      // set_up code of GParmUse, §6.2); an entity type makes it a role.
      rel::ValueType vt;
      if (rel::ParseValueType(type, &vt)) {
        def.attributes.push_back({std::move(role), vt, ""});
      } else {
        def.roles.push_back({std::move(role), std::move(type)});
      }
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    MDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (db_ != nullptr) MDM_RETURN_IF_ERROR(db_->DefineRelationship(def));
    result->relationships.push_back(name);
    return Status::OK();
  }

  // define ordering [name] (child {, child}) under parent
  Status ParseOrdering(DdlResult* result) {
    er::OrderingDef def;
    if (Peek().type == TokenType::kIdentifier) {
      def.name = Peek().text;
      Advance();
    }
    MDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    while (true) {
      MDM_ASSIGN_OR_RETURN(std::string child,
                           ExpectIdentifier("child entity type"));
      def.child_types.push_back(std::move(child));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    MDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    MDM_RETURN_IF_ERROR(ExpectKeyword("under"));
    MDM_ASSIGN_OR_RETURN(def.parent_type,
                         ExpectIdentifier("parent entity type"));
    if (db_ != nullptr) {
      MDM_ASSIGN_OR_RETURN(std::string final_name,
                           db_->DefineOrdering(def));
      result->orderings.push_back(final_name);
    } else {
      result->orderings.push_back(def.name);
    }
    return Status::OK();
  }

  // define index name on entity_type (attr)
  Status ParseIndex(DdlResult* result) {
    er::AttrIndexDef def;
    MDM_ASSIGN_OR_RETURN(def.name, ExpectIdentifier("index name"));
    MDM_RETURN_IF_ERROR(ExpectKeyword("on"));
    MDM_ASSIGN_OR_RETURN(def.entity_type, ExpectIdentifier("entity type"));
    MDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    MDM_ASSIGN_OR_RETURN(def.attr, ExpectIdentifier("attribute name"));
    MDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    std::string name = def.name;
    if (db_ != nullptr) MDM_RETURN_IF_ERROR(db_->DefineIndex(std::move(def)));
    result->indexes.push_back(std::move(name));
    return Status::OK();
  }

  // destroy index name ("destroy" "index" already consumed)
  Status DestroyIndex(DdlResult* result) {
    MDM_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("index name"));
    if (db_ != nullptr) MDM_RETURN_IF_ERROR(db_->DestroyIndex(name));
    result->destroyed_indexes.push_back(std::move(name));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  er::Database* db_;
};

}  // namespace

Result<DdlResult> ExecuteDdl(const std::string& script, er::Database* db) {
  MDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(script));
  DdlParser parser(std::move(tokens), db);
  return parser.Run();
}

Status CheckDdlSyntax(const std::string& script) {
  MDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(script));
  DdlParser parser(std::move(tokens), nullptr);
  Result<DdlResult> r = parser.Run();
  return r.ok() ? Status::OK() : r.status();
}

std::string SchemaToDdl(const er::ErSchema& schema) {
  std::string out;
  for (const er::EntityTypeDef& e : schema.entity_types()) {
    out += "define entity " + e.name + " (";
    for (size_t i = 0; i < e.attributes.size(); ++i) {
      if (i > 0) out += ", ";
      const er::AttributeDef& a = e.attributes[i];
      out += a.name + " = ";
      out += a.type == rel::ValueType::kRef ? a.ref_target
                                            : rel::ValueTypeName(a.type);
    }
    out += ")\n";
  }
  for (const er::RelationshipDef& r : schema.relationships()) {
    out += "define relationship " + r.name + " (";
    for (size_t i = 0; i < r.roles.size(); ++i) {
      if (i > 0) out += ", ";
      out += r.roles[i].name + " = " + r.roles[i].entity_type;
    }
    out += ")\n";
  }
  for (const er::OrderingDef& o : schema.orderings()) {
    out += "define ordering " + o.name + " (";
    for (size_t i = 0; i < o.child_types.size(); ++i) {
      if (i > 0) out += ", ";
      out += o.child_types[i];
    }
    out += ") under " + o.parent_type + "\n";
  }
  return out;
}

}  // namespace mdm::ddl

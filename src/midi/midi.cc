#include "midi/midi.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace mdm::midi {

void MidiTrack::Sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const MidiEvent& a, const MidiEvent& b) {
                     if (a.seconds != b.seconds) return a.seconds < b.seconds;
                     // Note-offs first at equal timestamps.
                     bool a_off = a.kind == MidiEvent::Kind::kNoteOff;
                     bool b_off = b.kind == MidiEvent::Kind::kNoteOff;
                     return a_off && !b_off;
                   });
}

double MidiTrack::Duration() const {
  double d = 0;
  for (const MidiEvent& e : events) d = std::max(d, e.seconds);
  return d;
}

MidiTrack TrackFromPerformance(const std::vector<cmn::PerformedNote>& notes) {
  MidiTrack track;
  for (const cmn::PerformedNote& pn : notes) {
    MidiEvent on;
    on.kind = MidiEvent::Kind::kNoteOn;
    on.seconds = pn.start_seconds;
    on.key = static_cast<uint8_t>(std::clamp(pn.midi_key, 0, 127));
    on.velocity = static_cast<uint8_t>(std::clamp(pn.velocity, 1, 127));
    MidiEvent off = on;
    off.kind = MidiEvent::Kind::kNoteOff;
    off.seconds = pn.end_seconds;
    off.velocity = 0;
    track.events.push_back(on);
    track.events.push_back(off);
  }
  track.Sort();
  return track;
}

namespace {

void PutBe32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 3; i >= 0; --i)
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutBe16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

/// MIDI variable-length quantity (big-endian 7-bit groups).
void PutVlq(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t bytes[5];
  int n = 0;
  do {
    bytes[n++] = static_cast<uint8_t>(v & 0x7F);
    v >>= 7;
  } while (v != 0);
  for (int i = n - 1; i > 0; --i)
    out->push_back(bytes[i] | 0x80);
  out->push_back(bytes[0]);
}

}  // namespace

std::vector<uint8_t> WriteSmf(const MidiTrack& track, int division,
                              double seconds_per_beat) {
  MidiTrack sorted = track;
  sorted.Sort();
  const double ticks_per_second = division / seconds_per_beat;

  std::vector<uint8_t> body;
  // Tempo meta event at t=0.
  PutVlq(&body, 0);
  body.push_back(0xFF);
  body.push_back(0x51);
  body.push_back(0x03);
  uint32_t usec = static_cast<uint32_t>(seconds_per_beat * 1e6);
  body.push_back(static_cast<uint8_t>(usec >> 16));
  body.push_back(static_cast<uint8_t>(usec >> 8));
  body.push_back(static_cast<uint8_t>(usec));

  uint32_t last_tick = 0;
  for (const MidiEvent& e : sorted.events) {
    uint32_t tick =
        static_cast<uint32_t>(std::llround(e.seconds * ticks_per_second));
    if (tick < last_tick) tick = last_tick;
    PutVlq(&body, tick - last_tick);
    last_tick = tick;
    switch (e.kind) {
      case MidiEvent::Kind::kNoteOn:
        body.push_back(0x90 | (e.channel & 0x0F));
        body.push_back(e.key & 0x7F);
        body.push_back(e.velocity & 0x7F);
        break;
      case MidiEvent::Kind::kNoteOff:
        body.push_back(0x80 | (e.channel & 0x0F));
        body.push_back(e.key & 0x7F);
        body.push_back(e.velocity & 0x7F);
        break;
      case MidiEvent::Kind::kControl:
        body.push_back(0xB0 | (e.channel & 0x0F));
        body.push_back(e.controller & 0x7F);
        body.push_back(e.value & 0x7F);
        break;
      case MidiEvent::Kind::kProgram:
        body.push_back(0xC0 | (e.channel & 0x0F));
        body.push_back(e.value & 0x7F);
        break;
      case MidiEvent::Kind::kTempo: {
        body.push_back(0xFF);
        body.push_back(0x51);
        body.push_back(0x03);
        body.push_back(static_cast<uint8_t>(e.tempo_usec_per_beat >> 16));
        body.push_back(static_cast<uint8_t>(e.tempo_usec_per_beat >> 8));
        body.push_back(static_cast<uint8_t>(e.tempo_usec_per_beat));
        break;
      }
    }
  }
  // End of track.
  PutVlq(&body, 0);
  body.push_back(0xFF);
  body.push_back(0x2F);
  body.push_back(0x00);

  std::vector<uint8_t> out;
  out.insert(out.end(), {'M', 'T', 'h', 'd'});
  PutBe32(&out, 6);
  PutBe16(&out, 0);  // format 0
  PutBe16(&out, 1);  // one track
  PutBe16(&out, static_cast<uint16_t>(division));
  out.insert(out.end(), {'M', 'T', 'r', 'k'});
  PutBe32(&out, static_cast<uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

namespace {

class SmfReader {
 public:
  SmfReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status Need(size_t n) const {
    if (pos_ + n > size_) return Corruption("SMF truncated");
    return Status::OK();
  }
  Result<uint8_t> U8() {
    MDM_RETURN_IF_ERROR(Need(1));
    return data_[pos_++];
  }
  Result<uint16_t> Be16() {
    MDM_RETURN_IF_ERROR(Need(2));
    uint16_t v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  Result<uint32_t> Be32() {
    MDM_RETURN_IF_ERROR(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
    pos_ += 4;
    return v;
  }
  Result<uint32_t> Vlq() {
    uint32_t v = 0;
    for (int i = 0; i < 5; ++i) {
      MDM_ASSIGN_OR_RETURN(uint8_t b, U8());
      v = v << 7 | (b & 0x7F);
      if ((b & 0x80) == 0) return v;
    }
    return Corruption("SMF VLQ too long");
  }
  void Skip(size_t n) { pos_ = std::min(size_, pos_ + n); }
  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ >= size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Result<MidiTrack> ReadSmf(const std::vector<uint8_t>& bytes) {
  SmfReader r(bytes.data(), bytes.size());
  MDM_ASSIGN_OR_RETURN(uint32_t magic, r.Be32());
  if (magic != 0x4D546864) return Corruption("not an SMF file (no MThd)");
  MDM_ASSIGN_OR_RETURN(uint32_t hlen, r.Be32());
  MDM_ASSIGN_OR_RETURN(uint16_t format, r.Be16());
  MDM_ASSIGN_OR_RETURN(uint16_t ntracks, r.Be16());
  MDM_ASSIGN_OR_RETURN(uint16_t division, r.Be16());
  if (format > 1) return Unimplemented("only SMF formats 0/1 supported");
  if (division & 0x8000)
    return Unimplemented("SMPTE time division not supported");
  r.Skip(hlen > 6 ? hlen - 6 : 0);

  MidiTrack track;
  double seconds_per_tick = 0.5 / division;  // until a tempo event
  for (uint16_t t = 0; t < ntracks; ++t) {
    MDM_ASSIGN_OR_RETURN(uint32_t chunk, r.Be32());
    MDM_ASSIGN_OR_RETURN(uint32_t length, r.Be32());
    if (chunk != 0x4D54726B) {  // not MTrk: skip
      r.Skip(length);
      continue;
    }
    size_t end = r.pos() + length;
    uint32_t tick = 0;
    uint8_t running_status = 0;
    while (r.pos() < end) {
      MDM_ASSIGN_OR_RETURN(uint32_t delta, r.Vlq());
      tick += delta;
      MDM_ASSIGN_OR_RETURN(uint8_t status, r.U8());
      if (status < 0x80) {
        // Running status: the byte read was actually data.
        if (running_status == 0) return Corruption("SMF running status");
        // Un-read it by handling below with first data byte = status.
        MidiEvent e;
        e.seconds = tick * seconds_per_tick;
        e.channel = running_status & 0x0F;
        uint8_t hi = running_status & 0xF0;
        if (hi == 0x90 || hi == 0x80 || hi == 0xB0) {
          MDM_ASSIGN_OR_RETURN(uint8_t d2, r.U8());
          if (hi == 0xB0) {
            e.kind = MidiEvent::Kind::kControl;
            e.controller = status;
            e.value = d2;
          } else {
            e.kind = (hi == 0x90 && d2 > 0) ? MidiEvent::Kind::kNoteOn
                                            : MidiEvent::Kind::kNoteOff;
            e.key = status;
            e.velocity = d2;
          }
          track.events.push_back(e);
        } else if (hi == 0xC0) {
          e.kind = MidiEvent::Kind::kProgram;
          e.value = status;
          track.events.push_back(e);
        } else {
          return Corruption("unsupported running status event");
        }
        continue;
      }
      if (status == 0xFF) {  // meta
        MDM_ASSIGN_OR_RETURN(uint8_t type, r.U8());
        MDM_ASSIGN_OR_RETURN(uint32_t len, r.Vlq());
        if (type == 0x51 && len == 3) {
          MDM_ASSIGN_OR_RETURN(uint8_t a, r.U8());
          MDM_ASSIGN_OR_RETURN(uint8_t b, r.U8());
          MDM_ASSIGN_OR_RETURN(uint8_t c, r.U8());
          uint32_t usec = static_cast<uint32_t>(a) << 16 |
                          static_cast<uint32_t>(b) << 8 | c;
          seconds_per_tick = usec / 1e6 / division;
          MidiEvent e;
          e.kind = MidiEvent::Kind::kTempo;
          e.seconds = tick * seconds_per_tick;
          e.tempo_usec_per_beat = usec;
          track.events.push_back(e);
        } else {
          r.Skip(len);
        }
        continue;
      }
      if (status == 0xF0 || status == 0xF7) {  // sysex: skip
        MDM_ASSIGN_OR_RETURN(uint32_t len, r.Vlq());
        r.Skip(len);
        continue;
      }
      running_status = status;
      uint8_t hi = status & 0xF0;
      MidiEvent e;
      e.seconds = tick * seconds_per_tick;
      e.channel = status & 0x0F;
      switch (hi) {
        case 0x90:
        case 0x80: {
          MDM_ASSIGN_OR_RETURN(uint8_t key, r.U8());
          MDM_ASSIGN_OR_RETURN(uint8_t vel, r.U8());
          e.kind = (hi == 0x90 && vel > 0) ? MidiEvent::Kind::kNoteOn
                                           : MidiEvent::Kind::kNoteOff;
          e.key = key;
          e.velocity = vel;
          track.events.push_back(e);
          break;
        }
        case 0xB0: {
          MDM_ASSIGN_OR_RETURN(uint8_t ctl, r.U8());
          MDM_ASSIGN_OR_RETURN(uint8_t val, r.U8());
          e.kind = MidiEvent::Kind::kControl;
          e.controller = ctl;
          e.value = val;
          track.events.push_back(e);
          break;
        }
        case 0xC0: {
          MDM_ASSIGN_OR_RETURN(uint8_t program, r.U8());
          e.kind = MidiEvent::Kind::kProgram;
          e.value = program;
          track.events.push_back(e);
          break;
        }
        case 0xA0:
        case 0xE0:
          r.Skip(2);
          break;
        case 0xD0:
          r.Skip(1);
          break;
        default:
          return Corruption(StrFormat("bad SMF status byte 0x%02X", status));
      }
    }
  }
  track.Sort();
  return track;
}

std::string EventListText(const MidiTrack& track) {
  std::string out;
  for (const MidiEvent& e : track.events) {
    switch (e.kind) {
      case MidiEvent::Kind::kNoteOn:
        out += StrFormat("%8.3f  note-on  ch%-2d key %3d vel %3d\n",
                         e.seconds, e.channel, e.key, e.velocity);
        break;
      case MidiEvent::Kind::kNoteOff:
        out += StrFormat("%8.3f  note-off ch%-2d key %3d\n", e.seconds,
                         e.channel, e.key);
        break;
      case MidiEvent::Kind::kControl:
        out += StrFormat("%8.3f  control  ch%-2d ctl %3d val %3d\n",
                         e.seconds, e.channel, e.controller, e.value);
        break;
      case MidiEvent::Kind::kProgram:
        out += StrFormat("%8.3f  program  ch%-2d prg %3d\n", e.seconds,
                         e.channel, e.value);
        break;
      case MidiEvent::Kind::kTempo:
        out += StrFormat("%8.3f  tempo    %u usec/beat\n", e.seconds,
                         e.tempo_usec_per_beat);
        break;
    }
  }
  return out;
}

}  // namespace mdm::midi

#include "midi/import.h"

#include <algorithm>
#include <map>

#include "cmn/score_builder.h"
#include "common/strings.h"
#include "mtime/meter.h"

namespace mdm::midi {

using er::EntityId;

namespace {

Rational Quantize(const Rational& value, const Rational& quantum) {
  // Round to the nearest multiple of quantum.
  Rational ratio = value / quantum;
  int64_t rounded = (ratio + Rational(1, 2)).Floor();
  return quantum * Rational(rounded);
}

struct PendingNote {
  int key;
  double start_seconds;
};

struct TranscribedNote {
  int channel;
  int key;
  Rational onset;     // quantized beats
  Rational duration;  // quantized beats (>= quantum)
};

}  // namespace

Result<MidiImport> ImportMidiTrack(er::Database* db, const MidiTrack& track,
                                   const mtime::TempoMap& tempo,
                                   const std::string& title,
                                   const ImportOptions& options) {
  if (options.quantum.IsZero() || options.quantum.IsNegative())
    return InvalidArgument("quantum must be positive");
  MDM_RETURN_IF_ERROR(cmn::InstallCmnSchema(db));

  // 1. Pair note-ons with note-offs and quantize into score time.
  std::vector<TranscribedNote> notes;
  std::map<std::pair<int, int>, PendingNote> open;  // (channel, key)
  MidiTrack sorted = track;
  sorted.Sort();
  for (const MidiEvent& e : sorted.events) {
    if (e.kind == MidiEvent::Kind::kNoteOn) {
      open[{e.channel, e.key}] = {e.key, e.seconds};
    } else if (e.kind == MidiEvent::Kind::kNoteOff) {
      auto it = open.find({e.channel, e.key});
      if (it == open.end()) continue;  // stray note-off: ignore
      Rational onset =
          Quantize(tempo.ToBeats(it->second.start_seconds), options.quantum);
      Rational end = Quantize(tempo.ToBeats(e.seconds), options.quantum);
      Rational duration = end - onset;
      if (duration.IsZero() || duration.IsNegative())
        duration = options.quantum;  // grace-note floor
      notes.push_back({e.channel, e.key, onset, duration});
      open.erase(it);
    }
  }
  // Unterminated notes get the quantum as duration.
  for (const auto& [chan_key, pending] : open) {
    Rational onset =
        Quantize(tempo.ToBeats(pending.start_seconds), options.quantum);
    notes.push_back({chan_key.first, pending.key, onset, options.quantum});
  }
  std::stable_sort(notes.begin(), notes.end(),
                   [](const TranscribedNote& a, const TranscribedNote& b) {
                     if (a.channel != b.channel) return a.channel < b.channel;
                     if (a.onset != b.onset) return a.onset < b.onset;
                     return a.key < b.key;
                   });

  // 2. Build the score skeleton: enough measures to cover the stream.
  cmn::ScoreBuilder builder(db);
  MidiImport import;
  MDM_ASSIGN_OR_RETURN(import.score, builder.CreateScore(title));
  MDM_ASSIGN_OR_RETURN(EntityId movement,
                       builder.AddMovement(import.score, "I"));
  mtime::TimeSignature sig{options.meter_numerator,
                           options.meter_denominator};
  Rational measure_len = sig.BeatsPerMeasure();
  Rational stream_end(0);
  for (const TranscribedNote& n : notes)
    stream_end = std::max(stream_end, n.onset + n.duration,
                          [](const Rational& a, const Rational& b) {
                            return a < b;
                          });
  int n_measures = 1;
  while (measure_len * Rational(n_measures) < stream_end) ++n_measures;
  std::vector<EntityId> measures;
  for (int m = 1; m <= n_measures; ++m) {
    MDM_ASSIGN_OR_RETURN(EntityId measure,
                         builder.AddMeasure(movement, m, sig));
    measures.push_back(measure);
  }
  import.measures = n_measures;

  // 3. One voice per channel; chords merge simultaneous equal-duration
  // notes on a channel.
  std::map<int, EntityId> voice_of_channel;
  std::map<std::tuple<int, int64_t, int64_t, int64_t, int64_t>, EntityId>
      chord_of;  // (channel, onset num/den, dur num/den) -> chord
  for (const TranscribedNote& n : notes) {
    auto vit = voice_of_channel.find(n.channel);
    if (vit == voice_of_channel.end()) {
      MDM_ASSIGN_OR_RETURN(EntityId voice, builder.AddVoice(n.channel + 1));
      vit = voice_of_channel.emplace(n.channel, voice).first;
      import.voices.push_back(voice);
    }
    // Locate the measure containing the onset.
    int64_t measure_index = (n.onset / measure_len).Floor();
    if (measure_index >= n_measures)
      return Internal("onset beyond allocated measures");
    Rational beat = n.onset - measure_len * Rational(measure_index);
    MDM_ASSIGN_OR_RETURN(
        EntityId sync,
        builder.GetOrAddSync(measures[measure_index], beat));
    auto chord_key = std::make_tuple(n.channel, n.onset.num(), n.onset.den(),
                                     n.duration.num(), n.duration.den());
    auto cit = chord_of.find(chord_key);
    EntityId chord;
    if (cit == chord_of.end()) {
      MDM_ASSIGN_OR_RETURN(
          chord, builder.AddChord(sync, vit->second, n.duration));
      chord_of.emplace(chord_key, chord);
    } else {
      chord = cit->second;
    }
    MDM_RETURN_IF_ERROR(builder.AddNoteMidi(chord, n.key).status());
    ++import.notes;
  }
  return import;
}

}  // namespace mdm::midi

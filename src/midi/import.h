#ifndef MDM_MIDI_IMPORT_H_
#define MDM_MIDI_IMPORT_H_

#include "cmn/schema.h"
#include "common/result.h"
#include "er/database.h"
#include "midi/midi.h"
#include "mtime/tempo_map.h"

namespace mdm::midi {

/// Options for event-stream transcription.
struct ImportOptions {
  /// Onsets and durations snap to this grid (in beats): 1/4 = sixteenth
  /// notes at a quarter-note beat.
  Rational quantum{1, 4};
  /// Meter used to cut the stream into measures.
  int meter_numerator = 4;
  int meter_denominator = 4;
};

/// Result of importing an event stream.
struct MidiImport {
  er::EntityId score = er::kInvalidEntityId;
  std::vector<er::EntityId> voices;  // one per MIDI channel seen
  int notes = 0;
  int measures = 0;
};

/// Transcribes a MIDI note stream into a CMN score (§4.5: "the ease of
/// translation between note event streams ... and piano rolls" is what
/// made piano-roll systems popular; this is the MDM's version of that
/// translation). Each channel becomes a voice; simultaneous
/// equal-duration notes on a channel merge into chords; onsets and
/// durations quantize to `options.quantum`. The paper is explicit that
/// full transcription (rhythm/pitch/instrument separation from audio)
/// is expert-hard — from an *event stream* it is mechanical, which is
/// exactly why MIDI sits at the bottom of fig 13.
Result<MidiImport> ImportMidiTrack(er::Database* db, const MidiTrack& track,
                                   const mtime::TempoMap& tempo,
                                   const std::string& title,
                                   const ImportOptions& options = {});

}  // namespace mdm::midi

#endif  // MDM_MIDI_IMPORT_H_

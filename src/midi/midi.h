#ifndef MDM_MIDI_MIDI_H_
#define MDM_MIDI_MIDI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cmn/temporal.h"
#include "common/result.h"
#include "common/status.h"

namespace mdm::midi {

/// One timed MIDI message (§4.6: "music may be organized into event
/// streams, as with industry standard MIDI event lists").
struct MidiEvent {
  enum class Kind { kNoteOn, kNoteOff, kControl, kTempo, kProgram };
  Kind kind = Kind::kNoteOn;
  double seconds = 0;  // absolute performance time
  uint8_t channel = 0;
  uint8_t key = 60;        // note on/off
  uint8_t velocity = 64;   // note on/off
  uint8_t controller = 0;  // control (e.g. 66 = sostenuto, §7.2)
  uint8_t value = 0;       // control / program
  uint32_t tempo_usec_per_beat = 500000;  // tempo meta event
};

/// A sorted stream of MIDI events.
struct MidiTrack {
  std::vector<MidiEvent> events;

  /// Stable-sorts by time, note-offs before note-ons at equal times so
  /// repeated notes re-trigger cleanly.
  void Sort();
  /// Total duration in seconds (time of the last event).
  double Duration() const;
};

/// Converts an extracted performance (cmn::ExtractPerformance) into a
/// note-on/note-off stream.
MidiTrack TrackFromPerformance(const std::vector<cmn::PerformedNote>& notes);

/// Serializes a format-0 Standard MIDI File. `division` is ticks per
/// quarter note; event times are converted using the fixed tempo meta
/// event written at time 0 (tempo-map shaping is already baked into the
/// events' absolute seconds).
std::vector<uint8_t> WriteSmf(const MidiTrack& track, int division = 480,
                              double seconds_per_beat = 0.5);

/// Parses a format-0/1 SMF produced by WriteSmf (or elsewhere); only
/// note, control, program and tempo events are retained.
Result<MidiTrack> ReadSmf(const std::vector<uint8_t>& bytes);

/// Renders the track as a human-readable event list.
std::string EventListText(const MidiTrack& track);

}  // namespace mdm::midi

#endif  // MDM_MIDI_MIDI_H_

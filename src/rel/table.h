#ifndef MDM_REL_TABLE_H_
#define MDM_REL_TABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "rel/schema.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace mdm::rel {

/// A relation stored in a heap file, with optional B+tree indexes on
/// integer or ref columns.
///
/// This is the paper's INGRES-substrate stand-in: the MDM's ER layer
/// maps each entity type to one Table; §5.2's discussion of ordering as
/// a physical optimization is exercised here (index scan vs heap scan,
/// see bench_s52_ordering_opt).
class Table {
 public:
  Table(storage::BufferPool* pool, std::string name, RelSchema schema,
        storage::PageId first_page);

  const std::string& name() const { return name_; }
  const RelSchema& schema() const { return schema_; }
  storage::PageId first_page() const { return heap_.first_page(); }

  Result<storage::Rid> Insert(const Tuple& tuple);
  Result<Tuple> Get(const storage::Rid& rid) const;
  Status Delete(const storage::Rid& rid);
  Status Update(const storage::Rid& rid, const Tuple& tuple);

  /// Full scan in storage order; stop early by returning false.
  Status Scan(
      const std::function<bool(const storage::Rid&, const Tuple&)>& fn) const;

  /// Declares a B+tree index on an int or ref column; builds it from the
  /// current contents and maintains it on every mutation thereafter.
  Status CreateIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;

  /// Index-assisted equality/range lookup; fails if no index exists.
  Status IndexScan(
      const std::string& column, int64_t lo, int64_t hi,
      const std::function<bool(const storage::Rid&, const Tuple&)>& fn) const;

  Result<uint64_t> Count() const { return heap_.Count(); }

 private:
  // Key for index maintenance: int value, or ref id, of `col`.
  static Result<int64_t> IndexKey(const Tuple& tuple, size_t col);

  storage::BufferPool* pool_;
  std::string name_;
  RelSchema schema_;
  storage::HeapFile heap_;
  // column index -> btree
  std::map<size_t, std::unique_ptr<storage::BTree>> indexes_;
};

/// Names tables and remembers their root pages; persisted in the
/// database header page so a reopened file finds its relations.
class Catalog {
 public:
  explicit Catalog(storage::BufferPool* pool) : pool_(pool) {}

  Result<Table*> CreateTable(const std::string& name, RelSchema schema);
  Result<Table*> GetTable(const std::string& name);
  Status DropTable(const std::string& name);
  std::vector<std::string> TableNames() const;

  /// Writes the catalog (names, schemas, root pages) into page 0.
  Status Save();
  /// Loads the catalog from page 0 of an existing database.
  Status Load();

 private:
  storage::BufferPool* pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace mdm::rel

#endif  // MDM_REL_TABLE_H_

#include "rel/schema.h"

#include "common/strings.h"

namespace mdm::rel {

std::optional<size_t> RelSchema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i)
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  return std::nullopt;
}

Status RelSchema::AddColumn(Column column) {
  if (IndexOf(column.name).has_value())
    return AlreadyExists("duplicate column " + column.name);
  columns_.push_back(std::move(column));
  return Status::OK();
}

void RelSchema::Encode(ByteWriter* w) const {
  w->PutVarint(columns_.size());
  for (const Column& c : columns_) {
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
    w->PutString(c.ref_target);
  }
}

Status RelSchema::Decode(ByteReader* r, RelSchema* out) {
  uint64_t n;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n));
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Column c;
    MDM_RETURN_IF_ERROR(r->GetString(&c.name));
    uint8_t t;
    MDM_RETURN_IF_ERROR(r->GetU8(&t));
    c.type = static_cast<ValueType>(t);
    MDM_RETURN_IF_ERROR(r->GetString(&c.ref_target));
    cols.push_back(std::move(c));
  }
  *out = RelSchema(std::move(cols));
  return Status::OK();
}

Status CheckTuple(const RelSchema& schema, const Tuple& tuple) {
  if (tuple.size() != schema.size())
    return TypeError(StrFormat("tuple arity %zu does not match schema %zu",
                               tuple.size(), schema.size()));
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_null()) continue;
    ValueType expected = schema.column(i).type;
    ValueType got = tuple[i].type();
    if (got == expected) continue;
    // Int is accepted where float is declared.
    if (expected == ValueType::kFloat && got == ValueType::kInt) continue;
    return TypeError(StrFormat("column %s expects %s, got %s",
                               schema.column(i).name.c_str(),
                               ValueTypeName(expected), ValueTypeName(got)));
  }
  return Status::OK();
}

void EncodeTuple(const Tuple& tuple, ByteWriter* w) {
  w->PutVarint(tuple.size());
  for (const Value& v : tuple) v.Encode(w);
}

Status DecodeTuple(ByteReader* r, Tuple* out) {
  uint64_t n;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    MDM_RETURN_IF_ERROR(Value::Decode(r, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace mdm::rel

#include "rel/value.h"

#include "common/strings.h"

namespace mdm::rel {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "integer";
    case ValueType::kFloat: return "float";
    case ValueType::kString: return "string";
    case ValueType::kRational: return "rational";
    case ValueType::kRef: return "ref";
  }
  return "unknown";
}

bool ParseValueType(const std::string& name, ValueType* out) {
  std::string n = AsciiLower(name);
  if (n == "integer" || n == "int") {
    *out = ValueType::kInt;
  } else if (n == "string") {
    *out = ValueType::kString;
  } else if (n == "float" || n == "double") {
    *out = ValueType::kFloat;
  } else if (n == "bool" || n == "boolean") {
    *out = ValueType::kBool;
  } else if (n == "rational") {
    *out = ValueType::kRational;
  } else {
    return false;
  }
  return true;
}

ValueType Value::type() const {
  return static_cast<ValueType>(v_.index());
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return AsBool() ? "true" : "false";
    case ValueType::kInt: return std::to_string(AsInt());
    case ValueType::kFloat: return StrFormat("%g", AsFloat());
    case ValueType::kString: return "'" + AsString() + "'";
    case ValueType::kRational: return AsRational().ToString();
    case ValueType::kRef: return StrFormat("#%llu",
                                           (unsigned long long)AsRef());
  }
  return "?";
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Int/float compare numerically across the two types.
  if ((type() == ValueType::kInt || type() == ValueType::kFloat) &&
      (other.type() == ValueType::kInt || other.type() == ValueType::kFloat)) {
    double a = type() == ValueType::kInt ? static_cast<double>(AsInt())
                                         : AsFloat();
    double b = other.type() == ValueType::kInt
                   ? static_cast<double>(other.AsInt())
                   : other.AsFloat();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type())
    return TypeError(StrFormat("cannot compare %s with %s",
                               ValueTypeName(type()),
                               ValueTypeName(other.type())));
  switch (type()) {
    case ValueType::kBool:
      return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kRational: {
      if (AsRational() < other.AsRational()) return -1;
      if (other.AsRational() < AsRational()) return 1;
      return 0;
    }
    case ValueType::kRef: {
      if (AsRef() < other.AsRef()) return -1;
      if (AsRef() > other.AsRef()) return 1;
      return 0;
    }
    default:
      return Internal("unhandled comparison type");
  }
}

bool Value::Equals(const Value& other) const {
  if (type() != other.type()) {
    // Int/float numeric equality across types.
    Result<int> c = Compare(other);
    return c.ok() && *c == 0;
  }
  return v_ == other.v_;
}

void Value::Encode(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull: break;
    case ValueType::kBool: w->PutU8(AsBool() ? 1 : 0); break;
    case ValueType::kInt: w->PutI64(AsInt()); break;
    case ValueType::kFloat: w->PutF64(AsFloat()); break;
    case ValueType::kString: w->PutString(AsString()); break;
    case ValueType::kRational:
      w->PutI64(AsRational().num());
      w->PutI64(AsRational().den());
      break;
    case ValueType::kRef: w->PutU64(AsRef()); break;
  }
}

Status Value::Decode(ByteReader* r, Value* out) {
  uint8_t tag;
  MDM_RETURN_IF_ERROR(r->GetU8(&tag));
  if (tag > static_cast<uint8_t>(ValueType::kRef))
    return Corruption(StrFormat("bad value tag %u", tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueType::kBool: {
      uint8_t b;
      MDM_RETURN_IF_ERROR(r->GetU8(&b));
      *out = Value::Bool(b != 0);
      return Status::OK();
    }
    case ValueType::kInt: {
      int64_t i;
      MDM_RETURN_IF_ERROR(r->GetI64(&i));
      *out = Value::Int(i);
      return Status::OK();
    }
    case ValueType::kFloat: {
      double d;
      MDM_RETURN_IF_ERROR(r->GetF64(&d));
      *out = Value::Float(d);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      MDM_RETURN_IF_ERROR(r->GetString(&s));
      *out = Value::String(std::move(s));
      return Status::OK();
    }
    case ValueType::kRational: {
      int64_t num, den;
      MDM_RETURN_IF_ERROR(r->GetI64(&num));
      MDM_RETURN_IF_ERROR(r->GetI64(&den));
      if (den == 0) return Corruption("rational with zero denominator");
      *out = Value::Rat(Rational(num, den));
      return Status::OK();
    }
    case ValueType::kRef: {
      uint64_t id;
      MDM_RETURN_IF_ERROR(r->GetU64(&id));
      *out = Value::Ref(id);
      return Status::OK();
    }
  }
  return Internal("unreachable value decode");
}

}  // namespace mdm::rel

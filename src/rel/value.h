#ifndef MDM_REL_VALUE_H_
#define MDM_REL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/rational.h"
#include "common/result.h"
#include "common/status.h"

namespace mdm::rel {

/// Attribute domain types supported by the MDM.
///
/// kRef holds the surrogate id of an entity instance: the paper's
/// "1-to-n relationship represented implicitly as an attribute"
/// (e.g. `composition_date = DATE` in §5.1) becomes a kRef attribute.
/// kRational exists because score time is exact rational beats (§7.2).
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kFloat = 3,
  kString = 4,
  kRational = 5,
  kRef = 6,
};

const char* ValueTypeName(ValueType t);
/// Parses "integer", "string", "float", "bool", "rational" as used in the
/// paper's DDL (`title = string`). Entity-type names are resolved to kRef
/// by the DDL layer, not here.
bool ParseValueType(const std::string& name, ValueType* out);

/// A dynamically typed attribute value.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Payload(b)); }
  static Value Int(int64_t i) { return Value(Payload(i)); }
  static Value Float(double d) { return Value(Payload(d)); }
  static Value String(std::string s) { return Value(Payload(std::move(s))); }
  static Value Rat(const Rational& r) { return Value(Payload(r)); }
  static Value Ref(uint64_t entity_id) { return Value(Payload(RefTag{entity_id})); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsFloat() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  const Rational& AsRational() const { return std::get<Rational>(v_); }
  uint64_t AsRef() const { return std::get<RefTag>(v_).id; }

  /// Display form ("'title'", "42", "3/4", "#17", "null").
  std::string ToString() const;

  /// Total order within a type; comparing different non-null types is a
  /// TypeError. Null compares equal to null and less than everything.
  Result<int> Compare(const Value& other) const;

  /// True iff same type and equal (null == null). Never errors.
  bool Equals(const Value& other) const;

  void Encode(ByteWriter* w) const;
  static Status Decode(ByteReader* r, Value* out);

 private:
  struct RefTag {
    uint64_t id;
    friend bool operator==(const RefTag&, const RefTag&) = default;
  };
  using Payload = std::variant<std::monostate, bool, int64_t, double,
                               std::string, Rational, RefTag>;
  explicit Value(Payload p) : v_(std::move(p)) {}

  Payload v_;
};

}  // namespace mdm::rel

#endif  // MDM_REL_VALUE_H_

#ifndef MDM_REL_SCHEMA_H_
#define MDM_REL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rel/value.h"

namespace mdm::rel {

/// A column of a relation.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
  /// For kRef columns: the entity type the reference targets ("" = any).
  std::string ref_target;
};

/// The schema (heading) of one relation.
class RelSchema {
 public:
  RelSchema() = default;
  explicit RelSchema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of the column named `name`, if present.
  std::optional<size_t> IndexOf(const std::string& name) const;

  Status AddColumn(Column column);

  void Encode(ByteWriter* w) const;
  static Status Decode(ByteReader* r, RelSchema* out);

 private:
  std::vector<Column> columns_;
};

/// A tuple: one value per schema column.
using Tuple = std::vector<Value>;

/// Validates `tuple` against `schema` (arity and per-column type; null is
/// allowed in any column).
Status CheckTuple(const RelSchema& schema, const Tuple& tuple);

/// Serializes a tuple (schema provides arity only; values are
/// self-describing so decode never misinterprets bytes).
void EncodeTuple(const Tuple& tuple, ByteWriter* w);
Status DecodeTuple(ByteReader* r, Tuple* out);

}  // namespace mdm::rel

#endif  // MDM_REL_SCHEMA_H_

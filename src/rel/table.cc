#include "rel/table.h"

#include <cstring>

#include "common/strings.h"

namespace mdm::rel {

using storage::BufferPool;
using storage::kInvalidPageId;
using storage::kPageSize;
using storage::Page;
using storage::PageId;
using storage::Rid;

Table::Table(BufferPool* pool, std::string name, RelSchema schema,
             PageId first_page)
    : pool_(pool),
      name_(std::move(name)),
      schema_(std::move(schema)),
      heap_(pool, first_page) {}

Result<int64_t> Table::IndexKey(const Tuple& tuple, size_t col) {
  const Value& v = tuple[col];
  switch (v.type()) {
    case ValueType::kInt: return v.AsInt();
    case ValueType::kRef: return static_cast<int64_t>(v.AsRef());
    case ValueType::kNull: return int64_t{INT64_MIN};  // nulls sort first
    default:
      return TypeError("indexed column must be integer or ref");
  }
}

Result<Rid> Table::Insert(const Tuple& tuple) {
  MDM_RETURN_IF_ERROR(CheckTuple(schema_, tuple));
  ByteWriter w;
  EncodeTuple(tuple, &w);
  MDM_ASSIGN_OR_RETURN(
      Rid rid, heap_.Append(std::string_view(
                   reinterpret_cast<const char*>(w.data().data()), w.size())));
  for (auto& [col, tree] : indexes_) {
    MDM_ASSIGN_OR_RETURN(int64_t key, IndexKey(tuple, col));
    tree->Insert(key, rid);
  }
  return rid;
}

Result<Tuple> Table::Get(const Rid& rid) const {
  std::string bytes;
  MDM_RETURN_IF_ERROR(heap_.Read(rid, &bytes));
  ByteReader r(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  Tuple t;
  MDM_RETURN_IF_ERROR(DecodeTuple(&r, &t));
  return t;
}

Status Table::Delete(const Rid& rid) {
  if (!indexes_.empty()) {
    MDM_ASSIGN_OR_RETURN(Tuple old, Get(rid));
    for (auto& [col, tree] : indexes_) {
      MDM_ASSIGN_OR_RETURN(int64_t key, IndexKey(old, col));
      tree->Erase(key, rid);
    }
  }
  return heap_.Delete(rid);
}

Status Table::Update(const Rid& rid, const Tuple& tuple) {
  MDM_RETURN_IF_ERROR(CheckTuple(schema_, tuple));
  if (!indexes_.empty()) {
    MDM_ASSIGN_OR_RETURN(Tuple old, Get(rid));
    for (auto& [col, tree] : indexes_) {
      MDM_ASSIGN_OR_RETURN(int64_t old_key, IndexKey(old, col));
      MDM_ASSIGN_OR_RETURN(int64_t new_key, IndexKey(tuple, col));
      if (old_key != new_key) {
        tree->Erase(old_key, rid);
        tree->Insert(new_key, rid);
      }
    }
  }
  ByteWriter w;
  EncodeTuple(tuple, &w);
  Status st = heap_.Update(
      rid, std::string_view(reinterpret_cast<const char*>(w.data().data()),
                            w.size()));
  if (st.code() == StatusCode::kOutOfRange) {
    // Record grew past its page: physically relocate. Indexes must chase
    // the new rid.
    MDM_RETURN_IF_ERROR(heap_.Delete(rid));
    MDM_ASSIGN_OR_RETURN(
        Rid moved, heap_.Append(std::string_view(
                       reinterpret_cast<const char*>(w.data().data()),
                       w.size())));
    for (auto& [col, tree] : indexes_) {
      MDM_ASSIGN_OR_RETURN(int64_t key, IndexKey(tuple, col));
      tree->Erase(key, rid);
      tree->Insert(key, moved);
    }
    return Status::OK();
  }
  return st;
}

Status Table::Scan(
    const std::function<bool(const Rid&, const Tuple&)>& fn) const {
  Status decode_status;
  MDM_RETURN_IF_ERROR(
      heap_.Scan([&](const Rid& rid, std::string_view bytes) {
        ByteReader r(reinterpret_cast<const uint8_t*>(bytes.data()),
                     bytes.size());
        Tuple t;
        decode_status = DecodeTuple(&r, &t);
        if (!decode_status.ok()) return false;
        return fn(rid, t);
      }));
  return decode_status;
}

Status Table::CreateIndex(const std::string& column) {
  auto idx = schema_.IndexOf(column);
  if (!idx.has_value())
    return NotFound(StrFormat("no column %s in %s", column.c_str(),
                              name_.c_str()));
  ValueType t = schema_.column(*idx).type;
  if (t != ValueType::kInt && t != ValueType::kRef)
    return TypeError("indexes require integer or ref columns");
  if (indexes_.count(*idx) != 0)
    return AlreadyExists("index on " + column + " already exists");
  auto tree = std::make_unique<storage::BTree>();
  Status build;
  MDM_RETURN_IF_ERROR(Scan([&](const Rid& rid, const Tuple& tuple) {
    Result<int64_t> key = IndexKey(tuple, *idx);
    if (!key.ok()) {
      build = key.status();
      return false;
    }
    tree->Insert(*key, rid);
    return true;
  }));
  MDM_RETURN_IF_ERROR(build);
  indexes_[*idx] = std::move(tree);
  return Status::OK();
}

bool Table::HasIndex(const std::string& column) const {
  auto idx = schema_.IndexOf(column);
  return idx.has_value() && indexes_.count(*idx) != 0;
}

Status Table::IndexScan(
    const std::string& column, int64_t lo, int64_t hi,
    const std::function<bool(const Rid&, const Tuple&)>& fn) const {
  auto idx = schema_.IndexOf(column);
  if (!idx.has_value() || indexes_.count(*idx) == 0)
    return NotFound("no index on column " + column);
  Status inner;
  indexes_.at(*idx)->ScanRange(lo, hi, [&](int64_t, const Rid& rid) {
    Result<Tuple> t = Get(rid);
    if (!t.ok()) {
      inner = t.status();
      return false;
    }
    return fn(rid, *t);
  });
  return inner;
}

namespace {

// The catalog is serialized as a blob chained across pages. Each chain
// page: u32 next_page, u32 chunk_len, then chunk bytes.
constexpr size_t kChainHeader = 8;
constexpr size_t kChainCapacity = kPageSize - kChainHeader;

// Page 0 is the chain head, so a stored next pointer of 0 (the value a
// freshly zeroed page carries) can never be a real successor; both 0 and
// kInvalidPageId terminate a chain.
bool IsChainEnd(PageId next) { return next == 0 || next == kInvalidPageId; }

Status WriteBlobChain(BufferPool* pool, PageId first,
                      const std::vector<uint8_t>& blob) {
  size_t off = 0;
  PageId pid = first;
  while (true) {
    MDM_ASSIGN_OR_RETURN(Page * page, pool->FetchPage(pid));
    uint32_t chunk =
        static_cast<uint32_t>(std::min(kChainCapacity, blob.size() - off));
    // Reuse the existing chain tail where possible.
    PageId next = 0;
    std::memcpy(&next, page->data, 4);
    std::memcpy(page->data + 4, &chunk, 4);
    if (chunk > 0)
      std::memcpy(page->data + kChainHeader, blob.data() + off, chunk);
    off += chunk;
    bool more = off < blob.size();
    if (more && IsChainEnd(next)) {
      MDM_ASSIGN_OR_RETURN(Page * fresh, pool->NewPage());
      next = fresh->id;
      PageId none = kInvalidPageId;
      std::memcpy(fresh->data, &none, 4);
      MDM_RETURN_IF_ERROR(pool->UnpinPage(fresh->id, /*dirty=*/true));
    }
    PageId link = more ? next : kInvalidPageId;
    std::memcpy(page->data, &link, 4);
    MDM_RETURN_IF_ERROR(pool->UnpinPage(pid, /*dirty=*/true));
    if (!more) return Status::OK();
    pid = next;
  }
}

Status ReadBlobChain(BufferPool* pool, PageId first,
                     std::vector<uint8_t>* blob) {
  blob->clear();
  PageId pid = first;
  bool head = true;
  while (pid != kInvalidPageId && (head || !IsChainEnd(pid))) {
    head = false;
    MDM_ASSIGN_OR_RETURN(Page * page, pool->FetchPage(pid));
    PageId next;
    uint32_t len;
    std::memcpy(&next, page->data, 4);
    if (IsChainEnd(next)) next = kInvalidPageId;
    std::memcpy(&len, page->data + 4, 4);
    if (len > kChainCapacity) {
      MDM_RETURN_IF_ERROR(pool->UnpinPage(pid, /*dirty=*/false));
      return Corruption("catalog chain chunk overruns page");
    }
    blob->insert(blob->end(), page->data + kChainHeader,
                 page->data + kChainHeader + len);
    MDM_RETURN_IF_ERROR(pool->UnpinPage(pid, /*dirty=*/false));
    pid = next;
  }
  return Status::OK();
}

}  // namespace

Result<Table*> Catalog::CreateTable(const std::string& name,
                                    RelSchema schema) {
  if (tables_.count(name) != 0)
    return AlreadyExists("table " + name + " already exists");
  MDM_ASSIGN_OR_RETURN(PageId first, storage::HeapFile::Create(pool_));
  auto table = std::make_unique<Table>(pool_, name, std::move(schema), first);
  Table* out = table.get();
  tables_[name] = std::move(table);
  return out;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return NotFound("no table named " + name);
  return it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) return NotFound("no table named " + name);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

Status Catalog::Save() {
  ByteWriter w;
  w.PutU32(0x4D444D43);  // "MDMC"
  w.PutVarint(tables_.size());
  for (const auto& [name, table] : tables_) {
    w.PutString(name);
    w.PutU32(table->first_page());
    table->schema().Encode(&w);
  }
  MDM_RETURN_IF_ERROR(WriteBlobChain(pool_, /*first=*/0, w.data()));
  return pool_->FlushAll();
}

Status Catalog::Load() {
  std::vector<uint8_t> blob;
  MDM_RETURN_IF_ERROR(ReadBlobChain(pool_, /*first=*/0, &blob));
  ByteReader r(blob.data(), blob.size());
  uint32_t magic;
  MDM_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != 0x4D444D43) return Corruption("bad catalog magic");
  uint64_t n;
  MDM_RETURN_IF_ERROR(r.GetVarint(&n));
  tables_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    uint32_t first;
    RelSchema schema;
    MDM_RETURN_IF_ERROR(r.GetString(&name));
    MDM_RETURN_IF_ERROR(r.GetU32(&first));
    MDM_RETURN_IF_ERROR(RelSchema::Decode(&r, &schema));
    tables_[name] =
        std::make_unique<Table>(pool_, name, std::move(schema), first);
  }
  return Status::OK();
}

}  // namespace mdm::rel

#ifndef MDM_SOUND_SOUND_H_
#define MDM_SOUND_SOUND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "midi/midi.h"

namespace mdm::sound {

/// Digitized sound: "the simplest representation of sound in a digital
/// computer is merely an array of numbers" (§4.1).
struct PcmBuffer {
  int sample_rate = 48000;  // the paper's professional-quality rate
  std::vector<int16_t> samples;

  double DurationSeconds() const {
    return sample_rate == 0
               ? 0.0
               : static_cast<double>(samples.size()) / sample_rate;
  }
  size_t SizeBytes() const { return samples.size() * sizeof(int16_t); }
};

/// §4.1 arithmetic: bytes needed to record `seconds` of sound at the
/// given rate and sample width. The paper's example: 10 minutes at
/// 48 kHz / 16-bit = 57.6 megabytes.
uint64_t StorageBytes(double seconds, int sample_rate = 48000,
                      int bits_per_sample = 16);

/// Additive synthesis of a MIDI track: each note renders as a sine at
/// its equal-tempered frequency with an exponential decay envelope,
/// mixed and soft-clipped. Deterministic.
PcmBuffer Synthesize(const midi::MidiTrack& track, int sample_rate = 48000,
                     double gain = 0.2);

/// MIDI key -> frequency in Hz (A4 = 440).
double KeyToFrequency(int midi_key);

// ----------------------------------------------------------------------
// Compaction (§4.1): "the digitized sound stream can be compacted ...
// by eliminating redundant information from the sound stream".
// ----------------------------------------------------------------------

struct CompactionStats {
  size_t raw_bytes = 0;
  size_t encoded_bytes = 0;
  double Ratio() const {
    return encoded_bytes == 0
               ? 0.0
               : static_cast<double>(raw_bytes) / encoded_bytes;
  }
};

/// Redundancy elimination via second-order delta + zigzag varints:
/// lossless, exploits sample-to-sample correlation in musical signals.
std::vector<uint8_t> EncodeDelta(const PcmBuffer& pcm,
                                 CompactionStats* stats = nullptr);
Result<PcmBuffer> DecodeDelta(const std::vector<uint8_t>& encoded);

/// Silence-run elimination: runs of below-threshold samples are stored
/// as counts. Lossy only for sub-threshold noise.
std::vector<uint8_t> EncodeSilence(const PcmBuffer& pcm,
                                   int16_t threshold = 8,
                                   CompactionStats* stats = nullptr);
Result<PcmBuffer> DecodeSilence(const std::vector<uint8_t>& encoded);

/// Perceptual-style quantization ([Kra79]-flavoured): keeps the top
/// `bits` of each sample (lossy), then delta-encodes. Returns stats via
/// the out parameter.
std::vector<uint8_t> EncodeQuantized(const PcmBuffer& pcm, int bits = 8,
                                     CompactionStats* stats = nullptr);
Result<PcmBuffer> DecodeQuantized(const std::vector<uint8_t>& encoded);

}  // namespace mdm::sound

#endif  // MDM_SOUND_SOUND_H_

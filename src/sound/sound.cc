#include "sound/sound.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"

namespace mdm::sound {

uint64_t StorageBytes(double seconds, int sample_rate, int bits_per_sample) {
  return static_cast<uint64_t>(seconds * sample_rate) *
         (bits_per_sample / 8);
}

double KeyToFrequency(int midi_key) {
  return 440.0 * std::pow(2.0, (midi_key - 69) / 12.0);
}

PcmBuffer Synthesize(const midi::MidiTrack& track, int sample_rate,
                     double gain) {
  PcmBuffer pcm;
  pcm.sample_rate = sample_rate;
  double duration = track.Duration() + 0.25;  // tail for release
  size_t n = static_cast<size_t>(duration * sample_rate);
  std::vector<double> mix(n, 0.0);

  // Pair note-ons with their note-offs.
  struct Active {
    double start;
    int key;
    int velocity;
  };
  std::vector<Active> active;
  auto render = [&](const Active& note, double end) {
    double freq = KeyToFrequency(note.key);
    double amp = gain * note.velocity / 127.0;
    size_t s0 = static_cast<size_t>(note.start * sample_rate);
    size_t s1 = std::min(n, static_cast<size_t>((end + 0.05) * sample_rate));
    for (size_t s = s0; s < s1; ++s) {
      double t = static_cast<double>(s - s0) / sample_rate;
      double envelope = std::exp(-2.5 * t);
      // Release: fade over the trailing 50 ms past the note end.
      double note_t = note.start + t;
      if (note_t > end) envelope *= 1.0 - (note_t - end) / 0.05;
      mix[s] += amp * envelope * std::sin(2 * M_PI * freq * t);
    }
  };
  for (const midi::MidiEvent& e : track.events) {
    if (e.kind == midi::MidiEvent::Kind::kNoteOn) {
      active.push_back({e.seconds, e.key, e.velocity});
    } else if (e.kind == midi::MidiEvent::Kind::kNoteOff) {
      for (auto it = active.begin(); it != active.end(); ++it) {
        if (it->key == e.key) {
          render(*it, e.seconds);
          active.erase(it);
          break;
        }
      }
    }
  }
  // Unterminated notes ring to the end.
  for (const Active& note : active) render(note, duration - 0.05);

  pcm.samples.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double v = std::tanh(mix[i]);  // soft clip
    pcm.samples[i] = static_cast<int16_t>(std::lround(v * 32000.0));
  }
  return pcm;
}

namespace {

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void WriteHeader(ByteWriter* w, uint32_t magic, const PcmBuffer& pcm) {
  w->PutU32(magic);
  w->PutU32(static_cast<uint32_t>(pcm.sample_rate));
  w->PutVarint(pcm.samples.size());
}

Status ReadHeader(ByteReader* r, uint32_t magic, PcmBuffer* pcm,
                  uint64_t* count) {
  uint32_t got;
  MDM_RETURN_IF_ERROR(r->GetU32(&got));
  if (got != magic) return Corruption("bad codec magic");
  uint32_t rate;
  MDM_RETURN_IF_ERROR(r->GetU32(&rate));
  pcm->sample_rate = static_cast<int>(rate);
  MDM_RETURN_IF_ERROR(r->GetVarint(count));
  return Status::OK();
}

constexpr uint32_t kDeltaMagic = 0x4D444C31;    // "MDL1"
constexpr uint32_t kSilenceMagic = 0x4D534C31;  // "MSL1"
constexpr uint32_t kQuantMagic = 0x4D515431;    // "MQT1"

}  // namespace

std::vector<uint8_t> EncodeDelta(const PcmBuffer& pcm,
                                 CompactionStats* stats) {
  ByteWriter w;
  WriteHeader(&w, kDeltaMagic, pcm);
  int64_t prev = 0, prev_delta = 0;
  for (int16_t s : pcm.samples) {
    int64_t delta = s - prev;
    w.PutVarint(ZigZag(delta - prev_delta));  // second-order residual
    prev_delta = delta;
    prev = s;
  }
  if (stats != nullptr) {
    stats->raw_bytes = pcm.SizeBytes();
    stats->encoded_bytes = w.size();
  }
  return w.Take();
}

Result<PcmBuffer> DecodeDelta(const std::vector<uint8_t>& encoded) {
  ByteReader r(encoded);
  PcmBuffer pcm;
  uint64_t count;
  MDM_RETURN_IF_ERROR(ReadHeader(&r, kDeltaMagic, &pcm, &count));
  pcm.samples.reserve(count);
  int64_t prev = 0, prev_delta = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t z;
    MDM_RETURN_IF_ERROR(r.GetVarint(&z));
    int64_t delta = prev_delta + UnZigZag(z);
    int64_t v = prev + delta;
    if (v < INT16_MIN || v > INT16_MAX)
      return Corruption("delta stream decodes out of range");
    pcm.samples.push_back(static_cast<int16_t>(v));
    prev_delta = delta;
    prev = v;
  }
  return pcm;
}

std::vector<uint8_t> EncodeSilence(const PcmBuffer& pcm, int16_t threshold,
                                   CompactionStats* stats) {
  ByteWriter w;
  WriteHeader(&w, kSilenceMagic, pcm);
  w.PutU16(static_cast<uint16_t>(threshold));
  size_t i = 0;
  const size_t n = pcm.samples.size();
  while (i < n) {
    if (std::abs(pcm.samples[i]) <= threshold) {
      size_t run = 0;
      while (i + run < n && std::abs(pcm.samples[i + run]) <= threshold)
        ++run;
      w.PutU8(0);  // silence block
      w.PutVarint(run);
      i += run;
    } else {
      size_t run = 0;
      while (i + run < n && std::abs(pcm.samples[i + run]) > threshold)
        ++run;
      w.PutU8(1);  // literal block
      w.PutVarint(run);
      for (size_t k = 0; k < run; ++k)
        w.PutU16(static_cast<uint16_t>(pcm.samples[i + k]));
      i += run;
    }
  }
  if (stats != nullptr) {
    stats->raw_bytes = pcm.SizeBytes();
    stats->encoded_bytes = w.size();
  }
  return w.Take();
}

Result<PcmBuffer> DecodeSilence(const std::vector<uint8_t>& encoded) {
  ByteReader r(encoded);
  PcmBuffer pcm;
  uint64_t count;
  MDM_RETURN_IF_ERROR(ReadHeader(&r, kSilenceMagic, &pcm, &count));
  uint16_t threshold;
  MDM_RETURN_IF_ERROR(r.GetU16(&threshold));
  while (pcm.samples.size() < count) {
    uint8_t tag;
    MDM_RETURN_IF_ERROR(r.GetU8(&tag));
    uint64_t run;
    MDM_RETURN_IF_ERROR(r.GetVarint(&run));
    if (pcm.samples.size() + run > count)
      return Corruption("silence stream overruns declared length");
    if (tag == 0) {
      pcm.samples.insert(pcm.samples.end(), run, 0);
    } else if (tag == 1) {
      for (uint64_t k = 0; k < run; ++k) {
        uint16_t v;
        MDM_RETURN_IF_ERROR(r.GetU16(&v));
        pcm.samples.push_back(static_cast<int16_t>(v));
      }
    } else {
      return Corruption("bad silence block tag");
    }
  }
  return pcm;
}

std::vector<uint8_t> EncodeQuantized(const PcmBuffer& pcm, int bits,
                                     CompactionStats* stats) {
  bits = std::clamp(bits, 2, 16);
  ByteWriter w;
  WriteHeader(&w, kQuantMagic, pcm);
  w.PutU8(static_cast<uint8_t>(bits));
  const int shift = 16 - bits;
  int64_t prev = 0;
  for (int16_t s : pcm.samples) {
    int64_t q = s >> shift;  // keep the top `bits` bits
    w.PutVarint(ZigZag(q - prev));
    prev = q;
  }
  if (stats != nullptr) {
    stats->raw_bytes = pcm.SizeBytes();
    stats->encoded_bytes = w.size();
  }
  return w.Take();
}

Result<PcmBuffer> DecodeQuantized(const std::vector<uint8_t>& encoded) {
  ByteReader r(encoded);
  PcmBuffer pcm;
  uint64_t count;
  MDM_RETURN_IF_ERROR(ReadHeader(&r, kQuantMagic, &pcm, &count));
  uint8_t bits;
  MDM_RETURN_IF_ERROR(r.GetU8(&bits));
  const int shift = 16 - bits;
  int64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t z;
    MDM_RETURN_IF_ERROR(r.GetVarint(&z));
    prev += UnZigZag(z);
    pcm.samples.push_back(static_cast<int16_t>(prev << shift));
  }
  return pcm;
}

}  // namespace mdm::sound
